// Command txgen is the load harness for the node's spend protocol: it drives
// POST /v1/spend at an in-process node (default) or a remote one (-node URL),
// sweeping a grid of batch sizes λ and offered loads, and reports throughput,
// tail latency (p50/p95/p99), shed rate and the per-stage time breakdown
// recovered from request traces.
//
// Usage:
//
//	txgen                                     # default closed-loop sweep
//	txgen -arrival poisson -rate 50,200       # open loop at two arrival rates
//	txgen -arrival closed,poisson             # both models in one artefact
//	txgen -lambda 100,400 -conc 1,4,16        # λ × concurrency grid
//	txgen -node http://host:8791 -lambda 0    # drive a remote node
//	txgen -out BENCH_load.json                # write the JSON artefact
//	txgen -assert                             # exit 1 unless every row spent
//
// -arrival is a comma list; each model contributes its own grid points to the
// one report. Closed loop sweeps the -conc list (fixed worker populations — a
// capacity measure); "fixed"/"poisson" arrivals sweep the -rate list with the
// first -conc entry as the outstanding-request bound. Each in-process run gets a fresh node (spends
// mutate the ledger), built at each λ of the -lambda list; remote runs use the
// node as-is and λ is recorded as 0. In-process runs include the per-stage
// breakdown (sample/solve/sign/verify/commit/queue-wait deltas over the
// measured window); remote ones cannot, their traces live in the server —
// see its /debug/traces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/loadgen"
	"tokenmagic/internal/obs/trace"
)

// remotePopulation assumes the remote node serves a synthetic chain with
// densely numbered tokens (what `tokenmagic serve` builds) and spends the
// first n of them.
func remotePopulation(n int) chain.TokenSet {
	toks := make([]chain.TokenID, n)
	for i := range toks {
		toks[i] = chain.TokenID(i)
	}
	return chain.NewTokenSet(toks...)
}

// Row is one grid point of the sweep.
type Row struct {
	Lambda int     `json:"lambda"`
	Rate   float64 `json:"rate,omitempty"` // open loop only
	loadgen.Result
}

// Report is the BENCH_load.json artefact.
type Report struct {
	GeneratedAt string  `json:"generated_at"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Node        string  `json:"node"` // "in-process" or the remote URL
	Population  int     `json:"population"`
	Pattern     string  `json:"pattern"`
	Arrival     string  `json:"arrival"`
	Seconds     float64 `json:"measure_seconds"`
	Warmup      float64 `json:"warmup_seconds"`
	Rows        []Row   `json:"rows"`
}

func main() {
	var (
		nodeURL    = flag.String("node", "", "remote node base URL; empty runs an in-process node per grid point")
		arrival    = flag.String("arrival", "closed", "load models: closed|fixed|poisson (comma list)")
		rates      = flag.String("rate", "50,200", "open-loop arrival rates (req/s, comma list)")
		concs      = flag.String("conc", "1,4,16", "closed-loop worker counts, or open-loop outstanding bound (comma list; open loop uses the first)")
		lambdas    = flag.String("lambda", "100,400", "in-process node batch sizes λ (comma list; 0 = whole population)")
		popSize    = flag.Int("population", 2000, "spendable tokens per in-process node (and spend-stream size for remote)")
		pattern    = flag.String("pattern", "uniform", "spend pattern: uniform|zipf")
		duration   = flag.Duration("duration", 5*time.Second, "measured window per grid point")
		warmup     = flag.Duration("warmup", 1*time.Second, "unmeasured warmup per grid point")
		seed       = flag.Int64("seed", 1, "seed for the chain and the spend stream")
		c          = flag.Float64("c", 1, "diversity requirement c")
		l          = flag.Int("l", 3, "diversity requirement ℓ")
		eta        = flag.Float64("eta", 0, "liveness guard η for in-process nodes")
		randomize  = flag.Bool("randomize", true, "candidate sampling (Algorithm 1) on in-process nodes")
		stopAfter  = flag.Int("stop-after", 8, "candidate executor early-stop (0 = full sweep)")
		par        = flag.Int("parallelism", 0, "candidate executor workers (0 = GOMAXPROCS)")
		maxInF     = flag.Int("max-inflight", 4, "in-process admission gate: concurrent requests (0 disables)")
		maxQueue   = flag.Int("max-queue", 8, "in-process admission gate: waiting room")
		out        = flag.String("out", "", "write the JSON report to this path")
		assertFlag = flag.Bool("assert", false, "exit 1 unless every grid point completed spends (CI smoke)")
	)
	flag.Parse()

	concList, err := parseInts(*concs)
	fail(err)
	lambdaList, err := parseInts(*lambdas)
	fail(err)
	rateList, err := parseFloats(*rates)
	fail(err)
	arrivalList := strings.Split(*arrival, ",")
	for i, a := range arrivalList {
		arrivalList[i] = strings.TrimSpace(a)
		switch arrivalList[i] {
		case "closed", "fixed", "poisson":
		default:
			fail(fmt.Errorf("unknown arrival model %q", a))
		}
	}
	if *nodeURL != "" {
		lambdaList = []int{0} // λ belongs to the remote node's config
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Node:        "in-process",
		Population:  *popSize,
		Pattern:     *pattern,
		Arrival:     *arrival,
		Seconds:     duration.Seconds(),
		Warmup:      warmup.Seconds(),
	}
	if *nodeURL != "" {
		rep.Node = *nodeURL
	}

	// Grid points: closed loop sweeps worker counts, open loop sweeps rates.
	type point struct {
		arrival string
		rate    float64
		conc    int
	}
	var points []point
	for _, a := range arrivalList {
		if a == "closed" {
			for _, cc := range concList {
				points = append(points, point{arrival: a, conc: cc})
			}
		} else {
			for _, r := range rateList {
				points = append(points, point{arrival: a, rate: r, conc: concList[0]})
			}
		}
	}

	trace.Default().SetEnabled(true)
	for _, lambda := range lambdaList {
		for _, pt := range points {
			cfg := loadgen.Config{
				BaseURL:     *nodeURL,
				Arrival:     pt.arrival,
				Rate:        pt.rate,
				Concurrency: pt.conc,
				Duration:    *duration,
				Warmup:      *warmup,
				Pattern:     *pattern,
				Seed:        *seed,
				C:           *c,
				L:           *l,
			}
			if *nodeURL == "" {
				// Fresh node per grid point: spends consume the population.
				n, err := loadgen.StartInProcNode(loadgen.NodeOptions{
					Population:  *popSize,
					Lambda:      lambda,
					Eta:         *eta,
					Seed:        *seed,
					Parallelism: *par,
					Randomize:   *randomize,
					StopAfter:   *stopAfter,
					MaxInFlight: *maxInF,
					MaxQueue:    *maxQueue,
				})
				fail(err)
				cfg.BaseURL = n.BaseURL
				cfg.Population = n.Population
				cfg.Stages = trace.Default()
				res, err := loadgen.Run(cfg)
				n.Close()
				fail(err)
				rep.Rows = append(rep.Rows, Row{Lambda: lambda, Rate: pt.rate, Result: res})
			} else {
				cfg.Population = remotePopulation(*popSize)
				res, err := loadgen.Run(cfg)
				fail(err)
				rep.Rows = append(rep.Rows, Row{Rate: pt.rate, Result: res})
			}
			printRow(rep.Rows[len(rep.Rows)-1])
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		fail(err)
		data = append(data, '\n')
		fail(os.WriteFile(*out, data, 0o644))
		fmt.Println("wrote", *out)
	}
	if *assertFlag {
		for _, r := range rep.Rows {
			if r.OK == 0 || r.ThroughputRPS <= 0 {
				fail(fmt.Errorf("grid point λ=%d conc=%d rate=%g completed no spends: %+v",
					r.Lambda, r.Concurrency, r.Rate, r.Result))
			}
		}
		fmt.Println("assert: every grid point completed spends")
	}
}

func printRow(r Row) {
	head := fmt.Sprintf("λ=%-5d conc=%-3d", r.Lambda, r.Concurrency)
	if r.Arrival != "closed" {
		head = fmt.Sprintf("λ=%-5d %s=%-6g conc=%-3d", r.Lambda, r.Arrival, r.Rate, r.Concurrency)
	}
	fmt.Printf("%s  %7.1f req/s  p50=%-8s p99=%-8s shed=%4.1f%%  ok=%d rej=%d err=%d skip=%d\n",
		head, r.ThroughputRPS,
		us(r.Latency.P50), us(r.Latency.P99), r.ShedRate*100,
		r.OK, r.Rejected, r.Errors, r.Skipped)
	if len(r.Stages) > 0 {
		order := []string{"queue-wait", "sample", "candidate", "solve", "sign", "verify-sig", "verify", "commit"}
		parts := make([]string, 0, len(order))
		for _, name := range order {
			if st, ok := r.Stages[name]; ok {
				parts = append(parts, fmt.Sprintf("%s %s×%d", name, us(st.MeanUS), st.Count))
			}
		}
		fmt.Printf("  stages: %s\n", strings.Join(parts, "  "))
	}
}

// us renders a microsecond quantity at a stable width-friendly precision.
func us(v float64) string {
	if v >= 1e6 {
		return fmt.Sprintf("%.2fs", v/1e6)
	}
	if v >= 1e3 {
		return fmt.Sprintf("%.1fms", v/1e3)
	}
	return fmt.Sprintf("%.0fµs", v)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("txgen: bad list entry %q: %v", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("txgen: empty list %q", s)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("txgen: bad list entry %q: %v", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("txgen: empty list %q", s)
	}
	return out, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "txgen:", err)
		os.Exit(1)
	}
}
