// Command anonaudit runs the static graph-analysis attack suite
// (internal/adversary/graphattack) over a ledger and reports per-attack
// anonymity metrics — and, with -assert, gates the build on them.
//
// Two sources of rings:
//
//	anonaudit                          # seeded sim: solver × attack sweep
//	anonaudit -data-dir path           # audit a persisted ledger ("ledger" rows)
//
// The sim mode replays the bench workload (internal/bench.AnonymitySweep),
// so its output is byte-comparable with the tracked BENCH_anonymity.json.
// With -assert, each (solver, attack) cell of the current run is compared
// against the committed baseline and the command exits non-zero if any
// cell's min effective anonymity-set size regressed below it; sweep
// parameters default to the baseline's own, so CI needs no flag plumbing.
//
//	anonaudit -assert                  # gate against BENCH_anonymity.json
//	anonaudit -out BENCH_anonymity.json  # regenerate the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tokenmagic/internal/adversary/graphattack"
	"tokenmagic/internal/bench"
	"tokenmagic/internal/store"
)

func main() {
	var (
		spends    = flag.Int("spends", 40, "sim mode: spends per solver ledger")
		bfsSpends = flag.Int("bfs-spends", 6, "sim mode: spends for the exact TM_B solver (exponential search)")
		seed      = flag.Int64("seed", 1, "sim mode: workload seed")
		window    = flag.Int("window", 2, "temporal adversary: guess-newest window (0 disables the prior)")
		solvers   = flag.String("solvers", "", "sim mode: comma-separated solver subset (default all: "+strings.Join(bench.SolverNames(), ",")+")")
		attacks   = flag.String("attacks", "", "comma-separated attack subset (default all: "+strings.Join(graphattack.AttackNames(), ",")+")")
		out       = flag.String("out", "", "write the report JSON to this path")
		assert    = flag.Bool("assert", false, "fail if any (solver, attack) min anonymity regressed below the baseline")
		baseline  = flag.String("baseline", "BENCH_anonymity.json", "baseline report for -assert")
		dataDir   = flag.String("data-dir", "", "audit this persisted ledger instead of running the sim sweep")
		shards    = flag.Int("shards", 2, "segment-log shards of -data-dir (must match the writer)")
		lambda    = flag.Int("lambda", 800, "batch size parameter λ of -data-dir (shard routing)")
	)
	flag.Parse()

	var base *bench.AnonymityReport
	if *assert {
		var err error
		base, err = readReport(*baseline)
		fail(err)
		// Gate runs must replay the baseline's exact workload; explicit
		// flags still win so an operator can gate a variant deliberately.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["spends"] {
			*spends = base.Spends
		}
		if !set["bfs-spends"] {
			*bfsSpends = base.BFSSpends
		}
		if !set["seed"] {
			*seed = base.Seed
		}
		if !set["window"] {
			*window = base.Window
		}
	}

	var rep *bench.AnonymityReport
	if *dataDir != "" {
		var err error
		rep, err = auditDataDir(*dataDir, *shards, *lambda, *window, splitList(*attacks))
		fail(err)
	} else {
		var err error
		rep, err = bench.AnonymitySweepSubset(
			splitList(*solvers), splitList(*attacks), *spends, *bfsSpends, *seed, *window)
		fail(err)
	}

	fmt.Printf("%-8s %-16s %6s %7s %7s %8s %8s %9s\n",
		"solver", "attack", "rings", "traced", "htRev", "meanAnon", "minAnon", "consumed")
	for _, r := range rep.Rows {
		fmt.Printf("%-8s %-16s %6d %7d %7d %8.2f %8d %9d\n",
			r.Solver, r.Attack, r.Rings, r.Traced, r.HTRevealed,
			r.MeanAnonymity, r.MinAnonymity, r.Consumed)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		fail(err)
		fail(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Println("wrote", *out)
	}

	if *assert {
		fail(assertNoRegression(rep, base, *baseline))
		fmt.Println("anonymity gate passed:", *baseline)
	}
}

// auditDataDir opens a persisted ledger read-only-ish (recovery still
// repairs) and runs the attack suite over its committed rings, labelled
// "ledger" in the matrix.
func auditDataDir(dir string, shards, lambda, window int, attacks []string) (*bench.AnonymityReport, error) {
	st, err := store.Open(dir, store.Options{Shards: shards, Lambda: lambda})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	rep := &bench.AnonymityReport{
		GeneratedBy: "cmd/anonaudit -data-dir " + dir,
		Window:      window,
	}
	opts := graphattack.Options{
		Temporal: graphattack.TemporalOptions{Window: window},
		Attacks:  attacks,
	}
	rep.Rows = bench.AuditRows("ledger", st.Ledger.Rings(), st.Ledger.OriginFunc(), opts)
	return rep, nil
}

// assertNoRegression compares every (solver, attack) cell present in both
// reports: the gate trips when the current min effective anonymity-set size
// drops below the committed floor. No overlap at all is an error — a gate
// comparing nothing would always pass.
func assertNoRegression(cur, base *bench.AnonymityReport, baselinePath string) error {
	floors := make(map[[2]string]bench.AnonymityRow, len(base.Rows))
	for _, r := range base.Rows {
		floors[[2]string{r.Solver, r.Attack}] = r
	}
	overlap := 0
	var violations []string
	for _, r := range cur.Rows {
		b, ok := floors[[2]string{r.Solver, r.Attack}]
		if !ok {
			continue
		}
		overlap++
		if r.MinAnonymity < b.MinAnonymity {
			violations = append(violations, fmt.Sprintf(
				"%s/%s: min anonymity %d < baseline %d", r.Solver, r.Attack, r.MinAnonymity, b.MinAnonymity))
		}
	}
	if overlap == 0 {
		return fmt.Errorf("anonaudit: no (solver, attack) cells overlap %s — nothing gated", baselinePath)
	}
	if len(violations) > 0 {
		return fmt.Errorf("anonaudit: anonymity regression vs %s:\n  %s",
			baselinePath, strings.Join(violations, "\n  "))
	}
	return nil
}

func readReport(path string) (*bench.AnonymityReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.AnonymityReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("anonaudit: parse %s: %w", path, err)
	}
	return &rep, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "anonaudit:", err)
		os.Exit(1)
	}
}
