// Command benchfigures regenerates every table and figure of the paper's
// evaluation section as text series.
//
// Usage:
//
//	benchfigures [-fig N] [-tables] [-ablations] [-instances N] [-seed N] [-max-bfs N]
//	benchfigures -bench-solver BENCH_solver.json
//
// With no flags it runs everything at a moderate instance count. Pass
// -instances 1000 for paper-scale sweeps (slower), -fig 5 for a single
// figure, -tables for the Table 2/3 settings, -ablations for A1–A3.
// -bench-solver runs the solver hot-path microbenchmarks (slack evaluation,
// full solves, GenerateRS at λ ∈ {100, 800}) and writes the before/after
// JSON artefact tracked in the repo root.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tokenmagic/internal/bench"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "run a single figure (3–10); 0 runs all")
		tables    = flag.Bool("tables", false, "print Table 2 and Table 3 settings")
		ablations = flag.Bool("ablations", false, "run ablations A1–A3")
		trace     = flag.Bool("traceability", false, "run the Monero-SM vs TokenMagic traceability experiment")
		quality   = flag.Bool("quality", false, "measure approximation gaps against the exact modular optimum")
		instances = flag.Int("instances", 100, "problem instances per sweep point (paper: 1000)")
		seed      = flag.Int64("seed", 1, "random seed")
		maxBFS    = flag.Int("max-bfs", 4, "rings to generate in the Figure-4 exact run")
		benchOut  = flag.String("bench-solver", "", "run solver hot-path microbenchmarks and write BENCH_solver.json to this path")
		parOut    = flag.String("bench-parallel", "", "run the sequential-vs-parallel GenerateRS sweep and write BENCH_parallel.json to this path")
		rsOut     = flag.String("bench-ringsig", "", "run the ring-signature kernel vs stock sweep and write BENCH_ringsig.json to this path")
		anonOut   = flag.String("bench-anonymity", "", "run the solver × attack anonymity sweep and write BENCH_anonymity.json to this path")
	)
	flag.Parse()

	if *benchOut != "" {
		runSolverBench(*benchOut)
		return
	}
	if *parOut != "" {
		runParallelBench(*parOut)
		return
	}
	if *rsOut != "" {
		runRingsigBench(*rsOut)
		return
	}
	if *anonOut != "" {
		runAnonymityBench(*anonOut, *seed)
		return
	}

	opts := bench.Options{Instances: *instances, Seed: *seed, Headroom: true}
	runAll := !*tables && !*ablations && !*trace && !*quality && *fig == 0

	if *tables || runAll {
		bench.WriteTables(os.Stdout)
	}

	runFig := func(n int) bool { return runAll || *fig == n }

	if runFig(3) {
		rows, err := bench.Figure3(*seed)
		fail(err)
		bench.WriteFigure3(os.Stdout, rows)
	}
	if runFig(4) {
		pts, err := bench.Figure4(*seed, *maxBFS)
		fail(err)
		bench.WriteFigure4(os.Stdout, pts)
	}
	sweeps := map[int]func(bench.Options) (bench.Series, error){
		5: bench.Figure5, 6: bench.Figure6, 7: bench.Figure7,
		8: bench.Figure8, 9: bench.Figure9, 10: bench.Figure10,
	}
	for n := 5; n <= 10; n++ {
		if !runFig(n) {
			continue
		}
		s, err := sweeps[n](opts)
		fail(err)
		bench.WriteSeries(os.Stdout, s)
	}

	if *ablations || runAll {
		runAblations(*seed)
	}
	if *trace || runAll {
		runTraceability(*seed)
	}
	if *quality || runAll {
		runQuality(*seed)
	}
}

func runSolverBench(path string) {
	fmt.Println("Solver hot-path microbenchmarks (this takes a couple of minutes)…")
	rep, err := bench.SolverBenchmarks()
	fail(err)
	data, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	data = append(data, '\n')
	fail(os.WriteFile(path, data, 0o644))
	fmt.Printf("  %-32s %14s %12s %10s\n", "arm", "ns/op", "B/op", "allocs/op")
	for _, r := range rep.Current {
		fmt.Printf("  %-32s %14.0f %12d %10d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	for _, q := range rep.SolveLatency {
		fmt.Printf("  %s: n=%d p50=%.0fµs p99=%.0fµs mean=%.0fµs\n",
			q.Metric, q.Count, q.P50US, q.P99US, q.MeanUS)
	}
	fmt.Println("wrote", path)
}

func runParallelBench(path string) {
	fmt.Println("Parallel GenerateRS sweep (equivalence check, then λ × workers grid)…")
	rep, err := bench.ParallelBenchmarks()
	fail(err)
	data, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	data = append(data, '\n')
	fail(os.WriteFile(path, data, 0o644))
	fmt.Printf("  gomaxprocs=%d num_cpu=%d equivalence_checked=%v\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.EquivalenceChecked)
	fmt.Printf("  %-8s %-8s %14s %12s %10s\n", "lambda", "workers", "ns/op", "ops/sec", "speedup")
	for _, p := range rep.Points {
		fmt.Printf("  %-8d %-8d %14.0f %12.2f %9.2fx\n",
			p.Lambda, p.Workers, p.NsPerOp, p.OpsPerSec, p.SpeedupVs1Worker)
	}
	fmt.Println("wrote", path)
}

func runRingsigBench(path string) {
	fmt.Println("Ring-signature kernel sweep (equivalence check, then ring × batch × workers grid)…")
	rep, err := bench.RingsigBenchmarks()
	fail(err)
	data, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	data = append(data, '\n')
	fail(os.WriteFile(path, data, 0o644))
	fmt.Printf("  gomaxprocs=%d num_cpu=%d equivalence_checked=%v\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.EquivalenceChecked)
	fmt.Printf("  %-24s %-5s %-6s %-8s %14s %12s %9s\n",
		"arm", "ring", "batch", "workers", "ns/op", "sigs/sec", "speedup")
	for _, p := range rep.Single {
		fmt.Printf("  %-24s %-5d %-6s %-8s %14.0f %12.1f %8.2fx\n",
			p.Arm, p.Ring, "-", "-", p.NsPerOp, p.SigsPerSec, p.SpeedupVsStock)
	}
	for _, p := range rep.BatchArms {
		fmt.Printf("  %-24s %-5d %-6d %-8d %14.0f %12.1f %8.2fx\n",
			p.Arm, p.Ring, p.Batch, p.Workers, p.NsPerOp, p.SigsPerSec, p.SpeedupVsStock)
	}
	fmt.Println("wrote", path)
}

func runAnonymityBench(path string, seed int64) {
	fmt.Println("Anonymity under attack: solver × attack matrix (graphattack suite)…")
	rep, err := bench.AnonymitySweep(40, 6, seed, 2)
	fail(err)
	data, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	data = append(data, '\n')
	fail(os.WriteFile(path, data, 0o644))
	fmt.Printf("  %-6s %-16s %6s %7s %7s %8s %8s %9s\n",
		"solver", "attack", "rings", "traced", "htRev", "meanAnon", "minAnon", "consumed")
	for _, r := range rep.Rows {
		fmt.Printf("  %-6s %-16s %6d %7d %7d %8.2f %8d %9d\n",
			r.Solver, r.Attack, r.Rings, r.Traced, r.HTRevealed,
			r.MeanAnonymity, r.MinAnonymity, r.Consumed)
	}
	fmt.Println("wrote", path)
}

func runQuality(seed int64) {
	fmt.Println("Approximation quality vs the exact modular optimum (small instances)")
	pts, err := bench.Quality(60, seed)
	fail(err)
	fmt.Printf("  %-6s %10s %10s %10s %12s\n", "algo", "instances", "meanGap", "p95Gap", "optimalRate")
	for _, p := range pts {
		fmt.Printf("  %-6s %10d %10.3f %10.3f %11.0f%%\n",
			p.Approach, p.Instances, p.MeanGap, p.P95Gap, p.OptimalRate*100)
	}
	fmt.Println()
}

func runTraceability(seed int64) {
	fmt.Println("Traceability: Monero-style SM sampler vs TokenMagic TM_P (exact chain-reaction adversary)")
	pts, err := bench.Traceability(40, 4, seed)
	fail(err)
	for _, p := range pts {
		fmt.Printf("  %-16s committed=%-3d traced=%-3d htRevealed=%-3d avgAnonymity=%-6.2f minAnonymity=%-3d provablyConsumed=%-3d cascadeTraced=%-3d cascadeConsumed=%d\n",
			p.Strategy, p.RingsCommitted, p.Traced, p.HTRevealed, p.AvgAnonymity,
			p.MinAnonymity, p.ProvablyConsumed, p.CascadeTraced, p.CascadeConsumed)
	}
	fmt.Println()
}

func runAblations(seed int64) {
	a1, err := bench.AblationDTRS(50, seed)
	fail(err)
	fmt.Printf("Ablation A1: DTRS check, exact Algorithm 3 vs Theorem 6.1 closed form\n")
	fmt.Printf("  instances=%d  exact=%v  closed=%v  agreement=%d/%d\n\n",
		a1.Instances, a1.ExactTime, a1.ClosedTime, a1.Agreements, a1.Instances)

	fmt.Printf("Ablation A2: η liveness guard vs selfish fee-minimising users\n")
	for _, eta := range []float64{0, 0.25, 0.5, 1} {
		a2, err := bench.AblationEta(eta, seed)
		fail(err)
		fmt.Printf("  η=%-5v committed=%-3d cheapSingletons=%-3d forcedDiverse=%-3d stranded=%-2d traced=%-3d provablyConsumed=%d/%d\n",
			eta, a2.RingsCommitted, a2.CheapCommitted, a2.ForcedDiverse,
			a2.Stranded, a2.TracedRings, a2.ProvablyConsumed, a2.TokensTotal)
	}
	fmt.Println()

	fmt.Printf("Ablation A3: (c, ℓ+1) headroom configuration\n")
	for _, on := range []bool{true, false} {
		a3, err := bench.AblationHeadroom(on, 30, seed)
		fail(err)
		fmt.Printf("  headroom=%-5v committed=%-3d DTRS violations=%d\n",
			on, a3.Committed, a3.Violations)
	}
	fmt.Println()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfigures:", err)
		os.Exit(1)
	}
}
