package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"tokenmagic/internal/batchsvc"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/nodesvc"
	"tokenmagic/internal/obs"
	"tokenmagic/internal/selector"
)

// TestServeFullLoopTelemetry drives the whole deployment loop in-process —
// the lightselect round-trip against the batch service, then a nodesvc
// submit/mine cycle — and asserts the operator endpoints expose non-zero
// solver-latency histograms, per-route HTTP request counts, and node
// accept/reject counters, exactly what `tokenmagic serve -metrics :8792`
// serves on the operator port.
func TestServeFullLoopTelemetry(t *testing.T) {
	d, err := loadDataset("small", 1)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := newFullNode(d.Ledger, d.Ledger.NumTokens(), 0.1, true, false)
	if err != nil {
		t.Fatal(err)
	}
	public := httptest.NewServer(fn.handler)
	defer public.Close()
	operator := httptest.NewServer(obs.OperatorMux(obs.Default(), true))
	defer operator.Close()

	// --- lightselect round-trip: batch reads + client-side selection.
	bc := batchsvc.NewClient(public.URL, public.Client())
	if _, err := bc.Meta(); err != nil {
		t.Fatal(err)
	}
	target := chain.TokenID(0)
	batch, err := bc.BatchOf(target)
	if err != nil {
		t.Fatal(err)
	}
	ringInfos, err := bc.Rings(batch.Index)
	if err != nil {
		t.Fatal(err)
	}
	supers, fresh := selector.Decompose(batchsvc.Records(ringInfos), batch.Tokens)
	req := diversity.Requirement{C: 1, L: 3}
	p, err := selector.NewProblem(target, supers, fresh, batch.Origin(), req.WithHeadroom())
	if err != nil {
		t.Fatal(err)
	}
	res, err := selector.Progressive(p)
	if err != nil {
		t.Fatal(err)
	}

	// --- nodesvc submit/mine cycle: one accept, one diversity reject.
	nc := nodesvc.NewClient(public.URL, public.Client())
	if _, err := nc.Submit(nodesvc.SubmitRequest{
		Tokens: res.Tokens, C: req.C, L: req.L, Fee: 7,
	}); err != nil {
		t.Fatal(err)
	}
	var lone chain.TokenID = -1
	for _, tok := range batch.Tokens {
		if !res.Tokens.Contains(tok) {
			lone = tok
			break
		}
	}
	if lone < 0 {
		t.Fatal("selected ring covered the whole batch")
	}
	// A singleton ring can never span 2 HTs: deterministic diversity reject.
	if _, err := nc.Submit(nodesvc.SubmitRequest{
		Tokens: chain.NewTokenSet(lone), C: 1, L: 2, Fee: 1,
	}); err == nil {
		t.Fatal("singleton submission unexpectedly accepted")
	}
	mined, err := nc.Mine(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 1 {
		t.Fatalf("mined %d rings, want 1", len(mined))
	}
	st, err := nc.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending != 0 || st.ChainRings != 1 {
		t.Fatalf("status = %+v", st)
	}

	// --- operator endpoints.
	dump := getBody(t, operator.URL+"/debug/metrics")
	for _, pattern := range []string{
		`histogram selector\.TM_P\.latency_us count=[1-9]`,    // solver latency
		`histogram selector\.TM_P\.ring_size count=[1-9]`,     // ring sizes
		`counter http\.batchsvc\.v1_meta\.requests [1-9]`,     // per-route counts
		`counter http\.batchsvc\.v1_rings\.requests [1-9]`,    //
		`counter http\.nodesvc\.v1_submit\.requests 2`,        //
		`counter http\.nodesvc\.v1_submit\.status_2xx 1`,      // status classes
		`counter http\.nodesvc\.v1_submit\.status_4xx 1`,      //
		`counter node\.submit\.accepted [1-9]`,                // node accepts
		`counter node\.submit\.reject\.diversity [1-9]`,       // node rejects
		`counter node\.mine\.rings [1-9]`,                     //
		`counter framework\.verify\.admits [1-9]`,             // η-guard admits
		`histogram http\.nodesvc\.v1_mine\.latency_us count=`, // HTTP latency
	} {
		if !regexp.MustCompile(pattern).MatchString(dump) {
			t.Errorf("metrics dump missing %q:\n%s", pattern, dump)
		}
	}

	vars := getBody(t, operator.URL+"/debug/vars")
	var decoded struct {
		Tokenmagic obs.Snapshot `json:"tokenmagic"`
	}
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if decoded.Tokenmagic.Counters["node.submit.accepted"] < 1 {
		t.Fatalf("expvar snapshot missing node counters: %v", decoded.Tokenmagic.Counters)
	}

	resp, err := http.Get(operator.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}
