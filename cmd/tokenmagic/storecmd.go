package main

// Persistence wiring for the serve and sim subcommands, plus the recover
// subcommand: every durable deployment runs over internal/store, and
// recover is the operator's (and CI's) way to inspect what a crashed data
// dir recovers to.

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"tokenmagic/internal/adversary/graphattack"
	"tokenmagic/internal/store"
)

// storeFlags registers the persistence flag set shared by serve, sim and
// recover. An empty -data-dir means in-memory only.
type storeFlags struct {
	dataDir       *string
	shards        *int
	segmentBytes  *int64
	snapshotEvery *uint64
	syncEvery     *bool
}

func registerStoreFlags(fs *flag.FlagSet) *storeFlags {
	return &storeFlags{
		dataDir:       fs.String("data-dir", "", "persist the ledger under this directory (empty = in-memory)"),
		shards:        fs.Int("shards", 2, "segment-log shards in the data dir (must match across opens)"),
		segmentBytes:  fs.Int64("segment-bytes", 4<<20, "rotate segment files at this size"),
		snapshotEvery: fs.Uint64("snapshot-every", 512, "snapshot the ledger every N committed ops (0 = only on demand)"),
		syncEvery:     fs.Bool("fsync", false, "fsync the segment log on every append (durability over throughput)"),
	}
}

// open opens the store described by the flags; lambda feeds batch-id shard
// routing so ring appends over one batch stay in one shard.
func (sf *storeFlags) open(lambda int) (*store.Store, error) {
	st, err := store.Open(*sf.dataDir, store.Options{
		Shards:        *sf.shards,
		Lambda:        lambda,
		SegmentBytes:  *sf.segmentBytes,
		SnapshotEvery: *sf.snapshotEvery,
		Sync:          *sf.syncEvery,
	})
	if err != nil {
		return nil, err
	}
	slog.Info("store opened",
		"dir", *sf.dataDir,
		"epoch", st.Info.Epoch,
		"snapshot_seq", st.Info.SnapshotSeq,
		"replayed", st.Info.Replayed,
		"duplicates", st.Info.Duplicates,
		"dropped_tail", st.Info.DroppedTail,
		"torn_bytes", st.Info.TornBytes)
	return st, nil
}

// recoverReport is the JSON the recover subcommand emits, one object per
// open, so CI can diff two recoveries structurally. The anonymity block is
// a DM audit of the recovered rings — recovery that silently dropped or
// duplicated rings shows up as a traced-count or min-anonymity shift even
// when counts look plausible.
type recoverReport struct {
	Info   store.RecoveryInfo `json:"info"`
	Digest string             `json:"digest"`
	Blocks int                `json:"blocks"`
	Txs    int                `json:"txs"`
	Tokens int                `json:"tokens"`
	Rings  int                `json:"rings"`
	// AuditedRings is how many rings the DM audit covered: equal to Rings,
	// or 0 when the ledger exceeded -max-audit-rings and the audit was
	// skipped (matching has superlinear cost on huge ledgers).
	AuditedRings  int     `json:"audited_rings"`
	TracedRings   int     `json:"traced_rings"`
	MinAnonymity  int     `json:"min_anonymity"`
	MeanAnonymity float64 `json:"mean_anonymity"`
}

// cmdRecover opens a data dir, prints what recovery found, then opens it a
// second time and asserts the second recovery is clean and lands on the
// identical state — recovery must be idempotent, or the repair pass left
// damage behind. Exits non-zero on divergence, so CI can use it directly.
func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	sf := registerStoreFlags(fs)
	lambda := fs.Int("lambda", 800, "batch size parameter λ (shard routing)")
	maxAudit := fs.Int("max-audit-rings", 4096, "skip the DM anonymity audit above this many recovered rings (0 = always skip)")
	logLevel := fs.String("log-level", "warn", "slog level: debug|info|warn|error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := setupLogging(*logLevel); err != nil {
		return err
	}
	if *sf.dataDir == "" {
		return fmt.Errorf("recover: need -data-dir")
	}

	report := func() (recoverReport, error) {
		st, err := sf.open(*lambda)
		if err != nil {
			return recoverReport{}, err
		}
		defer func() {
			if cerr := st.Close(); cerr != nil {
				slog.Error("close after recovery", "err", cerr)
			}
		}()
		digest, err := store.Digest(st.Ledger.View())
		if err != nil {
			return recoverReport{}, err
		}
		rep := recoverReport{
			Info:   st.Info,
			Digest: digest,
			Blocks: st.Ledger.NumBlocks(),
			Txs:    st.Ledger.NumTxs(),
			Tokens: st.Ledger.NumTokens(),
			Rings:  st.Ledger.NumRS(),
		}
		if rep.Rings > 0 && rep.Rings <= *maxAudit {
			m := graphattack.DM(st.Ledger.Rings(), nil, st.Ledger.OriginFunc()).Metrics
			rep.AuditedRings = m.Rings
			rep.TracedRings = m.Traced
			rep.MinAnonymity = m.MinAnonymity
			rep.MeanAnonymity = m.AvgAnonymity
		}
		return rep, nil
	}

	first, err := report()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(first); err != nil {
		return err
	}

	second, err := report()
	if err != nil {
		return fmt.Errorf("recover: second open failed (recovery not idempotent): %w", err)
	}
	if second.Digest != first.Digest || second.Info.Epoch != first.Info.Epoch {
		return fmt.Errorf("recover: second open diverged: epoch %d→%d digest %s→%s",
			first.Info.Epoch, second.Info.Epoch, first.Digest, second.Digest)
	}
	if second.Info.DroppedTail != 0 || second.Info.TornBytes != 0 {
		return fmt.Errorf("recover: second open still repairing (dropped %d, torn %d bytes): first repair incomplete",
			second.Info.DroppedTail, second.Info.TornBytes)
	}
	fmt.Println("recovery stable: second open clean and identical")
	return nil
}
