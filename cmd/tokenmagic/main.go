// Command tokenmagic is the interactive face of the library: generate a
// data set, select mixins for a token, audit a ledger against the
// chain-reaction adversary, or inspect batch structure.
//
// Usage:
//
//	tokenmagic gendata  [-kind real|synthetic|small] [-seed N] [...]
//	tokenmagic select   [-algo TM_P|TM_G|TM_S|TM_R|TM_B] [-target N] [-c F] [-l N] [-seed N]
//	tokenmagic audit    [-seed N] [-spends N] [-algo ...] [-naive]
//	tokenmagic batches  [-lambda N] [-seed N]
//
// Every subcommand builds its data set deterministically from -seed, so
// outputs are reproducible.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sort"
	"time"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/workload"
)

// setupLogging installs a text slog handler on stderr at the given level.
// Status and event output goes through slog so stdout stays reserved for
// protocol/report output.
func setupLogging(level string) error {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("bad -log-level %q (debug|info|warn|error)", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gendata":
		err = cmdGendata(os.Args[2:])
	case "select":
		err = cmdSelect(os.Args[2:])
	case "audit":
		err = cmdAudit(os.Args[2:])
	case "batches":
		err = cmdBatches(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "lightselect":
		err = cmdLightSelect(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "recover":
		err = cmdRecover(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tokenmagic: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tokenmagic:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tokenmagic <subcommand> [flags]

subcommands:
  gendata     generate a data set and print its aggregate statistics
  select      run a DA-MS solver for one consuming token
  audit       drive spends onto a ledger and run chain-reaction analysis
  batches     show the TokenMagic batch partition of a generated chain
  serve       run a full node serving batch data over HTTP
  lightselect select mixins as a light node against a running full node
  sim         run the multi-user batch lifecycle simulation
  snapshot    save a generated data set to a file, or summarise one
  recover     open a -data-dir, report what recovery found, verify stability`)
}

func loadDataset(kind string, seed int64) (*workload.Dataset, error) {
	switch kind {
	case "real":
		return workload.RealMonero(seed)
	case "synthetic":
		p := workload.DefaultSynthetic()
		p.Seed = seed
		return workload.Synthetic(p)
	case "small":
		return workload.SmallScale(workload.SmallScaleParams{Tokens: 20, HTs: 8, Seed: seed})
	default:
		return nil, fmt.Errorf("unknown data set kind %q (real|synthetic|small)", kind)
	}
}

func cmdGendata(args []string) error {
	fs := flag.NewFlagSet("gendata", flag.ExitOnError)
	kind := fs.String("kind", "real", "data set kind: real|synthetic|small")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := loadDataset(*kind, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("kind=%s seed=%d\n", *kind, *seed)
	fmt.Printf("tokens=%d historicalTxs=%d rings=%d fresh=%d\n",
		d.Ledger.NumTokens(), d.Ledger.NumTxs(), d.Ledger.NumRS(), len(d.FreshTokens))
	h := d.OutputHistogram()
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Println("outputs-per-tx histogram:")
	for _, k := range keys {
		fmt.Printf("  %3d outputs: %4d txs\n", k, h[k])
	}
	return nil
}

func algoByName(name string) (tokenmagic.Algorithm, error) {
	switch name {
	case "TM_P":
		return tokenmagic.Progressive, nil
	case "TM_G":
		return tokenmagic.Game, nil
	case "TM_S":
		return tokenmagic.Smallest, nil
	case "TM_R":
		return tokenmagic.RandomPick, nil
	case "TM_B":
		return tokenmagic.BFS, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (TM_P|TM_G|TM_S|TM_R|TM_B)", name)
	}
}

func cmdSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	kind := fs.String("kind", "real", "data set kind: real|synthetic|small")
	seed := fs.Int64("seed", 1, "random seed")
	algoName := fs.String("algo", "TM_P", "solver: TM_P|TM_G|TM_S|TM_R|TM_B")
	target := fs.Int("target", 0, "token id to consume")
	c := fs.Float64("c", 0.6, "diversity parameter c")
	l := fs.Int("l", 20, "diversity parameter ℓ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	algo, err := algoByName(*algoName)
	if err != nil {
		return err
	}
	d, err := loadDataset(*kind, *seed)
	if err != nil {
		return err
	}
	cfg := tokenmagic.Config{
		Lambda:    d.Ledger.NumTokens(),
		Eta:       0,
		Headroom:  algo != tokenmagic.BFS,
		Algorithm: algo,
	}
	f, err := tokenmagic.New(d.Ledger, cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	req := diversity.Requirement{C: *c, L: *l}
	start := time.Now()
	res, err := f.GenerateRS(chain.TokenID(*target), req)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	fmt.Printf("algo=%s target=t%d requirement=%v\n", algo, *target, req)
	fmt.Printf("ring size=%d modules=%d iterations=%d time=%v\n",
		res.Size(), res.Modules, res.Iterations, elapsed)
	fmt.Printf("tokens=%v\n", res.Tokens)
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	kind := fs.String("kind", "synthetic", "data set kind: real|synthetic|small")
	seed := fs.Int64("seed", 1, "random seed")
	algoName := fs.String("algo", "TM_P", "solver for spends")
	spends := fs.Int("spends", 15, "number of spend attempts")
	c := fs.Float64("c", 1, "diversity parameter c")
	l := fs.Int("l", 3, "diversity parameter ℓ")
	naive := fs.Bool("naive", false, "use naive random fixed-size rings instead of TokenMagic")
	if err := fs.Parse(args); err != nil {
		return err
	}
	algo, err := algoByName(*algoName)
	if err != nil {
		return err
	}
	d, err := loadDataset(*kind, *seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	req := diversity.Requirement{C: *c, L: *l}

	committed, failed := 0, 0
	if *naive {
		// Naive wallet: pick ring-size-3 rings uniformly at random,
		// ignoring diversity, overlap and chain-reaction structure.
		for i := 0; i < *spends; i++ {
			toks := chain.NewTokenSet(
				d.Universe[rng.Intn(len(d.Universe))],
				d.Universe[rng.Intn(len(d.Universe))],
				d.Universe[rng.Intn(len(d.Universe))])
			if _, err := d.Ledger.AppendRS(toks, req.C, req.L); err != nil {
				failed++
				continue
			}
			committed++
		}
	} else {
		cfg := tokenmagic.Config{
			Lambda:    d.Ledger.NumTokens(),
			Eta:       0.1,
			Headroom:  true,
			Algorithm: algo,
		}
		f, err := tokenmagic.New(d.Ledger, cfg, rng)
		if err != nil {
			return err
		}
		for i := 0; i < *spends; i++ {
			target := d.Universe[rng.Intn(len(d.Universe))]
			if _, _, err := f.GenerateAndCommit(target, req); err != nil {
				failed++
				continue
			}
			committed++
		}
	}

	a := adversary.ChainReaction(d.Ledger.Rings(), nil, d.Origin())
	m := adversary.Summarise(a)
	fmt.Printf("mode=%s committed=%d failed=%d\n", map[bool]string{true: "naive", false: *algoName}[*naive], committed, failed)
	fmt.Printf("rings=%d traced=%d htRevealed=%d avgAnonymity=%.2f provablyConsumed=%d\n",
		m.Rings, m.Traced, m.HTRevealed, m.AvgAnonymity, m.ConsumedTokens)
	return nil
}

func cmdBatches(args []string) error {
	fs := flag.NewFlagSet("batches", flag.ExitOnError)
	blocks := fs.Int("blocks", 12, "blocks to mint")
	txPerBlock := fs.Int("tx", 6, "transactions per block")
	outPerTx := fs.Int("out", 2, "outputs per transaction")
	lambda := fs.Int("lambda", 30, "batch size parameter λ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	l := chain.NewLedger()
	for b := 0; b < *blocks; b++ {
		id := l.BeginBlock()
		for t := 0; t < *txPerBlock; t++ {
			if _, err := l.AddTx(id, *outPerTx); err != nil {
				return err
			}
		}
	}
	bl, err := chain.BuildBatches(l, *lambda)
	if err != nil {
		return err
	}
	fmt.Printf("blocks=%d tokens=%d λ=%d → %d batches\n", l.NumBlocks(), l.NumTokens(), *lambda, bl.Len())
	for i := 0; i < bl.Len(); i++ {
		b, err := bl.Batch(i)
		if err != nil {
			return err
		}
		fmt.Printf("  batch %2d: blocks [%v, %v], %d tokens\n", b.Index, b.FirstBlock, b.LastBlock, len(b.Tokens))
	}
	return nil
}
