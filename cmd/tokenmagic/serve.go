package main

import (
	"flag"
	"fmt"
	"net/http"
	"time"

	"tokenmagic/internal/batchsvc"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/selector"
)

// cmdServe runs a full node: it generates (or could load) a chain and serves
// the batch protocol on -addr until killed.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	kind := fs.String("kind", "real", "data set kind: real|synthetic|small")
	seed := fs.Int64("seed", 1, "random seed")
	lambda := fs.Int("lambda", 800, "batch size parameter λ")
	addr := fs.String("addr", "127.0.0.1:8791", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := loadDataset(*kind, *seed)
	if err != nil {
		return err
	}
	srv, err := batchsvc.NewServer(d.Ledger, *lambda)
	if err != nil {
		return err
	}
	fmt.Printf("full node: %s data set (%d tokens, %d rings), λ=%d, serving on http://%s\n",
		*kind, d.Ledger.NumTokens(), d.Ledger.NumRS(), *lambda, *addr)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return hs.ListenAndServe()
}

// cmdLightSelect acts as a light node: fetch the target token's batch and
// rings from a full node, then run mixin selection locally with no chain
// state.
func cmdLightSelect(args []string) error {
	fs := flag.NewFlagSet("lightselect", flag.ExitOnError)
	node := fs.String("node", "http://127.0.0.1:8791", "full node base URL")
	target := fs.Int("target", 0, "token id to consume")
	c := fs.Float64("c", 0.6, "diversity parameter c")
	l := fs.Int("l", 20, "diversity parameter ℓ")
	algoName := fs.String("algo", "TM_P", "solver: TM_P|TM_G|TM_S")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := batchsvc.NewClient(*node, nil)

	meta, err := client.Meta()
	if err != nil {
		return err
	}
	batch, err := client.BatchOf(chain.TokenID(*target))
	if err != nil {
		return err
	}
	ringInfos, err := client.Rings(batch.Index)
	if err != nil {
		return err
	}
	records := batchsvc.Records(ringInfos)
	supers, fresh := selector.Decompose(records, batch.Tokens)
	req := diversity.Requirement{C: *c, L: *l}
	p, err := selector.NewProblem(chain.TokenID(*target), supers, fresh, batch.Origin(), req.WithHeadroom())
	if err != nil {
		return err
	}
	var res selector.Result
	switch *algoName {
	case "TM_P":
		res, err = selector.Progressive(p)
	case "TM_G":
		res, err = selector.Game(p)
	case "TM_S":
		res, err = selector.Smallest(p)
	default:
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}
	if err != nil {
		return err
	}
	fmt.Printf("light node against %s (chain: %d tokens, %d batches)\n", *node, meta.Tokens, meta.Batches)
	fmt.Printf("batch %d holds %d tokens, %d related rings\n", batch.Index, len(batch.Tokens), len(ringInfos))
	fmt.Printf("algo=%s ring size=%d tokens=%v\n", *algoName, res.Size(), res.Tokens)
	return nil
}
