package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"tokenmagic/internal/batchsvc"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/node"
	"tokenmagic/internal/nodesvc"
	"tokenmagic/internal/obs"
	"tokenmagic/internal/obs/trace"
	"tokenmagic/internal/selector"
	"tokenmagic/internal/store"
	"tokenmagic/internal/tokenmagic"
)

// fullNode bundles the two public services a full node runs over one ledger:
// batch reads (batchsvc) and spend submission/mining (nodesvc).
type fullNode struct {
	batch   *batchsvc.Server
	node    *node.Node
	handler http.Handler
}

// newFullNode composes the public protocol handler. The two service muxes
// own disjoint routes, so the outer mux just dispatches whole paths. With
// spendKeys set the node generates one keypair per token and serves the
// server-signed /v1/spend pipeline (load generation and experiments).
func newFullNode(led *chain.Ledger, lambda int, eta float64, allowUnsigned, spendKeys bool) (*fullNode, error) {
	bs, err := batchsvc.NewServer(led, lambda)
	if err != nil {
		return nil, err
	}
	cfg := node.Config{
		Framework: tokenmagic.Config{
			Lambda:    lambda,
			Eta:       eta,
			Headroom:  true,
			Algorithm: tokenmagic.Progressive,
			Randomize: true,
		},
		AllowUnsigned: allowUnsigned,
	}
	if spendKeys {
		cfg.Keys, err = node.GenerateKeys(nil, led)
		if err != nil {
			return nil, err
		}
	}
	nd, err := node.New(led, cfg)
	if err != nil {
		return nil, err
	}
	bh := bs.Handler()
	nh := nodesvc.NewServer(nd).Handler()
	mux := http.NewServeMux()
	for _, route := range []string{"/v1/meta", "/v1/batch", "/v1/rings"} {
		mux.Handle(route, bh)
	}
	for _, route := range []string{"/v1/submit", "/v1/mine", "/v1/spend", "/v1/verify", "/v1/status"} {
		mux.Handle(route, nh)
	}
	return &fullNode{batch: bs, node: nd, handler: mux}, nil
}

// serveOperator mounts the telemetry endpoints (/debug/vars, /debug/metrics
// and optionally /debug/pprof/) on their own listener so profiling and
// metrics never share a port with untrusted protocol traffic.
func serveOperator(addr string, withPprof bool) {
	mux := obs.OperatorMux(obs.Default(), withPprof)
	hs := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		slog.Info("operator endpoints up", "addr", addr, "pprof", withPprof)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			slog.Error("operator server failed", "addr", addr, "err", err)
		}
	}()
}

// cmdServe runs a full node: it generates (or could load) a chain and serves
// the batch protocol plus spend submission on -addr until killed. With
// -metrics it additionally exposes telemetry on a separate operator port.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	kind := fs.String("kind", "real", "data set kind: real|synthetic|small")
	seed := fs.Int64("seed", 1, "random seed")
	lambda := fs.Int("lambda", 800, "batch size parameter λ")
	eta := fs.Float64("eta", 0.1, "liveness guard η for submitted spends")
	addr := fs.String("addr", "127.0.0.1:8791", "public listen address")
	metricsAddr := fs.String("metrics", "", "operator listen address for /debug/vars, /debug/metrics and pprof (empty disables)")
	withPprof := fs.Bool("pprof", true, "mount net/http/pprof on the -metrics port")
	logLevel := fs.String("log-level", "info", "slog level: debug|info|warn|error")
	allowUnsigned := fs.Bool("allow-unsigned", false, "accept submissions without ring signatures (experiments only)")
	spendKeys := fs.Bool("spend-keys", false, "generate per-token keys and serve the server-signed /v1/spend pipeline (load testing only)")
	traces := fs.Bool("traces", true, "record request traces (export on the -metrics port at /debug/traces)")
	sf := registerStoreFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	trace.Default().SetEnabled(*traces)
	if err := setupLogging(*logLevel); err != nil {
		return err
	}
	d, err := loadDataset(*kind, *seed)
	if err != nil {
		return err
	}
	led := d.Ledger
	if *sf.dataDir != "" {
		st, err := sf.open(*lambda)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := st.Close(); cerr != nil {
				slog.Error("store close", "err", cerr)
			}
		}()
		if st.Ledger.Epoch() == 0 {
			// Fresh data dir: seed it with the generated chain so the first
			// run and every restart serve the same history.
			if err := store.Seed(st.Ledger, d.Ledger.View()); err != nil {
				return err
			}
			slog.Info("store seeded from data set", "kind", *kind, "seed", *seed, "epoch", st.Ledger.Epoch())
		} else {
			// Resumed history must extend the requested dataset; otherwise
			// the node would silently serve (and grow) a population the
			// flags do not describe.
			if perr := st.Ledger.View().CheckPrefix(d.Ledger.View()); perr != nil {
				return fmt.Errorf("serve: data dir %q was not seeded from -kind=%s -seed=%d: %v (point at a matching data dir, or a fresh one to reseed)",
					*sf.dataDir, *kind, *seed, perr)
			}
			slog.Info("store resumed", "epoch", st.Ledger.Epoch(), "rings", st.Ledger.NumRS())
		}
		led = st.Ledger
	}
	fn, err := newFullNode(led, *lambda, *eta, *allowUnsigned, *spendKeys)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		serveOperator(*metricsAddr, *withPprof)
	}
	slog.Info("full node up",
		"kind", *kind,
		"tokens", led.NumTokens(),
		"rings", led.NumRS(),
		"lambda", *lambda,
		"eta", *eta,
		"addr", *addr,
		"data_dir", *sf.dataDir)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           fn.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return hs.ListenAndServe()
}

// cmdLightSelect acts as a light node: fetch the target token's batch and
// rings from a full node, then run mixin selection locally with no chain
// state.
func cmdLightSelect(args []string) error {
	fs := flag.NewFlagSet("lightselect", flag.ExitOnError)
	nodeURL := fs.String("node", "http://127.0.0.1:8791", "full node base URL")
	target := fs.Int("target", 0, "token id to consume")
	c := fs.Float64("c", 0.6, "diversity parameter c")
	l := fs.Int("l", 20, "diversity parameter ℓ")
	algoName := fs.String("algo", "TM_P", "solver: TM_P|TM_G|TM_S")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := batchsvc.NewClient(*nodeURL, nil)

	meta, err := client.Meta()
	if err != nil {
		return err
	}
	batch, err := client.BatchOf(chain.TokenID(*target))
	if err != nil {
		return err
	}
	ringInfos, err := client.Rings(batch.Index)
	if err != nil {
		return err
	}
	records := batchsvc.Records(ringInfos)
	supers, fresh := selector.Decompose(records, batch.Tokens)
	req := diversity.Requirement{C: *c, L: *l}
	p, err := selector.NewProblem(chain.TokenID(*target), supers, fresh, batch.Origin(), req.WithHeadroom())
	if err != nil {
		return err
	}
	var res selector.Result
	switch *algoName {
	case "TM_P":
		res, err = selector.Progressive(p)
	case "TM_G":
		res, err = selector.Game(p)
	case "TM_S":
		res, err = selector.Smallest(p)
	default:
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}
	if err != nil {
		return err
	}
	fmt.Printf("light node against %s (chain: %d tokens, %d batches)\n", *nodeURL, meta.Tokens, meta.Batches)
	fmt.Printf("batch %d holds %d tokens, %d related rings\n", batch.Index, len(batch.Tokens), len(ringInfos))
	fmt.Printf("algo=%s ring size=%d tokens=%v\n", *algoName, res.Size(), res.Tokens)
	return nil
}
