package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/sim"
	"tokenmagic/internal/store"
)

// cmdSim runs the multi-user batch lifecycle simulation and prints the
// anonymity-over-time series plus per-segment outcomes.
func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	tokens := fs.Int("tokens", 80, "tokens in the simulated batch")
	spends := fs.Int("spends", 60, "spend attempts")
	every := fs.Int("every", 10, "snapshot interval (attempts)")
	eta := fs.Float64("eta", 0.1, "liveness guard η")
	sigma := fs.Float64("sigma", 8, "HT distribution σ")
	seed := fs.Int64("seed", 1, "random seed")
	metricsAddr := fs.String("metrics", "", "operator listen address live during the run (/debug/vars, /debug/metrics, pprof)")
	withPprof := fs.Bool("pprof", true, "mount net/http/pprof on the -metrics port")
	logLevel := fs.String("log-level", "info", "slog level: debug|info|warn|error")
	sf := registerStoreFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := setupLogging(*logLevel); err != nil {
		return err
	}
	if *metricsAddr != "" {
		serveOperator(*metricsAddr, *withPprof)
	}
	cfg := sim.Config{
		Tokens:        *tokens,
		Sigma:         *sigma,
		Strategies:    sim.DefaultMix(),
		Spends:        *spends,
		SnapshotEvery: *every,
		Eta:           *eta,
		Seed:          *seed,
	}
	if *sf.dataDir != "" {
		st, err := sf.open(*tokens)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := st.Close(); cerr != nil {
				slog.Error("store close", "err", cerr)
			}
		}()
		cfg.Persist = func(gen *chain.Ledger) (*chain.Ledger, error) {
			if st.Ledger.Epoch() == 0 {
				// Fresh data dir: write the generated history through the
				// journal so a restart regenerates nothing.
				if err := store.Seed(st.Ledger, gen.View()); err != nil {
					return nil, err
				}
				slog.Info("store seeded from generated chain", "epoch", st.Ledger.Epoch())
			} else {
				// Crash/restart: resume the recovered mid-run chain. Spends
				// already on it stay committed; the run extends it — but only
				// if it actually holds this run's token population (the
				// Persist contract), not a dir seeded by different flags.
				if perr := st.Ledger.View().CheckPrefix(gen.View()); perr != nil {
					return nil, fmt.Errorf("sim: data dir %q holds a different population than this -tokens/-sigma/-seed run: %v (use matching flags or a fresh data dir)",
						*sf.dataDir, perr)
				}
				slog.Info("store resumed mid-run",
					"epoch", st.Ledger.Epoch(), "rings", st.Ledger.NumRS())
			}
			return st.Ledger, nil
		}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Println("anonymity over time (exact chain-reaction adversary):")
	fmt.Printf("%8s %8s %8s %12s %14s %14s %18s\n",
		"attempt", "rings", "traced", "htRevealed", "avgAnonymity", "minAnonymity", "provablyConsumed")
	for _, s := range res.Snapshots {
		fmt.Printf("%8d %8d %8d %12d %14.2f %14d %18d\n",
			s.Attempt, s.RingsOnChain, s.Traced, s.HTRevealed, s.AvgAnonymity, s.MinAnonymity, s.ProvablyConsumed)
	}
	fmt.Printf("\neffective anonymity-set size (DM decomposition): mean=%.2f min=%d over %d rings (traced=%d)\n",
		res.Final.AvgAnonymity, res.Final.MinAnonymity, res.Final.Rings, res.Final.Traced)
	fmt.Println("\nper-segment outcomes:")
	fmt.Printf("%-14s %10s %10s %10s %10s\n", "segment", "attempts", "committed", "rejected", "avgSize")
	for _, seg := range res.Segments {
		fmt.Printf("%-14s %10d %10d %10d %10.1f\n",
			seg.Name, seg.Attempts, seg.Committed, seg.Rejected, seg.AvgSize)
	}
	if res.Stranded > 0 {
		fmt.Printf("\nstranded spend attempts: %d\n", res.Stranded)
	}
	st := res.Framework
	fmt.Printf("\nmetrics: solves=%d solveFailures=%d cacheHitRate=%.1f%% admits=%d rejects=%d (liveness=%d config=%d diversity=%d other=%d)\n",
		st.Solves, st.SolveFailures, 100*st.CacheHitRate(), st.VerifyAdmits,
		st.Rejects(), st.RejectLiveness, st.RejectConfig, st.RejectDiversity, st.RejectOther)
	for _, algo := range []string{"TM_P", "TM_G", "TM_S", "TM_R", "TM_B"} {
		h, ok := res.SolveLatencyUS[algo]
		if !ok {
			continue
		}
		fmt.Printf("solve latency %s: n=%d mean=%.0fus p50=%.0fus p99=%.0fus\n",
			algo, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
	}
	return nil
}

// cmdSnapshot saves a generated data set to a file, or inspects one.
func cmdSnapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	kind := fs.String("kind", "real", "data set kind to save: real|synthetic|small")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "write snapshot to this file")
	in := fs.String("in", "", "read and summarise a snapshot file instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		l, err := chain.ReadLedger(f)
		if err != nil {
			return err
		}
		fmt.Printf("snapshot %s: %d blocks, %d txs, %d tokens, %d rings\n",
			*in, l.NumBlocks(), l.NumTxs(), l.NumTokens(), l.NumRS())
		return nil
	}
	if *out == "" {
		return fmt.Errorf("snapshot: need -out FILE or -in FILE")
	}
	d, err := loadDataset(*kind, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := d.Ledger.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s snapshot (%d bytes) to %s\n", *kind, n, *out)
	return nil
}
