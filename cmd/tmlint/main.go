// Command tmlint is the repository's project-aware static-analysis suite:
// six go/ast + go/types analyzers (cryptorand, lockcheck, atomiccheck,
// errdrop, determinism, setmutation) that machine-check the invariants the
// paper's anonymity guarantees rest on. CI runs `tmlint ./...` as a
// blocking step; see README "Static analysis" for the policy file format
// and the //lint:ignore suppression syntax.
//
// Usage:
//
//	tmlint [-policy file] [-list] [packages]
//
// Packages may be "./..." (everything under the module root, the default)
// or individual package directories. Exit status: 0 clean, 1 findings,
// 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tmlint", flag.ContinueOnError)
	policyPath := fs.String("policy", "", "policy file (default: .tmlint.json at the module root)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			if len(a.Scope) > 0 {
				fmt.Printf("%-12s scope: %v\n", "", a.Scope)
			}
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		var batch []*analysis.Package
		if pat == "./..." || pat == "..." {
			batch, err = loader.LoadAll()
		} else {
			var pkg *analysis.Package
			pkg, err = loader.LoadDir(pat)
			batch = []*analysis.Package{pkg}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmlint:", err)
			return 2
		}
		for _, p := range batch {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	pp := *policyPath
	if pp == "" {
		pp = filepath.Join(root, ".tmlint.json")
	}
	policy, err := analysis.LoadPolicy(pp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmlint:", err)
		return 2
	}

	diags, err := analysis.Run(pkgs, analyzers.All(), policy, loader.RelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: %s: %s\n",
			loader.RelPath(d.Position.Filename), d.Position.Line, d.Position.Column,
			d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the dir holding
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
