// Command tmlint is the repository's project-aware static-analysis suite:
// twelve go/ast + go/types analyzers (cryptorand, lockcheck, atomiccheck,
// errdrop, determinism, setmutation, secretflow, lockorder, ctxpoll,
// hotalloc, tracecheck, cttime) that machine-check the invariants the
// paper's anonymity guarantees rest on. CI runs `tmlint ./...` as a blocking step; see README
// "Static analysis" for the policy file format and the //lint:ignore
// suppression syntax.
//
// Usage:
//
//	tmlint [-policy file] [-list] [-json] [-stats] [-cache] [-parallel n] [packages]
//
// Packages may be "./..." (everything under the module root, the default)
// or individual package directories. Module-wide runs go through the
// incremental fact cache under .tmlint-cache/ (disable with -cache=false);
// explicit package arguments always analyze directly. Exit status: 0 clean,
// 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/analyzers"
	"tokenmagic/internal/analysis/cache"
)

// analyzerVersion namespaces the fact cache: bump it whenever an analyzer's
// behaviour, message format, scope, or the driver's suppression semantics
// change, so stale cached diagnostics can never survive an upgrade.
const analyzerVersion = "tmlint-8"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json output shape; stable field names, module-relative
// slash-separated file paths.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	policyPath := fs.String("policy", "", "policy file (default: .tmlint.json at the module root)")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	stats := fs.Bool("stats", false, "print analyzed/cached package counters to stderr")
	useCache := fs.Bool("cache", true, "use the incremental fact cache (module-wide runs only)")
	parallel := fs.Int("parallel", 0, "max packages analyzed concurrently (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
			if len(a.Scope) > 0 {
				fmt.Fprintf(stdout, "%-12s scope: %v\n", "", a.Scope)
			}
		}
		return 0
	}

	start := time.Now()
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "tmlint:", err)
		return 2
	}

	pp := *policyPath
	if pp == "" {
		pp = filepath.Join(root, ".tmlint.json")
	}
	policy, err := analysis.LoadPolicy(pp)
	if err != nil {
		fmt.Fprintln(stderr, "tmlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wholeModule := len(patterns) == 1 && (patterns[0] == "./..." || patterns[0] == "...")

	var diags []analysis.Diagnostic
	relPath := moduleRel(root)
	analyzed, cached := 0, 0

	if wholeModule && *useCache {
		policyData, _ := os.ReadFile(pp) // missing file hashes as empty
		res, err := cache.Run(cache.Config{
			Root:       root,
			Version:    analyzerVersion,
			PolicyData: policyData,
			Policy:     policy,
			// Lock-order cycles do not follow the import graph, so the
			// lockorder scope is mutually invalidating (see cache doc).
			CoupledScopes: analyzers.Lockorder.Scope,
			Parallelism:   *parallel,
		}, analyzers.All())
		if err != nil {
			fmt.Fprintln(stderr, "tmlint:", err)
			return 2
		}
		diags = res.Diagnostics
		analyzed, cached = res.Analyzed, res.Cached
	} else {
		loader, err := analysis.NewLoader(root)
		if err != nil {
			fmt.Fprintln(stderr, "tmlint:", err)
			return 2
		}
		var pkgs []*analysis.Package
		seen := make(map[string]bool)
		for _, pat := range patterns {
			var batch []*analysis.Package
			if pat == "./..." || pat == "..." {
				batch, err = loader.LoadAll()
			} else {
				var pkg *analysis.Package
				pkg, err = loader.LoadDir(pat)
				batch = []*analysis.Package{pkg}
			}
			if err != nil {
				fmt.Fprintln(stderr, "tmlint:", err)
				return 2
			}
			for _, p := range batch {
				if !seen[p.Path] {
					seen[p.Path] = true
					pkgs = append(pkgs, p)
				}
			}
		}
		diags, err = analysis.RunWithOptions(pkgs, analyzers.All(), policy, loader.RelPath, analysis.RunOptions{
			Parallelism: *parallel,
			AllPackages: loader.Packages(),
		})
		if err != nil {
			fmt.Fprintln(stderr, "tmlint:", err)
			return 2
		}
		relPath = loader.RelPath
		analyzed = len(pkgs)
	}

	if *stats {
		fmt.Fprintf(stderr, "tmlint: %d package(s) analyzed, %d from cache in %s\n",
			analyzed, cached, time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     relPath(d.Position.Filename),
				Line:     d.Position.Line,
				Column:   d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "tmlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relPath(d.Position.Filename), d.Position.Line, d.Position.Column,
				d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "tmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRel mirrors Loader.RelPath without requiring a loader: file paths
// render module-root-relative, slash-separated.
func moduleRel(root string) func(string) string {
	return func(filename string) string {
		rel, err := filepath.Rel(root, filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			return filename
		}
		return filepath.ToSlash(rel)
	}
}

// findModuleRoot walks up from the working directory to the dir holding
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
