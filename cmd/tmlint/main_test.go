package main

import (
	"os"
	"path/filepath"
	"testing"
)

// fixture resolves a golden fixture directory relative to this package.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", name)
}

// TestRunExitCodes drives the CLI entry point over the golden fixtures: the
// unscoped analyzers fire on their positive fixtures under the natural
// testdata import path, so each directory must exit 1.
func TestRunExitCodes(t *testing.T) {
	for _, name := range []string{"errdrop", "lockcheck", "atomiccheck", "setmutation"} {
		if got := run([]string{fixture(name)}); got != 1 {
			t.Errorf("tmlint on the %s positive fixture: exit %d, want 1", name, got)
		}
	}
	if got := run([]string{filepath.Join("..", "..", "internal", "obs")}); got != 0 {
		t.Errorf("tmlint on a clean package: exit %d, want 0", got)
	}
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("tmlint -list: exit %d, want 0", got)
	}
}

// TestRunPolicyDeny exercises the deny action end to end: the scoped
// cryptorand and determinism fixtures lie outside their analyzers' scopes
// under the natural testdata paths, and a deny rule drags them back in.
func TestRunPolicyDeny(t *testing.T) {
	pol := filepath.Join(t.TempDir(), "policy.json")
	rules := `{"rules":[
		{"analyzer":"cryptorand","path":"internal/analysis/testdata/cryptorand","action":"deny","reason":"exercise deny"},
		{"analyzer":"determinism","path":"internal/analysis/testdata/determinism","action":"deny","reason":"exercise deny"}]}`
	if err := os.WriteFile(pol, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"cryptorand", "determinism"} {
		if got := run([]string{fixture(name)}); got != 0 {
			t.Errorf("without the deny rule the %s fixture is out of scope: exit %d, want 0", name, got)
		}
		if got := run([]string{"-policy", pol, fixture(name)}); got != 1 {
			t.Errorf("the deny rule should pull the %s fixture into scope: exit %d, want 1", name, got)
		}
	}
}
