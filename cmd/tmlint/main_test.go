package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func regexpMustCompile(t *testing.T, s string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(s)
	if err != nil {
		t.Fatalf("problem matcher regexp %q does not compile: %v", s, err)
	}
	return re
}

// fixture resolves a golden fixture directory relative to this package.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", name)
}

// TestRunExitCodes drives the CLI entry point over the golden fixtures: the
// unscoped analyzers fire on their positive fixtures under the natural
// testdata import path, so each directory must exit 1.
func TestRunExitCodes(t *testing.T) {
	for _, name := range []string{"errdrop", "lockcheck", "atomiccheck", "setmutation"} {
		if got := run([]string{fixture(name)}, io.Discard, io.Discard); got != 1 {
			t.Errorf("tmlint on the %s positive fixture: exit %d, want 1", name, got)
		}
	}
	if got := run([]string{filepath.Join("..", "..", "internal", "obs")}, io.Discard, io.Discard); got != 0 {
		t.Errorf("tmlint on a clean package: exit %d, want 0", got)
	}
	if got := run([]string{"-list"}, io.Discard, io.Discard); got != 0 {
		t.Errorf("tmlint -list: exit %d, want 0", got)
	}
}

// TestRunPolicyDeny exercises the deny action end to end: the scoped
// cryptorand, determinism and cttime fixtures lie outside their analyzers'
// scopes under the natural testdata paths, and a deny rule drags them back
// in.
func TestRunPolicyDeny(t *testing.T) {
	pol := filepath.Join(t.TempDir(), "policy.json")
	rules := `{"rules":[
		{"analyzer":"cryptorand","path":"internal/analysis/testdata/cryptorand","action":"deny","reason":"exercise deny"},
		{"analyzer":"determinism","path":"internal/analysis/testdata/determinism","action":"deny","reason":"exercise deny"},
		{"analyzer":"cttime","path":"internal/analysis/testdata/cttime","action":"deny","reason":"exercise deny"}]}`
	if err := os.WriteFile(pol, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"cryptorand", "determinism", "cttime"} {
		if got := run([]string{fixture(name)}, io.Discard, io.Discard); got != 0 {
			t.Errorf("without the deny rule the %s fixture is out of scope: exit %d, want 0", name, got)
		}
		if got := run([]string{"-policy", pol, fixture(name)}, io.Discard, io.Discard); got != 1 {
			t.Errorf("the deny rule should pull the %s fixture into scope: exit %d, want 1", name, got)
		}
	}
}

// TestRunJSON pins the -json output contract: a JSON array on stdout whose
// elements carry file/line/column/analyzer/message, with module-relative
// slash-separated paths — the shape the CI problem matcher and any tooling
// downstream parse.
func TestRunJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", fixture("errdrop")}, &stdout, &stderr); got != 1 {
		t.Fatalf("tmlint -json on the errdrop fixture: exit %d, want 1 (stderr: %s)", got, stderr.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected at least one finding in the JSON output")
	}
	for _, d := range diags {
		if d.Analyzer != "errdrop" {
			t.Errorf("analyzer = %q, want errdrop", d.Analyzer)
		}
		if d.Line <= 0 || d.Column <= 0 {
			t.Errorf("finding has no position: %+v", d)
		}
		if d.Message == "" {
			t.Errorf("finding has no message: %+v", d)
		}
		if !strings.HasPrefix(d.File, "internal/analysis/testdata/errdrop/") {
			t.Errorf("file %q is not module-relative slash form", d.File)
		}
	}

	// A clean package must still produce a valid (empty) JSON array.
	stdout.Reset()
	if got := run([]string{"-json", filepath.Join("..", "..", "internal", "obs")}, &stdout, io.Discard); got != 0 {
		t.Fatalf("tmlint -json on a clean package: exit %d, want 0", got)
	}
	var empty []json.RawMessage
	if err := json.Unmarshal(stdout.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("clean run should emit an empty JSON array, got %q (err %v)", stdout.String(), err)
	}

	// The interprocedural cttime analyzer reports through the same shape;
	// a deny rule pulls its fixture into scope under the testdata path.
	pol := filepath.Join(t.TempDir(), "policy.json")
	rule := `{"rules":[{"analyzer":"cttime","path":"internal/analysis/testdata/cttime","action":"deny","reason":"exercise json"}]}`
	if err := os.WriteFile(pol, []byte(rule), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if got := run([]string{"-json", "-policy", pol, fixture("cttime")}, &stdout, io.Discard); got != 1 {
		t.Fatalf("tmlint -json on the cttime fixture: exit %d, want 1", got)
	}
	diags = diags[:0]
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("cttime stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected at least one cttime finding in the JSON output")
	}
	for _, d := range diags {
		if d.Analyzer != "cttime" {
			t.Errorf("analyzer = %q, want cttime", d.Analyzer)
		}
		if d.Line <= 0 || d.Column <= 0 || d.Message == "" {
			t.Errorf("cttime finding missing position or message: %+v", d)
		}
		if !strings.HasPrefix(d.File, "internal/analysis/testdata/cttime/") {
			t.Errorf("file %q is not module-relative slash form", d.File)
		}
	}
}

// TestProblemMatcherShape checks the text output line format against the
// regexp registered in the GitHub Actions problem matcher, so the two cannot
// drift apart silently.
func TestProblemMatcherShape(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "tmlint-problem-matcher.json"))
	if err != nil {
		t.Fatal(err)
	}
	var matcher struct {
		ProblemMatcher []struct {
			Owner   string `json:"owner"`
			Pattern []struct {
				Regexp string `json:"regexp"`
			} `json:"pattern"`
		} `json:"problemMatcher"`
	}
	if err := json.Unmarshal(data, &matcher); err != nil {
		t.Fatalf("bad problem matcher JSON: %v", err)
	}
	if len(matcher.ProblemMatcher) == 0 || len(matcher.ProblemMatcher[0].Pattern) == 0 {
		t.Fatal("problem matcher has no pattern")
	}

	re := regexpMustCompile(t, matcher.ProblemMatcher[0].Pattern[0].Regexp)

	var stdout bytes.Buffer
	if got := run([]string{fixture("errdrop")}, &stdout, io.Discard); got != 1 {
		t.Fatalf("errdrop fixture: exit %d, want 1", got)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !re.MatchString(line) {
			t.Errorf("output line does not match the problem matcher regexp:\n  line:   %s\n  regexp: %s", line, re)
		}
	}

	// cttime messages (multi-clause, "via call to …") must stay matchable
	// too; a deny rule pulls the fixture into the scoped analyzer's range.
	pol := filepath.Join(t.TempDir(), "policy.json")
	rule := `{"rules":[{"analyzer":"cttime","path":"internal/analysis/testdata/cttime","action":"deny","reason":"exercise matcher"}]}`
	if err := os.WriteFile(pol, []byte(rule), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if got := run([]string{"-policy", pol, fixture("cttime")}, &stdout, io.Discard); got != 1 {
		t.Fatalf("cttime fixture: exit %d, want 1", got)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !re.MatchString(line) {
			t.Errorf("cttime line does not match the problem matcher regexp:\n  line:   %s\n  regexp: %s", line, re)
		}
	}
}
