module tokenmagic

go 1.22
