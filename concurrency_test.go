package tokenmagic

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// Many goroutines spending simultaneously: spends serialise internally,
// double spends surface as errors (never as two rings consuming one token),
// and audits run concurrently with spends. Run with -race.
func TestConcurrentSpends(t *testing.T) {
	sys := NewSystem(Options{DisableSigning: true})
	outs := make([]int, 30)
	for i := range outs {
		outs[i] = 2
	}
	ids, err := sys.MintBlock(outs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Seal(); err != nil {
		t.Fatal(err)
	}

	req := Requirement{C: 1, L: 3}
	var wg sync.WaitGroup
	var successes, doubles atomic.Int64
	// 4 workers × the same 12 targets: contention guarantees duplicate
	// attempts on every token.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				_, err := sys.Spend(ids[i], req)
				switch {
				case err == nil:
					successes.Add(1)
				case errors.Is(err, ErrDoubleSpend):
					doubles.Add(1)
				case errors.Is(err, ErrNoEligible), errors.Is(err, ErrLiveness):
					// Acceptable solver outcomes under contention.
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
	}
	// Concurrent audits must not race with spends.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = sys.Audit()
			_ = sys.NumRings()
		}
	}()
	wg.Wait()

	if successes.Load() == 0 {
		t.Fatal("no spends succeeded")
	}
	if doubles.Load() == 0 {
		t.Fatal("contention must surface double-spend rejections")
	}
	// Every token was spent at most once: ring count equals successes.
	if int64(sys.NumRings()) != successes.Load() {
		t.Fatalf("rings %d != successes %d", sys.NumRings(), successes.Load())
	}
}
