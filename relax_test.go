package tokenmagic

import (
	"errors"
	"testing"
)

func TestSpendRelaxedFacade(t *testing.T) {
	// Only 3 source transactions: ℓ=5 is infeasible, ℓ=3 works.
	sys := NewSystem(Options{DisableSigning: true, DisableHeadroom: true})
	ids, err := sys.MintBlock(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Seal(); err != nil {
		t.Fatal(err)
	}
	strict := Requirement{C: 1, L: 5}
	if _, err := sys.Spend(ids[0], strict); !errors.Is(err, ErrNoEligible) {
		t.Fatalf("strict spend err = %v", err)
	}
	rcpt, achieved, err := sys.SpendRelaxed(ids[0], strict, RelaxationPolicy{LStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if achieved.L >= strict.L {
		t.Fatalf("achieved %v not weaker than %v", achieved, strict)
	}
	if !rcpt.Tokens.Contains(ids[0]) {
		t.Fatal("target missing from relaxed ring")
	}
	if sys.NumRings() != 1 {
		t.Fatalf("rings = %d", sys.NumRings())
	}
	// Relaxed spends still register double-spend protection.
	if _, _, err := sys.SpendRelaxed(ids[0], strict, RelaxationPolicy{LStep: 1}); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("double relaxed spend err = %v", err)
	}
}

func TestSpendRelaxedBeforeSeal(t *testing.T) {
	sys := NewSystem(Options{})
	if _, _, err := sys.SpendRelaxed(0, Requirement{C: 1, L: 2}, RelaxationPolicy{LStep: 1}); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("err = %v", err)
	}
}
