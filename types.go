// Package tokenmagic is the public API of the TokenMagic library, a
// reproduction of "When the Recursive Diversity Anonymity Meets the Ring
// Signature" (SIGMOD 2021). It solves the diversity-aware mixin selection
// (DA-MS) problem: choosing the minimum set of chaff tokens ("mixins") for a
// ring signature so that
//
//   - the ring satisfies a recursive (c, ℓ)-diversity requirement over the
//     historical transactions of its tokens,
//   - no token of any ring can be eliminated by chain-reaction analysis, and
//   - previously published rings keep their declared diversity.
//
// The typical flow is: create a System, mint tokens in blocks, Seal the
// chain into TokenMagic batches, then Spend tokens — each spend selects
// mixins with the configured algorithm, produces a real linkable ring
// signature, verifies it like a miner would, and appends it to the ledger.
//
//	sys := tokenmagic.NewSystem(tokenmagic.Options{})
//	ids, _ := sys.MintBlock(2, 2, 3)        // three transactions
//	_ = sys.Seal()
//	receipt, _ := sys.Spend(ids[0], tokenmagic.Requirement{C: 1, L: 3})
//
// Lower-level building blocks (exact solvers, adversary simulations,
// workload generators) are exposed through the experiment harness binaries
// in cmd/ and through this package's audit helpers.
package tokenmagic

import (
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	itm "tokenmagic/internal/tokenmagic"
)

// TokenID identifies a token (an unspent transaction output).
type TokenID = chain.TokenID

// TxID identifies a historical transaction.
type TxID = chain.TxID

// RSID identifies a ring signature on the ledger.
type RSID = chain.RSID

// TokenSet is a sorted set of tokens; a ring signature's visible content.
type TokenSet = chain.TokenSet

// NewTokenSet builds a TokenSet from arbitrary ids.
func NewTokenSet(ids ...TokenID) TokenSet { return chain.NewTokenSet(ids...) }

// Requirement is a recursive (c, ℓ)-diversity requirement: the most frequent
// historical transaction among a ring's tokens must satisfy
// q₁ < c·(q_ℓ + … + q_θ).
type Requirement = diversity.Requirement

// Algorithm selects the mixin-selection strategy.
type Algorithm = itm.Algorithm

// The available algorithms. Progressive (TM_P) is the fast approximation
// suited to latency-sensitive uses; Game (TM_G) finds the smallest rings and
// suits fee-sensitive uses; Smallest and RandomPick are the paper's
// baselines; BFS is the exact solver for tiny universes.
const (
	Progressive = itm.Progressive
	Game        = itm.Game
	Smallest    = itm.Smallest
	RandomPick  = itm.RandomPick
	BFS         = itm.BFS
)

// Errors re-exported from the framework for callers to match with errors.Is.
var (
	// ErrNoEligible means no ring satisfying the constraints exists; relax
	// the requirement (increase c or decrease ℓ) and retry.
	ErrNoEligible = errNoEligible
	// ErrLiveness means committing the ring would leave future spenders of
	// this batch without eligible mixins (the η guard rejected it).
	ErrLiveness = itm.ErrLiveness
	// ErrConfig means the ring violates the practical configuration
	// (partial overlap with an existing ring, or spans batches).
	ErrConfig = itm.ErrConfig
	// ErrDiversity means the ring or one of its DTRSs fails its diversity
	// requirement.
	ErrDiversity = itm.ErrDiversity
)
