package tokenmagic

// One testing.B benchmark per paper table/figure, plus the DESIGN.md
// ablations. Each benchmark regenerates its artefact's data series; run
//
//	go test -bench=. -benchmem
//
// and compare shapes against EXPERIMENTS.md. The heavyweight sweeps use a
// reduced instance count per iteration so `go test -bench=.` terminates in
// minutes; cmd/benchfigures reproduces the paper-scale runs.

import (
	"errors"
	"testing"

	"tokenmagic/internal/bench"
)

func benchOpts() bench.Options {
	return bench.Options{Instances: 10, Seed: 1, Headroom: true}
}

// BenchmarkFigure3_TokenDistribution regenerates the real data set's
// output-count histogram (Figure 3).
func BenchmarkFigure3_TokenDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure3(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkFigure4_BFSPerRS measures exact TM_B generation of successive
// rings on the 20-token micro set with recursive (5,3)-diversity (Figure 4).
func BenchmarkFigure4_BFSPerRS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.Figure4(1, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFigure5_VaryC sweeps c_τ over the real data set (Figure 5).
func BenchmarkFigure5_VaryC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6_VaryL sweeps ℓ_τ over the real data set (Figure 6).
func BenchmarkFigure6_VaryL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_VarySigma sweeps the HT-distribution σ (Figure 7).
func BenchmarkFigure7_VarySigma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8_VaryS sweeps the super-ring count |S| (Figure 8).
func BenchmarkFigure8_VaryS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9_VarySuperSize sweeps the super-ring size range (Figure 9).
func BenchmarkFigure9_VarySuperSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10_VaryFresh sweeps the fresh-token count |F| (Figure 10).
func BenchmarkFigure10_VaryFresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure10(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_DTRSExactVsClosedForm measures A1: exact Algorithm-3
// DTRS checks vs the Theorem-6.1 closed form.
func BenchmarkAblation_DTRSExactVsClosedForm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.AblationDTRS(10, 1)
		if err != nil {
			b.Fatal(err)
		}
		if a.Agreements != a.Instances {
			b.Fatalf("closed form disagreed on %d instances", a.Instances-a.Agreements)
		}
	}
}

// BenchmarkAblation_EtaGuard measures A2: liveness with and without the
// η guard.
func BenchmarkAblation_EtaGuard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationEta(0.5, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Headroom measures A3: the second practical configuration
// on vs off.
func BenchmarkAblation_Headroom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, err := bench.AblationHeadroom(true, 5, 2)
		if err != nil {
			b.Fatal(err)
		}
		if on.Violations != 0 {
			b.Fatal("headroom must prevent DTRS violations")
		}
	}
}

// BenchmarkSpendEndToEnd measures the full public-API pipeline: selection,
// real ring signature, verification, commit. Sustained consumption
// eventually exhausts a batch (double spends, η-guard rejections), so the
// benchmark rebuilds a fresh system outside the timed path whenever the
// current one runs dry.
func BenchmarkSpendEndToEnd(b *testing.B) {
	req := Requirement{C: 1, L: 5}
	fresh := func() (*System, []TokenID) {
		sys := NewSystem(Options{})
		outs := make([]int, 200)
		for i := range outs {
			outs[i] = 2
		}
		ids, err := sys.MintBlock(outs...)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Seal(); err != nil {
			b.Fatal(err)
		}
		return sys, ids
	}
	sys, ids := fresh()
	next := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next >= len(ids) {
			b.StopTimer()
			sys, ids = fresh()
			next = 0
			b.StartTimer()
		}
		_, err := sys.Spend(ids[next], req)
		next++
		if err != nil {
			switch {
			case errors.Is(err, ErrDoubleSpend), errors.Is(err, ErrLiveness), errors.Is(err, ErrNoEligible):
				// Batch exhaustion under sustained consumption: replace the
				// system outside the timed path and retry this iteration.
				b.StopTimer()
				sys, ids = fresh()
				next = 0
				b.StartTimer()
				i--
			default:
				b.Fatal(err)
			}
		}
	}
}
