package tokenmagic_test

import (
	"errors"
	"fmt"

	"tokenmagic"
)

// The minimal end-to-end flow: mint, seal, spend, audit.
func Example() {
	sys := tokenmagic.NewSystem(tokenmagic.Options{DisableSigning: true})
	ids, _ := sys.MintBlock(2, 2, 2, 2, 2, 2)
	_ = sys.Seal()

	receipt, err := sys.Spend(ids[0], tokenmagic.Requirement{C: 1, L: 3})
	if err != nil {
		fmt.Println("spend failed:", err)
		return
	}
	// The default headroom configuration solves for ℓ+1 = 4 distinct
	// source transactions, so the ring holds the spent token plus mixins
	// spanning four transactions.
	fmt.Println("ring spans at least 4 tokens:", len(receipt.Tokens) >= 4)
	fmt.Println("contains spent token:", receipt.Tokens.Contains(ids[0]))

	report := sys.Audit()
	fmt.Println("traced rings:", report.TracedRings)
	// Output:
	// ring spans at least 4 tokens: true
	// contains spent token: true
	// traced rings: 0
}

// Double spends are rejected deterministically.
func ExampleSystem_Spend_doubleSpend() {
	sys := tokenmagic.NewSystem(tokenmagic.Options{DisableSigning: true})
	ids, _ := sys.MintBlock(2, 2, 2, 2, 2, 2)
	_ = sys.Seal()
	req := tokenmagic.Requirement{C: 1, L: 3}

	if _, err := sys.Spend(ids[0], req); err != nil {
		fmt.Println("unexpected:", err)
		return
	}
	_, err := sys.Spend(ids[0], req)
	fmt.Println("second spend rejected:", errors.Is(err, tokenmagic.ErrDoubleSpend))
	// Output:
	// second spend rejected: true
}

// When a requirement is unsatisfiable, SpendRelaxed walks the Section-4
// relaxation ladder and reports the requirement it actually achieved.
func ExampleSystem_SpendRelaxed() {
	sys := tokenmagic.NewSystem(tokenmagic.Options{DisableSigning: true, DisableHeadroom: true})
	ids, _ := sys.MintBlock(2, 2, 2) // only 3 source transactions
	_ = sys.Seal()

	// With c = 1, ℓ = 3 needs q₁ < q₃ — impossible over three source
	// transactions — so the ladder settles at ℓ = 2.
	strict := tokenmagic.Requirement{C: 1, L: 5}
	_, achieved, err := sys.SpendRelaxed(ids[0], strict, tokenmagic.RelaxationPolicy{LStep: 1})
	fmt.Println("spend succeeded:", err == nil)
	fmt.Println("achieved l:", achieved.L)
	// Output:
	// spend succeeded: true
	// achieved l: 2
}
