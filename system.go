package tokenmagic

import (
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/ringsig"
	"tokenmagic/internal/selector"
	itm "tokenmagic/internal/tokenmagic"
)

var errNoEligible = selector.ErrNoEligible

// Options configures a System.
type Options struct {
	// Lambda is the TokenMagic batch size (tokens per batch).
	// Default 800 (≈ one hour of Monero traffic).
	Lambda int
	// Eta is the liveness guard parameter in [0, 1]; 0 disables the guard.
	// Default 0.1.
	Eta float64
	// Algorithm picks the mixin-selection strategy. Default Progressive.
	Algorithm Algorithm
	// DisableHeadroom turns off the second practical configuration
	// (solving for ℓ+1). Leave false unless reproducing ablation A3.
	DisableHeadroom bool
	// Randomize enables Algorithm 1's candidate sampling: one candidate
	// ring per batch token, chosen uniformly among those containing the
	// consuming token. Slower but hides the selection algorithm itself.
	Randomize bool
	// Seed drives all framework randomness; 0 means 1 (deterministic
	// default rather than time-based, so runs are reproducible).
	Seed int64
	// FeePerToken models the transaction fee proportionality the paper
	// motivates TM_G with. Default 1.
	FeePerToken uint64
	// DisableSigning skips real ring-signature generation on Spend; use
	// for pure selection experiments where crypto time is noise.
	DisableSigning bool
}

func (o Options) withDefaults() Options {
	if o.Lambda == 0 {
		o.Lambda = 800
	}
	if o.Eta == 0 {
		o.Eta = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FeePerToken == 0 {
		o.FeePerToken = 1
	}
	return o
}

// System is a full simulated privacy-preserving blockchain: a UTXO ledger, a
// keypair per token, the TokenMagic selection framework, and a key-image
// registry for double-spend rejection. All methods are safe for concurrent
// use; spends serialise on an internal mutex, mirroring how a node admits
// one ring to its mempool at a time.
type System struct {
	mu     sync.Mutex
	opts   Options
	ledger *chain.Ledger
	fw     *itm.Framework
	rng    *mrand.Rand

	keys   map[TokenID]*ringsig.PrivateKey
	pubs   map[TokenID]ringsig.Point
	images map[string]RSID // key-image encoding → spending ring

	curBlock chain.BlockID
	sealed   bool
}

// NewSystem creates an empty system. Mint tokens with MintBlock, then Seal
// before spending.
func NewSystem(opts Options) *System {
	opts = opts.withDefaults()
	return &System{
		opts:   opts,
		ledger: chain.NewLedger(),
		rng:    mrand.New(mrand.NewSource(opts.Seed)),
		keys:   make(map[TokenID]*ringsig.PrivateKey),
		pubs:   make(map[TokenID]ringsig.Point),
		images: make(map[string]RSID),
	}
}

// Errors specific to the system facade.
var (
	ErrSealed      = errors.New("tokenmagic: system already sealed")
	ErrNotSealed   = errors.New("tokenmagic: seal the system before spending")
	ErrDoubleSpend = errors.New("tokenmagic: key image already used (double spend)")
	ErrNoKey       = errors.New("tokenmagic: no private key for token")
)

// MintBlock appends one block containing one transaction per argument, each
// with that many output tokens, and returns the ids of all minted tokens in
// order. Every token gets a fresh keypair unless signing is disabled.
func (s *System) MintBlock(outputsPerTx ...int) ([]TokenID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.sealed {
		return nil, ErrSealed
	}
	block := s.ledger.BeginBlock()
	var minted []TokenID
	for _, n := range outputsPerTx {
		if n < 1 {
			return nil, fmt.Errorf("tokenmagic: transaction needs ≥ 1 output, got %d", n)
		}
		tx, err := s.ledger.AddTx(block, n)
		if err != nil {
			return nil, err
		}
		rec, err := s.ledger.Tx(tx)
		if err != nil {
			return nil, err
		}
		for _, tok := range rec.Outputs {
			if !s.opts.DisableSigning {
				key, err := ringsig.GenerateKey(rand.Reader)
				if err != nil {
					return nil, err
				}
				s.keys[tok] = key
				s.pubs[tok] = key.Public
			}
			minted = append(minted, tok)
		}
	}
	s.curBlock = block
	return minted, nil
}

// Seal freezes minting and builds the TokenMagic batch structure. Spend is
// only available after sealing.
func (s *System) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.sealed {
		return ErrSealed
	}
	cfg := itm.Config{
		Lambda:    s.opts.Lambda,
		Eta:       s.opts.Eta,
		Headroom:  !s.opts.DisableHeadroom,
		Algorithm: s.opts.Algorithm,
		Randomize: s.opts.Randomize,
	}
	fw, err := itm.New(s.ledger, cfg, s.rng)
	if err != nil {
		return err
	}
	s.fw = fw
	s.sealed = true
	return nil
}

// Receipt describes a completed spend.
type Receipt struct {
	Ring      RSID
	Tokens    TokenSet
	Fee       uint64 // FeePerToken × ring size, the paper's fee model
	Signature *ringsig.Signature
	// ModuleCount and Iterations echo solver statistics for telemetry.
	ModuleCount int
	Iterations  int
}

// Spend consumes a token: selects mixins under the requirement, signs the
// ring with the token's key, runs the miner-side verification (signature,
// double-spend, configuration, diversity, liveness) and commits the ring.
func (s *System) Spend(target TokenID, req Requirement) (*Receipt, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if !s.sealed {
		return nil, ErrNotSealed
	}
	res, err := s.fw.GenerateRS(target, req)
	if err != nil {
		return nil, err
	}
	return s.finishSpend(target, res, req)
}

// RelaxationPolicy re-exports the framework's Section-4 retry ladder.
type RelaxationPolicy = itm.RelaxationPolicy

// SpendRelaxed is Spend with the paper's Section-4 fallback: if no ring
// satisfies the requested requirement, the requirement is relaxed step by
// step (per policy) until one exists. The receipt's ring is committed under
// the achieved requirement, which is returned.
func (s *System) SpendRelaxed(target TokenID, req Requirement, policy RelaxationPolicy) (*Receipt, Requirement, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if !s.sealed {
		return nil, req, ErrNotSealed
	}
	res, achieved, err := s.fw.GenerateRSRelaxed(target, req, policy)
	if err != nil {
		return nil, achieved, err
	}
	rcpt, err := s.finishSpend(target, res, achieved)
	return rcpt, achieved, err
}

// finishSpend signs, double-spend-checks and commits a selected ring.
// Callers hold s.mu.
func (s *System) finishSpend(target TokenID, res selector.Result, req Requirement) (*Receipt, error) {
	rcpt := &Receipt{
		Tokens:      res.Tokens,
		Fee:         uint64(res.Size()) * s.opts.FeePerToken,
		ModuleCount: res.Modules,
		Iterations:  res.Iterations,
	}
	if !s.opts.DisableSigning {
		sig, err := s.sign(target, res.Tokens)
		if err != nil {
			return nil, err
		}
		imageKey := string(sig.Image.Bytes())
		if prior, used := s.images[imageKey]; used {
			return nil, fmt.Errorf("%w: first spent in %v", ErrDoubleSpend, prior)
		}
		rcpt.Signature = sig
		defer func() {
			if rcpt.Ring >= 0 {
				s.images[imageKey] = rcpt.Ring
			}
		}()
	} else if s.spentUnsigned(target) {
		return nil, fmt.Errorf("%w: token %v", ErrDoubleSpend, target)
	}
	id, err := s.fw.Commit(res.Tokens, req)
	if err != nil {
		return nil, err
	}
	rcpt.Ring = id
	if s.opts.DisableSigning {
		s.unsignedSpent(target)
	}
	return rcpt, nil
}

// sign produces and self-verifies the ring signature for the spend.
func (s *System) sign(target TokenID, ring TokenSet) (*ringsig.Signature, error) {
	key, ok := s.keys[target]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoKey, target)
	}
	pubs := make([]ringsig.Point, len(ring))
	signerIdx := -1
	for i, tok := range ring {
		p, ok := s.pubs[tok]
		if !ok {
			return nil, fmt.Errorf("%w: %v", ErrNoKey, tok)
		}
		pubs[i] = p
		if tok == target {
			signerIdx = i
		}
	}
	msg := []byte(fmt.Sprintf("spend ring over %v", ring))
	sig, err := ringsig.Sign(rand.Reader, key, pubs, signerIdx, msg)
	if err != nil {
		return nil, err
	}
	if err := ringsig.Verify(sig, pubs, msg); err != nil {
		return nil, fmt.Errorf("tokenmagic: self-verification failed: %w", err)
	}
	return sig, nil
}

// unsigned double-spend bookkeeping when crypto is disabled.
func (s *System) spentUnsigned(target TokenID) bool {
	_, used := s.images[unsignedKey(target)]
	return used
}

func (s *System) unsignedSpent(target TokenID) {
	s.images[unsignedKey(target)] = RSID(s.ledger.NumRS() - 1)
}

func unsignedKey(t TokenID) string { return fmt.Sprintf("unsigned/%d", t) }

// Ledger stats.

// NumTokens returns the number of minted tokens.
func (s *System) NumTokens() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.NumTokens()
}

// NumRings returns the number of committed ring signatures.
func (s *System) NumRings() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.NumRS()
}

// Ring returns the visible token set of a committed ring.
func (s *System) Ring(id RSID) (TokenSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	rec, err := s.ledger.RS(id)
	if err != nil {
		return nil, err
	}
	return rec.Tokens, nil
}

// AuditReport summarises what a chain-reaction adversary learns from the
// current ledger.
type AuditReport struct {
	Rings            int
	TracedRings      int     // rings whose consumed token is determined
	HTRevealedRings  int     // rings whose consumed token's HT is determined
	AvgAnonymitySet  float64 // mean plausible-token count per ring
	ProvablyConsumed int     // tokens proven consumed (Theorem 4.1 closure)
}

// Audit runs the exact chain-reaction analysis an adversary would run over
// the whole ledger and summarises the damage.
func (s *System) Audit() AuditReport {
	s.mu.Lock()
	defer s.mu.Unlock()

	a := adversary.ChainReaction(s.ledger.Rings(), nil, s.ledger.OriginFunc())
	m := adversary.Summarise(a)
	return AuditReport{
		Rings:            m.Rings,
		TracedRings:      m.Traced,
		HTRevealedRings:  m.HTRevealed,
		AvgAnonymitySet:  m.AvgAnonymity,
		ProvablyConsumed: m.ConsumedTokens,
	}
}

// AuditWithSideInfo is Audit with adversary side information: revealed
// (ring → consumed token) pairs.
func (s *System) AuditWithSideInfo(si map[RSID]TokenID) AuditReport {
	s.mu.Lock()
	defer s.mu.Unlock()

	a := adversary.ChainReaction(s.ledger.Rings(), adversary.SideInfo(si), s.ledger.OriginFunc())
	m := adversary.Summarise(a)
	return AuditReport{
		Rings:            m.Rings,
		TracedRings:      m.Traced,
		HTRevealedRings:  m.HTRevealed,
		AvgAnonymitySet:  m.AvgAnonymity,
		ProvablyConsumed: m.ConsumedTokens,
	}
}

// CommitRaw appends a caller-assembled ring without TokenMagic verification
// or signing. It exists so examples can demonstrate what goes wrong with
// naive selection; production code should always use Spend.
func (s *System) CommitRaw(tokens TokenSet, req Requirement) (RSID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if !s.sealed {
		return -1, ErrNotSealed
	}
	return s.ledger.AppendRS(tokens, req.C, req.L)
}
