// Payment pipeline: the whole stack end to end, split exactly as the paper
// splits it. A wallet (client, Steps 1–2) selects coins to cover an amount,
// picks diversity-aware mixins per input, and signs; a validating node
// (miner, Step 3) checks signatures, key images and the TokenMagic
// configurations, then mines the mempool into the ledger by fee order.
// Finally the exact chain-reaction adversary audits the result.
//
//	go run ./examples/payment
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/node"
	"tokenmagic/internal/ringsig"
	itm "tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/wallet"
)

func main() {
	// ---- Chain with 16 two-output transactions; our wallet owns the
	// first output of each (amount 10), the rest belong to other users.
	ledger := chain.NewLedger()
	block := ledger.BeginBlock()
	keys := make(map[chain.TokenID]ringsig.Point)
	w := wallet.New(diversity.Requirement{C: 1, L: 3}, 2 /* fee per ring token */)
	for i := 0; i < 16; i++ {
		txid, err := ledger.AddTxAmounts(block, []uint64{10, 10})
		if err != nil {
			log.Fatal(err)
		}
		tx, err := ledger.Tx(txid)
		if err != nil {
			log.Fatal(err)
		}
		for j, tok := range tx.Outputs {
			k, err := ringsig.GenerateKey(rand.Reader)
			if err != nil {
				log.Fatal(err)
			}
			keys[tok] = k.Public
			if j == 0 {
				w.Receive(wallet.OwnedToken{ID: tok, Amount: 10, Key: k})
			}
		}
	}
	batches, err := chain.BuildBatches(ledger, 800)
	if err != nil {
		log.Fatal(err)
	}
	view := &wallet.LedgerView{Ledger: ledger, Batches: batches, Keys: keys}
	fmt.Printf("wallet balance: %d units over %d tokens\n", w.Balance(), 16)

	// ---- Miner node.
	miner, err := node.New(ledger, node.Config{Framework: itm.Config{
		Lambda: 800, Eta: 0.1, Headroom: true, Algorithm: itm.Progressive,
	}})
	if err != nil {
		log.Fatal(err)
	}

	// ---- Pay 25 units: needs 3 inputs of 10, change 5.
	payment, err := w.Pay(view, 25, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("payment prepared: %d input rings, total fee %d, change %d\n",
		len(payment.Submissions), payment.TotalFee, payment.Change)
	for _, sub := range payment.Submissions {
		if _, err := miner.Submit(sub); err != nil {
			log.Fatalf("miner rejected: %v", err)
		}
	}
	mined, err := miner.Mine(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miner produced a block with %d rings (fee order)\n", len(mined))

	// ---- A second payment as ONE multilayer (MLSAG) signature.
	multi, err := w.PayMulti(view, 15, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-input payment: %d inputs under one %v, fee %d\n",
		len(multi.Rings), multi.Signature, multi.TotalFee)

	// ---- Audit what an adversary learns from the mined chain.
	a := adversary.ChainReaction(ledger.Rings(), nil, ledger.OriginFunc())
	m := adversary.Summarise(a)
	fmt.Printf("audit: %d rings on chain, %d traced, %d HT-revealed, avg anonymity %.1f\n",
		m.Rings, m.Traced, m.HTRevealed, m.AvgAnonymity)

	// ---- Double-spend attempt: replay an already-mined submission. Its
	// key image is on record, so the miner refuses it.
	if _, err := miner.Submit(payment.Submissions[0]); err != nil {
		fmt.Printf("replayed spend rejected by miner: %v\n", err)
	}
}
