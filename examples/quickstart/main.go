// Quickstart: mint a small chain, seal it, spend a token with
// diversity-aware mixin selection, and audit what an adversary can learn.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tokenmagic"
)

func main() {
	// A system with default settings: λ=800, η=0.1, headroom on,
	// Progressive (TM_P) selection, real ring signatures.
	sys := tokenmagic.NewSystem(tokenmagic.Options{})

	// Mint one block of twelve 2-output transactions — the shape an hour of
	// Monero traffic has (most transactions pay a recipient plus change).
	ids, err := sys.MintBlock(2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minted %d tokens across %d historical transactions\n", len(ids), 12)

	// Freeze the chain into TokenMagic batches. Spending opens now.
	if err := sys.Seal(); err != nil {
		log.Fatal(err)
	}

	// Spend token 0 demanding recursive (1,3)-diversity: the ring must span
	// ≥3 historical transactions with no transaction dominating, and every
	// definite token-RS pair set must stay equally diverse.
	req := tokenmagic.Requirement{C: 1, L: 3}
	receipt, err := sys.Spend(ids[0], req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spent %v in ring %v: %d tokens, fee %d\n",
		ids[0], receipt.Ring, len(receipt.Tokens), receipt.Fee)
	fmt.Printf("ring (consumed token hidden among mixins): %v\n", receipt.Tokens)
	fmt.Printf("linkable signature key image present: %v\n", receipt.Signature != nil)

	// A second spend of the same token is rejected by key-image linkage.
	if _, err := sys.Spend(ids[0], req); err != nil {
		fmt.Printf("double spend rejected: %v\n", err)
	}

	// Spend a few more tokens, then audit: the exact chain-reaction
	// adversary should trace nothing.
	for _, t := range []tokenmagic.TokenID{ids[3], ids[7], ids[11]} {
		if _, err := sys.Spend(t, req); err != nil {
			log.Fatal(err)
		}
	}
	rep := sys.Audit()
	fmt.Printf("audit: %d rings, %d traced, %d HT-revealed, avg anonymity set %.1f\n",
		rep.Rings, rep.TracedRings, rep.HTRevealedRings, rep.AvgAnonymitySet)
}
