// Wallet: the fee-sensitive cryptocurrency scenario. Transaction fees are
// proportional to ring size (each mixin enlarges the signature miners must
// store and verify), so a wallet wants the smallest ring that still resists
// homogeneity attacks and chain-reaction analysis. The paper recommends
// TM_G here: selection runs offline, so its extra milliseconds are free,
// while every token it shaves off the ring is fee saved on-chain.
//
//	go run ./examples/wallet
package main

import (
	"fmt"
	"log"

	"tokenmagic"
)

const (
	feePerMixin = 25 // fee units per ring member
	payments    = 12
)

func main() {
	fmt.Println("wallet fee comparison: identical spends under each selection algorithm")
	fmt.Printf("%-6s %10s %12s %12s\n", "algo", "rings", "avg size", "total fee")

	for _, algo := range []tokenmagic.Algorithm{
		tokenmagic.Smallest, tokenmagic.RandomPick, tokenmagic.Progressive, tokenmagic.Game,
	} {
		spent, totalSize, totalFee := runWallet(algo)
		if spent == 0 {
			fmt.Printf("%-6v %10d %12s %12s\n", algo, 0, "-", "-")
			continue
		}
		fmt.Printf("%-6v %10d %12.1f %12d\n",
			algo, spent, float64(totalSize)/float64(spent), totalFee)
	}
}

func runWallet(algo tokenmagic.Algorithm) (spent, totalSize int, totalFee uint64) {
	sys := tokenmagic.NewSystem(tokenmagic.Options{
		Algorithm:   algo,
		FeePerToken: feePerMixin,
		Seed:        11,
	})
	// A month of incoming payments: 40 transactions, mostly payment+change.
	var outs []int
	for i := 0; i < 40; i++ {
		outs = append(outs, 2)
	}
	ids, err := sys.MintBlock(outs...)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Seal(); err != nil {
		log.Fatal(err)
	}

	// The wallet's own privacy policy: rings must span ≥6 source
	// transactions with none contributing more than half the tail.
	req := tokenmagic.Requirement{C: 2, L: 6}
	for p := 0; p < payments; p++ {
		receipt, err := sys.Spend(ids[p*3%len(ids)], req)
		if err != nil {
			continue // token already consumed as a mixin-neighbour's spend
		}
		spent++
		totalSize += len(receipt.Tokens)
		totalFee += receipt.Fee
	}
	return spent, totalSize, totalFee
}
