// Chain-reaction attack demo: what the paper defends against, shown live.
//
// A naive wallet picks mixins uniformly at random with a small fixed ring
// size and no awareness of other rings. Because every token can be consumed
// only once, an adversary can cascade: whenever k rings jointly cover
// exactly k tokens, all of those tokens are provably spent and can be
// eliminated from every other ring — sometimes collapsing a ring to a single
// candidate (full deanonymisation) or to candidates from one historical
// transaction (homogeneity attack).
//
// The same workload driven through TokenMagic's diversity-aware selection
// leaves the adversary with nothing.
//
//	go run ./examples/chainreaction
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tokenmagic"
)

const (
	sourceTxs = 20
	spends    = 24
	naiveRing = 3
)

func main() {
	naive()
	protected()
}

// mint creates the shared workload: 20 two-output transactions.
func mint(seed int64, opts tokenmagic.Options) (*tokenmagic.System, []tokenmagic.TokenID) {
	opts.Seed = seed
	opts.DisableSigning = true
	sys := tokenmagic.NewSystem(opts)
	outs := make([]int, sourceTxs)
	for i := range outs {
		outs[i] = 2
	}
	ids, err := sys.MintBlock(outs...)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Seal(); err != nil {
		log.Fatal(err)
	}
	return sys, ids
}

func naive() {
	sys, ids := mint(5, tokenmagic.Options{})
	rng := rand.New(rand.NewSource(5))
	req := tokenmagic.Requirement{C: 1, L: 1} // the naive wallet claims nothing

	spentSet := map[tokenmagic.TokenID]bool{}
	committed := 0
	for i := 0; i < spends; i++ {
		// Pick an unspent token to consume and 2 random mixins; tiny rings
		// with heavy reuse are exactly what real traced coins looked like.
		var target tokenmagic.TokenID = -1
		for _, t := range ids {
			if !spentSet[t] {
				target = t
				break
			}
		}
		if target < 0 {
			break
		}
		ring := tokenmagic.NewTokenSet(
			target,
			ids[rng.Intn(8)], // mixins drawn from a small "popular" window
			ids[rng.Intn(8)],
		)
		if len(ring) < naiveRing {
			continue // collision; a sloppy wallet would retry, we just skip
		}
		if _, err := sys.CommitRaw(ring, req); err != nil {
			continue
		}
		spentSet[target] = true
		committed++
	}

	rep := sys.Audit()
	fmt.Println("naive wallet (fixed ring size 3, popular-window mixins):")
	fmt.Printf("  %d rings committed\n", committed)
	fmt.Printf("  adversary traces %d rings outright, learns the source tx of %d\n",
		rep.TracedRings, rep.HTRevealedRings)
	fmt.Printf("  %d tokens provably consumed, avg anonymity set %.2f\n\n",
		rep.ProvablyConsumed, rep.AvgAnonymitySet)
}

func protected() {
	sys, ids := mint(5, tokenmagic.Options{Algorithm: tokenmagic.Progressive})
	req := tokenmagic.Requirement{C: 1, L: 3}

	committed := 0
	for i := 0; i < spends; i++ {
		if _, err := sys.Spend(ids[i%len(ids)], req); err != nil {
			continue // double spends and guarded rejections just skip
		}
		committed++
	}

	rep := sys.Audit()
	fmt.Println("TokenMagic wallet (TM_P, recursive (1,3)-diversity, η guard):")
	fmt.Printf("  %d rings committed\n", committed)
	fmt.Printf("  adversary traces %d rings, learns the source tx of %d\n",
		rep.TracedRings, rep.HTRevealedRings)
	fmt.Printf("  %d tokens provably consumed, avg anonymity set %.2f\n",
		rep.ProvablyConsumed, rep.AvgAnonymitySet)
}
