// Light node: the Section-4 deployment split, live. A full node holds the
// whole chain, derives the public batch partition, and serves it over plain
// HTTP+JSON. A light node holds nothing: it asks for the batch containing
// its token (the mixin universe plus related rings) and runs diversity-aware
// selection locally. Since λ is a consensus parameter, any two full nodes
// serve byte-identical batches, so light nodes can cross-check them.
//
//	go run ./examples/lightnode
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"tokenmagic/internal/batchsvc"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/selector"
	"tokenmagic/internal/workload"
)

func main() {
	logLevel := flag.String("log-level", "info", "slog level for server status: debug|info|warn|error")
	flag.Parse()
	// Server status goes to slog on stderr; the light-node results below stay
	// on stdout. With -log-level=debug the per-request middleware lines show.
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		log.Fatalf("bad -log-level %q: %v", *logLevel, err)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))

	// ---- Full node: the paper's real data set behind the batch protocol.
	dataset, err := workload.RealMonero(1)
	if err != nil {
		log.Fatal(err)
	}
	server, err := batchsvc.NewServer(dataset.Ledger, 800)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		_ = http.Serve(ln, server.Handler())
	}()
	base := "http://" + ln.Addr().String()
	slog.Info("full node up",
		"tokens", dataset.Ledger.NumTokens(),
		"rings", dataset.Ledger.NumRS(),
		"addr", base)

	// ---- Light node: no chain state, only HTTP.
	client := batchsvc.NewClient(base, &http.Client{Timeout: 5 * time.Second})
	meta, err := client.Meta()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("light node sees: λ=%d, %d batches, %d rings\n", meta.Lambda, meta.Batches, meta.Rings)

	target := chain.TokenID(42)
	batch, err := client.BatchOf(target)
	if err != nil {
		log.Fatal(err)
	}
	ringInfos, err := client.Rings(batch.Index)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched batch %d: %d tokens, %d related rings\n",
		batch.Index, len(batch.Tokens), len(ringInfos))

	// Local selection over the fetched view, nothing else.
	records := batchsvc.Records(ringInfos)
	supers, fresh := selector.Decompose(records, batch.Tokens)
	req := diversity.Requirement{C: 0.6, L: 20}
	p, err := selector.NewProblem(target, supers, fresh, batch.Origin(), req.WithHeadroom())
	if err != nil {
		log.Fatal(err)
	}
	for _, algo := range []struct {
		name string
		run  func(*selector.Problem) (selector.Result, error)
	}{
		{"TM_P", selector.Progressive},
		{"TM_G", selector.Game},
	} {
		start := time.Now()
		res, err := algo.run(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: ring of %d tokens for %v in %v (entirely client-side)\n",
			algo.name, res.Size(), target, time.Since(start).Round(time.Microsecond))
	}
}
