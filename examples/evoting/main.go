// E-voting: the latency-sensitive scenario from the paper's summary
// (Section 7.4). Each ballot is a token; casting a vote spends the ballot
// through a ring signature so the voter stays anonymous among the mixins.
// A polling station processes a queue of voters, so per-vote selection
// latency matters: the paper recommends TM_P here, because a 100 ms increase
// per ring delays a 1000-voter queue by over a minute.
//
//	go run ./examples/evoting
package main

import (
	"fmt"
	"log"
	"time"

	"tokenmagic"
)

const (
	precincts        = 30 // historical transactions: one ballot batch each
	ballotsPerIssue  = 4  // ballots issued per precinct transaction
	votersInQueue    = 40
	diversityClasses = 5 // each vote must blend across ≥5 precincts
)

func main() {
	// Compare the two recommended algorithms on the same electorate.
	for _, algo := range []tokenmagic.Algorithm{tokenmagic.Progressive, tokenmagic.Game} {
		runElection(algo)
	}
}

func runElection(algo tokenmagic.Algorithm) {
	sys := tokenmagic.NewSystem(tokenmagic.Options{
		Algorithm: algo,
		Seed:      7,
		// Ballots are single-use rights, not currency; fees are irrelevant,
		// so skip the fee model but keep real signatures — an election
		// authority must verify every cast vote.
	})
	issues := make([]int, precincts)
	for i := range issues {
		issues[i] = ballotsPerIssue
	}
	ballots, err := sys.MintBlock(issues...)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Seal(); err != nil {
		log.Fatal(err)
	}

	req := tokenmagic.Requirement{C: 1, L: diversityClasses}
	var totalRing int
	start := time.Now()
	cast := 0
	for v := 0; v < votersInQueue; v++ {
		// Voter v casts the v-th issued ballot (spacing them across
		// precincts so the electorate drains evenly).
		ballot := ballots[(v*ballotsPerIssue+v/precincts)%len(ballots)]
		receipt, err := sys.Spend(ballot, req)
		if err != nil {
			// A contested ballot (already used) or an exhausted precinct
			// pool; the clerk hands the voter a fresh ballot in reality.
			continue
		}
		cast++
		totalRing += len(receipt.Tokens)
	}
	elapsed := time.Since(start)

	rep := sys.Audit()
	fmt.Printf("%v: %d/%d votes cast in %v (%.1f ms/vote), avg ring %.1f ballots\n",
		algo, cast, votersInQueue, elapsed.Round(time.Millisecond),
		float64(elapsed.Milliseconds())/float64(max(cast, 1)), float64(totalRing)/float64(max(cast, 1)))
	fmt.Printf("%v: coercion audit — %d/%d votes traceable, %d reveal their precinct\n\n",
		algo, rep.TracedRings, rep.Rings, rep.HTRevealedRings)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
