package tokenmagic

import (
	"errors"
	"testing"
)

// mintStandard builds a sealed system with n transactions of two outputs
// each (the real data set's modal shape).
func mintStandard(t *testing.T, opts Options, nTx int) (*System, []TokenID) {
	t.Helper()
	sys := NewSystem(opts)
	outs := make([]int, nTx)
	for i := range outs {
		outs[i] = 2
	}
	ids, err := sys.MintBlock(outs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Seal(); err != nil {
		t.Fatal(err)
	}
	return sys, ids
}

func TestSystemSpendEndToEnd(t *testing.T) {
	sys, ids := mintStandard(t, Options{}, 8)
	req := Requirement{C: 1, L: 3}
	rcpt, err := sys.Spend(ids[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if !rcpt.Tokens.Contains(ids[0]) {
		t.Fatalf("ring %v must contain the spent token", rcpt.Tokens)
	}
	if rcpt.Signature == nil {
		t.Fatal("spend must carry a real ring signature")
	}
	if rcpt.Fee != uint64(len(rcpt.Tokens)) {
		t.Fatalf("fee = %d, want ring size %d", rcpt.Fee, len(rcpt.Tokens))
	}
	if sys.NumRings() != 1 {
		t.Fatalf("rings = %d", sys.NumRings())
	}
	ring, err := sys.Ring(rcpt.Ring)
	if err != nil {
		t.Fatal(err)
	}
	if !ring.Equal(rcpt.Tokens) {
		t.Fatal("ledger ring differs from receipt")
	}
}

func TestSystemDoubleSpend(t *testing.T) {
	sys, ids := mintStandard(t, Options{}, 10)
	req := Requirement{C: 1, L: 3}
	if _, err := sys.Spend(ids[0], req); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spend(ids[0], req); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("second spend err = %v, want ErrDoubleSpend", err)
	}
}

func TestSystemDoubleSpendUnsigned(t *testing.T) {
	sys, ids := mintStandard(t, Options{DisableSigning: true}, 10)
	req := Requirement{C: 1, L: 3}
	rcpt, err := sys.Spend(ids[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Signature != nil {
		t.Fatal("unsigned mode must not produce signatures")
	}
	if _, err := sys.Spend(ids[0], req); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("unsigned second spend err = %v, want ErrDoubleSpend", err)
	}
}

func TestSystemLifecycleErrors(t *testing.T) {
	sys := NewSystem(Options{})
	if _, err := sys.Spend(0, Requirement{C: 1, L: 2}); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("spend before seal err = %v", err)
	}
	if _, err := sys.MintBlock(0); err == nil {
		t.Fatal("zero-output tx must error")
	}
	if _, err := sys.MintBlock(2); err != nil {
		t.Fatal(err)
	}
	if err := sys.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Seal(); !errors.Is(err, ErrSealed) {
		t.Fatalf("double seal err = %v", err)
	}
	if _, err := sys.MintBlock(2); !errors.Is(err, ErrSealed) {
		t.Fatalf("mint after seal err = %v", err)
	}
}

func TestSystemNoEligible(t *testing.T) {
	// One transaction with 4 outputs: every token shares the HT, ℓ=2 is
	// unreachable.
	sys := NewSystem(Options{})
	ids, err := sys.MintBlock(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spend(ids[0], Requirement{C: 1, L: 2}); !errors.Is(err, ErrNoEligible) {
		t.Fatalf("err = %v, want ErrNoEligible", err)
	}
}

func TestSystemAudit(t *testing.T) {
	sys, ids := mintStandard(t, Options{DisableSigning: true}, 10)
	req := Requirement{C: 1, L: 3}
	for i := 0; i < 3; i++ {
		if _, err := sys.Spend(ids[i*2], req); err != nil {
			t.Fatal(err)
		}
	}
	rep := sys.Audit()
	if rep.Rings != 3 {
		t.Fatalf("audit rings = %d", rep.Rings)
	}
	if rep.TracedRings != 0 {
		t.Fatalf("TokenMagic spends must not be traceable, got %d traced", rep.TracedRings)
	}
	if rep.AvgAnonymitySet < 2 {
		t.Fatalf("anonymity set %v too small", rep.AvgAnonymitySet)
	}
}

func TestSystemAuditWithSideInfo(t *testing.T) {
	sys, ids := mintStandard(t, Options{DisableSigning: true}, 10)
	req := Requirement{C: 1, L: 3}
	rcpt, err := sys.Spend(ids[0], req)
	if err != nil {
		t.Fatal(err)
	}
	plain := sys.Audit()
	leak := sys.AuditWithSideInfo(map[RSID]TokenID{rcpt.Ring: ids[0]})
	if leak.TracedRings <= plain.TracedRings {
		t.Fatalf("side info must increase traced rings: %d vs %d",
			leak.TracedRings, plain.TracedRings)
	}
}

func TestSystemCommitRawBypassesChecks(t *testing.T) {
	sys, ids := mintStandard(t, Options{DisableSigning: true}, 6)
	// A homogeneous ring (both outputs of one tx) that Spend would refuse.
	id, err := sys.CommitRaw(NewTokenSet(ids[0], ids[1]), Requirement{C: 1, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Audit()
	_ = id
	if rep.HTRevealedRings != 1 {
		t.Fatalf("homogeneous raw ring should leak its HT, got %+v", rep)
	}
}

func TestSystemAllAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{Progressive, Game, Smallest, RandomPick} {
		sys, ids := mintStandard(t, Options{Algorithm: algo, DisableSigning: true}, 8)
		if _, err := sys.Spend(ids[3], Requirement{C: 1, L: 3}); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Lambda != 800 || o.Eta != 0.1 || o.Seed != 1 || o.FeePerToken != 1 {
		t.Fatalf("defaults = %+v", o)
	}
}
