package nodesvc

import (
	"crypto/rand"
	"math/big"
	"net/http/httptest"
	"strings"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/node"
	"tokenmagic/internal/ringsig"
	"tokenmagic/internal/selector"
	itm "tokenmagic/internal/tokenmagic"
)

// testSetup builds a chain with keys, a node, an HTTP server and a client.
func testSetup(t *testing.T) (*Client, *chain.Ledger, map[chain.TokenID]*ringsig.PrivateKey) {
	t.Helper()
	l := chain.NewLedger()
	b := l.BeginBlock()
	keys := make(map[chain.TokenID]*ringsig.PrivateKey)
	for i := 0; i < 10; i++ {
		txid, err := l.AddTx(b, 2)
		if err != nil {
			t.Fatal(err)
		}
		tx, err := l.Tx(txid)
		if err != nil {
			t.Fatal(err)
		}
		for _, tok := range tx.Outputs {
			k, err := ringsig.GenerateKey(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			keys[tok] = k
		}
	}
	n, err := node.New(l, node.Config{Framework: itm.Config{
		Lambda: 1000, Eta: 0.1, Headroom: true, Algorithm: itm.Progressive,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(n).Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), l, keys
}

// prepareSpend builds a signed SubmitRequest for a target token.
func prepareSpend(t *testing.T, l *chain.Ledger, keys map[chain.TokenID]*ringsig.PrivateKey, target chain.TokenID) SubmitRequest {
	t.Helper()
	req := diversity.Requirement{C: 1, L: 3}
	universe := l.TokensInBlocks(0, chain.BlockID(l.NumBlocks()-1))
	supers, fresh := selector.Decompose(l.RingsOver(universe), universe)
	p, err := selector.NewProblem(target, supers, fresh, l.OriginFunc(), req.WithHeadroom())
	if err != nil {
		t.Fatal(err)
	}
	res, err := selector.Progressive(p)
	if err != nil {
		t.Fatal(err)
	}
	pubs := make([]ringsig.Point, len(res.Tokens))
	signer := -1
	for i, tok := range res.Tokens {
		pubs[i] = keys[tok].Public
		if tok == target {
			signer = i
		}
	}
	sig, err := ringsig.Sign(rand.Reader, keys[target], pubs, signer, node.Message(res.Tokens))
	if err != nil {
		t.Fatal(err)
	}
	return SubmitRequest{
		Tokens:    res.Tokens,
		C:         req.C,
		L:         req.L,
		Keys:      pubs,
		Signature: sig,
		Fee:       uint64(res.Size()),
	}
}

func TestSubmitMineStatusOverHTTP(t *testing.T) {
	client, l, keys := testSetup(t)

	st, err := client.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending != 0 || st.ChainRings != 0 {
		t.Fatalf("fresh status = %+v", st)
	}

	sub := prepareSpend(t, l, keys, 0)
	ack, err := client.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	st, err = client.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending != 1 {
		t.Fatalf("status after submit = %+v", st)
	}

	mined, err := client.Mine(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 1 || mined[0].SubmissionID != ack.SubmissionID {
		t.Fatalf("mined = %+v", mined)
	}
	st, err = client.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending != 0 || st.ChainRings != 1 {
		t.Fatalf("status after mine = %+v", st)
	}
}

func TestSubmitRejectionsOverHTTP(t *testing.T) {
	client, l, keys := testSetup(t)
	sub := prepareSpend(t, l, keys, 2)

	// Unsigned: node rejects.
	bad := sub
	bad.Signature = nil
	if _, err := client.Submit(bad); err == nil || !strings.Contains(err.Error(), "422") {
		t.Fatalf("unsigned err = %v", err)
	}
	// Signature over different tokens: rejected.
	bad = sub
	bad.Tokens = sub.Tokens.Add(19)
	if _, err := client.Submit(bad); err == nil {
		t.Fatal("tampered tokens must be rejected")
	}
	// The original still goes through (JSON round trip intact).
	if _, err := client.Submit(sub); err != nil {
		t.Fatalf("valid submission rejected: %v", err)
	}
	// Double spend over HTTP.
	again := prepareSpend(t, l, keys, 2)
	if _, err := client.Submit(again); err == nil {
		t.Fatal("double spend must be rejected")
	}
}

func TestMineDefaultsAndMethodChecks(t *testing.T) {
	client, l, keys := testSetup(t)
	if _, err := client.Submit(prepareSpend(t, l, keys, 4)); err != nil {
		t.Fatal(err)
	}
	// MaxRings ≤ 0 defaults server-side.
	mined, err := client.Mine(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 1 {
		t.Fatalf("mined = %+v", mined)
	}
	// GET on POST-only endpoints.
	resp, err := client.http.Get(client.base + "/v1/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /v1/submit status = %d", resp.StatusCode)
	}
}

func TestVerifyOverHTTP(t *testing.T) {
	client, l, keys := testSetup(t)

	good := prepareSpend(t, l, keys, 0)
	tampered := prepareSpend(t, l, keys, 1)
	tampered.Signature.S[0] = new(big.Int).Add(tampered.Signature.S[0], big.NewInt(1))
	unsigned := prepareSpend(t, l, keys, 2)
	unsigned.Signature = nil

	res, err := client.Verify(VerifyRequest{Entries: []VerifyEntry{
		{Tokens: good.Tokens, Keys: good.Keys, Signature: good.Signature},
		{Tokens: tampered.Tokens, Keys: tampered.Keys, Signature: tampered.Signature},
		{Tokens: unsigned.Tokens, Keys: unsigned.Keys},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("batch with bad entries reported ok")
	}
	if res.Errors[0] != "" {
		t.Fatalf("valid entry failed: %s", res.Errors[0])
	}
	if res.Errors[1] == "" || res.Errors[2] == "" {
		t.Fatalf("bad entries passed: %+v", res.Errors)
	}
	if res.FirstFailure != 1 {
		t.Fatalf("first_failure = %d, want 1", res.FirstFailure)
	}

	// A second round trip of the valid entry is settled by the node's
	// transcript cache — the wire-level view of batch amortisation.
	res, err = client.Verify(VerifyRequest{Entries: []VerifyEntry{
		{Tokens: good.Tokens, Keys: good.Keys, Signature: good.Signature},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.CacheHits != 1 {
		t.Fatalf("cached verify: ok=%v hits=%d", res.OK, res.CacheHits)
	}
}
