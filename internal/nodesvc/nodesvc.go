// Package nodesvc exposes a validating miner (internal/node) over HTTP, so
// wallets on other machines can submit signed ring spends and watch them get
// mined. Together with internal/batchsvc (chain reads) it completes the
// network story: a light wallet reads batches from one endpoint, selects
// mixins locally, signs, and posts the spend to this one.
//
//	POST /v1/submit   {tokens, c, l, keys, signature, fee} → {submission_id}
//	POST /v1/mine     {max_rings}                          → [{submission_id, ring, fee}]
//	POST /v1/spend    {target, c, l}                       → {ring, rsid, ring_size, signed}
//	POST /v1/verify   {entries: [{tokens, keys, signature}]} → {ok, errors, first_failure, cache_hits}
//	GET  /v1/status                                        → {pending, chain_rings}
//
// In a real deployment mining would be driven by consensus rather than an
// endpoint; the endpoint keeps simulations and tests deterministic. /v1/spend
// runs the whole select→sign→verify→commit pipeline server-side (the node
// must hold the token keys, node.Config.Keys) — it exists for load generation
// (cmd/txgen), where one request exercises every pipeline stage and the
// request trace shows the full breakdown.
package nodesvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/node"
	"tokenmagic/internal/obs"
	"tokenmagic/internal/ringsig"
)

// SubmitRequest is the wire form of a node.Submission.
type SubmitRequest struct {
	Tokens    chain.TokenSet     `json:"tokens"`
	C         float64            `json:"c"`
	L         int                `json:"l"`
	Keys      []ringsig.Point    `json:"keys,omitempty"`
	Signature *ringsig.Signature `json:"signature,omitempty"`
	Fee       uint64             `json:"fee"`
}

// SubmitResponse acknowledges an accepted submission.
type SubmitResponse struct {
	SubmissionID int `json:"submission_id"`
}

// SpendRequest asks the node to select, sign and commit a ring for target.
type SpendRequest struct {
	Target chain.TokenID `json:"target"`
	C      float64       `json:"c"`
	L      int           `json:"l"`
}

// SpendResponse describes the committed ring.
type SpendResponse struct {
	Ring     chain.TokenSet `json:"ring"`
	RSID     chain.RSID     `json:"rsid"`
	RingSize int            `json:"ring_size"`
	Signed   bool           `json:"signed"`
}

// VerifyEntry is one signature to check in a /v1/verify batch.
type VerifyEntry struct {
	Tokens    chain.TokenSet     `json:"tokens"`
	Keys      []ringsig.Point    `json:"keys"`
	Signature *ringsig.Signature `json:"signature"`
}

// VerifyRequest asks the node to batch-check ring signatures without
// admitting them to the mempool — what a peer does when auditing a block
// template it received.
type VerifyRequest struct {
	Entries []VerifyEntry `json:"entries"`
}

// VerifyResponse reports per-entry outcomes. Errors[i] is "" for a valid
// entry; FirstFailure is the lowest failing index, -1 if all passed.
type VerifyResponse struct {
	OK           bool     `json:"ok"`
	Errors       []string `json:"errors"`
	FirstFailure int      `json:"first_failure"`
	CacheHits    int      `json:"cache_hits"`
}

// MineRequest triggers block production.
type MineRequest struct {
	MaxRings int `json:"max_rings"`
}

// MinedEntry is one ring included in the produced block.
type MinedEntry struct {
	SubmissionID int        `json:"submission_id"`
	Ring         chain.RSID `json:"ring"`
	Fee          uint64     `json:"fee"`
}

// Status reports node state.
type Status struct {
	Pending    int `json:"pending"`
	ChainRings int `json:"chain_rings"`
}

// Server wraps a node with HTTP handlers.
type Server struct {
	// MaxInFlight caps concurrently executing requests and MaxQueue the
	// waiting room behind them (obs.LimitConcurrency); over-capacity
	// requests are shed with 503. Zero MaxInFlight disables the gate. Set
	// both before calling Handler.
	MaxInFlight int
	MaxQueue    int

	node *node.Node
}

// NewServer wraps an existing node.
func NewServer(n *node.Node) *Server { return &Server{node: n} }

// Handler returns the HTTP handler, wrapped with per-route telemetry in the
// process-wide obs registry ("http.nodesvc.*") and, when MaxInFlight is set,
// the concurrency gate (in_flight/queue_depth gauges, rejected_busy counter).
// InstrumentHTTP sits outside LimitConcurrency so each request's latency
// histogram and trace include its queue wait, and sheds are per-route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/mine", s.handleMine)
	mux.HandleFunc("/v1/spend", s.handleSpend)
	mux.HandleFunc("/v1/verify", s.handleVerify)
	mux.HandleFunc("/v1/status", s.handleStatus)
	h := obs.LimitConcurrency(obs.Default(), "nodesvc", s.MaxInFlight, s.MaxQueue, mux)
	return obs.InstrumentHTTP(obs.Default(), "nodesvc", h,
		"/v1/submit", "/v1/mine", "/v1/spend", "/v1/verify", "/v1/status")
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rcpt, err := s.node.SubmitCtx(r.Context(), node.Submission{
		Tokens:    req.Tokens,
		Req:       diversity.Requirement{C: req.C, L: req.L},
		Keys:      req.Keys,
		Signature: req.Signature,
		Fee:       req.Fee,
	})
	if err != nil {
		// Validation failures are client errors; everything here is
		// deterministic validation, so 422 fits all of them.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, SubmitResponse{SubmissionID: rcpt.SubmissionID})
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req MineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.MaxRings <= 0 {
		req.MaxRings = 100
	}
	mined, err := s.node.MineCtx(r.Context(), req.MaxRings)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := make([]MinedEntry, 0, len(mined))
	for _, m := range mined {
		out = append(out, MinedEntry{SubmissionID: m.SubmissionID, Ring: m.Ring, Fee: m.Fee})
	}
	writeJSON(w, out)
}

func (s *Server) handleSpend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SpendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.node.Spend(r.Context(), req.Target, diversity.Requirement{C: req.C, L: req.L})
	if err != nil {
		// Same contract as /v1/submit: deterministic validation failures
		// (double spend, η guard, no candidate) are client errors.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, SpendResponse{Ring: res.Ring, RSID: res.RSID, RingSize: len(res.Ring), Signed: res.Signed})
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req VerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	subs := make([]node.Submission, len(req.Entries))
	for i, e := range req.Entries {
		subs[i] = node.Submission{Tokens: e.Tokens, Keys: e.Keys, Signature: e.Signature}
	}
	res := s.node.VerifyBatchCtx(r.Context(), subs)
	// Per-entry verdicts are the payload, not an HTTP failure: a batch
	// containing invalid signatures is still a successful verification run.
	out := VerifyResponse{OK: res.OK(), Errors: make([]string, len(res.Errs)),
		FirstFailure: res.FirstFailure, CacheHits: res.CacheHits}
	for i, err := range res.Errs {
		if err != nil {
			out.Errors[i] = err.Error()
		}
	}
	writeJSON(w, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, Status{Pending: s.node.PendingCount(), ChainRings: s.node.ChainRings()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The 200 header and part of the body may already be on the wire, so
		// no error response can be sent; count the failure so operators see
		// truncated responses instead of silence.
		obs.Default().Counter("http.nodesvc.encode_errors").Inc()
	}
}

// Client posts submissions to a remote node.
type Client struct {
	base string
	http *http.Client
}

// NewClient points at a node's base URL.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: baseURL, http: hc}
}

func (c *Client) post(path string, body, into any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("nodesvc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg [512]byte
		n, _ := resp.Body.Read(msg[:])
		return fmt.Errorf("nodesvc: %s: %s: %s", path, resp.Status, string(msg[:n]))
	}
	if into == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// Submit posts a spend.
func (c *Client) Submit(req SubmitRequest) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.post("/v1/submit", req, &out)
	return out, err
}

// Spend asks the node to select, sign and commit a ring server-side.
func (c *Client) Spend(req SpendRequest) (SpendResponse, error) {
	var out SpendResponse
	err := c.post("/v1/spend", req, &out)
	return out, err
}

// Verify batch-checks ring signatures against the node's verification
// engine without submitting them.
func (c *Client) Verify(req VerifyRequest) (VerifyResponse, error) {
	var out VerifyResponse
	err := c.post("/v1/verify", req, &out)
	return out, err
}

// Mine asks the node to produce a block.
func (c *Client) Mine(maxRings int) ([]MinedEntry, error) {
	var out []MinedEntry
	err := c.post("/v1/mine", MineRequest{MaxRings: maxRings}, &out)
	return out, err
}

// Status fetches node state.
func (c *Client) Status() (Status, error) {
	resp, err := c.http.Get(c.base + "/v1/status")
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	var out Status
	return out, json.NewDecoder(resp.Body).Decode(&out)
}
