package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Median() != 0 ||
		s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty sample should be all zeros: %+v", s.Summarise())
	}
}

func TestKnownValues(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if !almost(s.Mean(), 5) {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Sample stddev of that classic set is ≈ 2.138.
	if math.Abs(s.StdDev()-2.1380899) > 1e-6 {
		t.Fatalf("stddev = %v", s.StdDev())
	}
	if !almost(s.Median(), 4.5) {
		t.Fatalf("median = %v", s.Median())
	}
	if !almost(s.Min(), 2) || !almost(s.Max(), 9) {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var s Sample
	for _, x := range []float64{10, 20, 30, 40} {
		s.Add(x)
	}
	if !almost(s.Quantile(0), 10) || !almost(s.Quantile(1), 40) {
		t.Fatal("extremes")
	}
	// 0.5 over 4 points: pos = 1.5 → 25.
	if !almost(s.Quantile(0.5), 25) {
		t.Fatalf("q50 = %v", s.Quantile(0.5))
	}
	// Out-of-range q clamps.
	if !almost(s.Quantile(-1), 10) || !almost(s.Quantile(2), 40) {
		t.Fatal("clamping broken")
	}
}

func TestSingleValue(t *testing.T) {
	var s Sample
	s.Add(7)
	sum := s.Summarise()
	if sum.N != 1 || sum.Mean != 7 || sum.Median != 7 || sum.P95 != 7 || sum.StdDev != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if !almost(s.Mean(), 1.5) {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestAddAfterQuantileStaysCorrect(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	_ = s.Median() // forces sort
	s.Add(2)
	if !almost(s.Median(), 2) {
		t.Fatalf("median after late add = %v", s.Median())
	}
}

// Properties: min ≤ median ≤ p95 ≤ max; mean within [min, max].
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < 1+rng.Intn(50); i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		sum := s.Summarise()
		return sum.Min <= sum.Median+1e-9 &&
			sum.Median <= sum.P95+1e-9 &&
			sum.P95 <= sum.Max+1e-9 &&
			sum.Mean >= sum.Min-1e-9 && sum.Mean <= sum.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
