// Package stats provides the small set of summary statistics the experiment
// harness reports: mean, standard deviation and exact quantiles over small
// samples. It exists so sweeps can report tail behaviour (p95 ring sizes and
// solve times), which averages alone hide — the paper reports means; the
// harness adds tails as a strict extension.
package stats

import (
	"math"
	"sort"
	"time"
)

// Sample accumulates float64 observations. The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration records a duration in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// between order statistics; 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// P95 returns the 0.95-quantile.
func (s *Sample) P95() float64 { return s.Quantile(0.95) }

// Min and Max return the extremes (0 for empty samples).
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Summary is a compact digest of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Median float64
	P95    float64
	Min    float64
	Max    float64
}

// Summarise digests the sample.
func (s *Sample) Summarise() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Median: s.Median(),
		P95:    s.P95(),
		Min:    s.Min(),
		Max:    s.Max(),
	}
}
