package wallet

import (
	"crypto/rand"
	"errors"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/node"
	"tokenmagic/internal/ringsig"
	itm "tokenmagic/internal/tokenmagic"
)

// fixture builds a chain of nTx 2-output transactions, a key directory, a
// ChainView and a wallet owning the even-indexed tokens with the given
// amounts pattern.
func fixture(t *testing.T, nTx int) (*Wallet, *LedgerView, *chain.Ledger) {
	t.Helper()
	l := chain.NewLedger()
	b := l.BeginBlock()
	keys := make(map[chain.TokenID]ringsig.Point)
	priv := make(map[chain.TokenID]*ringsig.PrivateKey)
	for i := 0; i < nTx; i++ {
		txid, err := l.AddTxAmounts(b, []uint64{10, 5})
		if err != nil {
			t.Fatal(err)
		}
		tx, err := l.Tx(txid)
		if err != nil {
			t.Fatal(err)
		}
		for _, tok := range tx.Outputs {
			k, err := ringsig.GenerateKey(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			keys[tok] = k.Public
			priv[tok] = k
		}
	}
	batches, err := chain.BuildBatches(l, 1000)
	if err != nil {
		t.Fatal(err)
	}
	view := &LedgerView{Ledger: l, Batches: batches, Keys: keys}

	w := New(diversity.Requirement{C: 1, L: 3}, 1)
	for i := 0; i < nTx; i++ {
		tok := chain.TokenID(i * 2) // own the 10-amount outputs
		w.Receive(OwnedToken{ID: tok, Amount: 10, Key: priv[tok]})
	}
	return w, view, l
}

func TestBalanceAndCoinSelection(t *testing.T) {
	w, _, _ := fixture(t, 5)
	if got := w.Balance(); got != 50 {
		t.Fatalf("balance = %d", got)
	}
	coins, err := w.SelectCoins(25)
	if err != nil {
		t.Fatal(err)
	}
	if len(coins) != 3 { // 10+10+10 covers 25
		t.Fatalf("coins = %d", len(coins))
	}
	if _, err := w.SelectCoins(500); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
}

func TestPaySingleInputRings(t *testing.T) {
	w, view, l := fixture(t, 8)
	pay, err := w.Pay(view, 15, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(pay.Submissions) != 2 {
		t.Fatalf("submissions = %d", len(pay.Submissions))
	}
	if pay.Change != 5 {
		t.Fatalf("change = %d", pay.Change)
	}
	if pay.TotalFee == 0 {
		t.Fatal("fee must be positive")
	}
	// Submissions are accepted and mined by a real node.
	n, err := node.New(l, node.Config{Framework: itm.Config{
		Lambda: 1000, Eta: 0.1, Headroom: true, Algorithm: itm.Progressive,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range pay.Submissions {
		if _, err := n.Submit(sub); err != nil {
			t.Fatalf("node rejected wallet submission: %v", err)
		}
	}
	mined, err := n.Mine(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 2 {
		t.Fatalf("mined = %+v", mined)
	}
	// Balance reflects the spend.
	if got := w.Balance(); got != 60 {
		t.Fatalf("post-spend balance = %d", got)
	}
}

func TestPayRejectsRespend(t *testing.T) {
	w, view, _ := fixture(t, 8)
	if _, err := w.Pay(view, 80, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Pay(view, 10, rand.Reader); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("respend err = %v", err)
	}
}

func TestPayMulti(t *testing.T) {
	w, view, _ := fixture(t, 10)
	mp, err := w.PayMulti(view, 15, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Rings) != 2 {
		t.Fatalf("rings = %d", len(mp.Rings))
	}
	if mp.Signature == nil {
		t.Fatal("missing multilayer signature")
	}
	if mp.Change != 5 {
		t.Fatalf("change = %d", mp.Change)
	}
	// All rings share a size (rectangular matrix) and the signature
	// verifies independently.
	rows := len(mp.Rings[0])
	for _, r := range mp.Rings {
		if len(r) != rows {
			t.Fatalf("ring sizes differ: %v", mp.Rings)
		}
	}
	msg := multiMessage(mp.Rings)
	if err := ringsig.MultiVerify(mp.Signature, mp.Matrix, msg); err != nil {
		t.Fatal(err)
	}
	// Images are distinct per input.
	if mp.Signature.Images[0].Equal(mp.Signature.Images[1]) {
		t.Fatal("distinct inputs must have distinct key images")
	}
}

func TestLedgerViewPublicKeyMissing(t *testing.T) {
	_, view, _ := fixture(t, 2)
	if _, err := view.PublicKey(9999); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("err = %v", err)
	}
}
