// Package wallet is the client-side layer above mixin selection: it tracks
// which tokens the user owns (with their private keys and amounts), selects
// coins to cover a payment amount, runs diversity-aware mixin selection for
// each consumed token, and signs either one single-input ring per token or
// one multilayer (MLSAG) ring signature covering all inputs at once.
//
// The wallet never talks to the chain directly; it produces node.Submission
// values that a validating node (internal/node) admits and mines, keeping
// the paper's Step-1/2 (client) vs Step-3 (miner) split explicit.
package wallet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/node"
	"tokenmagic/internal/ringsig"
	"tokenmagic/internal/selector"
)

// OwnedToken is a token the wallet controls.
type OwnedToken struct {
	ID     chain.TokenID
	Amount uint64
	Key    *ringsig.PrivateKey
}

// Wallet holds the user's tokens and selection policy.
type Wallet struct {
	tokens map[chain.TokenID]*OwnedToken
	spent  map[chain.TokenID]bool
	// Req is the wallet's privacy policy applied to every ring.
	Req diversity.Requirement
	// FeePerToken prices ring size, the paper's fee model.
	FeePerToken uint64
	// Rng drives nothing today but reserves a seat for randomized
	// selection policies; may be nil.
	Rng *rand.Rand
}

// New creates an empty wallet with the given privacy policy.
func New(req diversity.Requirement, feePerToken uint64) *Wallet {
	return &Wallet{
		tokens:      make(map[chain.TokenID]*OwnedToken),
		spent:       make(map[chain.TokenID]bool),
		Req:         req,
		FeePerToken: feePerToken,
	}
}

// Errors surfaced by wallet operations.
var (
	ErrInsufficient = errors.New("wallet: insufficient funds")
	ErrNotOwned     = errors.New("wallet: token not owned")
	ErrAlreadySpent = errors.New("wallet: token already spent")
)

// Receive registers a token the user now controls.
func (w *Wallet) Receive(t OwnedToken) {
	cp := t
	w.tokens[t.ID] = &cp
}

// Balance returns the spendable sum.
func (w *Wallet) Balance() uint64 {
	var total uint64
	for id, t := range w.tokens {
		if !w.spent[id] {
			total += t.Amount
		}
	}
	return total
}

// SelectCoins picks unspent tokens covering amount, largest first (fewest
// inputs → fewest rings → lowest fees under the paper's model).
func (w *Wallet) SelectCoins(amount uint64) ([]*OwnedToken, error) {
	var candidates []*OwnedToken
	for id, t := range w.tokens {
		if !w.spent[id] {
			candidates = append(candidates, t)
		}
	}
	sort.Slice(candidates, func(a, b int) bool {
		if candidates[a].Amount != candidates[b].Amount {
			return candidates[a].Amount > candidates[b].Amount
		}
		return candidates[a].ID < candidates[b].ID
	})
	var chosen []*OwnedToken
	var covered uint64
	for _, t := range candidates {
		if covered >= amount {
			break
		}
		chosen = append(chosen, t)
		covered += t.Amount
	}
	if covered < amount {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrInsufficient, covered, amount)
	}
	return chosen, nil
}

// ChainView is what the wallet needs to know about the chain to select
// mixins: the mixin universe of a token's batch, the related rings, the
// token→HT map and the public key of any token (for ring assembly). A light
// node backs this with batchsvc; tests back it with a ledger directly.
type ChainView interface {
	Universe(t chain.TokenID) (chain.TokenSet, error)
	Rings(universe chain.TokenSet) []chain.RingRecord
	Origin() func(chain.TokenID) chain.TxID
	PublicKey(t chain.TokenID) (ringsig.Point, error)
}

// Payment is a prepared multi-ring payment: one submission per consumed
// token (single-input mode).
type Payment struct {
	Submissions []node.Submission
	TotalFee    uint64
	Amount      uint64
	Change      uint64
}

// Pay prepares a payment of amount: coin selection, one diversity-aware
// ring + signature per input. rng supplies signature nonces.
func (w *Wallet) Pay(view ChainView, amount uint64, rng io.Reader) (*Payment, error) {
	coins, err := w.SelectCoins(amount)
	if err != nil {
		return nil, err
	}
	pay := &Payment{Amount: amount}
	var covered uint64
	for _, coin := range coins {
		ringTokens, err := w.selectRing(view, coin.ID)
		if err != nil {
			return nil, err
		}
		sub, err := w.signSingle(view, coin, ringTokens, rng)
		if err != nil {
			return nil, err
		}
		pay.Submissions = append(pay.Submissions, sub)
		pay.TotalFee += sub.Fee
		covered += coin.Amount
		w.spent[coin.ID] = true
	}
	pay.Change = covered - amount
	return pay, nil
}

// MultiPayment is a prepared single-signature multi-input payment.
type MultiPayment struct {
	Rings     []chain.TokenSet // one ring per input, equal sizes
	Matrix    [][]ringsig.Point
	Signature *ringsig.MultiSignature
	TotalFee  uint64
	Amount    uint64
	Change    uint64
}

// PayMulti prepares a payment with one MLSAG signature across all inputs.
// Each input still gets its own diversity-aware ring; rings are truncated
// or padded to a common size (the matrix must be rectangular), keeping each
// input's consumed token at the same hidden row.
func (w *Wallet) PayMulti(view ChainView, amount uint64, rng io.Reader) (*MultiPayment, error) {
	coins, err := w.SelectCoins(amount)
	if err != nil {
		return nil, err
	}
	mp := &MultiPayment{Amount: amount}
	var covered uint64

	// Select a ring per input.
	var rings []chain.TokenSet
	for _, coin := range coins {
		ringTokens, err := w.selectRing(view, coin.ID)
		if err != nil {
			return nil, err
		}
		rings = append(rings, ringTokens)
		covered += coin.Amount
	}
	// Uniform row count: pad shorter rings with repeats of their own
	// mixins is unsound (duplicate keys); instead truncate to the minimum
	// size while keeping each input's own token.
	rows := len(rings[0])
	for _, r := range rings[1:] {
		if len(r) < rows {
			rows = len(r)
		}
	}
	if rows < 2 {
		return nil, selector.ErrNoEligible
	}
	matrix := make([][]ringsig.Point, rows)
	for i := range matrix {
		matrix[i] = make([]ringsig.Point, len(coins))
	}
	// The signer's hidden row index, shared by all columns.
	signerRow := 0
	keys := make([]*ringsig.PrivateKey, len(coins))
	for j, coin := range coins {
		ring := rings[j]
		// Order the column: consumed token at signerRow, mixins fill the
		// rest in token order.
		var column []chain.TokenID
		for _, tok := range ring {
			if tok != coin.ID {
				column = append(column, tok)
			}
		}
		column = column[:rows-1]
		// Insert the real token at signerRow.
		ordered := make([]chain.TokenID, 0, rows)
		ordered = append(ordered, column[:signerRow]...)
		ordered = append(ordered, coin.ID)
		ordered = append(ordered, column[signerRow:]...)
		finalRing := chain.NewTokenSet(ordered...)
		mp.Rings = append(mp.Rings, finalRing)
		for i, tok := range ordered {
			pk, err := view.PublicKey(tok)
			if err != nil {
				return nil, err
			}
			matrix[i][j] = pk
		}
		keys[j] = coin.Key
		mp.TotalFee += uint64(rows) * w.FeePerToken
	}
	msg := multiMessage(mp.Rings)
	sig, err := ringsig.MultiSign(rng, keys, matrix, signerRow, msg)
	if err != nil {
		return nil, err
	}
	if err := ringsig.MultiVerify(sig, matrix, msg); err != nil {
		return nil, fmt.Errorf("wallet: self-verification failed: %w", err)
	}
	mp.Matrix = matrix
	mp.Signature = sig
	mp.Change = covered - amount
	for _, coin := range coins {
		w.spent[coin.ID] = true
	}
	return mp, nil
}

func multiMessage(rings []chain.TokenSet) []byte {
	return []byte(fmt.Sprintf("multi-spend over %v", rings))
}

// selectRing runs diversity-aware mixin selection for one consumed token.
func (w *Wallet) selectRing(view ChainView, target chain.TokenID) (chain.TokenSet, error) {
	universe, err := view.Universe(target)
	if err != nil {
		return nil, err
	}
	rings := view.Rings(universe)
	supers, fresh := selector.Decompose(rings, universe)
	p, err := selector.NewProblem(target, supers, fresh, view.Origin(), w.Req.WithHeadroom())
	if err != nil {
		return nil, err
	}
	res, err := selector.Progressive(p)
	if err != nil {
		return nil, err
	}
	return res.Tokens, nil
}

// signSingle assembles a single-input submission for one coin.
func (w *Wallet) signSingle(view ChainView, coin *OwnedToken, ring chain.TokenSet, rng io.Reader) (node.Submission, error) {
	pubs := make([]ringsig.Point, len(ring))
	signer := -1
	for i, tok := range ring {
		pk, err := view.PublicKey(tok)
		if err != nil {
			return node.Submission{}, err
		}
		pubs[i] = pk
		if tok == coin.ID {
			signer = i
		}
	}
	sig, err := ringsig.Sign(rng, coin.Key, pubs, signer, node.Message(ring))
	if err != nil {
		return node.Submission{}, err
	}
	return node.Submission{
		Tokens:    ring,
		Req:       w.Req,
		Keys:      pubs,
		Signature: sig,
		Fee:       uint64(len(ring)) * w.FeePerToken,
	}, nil
}

// LedgerView adapts a full ledger (plus a key directory) into a ChainView;
// the common test and full-node configuration.
type LedgerView struct {
	Ledger  *chain.Ledger
	Batches *chain.BatchList
	Keys    map[chain.TokenID]ringsig.Point
}

// Universe returns the batch universe of t.
func (v *LedgerView) Universe(t chain.TokenID) (chain.TokenSet, error) {
	return v.Batches.Universe(t)
}

// Rings returns the rings over the universe.
func (v *LedgerView) Rings(universe chain.TokenSet) []chain.RingRecord {
	return v.Ledger.RingsOver(universe)
}

// Origin returns the ledger's token→HT map.
func (v *LedgerView) Origin() func(chain.TokenID) chain.TxID {
	return v.Ledger.OriginFunc()
}

// PublicKey returns a token's public key.
func (v *LedgerView) PublicKey(t chain.TokenID) (ringsig.Point, error) {
	pk, ok := v.Keys[t]
	if !ok {
		return ringsig.Point{}, fmt.Errorf("%w: %v", ErrNotOwned, t)
	}
	return pk, nil
}
