package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Gauge("a.gauge") != g {
		t.Fatal("second lookup returned a different gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 5+10+11+99+100+5000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	want := []uint64{2, 3, 0, 1} // ≤10, ≤100, ≤1000, +Inf
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (le=%d) = %d, want %d", i, b.Le, b.Count, want[i])
		}
	}
	if s.Buckets[3].Le != -1 {
		t.Fatalf("last bucket Le = %d, want -1 (+Inf)", s.Buckets[3].Le)
	}
	if got := s.Mean(); got != float64(s.Sum)/6 {
		t.Fatalf("mean = %v", got)
	}
	// Same name with different bounds returns the existing histogram.
	if r.Histogram("h", []int64{1}) != h {
		t.Fatal("histogram identity not stable across lookups")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Shorthand: a snapshot with the given (le, count) buckets and derived
	// Count. Sum is irrelevant to Quantile.
	snap := func(buckets ...Bucket) HistogramSnapshot {
		s := HistogramSnapshot{Buckets: buckets}
		for _, b := range buckets {
			s.Count += b.Count
		}
		return s
	}
	nan := func() float64 { var z float64; return z / z }()

	cases := []struct {
		name string
		s    HistogramSnapshot
		q    float64
		want float64
	}{
		{"empty histogram", snap(Bucket{100, 0}, Bucket{-1, 0}), 0.5, 0},
		{"zero value snapshot", HistogramSnapshot{}, 0.5, 0},
		{"no buckets but nonzero count", HistogramSnapshot{Count: 5}, 0.5, 0},
		{"NaN q", snap(Bucket{100, 4}, Bucket{-1, 0}), nan, 0},
		{"q below zero clamps to min", snap(Bucket{100, 4}, Bucket{-1, 0}), -3, 0},
		{"q above one clamps to max bound", snap(Bucket{100, 4}, Bucket{-1, 0}), 7, 100},
		{"q zero is the lower edge", snap(Bucket{100, 4}, Bucket{-1, 0}), 0, 0},
		{"q one is the containing bound", snap(Bucket{100, 4}, Bucket{-1, 0}), 1, 100},
		{"single bucket interpolates", snap(Bucket{100, 1}, Bucket{-1, 0}), 0.5, 50},
		{"all mass in +Inf clamps to last bound", snap(Bucket{100, 0}, Bucket{-1, 3}), 0.99, 100},
		{"only a +Inf bucket returns zero", snap(Bucket{-1, 3}), 0.5, 0},
		{"median across two buckets", snap(Bucket{10, 2}, Bucket{20, 2}, Bucket{-1, 0}), 0.5, 10},
		{"p75 inside second bucket", snap(Bucket{10, 2}, Bucket{20, 2}, Bucket{-1, 0}), 0.75, 15},
		{"skips empty leading bucket", snap(Bucket{10, 0}, Bucket{20, 4}, Bucket{-1, 0}), 0.5, 15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []int64{10})
	c.Inc()
	h.Observe(3)

	snap := r.Snapshot()
	c.Add(10)
	h.Observe(4)
	h.Observe(400)

	if snap.Counters["c"] != 1 {
		t.Fatalf("snapshot counter mutated: %d", snap.Counters["c"])
	}
	hs := snap.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 3 || hs.Buckets[0].Count != 1 || hs.Buckets[1].Count != 0 {
		t.Fatalf("snapshot histogram mutated: %+v", hs)
	}
	// Snapshots must be independently mutable without touching the registry.
	snap.Counters["c"] = 999
	if r.Snapshot().Counters["c"] != 11 {
		t.Fatal("mutating a snapshot leaked into the registry")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []int64{500}).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	s := r.Histogram("h", nil).Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.Buckets[0].Count+s.Buckets[1].Count != s.Count {
		t.Fatalf("bucket counts %v do not add up to %d", s.Buckets, s.Count)
	}
}

func TestTextDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(2)
	r.Gauge("a.gauge").Set(-1)
	r.Histogram("m.h", []int64{100}).Observe(50)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"counter z.count 2\n",
		"gauge a.gauge -1\n",
		"histogram m.h count=1 sum=50 mean=50.00 p50=50 p99=99 le100:1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Lines are sorted: counter < gauge < histogram by prefix here.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "counter") || !strings.HasPrefix(lines[2], "histogram") {
		t.Fatalf("unexpected dump order: %q", lines)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h", []int64{10}).Observe(5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 1 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip lost data: %s", data)
	}
}

func TestOperatorMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("op.test").Inc()
	mux := OperatorMux(r, true)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for path, want := range map[string]string{
		"/debug/metrics": "counter op.test 1",
		"/debug/pprof/":  "profiles",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || !strings.Contains(string(body), want) {
			t.Fatalf("%s: status=%d body=%q", path, resp.StatusCode, body)
		}
	}
	// /debug/vars serves JSON; the published registry may be the one from an
	// earlier PublishExpvar call (process-global), so only check it parses.
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["tokenmagic"]; !ok {
		t.Fatalf("/debug/vars missing tokenmagic var: %v", vars)
	}
}
