// Package trace is the system's request-scoped tracing layer: a stdlib-only,
// allocation-conscious span tree carried through context.Context.
//
// A Trace is created once per request (by the HTTP middleware, or by a load
// generator) and rides the context; instrumented code opens named spans
// against it — sample, solve, sign, verify, commit, queue-wait — with
// monotonic durations and small key/value annotations (solver id, ring size,
// η-guard verdict, seed). When no trace is in the context every span
// operation is a no-op costing one context lookup, so tracing disabled is
// effectively free on the solver hot paths.
//
// Enabled tracing is engineered for the candidate sweep, which opens λ spans
// per request: span names, annotation keys and annotation string values are
// interned into a bounded collector-wide table, so a span record is a small
// pointer-free struct with fixed annotation slots. A finished trace is one
// no-scan allocation the garbage collector marks without walking — retaining
// hundreds of traces does not grow mark work against the solver's own
// allocation rate. The interning contract: annotation vocabulary is
// low-cardinality by design (solver ids, verdicts, outcomes); unbounded
// values belong in AnnotateInt, which stores the raw integer and formats it
// only at export.
//
// Finished traces land in a Collector: a bounded ring buffer of recent
// traces, the N slowest exemplars per route (full span trees retained), and
// per-stage aggregates, exported as JSON via the /debug/traces endpoint
// (obs.OperatorMux) and summarised to slog at Debug level.
//
// The package deliberately imports nothing module-local: internal/obs wires
// span durations into its registry histograms, so trace must stay below obs
// in the import graph.
package trace

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ctxKey keys the context's trace reference for foreign context chains. The
// common case never touches it: StartSpan returns a *spanCtx, and a nested
// StartSpan recovers the trace with one type assertion. Only when another
// context layer (WithCancel, WithValue) is stacked on top does the lookup
// fall back to Value, which spanCtx answers with a ctxRef.
type ctxKey struct{}

type ctxRef struct {
	t      *Trace
	parent int32
}

// spanCtx is the context returned by New and StartSpan: a concrete type
// carrying the trace and the current span index. Compared to
// context.WithValue it costs one allocation and no interface boxing, and the
// nested-span path skips the context chain walk entirely.
type spanCtx struct {
	context.Context
	t      *Trace
	parent int32
}

func (c *spanCtx) Value(k any) any {
	if _, ok := k.(ctxKey); ok {
		return ctxRef{t: c.t, parent: c.parent}
	}
	return c.Context.Value(k)
}

// ref recovers the trace reference from ctx: a type assertion when ctx is
// the spanCtx itself, a context walk when other layers sit on top.
func ref(ctx context.Context) ctxRef {
	if sc, ok := ctx.(*spanCtx); ok {
		return ctxRef{t: sc.t, parent: sc.parent}
	}
	r, _ := ctx.Value(ctxKey{}).(ctxRef)
	return r
}

// annot is one trace-level key/value annotation (shed reason, status). Spans
// use the interned annotRaw form; the handful of trace-level annotations
// keep plain strings.
type annot struct {
	Key string
	Val string
}

// annotRaw is one span annotation in interned form. key packs the interned
// key id together with the value kind: id+1 for a string annotation (sval is
// the value's intern id), -(id+1) for an integer one (ival is the raw value,
// formatted only at export). No pointers, so retained spans are no-scan
// memory.
type annotRaw struct {
	key  int32
	sval int32
	ival int64
}

// maxSpanAnnots is the fixed annotation capacity per span; the instrumented
// call sites use at most two (worker + ring size on a candidate, solver id +
// ring size on a solve) — per-request context like the sampler seed belongs
// in the trace-level annotations. Beyond it annotations are dropped and
// counted on the trace.
const maxSpanAnnots = 2

// spanData is one span's record inside its trace: 56 bytes, pointer-free.
// One cache line per span matters as much as the allocation count — the
// candidate sweep writes λ records per request, and every byte is a byte of
// the solver's working set evicted. Offsets are µs in int32: a request trace
// longer than ~35 minutes saturates rather than wrapping.
type spanData struct {
	name    int32 // interned span name
	parent  int32 // index of the parent span, -1 for a root child
	startUS int32 // offset from the trace start, monotonic
	endUS   int32 // -1 while open
	annots  [maxSpanAnnots]annotRaw
	na      uint8
}

// us32 saturates a µs offset into int32.
func us32(d int64) int32 {
	if d > 1<<31-1 {
		return 1<<31 - 1
	}
	return int32(d)
}

// Span storage is a fixed table of lazily-allocated chunks: a slot is
// claimed with one atomic add, then written only by the goroutine holding
// the Span handle (the single-writer contract behind the bind-and-defer-End
// idiom tracecheck enforces). No mutex, no realloc-and-copy growth — both
// matter at λ concurrent candidate spans per request. chunkSize×maxChunks
// caps the span budget.
const (
	chunkSize = 128
	maxChunks = 16
)

type spanChunk [chunkSize]spanData

// Trace is one request's span tree. Create with New; safe for concurrent
// use by the request's worker goroutines (the candidate executor opens spans
// from several workers at once). Readers (export, breakdown) only see a
// trace after Finish, which happens after every span has ended — that
// ordering, not a lock, is what publishes the slot writes.
type Trace struct {
	collector *Collector
	route     string
	start     time.Time // wall clock; carries the monotonic reading

	nSpans        atomic.Int32 // claimed slots; may overshoot the budget
	dropped       atomic.Int32 // spans past the budget
	droppedAnnots atomic.Int32 // annotations past a span's fixed slots
	chunks        [maxChunks]atomic.Pointer[spanChunk]

	mu       sync.Mutex // guards the trace-level fields below, not spans
	annots   []annot
	finished bool
	durUS    int64
	status   string
}

// spanCount is the number of materialized spans.
func (t *Trace) spanCount() int {
	n := int(t.nSpans.Load())
	if m := t.collector.maxSpans; n > m {
		n = m
	}
	return n
}

// slot returns span i's record, allocating its chunk on first touch.
func (t *Trace) slot(i int32) *spanData {
	ci := i / chunkSize
	ch := t.chunks[ci].Load()
	if ch == nil {
		nc := new(spanChunk)
		if t.chunks[ci].CompareAndSwap(nil, nc) {
			ch = nc
		} else {
			ch = t.chunks[ci].Load()
		}
	}
	return &ch[i%chunkSize]
}

// slotRead is slot for readers: nil while the owner has not allocated the
// chunk yet (only possible for in-flight traces, which readers never see).
func (t *Trace) slotRead(i int) *spanData {
	ch := t.chunks[i/chunkSize].Load()
	if ch == nil {
		return nil
	}
	return &ch[i%chunkSize]
}

// New starts a trace for route and attaches it to the context. When the
// collector is nil or disabled it returns the context unchanged and a nil
// trace — all methods on a nil *Trace are no-ops, so callers never branch.
func New(ctx context.Context, c *Collector, route string) (context.Context, *Trace) {
	if c == nil || !c.Enabled() {
		return ctx, nil
	}
	t := &Trace{
		collector: c,
		route:     route,
		start:     time.Now(),
	}
	return &spanCtx{Context: ctx, t: t, parent: -1}, t
}

// FromContext returns the context's trace, or nil when none is attached.
func FromContext(ctx context.Context) *Trace {
	return ref(ctx).t
}

// Annotate attaches a root-level key/value to the trace (shed reason,
// status). No-op on a nil trace.
func (t *Trace) Annotate(key, val string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.annots = append(t.annots, annot{Key: key, Val: val})
	t.mu.Unlock()
}

// AnnotateInt attaches a root-level integer key/value to the trace
// (sampler seed, population size) — per-request context that does not
// belong on the fixed per-span annotation slots. No-op on a nil trace.
func (t *Trace) AnnotateInt(key string, v int64) {
	if t == nil {
		return
	}
	t.Annotate(key, strconv.FormatInt(v, 10))
}

// Finish seals the trace with a status label and hands it to the collector
// (ring buffer, exemplars, slog at Debug). Only the first call records;
// no-op on a nil trace.
func (t *Trace) Finish(status string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.status = status
	t.durUS = time.Since(t.start).Microseconds()
	t.mu.Unlock()
	t.collector.record(t)
}

// Span is a handle on one span of a trace. The zero value (no trace in the
// context) is a valid no-op span, which is what keeps disabled tracing off
// the hot path.
type Span struct {
	t *Trace
	i int32
}

// StartSpan opens a named span under the context's current span and returns
// the child context carrying it. Without a trace in ctx (or with the trace's
// span budget exhausted) it returns ctx unchanged and a no-op span.
//
// Every started span must be closed on all paths: `defer sp.End()` (directly
// or inside one deferred function literal) is the required idiom, enforced by
// the tracecheck analyzer.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	r := ref(ctx)
	if r.t == nil {
		return ctx, Span{}
	}
	idx, ok := r.t.startSpan(name, r.parent)
	if !ok {
		return ctx, Span{}
	}
	return &spanCtx{Context: ctx, t: r.t, parent: idx}, Span{t: r.t, i: idx}
}

// StartChild opens a named span under the context's current span without
// deriving a child context — the leaf-span form for call sites that never
// nest further work under the span (the per-candidate solver invocations,
// sign/verify). It skips StartSpan's context allocation, which matters λ
// times per request. Lifecycle rules are identical: bind the span and defer
// its End (enforced by tracecheck).
func StartChild(ctx context.Context, name string) Span {
	r := ref(ctx)
	if r.t == nil {
		return Span{}
	}
	idx, ok := r.t.startSpan(name, r.parent)
	if !ok {
		return Span{}
	}
	return Span{t: r.t, i: idx}
}

func (t *Trace) startSpan(name string, parent int32) (int32, bool) {
	off := us32(time.Since(t.start).Microseconds())
	id := t.collector.intern.id(name)
	n := t.nSpans.Add(1) - 1
	if int(n) >= t.collector.maxSpans {
		t.dropped.Add(1)
		return 0, false
	}
	sd := t.slot(n)
	sd.name, sd.parent, sd.startUS, sd.endUS, sd.na = id, parent, off, -1, 0
	return n, true
}

// End closes the span, fixing its monotonic duration. Only the first End
// records; no-op on the zero span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	off := us32(time.Since(s.t.start).Microseconds())
	sd := s.t.slot(s.i)
	if sd.endUS >= 0 {
		return
	}
	sd.endUS = off
	s.t.collector.recordSpan(sd.name, int64(off-sd.startUS))
}

// Annotate attaches a key/value to the span. Both key and value are interned
// into the collector's bounded table — use it for the low-cardinality
// vocabulary (solver id, verdict, outcome) and AnnotateInt for numbers.
// No-op on the zero span.
func (s Span) Annotate(key, val string) {
	if s.t == nil {
		return
	}
	in := s.t.collector.intern
	s.annotate(annotRaw{key: in.id(key) + 1, sval: in.id(val)})
}

// AnnotateInt attaches an integer annotation to the span. The value is kept
// raw and formatted only at export, keeping strconv off the solver loops.
func (s Span) AnnotateInt(key string, v int64) {
	if s.t == nil {
		return
	}
	s.annotate(annotRaw{key: -(s.t.collector.intern.id(key) + 1), ival: v})
}

func (s Span) annotate(a annotRaw) {
	sd := s.t.slot(s.i)
	if int(sd.na) < len(sd.annots) {
		sd.annots[sd.na] = a
		sd.na++
	} else {
		s.t.droppedAnnots.Add(1)
	}
}

// interner maps the span vocabulary (names, annotation keys, annotation
// string values) to dense int32 ids. Both directions are immutable
// copy-on-write tables swapped atomically: the id path is one plain map read
// (no locking, no interface boxing), the reverse path one slice index, and
// neither ever blocks on the rare insert. The table is bounded: past
// internLimit distinct strings every new string maps to id 0, which decodes
// to an explicit overflow marker rather than growing without limit —
// annotation vocabulary is low-cardinality by design.
type interner struct {
	mu  sync.Mutex
	ids atomic.Pointer[map[string]int32]
	rev atomic.Pointer[[]string]
}

const internLimit = 4096

// internOverflow is the string id 0 decodes to.
const internOverflow = "!interned-overflow"

func newInterner() *interner {
	in := &interner{}
	ids := map[string]int32{}
	rev := []string{internOverflow}
	in.ids.Store(&ids)
	in.rev.Store(&rev)
	return in
}

// id returns the dense id for s, allocating one on first use.
func (in *interner) id(s string) int32 {
	if v, ok := (*in.ids.Load())[s]; ok {
		return v
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	cur := *in.ids.Load()
	if v, ok := cur[s]; ok {
		return v
	}
	rev := *in.rev.Load()
	if len(rev) >= internLimit {
		return 0
	}
	id := int32(len(rev))
	nextRev := make([]string, len(rev)+1)
	copy(nextRev, rev)
	nextRev[len(rev)] = s
	nextIDs := make(map[string]int32, len(cur)+1)
	for k, v := range cur {
		nextIDs[k] = v
	}
	nextIDs[s] = id
	in.rev.Store(&nextRev)
	in.ids.Store(&nextIDs)
	return id
}

// lookup decodes an id; unknown ids decode to the overflow marker.
func (in *interner) lookup(id int32) string {
	rev := *in.rev.Load()
	if id < 0 || int(id) >= len(rev) {
		return internOverflow
	}
	return rev[id]
}

// keyName decodes the annotation's key.
func (a annotRaw) keyName(in *interner) string {
	k := a.key
	if k < 0 {
		k = -k
	}
	return in.lookup(k - 1)
}

// value renders a span annotation's exported string form.
func (a annotRaw) value(in *interner) string {
	if a.key < 0 {
		return strconv.FormatInt(a.ival, 10)
	}
	return in.lookup(a.sval)
}
