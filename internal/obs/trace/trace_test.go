package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestNoTraceInContextIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "solve")
	if ctx2 != ctx {
		t.Error("StartSpan without a trace must return the context unchanged")
	}
	// All of these must be safe no-ops.
	sp.Annotate("k", "v")
	sp.AnnotateInt("n", 7)
	sp.End()
	var nilTrace *Trace
	nilTrace.Annotate("k", "v")
	nilTrace.Finish("ok")
	if FromContext(ctx) != nil {
		t.Error("FromContext on a bare context must be nil")
	}
}

func TestDisabledCollectorCreatesNoTrace(t *testing.T) {
	c := NewCollector()
	c.SetEnabled(false)
	ctx, tr := New(context.Background(), c, "r")
	if tr != nil {
		t.Fatal("disabled collector must not create traces")
	}
	if FromContext(ctx) != nil {
		t.Fatal("disabled collector must leave the context unchanged")
	}
}

func TestSpanTreeAndExport(t *testing.T) {
	c := NewCollector()
	ctx, tr := New(context.Background(), c, "nodesvc.v1_spend")
	if tr == nil {
		t.Fatal("enabled collector must create a trace")
	}
	ctx1, sample := StartSpan(ctx, "sample")
	sample.AnnotateInt("universe", 40)
	_, solve := StartSpan(ctx1, "solve")
	solve.Annotate("solver", "TM_P")
	solve.End()
	sample.End()
	_, commit := StartSpan(ctx, "commit")
	commit.End()
	tr.Annotate("shed", "none")
	tr.Finish("200")
	tr.Finish("500") // second Finish must not re-record

	p := c.Snapshot("", 0)
	if p.Total != 1 {
		t.Fatalf("total = %d, want 1", p.Total)
	}
	if len(p.Recent) != 1 {
		t.Fatalf("recent = %d, want 1", len(p.Recent))
	}
	got := p.Recent[0]
	if got.Status != "200" {
		t.Errorf("status = %q, want 200 (first Finish wins)", got.Status)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(got.Spans))
	}
	if got.Spans[0].Name != "sample" || got.Spans[0].Parent != -1 {
		t.Errorf("span 0 = %+v, want root sample", got.Spans[0])
	}
	if got.Spans[1].Name != "solve" || got.Spans[1].Parent != 0 {
		t.Errorf("span 1 = %+v, want solve under sample", got.Spans[1])
	}
	if got.Spans[2].Name != "commit" || got.Spans[2].Parent != -1 {
		t.Errorf("span 2 = %+v, want root commit", got.Spans[2])
	}
	if got.Spans[1].Annotations["solver"] != "TM_P" {
		t.Errorf("solve annotations = %v", got.Spans[1].Annotations)
	}
	for _, s := range got.Spans {
		if s.DurUS < 0 {
			t.Errorf("span %s never ended", s.Name)
		}
	}
	if got.Annotations["shed"] != "none" {
		t.Errorf("trace annotations = %v", got.Annotations)
	}
	if p.Stages["solve"].Count != 1 || p.Stages["sample"].Count != 1 {
		t.Errorf("stages = %v", p.Stages)
	}
}

func TestSpanBudgetDropsAndCounts(t *testing.T) {
	c := NewCollector()
	c.maxSpans = 4
	ctx, tr := New(context.Background(), c, "r")
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "candidate")
		sp.End()
	}
	tr.Finish("200")
	got := c.Snapshot("", 0).Recent[0]
	if len(got.Spans) != 4 {
		t.Errorf("spans = %d, want 4 (budget)", len(got.Spans))
	}
	if got.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", got.Dropped)
	}
}

func TestExemplarsKeepSlowestPerRoute(t *testing.T) {
	c := NewCollector()
	c.exemplars = 2
	for i := 0; i < 5; i++ {
		_, tr := New(context.Background(), c, "a")
		tr.durUS = int64(i) // direct: fake increasing durations
		tr.mu.Lock()
		tr.finished = true
		tr.status = "200"
		tr.mu.Unlock()
		c.record(tr)
	}
	p := c.Snapshot("a", 0)
	slow := p.Slowest["a"]
	if len(slow) != 2 {
		t.Fatalf("exemplars = %d, want 2", len(slow))
	}
	if slow[0].DurUS != 4 || slow[1].DurUS != 3 {
		t.Errorf("slowest durations = %d,%d want 4,3", slow[0].DurUS, slow[1].DurUS)
	}
}

func TestRingBufferBounded(t *testing.T) {
	c := NewCollector()
	c.ringSize = 3
	for i := 0; i < 7; i++ {
		_, tr := New(context.Background(), c, "r")
		tr.Finish("200")
	}
	p := c.Snapshot("", 0)
	if p.Total != 7 {
		t.Errorf("total = %d, want 7", p.Total)
	}
	if len(p.Recent) != 3 {
		t.Errorf("recent = %d, want 3 (ring bound)", len(p.Recent))
	}
}

func TestStageObserver(t *testing.T) {
	c := NewCollector()
	var mu sync.Mutex
	seen := map[string]int{}
	c.SetStageObserver(func(name string) func(int64) {
		return func(durUS int64) {
			mu.Lock()
			seen[name]++
			mu.Unlock()
		}
	})
	ctx, tr := New(context.Background(), c, "r")
	_, sp := StartSpan(ctx, "sign")
	sp.End()
	sp.End() // double End must record once
	tr.Finish("200")
	if seen["sign"] != 1 {
		t.Errorf("observer saw sign %d times, want 1", seen["sign"])
	}

	// Wiring after a stage exists re-wires it immediately.
	late := map[string]int{}
	c.SetStageObserver(func(name string) func(int64) {
		return func(durUS int64) {
			mu.Lock()
			late[name]++
			mu.Unlock()
		}
	})
	ctx2, tr2 := New(context.Background(), c, "r")
	sp2 := StartChild(ctx2, "sign")
	sp2.End()
	tr2.Finish("200")
	if late["sign"] != 1 {
		t.Errorf("re-wired observer saw sign %d times, want 1", late["sign"])
	}
}

func TestConcurrentSpans(t *testing.T) {
	c := NewCollector()
	ctx, tr := New(context.Background(), c, "r")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, sp := StartSpan(ctx, "candidate")
				sp.AnnotateInt("worker", int64(w))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	tr.Finish("200")
	got := c.Snapshot("", 0).Recent[0]
	if len(got.Spans)+got.Dropped != 400 {
		t.Errorf("spans+dropped = %d, want 400", len(got.Spans)+got.Dropped)
	}
}

func TestHandlerJSON(t *testing.T) {
	c := NewCollector()
	ctx, tr := New(context.Background(), c, "nodesvc.v1_spend")
	_, sp := StartSpan(ctx, "solve")
	sp.End()
	tr.Finish("200")

	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=1", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var p DebugPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !p.Enabled || p.Total != 1 || len(p.Recent) != 1 {
		t.Errorf("payload = enabled=%v total=%d recent=%d", p.Enabled, p.Total, len(p.Recent))
	}
	if len(p.Slowest["nodesvc.v1_spend"]) != 1 {
		t.Errorf("slowest = %v", p.Slowest)
	}

	// Route filter keeps unrelated routes out.
	rec = httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?route=other", nil))
	var filtered DebugPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(filtered.Recent) != 0 || len(filtered.Slowest) != 0 {
		t.Errorf("route filter leaked traces: %+v", filtered)
	}
}
