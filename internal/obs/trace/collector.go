package trace

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Collector retains finished traces: a bounded ring of recent traces, the N
// slowest exemplars per route with full span trees, and per-stage duration
// aggregates. All methods are safe for concurrent use.
type Collector struct {
	enabled atomic.Bool
	// stageFactory, when set, builds one duration observer per stage name
	// (internal/obs returns a registry histogram's Observe). The observer is
	// cached on the stage's aggregate, so the per-span path never touches a
	// map or a name string.
	stageFactory atomic.Pointer[func(name string) func(durUS int64)]

	maxSpans  int // per-trace span budget; beyond it spans are dropped, counted
	ringSize  int // recent traces retained
	exemplars int // slowest traces retained per route

	// intern holds the collector-wide vocabulary table span records index
	// into; see the package comment for the cardinality contract.
	intern *interner

	// stages indexes *stageAgg by interned span name id — a dense
	// copy-on-write slice, so the per-span record path is one atomic load
	// plus an array index, which matters at λ candidate spans per request.
	stages   atomic.Pointer[[]*stageAgg]
	stagesMu sync.Mutex

	mu    sync.Mutex
	ring  []*Trace
	next  int
	total uint64
	slow  map[string][]*Trace // route → slowest-first exemplars
}

// StageStats aggregates the ended spans of one name across all traces.
type StageStats struct {
	Count   int64 `json:"count"`
	TotalUS int64 `json:"total_us"`
	MaxUS   int64 `json:"max_us"`
}

// stageAgg is the live, atomically-updated form of StageStats, plus the
// wired per-stage observer (histogram Observe), cached here so recording a
// span costs no lookups.
type stageAgg struct {
	count, total, max atomic.Int64
	obs               atomic.Pointer[func(durUS int64)]
}

func (a *stageAgg) observe(durUS int64) {
	a.count.Add(1)
	a.total.Add(durUS)
	for {
		cur := a.max.Load()
		if durUS <= cur || a.max.CompareAndSwap(cur, durUS) {
			return
		}
	}
}

func (a *stageAgg) snapshot() StageStats {
	return StageStats{Count: a.count.Load(), TotalUS: a.total.Load(), MaxUS: a.max.Load()}
}

// MeanUS is the average span duration in microseconds (0 when empty).
func (s StageStats) MeanUS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.TotalUS) / float64(s.Count)
}

// Collector sizing: the span budget covers a full Monero-scale candidate
// sweep (λ=800 → one candidate plus one solve span per batch token) with
// headroom; ring and exemplar counts bound worst-case retention to a few MB.
const (
	defaultMaxSpans  = 2048
	defaultRingSize  = 32
	defaultExemplars = 5
)

// NewCollector returns an enabled collector with default bounds.
func NewCollector() *Collector {
	c := &Collector{
		maxSpans:  defaultMaxSpans,
		ringSize:  defaultRingSize,
		exemplars: defaultExemplars,
		intern:    newInterner(),
		slow:      make(map[string][]*Trace),
	}
	stages := []*stageAgg{}
	c.stages.Store(&stages)
	c.enabled.Store(true)
	return c
}

var defaultCollector = NewCollector()

// Default returns the process-wide collector the built-in HTTP middleware
// records to.
func Default() *Collector { return defaultCollector }

// Enabled reports whether New creates traces against this collector.
func (c *Collector) Enabled() bool { return c.enabled.Load() }

// SetEnabled toggles trace creation. In-flight traces still record.
func (c *Collector) SetEnabled(on bool) { c.enabled.Store(on) }

// SetStageObserver installs the per-stage observer factory (nil clears it):
// each stage name gets one observer, called with every ended span's duration.
// Already-seen stages are re-wired immediately.
func (c *Collector) SetStageObserver(factory func(name string) func(durUS int64)) {
	c.stagesMu.Lock()
	defer c.stagesMu.Unlock()
	if factory == nil {
		c.stageFactory.Store(nil)
	} else {
		c.stageFactory.Store(&factory)
	}
	for id, agg := range *c.stages.Load() {
		if agg == nil {
			continue
		}
		if factory == nil {
			agg.obs.Store(nil)
			continue
		}
		obs := factory(c.intern.lookup(int32(id)))
		agg.obs.Store(&obs)
	}
}

// recordSpan folds one ended span into its stage aggregate and the stage's
// wired observer: an atomic slice load, an array index, four atomic adds.
func (c *Collector) recordSpan(nameID int32, durUS int64) {
	stages := *c.stages.Load()
	var agg *stageAgg
	if int(nameID) < len(stages) {
		agg = stages[nameID]
	}
	if agg == nil {
		agg = c.growStage(nameID)
	}
	agg.observe(durUS)
	if fn := agg.obs.Load(); fn != nil {
		(*fn)(durUS)
	}
}

// growStage creates the aggregate for a first-seen stage, wiring its
// observer from the factory, and publishes a copy of the dense slice.
func (c *Collector) growStage(nameID int32) *stageAgg {
	c.stagesMu.Lock()
	defer c.stagesMu.Unlock()
	cur := *c.stages.Load()
	if int(nameID) < len(cur) && cur[nameID] != nil {
		return cur[nameID]
	}
	n := len(cur)
	if int(nameID)+1 > n {
		n = int(nameID) + 1
	}
	next := make([]*stageAgg, n)
	copy(next, cur)
	agg := &stageAgg{}
	if factory := c.stageFactory.Load(); factory != nil {
		obs := (*factory)(c.intern.lookup(nameID))
		agg.obs.Store(&obs)
	}
	next[nameID] = agg
	c.stages.Store(&next)
	return agg
}

// StageSnapshot copies the per-stage aggregates (load generators diff two
// snapshots around their measure window).
func (c *Collector) StageSnapshot() map[string]StageStats {
	out := make(map[string]StageStats)
	for id, agg := range *c.stages.Load() {
		if agg != nil {
			out[c.intern.lookup(int32(id))] = agg.snapshot()
		}
	}
	return out
}

// record files a finished trace into the ring and the per-route exemplars,
// and summarises it to slog when Debug logging is on.
func (c *Collector) record(t *Trace) {
	c.mu.Lock()
	if len(c.ring) < c.ringSize {
		c.ring = append(c.ring, t)
	} else {
		c.ring[c.next] = t
	}
	c.next = (c.next + 1) % c.ringSize
	c.total++

	// Keep the slowest exemplars for the route, slowest first.
	slow := c.slow[t.route]
	i := sort.Search(len(slow), func(i int) bool { return slow[i].durUS < t.durUS })
	slow = append(slow, nil)
	copy(slow[i+1:], slow[i:])
	slow[i] = t
	if len(slow) > c.exemplars {
		slow = slow[:c.exemplars]
	}
	c.slow[t.route] = slow
	c.mu.Unlock()

	if slog.Default().Enabled(context.Background(), slog.LevelDebug) {
		slog.Debug("trace finished",
			"route", t.route,
			"status", t.status,
			"dur_us", t.durUS,
			"spans", t.spanCount(),
			"breakdown", t.breakdown())
	}
}

// breakdown renders "name=totalµs" pairs aggregated per span name, sorted by
// descending total — the one-line view of where the request's time went.
func (t *Trace) breakdown() string {
	in := t.collector.intern
	totals := make(map[int32]int64)
	for i, n := 0, t.spanCount(); i < n; i++ {
		sd := t.slotRead(i)
		if sd != nil && sd.endUS >= 0 {
			totals[sd.name] += int64(sd.endUS - sd.startUS)
		}
	}
	type kv struct {
		name string
		us   int64
	}
	parts := make([]kv, 0, len(totals))
	for id, us := range totals {
		parts = append(parts, kv{in.lookup(id), us})
	}
	sort.Slice(parts, func(a, b int) bool {
		if parts[a].us != parts[b].us {
			return parts[a].us > parts[b].us
		}
		return parts[a].name < parts[b].name
	})
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(p.us, 10))
		b.WriteString("us")
	}
	return b.String()
}

// SpanJSON is one span in the /debug/traces export.
type SpanJSON struct {
	Name        string            `json:"name"`
	Parent      int32             `json:"parent"`
	StartUS     int64             `json:"start_us"`
	DurUS       int64             `json:"dur_us"` // -1 when the span never ended
	Annotations map[string]string `json:"annotations,omitempty"`
}

// TraceJSON is one trace in the /debug/traces export.
type TraceJSON struct {
	Route       string            `json:"route"`
	Start       time.Time         `json:"start"`
	DurUS       int64             `json:"dur_us"`
	Status      string            `json:"status"`
	Dropped     int               `json:"dropped_spans,omitempty"`
	DroppedAnns int               `json:"dropped_annotations,omitempty"`
	Annotations map[string]string `json:"annotations,omitempty"`
	Spans       []SpanJSON        `json:"spans"`
}

// DebugPayload is the /debug/traces response body.
type DebugPayload struct {
	Enabled bool                   `json:"enabled"`
	Total   uint64                 `json:"total_traces"`
	Stages  map[string]StageJSON   `json:"stages"`
	Slowest map[string][]TraceJSON `json:"slowest"`
	Recent  []TraceJSON            `json:"recent"`
}

// StageJSON is StageStats plus the derived mean, for export.
type StageJSON struct {
	Count   int64   `json:"count"`
	TotalUS int64   `json:"total_us"`
	MeanUS  float64 `json:"mean_us"`
	MaxUS   int64   `json:"max_us"`
}

func annotMap(annots []annot) map[string]string {
	if len(annots) == 0 {
		return nil
	}
	m := make(map[string]string, len(annots))
	for _, a := range annots {
		m[a.Key] = a.Val
	}
	return m
}

// spanAnnotMap decodes a span's interned annotation slots.
func spanAnnotMap(in *interner, annots []annotRaw) map[string]string {
	if len(annots) == 0 {
		return nil
	}
	m := make(map[string]string, len(annots))
	for _, a := range annots {
		m[a.keyName(in)] = a.value(in)
	}
	return m
}

// export snapshots one trace into its JSON form, decoding the interned span
// records back to strings.
func (t *Trace) export() TraceJSON {
	in := t.collector.intern
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.spanCount()
	out := TraceJSON{
		Route:       t.route,
		Start:       t.start,
		DurUS:       t.durUS,
		Status:      t.status,
		Dropped:     int(t.dropped.Load()),
		DroppedAnns: int(t.droppedAnnots.Load()),
		Annotations: annotMap(t.annots),
		Spans:       make([]SpanJSON, 0, n),
	}
	for i := 0; i < n; i++ {
		sd := t.slotRead(i)
		if sd == nil {
			continue
		}
		dur := int64(-1)
		if sd.endUS >= 0 {
			dur = int64(sd.endUS - sd.startUS)
		}
		out.Spans = append(out.Spans, SpanJSON{
			Name:        in.lookup(sd.name),
			Parent:      sd.parent,
			StartUS:     int64(sd.startUS),
			DurUS:       dur,
			Annotations: spanAnnotMap(in, sd.annots[:sd.na]),
		})
	}
	return out
}

// Snapshot exports the collector's current state. route filters slowest and
// recent to one route ("" keeps all); n caps the recent list (≤0 keeps all).
func (c *Collector) Snapshot(route string, n int) DebugPayload {
	p := DebugPayload{
		Enabled: c.Enabled(),
		Stages:  make(map[string]StageJSON),
		Slowest: make(map[string][]TraceJSON),
	}
	for name, st := range c.StageSnapshot() {
		p.Stages[name] = StageJSON{Count: st.Count, TotalUS: st.TotalUS, MeanUS: st.MeanUS(), MaxUS: st.MaxUS}
	}

	c.mu.Lock()
	p.Total = c.total
	var recent []*Trace
	// Ring order: oldest→newest is [next, len) then [0, next); export
	// newest first.
	for i := 0; i < len(c.ring); i++ {
		idx := (c.next - 1 - i + len(c.ring)) % len(c.ring)
		recent = append(recent, c.ring[idx])
	}
	slow := make(map[string][]*Trace, len(c.slow))
	for r, ts := range c.slow {
		if route != "" && r != route {
			continue
		}
		slow[r] = append([]*Trace(nil), ts...)
	}
	c.mu.Unlock()

	for r, ts := range slow {
		out := make([]TraceJSON, len(ts))
		for i, t := range ts {
			out[i] = t.export()
		}
		p.Slowest[r] = out
	}
	for _, t := range recent {
		if route != "" && t.route != route {
			continue
		}
		if n > 0 && len(p.Recent) >= n {
			break
		}
		p.Recent = append(p.Recent, t.export())
	}
	if p.Recent == nil {
		p.Recent = []TraceJSON{}
	}
	return p
}

// Handler serves the collector as JSON (GET /debug/traces). Query parameters:
// route=<label> filters to one route, n=<count> caps the recent list.
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil {
				n = parsed
			}
		}
		payload := c.Snapshot(r.URL.Query().Get("route"), n)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			// The header is already on the wire; nothing to send the client.
			slog.Debug("trace export encode failed", "err", err)
		}
	})
}
