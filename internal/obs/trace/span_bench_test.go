package trace

import (
	"context"
	"testing"
)

func BenchmarkSpanPair(b *testing.B) {
	c := NewCollector()
	ctx, tr := New(context.Background(), c, "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 { // keep the trace from hitting the span budget
			tr.Finish("ok")
			ctx, tr = New(context.Background(), c, "bench")
		}
		cctx, sp := StartSpan(ctx, "candidate")
		sp.AnnotateInt("worker", 3)
		sp2 := StartChild(cctx, "solve")
		sp2.Annotate("solver", "TM_P")
		sp2.AnnotateInt("ring_size", 12)
		sp2.End()
		sp.End()
	}
}
