package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestInstrumentHTTPRecordsPerRoute(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/meta", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "bad", http.StatusBadRequest)
	})
	h := InstrumentHTTP(reg, "svc", mux, "/v1/meta", "/v1/batch")
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/v1/meta")
	get("/v1/meta")
	get("/v1/batch")
	get("/nope")

	for name, want := range map[string]int64{
		"http.svc.v1_meta.requests":    2,
		"http.svc.v1_meta.status_2xx":  2,
		"http.svc.v1_batch.requests":   1,
		"http.svc.v1_batch.status_4xx": 1,
		"http.svc.other.requests":      1,
		"http.svc.other.status_4xx":    1, // mux 404
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Histogram("http.svc.v1_meta.latency_us", LatencyBucketsUS).Snapshot().Count; got != 2 {
		t.Errorf("latency histogram count = %d, want 2", got)
	}
}

func TestInstrumentHTTPImplicitStatusAndOpenRoutes(t *testing.T) {
	reg := NewRegistry()
	// Handler that never calls WriteHeader: implicit 200.
	h := InstrumentHTTP(reg, "open", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok"))
	}))
	req := httptest.NewRequest(http.MethodGet, "/a/b", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)

	// No allowlist → raw normalized path is tracked.
	if got := reg.Counter("http.open.a_b.status_2xx").Value(); got != 1 {
		t.Fatalf("implicit 200 not recorded: %d", got)
	}
	// Root path gets a stable label.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if got := reg.Counter("http.open.root.requests").Value(); got != 1 {
		t.Fatalf("root route not recorded: %d", got)
	}
}
