package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingHandler runs until released, reporting how many requests ever
// entered it and how many are inside right now.
type blockingHandler struct {
	entered atomic.Int64
	inside  atomic.Int64
	release chan struct{}
}

func newBlockingHandler() *blockingHandler {
	return &blockingHandler{release: make(chan struct{})}
}

func (h *blockingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.entered.Add(1)
	h.inside.Add(1)
	defer h.inside.Add(-1)
	<-h.release
	w.WriteHeader(http.StatusOK)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLimitConcurrencyDisabledPassesThrough(t *testing.T) {
	r := NewRegistry()
	inner := newBlockingHandler()
	if got := LimitConcurrency(r, "svc", 0, 5, inner); got != http.Handler(inner) {
		t.Fatal("maxInFlight<=0 should return next unwrapped")
	}
}

func TestLimitConcurrencyShedsWithoutQueue(t *testing.T) {
	reg := NewRegistry()
	h := newBlockingHandler()
	defer close(h.release)
	lim := LimitConcurrency(reg, "svc", 1, 0, h)

	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		lim.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		done <- rec.Code
	}()
	waitFor(t, "first request to occupy the slot", func() bool { return h.inside.Load() == 1 })

	rec := httptest.NewRecorder()
	lim.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status = %d, want 503", rec.Code)
	}
	if got := reg.Counter("http.svc.rejected_busy").Value(); got != 1 {
		t.Fatalf("rejected_busy = %d, want 1", got)
	}
	h.release <- struct{}{}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("occupying request status = %d, want 200", code)
	}
}

func TestLimitConcurrencyQueueFullOrdering(t *testing.T) {
	reg := NewRegistry()
	h := newBlockingHandler()
	lim := LimitConcurrency(reg, "svc", 1, 1, h)
	queueDepth := reg.Gauge("http.svc.queue_depth")

	// First request takes the slot, second the single queue seat.
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rec := httptest.NewRecorder()
			lim.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			results <- rec.Code
		}()
		if i == 0 {
			waitFor(t, "slot occupied", func() bool { return h.inside.Load() == 1 })
		} else {
			waitFor(t, "queue seat occupied", func() bool { return queueDepth.Value() == 1 })
		}
	}

	// Third request finds slot and queue both full: shed synchronously with
	// 503 before the queued request has been admitted.
	rec := httptest.NewRecorder()
	lim.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queue-full status = %d, want 503", rec.Code)
	}
	if h.entered.Load() != 1 {
		t.Fatalf("shed request must not reach the handler (entered=%d)", h.entered.Load())
	}
	if got := reg.Counter("http.svc.rejected_busy").Value(); got != 1 {
		t.Fatalf("rejected_busy = %d, want 1", got)
	}

	// Release both admitted requests; the queued one gets the slot.
	h.release <- struct{}{}
	h.release <- struct{}{}
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("admitted request status = %d, want 200", code)
		}
	}
	if h.entered.Load() != 2 {
		t.Fatalf("entered = %d, want 2", h.entered.Load())
	}
	if queueDepth.Value() != 0 {
		t.Fatalf("queue_depth = %d after drain, want 0", queueDepth.Value())
	}
}

func TestLimitConcurrencyCancelWhileQueued(t *testing.T) {
	reg := NewRegistry()
	h := newBlockingHandler()
	lim := LimitConcurrency(reg, "svc", 1, 4, h)
	queueDepth := reg.Gauge("http.svc.queue_depth")

	occupied := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		lim.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		occupied <- rec.Code
	}()
	waitFor(t, "slot occupied", func() bool { return h.inside.Load() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	queuedDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		lim.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil).WithContext(ctx))
		queuedDone <- rec.Code
	}()
	waitFor(t, "request queued", func() bool { return queueDepth.Value() == 1 })

	// Client gives up while waiting: 503, no handler invocation, queue seat
	// surrendered.
	cancel()
	if code := <-queuedDone; code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled-while-queued status = %d, want 503", code)
	}
	if h.entered.Load() != 1 {
		t.Fatalf("cancelled request must not run the handler (entered=%d)", h.entered.Load())
	}
	if got := reg.Counter("http.svc.rejected_busy").Value(); got != 1 {
		t.Fatalf("rejected_busy = %d, want 1", got)
	}
	if queueDepth.Value() != 0 {
		t.Fatalf("queue_depth = %d after cancel, want 0", queueDepth.Value())
	}

	// The surrendered queue seat is reusable: a fresh request queues then runs.
	lateDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		lim.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		lateDone <- rec.Code
	}()
	waitFor(t, "late request queued", func() bool { return queueDepth.Value() == 1 })
	h.release <- struct{}{}
	h.release <- struct{}{}
	if code := <-occupied; code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", code)
	}
	if code := <-lateDone; code != http.StatusOK {
		t.Fatalf("late request status = %d, want 200", code)
	}
}

func TestLimitConcurrencyGaugesConsistentUnderLoad(t *testing.T) {
	reg := NewRegistry()
	var peak atomic.Int64
	const maxInFlight, maxQueue, clients = 4, 8, 64
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		// Track the true concurrency the gate allowed through.
		n := peak.Load()
		cur := reg.Gauge("http.load.in_flight").Value()
		for cur > n && !peak.CompareAndSwap(n, cur) {
			n = peak.Load()
		}
		time.Sleep(time.Millisecond)
		w.WriteHeader(200)
	})
	lim := LimitConcurrency(reg, "load", maxInFlight, maxQueue, inner)

	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			lim.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			switch rec.Code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d", rec.Code)
			}
		}()
	}
	wg.Wait()

	if got := ok.Load() + shed.Load(); got != clients {
		t.Fatalf("accounted %d of %d requests", got, clients)
	}
	if shed.Load() != reg.Counter("http.load.rejected_busy").Value() {
		t.Fatalf("shed responses (%d) != rejected_busy counter (%d)",
			shed.Load(), reg.Counter("http.load.rejected_busy").Value())
	}
	if p := peak.Load(); p > maxInFlight {
		t.Fatalf("observed %d concurrent handlers, cap is %d", p, maxInFlight)
	}
	// After the burst drains both gauges must return to zero.
	if v := reg.Gauge("http.load.in_flight").Value(); v != 0 {
		t.Fatalf("in_flight = %d after drain, want 0", v)
	}
	if v := reg.Gauge("http.load.queue_depth").Value(); v != 0 {
		t.Fatalf("queue_depth = %d after drain, want 0", v)
	}
}
