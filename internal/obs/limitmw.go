package obs

import (
	"net/http"

	"tokenmagic/internal/obs/trace"
)

// LimitConcurrency wraps next with a per-service admission gate: at most
// maxInFlight requests execute at once, at most maxQueue more wait for a
// slot, and anything beyond that is shed immediately with 503 so a burst
// degrades into fast rejections instead of unbounded goroutine pile-up.
// Telemetry lands in reg:
//
//	http.<service>.in_flight      gauge   requests currently executing
//	http.<service>.queue_depth    gauge   requests waiting for a slot
//	http.<service>.rejected_busy  counter requests shed with 503
//
// A queued request honours its context: if the client gives up while
// waiting, the slot is surrendered and 503 returned without running next.
// maxInFlight ≤ 0 disables the gate entirely (next is returned unwrapped);
// maxQueue ≤ 0 means no waiting room — over-capacity requests shed at once.
//
// Mount this INSIDE InstrumentHTTP: time spent queued then lands in a
// "queue-wait" span of the request's trace and shed requests are annotated
// on it, so LimitConcurrency's behaviour is attributable per request, not
// just visible in the aggregate counters.
func LimitConcurrency(reg *Registry, service string, maxInFlight, maxQueue int, next http.Handler) http.Handler {
	if maxInFlight <= 0 {
		return next
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	inFlight := reg.Gauge("http." + service + ".in_flight")
	queueDepth := reg.Gauge("http." + service + ".queue_depth")
	rejected := reg.Counter("http." + service + ".rejected_busy")

	// Buffered-channel semaphores: holding an element of sem is the right to
	// execute; holding one of queue is the right to wait for sem.
	sem := make(chan struct{}, maxInFlight)
	var queue chan struct{}
	if maxQueue > 0 {
		queue = make(chan struct{}, maxQueue)
	}

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}: // fast path: a slot is free
		default:
			// Full: try to join the waiting room.
			if queue == nil {
				shed(w, r, rejected, "no_queue", "server busy")
				return
			}
			select {
			case queue <- struct{}{}:
			default:
				shed(w, r, rejected, "queue_full", "server busy")
				return
			}
			queueDepth.Add(1)
			ok := waitForSlot(r, sem)
			queueDepth.Add(-1)
			<-queue
			if !ok {
				shed(w, r, rejected, "cancelled_while_queued", "client gave up while queued")
				return
			}
		}
		inFlight.Add(1)
		defer func() {
			inFlight.Add(-1)
			<-sem
		}()
		next.ServeHTTP(w, r)
	})
}

// waitForSlot blocks a queued request until an execution slot frees or the
// client's context dies, accounting the wait as a "queue-wait" span of the
// request's trace.
func waitForSlot(r *http.Request, sem chan struct{}) bool {
	sp := trace.StartChild(r.Context(), "queue-wait")
	defer sp.End()
	select {
	case sem <- struct{}{}:
		return true
	case <-r.Context().Done():
		sp.Annotate("outcome", "cancelled")
		return false
	}
}

// shed rejects r with 503, marking the request's trace with the reason.
func shed(w http.ResponseWriter, r *http.Request, rejected *Counter, reason, msg string) {
	trace.FromContext(r.Context()).Annotate("shed", reason)
	rejected.Inc()
	http.Error(w, msg, http.StatusServiceUnavailable)
}
