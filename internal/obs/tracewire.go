package obs

import (
	"tokenmagic/internal/obs/trace"
)

// obs sits above trace in the import graph: trace produces span durations,
// obs owns the histograms that summarise them. This file is the one place
// the two layers meet.

func init() {
	// Feed every ended span of the default collector into the default
	// registry, so per-stage latency gets p50/p99 through the ordinary
	// metrics path (/debug/metrics, expvar) next to the raw span trees on
	// /debug/traces.
	WireTraceStages(trace.Default(), Default())
}

// WireTraceStages points the collector's stage observers at reg: each ended
// span of name <stage> lands in the "trace.stage.<stage>.latency_us"
// histogram. The factory runs once per stage name and the collector caches
// the returned Observe on the stage's aggregate, so the per-span path is a
// direct histogram call with no name concatenation or registry lookup — it
// runs once per span, λ or more times per request.
func WireTraceStages(c *trace.Collector, reg *Registry) {
	c.SetStageObserver(func(name string) func(durUS int64) {
		return reg.Histogram("trace.stage."+name+".latency_us", LatencyBucketsUS).Observe
	})
}
