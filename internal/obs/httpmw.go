package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tokenmagic/internal/obs/trace"
)

// statusRecorder captures the response status for metrics and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// routeLabel flattens a request path into a metric-name segment:
// "/v1/batch" → "v1_batch". When a non-empty allowlist is given, paths
// outside it collapse to "other" so hostile or fat-fingered URLs cannot
// grow the registry without bound.
func routeLabel(path string, allowed map[string]bool) string {
	if len(allowed) > 0 && !allowed[path] {
		return "other"
	}
	p := strings.Trim(path, "/")
	if p == "" {
		return "root"
	}
	return strings.ReplaceAll(p, "/", "_")
}

func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// InstrumentHTTP wraps next with per-route telemetry recorded into reg under
// the "http.<service>." prefix:
//
//	http.<service>.<route>.requests      counter
//	http.<service>.<route>.status_<cls>  counter (2xx/3xx/4xx/5xx)
//	http.<service>.<route>.latency_us    histogram
//
// routes, when given, is the closed set of paths tracked individually;
// anything else is lumped under the "other" route. Each completed request is
// also logged at Debug level through slog.Default().
//
// The middleware additionally roots a request trace "<service>.<route>" in
// the default trace collector and finishes it with the response status, so
// everything downstream (LimitConcurrency's queue-wait, the framework's
// sample/solve/verify/commit spans) hangs off one per-request span tree.
// Mount this OUTSIDE LimitConcurrency: then the latency histogram and the
// trace both cover queue wait, and shed requests are counted per route.
func InstrumentHTTP(reg *Registry, service string, next http.Handler, routes ...string) http.Handler {
	allowed := make(map[string]bool, len(routes))
	for _, r := range routes {
		allowed[r] = true
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		route := routeLabel(r.URL.Path, allowed)
		ctx, tr := trace.New(r.Context(), trace.Default(), service+"."+route)
		if tr != nil {
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		prefix := "http." + service + "." + route
		reg.Counter(prefix + ".requests").Inc()
		reg.Counter(prefix + ".status_" + statusClass(rec.status)).Inc()
		reg.Histogram(prefix+".latency_us", LatencyBucketsUS).Observe(elapsed.Microseconds())
		tr.Finish(strconv.Itoa(rec.status))

		slog.Debug("http request",
			"service", service,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"dur_us", elapsed.Microseconds())
	})
}
