// Package obs is the system's stdlib-only observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms, a
// consistent snapshot API, and HTTP telemetry endpoints.
//
// Metrics are identified by dotted names ("node.submit.accepted",
// "selector.TM_P.latency_us"); lookups are get-or-create, so instrumented
// code never has to pre-register anything. All mutation paths are single
// atomic operations — safe for concurrent use and cheap enough for the
// solver hot paths.
//
// Telemetry is exported three ways:
//
//   - expvar: PublishExpvar exposes the registry as one "tokenmagic" var
//     (JSON under GET /debug/vars),
//   - a plain-text dump: Registry.Handler serves GET /debug/metrics,
//   - OperatorMux bundles both, plus net/http/pprof, into a mux meant for
//     an operator port separate from the public protocol port.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tokenmagic/internal/obs/trace"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move both ways (mempool depth, open requests).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts integer observations into fixed buckets. The bucket with
// upper bound b counts observations v ≤ b that no earlier bucket counted; an
// implicit +Inf bucket catches the rest. Latencies are observed in
// microseconds by convention (the *latency_us name suffix).
type Histogram struct {
	bounds  []int64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     atomic.Int64
}

// Default bucket layouts. Latency buckets span 50µs–5s; size buckets are
// powers of two up to Monero-scale batches.
var (
	LatencyBucketsUS = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1000000, 5000000}
	SizeBuckets      = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	own := make([]int64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: own, buckets: make([]atomic.Uint64, len(own)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the microseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Microseconds())
}

// Bucket is one histogram bucket in a snapshot. Le is the inclusive upper
// bound; the final bucket has Le < 0, meaning +Inf. Count is the number of
// observations that landed in this bucket (not cumulative).
type Bucket struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (q in [0, 1]) of the observed values
// by linear interpolation inside the containing bucket. Values that landed in
// the +Inf bucket are clamped to that bucket's lower bound, so tail quantiles
// are lower bounds when observations exceeded the largest bound. Returns 0
// for an empty histogram, for a snapshot with no buckets (a zero value or a
// partially decoded one), and for NaN q; q outside [0, 1] is clamped.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q != q { // NaN: no defensible rank, treat like the empty case
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum, lower := 0.0, 0.0
	for _, b := range s.Buckets {
		if b.Le < 0 { // +Inf bucket
			return lower
		}
		upper := float64(b.Le)
		next := cum + float64(b.Count)
		if next >= rank && b.Count > 0 {
			frac := (rank - cum) / float64(b.Count)
			return lower + frac*(upper-lower)
		}
		cum, lower = next, upper
	}
	return lower
}

// Snapshot copies the histogram's current state. Concurrent observations may
// straddle the copy; each bucket read is individually atomic.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]Bucket, len(h.buckets)),
	}
	for i := range h.buckets {
		le := int64(-1) // +Inf
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = Bucket{Le: le, Count: h.buckets[i].Load()}
	}
	return s
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry, or use the process-wide Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that all built-in
// instrumentation reports to.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Later calls with different bounds return the existing
// histogram unchanged.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies all current metric values. The returned maps and slices
// are owned by the caller and never mutated by the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteText dumps the registry as sorted plain text, one metric per line:
//
//	counter node.submit.accepted 3
//	gauge node.mempool.pending 0
//	histogram selector.TM_P.latency_us count=6 sum=4521 mean=753.50 p50=312 p99=498 le250:2 le500:4 ...
//
// p50/p99 are Quantile estimates (interpolated within buckets). Histogram
// bucket fields are non-cumulative; only non-empty buckets print.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", name, v))
	}
	for name, h := range s.Histograms {
		line := fmt.Sprintf("histogram %s count=%d sum=%d mean=%.2f p50=%.0f p99=%.0f",
			name, h.Count, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			if b.Le < 0 {
				line += fmt.Sprintf(" leInf:%d", b.Count)
			} else {
				line += fmt.Sprintf(" le%d:%d", b.Le, b.Count)
			}
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the plain-text dump (GET /debug/metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
}

var publishOnce sync.Once

// PublishExpvar exposes reg as the single expvar "tokenmagic" so the
// standard /debug/vars JSON carries the whole registry. Only the first
// registry published this way wins (expvar names are process-global).
func PublishExpvar(reg *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("tokenmagic", expvar.Func(func() any { return reg.Snapshot() }))
	})
}

// OperatorMux assembles the operator-port telemetry mux: /debug/vars
// (expvar JSON including the registry), /debug/metrics (plain-text dump),
// /debug/traces (recent and slowest request traces with span trees, JSON)
// and, when withPprof is set, the net/http/pprof handlers under
// /debug/pprof/. Mount it on a port separate from the public protocol port;
// it is not meant to be reachable by untrusted clients.
func OperatorMux(reg *Registry, withPprof bool) *http.ServeMux {
	PublishExpvar(reg)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/metrics", reg.Handler())
	mux.Handle("/debug/traces", trace.Default().Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
