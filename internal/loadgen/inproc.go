package loadgen

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/node"
	"tokenmagic/internal/nodesvc"
	"tokenmagic/internal/workload"

	itm "tokenmagic/internal/tokenmagic"
)

// NodeOptions sizes the in-process node a self-contained load run drives.
type NodeOptions struct {
	// Population is the number of spendable (fresh) tokens.
	Population int
	// Lambda is the node's batch size parameter λ; 0 uses the population
	// (one batch).
	Lambda int
	// Eta is the liveness guard η.
	Eta float64
	// Seed fixes the synthetic chain; the per-token keys are still drawn
	// from crypto/rand (key material does not affect load shape).
	Seed int64
	// Parallelism and Randomize configure the framework's Algorithm-1
	// executor; StopAfter caps its candidate sweep.
	Parallelism int
	Randomize   bool
	StopAfter   int
	// MaxInFlight and MaxQueue configure the admission gate
	// (obs.LimitConcurrency); 0 MaxInFlight disables shedding.
	MaxInFlight int
	MaxQueue    int
}

// InProcNode is a full node served over a loopback listener.
type InProcNode struct {
	// BaseURL is the node's HTTP endpoint.
	BaseURL string
	// Population is the spendable token set (the load run's target pool).
	Population chain.TokenSet

	srv *http.Server
	ln  net.Listener
}

// Close shuts the listener down.
func (n *InProcNode) Close() { _ = n.srv.Close() }

// StartInProcNode builds a synthetic all-fresh chain of opts.Population
// tokens, keys every token, and serves the node protocol (including
// /v1/spend) on a loopback port.
func StartInProcNode(opts NodeOptions) (*InProcNode, error) {
	if opts.Population < 2 {
		return nil, fmt.Errorf("loadgen: population must be ≥ 2, got %d", opts.Population)
	}
	lambda := opts.Lambda
	if lambda <= 0 {
		lambda = opts.Population
	}
	d, err := workload.Synthetic(workload.SyntheticParams{
		NumSupers:    0,
		SuperSizeMin: 1,
		SuperSizeMax: 1,
		NumFresh:     opts.Population,
		Sigma:        12,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	keys, err := node.GenerateKeys(nil, d.Ledger)
	if err != nil {
		return nil, err
	}
	nd, err := node.New(d.Ledger, node.Config{
		Framework: itm.Config{
			Lambda:      lambda,
			Eta:         opts.Eta,
			Headroom:    true,
			Algorithm:   itm.Progressive,
			Randomize:   opts.Randomize,
			Parallelism: opts.Parallelism,
			StopAfter:   opts.StopAfter,
		},
		Keys: keys,
	})
	if err != nil {
		return nil, err
	}
	svc := nodesvc.NewServer(nd)
	svc.MaxInFlight = opts.MaxInFlight
	svc.MaxQueue = opts.MaxQueue

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &InProcNode{
		BaseURL:    "http://" + ln.Addr().String(),
		Population: d.Universe,
		srv:        srv,
		ln:         ln,
	}, nil
}
