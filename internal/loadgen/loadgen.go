// Package loadgen drives spend load at a node over the real HTTP protocol
// (POST /v1/spend) and reports throughput, tail latency, shed rate and the
// per-stage time breakdown from request traces. It is the library behind
// cmd/txgen.
//
// Two load models:
//
//   - closed loop: a fixed population of C workers, each issuing its next
//     request the moment the previous one completes. Offered load adapts to
//     the node's speed; this measures capacity.
//   - open loop ("fixed" or "poisson" arrivals): requests arrive on a clock
//     at rate λ_req regardless of completions, the way independent wallets
//     behave. Outstanding requests are bounded; arrivals past the bound are
//     counted as skipped rather than queued forever, so a saturated node
//     shows up as sheds and skips instead of an unbounded goroutine pile.
//
// Requests issued before the warmup deadline are sent but not measured;
// everything after it lands in the latency histogram and the
// throughput/shed accounting.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/nodesvc"
	"tokenmagic/internal/obs/trace"
	"tokenmagic/internal/workload"
)

// Config is one load run.
type Config struct {
	// BaseURL is the node's public endpoint (e.g. "http://127.0.0.1:8791").
	BaseURL string
	// Client is the HTTP client to use; nil uses a dedicated client with
	// sensible connection reuse for the concurrency below.
	Client *http.Client

	// Arrival picks the load model: "closed", "fixed" or "poisson".
	Arrival string
	// Rate is the open-loop arrival rate in requests/second (ignored for
	// "closed").
	Rate float64
	// Concurrency is the closed-loop worker count, and for open loops the
	// bound on outstanding requests.
	Concurrency int

	// Duration is the measured window; Warmup runs before it, unmeasured.
	Duration time.Duration
	Warmup   time.Duration

	// Population are the spendable targets, Pattern the draw pattern
	// (workload.SpendPatterns) and Seed its determinism.
	Population chain.TokenSet
	Pattern    string
	Seed       int64

	// C and L form the diversity requirement each spend declares.
	C float64
	L int

	// Stages, when non-nil, is the trace collector of the node under test
	// (in-process runs only): the per-stage breakdown is the delta of its
	// aggregates over the measured window.
	Stages *trace.Collector
}

// Latency summarises the measured latency distribution in microseconds.
type Latency struct {
	P50    float64 `json:"p50_us"`
	P95    float64 `json:"p95_us"`
	P99    float64 `json:"p99_us"`
	MeanUS float64 `json:"mean_us"`
	MaxUS  int64   `json:"max_us"`
}

// StageStat is one pipeline stage's share of the measured window.
type StageStat struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	MaxUS  int64   `json:"max_us"`
}

// Result is one completed load run.
type Result struct {
	Arrival     string  `json:"arrival"`
	OfferedRPS  float64 `json:"offered_rps,omitempty"` // open loop only
	Concurrency int     `json:"concurrency"`

	MeasureSeconds float64 `json:"measure_seconds"`
	// OverrunSeconds is wall time spent past the configured window draining
	// requests that were already in flight at the deadline. Closed-loop
	// workers only start requests before the deadline, but a request started
	// at deadline−ε still runs to completion; its result is attributed to
	// the window (it was admitted by the window's load), while the drain
	// time is reported here instead of silently inflating MeasureSeconds —
	// which used to understate throughput by up to 2× under slow backends.
	OverrunSeconds float64 `json:"overrun_seconds,omitempty"`
	Sent           int64   `json:"sent"`
	OK             int64   `json:"ok"`
	Shed           int64   `json:"shed"`     // 503: admission gate
	Rejected       int64   `json:"rejected"` // 422: validation (double spend, η, …)
	Errors         int64   `json:"errors"`
	Skipped        int64   `json:"skipped,omitempty"` // open loop: outstanding bound hit

	ThroughputRPS float64              `json:"throughput_rps"`
	ShedRate      float64              `json:"shed_rate"`
	Latency       Latency              `json:"latency"`
	Stages        map[string]StageStat `json:"stages,omitempty"`
}

// counters aggregates the measured window. Latency lands in an obs histogram
// (for quantiles) plus an atomic max (histograms cap at their last bound).
type counters struct {
	sent, ok, shed, rejected, errs, skipped atomic.Int64

	// Raw per-request latencies of the measured window. A run observes at
	// most duration x rate samples (tens of thousands), so keeping them all
	// is cheap and buys exact percentiles — bucket interpolation over coarse
	// log-spaced buckets can overshoot the true maximum several-fold at the
	// second scale.
	mu      sync.Mutex
	samples []int64
}

func (c *counters) observe(durUS int64) {
	c.mu.Lock()
	c.samples = append(c.samples, durUS)
	c.mu.Unlock()
}

// summarize computes the exact latency summary from the recorded samples
// (nearest-rank percentiles over the sorted set; zeros when nothing landed).
func (c *counters) summarize() Latency {
	c.mu.Lock()
	samples := c.samples
	c.mu.Unlock()
	if len(samples) == 0 {
		return Latency{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum int64
	for _, v := range samples {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(samples)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(samples[i])
	}
	return Latency{
		P50:    rank(0.50),
		P95:    rank(0.95),
		P99:    rank(0.99),
		MeanUS: float64(sum) / float64(len(samples)),
		MaxUS:  samples[len(samples)-1],
	}
}

// Run executes one load run against cfg.BaseURL.
func Run(cfg Config) (Result, error) {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Pattern == "" {
		cfg.Pattern = "uniform"
	}
	switch cfg.Arrival {
	case "closed":
	case "fixed", "poisson":
		if cfg.Rate <= 0 {
			return Result{}, fmt.Errorf("loadgen: open-loop arrival %q needs Rate > 0", cfg.Arrival)
		}
	default:
		return Result{}, fmt.Errorf("loadgen: unknown arrival %q (closed|fixed|poisson)", cfg.Arrival)
	}
	stream, err := workload.NewSpendStream(cfg.Pattern, cfg.Population, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		}}
	}

	var streamMu sync.Mutex
	nextTarget := func() (chain.TokenID, bool) {
		streamMu.Lock()
		defer streamMu.Unlock()
		return stream.Next()
	}
	exhausted := func() bool {
		streamMu.Lock()
		defer streamMu.Unlock()
		return stream.Remaining() == 0
	}

	ctrs := &counters{}
	start := time.Now()
	warmupEnd := start.Add(cfg.Warmup)
	deadline := warmupEnd.Add(cfg.Duration)

	// Stage aggregates are snapshotted at the warmup boundary (not run start)
	// so the delta matches the measured window; the channel hand-off makes
	// the boundary goroutine's write visible to the read at the end of Run.
	var stagesBefore chan map[string]trace.StageStats
	if cfg.Stages != nil {
		stagesBefore = make(chan map[string]trace.StageStats, 1)
		go func() {
			time.Sleep(time.Until(warmupEnd))
			stagesBefore <- cfg.Stages.StageSnapshot()
		}()
	}

	fire := func() {
		target, ok := nextTarget()
		if !ok {
			return // population exhausted
		}
		reqStart := time.Now()
		measured := !reqStart.Before(warmupEnd)
		status, err := postSpend(client, cfg.BaseURL, nodesvc.SpendRequest{Target: target, C: cfg.C, L: cfg.L})
		if !measured {
			return
		}
		ctrs.sent.Add(1)
		switch {
		case err != nil:
			ctrs.errs.Add(1)
		case status == http.StatusOK:
			ctrs.ok.Add(1)
			ctrs.observe(time.Since(reqStart).Microseconds())
		case status == http.StatusServiceUnavailable:
			ctrs.shed.Add(1)
		case status == http.StatusUnprocessableEntity:
			ctrs.rejected.Add(1)
		default:
			ctrs.errs.Add(1)
		}
	}

	if cfg.Arrival == "closed" {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					fire()
					if exhausted() {
						return
					}
				}
			}()
		}
		wg.Wait()
	} else {
		runOpenLoop(cfg, deadline, ctrs, fire)
	}

	// Denominator discipline: the measured window is the configured duration,
	// not "warmup end until the last straggler returned". wg.Wait() returns
	// only after every in-flight request drains, so the raw elapsed time
	// overruns the window by up to a full request latency per worker; rates
	// divided by it would undercount. Clamp to the configured window and
	// surface the drain explicitly.
	elapsed := time.Since(warmupEnd).Seconds()
	window := cfg.Duration.Seconds()
	overrun := 0.0
	if window > 0 && elapsed > window {
		overrun = elapsed - window
		elapsed = window
	}
	if elapsed <= 0 {
		elapsed = window
	}
	res := Result{
		Arrival:        cfg.Arrival,
		Concurrency:    cfg.Concurrency,
		MeasureSeconds: elapsed,
		OverrunSeconds: overrun,
		Sent:           ctrs.sent.Load(),
		OK:             ctrs.ok.Load(),
		Shed:           ctrs.shed.Load(),
		Rejected:       ctrs.rejected.Load(),
		Errors:         ctrs.errs.Load(),
		Skipped:        ctrs.skipped.Load(),
	}
	if cfg.Arrival != "closed" {
		res.OfferedRPS = cfg.Rate
	}
	res.ThroughputRPS = float64(res.OK) / elapsed
	if res.Sent > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Sent)
	}
	res.Latency = ctrs.summarize()
	if cfg.Stages != nil {
		// The boundary goroutine finished long ago (the measure window sits
		// entirely after the warmup deadline), so this receive is immediate.
		res.Stages = stageDelta(<-stagesBefore, cfg.Stages.StageSnapshot())
	}
	return res, nil
}

// runOpenLoop paces arrivals on a clock: fixed inter-arrival gaps or
// exponential ones (Poisson process), each arrival firing on its own
// goroutine, with at most cfg.Concurrency outstanding.
func runOpenLoop(cfg Config, deadline time.Time, ctrs *counters, fire func()) {
	//lint:ignore determinism inter-arrival jitter, not part of any replayed experiment outcome
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	gap := time.Duration(float64(time.Second) / cfg.Rate)
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	next := time.Now()
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		if now.Before(next) {
			time.Sleep(time.Until(next))
		}
		if cfg.Arrival == "poisson" {
			next = next.Add(time.Duration(rng.ExpFloat64() * float64(gap)))
		} else {
			next = next.Add(gap)
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-sem; wg.Done() }()
				fire()
			}()
		default:
			// Outstanding bound hit: the client side is saturated. Count it
			// so offered load stays honest instead of silently self-pacing.
			ctrs.skipped.Add(1)
		}
	}
	wg.Wait()
}

// postSpend posts one spend and returns the HTTP status.
func postSpend(client *http.Client, base string, req nodesvc.SpendRequest) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+"/v1/spend", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	// Drain so the connection is reusable.
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// stageDelta subtracts two collector snapshots, keeping stages that moved.
func stageDelta(before, after map[string]trace.StageStats) map[string]StageStat {
	out := make(map[string]StageStat, len(after))
	for name, a := range after {
		b := before[name] // zero value when the stage is new
		count := a.Count - b.Count
		if count <= 0 {
			continue
		}
		total := a.TotalUS - b.TotalUS
		out[name] = StageStat{
			Count:  count,
			MeanUS: float64(total) / float64(count),
			MaxUS:  a.MaxUS, // max is not invertible; report the running max
		}
	}
	return out
}
