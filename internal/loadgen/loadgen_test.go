package loadgen

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/obs/trace"
)

func population(n int) chain.TokenSet {
	toks := make([]chain.TokenID, n)
	for i := range toks {
		toks[i] = chain.TokenID(i)
	}
	return chain.NewTokenSet(toks...)
}

func startNode(t *testing.T, opts NodeOptions) *InProcNode {
	t.Helper()
	n, err := StartInProcNode(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestClosedLoopAgainstInProcNode(t *testing.T) {
	n := startNode(t, NodeOptions{Population: 60, Eta: 0, Seed: 1, Randomize: true, StopAfter: 4})
	res, err := Run(Config{
		BaseURL:     n.BaseURL,
		Arrival:     "closed",
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Warmup:      50 * time.Millisecond,
		Population:  n.Population,
		Pattern:     "uniform",
		Seed:        1,
		C:           1, L: 3,
		Stages: trace.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 {
		t.Fatalf("no successful spends: %+v", res)
	}
	if res.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", res.ThroughputRPS)
	}
	if res.Latency.P99 < res.Latency.P50 {
		t.Fatalf("p99 %v < p50 %v", res.Latency.P99, res.Latency.P50)
	}
	// The spend pipeline must show up in the stage breakdown.
	for _, stage := range []string{"sample", "sign", "verify", "commit"} {
		if res.Stages[stage].Count == 0 {
			t.Errorf("stage %q missing from breakdown: %v", stage, res.Stages)
		}
	}
	// Result must serialise cleanly (it is the BENCH_load.json row type).
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}

func TestOpenLoopPoissonAndZipfRejects(t *testing.T) {
	n := startNode(t, NodeOptions{Population: 20, Eta: 0, Seed: 2})
	res, err := Run(Config{
		BaseURL:     n.BaseURL,
		Arrival:     "poisson",
		Rate:        200,
		Concurrency: 8,
		Duration:    250 * time.Millisecond,
		Warmup:      0,
		Population:  n.Population,
		Pattern:     "zipf",
		Seed:        2,
		C:           1, L: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("open loop sent nothing")
	}
	if res.OK == 0 {
		t.Fatalf("no successful spends: %+v", res)
	}
	// Zipf repeats the hot targets, so double-spend rejections must appear.
	if res.Rejected == 0 {
		t.Fatalf("zipf traffic produced no 422 rejects: %+v", res)
	}
	if res.OfferedRPS != 200 {
		t.Fatalf("offered_rps = %v", res.OfferedRPS)
	}
}

// TestStatusClassification drives a stub node that sheds and rejects on a
// fixed schedule, checking Run's 200/503/422 accounting and shed rate. (The
// real admission gate's semantics are covered by internal/obs's
// LimitConcurrency tests; on a single-CPU runner short handlers serialise and
// a live gate may never overlap, so classification is tested deterministically
// here.)
func TestStatusClassification(t *testing.T) {
	var nth atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch nth.Add(1) % 4 {
		case 0:
			http.Error(w, "busy", http.StatusServiceUnavailable)
		case 1:
			http.Error(w, "double spend", http.StatusUnprocessableEntity)
		default:
			_, _ = w.Write([]byte(`{}`))
		}
	}))
	defer srv.Close()

	res, err := Run(Config{
		BaseURL:     srv.URL,
		Arrival:     "closed",
		Concurrency: 2,
		Duration:    150 * time.Millisecond,
		Population:  population(40),
		Pattern:     "zipf", // never exhausts, keeps pressure up
		Seed:        3,
		C:           1, L: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 || res.Shed == 0 || res.Rejected == 0 {
		t.Fatalf("all classes should appear: %+v", res)
	}
	if got := res.OK + res.Shed + res.Rejected + res.Errors; got != res.Sent {
		t.Fatalf("classification does not partition sent: %d != %d", got, res.Sent)
	}
	if res.ShedRate <= 0 || res.ShedRate > 1 {
		t.Fatalf("shed_rate = %v", res.ShedRate)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Arrival: "warp", Population: nil}); err == nil {
		t.Fatal("unknown arrival accepted")
	}
	if _, err := Run(Config{Arrival: "fixed", Rate: 0}); err == nil {
		t.Fatal("open loop without rate accepted")
	}
}

func TestInProcNodeServesStatus(t *testing.T) {
	n := startNode(t, NodeOptions{Population: 10, Seed: 4})
	resp, err := http.Get(n.BaseURL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/status = %d", resp.StatusCode)
	}
}

func TestClosedLoopWindowClamp(t *testing.T) {
	// A backend slower than the whole measure window: each worker starts its
	// final (indeed only) request inside the window and drains far past it.
	// The window denominator must stay at the configured duration, with the
	// drain reported separately, not folded into measure_seconds.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(250 * time.Millisecond)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer slow.Close()

	const window = 100 * time.Millisecond
	res, err := Run(Config{
		BaseURL:     slow.URL,
		Arrival:     "closed",
		Concurrency: 2,
		Duration:    window,
		Population:  population(40),
		Pattern:     "zipf",
		Seed:        5,
		C:           1, L: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasureSeconds != window.Seconds() {
		t.Fatalf("measure_seconds = %v, want clamp to %v", res.MeasureSeconds, window.Seconds())
	}
	// Each request takes 250ms against a 100ms window, so the drain past the
	// deadline is at least ~150ms.
	if res.OverrunSeconds < 0.1 {
		t.Fatalf("overrun_seconds = %v, want the drain to be visible", res.OverrunSeconds)
	}
	if res.OK == 0 {
		t.Fatalf("slow requests admitted in-window must still be counted: %+v", res)
	}
	// Late completions keep their latency samples: p50 reflects the real
	// 250ms backend even though the window was 100ms.
	if res.Latency.P50 < 200_000 { // µs
		t.Fatalf("p50 = %v, late-completion samples were dropped", res.Latency.P50)
	}
	if res.ThroughputRPS != float64(res.OK)/res.MeasureSeconds {
		t.Fatalf("throughput %v not normalised by the clamped window", res.ThroughputRPS)
	}
}
