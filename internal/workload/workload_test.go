package workload

import (
	"errors"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/selector"
)

func TestRealMoneroAggregates(t *testing.T) {
	d, err := RealMonero(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Ledger.NumTxs(); got != RealTxCount {
		t.Fatalf("txs = %d, want %d", got, RealTxCount)
	}
	if got := d.Ledger.NumTokens(); got != RealTokenCount {
		t.Fatalf("tokens = %d, want %d", got, RealTokenCount)
	}
	if got := d.Ledger.NumRS(); got != RealSuperCount {
		t.Fatalf("rings = %d, want %d", got, RealSuperCount)
	}
	for _, r := range d.Rings() {
		if len(r.Tokens) != RealRingSize {
			t.Fatalf("ring %v size = %d, want %d", r.ID, len(r.Tokens), RealRingSize)
		}
	}
	if len(d.FreshTokens) != RealFreshCount {
		t.Fatalf("fresh = %d, want %d", len(d.FreshTokens), RealFreshCount)
	}
	if len(d.Universe) != RealTokenCount {
		t.Fatalf("universe = %d", len(d.Universe))
	}
}

func TestRealMoneroRingsDisjoint(t *testing.T) {
	d, err := RealMonero(2)
	if err != nil {
		t.Fatal(err)
	}
	rings := d.Rings()
	for i := range rings {
		for j := i + 1; j < len(rings); j++ {
			if !rings[i].Tokens.Disjoint(rings[j].Tokens) {
				t.Fatalf("rings %d and %d overlap", i, j)
			}
		}
		if !rings[i].Tokens.Disjoint(d.FreshTokens) {
			t.Fatalf("ring %d overlaps fresh tokens", i)
		}
	}
}

func TestRealMoneroFigure3Shape(t *testing.T) {
	d, err := RealMonero(3)
	if err != nil {
		t.Fatal(err)
	}
	h := d.OutputHistogram()
	// Figure 3: the mode is 2 outputs per transaction, by a wide margin.
	mode, modeCount := 0, 0
	for k, c := range h {
		if c > modeCount {
			mode, modeCount = k, c
		}
	}
	if mode != 2 {
		t.Fatalf("modal output count = %d (histogram %v), want 2", mode, h)
	}
	if modeCount < 200 {
		t.Fatalf("2-output txs = %d, want the large majority", modeCount)
	}
	// Max outputs per HT stays within Monero's observed bound of 16.
	for k := range h {
		if k > 16 {
			t.Fatalf("output count %d exceeds Monero's max of 16", k)
		}
	}
}

func TestRealMoneroDeterministicPerSeed(t *testing.T) {
	a, err := RealMonero(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RealMonero(7)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range a.Rings() {
		if !r.Tokens.Equal(b.Rings()[i].Tokens) {
			t.Fatalf("seeded generation must be deterministic (ring %d)", i)
		}
	}
	c, err := RealMonero(8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, r := range a.Rings() {
		if !r.Tokens.Equal(c.Rings()[i].Tokens) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should shuffle ring membership")
	}
}

func TestSyntheticDefaults(t *testing.T) {
	p := DefaultSynthetic()
	p.Seed = 42
	d, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.SuperCount != 50 {
		t.Fatalf("supers = %d", d.SuperCount)
	}
	if len(d.FreshTokens) != 10 {
		t.Fatalf("fresh = %d", len(d.FreshTokens))
	}
	total := 0
	for _, r := range d.Rings() {
		sz := len(r.Tokens)
		if sz < 10 || sz > 20 {
			t.Fatalf("super size %d outside [10,20]", sz)
		}
		total += sz
	}
	if got := d.Ledger.NumTokens(); got != total+10 {
		t.Fatalf("tokens = %d, want supers(%d)+fresh(10)", got, total)
	}
	if len(d.Universe) != d.Ledger.NumTokens() {
		t.Fatalf("universe = %d", len(d.Universe))
	}
}

func TestSyntheticRingsDisjointAndDecomposable(t *testing.T) {
	p := DefaultSynthetic()
	p.Seed = 5
	d, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	rings := d.Rings()
	for i := range rings {
		for j := i + 1; j < len(rings); j++ {
			if !rings[i].Tokens.Disjoint(rings[j].Tokens) {
				t.Fatalf("rings %d, %d overlap", i, j)
			}
		}
	}
	supers, fresh := selector.Decompose(rings, d.Universe)
	if len(supers) != p.NumSupers {
		t.Fatalf("Decompose found %d supers, want %d", len(supers), p.NumSupers)
	}
	if !fresh.Equal(d.FreshTokens) {
		t.Fatalf("Decompose fresh %v != dataset fresh %v", fresh, d.FreshTokens)
	}
}

func TestSyntheticSigmaControlsHTSpread(t *testing.T) {
	lo := DefaultSynthetic()
	lo.Sigma, lo.Seed = 2, 9
	hi := DefaultSynthetic()
	hi.Sigma, hi.Seed = 30, 9
	dl, err := Synthetic(lo)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := Synthetic(hi)
	if err != nil {
		t.Fatal(err)
	}
	if dl.Ledger.NumTxs() >= dh.Ledger.NumTxs() {
		t.Fatalf("σ=2 gave %d HTs, σ=30 gave %d; larger σ must spread more",
			dl.Ledger.NumTxs(), dh.Ledger.NumTxs())
	}
}

func TestSyntheticDeterministicPerSeed(t *testing.T) {
	p := DefaultSynthetic()
	p.Seed = 11
	a, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ledger.NumTxs() != b.Ledger.NumTxs() {
		t.Fatalf("HT counts differ: %d vs %d", a.Ledger.NumTxs(), b.Ledger.NumTxs())
	}
	originA, originB := a.Origin(), b.Origin()
	for _, tok := range a.Universe {
		if originA(tok) != originB(tok) {
			t.Fatalf("token %v origin differs between equal-seed runs", tok)
		}
	}
	for i, r := range a.Rings() {
		if !r.Tokens.Equal(b.Rings()[i].Tokens) {
			t.Fatalf("ring %d differs between equal-seed runs", i)
		}
	}
}

func TestSyntheticParamValidation(t *testing.T) {
	bad := []SyntheticParams{
		{NumSupers: -1, SuperSizeMin: 1, SuperSizeMax: 2, Sigma: 1},
		{NumSupers: 1, SuperSizeMin: 0, SuperSizeMax: 2, Sigma: 1},
		{NumSupers: 1, SuperSizeMin: 3, SuperSizeMax: 2, Sigma: 1},
		{NumSupers: 1, SuperSizeMin: 1, SuperSizeMax: 2, Sigma: 0},
		{NumSupers: 1, SuperSizeMin: 1, SuperSizeMax: 2, Sigma: 1, NumFresh: -1},
	}
	for _, p := range bad {
		if _, err := Synthetic(p); !errors.Is(err, ErrBadParams) {
			t.Errorf("Synthetic(%+v) err = %v, want ErrBadParams", p, err)
		}
	}
}

func TestSmallScale(t *testing.T) {
	d, err := SmallScale(SmallScaleParams{Tokens: 20, HTs: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Ledger.NumTokens(); got != 20 {
		t.Fatalf("tokens = %d", got)
	}
	if got := d.Ledger.NumTxs(); got != 7 {
		t.Fatalf("HTs = %d", got)
	}
	if d.Ledger.NumRS() != 0 {
		t.Fatal("small-scale set starts with no rings")
	}
	if _, err := SmallScale(SmallScaleParams{Tokens: 2, HTs: 5}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("HTs > Tokens must error, got %v", err)
	}
}

func TestOriginCoversAllTokens(t *testing.T) {
	d, err := RealMonero(4)
	if err != nil {
		t.Fatal(err)
	}
	origin := d.Origin()
	for _, tok := range d.Universe {
		if origin(tok) == chain.NoTx {
			t.Fatalf("token %v has no origin", tok)
		}
	}
}
