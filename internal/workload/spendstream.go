package workload

import (
	"fmt"
	"math/rand"

	"tokenmagic/internal/chain"
)

// SpendStream yields the sequence of spend targets a load generator drives at
// a node: which token each simulated user tries to consume next. Streams are
// deterministic per seed, so a load run replays exactly.
//
// Two population spend patterns:
//
//   - "uniform": a seeded permutation of the population, each token spent at
//     most once (sampling without replacement). Every request is a fresh
//     double-spend-free target; the stream ends when the population is
//     exhausted.
//   - "zipf": tokens drawn with replacement from a Zipf distribution over the
//     population, modelling hot wallets. Repeats are intentional — the node
//     rejects the duplicate key image, so this pattern exercises the
//     double-spend path under load.
type SpendStream struct {
	tokens []chain.TokenID
	next   int
	zipf   *rand.Zipf
}

// SpendPatterns lists the accepted NewSpendStream pattern names.
var SpendPatterns = []string{"uniform", "zipf"}

// NewSpendStream builds a spend-target stream over population (the tokens the
// generator may spend), with the given pattern and seed.
func NewSpendStream(pattern string, population chain.TokenSet, seed int64) (*SpendStream, error) {
	if len(population) == 0 {
		return nil, fmt.Errorf("%w: empty spend population", ErrBadParams)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &SpendStream{tokens: append([]chain.TokenID(nil), population...)}
	switch pattern {
	case "uniform":
		rng.Shuffle(len(s.tokens), func(i, j int) {
			s.tokens[i], s.tokens[j] = s.tokens[j], s.tokens[i]
		})
	case "zipf":
		// s=1.1, v=1: a mild hot-wallet skew; the heaviest token draws a few
		// percent of the traffic at Monero-scale populations.
		s.zipf = rand.NewZipf(rng, 1.1, 1, uint64(len(s.tokens)-1))
	default:
		return nil, fmt.Errorf("%w: unknown spend pattern %q (have %v)", ErrBadParams, pattern, SpendPatterns)
	}
	return s, nil
}

// Next returns the next spend target. ok is false when the stream is
// exhausted ("uniform" after one pass; "zipf" never ends).
func (s *SpendStream) Next() (chain.TokenID, bool) {
	if s.zipf != nil {
		return s.tokens[s.zipf.Uint64()], true
	}
	if s.next >= len(s.tokens) {
		return chain.NoToken, false
	}
	t := s.tokens[s.next]
	s.next++
	return t, true
}

// Remaining reports how many targets a "uniform" stream still holds
// (-1 for the unbounded "zipf" stream).
func (s *SpendStream) Remaining() int {
	if s.zipf != nil {
		return -1
	}
	return len(s.tokens) - s.next
}
