package workload

import (
	"testing"

	"tokenmagic/internal/chain"
)

func population(n int) chain.TokenSet {
	toks := make([]chain.TokenID, n)
	for i := range toks {
		toks[i] = chain.TokenID(i)
	}
	return chain.NewTokenSet(toks...)
}

func TestSpendStreamUniformPermutation(t *testing.T) {
	pop := population(50)
	s, err := NewSpendStream("uniform", pop, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[chain.TokenID]bool)
	for i := 0; i < 50; i++ {
		if got := s.Remaining(); got != 50-i {
			t.Fatalf("Remaining = %d at step %d", got, i)
		}
		tok, ok := s.Next()
		if !ok {
			t.Fatalf("stream exhausted early at %d", i)
		}
		if seen[tok] {
			t.Fatalf("token %v drawn twice", tok)
		}
		if !pop.Contains(tok) {
			t.Fatalf("token %v outside population", tok)
		}
		seen[tok] = true
	}
	if _, ok := s.Next(); ok {
		t.Fatal("uniform stream should exhaust after one pass")
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", s.Remaining())
	}
}

func TestSpendStreamDeterministicPerSeed(t *testing.T) {
	for _, pattern := range SpendPatterns {
		a, err := NewSpendStream(pattern, population(30), 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSpendStream(pattern, population(30), 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			ta, _ := a.Next()
			tb, _ := b.Next()
			if ta != tb {
				t.Fatalf("%s: draw %d diverged: %v vs %v", pattern, i, ta, tb)
			}
		}
	}
}

func TestSpendStreamZipfRepeatsAndUnbounded(t *testing.T) {
	s, err := NewSpendStream("zipf", population(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Remaining() != -1 {
		t.Fatalf("zipf Remaining = %d, want -1", s.Remaining())
	}
	seen := make(map[chain.TokenID]int)
	for i := 0; i < 200; i++ {
		tok, ok := s.Next()
		if !ok {
			t.Fatal("zipf stream must never exhaust")
		}
		seen[tok]++
	}
	repeats := 0
	for _, n := range seen {
		if n > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("200 zipf draws over 10 tokens produced no repeats")
	}
}

func TestSpendStreamValidation(t *testing.T) {
	if _, err := NewSpendStream("uniform", nil, 1); err == nil {
		t.Fatal("empty population accepted")
	}
	if _, err := NewSpendStream("bogus", population(5), 1); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}
