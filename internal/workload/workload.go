// Package workload generates the paper's two experiment data sets:
//
//   - Real: a deterministic reconstruction of the Monero mainnet slice the
//     paper uses (blocks 2,028,242–2,028,273, one hour of traffic): 285
//     transactions, 633 output tokens with the Figure-3 output-count
//     distribution (dominated by 2-output transactions), 57 disjoint super
//     ring signatures of the Monero-standard ring size 11, and 6 fresh
//     tokens. The DA-MS algorithms only observe token→HT multiplicities and
//     ring overlap structure, so matching these aggregates reproduces the
//     paper's instance exactly up to relabelling (see DESIGN.md,
//     substitutions).
//
//   - Synthetic: the Table-3 generator: |S| super rings with sizes uniform
//     in [s⁻, s⁺], |F| fresh tokens, and per-token HTs drawn from a
//     discretised normal distribution with standard deviation σ (larger σ →
//     more distinct HTs → easier diversity).
//
// All generators are deterministic given their seed.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tokenmagic/internal/chain"
)

// Dataset is a generated ledger plus the derived experiment handles.
type Dataset struct {
	Ledger *chain.Ledger
	// Universe is the mixin universe of the (single) batch the experiments
	// select from.
	Universe chain.TokenSet
	// FreshTokens are the tokens left outside every super ring.
	FreshTokens chain.TokenSet
	// SuperCount is the number of super rings appended to the ledger.
	SuperCount int
}

// Origin returns the token→HT lookup for the data set.
func (d *Dataset) Origin() func(chain.TokenID) chain.TxID { return d.Ledger.OriginFunc() }

// Rings returns the ledger's rings (the super rings, in proposal order).
func (d *Dataset) Rings() []chain.RingRecord { return d.Ledger.Rings() }

// Real data set constants, matching Section 7.1.
const (
	RealTxCount    = 285
	RealTokenCount = 633
	RealSuperCount = 57
	RealRingSize   = 11
	RealFreshCount = 6
)

// RealMonero builds the paper's real data set. The output-count histogram is
// synthesised deterministically to hit exactly 285 transactions and 633
// tokens with the Figure-3 shape: most transactions emit two tokens, a thin
// tail emits more, a few emit one. Ring membership is randomised by seed, as
// the paper randomises which 11 tokens each super ring selects.
func RealMonero(seed int64) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	counts := realOutputCounts()

	l := chain.NewLedger()
	block := l.BeginBlock()
	total := 0
	for _, n := range counts {
		if _, err := l.AddTx(block, n); err != nil {
			return nil, err
		}
		total += n
	}
	if len(counts) != RealTxCount || total != RealTokenCount {
		return nil, fmt.Errorf("workload: internal histogram error: %d txs, %d tokens", len(counts), total)
	}

	universe := l.TokensInBlocks(block, block)
	perm := rng.Perm(len(universe))
	// First 57·11 tokens (in permuted order) fill the super rings; the
	// remaining 6 stay fresh.
	idx := 0
	for s := 0; s < RealSuperCount; s++ {
		toks := make([]chain.TokenID, RealRingSize)
		for k := range toks {
			toks[k] = universe[perm[idx]]
			idx++
		}
		if _, err := l.AppendRS(chain.NewTokenSet(toks...), 1, 1); err != nil {
			return nil, err
		}
	}
	var fresh chain.TokenSet
	for ; idx < len(perm); idx++ {
		fresh = fresh.Add(universe[perm[idx]])
	}
	return &Dataset{Ledger: l, Universe: universe, FreshTokens: fresh, SuperCount: RealSuperCount}, nil
}

// realOutputCounts returns the per-transaction output counts: 285 entries
// summing to 633, shaped like Figure 3 (mode at 2 outputs).
func realOutputCounts() []int {
	var counts []int
	add := func(n, times int) {
		for i := 0; i < times; i++ {
			counts = append(counts, n)
		}
	}
	add(1, 25)  //  25 tokens
	add(2, 215) // 430
	add(3, 30)  //  90
	add(4, 10)  //  40
	add(5, 3)   //  15
	add(6, 1)   //   6
	add(11, 1)  //  11
	add(16, 1)  //  16  → total 633 over 286… adjust below
	// 25+215+30+10+3+1+1+1 = 286 txs; drop one 1-output tx and rebalance.
	// Recompute exactly: target 285 txs / 633 tokens.
	counts = counts[:0]
	add(1, 24)  //  24
	add(2, 215) // 430
	add(3, 30)  //  90
	add(4, 10)  //  40
	add(5, 3)   //  15
	add(6, 1)   //   6
	add(11, 1)  //  11
	add(16, 1)  //  16
	// 24+430+90+40+15+6+11+16 = 632; one token short → promote a 1 to a 2.
	counts[0] = 2
	return counts
}

// SyntheticParams mirrors Table 3. Defaults (bold in the paper) come from
// DefaultSynthetic.
type SyntheticParams struct {
	NumSupers    int     // |S|
	SuperSizeMin int     // s⁻
	SuperSizeMax int     // s⁺
	NumFresh     int     // |F|
	Sigma        float64 // std-dev of the token→HT normal distribution
	Seed         int64
}

// DefaultSynthetic returns Table 3's default (bold) parameter values.
func DefaultSynthetic() SyntheticParams {
	return SyntheticParams{
		NumSupers:    50,
		SuperSizeMin: 10,
		SuperSizeMax: 20,
		NumFresh:     10,
		Sigma:        12,
	}
}

// ErrBadParams reports out-of-range synthetic parameters.
var ErrBadParams = errors.New("workload: invalid synthetic parameters")

// Synthetic builds a Table-3 data set: per-token HT labels are drawn from
// round(N(0, σ)) and densified into ledger transactions, then |S| disjoint
// super rings of uniform size in [s⁻, s⁺] are carved out, leaving |F| fresh
// tokens.
func Synthetic(p SyntheticParams) (*Dataset, error) {
	if p.NumSupers < 0 || p.NumFresh < 0 || p.SuperSizeMin < 1 ||
		p.SuperSizeMax < p.SuperSizeMin || p.Sigma <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Super sizes first, so we know the token budget.
	sizes := make([]int, p.NumSupers)
	totalTokens := p.NumFresh
	for i := range sizes {
		sizes[i] = p.SuperSizeMin + rng.Intn(p.SuperSizeMax-p.SuperSizeMin+1)
		totalTokens += sizes[i]
	}

	// Draw an HT label per token from the discretised normal.
	labels := make([]int, totalTokens)
	labelCount := make(map[int]int)
	for i := range labels {
		lab := int(math.Round(rng.NormFloat64() * p.Sigma))
		labels[i] = lab
		labelCount[lab]++
	}

	// One ledger transaction per distinct label, outputs = label
	// multiplicity. Labels are processed in sorted order so generation is
	// deterministic per seed (map iteration order is randomised in Go).
	sorted := make([]int, 0, len(labelCount))
	for lab := range labelCount {
		sorted = append(sorted, lab)
	}
	sort.Ints(sorted)
	l := chain.NewLedger()
	block := l.BeginBlock()
	txOf := make(map[int]chain.TxID, len(labelCount))
	nextOut := make(map[int]int, len(labelCount)) // label → outputs handed out
	for _, lab := range sorted {
		tx, err := l.AddTx(block, labelCount[lab])
		if err != nil {
			return nil, err
		}
		txOf[lab] = tx
	}
	// Map each drawn label occurrence to a concrete token id of its tx.
	tokens := make([]chain.TokenID, totalTokens)
	for i, lab := range labels {
		tx, err := l.Tx(txOf[lab])
		if err != nil {
			return nil, err
		}
		tokens[i] = tx.Outputs[nextOut[lab]]
		nextOut[lab]++
	}

	// Shuffle token order, then carve out the super rings.
	rng.Shuffle(len(tokens), func(i, j int) { tokens[i], tokens[j] = tokens[j], tokens[i] })
	idx := 0
	for _, sz := range sizes {
		toks := make([]chain.TokenID, sz)
		for k := range toks {
			toks[k] = tokens[idx]
			idx++
		}
		if _, err := l.AppendRS(chain.NewTokenSet(toks...), 1, 1); err != nil {
			return nil, err
		}
	}
	var fresh chain.TokenSet
	for ; idx < len(tokens); idx++ {
		fresh = fresh.Add(tokens[idx])
	}

	return &Dataset{
		Ledger:      l,
		Universe:    l.TokensInBlocks(block, block),
		FreshTokens: fresh,
		SuperCount:  p.NumSupers,
	}, nil
}

// SmallScaleParams configures the Figure-4 micro data set: a tiny universe
// the exact BFS solver can handle.
type SmallScaleParams struct {
	Tokens int // universe size (paper: 20)
	HTs    int // distinct historical transactions
	Seed   int64
}

// SmallScale builds the Figure-4 data set: Tokens tokens spread round-robin
// over HTs historical transactions, no pre-existing rings.
func SmallScale(p SmallScaleParams) (*Dataset, error) {
	if p.Tokens < 1 || p.HTs < 1 || p.HTs > p.Tokens {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	l := chain.NewLedger()
	block := l.BeginBlock()
	per := p.Tokens / p.HTs
	extra := p.Tokens % p.HTs
	for h := 0; h < p.HTs; h++ {
		n := per
		if h < extra {
			n++
		}
		if n == 0 {
			continue
		}
		if _, err := l.AddTx(block, n); err != nil {
			return nil, err
		}
	}
	universe := l.TokensInBlocks(block, block)
	return &Dataset{Ledger: l, Universe: universe, FreshTokens: universe}, nil
}

// OutputHistogram returns the Figure-3 statistic for a data set: how many
// transactions emitted k output tokens, keyed by k.
func (d *Dataset) OutputHistogram() map[int]int {
	h := make(map[int]int)
	for i := 0; i < d.Ledger.NumTxs(); i++ {
		tx, err := d.Ledger.Tx(chain.TxID(i))
		if err != nil {
			continue
		}
		h[len(tx.Outputs)]++
	}
	return h
}
