package dtrs

import (
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/rsgraph"
)

func ring(id int, toks ...chain.TokenID) rsgraph.Ring {
	return rsgraph.Ring{ID: chain.RSID(id), Tokens: chain.NewTokenSet(toks...)}
}

func originOf(hts map[chain.TokenID]chain.TxID) func(chain.TokenID) chain.TxID {
	return func(t chain.TokenID) chain.TxID {
		if h, ok := hts[t]; ok {
			return h
		}
		return chain.NoTx
	}
}

// Paper Section 2.3 example: r1={t1,t2,t5}, r2={t1,t3}, r3={t1,t3},
// r4={t2,t4}, r5={t4,t5,t6}, with t5, t6 from the same HT h1.
// {<t2,r1>} is a DTRS of r5: if t2 is consumed in r1, t4 must be consumed in
// r4, so r5 consumes t5 or t6 — both from h1.
func TestExactPaperSection23(t *testing.T) {
	in := rsgraph.NewInstance([]rsgraph.Ring{
		ring(1, 1, 2, 5), // index 0
		ring(2, 1, 3),    // index 1
		ring(3, 1, 3),    // index 2
		ring(4, 2, 4),    // index 3
		ring(5, 4, 5, 6), // index 4
	})
	origin := originOf(map[chain.TokenID]chain.TxID{
		1: 10, 2: 20, 3: 30, 4: 40, 5: 1, 6: 1, // t5,t6 share h1
	})
	ds, err := Exact(in, 4, origin, rsgraph.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Look for the DTRS {<t2, ring index 0>} determining h1.
	found := false
	for _, d := range ds {
		if len(d.Pairs) == 1 && d.Pairs[0] == (Pair{Ring: 0, Token: 2}) {
			found = true
			if d.Determines != 1 {
				t.Fatalf("DTRS {<t2,r1>} determines %v, want h1", d.Determines)
			}
		}
	}
	if !found {
		t.Fatalf("missing DTRS {<t2,r1>}; got %v", ds)
	}
	// Every returned DTRS must be minimal: no other DTRS is a strict subset.
	for i, a := range ds {
		for j, b := range ds {
			if i == j {
				continue
			}
			if isSubsetPairs(a.Pairs, b.Pairs) && len(a.Pairs) < len(b.Pairs) {
				t.Fatalf("DTRS %v is a strict subset of returned DTRS %v", a, b)
			}
		}
	}
}

func isSubsetPairs(a, b []Pair) bool {
	for _, p := range a {
		ok := false
		for _, q := range b {
			if p == q {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Homogeneity: if every token of the target ring is from one HT, the empty
// DTRS determines it.
func TestExactHomogeneity(t *testing.T) {
	in := rsgraph.NewInstance([]rsgraph.Ring{ring(0, 1, 2)})
	origin := originOf(map[chain.TokenID]chain.TxID{1: 7, 2: 7})
	ds, err := Exact(in, 0, origin, rsgraph.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || len(ds[0].Pairs) != 0 || ds[0].Determines != 7 {
		t.Fatalf("want single empty DTRS determining h7, got %v", ds)
	}
}

func TestExactTargetOutOfRange(t *testing.T) {
	in := rsgraph.NewInstance([]rsgraph.Ring{ring(0, 1)})
	if _, err := Exact(in, 5, originOf(nil), rsgraph.EnumOptions{}); err == nil {
		t.Fatal("expected error for out-of-range target")
	}
}

func TestExactInfeasible(t *testing.T) {
	in := rsgraph.NewInstance([]rsgraph.Ring{ring(0, 1), ring(1, 1)})
	if _, err := Exact(in, 0, originOf(map[chain.TokenID]chain.TxID{1: 1}), rsgraph.EnumOptions{}); err == nil {
		t.Fatal("expected ErrNoAssignment")
	}
}

// Section 2.5 worked example: r1={t1,t2}, r2={t2,t3}, r3={t1,t3,t4};
// t1, t3 from h1, t4 from h2, t2 from its own HT. The only DTRS of r3 is
// {<t1,r1>, <t3,r2>} (forcing both h1 tokens consumed leaves t4 → h2).
func TestExactPaperSection25(t *testing.T) {
	in := rsgraph.NewInstance([]rsgraph.Ring{
		ring(1, 1, 2),    // index 0
		ring(2, 2, 3),    // index 1
		ring(3, 1, 3, 4), // index 2 (target)
	})
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 5, 3: 1, 4: 2})
	ds, err := Exact(in, 2, origin, rsgraph.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("want exactly 1 DTRS, got %v", ds)
	}
	d := ds[0]
	want := []Pair{{Ring: 0, Token: 1}, {Ring: 1, Token: 3}}
	if len(d.Pairs) != 2 || d.Pairs[0] != want[0] || d.Pairs[1] != want[1] {
		t.Fatalf("DTRS pairs = %v, want %v", d.Pairs, want)
	}
	if d.Determines != 2 {
		t.Fatalf("determines %v, want h2", d.Determines)
	}
	// Its token set is {t1, t3} — both from h1 → single-class histogram.
	if !d.Tokens().Equal(chain.NewTokenSet(1, 3)) {
		t.Fatalf("DTRS tokens = %v", d.Tokens())
	}
	// Per the paper: (2,1)-diversity holds for the DTRS (2 < 2·2) but
	// (3,2) fails (2 ≥ 3·0).
	ok, err := AllSatisfyExact(in, 2, origin, diversity.Requirement{C: 2, L: 1}, rsgraph.EnumOptions{})
	if err != nil || !ok {
		t.Fatalf("(2,1) exact check = %v, %v; want true", ok, err)
	}
	ok, err = AllSatisfyExact(in, 2, origin, diversity.Requirement{C: 3, L: 2}, rsgraph.EnumOptions{})
	if err != nil || ok {
		t.Fatalf("(3,2) exact check = %v, %v; want false", ok, err)
	}
}

func TestClosedFormSets(t *testing.T) {
	// Ring {1,2,3,4}: t1,t2 from h1; t3 from h2; t4 from h3. |ring| = 4.
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 1, 3: 2, 4: 3})
	ringToks := chain.NewTokenSet(1, 2, 3, 4)

	// v = 4: every HT determinable.
	cfs := ClosedFormSets(ringToks, 4, origin)
	if len(cfs) != 3 {
		t.Fatalf("v=4 should expose 3 closed forms, got %v", cfs)
	}
	for _, cf := range cfs {
		switch cf.HT {
		case 1:
			if !cf.Psi.Equal(chain.NewTokenSet(3, 4)) {
				t.Fatalf("ψ(h1) = %v", cf.Psi)
			}
		case 2:
			if !cf.Psi.Equal(chain.NewTokenSet(1, 2, 4)) {
				t.Fatalf("ψ(h2) = %v", cf.Psi)
			}
		case 3:
			if !cf.Psi.Equal(chain.NewTokenSet(1, 2, 3)) {
				t.Fatalf("ψ(h3) = %v", cf.Psi)
			}
		}
	}

	// v = 3: h1 needs v ≥ 4−2+1 = 3 (ok); h2/h3 need v ≥ 4 (not ok).
	cfs = ClosedFormSets(ringToks, 3, origin)
	if len(cfs) != 1 || cfs[0].HT != 1 {
		t.Fatalf("v=3 should expose only h1, got %v", cfs)
	}

	// v = 1: nothing determinable.
	if cfs := ClosedFormSets(ringToks, 1, origin); len(cfs) != 0 {
		t.Fatalf("v=1 should expose nothing, got %v", cfs)
	}
}

func TestAllSatisfyClosedForm(t *testing.T) {
	// ψ(h1) = {t3, t4} has HTs {h2, h3}: uniform 2 classes.
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 1, 3: 2, 4: 3})
	ringToks := chain.NewTokenSet(1, 2, 3, 4)
	// (1.5, 2): ψ(h1) → 1 < 1.5·1 ok; ψ(h2) = {1,2,4} → q=[2,1], 2 < 1.5·1? no.
	if AllSatisfyClosedForm(ringToks, 4, origin, diversity.Requirement{C: 1.5, L: 2}) {
		t.Fatal("(1.5,2) should fail via ψ(h2)")
	}
	// With v=3 only ψ(h1) is realisable and it passes (1.5,2).
	if !AllSatisfyClosedForm(ringToks, 3, origin, diversity.Requirement{C: 1.5, L: 2}) {
		t.Fatal("(1.5,2) should pass when only ψ(h1) is realisable")
	}
}

// Theorem 6.4 cross-check: if the ring satisfies (c, ℓ+1), every closed-form
// DTRS satisfies (c, ℓ).
func TestHeadroomTheorem64ClosedForm(t *testing.T) {
	origins := []map[chain.TokenID]chain.TxID{
		{1: 1, 2: 1, 3: 2, 4: 3, 5: 4},
		{1: 1, 2: 2, 3: 3, 4: 4, 5: 5},
		{1: 1, 2: 1, 3: 1, 4: 2, 5: 3},
	}
	reqs := []diversity.Requirement{{C: 0.6, L: 2}, {C: 1, L: 2}, {C: 2, L: 3}}
	for _, om := range origins {
		origin := originOf(om)
		ringToks := chain.NewTokenSet(1, 2, 3, 4, 5)
		for _, req := range reqs {
			if !diversity.SatisfiesTokens(ringToks, origin, req.WithHeadroom()) {
				continue // premise not met
			}
			for _, cf := range ClosedFormSets(ringToks, len(ringToks), origin) {
				if !diversity.SatisfiesTokens(cf.Psi, origin, req) {
					t.Fatalf("Theorem 6.4 violated: ring %v sat %v+headroom but ψ(%v)=%v fails %v",
						ringToks, req, cf.HT, cf.Psi, req)
				}
			}
		}
	}
}

// Cross-validate closed form against exact enumeration: with full subset
// count, every exact DTRS token set must appear among the closed forms when
// the instance is "one super ring consumed by v rings" — i.e. v identical
// rings over the same token set.
func TestClosedFormMatchesExactOnSaturatedSuperRing(t *testing.T) {
	// 3 identical rings over {1,2,3}: v = 3 = |ring|. t1,t2 from h1, t3 h2.
	rings := []rsgraph.Ring{ring(0, 1, 2, 3), ring(1, 1, 2, 3), ring(2, 1, 2, 3)}
	in := rsgraph.NewInstance(rings)
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 1, 3: 2})

	ds, err := Exact(in, 0, origin, rsgraph.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfs := ClosedFormSets(chain.NewTokenSet(1, 2, 3), 3, origin)
	// Every exact DTRS's token set must be a subset of some ψ with the same
	// determined HT (closed forms are the maximal revealed sets).
	for _, d := range ds {
		ok := false
		for _, cf := range cfs {
			if cf.HT == d.Determines && d.Tokens().SubsetOf(cf.Psi) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("exact DTRS %v not covered by closed forms %v", d, cfs)
		}
	}
}
