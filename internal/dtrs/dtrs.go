// Package dtrs computes definite token-RS pair sets (DTRSs, Definition 2):
// minimal sets of token-RS pairs whose revelation lets an adversary determine
// the historical transaction of a ring's consumed token.
//
// Two paths are provided:
//
//   - Exact: Algorithm 3 over the enumerated token-RS combinations of an
//     instance. Exponential; only for small instances (the paper's Figure 4
//     scale) and for validating the closed form.
//   - Closed form: Theorem 6.1. Under the first practical configuration
//     (every ring is a union of super rings and fresh tokens), the token set
//     of the DTRS determining HT h_j for ring r_i is ψ(i,j) = r_i \ T̃(i,j),
//     and it exists iff the subset count v of r_i's super ring satisfies
//     v ≥ |r_i| − |T̃(i,j)| + 1. Polynomial, used by the production solvers.
package dtrs

import (
	"fmt"
	"sort"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/rsgraph"
)

// Pair is a token-RS pair ⟨t, r⟩: "token t is consumed in ring (index) r".
// Ring refers to a position in the analysed rsgraph.Instance, not an RSID,
// because DTRS analysis always happens relative to a fixed instance.
type Pair struct {
	Ring  int
	Token chain.TokenID
}

func (p Pair) String() string { return fmt.Sprintf("<%v,#%d>", p.Token, p.Ring) }

// DTRS is one definite token-RS pair set together with the HT it determines
// for the target ring.
type DTRS struct {
	Pairs      []Pair     // sorted by (Ring, Token); may be empty
	Determines chain.TxID // the HT of the target ring's consumed token
}

// Tokens returns the token set of the DTRS, the multiset Definition 4's
// second condition evaluates diversity over.
func (d DTRS) Tokens() chain.TokenSet {
	ids := make([]chain.TokenID, len(d.Pairs))
	for i, p := range d.Pairs {
		ids[i] = p.Token
	}
	return chain.NewTokenSet(ids...)
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Ring != ps[j].Ring {
			return ps[i].Ring < ps[j].Ring
		}
		return ps[i].Token < ps[j].Token
	})
}

func pairKey(ps []Pair) string {
	b := make([]byte, 0, len(ps)*8)
	for _, p := range ps {
		b = append(b,
			byte(p.Ring), byte(p.Ring>>8), byte(p.Ring>>16), byte(p.Ring>>24),
			byte(p.Token), byte(p.Token>>8), byte(p.Token>>16), byte(p.Token>>24))
	}
	return string(b)
}

// contains reports whether assignment a is consistent with every pair in ps.
func contains(a rsgraph.Assignment, ps []Pair) bool {
	for _, p := range ps {
		if a[p.Ring] != p.Token {
			return false
		}
	}
	return true
}

// Exact enumerates all DTRSs of ring `target` (index into in.Rings) by
// Algorithm 3: candidates are subsets of pairs drawn from each token-RS
// combination (excluding the target's own pair); a candidate is a true DTRS
// when every combination containing it gives the target a consumed token
// from the same HT, and no strict subset already does.
//
// The empty DTRS is returned alone when the target's consumed-token HT is
// already determined without any side information (the homogeneity case).
func Exact(in *rsgraph.Instance, target int, origin func(chain.TokenID) chain.TxID, opts rsgraph.EnumOptions) ([]DTRS, error) {
	if target < 0 || target >= len(in.Rings) {
		return nil, fmt.Errorf("dtrs: target ring %d out of range", target)
	}
	combos, err := in.AllCombinations(opts)
	if err != nil {
		return nil, err
	}
	if len(combos) == 0 {
		return nil, rsgraph.ErrNoAssignment
	}

	// Homogeneity short-circuit: HT determined with no side information.
	allSame := true
	first := origin(combos[0][target])
	for _, u := range combos[1:] {
		if origin(u[target]) != first {
			allSame = false
			break
		}
	}
	if allSame {
		return []DTRS{{Pairs: nil, Determines: first}}, nil
	}

	n := len(in.Rings)
	var accepted []DTRS
	acceptedKeys := make(map[string]bool)

	// hasAcceptedSubset reports whether some already-accepted DTRS is a
	// subset of candidate — in that case candidate is not minimal.
	hasAcceptedSubset := func(cand []Pair) bool {
		for _, d := range accepted {
			sub := true
			for _, p := range d.Pairs {
				found := false
				for _, q := range cand {
					if p == q {
						found = true
						break
					}
				}
				if !found {
					sub = false
					break
				}
			}
			if sub {
				return true
			}
		}
		return false
	}

	// valid checks the Algorithm 3 filter: every combination containing the
	// candidate must give the target a consumed token with one single HT.
	valid := func(cand []Pair) (chain.TxID, bool) {
		var dh chain.TxID
		seen := false
		for _, u := range combos {
			if !contains(u, cand) {
				continue
			}
			ht := origin(u[target])
			if !seen {
				dh, seen = ht, true
			} else if ht != dh {
				return chain.NoTx, false
			}
		}
		if !seen {
			return chain.NoTx, false
		}
		return dh, true
	}

	// Iterate candidate sizes ascending so minimality is "no accepted
	// subset"; candidates of size i come from the pairs of each combination.
	for size := 1; size < n; size++ {
		tried := make(map[string]bool)
		for _, u := range combos {
			// Pairs of u excluding the target's own pair.
			pairs := make([]Pair, 0, n-1)
			for ri, tok := range u {
				if ri != target {
					pairs = append(pairs, Pair{Ring: ri, Token: tok})
				}
			}
			forEachSubset(pairs, size, func(cand []Pair) {
				cs := make([]Pair, len(cand))
				copy(cs, cand)
				sortPairs(cs)
				key := pairKey(cs)
				if tried[key] || acceptedKeys[key] {
					return
				}
				tried[key] = true
				if hasAcceptedSubset(cs) {
					return
				}
				if dh, ok := valid(cs); ok {
					accepted = append(accepted, DTRS{Pairs: cs, Determines: dh})
					acceptedKeys[key] = true
				}
			})
		}
	}
	return accepted, nil
}

// forEachSubset invokes f on every size-k subset of ps. f must not retain the
// slice it is handed.
func forEachSubset(ps []Pair, k int, f func([]Pair)) {
	if k > len(ps) {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]Pair, k)
	for {
		for i, j := range idx {
			buf[i] = ps[j]
		}
		f(buf)
		// Advance combination indices.
		i := k - 1
		for i >= 0 && idx[i] == len(ps)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// AllSatisfyExact checks Definition 4's second condition exactly: every DTRS
// of the target ring has an HT multiset satisfying req. Exponential; small
// instances only.
func AllSatisfyExact(in *rsgraph.Instance, target int, origin func(chain.TokenID) chain.TxID, req diversity.Requirement, opts rsgraph.EnumOptions) (bool, error) {
	ds, err := Exact(in, target, origin, opts)
	if err != nil {
		return false, err
	}
	for _, d := range ds {
		if !diversity.SatisfiesTokens(d.Tokens(), origin, req) {
			return false, nil
		}
	}
	return true, nil
}

// ClosedForm is one Theorem-6.1 DTRS token set: revealing the consumption of
// every token in Psi determines that the target ring's consumed token came
// from HT.
type ClosedForm struct {
	HT  chain.TxID
	Psi chain.TokenSet
}

// ClosedFormSets applies Theorem 6.1. ringTokens is the target ring's token
// set; subsetCount is v, the number of rings (including the super ring
// itself) recorded as subsets of the ring's super ring. For each HT h_j
// appearing in the ring, a DTRS with token set ψ = ring \ T̃(h_j) exists iff
// v ≥ |ring| − |T̃(h_j)| + 1.
func ClosedFormSets(ringTokens chain.TokenSet, subsetCount int, origin func(chain.TokenID) chain.TxID) []ClosedForm {
	byHT := make(map[chain.TxID]chain.TokenSet)
	var order []chain.TxID
	for _, t := range ringTokens {
		h := origin(t)
		if _, ok := byHT[h]; !ok {
			order = append(order, h)
		}
		byHT[h] = append(byHT[h], t) // ring iterated sorted → stays sorted
	}
	var out []ClosedForm
	for _, h := range order {
		same := byHT[h]
		if subsetCount < len(ringTokens)-len(same)+1 {
			continue // Theorem 6.1: no DTRS can determine h
		}
		out = append(out, ClosedForm{HT: h, Psi: ringTokens.Minus(same)})
	}
	return out
}

// AllSatisfyClosedForm checks Definition 4's second condition in polynomial
// time under the first practical configuration: every realisable ψ(i,j) must
// satisfy req. This is the production check used by the miners and selectors.
//
// It evaluates each ψ(i,j) = ring \ T̃(h_j) directly on the ring's incremental
// HT histogram: dropping T̃(h_j) is dropping one whole histogram class, which
// Histogram.SlackWithout reads off the count-of-counts index without
// materialising any ψ token set (the former path built one histogram and one
// TokenSet per class).
//
//tmlint:readonly ringTokens
func AllSatisfyClosedForm(ringTokens chain.TokenSet, subsetCount int, origin func(chain.TokenID) chain.TxID, req diversity.Requirement) bool {
	h := diversity.HistogramOf(ringTokens, origin)
	ok := true
	h.Each(func(ht chain.TxID, n int) bool {
		if subsetCount < len(ringTokens)-n+1 {
			return true // Theorem 6.1: no DTRS can determine ht
		}
		if h.SlackWithout(req, ht) >= 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}
