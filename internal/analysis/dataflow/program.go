// Package dataflow is tmlint's whole-program layer: a module-local call
// graph over the loader's typed packages, directive-declared facts
// (//tmlint:secret, //tmlint:hotpath), and per-function summaries computed
// to fixpoint — taint flows for secretflow, poll facts for ctxpoll, lock
// effects for lockorder/lockcheck, and allocation facts for hotalloc.
//
// The Program is built once per driver run (memoized through
// analysis.Shared) and is immutable afterwards, so concurrent per-package
// analyzer passes can read it freely.
package dataflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"

	"tokenmagic/internal/analysis"
)

// Func is one module-local function or method with a body.
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *analysis.Package
	File *ast.File

	// Calls are the static call sites to other module-local functions, in
	// source order.
	Calls []Call

	// Hotpath marks //tmlint:hotpath functions (hotalloc scope).
	Hotpath bool
	// Vartime marks //tmlint:vartime functions: their execution time
	// depends on operand values (wNAF ladders, comb lookups), so cttime
	// reports any secret-derived argument or receiver at their call sites.
	Vartime bool
	// SecretParams holds the zero-based parameter indices declared secret
	// via `//tmlint:secret name...` in the function's doc comment.
	SecretParams map[int]bool
	// SecretResults marks functions whose results are secret, declared via
	// a bare `//tmlint:secret` doc line (e.g. nonce generators).
	SecretResults bool

	taint      *TaintSummary
	ct         *CTSummary
	polls      bool
	locks      *LockSummary
	hotalloc   *AllocSummary
	netRelease *NetRelease
}

// Call is one resolved module-local call site.
type Call struct {
	Site   *ast.CallExpr
	Callee *types.Func
}

// Program indexes every function of the loaded packages plus the
// directive-declared facts, and lazily computes analyzer summaries.
type Program struct {
	Packages []*analysis.Package
	// Funcs maps the type-checker's function objects to their bodies.
	Funcs map[*types.Func]*Func
	// SecretFields holds struct fields declared `//tmlint:secret`.
	SecretFields map[*types.Var]bool

	// ordered lists every Func sorted by position for deterministic
	// fixpoint iteration.
	ordered []*Func

	// Fact computation is lazy and memoized; analyzer passes run
	// concurrently across packages, so each fact family computes under its
	// own Once. Results are immutable afterwards.
	taintOnce    sync.Once
	ctOnce       sync.Once
	pollsOnce    sync.Once
	locksOnce    sync.Once
	hotallocOnce sync.Once
	netOnce      sync.Once

	taintFindings []Finding
	ctFindings    []Finding
	lockFindings  []Finding
}

const sharedKey = "dataflow.Program"

// Get returns the run-wide Program, building it on first use via the
// pass's Shared table.
func Get(pass *analysis.Pass) (*Program, error) {
	if pass.Shared == nil {
		return Build(pass.AllPackages)
	}
	v, err := pass.Shared.Get(sharedKey, func() (any, error) {
		return Build(pass.AllPackages)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Program), nil
}

// Build constructs the program over the given packages.
func Build(pkgs []*analysis.Package) (*Program, error) {
	p := &Program{
		Packages:     pkgs,
		Funcs:        make(map[*types.Func]*Func),
		SecretFields: make(map[*types.Var]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			p.indexFile(pkg, file)
		}
	}
	// Resolve call graphs after the full index exists so forward and
	// cross-package references land.
	for _, fn := range p.Funcs {
		p.resolveCalls(fn)
	}
	for _, fn := range p.Funcs {
		p.ordered = append(p.ordered, fn)
	}
	sort.Slice(p.ordered, func(i, j int) bool {
		return p.ordered[i].Obj.Pos() < p.ordered[j].Obj.Pos()
	})
	return p, nil
}

// FuncAt returns the module-local function for obj, or nil.
func (p *Program) FuncAt(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return p.Funcs[obj]
}

// FuncsIn returns the functions declared in the package with the given
// import path, sorted by position.
func (p *Program) FuncsIn(pkgPath string) []*Func {
	var out []*Func
	for _, fn := range p.ordered {
		if fn.Pkg.Path == pkgPath {
			out = append(out, fn)
		}
	}
	return out
}

func (p *Program) indexFile(pkg *analysis.Package, file *ast.File) {
	for _, decl := range file.Decls {
		switch decl := decl.(type) {
		case *ast.FuncDecl:
			obj, _ := pkg.Info.Defs[decl.Name].(*types.Func)
			if obj == nil || decl.Body == nil {
				continue
			}
			fn := &Func{Obj: obj, Decl: decl, Pkg: pkg, File: file}
			p.parseFuncDirectives(fn)
			p.Funcs[obj] = fn
		case *ast.GenDecl:
			p.indexSecretFields(pkg, decl)
		}
	}
}

// indexSecretFields records struct fields carrying //tmlint:secret.
func (p *Program) indexSecretFields(pkg *analysis.Package, decl *ast.GenDecl) {
	ast.Inspect(decl, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			if !hasDirective(field.Doc, "//tmlint:secret") && !hasDirective(field.Comment, "//tmlint:secret") {
				continue
			}
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					p.SecretFields[v] = true
				}
			}
		}
		return true
	})
}

// parseFuncDirectives reads //tmlint:hotpath, //tmlint:vartime and
// //tmlint:secret from the function's doc comment. A bare secret directive
// marks the results secret; named forms mark the listed parameters.
func (p *Program) parseFuncDirectives(fn *Func) {
	if fn.Decl.Doc == nil {
		return
	}
	for _, c := range fn.Decl.Doc.List {
		if strings.HasPrefix(c.Text, "//tmlint:hotpath") {
			fn.Hotpath = true
			continue
		}
		if strings.HasPrefix(c.Text, "//tmlint:vartime") {
			fn.Vartime = true
			continue
		}
		rest, ok := strings.CutPrefix(c.Text, "//tmlint:secret")
		if !ok {
			continue
		}
		names := strings.Fields(rest)
		if len(names) == 0 {
			fn.SecretResults = true
			continue
		}
		if fn.SecretParams == nil {
			fn.SecretParams = make(map[int]bool)
		}
		sig := fn.Obj.Type().(*types.Signature)
		for _, want := range names {
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i).Name() == want {
					fn.SecretParams[i] = true
				}
			}
		}
	}
}

func hasDirective(cg *ast.CommentGroup, prefix string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, prefix) {
			return true
		}
	}
	return false
}

// resolveCalls records fn's call sites whose callee is a module-local
// function with a body, in source order. Nested function literals are
// included: a closure's calls count as the enclosing function's for
// summary purposes.
func (p *Program) resolveCalls(fn *Func) {
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := CalleeOf(fn.Pkg.Info, call); callee != nil {
			if _, local := p.Funcs[callee]; local {
				fn.Calls = append(fn.Calls, Call{Site: call, Callee: callee})
			}
		}
		return true
	})
}

// CalleeOf resolves a call expression to its static callee, or nil for
// indirect calls (function values, interface methods resolve to the
// interface method object, which is not module-local).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// posIn reports whether the function belongs to the given package path —
// findings are attributed to the package that owns the source position so
// the per-package driver (and the fact cache) stay consistent.
func (fn *Func) posIn(pkgPath string) bool { return fn.Pkg.Path == pkgPath }

// Name returns a compact human name: "Type.Method" or "funcname".
func (fn *Func) Name() string {
	sig := fn.Obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.%s", named.Obj().Name(), fn.Obj.Name())
		}
	}
	return fn.Obj.Name()
}
