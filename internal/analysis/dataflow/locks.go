package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOp classifies one mutex method call.
type LockOp int

const (
	OpLock LockOp = iota
	OpRLock
	OpUnlock
	OpRUnlock
)

func (op LockOp) String() string {
	switch op {
	case OpLock:
		return "Lock"
	case OpRLock:
		return "RLock"
	case OpUnlock:
		return "Unlock"
	default:
		return "RUnlock"
	}
}

func (op LockOp) acquires() bool { return op == OpLock || op == OpRLock }

// LockSummary is the lockorder fact for one function: the locks it may
// acquire, directly or through module-local callees, ignoring internal
// releases (a conservative over-approximation).
type LockSummary struct {
	MayAcquire map[string]LockOp // lock identity → strongest op (Lock > RLock)
}

// LockOrderFindings computes the whole-program lock-acquisition graph and
// returns cycle, cross-function upgrade and re-entry findings, each
// attributed to the package owning the reported position. Memoized.
//
// Lock identity is the declaring struct field or package-level variable
// ("tokenmagic/internal/tokenmagic.Framework.mu"); function-local mutexes
// that never escape have no cross-function identity and are skipped.
func (p *Program) LockOrderFindings() []Finding {
	p.locksOnce.Do(p.computeLocks)
	return p.lockFindings
}

func (p *Program) computeLocks() {
	// Phase 1: per-function MayAcquire to fixpoint.
	for _, fn := range p.ordered {
		fn.locks = &LockSummary{MayAcquire: make(map[string]LockOp)}
		p.scanLocks(fn, func(ev lockEvent, held map[string]heldInfo) {
			if ev.op.acquires() {
				mergeAcquire(fn.locks.MayAcquire, ev.id, ev.op)
			}
		}, nil)
	}
	for {
		changed := false
		for _, fn := range p.ordered {
			for _, c := range fn.Calls {
				callee := p.Funcs[c.Callee]
				if callee == nil || callee.locks == nil {
					continue
				}
				for id, op := range callee.locks.MayAcquire {
					before := fn.locks.MayAcquire[id]
					mergeAcquire(fn.locks.MayAcquire, id, op)
					if fn.locks.MayAcquire[id] != before {
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Phase 2: collect acquisition-order edges and direct findings.
	type edge struct {
		from, to string
		pos      token.Pos
		pkgPath  string
		desc     string // human form of the acquisition ("B.Lock()" or "call to g")
	}
	var edges []edge
	var findings []Finding
	seenEdge := make(map[[2]string]int) // (from,to) → index of first edge

	addEdge := func(from, to string, pos token.Pos, pkgPath, desc string) {
		key := [2]string{from, to}
		if _, ok := seenEdge[key]; !ok {
			seenEdge[key] = len(edges)
			edges = append(edges, edge{from, to, pos, pkgPath, desc})
		}
	}

	for _, fn := range p.ordered {
		fn := fn
		p.scanLocks(fn, func(ev lockEvent, held map[string]heldInfo) {
			if !ev.op.acquires() {
				return
			}
			for id, h := range held {
				if id == ev.id {
					if h.op == OpRLock && ev.op == OpLock {
						findings = append(findings, Finding{
							Pos:     ev.pos,
							PkgPath: fn.Pkg.Path,
							Message: fmt.Sprintf("%s.Lock() while %s.RLock() is held in %s: RWMutex cannot be upgraded (self-deadlock)", short(ev.id), short(id), fn.Name()),
						})
					}
					continue
				}
				addEdge(id, ev.id, ev.pos, fn.Pkg.Path, short(ev.id)+"."+ev.op.String()+"()")
			}
		}, func(c Call, held map[string]heldInfo) {
			callee := p.Funcs[c.Callee]
			if callee == nil || callee.locks == nil || len(held) == 0 {
				return
			}
			for id, op := range callee.locks.MayAcquire {
				h, isHeld := held[id]
				if isHeld {
					// Re-entry or upgrade through a callee: sync mutexes are
					// not reentrant, so re-acquiring a held lock deadlocks.
					// The only legal combination is RLock while RLock held.
					if h.op == OpRLock && op == OpRLock {
						continue
					}
					findings = append(findings, Finding{
						Pos:     c.Site.Pos(),
						PkgPath: fn.Pkg.Path,
						Message: fmt.Sprintf("call to %s while %s is %s-held: callee may %s %s (self-deadlock)", callee.Name(), short(id), h.op, op, short(id)),
					})
					continue
				}
				for heldID := range held {
					if heldID != id {
						addEdge(heldID, id, c.Site.Pos(), fn.Pkg.Path, "call to "+callee.Name())
					}
				}
			}
		})
	}

	// Phase 3: cycle detection over the directed edge set.
	adj := make(map[string][]string)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		var walk func(string) bool
		walk = func(n string) bool {
			if n == to {
				return true
			}
			if seen[n] {
				return false
			}
			seen[n] = true
			for _, m := range adj[n] {
				if walk(m) {
					return true
				}
			}
			return false
		}
		return walk(from)
	}
	for _, e := range edges {
		if !reaches(e.to, e.from) {
			continue
		}
		other := ""
		if ri, ok := seenEdge[[2]string{e.to, e.from}]; ok {
			re := edges[ri]
			other = fmt.Sprintf(" (reverse order at %s)", p.shortPos(re.pos))
		}
		findings = append(findings, Finding{
			Pos:     e.pos,
			PkgPath: e.pkgPath,
			Message: fmt.Sprintf("lock order cycle: %s acquired while %s is held%s", short(e.to), short(e.from), other),
		})
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	p.lockFindings = findings
}

func mergeAcquire(m map[string]LockOp, id string, op LockOp) {
	if cur, ok := m[id]; !ok || (cur == OpRLock && op == OpLock) {
		m[id] = op
	}
}

// shortPos renders a position as "file.go:NN" for embedding in messages.
func (p *Program) shortPos(pos token.Pos) string {
	if len(p.Packages) == 0 {
		return "?"
	}
	pp := p.Packages[0].Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(pp.Filename), pp.Line)
}

// short strips the package-path prefix off a lock identity for messages.
func short(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		id = id[i+1:]
	}
	if i := strings.Index(id, "."); i >= 0 {
		return id[i+1:]
	}
	return id
}

type lockEvent struct {
	id  string
	op  LockOp
	pos token.Pos
}

type heldInfo struct {
	op  LockOp
	pos token.Pos
}

// scanLocks walks fn's body in source order (skipping nested function
// literals — a goroutine's acquisitions are not the caller's), maintaining
// the held-lock set. onEvent fires before each mutex call takes effect;
// onCall fires for each module-local call with the current held set.
// Deferred unlocks are treated as "held until return", which is the
// conservative direction for ordering edges.
func (p *Program) scanLocks(fn *Func, onEvent func(lockEvent, map[string]heldInfo), onCall func(Call, map[string]heldInfo)) {
	held := make(map[string]heldInfo)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// A deferred Unlock keeps the lock held for the rest of the
				// scan; a deferred Lock (pathological) is ignored.
				return false
			case *ast.CallExpr:
				if ev, ok := p.lockEventOf(fn.Pkg.Info, n); ok {
					if onEvent != nil {
						onEvent(ev, held)
					}
					if ev.op.acquires() {
						held[ev.id] = heldInfo{op: ev.op, pos: ev.pos}
					} else {
						delete(held, ev.id)
					}
					return true
				}
				if callee := CalleeOf(fn.Pkg.Info, n); callee != nil {
					if _, local := p.Funcs[callee]; local && onCall != nil {
						onCall(Call{Site: n, Callee: callee}, held)
					}
				}
			}
			return true
		})
	}
	walk(fn.Decl.Body)
}

// lockEventOf classifies a call as a mutex operation on a lock with a
// stable cross-function identity.
func (p *Program) lockEventOf(info *types.Info, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var op LockOp
	switch sel.Sel.Name {
	case "Lock":
		op = OpLock
	case "RLock":
		op = OpRLock
	case "Unlock":
		op = OpUnlock
	case "RUnlock":
		op = OpRUnlock
	default:
		return lockEvent{}, false
	}
	fnObj, _ := info.Uses[sel.Sel].(*types.Func)
	if fnObj == nil || !isSyncMutexMethod(fnObj) {
		return lockEvent{}, false
	}
	id := lockIdentity(info, sel.X)
	if id == "" {
		return lockEvent{}, false
	}
	return lockEvent{id: id, op: op, pos: call.Pos()}, true
}

func isSyncMutexMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// LockIdentity names the lock behind the receiver expression of a mutex
// method call, in the same identity space the net-release and lock-order
// summaries use. "" when the lock has no stable cross-function identity.
func LockIdentity(info *types.Info, x ast.Expr) string {
	return lockIdentity(info, x)
}

// lockIdentity names the lock behind the receiver expression of a mutex
// method call: "pkgpath.Type.field" for struct fields, "pkgpath.var" for
// package-level variables, "" for locals and unresolvable forms.
func lockIdentity(info *types.Info, x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			field, ok := sel.Obj().(*types.Var)
			if !ok || !field.IsField() {
				return ""
			}
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return ""
			}
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
		}
		// Qualified identifier: pkg.mu
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && isPackageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && isPackageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	}
	return ""
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
