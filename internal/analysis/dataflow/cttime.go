package dataflow

// Constant-time discipline analysis (the cttime analyzer's engine).
//
// Secretflow's taint (taint.go) asks "does a secret ESCAPE into logs or
// metrics?". This file asks a different question about the same secrets:
// "does a secret-derived value influence TIMING?" — by reaching a branch,
// loop or switch condition, a slice/array/map index, a variable-width
// math/big accessor (Bytes, BitLen, …), or a function annotated
// //tmlint:vartime (the verification kernels, whose ladder branch pattern
// follows operand digits).
//
// Two deliberate differences from the secretflow engine:
//
//   - math/big is NOT a declassification boundary. Arithmetic results stay
//     tainted (c·x is as secret as x for timing purposes), FillBytes taints
//     its destination buffer, and the variable-width accessors are sinks.
//     Other unknown external calls still declassify: the stock
//     crypto/elliptic P-256 ops are constant-time with respect to scalar
//     value, and sha256 output is public.
//
//   - The per-function pass is FLOW-SENSITIVE over the cfg package's
//     statement-granular CFG. The signing hot path writes the secret
//     closing response into s[π] AFTER the decoy loop has fed s[i] to the
//     variable-time kernels; a flow-insensitive pass would smear that
//     late secret write over the whole slice and flag every decoy read.
//     Flow-sensitivity keeps the real code clean without suppressions
//     while still catching a secret that flows into the loop.
//
// Soundness caveats (documented in DESIGN.md "Constant-time policy"):
// returning a value declassifies it — published outputs (the closing
// response scalar s = α − c·x, the signature struct) are public by
// construction, and functions whose results genuinely stay secret must say
// so with //tmlint:secret. Error-typed values are likewise public
// control-flow signals. math/big arithmetic itself (Mul, Mod, ModInverse)
// is big-int limb arithmetic and not strictly constant-time; the scheme
// necessarily computes on secrets, so arithmetic is propagation, not a
// sink. Range loop trip counts and aggregate element/length conflation are
// tracked coarsely: ranging over a tainted collection taints the iteration
// variables but is not itself a sink.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"tokenmagic/internal/analysis/cfg"
)

// ctRecvBit marks "derived from the receiver" in cttime taint masks;
// parameter i uses bit min(i, 61) and secretBit (bit 63) is shared with
// taint.go.
const ctRecvBit uint64 = 1 << 62

// CTSummary is the cttime fact for one function: which parameters reach
// timing sinks (directly or through callees) and which flow to results.
// Key -1 stands for the method receiver.
type CTSummary struct {
	ParamSinks    map[int]SinkFlow
	ParamToResult map[int]bool
}

func newCTSummary() *CTSummary {
	return &CTSummary{ParamSinks: make(map[int]SinkFlow), ParamToResult: make(map[int]bool)}
}

func (s *CTSummary) equal(o *CTSummary) bool {
	if len(s.ParamSinks) != len(o.ParamSinks) || len(s.ParamToResult) != len(o.ParamToResult) {
		return false
	}
	for k, v := range s.ParamSinks {
		if o.ParamSinks[k] != v {
			return false
		}
	}
	for k := range s.ParamToResult {
		if !o.ParamToResult[k] {
			return false
		}
	}
	return true
}

// ctVarWidth lists the math/big methods whose running time (or output
// length) depends on the receiver's value: the width side channels.
// Cmp/Sign/Bit are excluded — their results propagate taint and the branch
// they feed is the reported sink.
var ctVarWidth = map[string]bool{
	"Bytes": true, "Bits": true, "BitLen": true, "TrailingZeroBits": true,
	"Text": true, "String": true, "Append": true, "Format": true,
	"MarshalText": true, "MarshalJSON": true, "GobEncode": true,
}

var ctErrorType = types.Universe.Lookup("error").Type()

// CTTime computes every function's constant-time summary to fixpoint, then
// collects secret-timing findings. The result is memoized on the Program.
func (p *Program) CTTime() []Finding {
	p.ctOnce.Do(func() {
		infos := make(map[*Func]*ctFuncInfo, len(p.ordered))
		for _, fn := range p.ordered {
			fn.ct = newCTSummary()
			infos[fn] = buildCTInfo(fn)
		}
		for round := 0; round < len(p.ordered)+2; round++ {
			changed := false
			for _, fn := range p.ordered {
				sum, _ := p.ctAnalyze(fn, infos[fn], false)
				if !sum.equal(fn.ct) {
					fn.ct = sum
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		var out []Finding
		seen := make(map[string]bool)
		for _, fn := range p.ordered {
			_, fs := p.ctAnalyze(fn, infos[fn], true)
			for _, f := range fs {
				key := fmt.Sprintf("%d:%s", f.Pos, f.Message)
				if !seen[key] {
					seen[key] = true
					out = append(out, f)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
		p.ctFindings = out
	})
	return p.ctFindings
}

// CTSummaryOf returns the computed cttime summary for a module function
// (computing all summaries on first use), or nil for non-module functions.
func (p *Program) CTSummaryOf(obj *types.Func) *CTSummary {
	p.CTTime()
	if fn := p.Funcs[obj]; fn != nil {
		return fn.ct
	}
	return nil
}

// ctFuncInfo caches the per-function structures the rounds reuse: the CFG,
// the condition expressions (which the CFG wraps in synthetic ExprStmts),
// the range statements keyed by their range expression, and nested function
// literals with their own graphs.
type ctFuncInfo struct {
	graph     *cfg.Graph
	conds     map[ast.Expr]string
	ranges    map[ast.Expr]*ast.RangeStmt
	lits      []*ast.FuncLit
	litGraphs []*cfg.Graph
}

func buildCTInfo(fn *Func) *ctFuncInfo {
	info := &ctFuncInfo{
		graph:  cfg.New(fn.Decl.Body),
		conds:  make(map[ast.Expr]string),
		ranges: make(map[ast.Expr]*ast.RangeStmt),
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			info.conds[n.Cond] = "branch condition"
		case *ast.ForStmt:
			if n.Cond != nil {
				info.conds[n.Cond] = "loop condition"
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				info.conds[n.Tag] = "switch condition"
			}
		case *ast.RangeStmt:
			info.ranges[n.X] = n
		case *ast.FuncLit:
			info.lits = append(info.lits, n)
			info.litGraphs = append(info.litGraphs, cfg.New(n.Body))
		}
		return true
	})
	return info
}

// ctEnv maps objects to taint masks at one program point.
type ctEnv map[types.Object]uint64

func cloneEnv(e ctEnv) ctEnv {
	out := make(ctEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// mergeEnv unions src into dst, reporting whether dst changed.
func mergeEnv(dst, src ctEnv) bool {
	changed := false
	for k, v := range src {
		if dst[k]|v != dst[k] {
			dst[k] |= v
			changed = true
		}
	}
	return changed
}

// ctAnalyze runs the flow-sensitive pass over one function (body plus
// nested literals) and returns its summary and, when record is set, its
// findings.
func (p *Program) ctAnalyze(fn *Func, info *ctFuncInfo, record bool) (*CTSummary, []Finding) {
	st := &ctState{prog: p, fn: fn, info: info, sum: newCTSummary(), record: record}
	pool := st.run(info.graph, st.paramEnv())
	for i, g := range info.litGraphs {
		_ = info.lits[i]
		// A closure runs at unknown times with respect to the enclosing
		// body, so it sees a conservative union of every state the
		// enclosing analysis ever computed (plus earlier literals').
		litUnion := st.run(g, cloneEnv(pool))
		mergeEnv(pool, litUnion)
	}
	return st.sum, st.findings
}

// ctState evaluates one function; cur is the env at the statement being
// transferred.
type ctState struct {
	prog     *Program
	fn       *Func
	info     *ctFuncInfo
	sum      *CTSummary
	cur      ctEnv
	collect  bool // record summary flows and findings (post-fixpoint sweep)
	record   bool
	findings []Finding
}

func (st *ctState) paramEnv() ctEnv {
	env := make(ctEnv)
	sig := st.fn.Obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		mask := uint64(1) << uint(min(i, 61))
		if st.fn.SecretParams[i] {
			mask |= secretBit
		}
		env[sig.Params().At(i)] = mask
	}
	if recv := sig.Recv(); recv != nil {
		env[recv] = ctRecvBit
	}
	return env
}

// run iterates the worklist over one graph to fixpoint, then sweeps every
// reached block once with collection on. It returns the union of all final
// block states (the seed for nested literals).
func (st *ctState) run(g *cfg.Graph, entry ctEnv) ctEnv {
	in := make([]ctEnv, len(g.Blocks))
	in[g.Entry.Index] = entry
	work := []*cfg.Block{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true

	st.collect = false
	for guard := 0; len(work) > 0 && guard < 1<<20; guard++ {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		st.cur = cloneEnv(in[b.Index])
		for _, s := range b.Stmts {
			st.transferStmt(s)
		}
		for _, succ := range b.Succs {
			if in[succ.Index] == nil {
				in[succ.Index] = cloneEnv(st.cur)
			} else if !mergeEnv(in[succ.Index], st.cur) {
				continue
			}
			if !queued[succ.Index] {
				queued[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	st.collect = true
	union := make(ctEnv)
	for i, b := range g.Blocks {
		if in[i] == nil {
			continue // unreachable (dead code): nothing flows here
		}
		st.cur = cloneEnv(in[i])
		for _, s := range b.Stmts {
			st.transferStmt(s)
		}
		mergeEnv(union, st.cur)
	}
	st.collect = false
	return union
}

func (st *ctState) transferStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if kind, ok := st.info.conds[s.X]; ok {
			st.sink(st.eval(s.X), s.X.Pos(), kind, "")
			return
		}
		if r, ok := st.info.ranges[s.X]; ok {
			m := st.eval(s.X)
			if r.Key != nil {
				st.assignOne(r.Key, m)
			}
			if r.Value != nil {
				st.assignOne(r.Value, m)
			}
			return
		}
		st.eval(s.X)
	case *ast.AssignStmt:
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			// Compound assignment (x += y) keeps x's own taint.
			st.assignOne(s.Lhs[0], st.eval(s.Lhs[0])|st.eval(s.Rhs[0]))
			return
		}
		st.assign(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					st.assign(lhs, vs.Values)
				}
			}
		}
	case *ast.IncDecStmt:
		st.eval(s.X)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			m := st.eval(res)
			if !st.collect {
				continue
			}
			for b := 0; b < 62; b++ {
				if m&(1<<uint(b)) != 0 {
					st.sum.ParamToResult[b] = true
				}
			}
			if m&ctRecvBit != 0 {
				st.sum.ParamToResult[-1] = true
			}
		}
	case *ast.SendStmt:
		st.eval(s.Chan)
		st.eval(s.Value)
	case *ast.GoStmt:
		st.eval(s.Call)
	case *ast.DeferStmt:
		st.eval(s.Call)
	}
}

func (st *ctState) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		m := st.eval(rhs[0])
		for _, l := range lhs {
			st.assignOne(l, m)
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) {
			st.assignOne(l, st.eval(rhs[i]))
		}
	}
}

// assignOne writes mask into the target: strong update for plain
// identifiers (so a clean overwrite really cleans), weak (accumulating)
// update through fields, indices and pointers, which may alias.
func (st *ctState) assignOne(l ast.Expr, m uint64) {
	if t := st.fn.Pkg.Info.TypeOf(l); t != nil && types.Identical(t, ctErrorType) {
		// Errors are public control-flow signals: `if err != nil` after a
		// call with secret operands is not a timing leak of the secret.
		m = 0
	}
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		var obj types.Object = st.fn.Pkg.Info.Defs[l]
		if obj == nil {
			obj = st.fn.Pkg.Info.Uses[l]
		}
		if obj != nil {
			st.cur[obj] = m
		}
	case *ast.SelectorExpr:
		st.taintWeak(l.X, m)
	case *ast.IndexExpr:
		st.sinkIndex(l)
		st.taintWeak(l.X, m)
	case *ast.StarExpr:
		st.taintWeak(l.X, m)
	}
}

// taintWeak ORs mask into the object behind an assignable expression.
func (st *ctState) taintWeak(e ast.Expr, m uint64) {
	if m == 0 {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		var obj types.Object = st.fn.Pkg.Info.Defs[e]
		if obj == nil {
			obj = st.fn.Pkg.Info.Uses[e]
		}
		if obj != nil {
			st.cur[obj] |= m
		}
	case *ast.SelectorExpr:
		st.taintWeak(e.X, m)
	case *ast.IndexExpr:
		st.taintWeak(e.X, m)
	case *ast.StarExpr:
		st.taintWeak(e.X, m)
	case *ast.SliceExpr:
		st.taintWeak(e.X, m)
	}
}

func (st *ctState) isNil(e ast.Expr) bool {
	tv, ok := st.fn.Pkg.Info.Types[e]
	return ok && tv.IsNil()
}

// sinkIndex reports the index/key expression of an element access when it
// is secret-derived (table lookups and map probes are address side
// channels).
func (st *ctState) sinkIndex(e *ast.IndexExpr) {
	st.sink(st.eval(e.Index), e.Index.Pos(), "slice/map index", "")
}

func (st *ctState) eval(e ast.Expr) uint64 {
	// Compile-time constants are public whatever they mention — len of a
	// fixed-size array over a secret buffer is the type's length, not data.
	if tv, ok := st.fn.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return 0
	}
	switch e := e.(type) {
	case *ast.Ident:
		var obj types.Object = st.fn.Pkg.Info.Uses[e]
		if obj == nil {
			obj = st.fn.Pkg.Info.Defs[e]
		}
		return st.cur[obj]
	case *ast.SelectorExpr:
		var m uint64
		if sel, ok := st.fn.Pkg.Info.Selections[e]; ok {
			if v, isVar := sel.Obj().(*types.Var); isVar && st.prog.SecretFields[v] {
				m |= secretBit
			}
			m |= st.eval(e.X)
			return m
		}
		if obj := st.fn.Pkg.Info.Uses[e.Sel]; obj != nil {
			if v, isVar := obj.(*types.Var); isVar && st.prog.SecretFields[v] {
				return secretBit
			}
			return st.cur[obj]
		}
		return 0
	case *ast.CallExpr:
		return st.evalCall(e)
	case *ast.BinaryExpr:
		// A pointer/interface nil check observes structure, not the
		// secret's value; branching on it is not a data-dependent leak.
		if (e.Op == token.EQL || e.Op == token.NEQ) && (st.isNil(e.X) || st.isNil(e.Y)) {
			return 0
		}
		return st.eval(e.X) | st.eval(e.Y)
	case *ast.UnaryExpr:
		return st.eval(e.X)
	case *ast.StarExpr:
		return st.eval(e.X)
	case *ast.ParenExpr:
		return st.eval(e.X)
	case *ast.IndexExpr:
		if tv, ok := st.fn.Pkg.Info.Types[e.X]; ok && tv.IsType() {
			return 0 // generic instantiation, not an element access
		}
		st.sinkIndex(e)
		return st.eval(e.X) | st.eval(e.Index)
	case *ast.SliceExpr:
		m := st.eval(e.X)
		if e.Low != nil {
			m |= st.eval(e.Low)
		}
		if e.High != nil {
			m |= st.eval(e.High)
		}
		if e.Max != nil {
			m |= st.eval(e.Max)
		}
		return m
	case *ast.TypeAssertExpr:
		return st.eval(e.X)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= st.eval(kv.Value)
			} else {
				m |= st.eval(el)
			}
		}
		return m
	case *ast.KeyValueExpr:
		return st.eval(e.Value)
	}
	return 0
}

func (st *ctState) evalCall(call *ast.CallExpr) uint64 {
	args := make([]uint64, len(call.Args))
	var all uint64
	for i, a := range call.Args {
		args[i] = st.eval(a)
		all |= args[i]
	}
	// Builtins (append, copy, len, min, max, …) pass taint through: the
	// length of a secret-derived value is itself secret-derived.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.fn.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return all
		}
	}
	callee := CalleeOf(st.fn.Pkg.Info, call)
	if callee == nil {
		// Conversions pass taint through; indirect calls drop it.
		if tv, ok := st.fn.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return all
		}
		return 0
	}
	var recvMask uint64
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sig, isSig := callee.Type().(*types.Signature); isSig && sig.Recv() != nil {
			recvExpr = sel.X
			recvMask = st.eval(sel.X)
		}
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "math/big" && recvExpr != nil {
		// math/big arithmetic propagates (c·x is as secret as x for timing
		// purposes); the variable-width accessors are sinks; FillBytes is
		// the sanctioned fixed-width encoder but taints its buffer.
		m := recvMask | all
		if ctVarWidth[callee.Name()] {
			st.sink(recvMask, call.Pos(), "variable-width big.Int."+callee.Name(), "")
		}
		if callee.Name() == "FillBytes" && len(call.Args) == 1 {
			st.taintWeak(call.Args[0], m)
		}
		// Most big.Int methods mutate their receiver (z.Mul(x, y) sets z).
		st.taintWeak(recvExpr, m)
		return m
	}
	local := st.prog.Funcs[callee]
	if local == nil {
		// Unknown external call: declassification boundary. The stock
		// crypto/elliptic P-256 ops are constant-time in the scalar and
		// hash outputs are public.
		return 0
	}
	sig := callee.Type().(*types.Signature)
	if local.Vartime {
		vt := "variable-time function " + local.Name()
		if recvExpr != nil {
			st.sink(recvMask, recvExpr.Pos(), vt, "")
		}
		for i, m := range args {
			st.sink(m, call.Args[i].Pos(), vt, "")
		}
	}
	sum := local.ct
	if sum == nil {
		sum = newCTSummary()
	}
	var res uint64
	apply := func(pi int, m uint64, pos token.Pos) {
		if m == 0 {
			return
		}
		// A vartime callee's internal flows are subsumed by the vartime
		// report above; only its result propagation still applies.
		if !local.Vartime {
			if flow, ok := sum.ParamSinks[pi]; ok {
				st.sink(m, pos, flow.Sink, local.Name())
			}
		}
		if sum.ParamToResult[pi] {
			res |= m
		}
	}
	if recvExpr != nil {
		apply(-1, recvMask, recvExpr.Pos())
	}
	for i, m := range args {
		pi := paramIndex(sig, i, call)
		if pi < 0 {
			continue
		}
		apply(pi, m, call.Args[i].Pos())
	}
	if local.SecretResults {
		res |= secretBit
	}
	return res
}

// sink records a flow into a timing sink: a summary entry for every
// parameter/receiver bit in mask, and (in the findings sweep) a diagnostic
// when the value is secret-derived.
func (st *ctState) sink(mask uint64, pos token.Pos, sinkName, via string) {
	if mask == 0 || !st.collect {
		return
	}
	flow := SinkFlow{Sink: sinkName, Via: via}
	for b := 0; b < 62; b++ {
		if mask&(1<<uint(b)) == 0 {
			continue
		}
		if _, ok := st.sum.ParamSinks[b]; !ok {
			st.sum.ParamSinks[b] = flow
		}
	}
	if mask&ctRecvBit != 0 {
		if _, ok := st.sum.ParamSinks[-1]; !ok {
			st.sum.ParamSinks[-1] = flow
		}
	}
	if st.record && mask&secretBit != 0 {
		if via != "" {
			st.finding(pos, "secret-dependent value reaches %s via call to %s", sinkName, via)
		} else {
			st.finding(pos, "secret-dependent value reaches %s", sinkName)
		}
	}
}

func (st *ctState) finding(pos token.Pos, format string, a ...any) {
	st.findings = append(st.findings, Finding{
		Pos:     pos,
		PkgPath: st.fn.Pkg.Path,
		Message: fmt.Sprintf(format, a...),
	})
}
