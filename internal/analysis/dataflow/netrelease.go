package dataflow

import (
	"go/ast"
	"go/types"

	"tokenmagic/internal/analysis/cfg"
)

// NetRelease classifies how a function releases locks it did not itself
// acquire (i.e. locks its caller holds). Lockcheck uses this so a helper
// like `func (f *F) releaseLocked()` counts as a release at its call
// sites — but only when the release provably happens on every path.
type NetRelease struct {
	// Uncond holds lock identities released on every entry→exit path,
	// mapped to the release flavor (OpUnlock or OpRUnlock).
	Uncond map[string]LockOp
	// Cond holds lock identities released on some but not all paths —
	// the false-negative shape ISSUE 5 calls out: a conditional Unlock in
	// a callee must NOT count as releasing on every path.
	Cond map[string]LockOp
}

// NetReleasesOf returns the net-release summary for a module function, or
// nil for non-module functions. Summaries are depth-1: a helper's helpers
// are not folded in (documented soundness caveat — a release buried two
// calls deep keeps the caller's finding, which errs toward reporting).
func (p *Program) NetReleasesOf(obj *types.Func) *NetRelease {
	p.netOnce.Do(p.computeNetReleases)
	if fn := p.Funcs[obj]; fn != nil {
		return fn.netRelease
	}
	return nil
}

func (p *Program) computeNetReleases() {
	for _, fn := range p.ordered {
		fn.netRelease = netReleaseOf(p, fn)
	}
}

// netReleaseOf runs a per-lock path analysis over the function's CFG.
// State per path: internal acquire depth and whether a caller-held lock
// has been released. Deferred releases count as releasing on the path
// that declared them (they run at exit).
func netReleaseOf(p *Program, fn *Func) *NetRelease {
	// Collect the lock IDs with release events; everything else cannot be
	// net-released.
	ids := make(map[string]LockOp)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if ev, ok := p.lockEventOf(fn.Pkg.Info, call); ok && !ev.op.acquires() {
				ids[ev.id] = ev.op
			}
		}
		return true
	})
	out := &NetRelease{Uncond: make(map[string]LockOp), Cond: make(map[string]LockOp)}
	if len(ids) == 0 {
		return out
	}
	g := cfg.New(fn.Decl.Body)
	for id, op := range ids {
		anyNet, allNet := netOnEveryPath(p, fn, g, id)
		if anyNet && allNet {
			out.Uncond[id] = op
		} else if anyNet {
			out.Cond[id] = op
		}
	}
	return out
}

// pathState is the per-path analysis state for one lock ID.
type pathState struct {
	depth int // internal acquires outstanding (capped)
	net   bool
}

// netOnEveryPath reports (some path net-releases id, every path does).
func netOnEveryPath(p *Program, fn *Func, g *cfg.Graph, id string) (anyNet, allNet bool) {
	// States per block entry; fixpoint over the (tiny) product lattice.
	in := make(map[*cfg.Block]map[pathState]bool)
	in[g.Entry] = map[pathState]bool{{depth: 0, net: false}: true}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		states := in[b]
		outStates := make(map[pathState]bool)
		for s := range states {
			outStates[applyBlock(p, fn, b, id, s)] = true
		}
		for _, succ := range b.Succs {
			if in[succ] == nil {
				in[succ] = make(map[pathState]bool)
			}
			changed := false
			for s := range outStates {
				if !in[succ][s] {
					in[succ][s] = true
					changed = true
				}
			}
			if changed {
				work = append(work, succ)
			}
		}
	}
	exit := in[g.Exit]
	if len(exit) == 0 {
		// Exit unreachable (infinite loop): nothing escapes to the caller.
		return false, false
	}
	allNet = true
	for s := range exit {
		if s.net {
			anyNet = true
		} else {
			allNet = false
		}
	}
	return anyNet, allNet
}

func applyBlock(p *Program, fn *Func, b *cfg.Block, id string, s pathState) pathState {
	for _, stmt := range b.Stmts {
		isDefer := false
		node := ast.Node(stmt)
		if d, ok := stmt.(*ast.DeferStmt); ok {
			isDefer = true
			node = d.Call
		}
		ast.Inspect(node, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ev, ok := p.lockEventOf(fn.Pkg.Info, call)
			if !ok || ev.id != id {
				return true
			}
			if ev.op.acquires() {
				if !isDefer && s.depth < 2 {
					s.depth++
				}
			} else {
				if s.depth > 0 {
					s.depth--
				} else {
					s.net = true
				}
			}
			return true
		})
	}
	return s
}
