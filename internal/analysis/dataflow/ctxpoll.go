package dataflow

import (
	"go/ast"
	"go/types"
)

// Polls reports whether the function observably checks cancellation:
// it calls ctx.Err() or ctx.Done() on a context.Context value directly,
// or calls a module-local function that does (transitively). The ctxpoll
// analyzer uses this so helpers like selector's cancelled(ctx)/ctxErr(ctx)
// satisfy a loop's polling obligation.
func (p *Program) Polls(obj *types.Func) bool {
	p.pollsOnce.Do(p.computePolls)
	if fn := p.Funcs[obj]; fn != nil {
		return fn.polls
	}
	return false
}

func (p *Program) computePolls() {
	for _, fn := range p.ordered {
		fn.polls = hasDirectPoll(fn.Pkg.Info, fn.Decl.Body)
	}
	// Propagate through the call graph to fixpoint; the polls bit only
	// flips false→true, so this terminates.
	for {
		changed := false
		for _, fn := range p.ordered {
			if fn.polls {
				continue
			}
			for _, c := range fn.Calls {
				if callee := p.Funcs[c.Callee]; callee != nil && callee.polls {
					fn.polls = true
					changed = true
					break
				}
			}
		}
		if !changed {
			return
		}
	}
}

func hasDirectPoll(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && IsDirectPoll(info, call) {
			found = true
			return false
		}
		// <-ctx.Done() appears as a call too; select statements need no
		// special case.
		return true
	})
	return found
}

// IsDirectPoll reports whether call is ctx.Err() or ctx.Done() on a
// context.Context-typed receiver.
func IsDirectPoll(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
