package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"tokenmagic/internal/analysis"
)

// Alloc is one allocating construct found in a function body.
type Alloc struct {
	Pos  token.Pos
	What string
}

// AllocSummary is the hotalloc fact for one function: its allocating
// constructs, with //lint:ignore hotalloc lines already filtered out so a
// suppressed allocation in a callee does not resurface as a cross-function
// finding at the caller.
type AllocSummary struct {
	Allocs []Alloc
}

// AllocsOf returns the (ignore-filtered) allocation facts for a module
// function. Facts for the whole program are computed on first use.
//
// The construct set is deliberately syntactic and local — escape analysis
// is the compiler's job; hotalloc flags the shapes that reliably allocate
// on hot paths: map/slice literals, make/new, append whose result lands
// somewhere other than its source, closures capturing outer variables, and
// concrete-to-interface conversions at call sites. Value struct literals
// and same-target append (x = append(x, …), the amortized-growth idiom the
// diversity engine relies on) are allowed.
func (p *Program) AllocsOf(fn *Func) []Alloc {
	p.hotallocOnce.Do(func() {
		for _, f := range p.ordered {
			f.hotalloc = &AllocSummary{Allocs: collectAllocs(f)}
		}
	})
	if fn.hotalloc == nil {
		return nil
	}
	return fn.hotalloc.Allocs
}

func collectAllocs(fn *Func) []Alloc {
	info := fn.Pkg.Info
	ignored := analysis.IgnoreLines(fn.Pkg.Fset, fn.File, "hotalloc")
	var out []Alloc
	add := func(pos token.Pos, what string) {
		if ignored[fn.Pkg.Fset.Position(pos).Line] {
			return
		}
		out = append(out, Alloc{Pos: pos, What: what})
	}

	// First pass: same-target appends (x = append(x, …)) are sanctioned.
	sanctioned := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinNamed(info, call, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				sanctioned[call] = true
			}
		}
		return true
	})

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				add(n.Pos(), "map literal")
			case *types.Slice:
				add(n.Pos(), "slice literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "escaping composite literal (&T{})")
				}
			}
		case *ast.FuncLit:
			if capturesOuter(info, fn, n) {
				add(n.Pos(), "closure capturing outer variables")
			}
		case *ast.CallExpr:
			switch {
			case isBuiltinNamed(info, n, "make"):
				add(n.Pos(), "make")
			case isBuiltinNamed(info, n, "new"):
				add(n.Pos(), "new")
			case isBuiltinNamed(info, n, "append"):
				if !sanctioned[n] {
					add(n.Pos(), "append result escapes its source")
				}
			default:
				checkInterfaceArgs(info, n, add)
			}
		}
		return true
	})
	return out
}

func isBuiltinNamed(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// capturesOuter reports whether the literal references variables declared
// in the enclosing function (those captures force a heap-allocated
// closure; a literal using only its own locals and globals is static).
func capturesOuter(info *types.Info, fn *Func, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPackageLevel(v) {
			return true
		}
		// Declared inside the enclosing function but outside the literal.
		if v.Pos() >= fn.Decl.Pos() && v.Pos() < fn.Decl.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = true
			return false
		}
		return true
	})
	return captured
}

// checkInterfaceArgs flags concrete values passed to interface-typed
// parameters (boxing allocates once the value leaves the inlining
// horizon). Conversions of typed nil and of values already of interface
// type are free and not flagged.
func checkInterfaceArgs(info *types.Info, call *ast.CallExpr, add func(token.Pos, string)) {
	// Explicit conversion to an interface type: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := info.Types[call.Args[0]]; ok && atv.Type != nil && !types.IsInterface(atv.Type) && !isUntypedNil(atv.Type) {
				add(call.Args[0].Pos(), "interface conversion")
			}
		}
		return
	}
	callee := CalleeOf(info, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pi := paramIndex(sig, i, call)
		if pi < 0 {
			continue
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == sig.Params().Len()-1 {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || types.IsInterface(atv.Type) || isUntypedNil(atv.Type) {
			continue
		}
		add(arg.Pos(), "interface conversion (argument boxed)")
	}
}

func isUntypedNil(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.UntypedNil
}
