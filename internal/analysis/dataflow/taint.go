package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Taint masks: bit i (i < 63) means "derived from parameter i", the top
// bit means "derived from a declared secret" (a //tmlint:secret field,
// parameter, or result).
const secretBit uint64 = 1 << 63

// SinkFlow records that a parameter's value reaches a sink.
type SinkFlow struct {
	// Sink names the sink ("fmt.Printf", "obs metrics label").
	Sink string
	// Via names the intermediate module function when the flow is
	// indirect, "" for a direct call in the summarized function.
	Via string
}

// TaintSummary is the secretflow fact for one function: which parameters
// reach sinks (directly or through callees) and which flow to results.
type TaintSummary struct {
	ParamFlows    map[int]SinkFlow
	ParamToResult map[int]bool
}

func (s *TaintSummary) equal(o *TaintSummary) bool {
	if len(s.ParamFlows) != len(o.ParamFlows) || len(s.ParamToResult) != len(o.ParamToResult) {
		return false
	}
	for k, v := range s.ParamFlows {
		if o.ParamFlows[k] != v {
			return false
		}
	}
	for k := range s.ParamToResult {
		if !o.ParamToResult[k] {
			return false
		}
	}
	return true
}

// Finding is one whole-program diagnostic, attributed to the package that
// owns its position.
type Finding struct {
	Pos     token.Pos
	PkgPath string
	Message string
}

// Taint computes every function's taint summary to fixpoint, then collects
// secret-escape findings. The result is memoized on the Program.
//
// Soundness caveats (documented in DESIGN.md): taint does not survive
// calls into non-module code (crypto and math/big arithmetic act as
// declassification boundaries — the published ring-signature scalar
// s = α − c·x is clean by construction), and internally-introduced secret
// taint is not propagated through returns; secret fields re-taint at every
// read site instead.
func (p *Program) Taint() []Finding {
	p.taintOnce.Do(func() {
		p.computeTaint()
		var out []Finding
		seen := make(map[string]bool)
		for _, fn := range p.ordered {
			st := &taintState{prog: p, fn: fn, obj: make(map[types.Object]uint64), sum: newTaintSummary()}
			st.initParams()
			st.iterate()
			st.record = true
			st.walkOnce()
			for _, f := range st.findings {
				key := fmt.Sprintf("%d:%s", f.Pos, f.Message)
				if !seen[key] {
					seen[key] = true
					out = append(out, f)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
		p.taintFindings = out
	})
	return p.taintFindings
}

// TaintSummaryOf returns the computed summary for a module function
// (computing all summaries on first use), or nil for non-module functions.
func (p *Program) TaintSummaryOf(obj *types.Func) *TaintSummary {
	p.Taint()
	if fn := p.Funcs[obj]; fn != nil {
		return fn.taint
	}
	return nil
}

func newTaintSummary() *TaintSummary {
	return &TaintSummary{ParamFlows: make(map[int]SinkFlow), ParamToResult: make(map[int]bool)}
}

// computeTaint iterates summary computation until no summary changes.
// Summaries grow monotonically, so this terminates.
func (p *Program) computeTaint() {
	for _, fn := range p.ordered {
		fn.taint = newTaintSummary()
	}
	for round := 0; round < len(p.ordered)+2; round++ {
		changed := false
		for _, fn := range p.ordered {
			st := &taintState{prog: p, fn: fn, obj: make(map[types.Object]uint64), sum: newTaintSummary()}
			st.initParams()
			st.iterate()
			if !st.sum.equal(fn.taint) {
				fn.taint = st.sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// taintState evaluates one function body flow-insensitively: object taints
// only grow, and the walk repeats until they stabilize.
type taintState struct {
	prog     *Program
	fn       *Func
	obj      map[types.Object]uint64
	sum      *TaintSummary
	record   bool
	findings []Finding
	changed  bool
}

func (st *taintState) initParams() {
	sig := st.fn.Obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		mask := uint64(1) << uint(min(i, 62))
		if st.fn.SecretParams[i] {
			mask |= secretBit
		}
		st.obj[sig.Params().At(i)] = mask
	}
}

func (st *taintState) iterate() {
	for round := 0; round < 32; round++ {
		st.changed = false
		st.walkOnce()
		if !st.changed {
			return
		}
	}
}

func (st *taintState) walkOnce() {
	ast.Inspect(st.fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.assign(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			if len(n.Values) > 0 {
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				st.assign(lhs, n.Values)
			}
		case *ast.RangeStmt:
			m := st.eval(n.X)
			if n.Key != nil {
				st.taintExpr(n.Key, m)
			}
			if n.Value != nil {
				st.taintExpr(n.Value, m)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				m := st.eval(res)
				for b := 0; b < 63; b++ {
					if m&(1<<uint(b)) != 0 {
						if !st.sum.ParamToResult[b] {
							st.sum.ParamToResult[b] = true
						}
					}
				}
			}
		case *ast.ExprStmt:
			st.eval(n.X)
		case *ast.GoStmt:
			st.eval(n.Call)
		case *ast.DeferStmt:
			st.eval(n.Call)
		case *ast.SendStmt:
			st.eval(n.Value)
		}
		return true
	})
}

// assign propagates RHS taint onto LHS objects, handling both the pairwise
// and the multi-value (x, y := f()) forms.
func (st *taintState) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		m := st.eval(rhs[0])
		for _, l := range lhs {
			st.taintExpr(l, m)
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) {
			st.taintExpr(l, st.eval(rhs[i]))
		}
	}
}

// taintExpr adds mask to the object behind an assignable expression. For
// field/index targets the base object absorbs the taint (writing a secret
// into a struct taints the struct variable).
func (st *taintState) taintExpr(e ast.Expr, mask uint64) {
	if mask == 0 {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		var obj types.Object = st.fn.Pkg.Info.Defs[e]
		if obj == nil {
			obj = st.fn.Pkg.Info.Uses[e]
		}
		st.taintObj(obj, mask)
	case *ast.SelectorExpr:
		st.taintExpr(e.X, mask)
	case *ast.IndexExpr:
		st.taintExpr(e.X, mask)
	case *ast.StarExpr:
		st.taintExpr(e.X, mask)
	}
}

func (st *taintState) taintObj(obj types.Object, mask uint64) {
	if obj == nil || mask == 0 {
		return
	}
	if st.obj[obj]|mask != st.obj[obj] {
		st.obj[obj] |= mask
		st.changed = true
	}
}

// eval returns the taint mask of an expression, recording sink findings
// and summary flows for call expressions along the way.
func (st *taintState) eval(e ast.Expr) uint64 {
	switch e := e.(type) {
	case *ast.Ident:
		var obj types.Object = st.fn.Pkg.Info.Uses[e]
		if obj == nil {
			obj = st.fn.Pkg.Info.Defs[e]
		}
		return st.obj[obj]
	case *ast.SelectorExpr:
		var m uint64
		if sel, ok := st.fn.Pkg.Info.Selections[e]; ok {
			if v, isVar := sel.Obj().(*types.Var); isVar && st.prog.SecretFields[v] {
				m |= secretBit
			}
			m |= st.eval(e.X)
			return m
		}
		// Qualified identifier (pkg.Var) or method value.
		if obj := st.fn.Pkg.Info.Uses[e.Sel]; obj != nil {
			if v, isVar := obj.(*types.Var); isVar && st.prog.SecretFields[v] {
				return secretBit
			}
			return st.obj[obj]
		}
		return 0
	case *ast.CallExpr:
		return st.evalCall(e)
	case *ast.BinaryExpr:
		return st.eval(e.X) | st.eval(e.Y)
	case *ast.UnaryExpr:
		return st.eval(e.X)
	case *ast.StarExpr:
		return st.eval(e.X)
	case *ast.ParenExpr:
		return st.eval(e.X)
	case *ast.IndexExpr:
		return st.eval(e.X)
	case *ast.SliceExpr:
		return st.eval(e.X)
	case *ast.TypeAssertExpr:
		return st.eval(e.X)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= st.eval(kv.Value)
			} else {
				m |= st.eval(el)
			}
		}
		return m
	case *ast.KeyValueExpr:
		return st.eval(e.Value)
	}
	return 0
}

func (st *taintState) evalCall(call *ast.CallExpr) uint64 {
	args := make([]uint64, len(call.Args))
	var all uint64
	for i, a := range call.Args {
		args[i] = st.eval(a)
		all |= args[i]
	}
	// Builtins (append, copy, min, max) pass taint through.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.fn.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return all
		}
	}
	callee := CalleeOf(st.fn.Pkg.Info, call)
	if callee == nil {
		// Conversions pass taint through; indirect calls drop it.
		if tv, ok := st.fn.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return all
		}
		return 0
	}
	if sink := classifySink(callee); sink != "" {
		for i, m := range args {
			if m == 0 {
				continue
			}
			if st.record && m&secretBit != 0 {
				st.finding(call.Args[i].Pos(), "secret value flows into %s", sink)
			}
			st.flowToSink(m, SinkFlow{Sink: sink})
		}
		return 0
	}
	if local := st.prog.Funcs[callee]; local != nil {
		sum := local.taint
		if sum == nil {
			sum = newTaintSummary()
		}
		sig := callee.Type().(*types.Signature)
		var res uint64
		for i, m := range args {
			if m == 0 {
				continue
			}
			pi := paramIndex(sig, i, call)
			if pi < 0 {
				continue
			}
			if flow, ok := sum.ParamFlows[pi]; ok {
				if st.record && m&secretBit != 0 {
					st.finding(call.Args[i].Pos(), "secret value flows into %s via call to %s", flow.Sink, local.Name())
				}
				st.flowToSink(m, SinkFlow{Sink: flow.Sink, Via: local.Name()})
			}
			if sum.ParamToResult[pi] {
				res |= m
			}
		}
		if local.SecretResults {
			res |= secretBit
		}
		return res
	}
	// Unknown external call: taint does not survive (declassification
	// boundary — covers crypto/elliptic, crypto/sha256, math/big).
	return 0
}

// flowToSink records "parameter b reaches sink" summary entries for every
// parameter bit in mask. First flow recorded wins (deterministic: walk
// order is source order).
func (st *taintState) flowToSink(mask uint64, flow SinkFlow) {
	for b := 0; b < 63; b++ {
		if mask&(1<<uint(b)) == 0 {
			continue
		}
		if _, ok := st.sum.ParamFlows[b]; !ok {
			st.sum.ParamFlows[b] = flow
		}
	}
}

func (st *taintState) finding(pos token.Pos, format string, a ...any) {
	st.findings = append(st.findings, Finding{
		Pos:     pos,
		PkgPath: st.fn.Pkg.Path,
		Message: fmt.Sprintf(format, a...),
	})
}

// paramIndex maps argument index i to the callee's parameter index,
// folding variadic tails onto the last parameter.
func paramIndex(sig *types.Signature, i int, call *ast.CallExpr) int {
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	if i >= n {
		if sig.Variadic() {
			return n - 1
		}
		return -1
	}
	return i
}

// classifySink names the sink a call into non-analyzed code represents, or
// "" when the callee is not a sink. The sink set implements the ISSUE 5
// contract: fmt/log/slog formatting, encoding/json, error construction and
// obs metric labels must never observe secret-derived values.
func classifySink(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	name := fn.Name()
	switch path := pkg.Path(); {
	case path == "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Sprint") ||
			strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Append") || name == "Errorf" {
			return "fmt." + name
		}
	case path == "log" || path == "log/slog":
		return path + "." + name
	case path == "encoding/json":
		if name == "Marshal" || name == "MarshalIndent" || name == "Encode" {
			return "encoding/json." + name
		}
	case path == "errors":
		if name == "New" {
			return "errors.New"
		}
	case strings.HasSuffix(path, "/internal/obs"):
		if name == "Counter" || name == "Gauge" || name == "Histogram" {
			return "obs metrics label (" + name + ")"
		}
	case strings.HasSuffix(path, "/internal/obs/trace"):
		// Span/trace annotations are exported verbatim by /debug/traces and
		// echoed into debug logs — a secret annotated onto a span is a secret
		// published over HTTP.
		if strings.HasPrefix(name, "Annotate") {
			return "trace span annotation (" + name + ")"
		}
	}
	return ""
}
