package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

// parseFixture parses an in-memory file with comments for directive tests.
func parseFixture(t *testing.T, src string) (*token.FileSet, *ignoreFixture) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var malformed []Diagnostic
	dirs := parseIgnores(fset, f, func(d Diagnostic) { malformed = append(malformed, d) })
	return fset, &ignoreFixture{file: src, dirs: dirs, malformed: malformed}
}

type ignoreFixture struct {
	file      string
	dirs      []ignoreDirective
	malformed []Diagnostic
}

func (fx *ignoreFixture) suppresses(analyzer string, line int) bool {
	for _, d := range fx.dirs {
		if d.matches(analyzer, line) {
			return true
		}
	}
	return false
}

// TestIgnoreMultipleAnalyzersOneLine: a single directive may name several
// analyzers, comma-separated with no spaces; it suppresses each of them on
// its own line and the line below, and nothing else.
func TestIgnoreMultipleAnalyzersOneLine(t *testing.T) {
	src := `package p

//lint:ignore lockcheck,errdrop,hotalloc reviewed: fixture exercises the scratch pattern
var x = 1

var y = 2
`
	_, fx := parseFixture(t, src)
	if len(fx.malformed) != 0 {
		t.Fatalf("directive reported as malformed: %v", fx.malformed)
	}
	if len(fx.dirs) != 1 {
		t.Fatalf("got %d directives, want 1", len(fx.dirs))
	}
	for _, analyzer := range []string{"lockcheck", "errdrop", "hotalloc"} {
		if !fx.suppresses(analyzer, 3) {
			t.Errorf("%s not suppressed on the directive's own line", analyzer)
		}
		if !fx.suppresses(analyzer, 4) {
			t.Errorf("%s not suppressed on the line below the directive", analyzer)
		}
		if fx.suppresses(analyzer, 6) {
			t.Errorf("%s suppressed two lines below the directive", analyzer)
		}
	}
	if fx.suppresses("cryptorand", 4) {
		t.Error("an analyzer not named in the list must not be suppressed")
	}
}

// TestIgnoreListEdgeCases: the analyzer list tolerates a wildcard entry
// mixed with names, and a trailing comma yields an empty entry that matches
// nothing (rather than matching everything).
func TestIgnoreListEdgeCases(t *testing.T) {
	src := `package p

//lint:ignore *,errdrop the wildcard already covers everything
var x = 1

//lint:ignore lockcheck, trailing comma leaves an empty entry
var y = 2
`
	_, fx := parseFixture(t, src)
	if len(fx.dirs) != 2 {
		t.Fatalf("got %d directives, want 2", len(fx.dirs))
	}
	if !fx.suppresses("anything", 4) {
		t.Error("wildcard entry must suppress every analyzer")
	}
	if !fx.suppresses("lockcheck", 7) {
		t.Error("named entry before the trailing comma must still work")
	}
	if fx.suppresses("errdrop", 7) {
		t.Error("the empty entry from a trailing comma must not match other analyzers")
	}
}

// TestIgnoreLinesMultiAnalyzer: the cross-function suppression view exposes
// the same multi-analyzer semantics to whole-program fact collection.
func TestIgnoreLinesMultiAnalyzer(t *testing.T) {
	src := `package p

//lint:ignore hotalloc,ctxpoll scratch warm-up, amortized
var x = 1
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, analyzer := range []string{"hotalloc", "ctxpoll"} {
		lines := IgnoreLines(fset, f, analyzer)
		if !lines[3] || !lines[4] {
			t.Errorf("IgnoreLines(%s) = %v, want lines 3 and 4", analyzer, lines)
		}
	}
	if lines := IgnoreLines(fset, f, "lockcheck"); len(lines) != 0 {
		t.Errorf("IgnoreLines for an unnamed analyzer = %v, want empty", lines)
	}
}
