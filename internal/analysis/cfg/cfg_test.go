package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src as a file containing one function and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return New(fn.Body)
}

// reachable returns the set of blocks reachable from entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("nil body: want entry→exit, got %s", g)
	}
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if len(g.Entry.Stmts) != 2 {
		t.Fatalf("want 2 stmts in entry, got %d:\n%s", len(g.Entry.Stmts), g)
	}
}

func TestIfElseJoins(t *testing.T) {
	g := build(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`)
	// Entry must have two successors (then, else), both reaching exit.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("want 2 successors from condition block, got %d:\n%s", len(g.Entry.Succs), g)
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestIfWithoutElseHasFallEdge(t *testing.T) {
	g := build(t, `
x := 0
if x > 0 {
	return
}
_ = x`)
	// The false edge must bypass the return.
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// And there must be a path to exit that does not go through the
	// return-holding block.
	var retBlk *Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if _, ok := s.(*ast.ReturnStmt); ok {
				retBlk = b
			}
		}
	}
	if retBlk == nil {
		t.Fatalf("no return block found:\n%s", g)
	}
	if !pathAvoiding(g, g.Entry, g.Exit, retBlk) {
		t.Fatalf("no path to exit avoiding the return block:\n%s", g)
	}
}

// pathAvoiding reports whether to is reachable from from without visiting
// avoid.
func pathAvoiding(g *Graph, from, to, avoid *Block) bool {
	seen := map[*Block]bool{avoid: true}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, `
for i := 0; i < 10; i++ {
	_ = i
}`)
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// There must be a cycle: some reachable block with a successor that can
	// reach it back.
	if !hasCycle(g) {
		t.Fatalf("for loop produced no back edge:\n%s", g)
	}
}

func hasCycle(g *Graph) bool {
	r := reachable(g)
	for b := range r {
		for _, s := range b.Succs {
			if canReach(s, b, map[*Block]bool{}) {
				return true
			}
		}
	}
	return false
}

func canReach(from, to *Block, seen map[*Block]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for _, s := range from.Succs {
		if canReach(s, to, seen) {
			return true
		}
	}
	return false
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := build(t, `
for {
	break
}
_ = 1`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("break did not reach loop exit:\n%s", g)
	}
}

func TestInfiniteLoopNoBreakExitUnreachable(t *testing.T) {
	g := build(t, `
for {
	_ = 1
}`)
	if reachable(g)[g.Exit] {
		t.Fatalf("infinite loop should not reach exit:\n%s", g)
	}
}

func TestRangeZeroIterations(t *testing.T) {
	g := build(t, `
xs := []int{1}
acquired := false
for range xs {
	acquired = true
}
_ = acquired`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if !hasCycle(g) {
		t.Fatalf("range loop produced no back edge:\n%s", g)
	}
	// There must be a path skipping the loop body (zero iterations).
	var bodyBlk *Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if as, ok := s.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "acquired" && len(b.Succs) > 0 {
					// the second assignment (inside the loop)
					if lit, ok := as.Rhs[0].(*ast.Ident); ok && lit.Name == "true" {
						bodyBlk = b
					}
				}
			}
		}
	}
	if bodyBlk == nil {
		t.Fatalf("loop body block not found:\n%s", g)
	}
	if !pathAvoiding(g, g.Entry, g.Exit, bodyBlk) {
		t.Fatalf("no zero-iteration path around range body:\n%s", g)
	}
}

func TestLabeledContinueAndBreak(t *testing.T) {
	g := build(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue outer
		}
		if j == 2 {
			break outer
		}
	}
}
_ = 1`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if !hasCycle(g) {
		t.Fatalf("nested loops produced no cycle:\n%s", g)
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := build(t, `
i := 0
loop:
if i < 3 {
	i++
	goto loop
}
_ = i`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if !hasCycle(g) {
		t.Fatalf("backward goto produced no cycle:\n%s", g)
	}

	g = build(t, `
i := 0
if i == 0 {
	goto done
}
i = 99
done:
_ = i`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("forward goto: exit unreachable:\n%s", g)
	}
}

func TestSwitchEdges(t *testing.T) {
	g := build(t, `
x := 1
switch x {
case 1:
	x = 10
case 2:
	x = 20
	fallthrough
case 3:
	x = 30
}
_ = x`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// No default: there must be a path around every case body.
	var caseBlks []*Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if as, ok := s.(*ast.AssignStmt); ok {
				if bl, ok := as.Rhs[0].(*ast.BasicLit); ok && (bl.Value == "10" || bl.Value == "20" || bl.Value == "30") {
					caseBlks = append(caseBlks, b)
				}
			}
		}
	}
	if len(caseBlks) != 3 {
		t.Fatalf("want 3 case-body blocks, got %d:\n%s", len(caseBlks), g)
	}
	for _, cb := range caseBlks {
		if !pathAvoiding(g, g.Entry, g.Exit, cb) {
			t.Fatalf("no path around case block b%d (no-match edge missing):\n%s", cb.Index, g)
		}
	}
}

func TestSwitchDefaultRemovesNoMatchEdge(t *testing.T) {
	g := build(t, `
x := 1
switch x {
case 1:
	return
default:
	return
}`)
	// Both arms return, and the default removes the no-match edge, so the
	// statement after the switch (none here: the join) must not reach exit
	// except via the returns — exit reachable, but the join block is dead.
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestSelectEdges(t *testing.T) {
	g := build(t, `
ch := make(chan int)
select {
case <-ch:
	_ = 1
case ch <- 2:
	_ = 2
}
_ = 3`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestDeferStaysInBlock(t *testing.T) {
	g := build(t, `
defer func() {}()
_ = 1`)
	found := false
	for _, s := range g.Entry.Stmts {
		if _, ok := s.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("defer statement not recorded in entry block:\n%s", g)
	}
}

func TestBlockIndicesAreDense(t *testing.T) {
	g := build(t, `
for i := 0; i < 2; i++ {
	if i == 1 {
		break
	}
}`)
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Fatalf("block %d has Index %d", i, b.Index)
		}
	}
}
