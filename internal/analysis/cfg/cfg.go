// Package cfg builds per-function control-flow graphs over go/ast function
// bodies, using only the standard library. It is the path backbone of
// tmlint's dataflow layer: the lockcheck release-on-every-path analysis and
// the interprocedural analyzers walk these graphs instead of guessing at
// source order.
//
// The graph is statement-granular: each basic block holds a run of
// statements with no internal control transfer, and Succs lists the blocks
// control can reach next. Expressions are not split — analyses that care
// about evaluation order inside one statement scan the statement's AST
// in source order, which matches Go's left-to-right evaluation closely
// enough for the properties tmlint checks.
//
// Conservative choices (soundness caveats, also documented in DESIGN.md):
//
//   - A nested function literal is opaque: its body is NOT part of the
//     enclosing graph. Analyses visit literals as separate functions.
//   - `goto` resolves to its label when the label exists in the body;
//     a goto to an unknown label (malformed code) falls through.
//   - `select` and `switch` without a default keep an edge to the join
//     block, modelling "no case ran" (for switch) and "blocked forever is
//     not a path we reason about" (for select).
//   - panic/os.Exit style no-return calls are not modelled; the block
//     keeps its fall-through edge. This only ever makes analyses report
//     less, never more.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block: statements executed in order with no internal
// branching, plus the successor edges.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, deterministic:
	// blocks are numbered in creation order, which follows source order).
	Index int
	// Stmts are the statements of the block in execution order. A
	// *ast.DeferStmt appears here at the point it registers, not where it
	// runs; Graph-level analyses model the deferred call at exits.
	Stmts []ast.Stmt
	// Succs are the blocks control may transfer to after the last
	// statement. The exit block has none.
	Succs []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	// Entry is where control enters; Exit is the single virtual exit every
	// return and the fall-off-the-end path lead to. Exit holds no
	// statements.
	Entry, Exit *Block
	// Blocks lists every block, Entry first, in creation order.
	Blocks []*Block
}

// builder carries the construction state.
type builder struct {
	g *Graph
	// breakTo / continueTo are the innermost targets; label* the labelled
	// ones.
	breakTo    []*Block
	continueTo []*Block
	labelBreak map[string]*Block
	labelCont  map[string]*Block
	labelStart map[string]*Block
	// pendingGoto records goto statements seen before their label.
	pendingGoto map[string][]*Block
}

// New builds the CFG of a function body. A nil body yields a two-block
// graph (entry → exit) so callers need not special-case extern functions.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{
		g:           g,
		labelBreak:  make(map[string]*Block),
		labelCont:   make(map[string]*Block),
		labelStart:  make(map[string]*Block),
		pendingGoto: make(map[string][]*Block),
	}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	if body == nil {
		b.edge(g.Entry, g.Exit)
		return g
	}
	last := b.stmtList(g.Entry, body.List)
	if last != nil {
		b.edge(last, g.Exit)
	}
	// Unresolved gotos (labels that never appeared) fall through to exit so
	// the graph stays connected.
	for _, blocks := range b.pendingGoto {
		for _, from := range blocks {
			b.edge(from, g.Exit)
		}
	}
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmtList threads a statement list through the graph starting at cur.
// It returns the block holding control after the list, or nil when every
// path inside transferred away (return/break/…).
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminating statement still gets blocks so
			// analyses see its statements, but nothing flows into them.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt adds one statement, returning the live continuation block (nil when
// control never falls through).
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		cur.Stmts = append(cur.Stmts, s)
		return b.branch(cur, s)

	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		return b.ifStmt(cur, s)

	case *ast.ForStmt:
		return b.forStmt(cur, s, "")

	case *ast.RangeStmt:
		return b.rangeStmt(cur, s, "")

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s.Init, s.Tag, bodyOf(s.Body), "")

	case *ast.TypeSwitchStmt:
		return b.switchStmt(cur, s.Init, nil, bodyOf(s.Body), "")

	case *ast.SelectStmt:
		return b.selectStmt(cur, s, "")

	case *ast.LabeledStmt:
		return b.labeled(cur, s)

	default:
		// Plain statements (assign, expr, defer, go, send, incdec, decl,
		// empty) stay in the current block.
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

// labeled handles `L: stmt` by exposing L as a goto/break/continue target.
func (b *builder) labeled(cur *Block, s *ast.LabeledStmt) *Block {
	name := s.Label.Name
	// The label starts a fresh block so gotos have a landing point.
	start := b.newBlock()
	b.edge(cur, start)
	b.labelStart[name] = start
	for _, from := range b.pendingGoto[name] {
		b.edge(from, start)
	}
	delete(b.pendingGoto, name)

	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		return b.forStmt(start, inner, name)
	case *ast.RangeStmt:
		return b.rangeStmt(start, inner, name)
	case *ast.SwitchStmt:
		return b.switchStmt(start, inner.Init, inner.Tag, bodyOf(inner.Body), name)
	case *ast.TypeSwitchStmt:
		return b.switchStmt(start, inner.Init, nil, bodyOf(inner.Body), name)
	case *ast.SelectStmt:
		return b.selectStmt(start, inner, name)
	default:
		return b.stmt(start, s.Stmt)
	}
}

func (b *builder) branch(cur *Block, s *ast.BranchStmt) *Block {
	switch s.Tok.String() {
	case "break":
		if t := b.branchTarget(s, b.breakTo, b.labelBreak); t != nil {
			b.edge(cur, t)
		}
		return nil
	case "continue":
		if t := b.branchTarget(s, b.continueTo, b.labelCont); t != nil {
			b.edge(cur, t)
		}
		return nil
	case "goto":
		if s.Label != nil {
			if t, ok := b.labelStart[s.Label.Name]; ok {
				b.edge(cur, t)
			} else {
				b.pendingGoto[s.Label.Name] = append(b.pendingGoto[s.Label.Name], cur)
			}
		}
		return nil
	default: // fallthrough is handled by switchStmt; elsewhere it is a no-op
		return cur
	}
}

func (b *builder) branchTarget(s *ast.BranchStmt, stack []*Block, labelled map[string]*Block) *Block {
	if s.Label != nil {
		return labelled[s.Label.Name]
	}
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func (b *builder) ifStmt(cur *Block, s *ast.IfStmt) *Block {
	if s.Init != nil {
		cur = b.stmt(cur, s.Init)
	}
	// The condition evaluates in the current block.
	cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Cond})
	join := b.newBlock()

	thenBlk := b.newBlock()
	b.edge(cur, thenBlk)
	if after := b.stmtList(thenBlk, s.Body.List); after != nil {
		b.edge(after, join)
	}

	if s.Else != nil {
		elseBlk := b.newBlock()
		b.edge(cur, elseBlk)
		if after := b.stmt(elseBlk, s.Else); after != nil {
			b.edge(after, join)
		}
	} else {
		b.edge(cur, join)
	}
	if len(join.Succs) == 0 && !hasPred(b.g, join) {
		// Both arms terminated; join is dead but harmless.
	}
	return join
}

func (b *builder) forStmt(cur *Block, s *ast.ForStmt, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(cur, s.Init)
	}
	head := b.newBlock()
	b.edge(cur, head)
	if s.Cond != nil {
		head.Stmts = append(head.Stmts, &ast.ExprStmt{X: s.Cond})
	}
	after := b.newBlock()
	post := b.newBlock()

	if s.Cond != nil {
		b.edge(head, after) // condition false
	}
	body := b.newBlock()
	b.edge(head, body)

	b.pushLoop(after, post, label)
	if end := b.stmtList(body, s.Body.List); end != nil {
		b.edge(end, post)
	}
	b.popLoop(label)

	if s.Post != nil {
		post.Stmts = append(post.Stmts, s.Post)
	}
	b.edge(post, head)
	return after
}

func (b *builder) rangeStmt(cur *Block, s *ast.RangeStmt, label string) *Block {
	// Model the range expression evaluation in the current block.
	cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.X})
	head := b.newBlock()
	b.edge(cur, head)
	after := b.newBlock()
	b.edge(head, after) // zero iterations

	body := b.newBlock()
	b.edge(head, body)
	b.pushLoop(after, head, label)
	if end := b.stmtList(body, s.Body.List); end != nil {
		b.edge(end, head)
	}
	b.popLoop(label)
	return after
}

func (b *builder) pushLoop(brk, cont *Block, label string) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
	if label != "" {
		b.labelBreak[label] = brk
		b.labelCont[label] = cont
	}
}

func (b *builder) popLoop(label string) {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelCont, label)
	}
}

func bodyOf(body *ast.BlockStmt) []ast.Stmt {
	if body == nil {
		return nil
	}
	return body.List
}

// switchStmt covers switch and type switch: each case body branches from
// the head; fallthrough chains to the next case body. A non-nil tag
// expression evaluates in the head block (as a synthetic ExprStmt, like
// if/for conditions), so dataflow analyses see switch dispatch operands.
func (b *builder) switchStmt(cur *Block, init ast.Stmt, tag ast.Expr, clauses []ast.Stmt, label string) *Block {
	if init != nil {
		cur = b.stmt(cur, init)
	}
	if tag != nil {
		cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: tag})
	}
	join := b.newBlock()
	b.breakTo = append(b.breakTo, join)
	if label != "" {
		b.labelBreak[label] = join
	}

	// First pass: create one body block per clause so fallthrough can jump
	// forward.
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.edge(cur, bodies[i])
		end := bodies[i]
		for _, s := range cc.Body {
			if br, isBr := s.(*ast.BranchStmt); isBr && br.Tok.String() == "fallthrough" {
				if i+1 < len(bodies) && end != nil {
					b.edge(end, bodies[i+1])
					end = nil
				}
				continue
			}
			if end == nil {
				end = b.newBlock()
			}
			end = b.stmt(end, s)
		}
		if end != nil {
			b.edge(end, join)
		}
	}
	if !hasDefault {
		b.edge(cur, join) // no case matched
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	if label != "" {
		delete(b.labelBreak, label)
	}
	return join
}

func (b *builder) selectStmt(cur *Block, s *ast.SelectStmt, label string) *Block {
	join := b.newBlock()
	b.breakTo = append(b.breakTo, join)
	if label != "" {
		b.labelBreak[label] = join
	}
	for _, c := range bodyOf(s.Body) {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock()
		b.edge(cur, body)
		if cc.Comm != nil {
			body.Stmts = append(body.Stmts, cc.Comm)
		}
		if end := b.stmtList(body, cc.Body); end != nil {
			b.edge(end, join)
		}
	}
	// A select with no ready case blocks; treat "never proceeds" as not a
	// path, but keep the graph connected when the select has no clauses.
	if len(bodyOf(s.Body)) == 0 {
		b.edge(cur, join)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	if label != "" {
		delete(b.labelBreak, label)
	}
	return join
}

func hasPred(g *Graph, blk *Block) bool {
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == blk {
				return true
			}
		}
	}
	return false
}

// String renders the graph for debugging and tests: one line per block with
// its statement count and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		//lint:ignore errdrop strings.Builder's Write never returns an error
		fmt.Fprintf(&sb, "b%d[%d]:", blk.Index, len(blk.Stmts))
		for _, s := range blk.Succs {
			//lint:ignore errdrop strings.Builder's Write never returns an error
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		if blk == g.Exit {
			sb.WriteString(" (exit)")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
