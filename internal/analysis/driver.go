package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"strings"
	"sync"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers []string // names, or ["*"]
}

// parseIgnores extracts the //lint:ignore directives of one file, keyed by
// the line the directive ends on. A directive suppresses matching findings
// on its own line (trailing comment) and on the line directly below it
// (comment above the offending statement). Form:
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// The reason is mandatory; a directive without one is itself reported.
func parseIgnores(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			if len(fields) < 2 {
				report(Diagnostic{
					Analyzer: "tmlint",
					Pos:      c.Pos(),
					Position: pos,
					Message:  "malformed //lint:ignore: need an analyzer name and a reason",
				})
				continue
			}
			out = append(out, ignoreDirective{
				line:      fset.Position(c.End()).Line,
				analyzers: strings.Split(fields[0], ","),
			})
		}
	}
	return out
}

func (d ignoreDirective) matches(analyzer string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == "*" || a == analyzer {
			return true
		}
	}
	return false
}

// IgnoreLines returns the source lines of f on which findings from the
// named analyzer are suppressed by //lint:ignore directives. Whole-program
// analyzers consult this while collecting facts in OTHER packages, so that
// a suppressed construct (e.g. an allowed allocation inside a hotpath
// callee) does not re-surface as a cross-function finding at the caller.
// Malformed directives are ignored here; the driver reports them.
func IgnoreLines(fset *token.FileSet, f *ast.File, analyzer string) map[int]bool {
	lines := make(map[int]bool)
	for _, d := range parseIgnores(fset, f, func(Diagnostic) {}) {
		for _, a := range d.analyzers {
			if a == "*" || a == analyzer {
				lines[d.line] = true
				lines[d.line+1] = true
				break
			}
		}
	}
	return lines
}

// RunOptions tunes a driver run.
type RunOptions struct {
	// Parallelism bounds the number of packages analyzed concurrently.
	// Zero or negative means GOMAXPROCS.
	Parallelism int
	// AllPackages is the full loaded package set handed to passes for
	// whole-program analysis. Nil means the reported set itself. It may be
	// a superset of pkgs: the cache driver loads the dependency closure of
	// the stale packages but only re-reports the stale ones.
	AllPackages []*Package
}

// Run executes the analyzers over the packages, applying scope, policy and
// //lint:ignore suppression. Diagnostics come back sorted by position.
// The returned error reports analyzer failures, not findings.
func Run(pkgs []*Package, analyzers []*Analyzer, policy *Policy, relPath func(string) string) ([]Diagnostic, error) {
	return RunWithOptions(pkgs, analyzers, policy, relPath, RunOptions{})
}

// RunWithOptions is Run with explicit parallelism and whole-program package
// set. Packages are analyzed concurrently (each package runs its analyzers
// sequentially); output ordering is deterministic regardless of schedule
// because diagnostics are merged per-package and then position-sorted.
func RunWithOptions(pkgs []*Package, analyzers []*Analyzer, policy *Policy, relPath func(string) string, opts RunOptions) ([]Diagnostic, error) {
	if policy == nil {
		policy = &Policy{}
	}
	all := opts.AllPackages
	if all == nil {
		all = pkgs
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	shared := NewShared()

	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			perPkg[i], errs[i] = runPackage(pkg, analyzers, policy, relPath, all, shared)
		}(i, pkg)
	}
	wg.Wait()

	var diags []Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		diags = append(diags, perPkg[i]...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runPackage runs every applicable analyzer over one package and returns
// the surviving (scope-, policy- and suppression-filtered) diagnostics.
func runPackage(pkg *Package, analyzers []*Analyzer, policy *Policy, relPath func(string) string, all []*Package, shared *Shared) ([]Diagnostic, error) {
	var diags []Diagnostic
	// Ignore directives are analyzer-independent; collect once per file.
	var ignores []ignoreDirective
	for _, f := range pkg.Files {
		ignores = append(ignores, parseIgnores(pkg.Fset, f, func(d Diagnostic) {
			diags = append(diags, d)
		})...)
	}
	for _, a := range analyzers {
		inScope := a.AppliesTo(pkg.Path)
		if !inScope && !anyFileDenied(a, pkg, policy, relPath) {
			continue
		}
		var raw []Diagnostic
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Files,
			Pkg:         pkg.Types,
			Info:        pkg.Info,
			RelPath:     relPath,
			AllPackages: all,
			Shared:      shared,
			report:      func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range raw {
			rel := relPath(d.Position.Filename)
			// Out-of-scope packages only report in policy-denied files.
			if !inScope && !policy.Denies(a.Name, rel) {
				continue
			}
			if policy.Allows(a.Name, rel) {
				continue
			}
			if suppressed(ignores, d) {
				continue
			}
			diags = append(diags, d)
		}
	}
	return diags, nil
}

func suppressed(ignores []ignoreDirective, d Diagnostic) bool {
	for _, ig := range ignores {
		if ig.matches(d.Analyzer, d.Position.Line) {
			return true
		}
	}
	return false
}

// anyFileDenied reports whether a policy "deny" rule drags any of the
// package's files into a scoped analyzer's reach.
func anyFileDenied(a *Analyzer, pkg *Package, policy *Policy, relPath func(string) string) bool {
	for _, f := range pkg.Files {
		if policy.Denies(a.Name, relPath(pkg.Fset.Position(f.Pos()).Filename)) {
			return true
		}
	}
	return false
}
