package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers []string // names, or ["*"]
}

// parseIgnores extracts the //lint:ignore directives of one file, keyed by
// the line the directive ends on. A directive suppresses matching findings
// on its own line (trailing comment) and on the line directly below it
// (comment above the offending statement). Form:
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// The reason is mandatory; a directive without one is itself reported.
func parseIgnores(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			if len(fields) < 2 {
				report(Diagnostic{
					Analyzer: "tmlint",
					Pos:      c.Pos(),
					Position: pos,
					Message:  "malformed //lint:ignore: need an analyzer name and a reason",
				})
				continue
			}
			out = append(out, ignoreDirective{
				line:      fset.Position(c.End()).Line,
				analyzers: strings.Split(fields[0], ","),
			})
		}
	}
	return out
}

func (d ignoreDirective) matches(analyzer string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == "*" || a == analyzer {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages, applying scope, policy and
// //lint:ignore suppression. Diagnostics come back sorted by position.
// The returned error reports analyzer failures, not findings.
func Run(pkgs []*Package, analyzers []*Analyzer, policy *Policy, relPath func(string) string) ([]Diagnostic, error) {
	if policy == nil {
		policy = &Policy{}
	}
	fileRel := func(pos token.Position) string { return relPath(pos.Filename) }

	var diags []Diagnostic
	for _, pkg := range pkgs {
		// Ignore directives are analyzer-independent; collect once per file.
		var ignores []ignoreDirective
		for _, f := range pkg.Files {
			ignores = append(ignores, parseIgnores(pkg.Fset, f, func(d Diagnostic) {
				diags = append(diags, d)
			})...)
		}
		for _, a := range analyzers {
			inScope := a.AppliesTo(pkg.Path)
			if !inScope && !anyFileDenied(a, pkg, policy, relPath) {
				continue
			}
			var raw []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				RelPath:  relPath,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range raw {
				rel := fileRel(d.Position)
				// Out-of-scope packages only report in policy-denied files.
				if !inScope && !policy.Denies(a.Name, rel) {
					continue
				}
				if policy.Allows(a.Name, rel) {
					continue
				}
				if suppressed(ignores, d) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func suppressed(ignores []ignoreDirective, d Diagnostic) bool {
	for _, ig := range ignores {
		if ig.matches(d.Analyzer, d.Position.Line) {
			return true
		}
	}
	return false
}

// anyFileDenied reports whether a policy "deny" rule drags any of the
// package's files into a scoped analyzer's reach.
func anyFileDenied(a *Analyzer, pkg *Package, policy *Policy, relPath func(string) string) bool {
	for _, f := range pkg.Files {
		if policy.Denies(a.Name, relPath(pkg.Fset.Position(f.Pos()).Filename)) {
			return true
		}
	}
	return false
}
