package analyzers

import (
	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/dataflow"
)

// Hotalloc keeps the //tmlint:hotpath functions — the PR 2 slack probes
// and PR 4 executor inner loops whose 0 allocs/op the benchmarks assert —
// free of allocating constructs: map/slice literals, make/new, append
// whose result escapes its source, closures capturing outer variables, and
// concrete→interface boxing at call sites. Callees are checked one level
// deep: a hotpath function calling a helper that allocates is reported at
// the call site (//lint:ignore hotalloc on the helper's line declassifies
// it everywhere, so amortized warm-ups stay allowed with one reason).
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "//tmlint:hotpath functions must not allocate (literals, make/new, " +
		"escaping append, capturing closures, interface boxing), callees checked depth-1",
	Run: runHotalloc,
}

func runHotalloc(pass *analysis.Pass) error {
	prog, err := dataflow.Get(pass)
	if err != nil {
		return err
	}
	for _, fn := range prog.FuncsIn(pass.Pkg.Path()) {
		if !fn.Hotpath {
			continue
		}
		for _, a := range prog.AllocsOf(fn) {
			pass.Reportf(a.Pos, "hotpath function %s allocates: %s", fn.Name(), a.What)
		}
		for _, c := range fn.Calls {
			callee := prog.FuncAt(c.Callee)
			if callee == nil || callee.Hotpath {
				// Hotpath callees are reported on their own declarations.
				continue
			}
			if allocs := prog.AllocsOf(callee); len(allocs) > 0 {
				pass.Reportf(c.Site.Pos(), "hotpath function %s calls %s, which allocates (%s)",
					fn.Name(), callee.Name(), allocs[0].What)
			}
		}
	}
	return nil
}
