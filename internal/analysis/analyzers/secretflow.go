package analyzers

import (
	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/dataflow"
)

// Secretflow enforces the non-escape of ring-signature secrets. Values
// derived from //tmlint:secret fields, parameters or results (the ringsig
// private scalar, per-signature nonces) must never flow into fmt/log/slog
// formatting, encoding/json, errors.New/fmt.Errorf, or obs metric labels —
// the side channels CoinMagic-style analyses exploit to collapse ring
// anonymity. Flows are tracked across module-local calls via per-function
// taint summaries, so passing a secret to a helper that logs it is
// reported at the call site.
var Secretflow = &analysis.Analyzer{
	Name: "secretflow",
	Doc: "secret-derived values (//tmlint:secret) must not reach fmt/log/slog, " +
		"encoding/json, error construction or obs metric labels, across calls",
	Scope: []string{
		"tokenmagic/internal/ringsig",
		"tokenmagic/internal/wallet",
		"tokenmagic/internal/tokenmagic",
		"tokenmagic/internal/node",
		"tokenmagic/internal/nodesvc",
		"tokenmagic/internal/batchsvc",
	},
	Run: runSecretflow,
}

func runSecretflow(pass *analysis.Pass) error {
	prog, err := dataflow.Get(pass)
	if err != nil {
		return err
	}
	for _, f := range prog.Taint() {
		if f.PkgPath == pass.Pkg.Path() {
			pass.Reportf(f.Pos, "%s", f.Message)
		}
	}
	return nil
}
