package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"tokenmagic/internal/analysis"
)

// Atomiccheck flags mixed atomic and plain access to the same variable,
// modelled on internal/obs: once any code touches a field through
// sync/atomic (atomic.AddInt64(&s.n, 1)), every other access in the package
// must be atomic too, or the happens-before edges the snapshot API depends
// on silently vanish. Fields of the atomic.* value types (atomic.Int64,
// atomic.Pointer) are safe by construction and never flagged.
var Atomiccheck = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc:  "flag variables accessed both through sync/atomic and directly in the same package",
	Run:  runAtomiccheck,
}

func runAtomiccheck(pass *analysis.Pass) error {
	atomicObjs := make(map[*types.Var]token.Position)
	// Identifier positions consumed by &x arguments of atomic calls; these
	// are the sanctioned uses and must not count as plain accesses.
	sanctioned := make(map[token.Pos]bool)

	// Pass 1: find atomic call sites and the variables they target.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if !pkgFunc(fn, "sync/atomic") || len(call.Args) == 0 {
				return true
			}
			unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			id := targetIdent(unary.X)
			if id == nil {
				return true
			}
			v, ok := pass.Info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if _, seen := atomicObjs[v]; !seen {
				atomicObjs[v] = pass.Fset.Position(call.Pos())
			}
			sanctioned[id.Pos()] = true
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: every other use of those variables must be atomic.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id.Pos()] {
				return true
			}
			v, ok := pass.Info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if first, hot := atomicObjs[v]; hot {
				pass.Reportf(id.Pos(),
					"%s is accessed atomically at %s but plainly here: mixed access drops the atomicity guarantee",
					id.Name, shortPos(first))
			}
			return true
		})
	}
	return nil
}

// targetIdent returns the identifier naming the addressed variable: the
// field of a selector chain (&s.n) or a bare identifier (&n).
func targetIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// shortPos renders a position as base-filename:line for compact messages.
func shortPos(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
