package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"tokenmagic/internal/analysis"
)

// Tracecheck enforces the span lifecycle idiom of internal/obs/trace: every
// trace.StartSpan / trace.StartChild call must bind its span result to a
// local variable and end it on every path of the same function — `defer sp.End()` directly, or one
// `sp.End()` inside a deferred func literal (the form used when the deferred
// closure also annotates the outcome). A span that is discarded, shadowed
// into the blank identifier, or only ended on the fall-through path leaks an
// unfinished span: the trace never reaches the collector and the stage's
// latency silently vanishes from /debug/traces and the stage histograms.
var Tracecheck = &analysis.Analyzer{
	Name: "tracecheck",
	Doc: "trace.StartSpan/StartChild results must be bound and ended via defer " +
		"(sp.End() directly or inside one deferred func literal) in the " +
		"same function, so every span reaches the collector on every path",
	Scope: []string{
		"tokenmagic/internal/selector",
		"tokenmagic/internal/tokenmagic",
		"tokenmagic/internal/ringsig",
		"tokenmagic/internal/node",
		"tokenmagic/internal/nodesvc",
		"tokenmagic/internal/batchsvc",
		"tokenmagic/internal/obs",
		"tokenmagic/internal/wallet",
	},
	Run: runTracecheck,
}

func runTracecheck(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			checkSpanLifecycles(pass, name, body)
		})
	}
	return nil
}

// spanStart returns the name of the span-opening function the call invokes
// — trace.StartSpan or trace.StartChild of the project's trace package
// (matched by path suffix so golden fixtures loaded under synthetic import
// paths still resolve the real package) — or "" for any other call.
func spanStart(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || (fn.Name() != "StartSpan" && fn.Name() != "StartChild") {
		return ""
	}
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "/internal/obs/trace") {
		return ""
	}
	return fn.Name()
}

// checkSpanLifecycles verifies each StartSpan in body (excluding nested
// function literals — separate scopes, checked on their own) against the
// bind-and-defer-End idiom.
func checkSpanLifecycles(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	// Pass 1: find every span-start call and the object its span binds to.
	type spanUse struct {
		call *ast.CallExpr
		fn   string
		obj  types.Object // nil when the result is discarded
	}
	var spans []spanUse
	walkShallow(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if ok && len(assign.Rhs) == 1 {
			if call, isCall := assign.Rhs[0].(*ast.CallExpr); isCall {
				if fn := spanStart(pass.Info, call); fn != "" {
					spans = append(spans, spanUse{call: call, fn: fn, obj: spanBinding(pass.Info, assign)})
					return true
				}
			}
		}
		if expr, ok := n.(*ast.ExprStmt); ok {
			if call, isCall := expr.X.(*ast.CallExpr); isCall {
				if fn := spanStart(pass.Info, call); fn != "" {
					spans = append(spans, spanUse{call: call, fn: fn})
				}
			}
		}
		return true
	})
	if len(spans) == 0 {
		return
	}

	// Pass 2: collect the span objects that some defer in this body ends.
	ended := make(map[types.Object]bool)
	walkShallow(body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if obj := endReceiver(pass.Info, def.Call); obj != nil {
			ended[obj] = true // defer sp.End()
			return true
		}
		if lit, ok := def.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...; sp.End() }(): End anywhere in the literal.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := endReceiver(pass.Info, call); obj != nil {
						ended[obj] = true
					}
				}
				return true
			})
		}
		return true
	})

	for _, s := range spans {
		switch {
		case s.obj == nil:
			pass.Reportf(s.call.Pos(), "%s: span returned by trace.%s is discarded; bind it and defer its End", name, s.fn)
		case !ended[s.obj]:
			pass.Reportf(s.call.Pos(), "%s: span %q is not ended on every path; defer %s.End() (directly or in one deferred func literal) in this function", name, s.obj.Name(), s.obj.Name())
		}
	}
}

// spanBinding returns the object the assignment binds StartSpan's span
// result (the last LHS) to, or nil when it is blank or not a plain
// identifier.
func spanBinding(info *types.Info, assign *ast.AssignStmt) types.Object {
	if len(assign.Lhs) == 0 {
		return nil
	}
	id, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id] // `=` rebinding an existing variable
}

// endReceiver returns the object of x in a call `x.End()` against the trace
// package's span types, or nil when the call is anything else.
func endReceiver(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "/internal/obs/trace") {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}
