package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"tokenmagic/internal/analysis"
)

// Errdrop flags calls whose error result is silently discarded — a call
// used as a bare expression statement while its signature includes an
// error. In the serving layer a dropped encode/write error hides exactly
// the partial-response bugs the observability layer exists to count.
//
// Deliberate discards stay available and visible: assign the error to _
// ("_ = enc.Encode(v)"), which the analyzer treats as an explicit
// annotation. `go` and `defer` statements are exempt (errors there are
// unobtainable without restructuring), as are fmt's stdout printers and
// the never-failing bytes.Buffer / strings.Builder writers.
var Errdrop = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flag expression-statement calls that discard an error result (outside tests)",
	Run:  runErrdrop,
}

// errdropExactAllowed lists receiver-less functions whose errors are
// conventionally ignored.
var errdropExactAllowed = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// errdropPrefixAllowed lists method prefixes (types.Func.FullName form)
// that are documented never to return a non-nil error.
var errdropPrefixAllowed = []string{
	"(*bytes.Buffer).",
	"(*strings.Builder).",
}

func errdropAllowed(info *types.Info, fn *types.Func, call *ast.CallExpr) bool {
	if fn == nil {
		return false
	}
	full := fn.FullName()
	if errdropExactAllowed[full] {
		return true
	}
	for _, p := range errdropPrefixAllowed {
		if strings.HasPrefix(full, p) {
			return true
		}
	}
	// fmt.Fprint* straight to the process's stdout/stderr is conventional;
	// the same call against a file or network writer is still a finding.
	switch full {
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		return len(call.Args) > 0 && isStdStream(info, call.Args[0])
	}
	return false
}

// isStdStream reports whether e denotes os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == "os" &&
		(v.Name() == "Stdout" || v.Name() == "Stderr")
}

func runErrdrop(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass.Info, call) {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if errdropAllowed(pass.Info, fn, call) {
				return true
			}
			name := "call"
			if fn != nil {
				name = fn.FullName()
			}
			pass.Reportf(stmt.Pos(),
				"%s returns an error that is discarded: handle it, count it in obs, or assign it to _ explicitly",
				name)
			return true
		})
	}
	return nil
}
