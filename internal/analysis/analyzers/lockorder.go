package analyzers

import (
	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/dataflow"
)

// Lockorder builds the whole-program lock-acquisition graph (locks
// identified by their declaring struct field or package-level variable)
// and reports order cycles, cross-function re-entry, and
// Lock-while-holding-RLock paths — the deadlock classes the PR 4 mutex
// growth (Framework.mu, decompMu, refreshMu, the service RWMutexes) risks.
// Acquisitions made inside module-local callees count via MayAcquire
// summaries, so an inconsistent order split across two functions is still
// caught.
var Lockorder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "consistent lock acquisition order across functions: no cycles, no " +
		"re-entry through callees, no RLock→Lock upgrades",
	Scope: []string{
		"tokenmagic/internal/tokenmagic",
		"tokenmagic/internal/batchsvc",
		"tokenmagic/internal/nodesvc",
		"tokenmagic/internal/obs",
	},
	Run: runLockorder,
}

func runLockorder(pass *analysis.Pass) error {
	prog, err := dataflow.Get(pass)
	if err != nil {
		return err
	}
	for _, f := range prog.LockOrderFindings() {
		if f.PkgPath == pass.Pkg.Path() {
			pass.Reportf(f.Pos, "%s", f.Message)
		}
	}
	return nil
}
