package analyzers

import (
	"go/ast"

	"tokenmagic/internal/analysis"
)

// Determinism keeps the solver hot loops and the simulator reproducible:
// differential tests (engine vs from-scratch model), solver-equivalence
// tests and the benchmark figures all assume a fixed seed replays
// byte-identically. Inside internal/sim, internal/selector,
// internal/diversity and internal/dtrs it forbids wall-clock reads
// (time.Now / time.Since) and draws from math/rand's process-global source
// (auto-seeded since Go 1.20, so nondeterministic across runs).
// Constructing a generator from an explicit seed (rand.New(rand.NewSource))
// and using an injected *rand.Rand both remain allowed.
//
// internal/bench and internal/workload are in scope too: their workload
// generation must replay byte-identically from a seed. The latency
// stopwatches in bench carry per-file policy allows — measured wall time IS
// the benchmark's output there, not an input to any decision.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now and global math/rand in internal/sim and the " +
		"solver hot loops so benchmarks and differential tests stay reproducible",
	Scope: []string{
		"tokenmagic/internal/sim",
		"tokenmagic/internal/selector",
		"tokenmagic/internal/diversity",
		"tokenmagic/internal/dtrs",
		"tokenmagic/internal/bench",
		"tokenmagic/internal/workload",
	},
	Run: runDeterminism,
}

// deterministicRandFuncs are the math/rand package-level functions that do
// not draw from the global source.
var deterministicRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2 explicit-seed constructors
	"NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			switch {
			case pkgFunc(fn, "time") && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
				pass.Reportf(call.Pos(),
					"time.%s in a deterministic package: take timestamps outside the solver/sim layer",
					fn.Name())
			case (pkgFunc(fn, "math/rand") || pkgFunc(fn, "math/rand/v2")) && !deterministicRandFuncs[fn.Name()]:
				pass.Reportf(call.Pos(),
					"%s.%s draws from the auto-seeded global source: thread a seeded *rand.Rand through instead",
					fn.Pkg().Path(), fn.Name())
			}
			return true
		})
	}
	return nil
}
