package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/cfg"
	"tokenmagic/internal/analysis/dataflow"
)

// Lockcheck enforces the lock discipline of the PR 1/PR 2 hot paths
// (Framework.decompFor, the batchsvc RWMutex, the obs registry): every
// Lock/RLock must be released on every path to the function's exit, read
// locks must not be upgraded in place, and mutexes must not be copied by
// value.
//
// Release coverage is path-sensitive over the per-function CFG: an inline
// Unlock clears the hold only on the paths through it, a defer counts only
// on the paths that reach its declaration (a defer inside a loop body does
// NOT cover the zero-iteration path), and a call to a module-local helper
// counts as a release only when the dataflow net-release summary proves the
// helper releases the same lock on every one of ITS paths — a conditional
// Unlock in a callee is reported instead of silently trusted. Checks:
//
//  1. an acquire with no release of any kind (inline, helper, or defer)
//     anywhere in the function;
//  2. a return statement reachable while the lock is held and no deferred
//     release is registered on that path;
//  3. a path that falls off the end of the function still holding the lock
//     (e.g. the release or defer sits inside a branch or loop body);
//  4. a call to a helper that releases the held lock only on some of its
//     paths;
//  5. an RLock followed by a Lock on the same mutex with no intervening
//     RUnlock — the classic RWMutex self-deadlocking upgrade;
//  6. a sync.Mutex / sync.RWMutex received or returned by value.
var Lockcheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "Lock/RLock released on every path (CFG-based, helper-release " +
		"aware), no in-place RWMutex upgrades, no mutexes copied by value",
	Run: runLockcheck,
}

type lockEventKind int

const (
	evLock lockEventKind = iota
	evUnlock
	evRLock
	evRUnlock
)

type lockEvent struct {
	kind lockEventKind
	pos  token.Pos
}

// lockMethods maps method names to event kinds.
var lockMethods = map[string]lockEventKind{
	"Lock":    evLock,
	"Unlock":  evUnlock,
	"RLock":   evRLock,
	"RUnlock": evRUnlock,
}

// isMutexMethod reports whether the call selects one of sync's locking
// methods (directly, through an embedded mutex, or via sync.Locker). The
// returned key is the receiver's source form; recv is the receiver
// expression itself, for cross-function lock identity resolution.
func isMutexMethod(info *types.Info, call *ast.CallExpr) (key string, recv ast.Expr, kind lockEventKind, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, 0, false
	}
	kind, named := lockMethods[sel.Sel.Name]
	if !named {
		return "", nil, 0, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", nil, 0, false
	}
	full := fn.FullName()
	if !strings.HasPrefix(full, "(*sync.Mutex).") &&
		!strings.HasPrefix(full, "(*sync.RWMutex).") &&
		!strings.HasPrefix(full, "(sync.Locker).") {
		return "", nil, 0, false
	}
	return types.ExprString(sel.X), sel.X, kind, true
}

func runLockcheck(pass *analysis.Pass) error {
	prog, err := dataflow.Get(pass)
	if err != nil {
		return err
	}
	for _, f := range pass.Files {
		checkMutexByValue(pass, f)
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkLockPairing(pass, prog, name, body)
		})
	}
	return nil
}

// checkMutexByValue flags sync.Mutex/RWMutex in by-value parameter or
// result positions (go vet's copylocks catches assignments; this catches
// the signatures that invite them).
func checkMutexByValue(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ft, ok := n.(*ast.FuncType)
		if !ok {
			return true
		}
		check := func(fl *ast.FieldList, what string) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				t := pass.Info.TypeOf(field.Type)
				if t == nil {
					continue
				}
				if named, ok := t.(*types.Named); ok {
					obj := named.Obj()
					if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
						(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
						pass.Reportf(field.Pos(), "sync.%s %s by value copies the lock: use a pointer", obj.Name(), what)
					}
				}
			}
		}
		check(ft.Params, "passed")
		check(ft.Results, "returned")
		return true
	})
}

// checkLockPairing runs the per-mutex checks over one function body (nested
// function literals are separate scopes): the linear source-order upgrade
// scan, plus the CFG path analysis per acquire/release verb pair.
func checkLockPairing(pass *analysis.Pass, prog *dataflow.Program, name string, body *ast.BlockStmt) {
	events := make(map[string][]lockEvent) // mutex expr → ordered non-deferred events
	recvs := make(map[string]ast.Expr)     // mutex expr → receiver expression
	var keys []string                      // first-seen order for deterministic reports

	record := func(key string, recv ast.Expr, ev lockEvent) {
		if _, seen := events[key]; !seen {
			keys = append(keys, key)
			recvs[key] = recv
		}
		events[key] = append(events[key], ev)
	}

	walkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred releases run at exit, not in source order; the CFG
			// analysis accounts for them path-sensitively.
			return false
		case *ast.CallExpr:
			if key, recv, kind, ok := isMutexMethod(pass.Info, n); ok {
				record(key, recv, lockEvent{kind: kind, pos: n.Pos()})
			}
		}
		return true
	})
	if len(keys) == 0 {
		return
	}

	g := cfg.New(body)
	for _, key := range keys {
		id := dataflow.LockIdentity(pass.Info, recvs[key])
		for _, pair := range [...]struct {
			acq, rel         lockEventKind
			acqName, relName string
		}{
			{evLock, evUnlock, "Lock", "Unlock"},
			{evRLock, evRUnlock, "RLock", "RUnlock"},
		} {
			c := &pairChecker{
				pass: pass, prog: prog, fn: name, key: key, id: id,
				acq: pair.acq, rel: pair.rel,
				acqName: pair.acqName, relName: pair.relName,
			}
			c.run(g)
		}
		checkUpgrade(pass, key, events[key])
	}
}

// lcEffectKind classifies how one statement affects a (mutex, verb pair).
type lcEffectKind int

const (
	effAcquire      lcEffectKind = iota
	effRelease                   // inline release, or unconditional helper release
	effDeferRelease              // deferred release registered on this path
	effCondHelper                // helper releasing only on some of ITS paths
	effReturn
)

type lcEffect struct {
	kind   lcEffectKind
	pos    token.Pos
	helper string // callee name, for effCondHelper
}

// lcState is the per-path state: the position of the outstanding acquire
// (NoPos when the lock is not held) and whether a deferred release is
// registered on this path.
type lcState struct {
	acquiredAt token.Pos
	covered    bool
}

// pairChecker runs the path-sensitive release-coverage analysis for one
// mutex and one acquire/release verb pair.
type pairChecker struct {
	pass     *analysis.Pass
	prog     *dataflow.Program
	fn       string
	key      string
	id       string // cross-function lock identity; "" for locals
	acq, rel lockEventKind
	acqName  string
	relName  string

	effects      map[ast.Stmt][]lcEffect
	hasAcquire   bool
	hasRelease   bool // inline, helper (uncond or cond) — any release-shaped event
	hasDefer     bool
	firstAcquire token.Pos

	reported map[string]bool
}

func (c *pairChecker) run(g *cfg.Graph) {
	c.effects = make(map[ast.Stmt][]lcEffect)
	c.reported = make(map[string]bool)
	for _, b := range g.Blocks {
		for _, stmt := range b.Stmts {
			if effs := c.extract(stmt); len(effs) > 0 {
				c.effects[stmt] = effs
			}
		}
	}
	if !c.hasAcquire {
		return
	}
	if !c.hasRelease && !c.hasDefer {
		c.pass.Reportf(c.firstAcquire, "%s: %s.%s() is never released in %s (no %s, no defer)",
			c.fn, c.key, c.acqName, c.fn, c.relName)
		return
	}

	// Forward fixpoint: the set of lcStates reaching each block. The state
	// space per pair is tiny (acquire sites × covered flag), so a simple
	// worklist converges quickly.
	in := make(map[*cfg.Block]map[lcState]bool)
	in[g.Entry] = map[lcState]bool{{}: true}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := make(map[lcState]bool)
		for s := range in[b] {
			out[c.applyBlock(b, s, nil)] = true
		}
		for _, succ := range b.Succs {
			if in[succ] == nil {
				in[succ] = make(map[lcState]bool)
			}
			changed := false
			for s := range out {
				if !in[succ][s] {
					in[succ][s] = true
					changed = true
				}
			}
			if changed {
				work = append(work, succ)
			}
		}
	}

	// Reporting pass over the converged states, deterministic in block and
	// state order. Leaks fall into three shapes: a return while held with no
	// covering defer, a conditional helper release, and a fall-off-the-end
	// path still holding the lock.
	for _, b := range g.Blocks {
		if len(in[b]) == 0 {
			continue // unreachable
		}
		for _, s := range sortedStates(in[b]) {
			out := c.applyBlock(b, s, c.emit)
			if !exitsByFalling(b, g) {
				continue
			}
			if out.acquiredAt != token.NoPos && !out.covered {
				c.reportf(out.acquiredAt, "%s: %s.%s() is not released on every path in %s (release it before every return or defer it at the acquire)",
					c.fn, c.key, c.acqName, c.fn)
			}
		}
	}
}

// applyBlock folds the block's statement effects into the path state; emit
// (when non-nil) fires for leak-shaped effects.
func (c *pairChecker) applyBlock(b *cfg.Block, s lcState, emit func(lcEffect, lcState)) lcState {
	for _, stmt := range b.Stmts {
		for _, e := range c.effects[stmt] {
			switch e.kind {
			case effAcquire:
				s.acquiredAt = e.pos
			case effRelease:
				s = lcState{}
			case effDeferRelease:
				s.covered = true
			case effCondHelper:
				if s.acquiredAt != token.NoPos && !s.covered {
					if emit != nil {
						emit(e, s)
					}
					// Treat as released afterwards so one conditional helper
					// does not cascade into return/fall-off reports too.
					s = lcState{}
				}
			case effReturn:
				if s.acquiredAt != token.NoPos && !s.covered {
					if emit != nil {
						emit(e, s)
					}
				}
			}
		}
	}
	return s
}

func (c *pairChecker) emit(e lcEffect, s lcState) {
	switch e.kind {
	case effReturn:
		c.reportf(e.pos, "return while %s is held by %s() above (no defer %s.%s())",
			c.key, c.acqName, c.key, c.relName)
	case effCondHelper:
		c.reportf(e.pos, "call to %s while %s is held: %s releases it only on some of its paths (a conditional release in a callee does not cover every path)",
			e.helper, c.key, e.helper)
	}
}

// reportf deduplicates: the fixpoint can reach the same leak through several
// states, but each (position, message) is one finding.
func (c *pairChecker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	dkey := fmt.Sprintf("%d:%s", pos, msg)
	if c.reported[dkey] {
		return
	}
	c.reported[dkey] = true
	c.pass.Reportf(pos, "%s", msg)
}

// extract computes the ordered pair-relevant effects of one statement.
// Nested function literals are separate scopes and contribute nothing.
func (c *pairChecker) extract(stmt ast.Stmt) []lcEffect {
	var effs []lcEffect
	if d, ok := stmt.(*ast.DeferStmt); ok {
		if key, _, kind, ok := isMutexMethod(c.pass.Info, d.Call); ok {
			if key == c.key && kind == c.rel {
				c.hasDefer = true
				effs = append(effs, lcEffect{kind: effDeferRelease, pos: d.Pos()})
			}
			return effs
		}
		if uncond, _, _ := c.helperRelease(d.Call); uncond {
			c.hasDefer = true
			effs = append(effs, lcEffect{kind: effDeferRelease, pos: d.Pos()})
		}
		return effs
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, _, kind, ok := isMutexMethod(c.pass.Info, call); ok {
			if key != c.key {
				return true
			}
			switch kind {
			case c.acq:
				c.hasAcquire = true
				if c.firstAcquire == token.NoPos || call.Pos() < c.firstAcquire {
					c.firstAcquire = call.Pos()
				}
				effs = append(effs, lcEffect{kind: effAcquire, pos: call.Pos()})
			case c.rel:
				c.hasRelease = true
				effs = append(effs, lcEffect{kind: effRelease, pos: call.Pos()})
			}
			return true
		}
		switch uncond, cond, name := c.helperRelease(call); {
		case uncond:
			c.hasRelease = true
			effs = append(effs, lcEffect{kind: effRelease, pos: call.Pos()})
		case cond:
			c.hasRelease = true
			effs = append(effs, lcEffect{kind: effCondHelper, pos: call.Pos(), helper: name})
		}
		return true
	})
	if ret, ok := stmt.(*ast.ReturnStmt); ok {
		effs = append(effs, lcEffect{kind: effReturn, pos: ret.Pos()})
	}
	return effs
}

// helperRelease consults the dataflow net-release summary: does this call
// release the checker's lock, and on every one of the callee's paths or only
// some? Identity-less locals and non-module callees resolve to (false, false).
func (c *pairChecker) helperRelease(call *ast.CallExpr) (uncond, cond bool, name string) {
	if c.prog == nil || c.id == "" {
		return false, false, ""
	}
	callee := dataflow.CalleeOf(c.pass.Info, call)
	if callee == nil {
		return false, false, ""
	}
	nr := c.prog.NetReleasesOf(callee)
	if nr == nil {
		return false, false, ""
	}
	want := dataflow.OpUnlock
	if c.rel == evRUnlock {
		want = dataflow.OpRUnlock
	}
	if op, ok := nr.Uncond[c.id]; ok && op == want {
		return true, false, callee.Name()
	}
	if op, ok := nr.Cond[c.id]; ok && op == want {
		return false, true, callee.Name()
	}
	return false, false, ""
}

// exitsByFalling reports whether b reaches Exit other than through a return
// statement — falling off the end of the function (or an unresolved goto).
func exitsByFalling(b *cfg.Block, g *cfg.Graph) bool {
	toExit := false
	for _, s := range b.Succs {
		if s == g.Exit {
			toExit = true
			break
		}
	}
	if !toExit {
		return false
	}
	if n := len(b.Stmts); n > 0 {
		if _, isRet := b.Stmts[n-1].(*ast.ReturnStmt); isRet {
			return false
		}
	}
	return true
}

func sortedStates(set map[lcState]bool) []lcState {
	out := make([]lcState, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].acquiredAt != out[j].acquiredAt {
			return out[i].acquiredAt < out[j].acquiredAt
		}
		return !out[i].covered && out[j].covered
	})
	return out
}

// checkUpgrade flags RLock → Lock on the same mutex without an intervening
// RUnlock: sync.RWMutex is not upgradeable, so this self-deadlocks. A
// deferred RUnlock does not help — it runs after the Lock.
func checkUpgrade(pass *analysis.Pass, key string, evs []lockEvent) {
	for i, ev := range evs {
		if ev.kind != evRLock {
			continue
		}
		for _, later := range evs[i+1:] {
			if later.kind == evRUnlock {
				break
			}
			if later.kind == evLock {
				pass.Reportf(later.pos, "%s.Lock() while the read lock from %s.RLock() is still held: RWMutex cannot be upgraded (self-deadlock)",
					key, key)
				return
			}
		}
	}
}
