package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tokenmagic/internal/analysis"
)

// Lockcheck enforces the lock discipline of the PR 1/PR 2 hot paths
// (Framework.decompFor, the batchsvc RWMutex, the obs registry): every
// Lock/RLock must be released on every return path, read locks must not be
// upgraded in place, and mutexes must not be copied by value.
//
// The analysis is intra-procedural and linear in source order — precise
// enough for this codebase's straight-line locking style, and every finding
// it cannot prove wrong must either be fixed or carry a //lint:ignore with
// the proof. Checks:
//
//  1. a Lock (RLock) with no matching Unlock (RUnlock) and no deferred
//     release anywhere in the function;
//  2. a return statement between a Lock (RLock) and its first subsequent
//     release, with no deferred release covering it;
//  3. an RLock followed by a Lock on the same mutex with no intervening
//     RUnlock — the classic RWMutex self-deadlocking upgrade;
//  4. a sync.Mutex / sync.RWMutex received or returned by value.
var Lockcheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "Lock/RLock released on every return path, no in-place RWMutex " +
		"upgrades, no mutexes copied by value",
	Run: runLockcheck,
}

type lockEventKind int

const (
	evLock lockEventKind = iota
	evUnlock
	evRLock
	evRUnlock
	evReturn
)

type lockEvent struct {
	kind lockEventKind
	pos  token.Pos
}

// lockMethods maps method names to event kinds.
var lockMethods = map[string]lockEventKind{
	"Lock":    evLock,
	"Unlock":  evUnlock,
	"RLock":   evRLock,
	"RUnlock": evRUnlock,
}

// isMutexMethod reports whether the call selects one of sync's locking
// methods (directly, through an embedded mutex, or via sync.Locker).
func isMutexMethod(info *types.Info, call *ast.CallExpr) (key string, kind lockEventKind, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	kind, named := lockMethods[sel.Sel.Name]
	if !named {
		return "", 0, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", 0, false
	}
	full := fn.FullName()
	if !strings.HasPrefix(full, "(*sync.Mutex).") &&
		!strings.HasPrefix(full, "(*sync.RWMutex).") &&
		!strings.HasPrefix(full, "(sync.Locker).") {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

func runLockcheck(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkMutexByValue(pass, f)
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkLockPairing(pass, name, body)
		})
	}
	return nil
}

// checkMutexByValue flags sync.Mutex/RWMutex in by-value parameter or
// result positions (go vet's copylocks catches assignments; this catches
// the signatures that invite them).
func checkMutexByValue(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ft, ok := n.(*ast.FuncType)
		if !ok {
			return true
		}
		check := func(fl *ast.FieldList, what string) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				t := pass.Info.TypeOf(field.Type)
				if t == nil {
					continue
				}
				if named, ok := t.(*types.Named); ok {
					obj := named.Obj()
					if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
						(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
						pass.Reportf(field.Pos(), "sync.%s %s by value copies the lock: use a pointer", obj.Name(), what)
					}
				}
			}
		}
		check(ft.Params, "passed")
		check(ft.Results, "returned")
		return true
	})
}

// checkLockPairing runs the linear per-mutex event checks over one function
// body (nested function literals are separate scopes).
func checkLockPairing(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	events := make(map[string][]lockEvent) // mutex expr → ordered events
	deferred := make(map[string]map[lockEventKind]bool)
	var keys []string // first-seen order for deterministic reports

	record := func(key string, ev lockEvent) {
		if _, seen := events[key]; !seen {
			keys = append(keys, key)
		}
		events[key] = append(events[key], ev)
	}
	var returns []token.Pos

	walkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if key, kind, ok := isMutexMethod(pass.Info, n.Call); ok {
				if deferred[key] == nil {
					deferred[key] = make(map[lockEventKind]bool)
				}
				deferred[key][kind] = true
			}
			return false // a deferred call runs at exit, not in source order
		case *ast.CallExpr:
			if key, kind, ok := isMutexMethod(pass.Info, n); ok {
				record(key, lockEvent{kind: kind, pos: n.Pos()})
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})

	for _, key := range keys {
		evs := events[key]
		checkOneMutex(pass, name, key, evs, deferred[key], returns, evLock, evUnlock, "Lock", "Unlock")
		checkOneMutex(pass, name, key, evs, deferred[key], returns, evRLock, evRUnlock, "RLock", "RUnlock")
		checkUpgrade(pass, key, evs)
	}
}

// checkOneMutex applies the missing-release and return-while-locked checks
// for one acquire/release verb pair on one mutex.
func checkOneMutex(pass *analysis.Pass, fn, key string, evs []lockEvent, deferred map[lockEventKind]bool,
	returns []token.Pos, acq, rel lockEventKind, acqName, relName string) {
	if deferred[rel] {
		return // a deferred release covers every return path
	}
	var acquires, releases []token.Pos
	for _, ev := range evs {
		switch ev.kind {
		case acq:
			acquires = append(acquires, ev.pos)
		case rel:
			releases = append(releases, ev.pos)
		}
	}
	if len(acquires) == 0 {
		return
	}
	if len(releases) == 0 {
		pass.Reportf(acquires[0], "%s: %s.%s() is never released in %s (no %s, no defer)",
			fn, key, acqName, fn, relName)
		return
	}
	for _, a := range acquires {
		next := token.Pos(-1)
		for _, r := range releases {
			if r > a {
				next = r
				break
			}
		}
		for _, ret := range returns {
			if ret > a && (next == token.Pos(-1) || ret < next) {
				pass.Reportf(ret, "return while %s is held by %s() above (no defer %s.%s())",
					key, acqName, key, relName)
				break // one report per acquire is enough
			}
		}
	}
}

// checkUpgrade flags RLock → Lock on the same mutex without an intervening
// RUnlock: sync.RWMutex is not upgradeable, so this self-deadlocks. A
// deferred RUnlock does not help — it runs after the Lock.
func checkUpgrade(pass *analysis.Pass, key string, evs []lockEvent) {
	for i, ev := range evs {
		if ev.kind != evRLock {
			continue
		}
		for _, later := range evs[i+1:] {
			if later.kind == evRUnlock {
				break
			}
			if later.kind == evLock {
				pass.Reportf(later.pos, "%s.Lock() while the read lock from %s.RLock() is still held: RWMutex cannot be upgraded (self-deadlock)",
					key, key)
				return
			}
		}
	}
}
