package analyzers

import (
	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/dataflow"
)

// Cttime enforces the constant-time discipline on the ring-signature hot
// path. Values derived from //tmlint:secret (the private scalar, signing
// nonces) must never influence timing: no flow into branch/loop/switch
// conditions, slice/array/map indexing, variable-width big.Int encoders
// (Bytes, BitLen, Text, …), or functions annotated //tmlint:vartime (the
// Jacobian fallback, Lim–Lee comb and wNAF verification kernels, which are
// fast precisely because their memory access pattern follows operand
// digits). Flows are tracked flow-sensitively across module-local calls via
// per-function summaries, so passing a secret to a helper that branches on
// it is reported at the call site.
var Cttime = &analysis.Analyzer{
	Name: "cttime",
	Doc: "secret-derived values (//tmlint:secret) must not reach branches, " +
		"indexing, variable-width big.Int methods or //tmlint:vartime calls",
	Scope: []string{
		"tokenmagic/internal/ringsig",
	},
	Run: runCttime,
}

func runCttime(pass *analysis.Pass) error {
	prog, err := dataflow.Get(pass)
	if err != nil {
		return err
	}
	for _, f := range prog.CTTime() {
		if f.PkgPath == pass.Pkg.Path() {
			pass.Reportf(f.Pos, "%s", f.Message)
		}
	}
	return nil
}
