package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/dataflow"
)

// Ctxpoll keeps cancellation latency bounded in the ctx-aware solver
// variants: every outermost loop of a *Ctx/*Context function that can do
// real per-iteration work (it calls a function, or contains a nested loop
// — the ring sweeps and BFS frontiers) must check ctx.Err()/ctx.Done() on
// each iteration, either directly or through a module-local helper that
// polls (selector's cancelled/ctxErr). Loops doing only builtin arithmetic
// are exempt: they are bounded by their input and finish in microseconds.
var Ctxpoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "*Ctx solver loops over rings or BFS frontiers must poll " +
		"ctx.Err()/Done() every iteration, directly or via a polling helper",
	Scope: []string{
		"tokenmagic/internal/selector",
		"tokenmagic/internal/tokenmagic",
		"tokenmagic/internal/dtrs",
	},
	Run: runCtxpoll,
}

func runCtxpoll(pass *analysis.Pass) error {
	prog, err := dataflow.Get(pass)
	if err != nil {
		return err
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !strings.HasSuffix(fn.Name.Name, "Ctx") && !strings.HasSuffix(fn.Name.Name, "Context") {
				continue
			}
			if !hasContextParam(pass.Info, fn) {
				continue
			}
			checkLoops(pass, prog, fn.Name.Name, fn.Body)
		}
	}
	return nil
}

func hasContextParam(info *types.Info, fn *ast.FuncDecl) bool {
	obj, _ := info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if named, ok := sig.Params().At(i).Type().(*types.Named); ok {
			o := named.Obj()
			if o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context" {
				return true
			}
		}
	}
	return false
}

// checkLoops reports every outermost qualifying loop that lacks a poll.
// Nested function literals are separate scopes and are skipped.
func checkLoops(pass *analysis.Pass, prog *dataflow.Program, name string, body *ast.BlockStmt) {
	walkShallow(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody = n.Body
		case *ast.RangeStmt:
			loopBody = n.Body
		default:
			return true
		}
		if qualifiesForPoll(pass.Info, loopBody) && !loopPolls(pass.Info, prog, loopBody) {
			pass.Reportf(n.Pos(), "%s: loop body can run without checking ctx.Err()/ctx.Done(); poll directly or call a helper that polls", name)
		}
		return false // inner loops are the outer loop's responsibility
	})
}

// qualifiesForPoll reports whether the loop can do unbounded per-iteration
// work: it contains a call to a non-builtin function or a nested loop.
func qualifiesForPoll(info *types.Info, body *ast.BlockStmt) bool {
	qualifies := false
	walkShallow(body, func(n ast.Node) bool {
		if qualifies {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			qualifies = true
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			qualifies = true
			return false
		}
		return true
	})
	return qualifies
}

// loopPolls reports whether the loop body observably checks cancellation:
// a direct ctx.Err()/Done() call, or a call to a module-local function
// whose transitive summary polls.
func loopPolls(info *types.Info, prog *dataflow.Program, body *ast.BlockStmt) bool {
	polls := false
	walkShallow(body, func(n ast.Node) bool {
		if polls {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if dataflow.IsDirectPoll(info, call) {
			polls = true
			return false
		}
		if callee := dataflow.CalleeOf(info, call); callee != nil && prog.Polls(callee) {
			polls = true
			return false
		}
		return true
	})
	return polls
}
