// Package analyzers holds tmlint's project-specific checks. Each analyzer
// machine-checks one invariant the paper's guarantees rest on — signer
// randomness quality, lock discipline on the solver hot paths, atomic
// access consistency, error handling in the serving layer, benchmark
// determinism, and the read-only delta-probe contract of PR 2.
package analyzers

import (
	"go/ast"
	"go/types"

	"tokenmagic/internal/analysis"
)

// All returns every analyzer in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Cryptorand,
		Lockcheck,
		Atomiccheck,
		Errdrop,
		Determinism,
		Setmutation,
		Secretflow,
		Lockorder,
		Ctxpoll,
		Hotalloc,
		Tracecheck,
		Cttime,
	}
}

// ByName resolves one analyzer; nil when unknown.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// calleeFunc resolves the *types.Func a call invokes, or nil (builtins,
// conversions, calls through function-typed variables).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pkgFunc reports whether fn is the package-level function pkgPath.name
// (receiver-less).
func pkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether any result of the call carries an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return t != nil && types.Identical(t, errorType)
	}
}

// funcBodies yields every function body of a file — declarations and
// literals — each exactly once, so linear intra-procedural checks never mix
// scopes. The enclosing declaration (nil for literals without one) names
// the report.
func funcBodies(f *ast.File, visit func(name string, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Name.Name, fn.Body)
			}
		case *ast.FuncLit:
			visit("func literal", fn.Body)
		}
		return true
	})
}

// walkShallow walks the statement tree under root but does not descend into
// nested function literals (they are separate scopes).
func walkShallow(root ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return visit(n)
	})
}
