package analyzers

import (
	"go/ast"

	"tokenmagic/internal/analysis"
)

// Cryptorand forbids math/rand in the anonymity-critical paths. The bLSAG
// layer's unlinkability is only as good as its signer randomness (cf.
// "Privacy on the Blockchain: Unique Ring Signatures"), so inside
// internal/ringsig, internal/wallet and the TokenMagic sampling layer any
// call that draws from math/rand's global source — or constructs a
// generator locally — is a finding. Holding an injected *rand.Rand (which
// tokenmagic.New seeds from crypto/rand unless the caller supplies a
// deterministic one for sim/tests) is allowed: the construction site, not
// the use site, is where seed quality is decided.
var Cryptorand = &analysis.Analyzer{
	Name: "cryptorand",
	Doc: "forbid math/rand calls in signing/selection paths " +
		"(internal/ringsig, internal/wallet, internal/tokenmagic); " +
		"randomness must be injected, crypto-seeded by default",
	Scope: []string{
		"tokenmagic/internal/ringsig",
		"tokenmagic/internal/wallet",
		"tokenmagic/internal/tokenmagic",
	},
	Run: runCryptorand,
}

func runCryptorand(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if pkgFunc(fn, "math/rand") || pkgFunc(fn, "math/rand/v2") {
				pass.Reportf(call.Pos(),
					"%s.%s in an anonymity-critical path: use the injected *rand.Rand (crypto-seeded by default) or crypto/rand",
					fn.Pkg().Path(), fn.Name())
			}
			return true
		})
	}
	return nil
}
