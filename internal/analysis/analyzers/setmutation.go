package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"tokenmagic/internal/analysis"
)

// Setmutation machine-checks the PR 2 delta-probe contract: functions that
// document a TokenSet, Histogram or footprint-slice parameter as read-only
// must not mutate it. The contract is declared with a directive in the
// function's doc comment:
//
//	//tmlint:readonly universe txs ns
//
// naming the receiver and/or parameters that are promised untouched. For
// each declared object the analyzer flags, inside that function body:
//
//   - element or index writes (p[i] = v, p[i]++), and delete(p, k);
//   - append(p, ...) — append may clobber the shared backing array even
//     when its result is assigned elsewhere;
//   - calls to mutating methods on the object (Add, AddN, Remove, RemoveN,
//     Reset, Set, Insert, Delete, Clear — the Histogram/TokenSet mutator
//     vocabulary);
//   - handing the object to an in-place stdlib mutator (sort.Slice,
//     sort.Sort, sort.Ints, ...).
//
// Reads, method calls outside the mutator set (the Slack*/Satisfies delta
// probes), and local rebinding of the name all remain allowed.
var Setmutation = &analysis.Analyzer{
	Name: "setmutation",
	Doc: "forbid mutating parameters declared read-only with //tmlint:readonly " +
		"(the TokenSet/Histogram delta-probe contract)",
	Run: runSetmutation,
}

// mutatorMethods is the method vocabulary that mutates a set/histogram.
var mutatorMethods = map[string]bool{
	"Add": true, "AddN": true, "Remove": true, "RemoveN": true,
	"Reset": true, "Set": true, "Insert": true, "Delete": true, "Clear": true,
}

// inPlaceSorters are stdlib functions that reorder their argument.
var inPlaceSorters = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "sort.Ints": true, "sort.Strings": true,
	"sort.Float64s": true, "slices.Sort": true, "slices.SortFunc": true,
	"slices.SortStableFunc": true, "slices.Reverse": true,
}

func runSetmutation(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			names := readonlyNames(fn.Doc)
			if len(names) == 0 {
				continue
			}
			objs := resolveReadonly(pass, fn, names)
			if len(objs) == 0 {
				continue
			}
			checkReadonlyBody(pass, fn, objs)
		}
	}
	return nil
}

// readonlyNames extracts the parameter names declared by //tmlint:readonly
// directives in a doc comment.
func readonlyNames(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var names []string
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//tmlint:readonly"); ok {
			names = append(names, strings.Fields(rest)...)
		}
	}
	return names
}

// resolveReadonly maps directive names to the function's receiver/parameter
// objects, reporting names that match nothing.
func resolveReadonly(pass *analysis.Pass, fn *ast.FuncDecl, names []string) map[*types.Var]string {
	params := make(map[string]*types.Var)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if v, ok := pass.Info.Defs[id].(*types.Var); ok {
					params[id.Name] = v
				}
			}
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)
	objs := make(map[*types.Var]string)
	for _, name := range names {
		v, ok := params[name]
		if !ok {
			pass.Reportf(fn.Pos(), "//tmlint:readonly names %q, which is not a parameter of %s", name, fn.Name.Name)
			continue
		}
		objs[v] = name
	}
	return objs
}

// refersTo reports whether e is (after unwrapping parens and slice
// expressions) an identifier bound to one of the read-only objects.
func refersTo(pass *analysis.Pass, e ast.Expr, objs map[*types.Var]string) (string, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := pass.Info.Uses[x].(*types.Var); ok {
				if name, ro := objs[v]; ro {
					return name, true
				}
			}
			return "", false
		case *ast.SliceExpr:
			e = x.X // p[1:] aliases p's backing array
		default:
			return "", false
		}
	}
}

func checkReadonlyBody(pass *analysis.Pass, fn *ast.FuncDecl, objs map[*types.Var]string) {
	walkShallow(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if name, ro := refersTo(pass, idx.X, objs); ro {
						pass.Reportf(lhs.Pos(), "write to element of read-only parameter %s in %s", name, fn.Name.Name)
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if name, ro := refersTo(pass, idx.X, objs); ro {
					pass.Reportf(n.Pos(), "in-place update of element of read-only parameter %s in %s", name, fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkReadonlyCall(pass, fn, n, objs)
		}
		return true
	})
}

func checkReadonlyCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, objs map[*types.Var]string) {
	// Builtins: delete(p, k) and append(p, ...).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if name, ro := refersTo(pass, call.Args[0], objs); ro {
				switch id.Name {
				case "delete":
					pass.Reportf(call.Pos(), "delete from read-only parameter %s in %s", name, fn.Name.Name)
				case "append":
					pass.Reportf(call.Pos(), "append to read-only parameter %s in %s (may clobber the shared backing array)", name, fn.Name.Name)
				}
			}
		}
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Mutating method on the object itself: p.Add(...).
	if name, ro := refersTo(pass, sel.X, objs); ro && mutatorMethods[sel.Sel.Name] {
		pass.Reportf(call.Pos(), "%s.%s mutates read-only parameter %s in %s", name, sel.Sel.Name, name, fn.Name.Name)
		return
	}
	// In-place stdlib mutators: sort.Slice(p, ...).
	if callee := calleeFunc(pass.Info, call); callee != nil && inPlaceSorters[callee.FullName()] {
		for _, arg := range call.Args {
			if name, ro := refersTo(pass, arg, objs); ro {
				pass.Reportf(call.Pos(), "%s reorders read-only parameter %s in %s", callee.FullName(), name, fn.Name.Name)
			}
		}
	}
}
