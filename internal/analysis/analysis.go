// Package analysis is tmlint's stdlib-only static-analysis framework: a
// package loader / type-checker built on go/parser + go/types (no
// golang.org/x/tools dependency), an Analyzer interface with positioned
// diagnostics, a per-path allow/deny policy, and //lint:ignore suppression.
//
// The framework exists because the repository's correctness properties —
// unlinkability of the ring-signature layer, the recursive (c, ℓ)-diversity
// invariants, the lock and atomic discipline of the PR 1/PR 2 hot paths —
// are exactly the properties that silent drift destroys without failing a
// test. Each analyzer machine-checks one such invariant on every commit; the
// cmd/tmlint binary wires them into CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Analyzer is one named check. Run is invoked once per loaded package that
// the analyzer's scope (plus policy "deny" extensions) selects.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, policy rules and
	// //lint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description shown by `tmlint -list`.
	Doc string
	// Scope restricts the analyzer to packages whose import path equals or
	// is a sub-path of one of these prefixes. Empty means every package.
	// Policy rules with action "deny" extend the scope per file path;
	// rules with action "allow" exempt file paths.
	Scope []string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer's static scope selects the package
// import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || (len(pkgPath) > len(s) && pkgPath[:len(s)] == s && pkgPath[len(s)] == '/') {
			return true
		}
	}
	return false
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// RelPath returns a file path relative to the module root (the form the
	// policy matches against); it falls back to the raw path outside it.
	RelPath func(filename string) string
	// AllPackages is every package loaded for this run (the reported set
	// plus its module-local dependency closure), sorted by import path.
	// Whole-program analyzers build their call graph and summaries from it.
	AllPackages []*Package
	// Shared memoizes run-wide facts (e.g. the dataflow program) across
	// analyzers and packages; it is safe for concurrent passes.
	Shared *Shared

	report func(Diagnostic)
}

// Shared is a run-wide, concurrency-safe memoization table. Whole-program
// analyzers use it so the dataflow program over AllPackages is built once
// per run, not once per (analyzer, package) pass.
type Shared struct {
	mu   sync.Mutex
	vals map[string]any
	errs map[string]error
}

// NewShared returns an empty memoization table.
func NewShared() *Shared {
	return &Shared{vals: make(map[string]any), errs: make(map[string]error)}
}

// Get returns the memoized value for key, invoking build on first use.
// Concurrent callers for the same key serialize; build runs at most once
// (errors are memoized too, so a failed build is not retried).
func (s *Shared) Get(key string, build func() (any, error)) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err, ok := s.errs[key]; ok {
		return nil, err
	}
	if v, ok := s.vals[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		s.errs[key] = err
		return nil, err
	}
	s.vals[key] = v
	return v, nil
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// SortDiagnostics orders findings by file, line, column, analyzer — the
// driver's output order. The cache driver re-sorts after merging replayed
// and fresh diagnostics.
func SortDiagnostics(ds []Diagnostic) { sortDiagnostics(ds) }

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
