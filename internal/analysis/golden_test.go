package analysis_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/analyzers"
)

// sharedLoader caches stdlib type-checking across the golden cases; fixture
// packages are distinguished by the import path they are loaded under.
var sharedLoader *analysis.Loader

func loader(t *testing.T) *analysis.Loader {
	t.Helper()
	if sharedLoader == nil {
		root, err := filepath.Abs("../..")
		if err != nil {
			t.Fatal(err)
		}
		l, err := analysis.NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// wantRe extracts the expectation regexp of a `// want "..."` comment.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hits int
}

// parseWants collects the want expectations of every fixture file in dir.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, m[1], err)
			}
			out = append(out, &want{file: e.Name(), line: line, re: re})
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return out
}

// runFixture loads the fixture directory under the chosen import path and
// runs one analyzer over it (no policy, suppression active).
func runFixture(t *testing.T, dir, importPath, analyzer string) []analysis.Diagnostic {
	t.Helper()
	l := loader(t)
	a := analyzers.ByName(analyzer)
	if a == nil {
		t.Fatalf("unknown analyzer %q", analyzer)
	}
	pkg, err := l.LoadDirAs(dir, importPath)
	if err != nil {
		t.Fatalf("load %s as %s: %v", dir, importPath, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a}, nil, l.RelPath)
	if err != nil {
		t.Fatalf("run %s on %s: %v", analyzer, importPath, err)
	}
	return diags
}

// TestGolden matches each fixture's diagnostics 1:1 against its `// want`
// comments: every want must be hit on its own line, and every diagnostic
// must be wanted. Scoped analyzers get an extra out-of-scope load where the
// same dirty fixture must produce nothing.
func TestGolden(t *testing.T) {
	cases := []struct {
		name       string
		dir        string
		importPath string
		analyzer   string
		outOfScope bool // expect zero findings regardless of wants
	}{
		{name: "cryptorand", dir: "cryptorand",
			importPath: "tokenmagic/internal/ringsig/goldenfix", analyzer: "cryptorand"},
		{name: "cryptorand_out_of_scope", dir: "cryptorand",
			importPath: "tokenmagic/internal/chain/goldenfix", analyzer: "cryptorand", outOfScope: true},
		{name: "determinism", dir: "determinism",
			importPath: "tokenmagic/internal/sim/goldenfix", analyzer: "determinism"},
		{name: "determinism_out_of_scope", dir: "determinism",
			importPath: "tokenmagic/internal/node/goldenfix", analyzer: "determinism", outOfScope: true},
		{name: "errdrop", dir: "errdrop",
			importPath: "tokenmagic/internal/analysis/testdata/errdrop", analyzer: "errdrop"},
		{name: "lockcheck", dir: "lockcheck",
			importPath: "tokenmagic/internal/analysis/testdata/lockcheck", analyzer: "lockcheck"},
		{name: "atomiccheck", dir: "atomiccheck",
			importPath: "tokenmagic/internal/analysis/testdata/atomiccheck", analyzer: "atomiccheck"},
		{name: "setmutation", dir: "setmutation",
			importPath: "tokenmagic/internal/analysis/testdata/setmutation", analyzer: "setmutation"},
		{name: "suppress", dir: "suppress",
			importPath: "tokenmagic/internal/wallet/goldenfix", analyzer: "cryptorand"},
		{name: "secretflow", dir: "secretflow",
			importPath: "tokenmagic/internal/ringsig/secretflowfix", analyzer: "secretflow"},
		{name: "secretflow_out_of_scope", dir: "secretflow",
			importPath: "tokenmagic/internal/chain/secretflowfix", analyzer: "secretflow", outOfScope: true},
		{name: "lockorder", dir: "lockorder",
			importPath: "tokenmagic/internal/tokenmagic/lockorderfix", analyzer: "lockorder"},
		{name: "ctxpoll", dir: "ctxpoll",
			importPath: "tokenmagic/internal/selector/ctxpollfix", analyzer: "ctxpoll"},
		{name: "hotalloc", dir: "hotalloc",
			importPath: "tokenmagic/internal/diversity/hotallocfix", analyzer: "hotalloc"},
		{name: "tracecheck", dir: "tracecheck",
			importPath: "tokenmagic/internal/selector/tracecheckfix", analyzer: "tracecheck"},
		{name: "tracecheck_out_of_scope", dir: "tracecheck",
			importPath: "tokenmagic/internal/chain/tracecheckfix", analyzer: "tracecheck", outOfScope: true},
		{name: "cttime", dir: "cttime",
			importPath: "tokenmagic/internal/ringsig/cttimefix", analyzer: "cttime"},
		{name: "cttime_out_of_scope", dir: "cttime",
			importPath: "tokenmagic/internal/chain/cttimefix", analyzer: "cttime", outOfScope: true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			diags := runFixture(t, dir, tc.importPath, tc.analyzer)

			if tc.outOfScope {
				for _, d := range diags {
					t.Errorf("out-of-scope load produced a finding: %s", d)
				}
				return
			}

			wants := parseWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", dir)
			}
			for _, d := range diags {
				base := filepath.Base(d.Position.Filename)
				matched := false
				for _, w := range wants {
					if w.file == base && w.line == d.Position.Line && w.re.MatchString(d.Message) {
						w.hits++
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if w.hits == 0 {
					t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestMalformedIgnoreDirective checks that a //lint:ignore without a reason
// is itself reported (as analyzer "tmlint") and suppresses nothing. The
// directive line cannot carry a want comment, so this fixture is asserted on
// directly.
func TestMalformedIgnoreDirective(t *testing.T) {
	diags := runFixture(t, filepath.Join("testdata", "malformed"),
		"tokenmagic/internal/ringsig/malformedfix", "cryptorand")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (malformed directive + unsuppressed finding): %v", len(diags), diags)
	}
	if diags[0].Analyzer != "tmlint" || !strings.Contains(diags[0].Message, "malformed //lint:ignore") {
		t.Errorf("first diagnostic should report the malformed directive, got %s", diags[0])
	}
	if diags[1].Analyzer != "cryptorand" {
		t.Errorf("malformed directive must not suppress the finding below it, got %s", diags[1])
	}
}
