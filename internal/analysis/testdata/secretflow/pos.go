// Fixture for secretflow: secret-annotated values must not reach
// formatting, JSON, error-construction or metric-label sinks, including
// through module-local helpers (cross-function cases).
package secretflowfix

import (
	"context"
	"fmt"
	"log"
	"math/big"

	"tokenmagic/internal/obs/trace"
)

// Key mirrors ringsig.PrivateKey: the scalar is secret, the public half
// is not.
type Key struct {
	//tmlint:secret
	D *big.Int
	// Pub is public by construction.
	Pub string
	// Seed is the wallet's deterministic-key seed — also secret.
	//tmlint:secret
	Seed string
}

func logKey(k *Key) {
	fmt.Printf("key=%v\n", k.D) // want "secret value flows into fmt.Printf"
}

// dumpScalar is the leaky helper: its parameter reaches log.Printf, so the
// summary records param 0 → log.Printf.
func dumpScalar(x *big.Int) {
	log.Printf("scalar=%v", x)
}

// leakViaHelper is the cross-function case: the secret field flows into a
// sink inside the callee, reported here at the call site.
func leakViaHelper(k *Key) {
	dumpScalar(k.D) // want "secret value flows into log.Printf via call to dumpScalar"
}

// newNonce mirrors ringsig.randScalar: its result is a secret.
//
//tmlint:secret
func newNonce() *big.Int { return big.NewInt(7) }

func leakNonce() error {
	n := newNonce()
	return fmt.Errorf("nonce %v", n) // want "secret value flows into fmt.Errorf"
}

// mix demonstrates the named-parameter directive form.
//
//tmlint:secret alpha
func mix(alpha *big.Int, c int) {
	_ = c
	fmt.Println(alpha) // want "secret value flows into fmt.Println"
}

// assigned taint follows simple def-use chains.
func leakViaLocal(k *Key) {
	x := k.D
	y := x
	log.Println(y) // want "secret value flows into log.Println"
}

// leakAnnotate publishes a secret as a span annotation: /debug/traces and
// debug logs would expose it over HTTP.
func leakAnnotate(ctx context.Context, k *Key) {
	_, sp := trace.StartSpan(ctx, "sign")
	defer sp.End()
	sp.Annotate("seed", k.Seed) // want "secret value flows into trace span annotation .Annotate."
}
