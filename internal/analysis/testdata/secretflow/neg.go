package secretflowfix

import (
	"crypto/sha256"
	"fmt"
	"math/big"
)

// okPublic: the non-secret field may be logged freely.
func okPublic(k *Key) {
	fmt.Println(k.Pub)
}

// okBlinded: arithmetic through math/big is a declassification boundary —
// the published ring scalar s = α − c·x is clean by construction, exactly
// like ringsig.Sign's published response.
func okBlinded(k *Key) *big.Int {
	c := big.NewInt(3)
	s := new(big.Int).Sub(newNonce(), new(big.Int).Mul(c, k.D))
	return s
}

// okHashed: one-way functions launder the secret; logging a commitment is
// fine.
func okHashed(k *Key) {
	sum := sha256.Sum256(k.D.Bytes())
	fmt.Printf("commitment=%x\n", sum)
}

// okHelper takes a secret-typed parameter but never leaks it, so calls to
// it taint nothing.
func okHelper(x *big.Int) *big.Int {
	return x
}

func okThroughHelper(k *Key) *big.Int {
	return okHelper(k.D)
}
