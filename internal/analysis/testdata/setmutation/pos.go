// Package goldenfix is the setmutation golden fixture: probeMutates declares
// two parameters read-only and violates every clause of the contract.
package goldenfix

import "sort"

type set []int

// Add is part of the mutator vocabulary the analyzer knows.
func (s set) Add(v int) { _ = v }

// probeMutates promises xs and ys untouched and then mutates both.
//
//tmlint:readonly xs ys
func probeMutates(xs set, ys map[int]int) int {
	xs[0] = 1         // want "write to element of read-only parameter xs"
	xs[1]++           // want "in-place update of element of read-only parameter xs"
	delete(ys, 3)     // want "delete from read-only parameter ys"
	_ = append(xs, 9) // want "append to read-only parameter xs"
	xs.Add(4)         // want "xs\.Add mutates read-only parameter xs"
	sort.Ints(xs)     // want "sort\.Ints reorders read-only parameter xs"
	return xs[0]
}

// badDirective names a parameter that does not exist.
//
//tmlint:readonly zs
func badDirective(xs set) int { // want "which is not a parameter of badDirective"
	return len(xs)
}
