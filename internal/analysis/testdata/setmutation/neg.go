package goldenfix

import "sort"

// probeReads follows the contract: reads, range loops, slicing, and
// mutating a private copy are all allowed.
//
//tmlint:readonly xs
func probeReads(xs set) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	local := make(set, len(xs))
	copy(local, xs)
	sort.Ints(local)
	local[0] = total
	return local[0] + len(xs[1:])
}
