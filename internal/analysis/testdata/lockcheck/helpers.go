package goldenfix

import "sync"

// condRel exercises the cross-function release summaries: releaseLocked
// releases on every path, maybeUnlock only on some.
type condRel struct {
	mu      sync.Mutex
	drained bool
}

// releaseLocked unconditionally releases; callers may end their critical
// section through it.
func (c *condRel) releaseLocked() {
	c.mu.Unlock()
}

// maybeUnlock releases only on the drained path.
func (c *condRel) maybeUnlock() {
	if c.drained {
		c.mu.Unlock()
	}
}

// helperReleases ends the critical section through releaseLocked — the
// net-release summary proves the helper unlocks on every path, so this is
// clean (the old linear check would have called it "never released").
func (c *condRel) helperReleases() bool {
	c.mu.Lock()
	d := c.drained
	c.releaseLocked()
	return d
}

// condHelperLeak trusts a conditional release: when drained is false the
// lock stays held past the function's exit.
func (c *condRel) condHelperLeak() {
	c.mu.Lock()
	c.maybeUnlock() // want "maybeUnlock releases it only on some of its paths"
}

// deferInLoop declares its release inside the loop body: with zero
// iterations the defer never registers and the lock leaks. The old check
// treated any defer anywhere as covering every path.
func (g *guarded) deferInLoop(items []int) {
	g.mu.Lock() // want "not released on every path"
	for range items {
		defer g.mu.Unlock()
		g.n += len(items)
		break
	}
}

// deferUpFront is the corrected shape: the defer registers before the loop
// runs, so every path — including zero iterations — is covered.
func (g *guarded) deferUpFront(items []int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, it := range items {
		g.n += it
	}
}
