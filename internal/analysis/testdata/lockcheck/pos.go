// Package goldenfix is the lockcheck golden fixture, exercising all four
// checks: missing release, return while held, RWMutex upgrade, and mutexes
// passed or returned by value.
package goldenfix

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// leakyIncrement acquires and never releases.
func (g *guarded) leakyIncrement() {
	g.mu.Lock() // want "g\.mu\.Lock\(\) is never released in leakyIncrement"
	g.n++
}

// earlyReturn releases on the fall-through path but not on the early one.
func (g *guarded) earlyReturn(stop bool) int {
	g.mu.Lock()
	if stop {
		return 0 // want "return while g\.mu is held"
	}
	g.mu.Unlock()
	return g.n
}

// upgradeInPlace takes the write lock while still holding the read lock:
// sync.RWMutex is not upgradeable, so this self-deadlocks.
func (g *guarded) upgradeInPlace() {
	g.rw.RLock()
	g.rw.Lock() // want "RWMutex cannot be upgraded"
	g.rw.Unlock()
	g.rw.RUnlock()
}

// byValue copies the lock into the parameter.
func byValue(mu sync.Mutex) { _ = mu } // want "sync\.Mutex passed by value copies the lock"

// byValueReturn copies the lock out through the result.
func byValueReturn() sync.RWMutex { // want "sync\.RWMutex returned by value copies the lock"
	return sync.RWMutex{}
}
