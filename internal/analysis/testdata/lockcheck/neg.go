package goldenfix

// deferredIncrement is the canonical shape: the deferred release covers
// every return path.
func (g *guarded) deferredIncrement() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// readThenWrite drops the read lock before taking the write lock — the legal
// version of the upgrade, exactly decompFor's pattern.
func (g *guarded) readThenWrite() int {
	g.rw.RLock()
	n := g.n
	g.rw.RUnlock()

	g.rw.Lock()
	defer g.rw.Unlock()
	g.n = n + 1
	return g.n
}

// pairedInline releases in source order with a return after the release.
func (g *guarded) pairedInline() int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return n
}
