package goldenfix

import (
	mrand "math/rand"
	"time"
)

// newSeededRand builds a generator from an explicit seed: the allowed
// construction for reproducible simulations.
func newSeededRand(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}

// injectedDraw consumes a generator threaded through by the caller.
func injectedDraw(rng *mrand.Rand) float64 {
	return rng.Float64()
}

// fixedInstant derives a time from constants, not the wall clock.
func fixedInstant() time.Time {
	return time.Unix(0, 0)
}
