// Package goldenfix is the determinism golden fixture, loaded under an
// in-scope import path (tokenmagic/internal/sim/...).
package goldenfix

import (
	mrand "math/rand"
	"time"
)

// stampedStep reads the wall clock inside a deterministic package.
func stampedStep() time.Time {
	return time.Now() // want "time\.Now in a deterministic package"
}

// elapsed measures wall-clock time, which differs run to run.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time\.Since in a deterministic package"
}

// globalDraw uses math/rand's process-global source, auto-seeded since
// Go 1.20 and therefore nondeterministic across runs.
func globalDraw() int {
	return mrand.Intn(10) // want "math/rand\.Intn draws from the auto-seeded global source"
}
