package lockorderfix

import "sync"

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

type Pair struct {
	c C
	d D
}

// Both call paths acquire c before d: a consistent order is no cycle.
func (p *Pair) First() {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	p.lockD()
}

func (p *Pair) lockD() {
	p.d.mu.Lock()
	p.d.mu.Unlock()
}

func (p *Pair) Second() {
	p.c.mu.Lock()
	p.d.mu.Lock()
	p.d.mu.Unlock()
	p.c.mu.Unlock()
}

type R struct{ mu sync.RWMutex }

// Read-locking twice through a helper is legal for RWMutex.
func (r *R) ReadTwice() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.peek()
}

func (r *R) peek() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return 2
}

// Sequential (released-before-reacquire) use is not an ordering edge.
func (p *Pair) Sequential() {
	p.d.mu.Lock()
	p.d.mu.Unlock()
	p.c.mu.Lock()
	p.c.mu.Unlock()
}
