// Fixture for lockorder: inconsistent acquisition order across functions,
// re-entry through callees, and RLock→Lock upgrades.
package lockorderfix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

type Sys struct {
	a A
	b B
}

// AB acquires A.mu then (through the callee) B.mu — one direction of the
// cycle, caught cross-function via lockB's MayAcquire summary.
func (s *Sys) AB() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.lockB() // want "lock order cycle: B.mu acquired while A.mu is held"
}

func (s *Sys) lockB() {
	s.b.mu.Lock()
	s.b.mu.Unlock()
}

// BA acquires in the opposite order inline.
func (s *Sys) BA() {
	s.b.mu.Lock()
	s.a.mu.Lock() // want "lock order cycle: A.mu acquired while B.mu is held"
	s.a.mu.Unlock()
	s.b.mu.Unlock()
}

type G struct{ mu sync.RWMutex }

// read holds the read lock and calls a helper that write-locks the same
// mutex: the cross-function upgrade self-deadlock.
func (g *G) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.refresh() // want "call to G.refresh while G.mu is RLock-held"
}

func (g *G) refresh() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return 1
}
