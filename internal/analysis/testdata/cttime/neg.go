package cttimefix

import (
	"crypto/sha256"
	"math/big"
)

// okDecoyLoop is the signing hot-path shape that forces flow-sensitivity:
// the decoy responses fed to the vartime kernel inside the loop are public
// when drawn; the secret closing response lands in the slice only after
// every kernel read. A flow-insensitive pass would smear the late write
// over the loop and flag each decoy.
func okDecoyLoop(k *Key) []*big.Int {
	s := make([]*big.Int, 4)
	for i := 1; i < 4; i++ {
		s[i] = big.NewInt(int64(i))
		ladder(s[i])
	}
	closing := new(big.Int).Mul(k.D, big.NewInt(3))
	s[0] = closing
	return s
}

// okFixedWidth: FillBytes is the sanctioned encoder — fixed 32 bytes
// whatever the scalar's leading zeros.
func okFixedWidth(k *Key) [32]byte {
	var b [32]byte
	k.D.FillBytes(b[:])
	return b
}

// okFixedLoop: len of a fixed-size array is a compile-time constant, public
// even though the buffer's contents are secret; reading b[i] with a public
// index is likewise fine.
func okFixedLoop(k *Key) int {
	var b [32]byte
	k.D.FillBytes(b[:])
	n := 0
	for i := 0; i < len(b); i++ {
		n += int(b[i] & 1)
	}
	return n
}

// okRangeTrip: ranging over a fixed-size array has a constant trip count.
func okRangeTrip(k *Key) int {
	var b [32]byte
	k.D.FillBytes(b[:])
	n := 0
	for _, v := range b {
		n += int(v)
	}
	return n
}

// okHashed: unknown external calls declassify — hash output is public.
func okHashed(k *Key) byte {
	var b [32]byte
	k.D.FillBytes(b[:])
	sum := sha256.Sum256(b[:])
	return sum[0]
}

// mayFail branches only on its argument's nil-ness — pointer structure, not
// the secret's value — so callers passing secrets stay clean, and the
// error result is a public control signal.
func mayFail(x *big.Int) (*big.Int, error) {
	if x == nil {
		return nil, errNil
	}
	return x, nil
}

var errNil = errBadScalar{}

type errBadScalar struct{}

func (errBadScalar) Error() string { return "nil scalar" }

func okErrBranch(k *Key) *big.Int {
	y, err := mayFail(k.D)
	if err != nil {
		return nil
	}
	return y
}

// okResponse mirrors ringsig.randResponse: returning a secret declassifies
// it at a named boundary — decoy responses are published in the signature.
func okResponse() *big.Int {
	return nonce()
}

func okDeclassified(tbl []int) int {
	r := okResponse()
	return tbl[r.Bit(0)]
}

// okPublicVartime: the kernels are fine on public scalars — that is their
// whole job.
func okPublicVartime() int {
	return ladder(big.NewInt(7))
}

// okPublicBranch: only the secret field is restricted, not the whole
// struct.
func okPublicBranch(k *Key) int {
	if k.Pub != "" {
		return 1
	}
	return 0
}
