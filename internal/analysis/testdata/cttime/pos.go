// Fixture for cttime: secret-annotated values must not influence timing —
// no flow into branch/loop/switch conditions, slice/array/map indexing,
// variable-width big.Int methods, or //tmlint:vartime functions, including
// through module-local helpers (cross-function cases).
package cttimefix

import "math/big"

// Key mirrors ringsig.PrivateKey: the scalar is secret, the public half is
// not.
type Key struct {
	//tmlint:secret
	D *big.Int
	// Pub is public by construction.
	Pub string
}

// ladder mirrors the verify-only wNAF/comb kernels: fast precisely because
// its branches and table indices follow scalar digits.
//
//tmlint:vartime
func ladder(e *big.Int) int {
	return e.BitLen()
}

func branchOnSecret(k *Key) int {
	if k.D.Sign() > 0 { // want "secret-dependent value reaches branch condition"
		return 1
	}
	return 0
}

// cmpBranch is the "Cmp feeding a branch" case: Cmp itself propagates, the
// branch is the reported sink.
func cmpBranch(k *Key, bound *big.Int) int {
	if k.D.Cmp(bound) > 0 { // want "secret-dependent value reaches branch condition"
		return 1
	}
	return 0
}

func loopOnSecret(k *Key) int {
	n := 0
	for i := int64(0); i < k.D.Int64(); i++ { // want "secret-dependent value reaches loop condition"
		n++
	}
	return n
}

func switchOnSecret(k *Key) int {
	switch k.D.Bit(0) { // want "secret-dependent value reaches switch condition"
	case 0:
		return 0
	}
	return 1
}

func tableLookup(k *Key, tbl []int) int {
	return tbl[k.D.Bit(3)] // want "secret-dependent value reaches slice/map index"
}

func mapProbe(k *Key, m map[int64]int) int {
	return m[k.D.Int64()] // want "secret-dependent value reaches slice/map index"
}

// widthLeak: the encoding's byte count follows the scalar's leading zeros.
func widthLeak(k *Key) []byte {
	return k.D.Bytes() // want "secret-dependent value reaches variable-width big.Int.Bytes"
}

func bitLenLeak(k *Key) bool {
	return k.D.BitLen() < 200 // want "secret-dependent value reaches variable-width big.Int.BitLen"
}

// windowed demonstrates the named-parameter directive form, and that
// FillBytes carries taint into its destination buffer.
//
//tmlint:secret alpha
func windowed(alpha *big.Int, tbl []int) int {
	var buf [32]byte
	alpha.FillBytes(buf[:])
	return tbl[buf[0]] // want "secret-dependent value reaches slice/map index"
}

func vartimeDirect(k *Key) int {
	return ladder(k.D) // want "secret-dependent value reaches variable-time function ladder"
}

// helper routes its parameter into the vartime kernel; the flow is reported
// at the caller's site via the summary.
func helper(x *big.Int) int {
	return ladder(x)
}

func vartimeViaHelper(k *Key) int {
	return helper(k.D) // want "secret-dependent value reaches variable-time function ladder via call to helper"
}

// nonce mirrors ringsig.randScalar: its result is a secret.
//
//tmlint:secret
func nonce() *big.Int { return big.NewInt(11) }

func nonceBranch() int {
	if nonce().Sign() == 0 { // want "secret-dependent value reaches branch condition"
		return 0
	}
	return 1
}

// Signer covers the receiver-taint path: a secret field reached through the
// method receiver.
type Signer struct {
	//tmlint:secret
	x *big.Int
}

func (sg *Signer) respond(tbl []int) int {
	return tbl[sg.x.BitLen()%8] // want "secret-dependent value reaches"
}
