package tracecheckfix

import (
	"context"

	"tokenmagic/internal/obs/trace"
)

// okDirectDefer is the common form: bind, defer End immediately.
func okDirectDefer(ctx context.Context) {
	ctx, sp := trace.StartSpan(ctx, "sign")
	defer sp.End()
	_ = ctx
	work()
}

// okDeferredLiteral ends the span inside one deferred func literal, the
// form used when the closure also annotates the outcome.
func okDeferredLiteral(ctx context.Context) (n int) {
	_, sp := trace.StartSpan(ctx, "solve")
	defer func() {
		sp.AnnotateInt("ring_size", int64(n))
		sp.End()
	}()
	return 7
}

// okTwoSpans opens two spans, each with its own deferred End.
func okTwoSpans(ctx context.Context) {
	ctx, outer := trace.StartSpan(ctx, "sample")
	defer outer.End()
	_, inner := trace.StartSpan(ctx, "candidate")
	defer inner.End()
	work()
}

// okInsideLiteral: a span opened inside a function literal is that
// literal's responsibility, and it conforms there.
func okInsideLiteral(ctx context.Context) func() {
	return func() {
		_, sp := trace.StartSpan(ctx, "verify")
		defer sp.End()
		work()
	}
}

// okRebound uses `=` into a pre-declared span variable.
func okRebound(ctx context.Context) {
	var sp trace.Span
	_, sp = trace.StartSpan(ctx, "commit")
	defer sp.End()
	work()
}

// okChild is the leaf-span form: StartChild binds one value, deferred End.
func okChild(ctx context.Context) {
	sp := trace.StartChild(ctx, "sign")
	defer sp.End()
	work()
}
