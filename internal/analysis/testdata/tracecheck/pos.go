// Fixture for tracecheck: spans opened with trace.StartSpan must be bound
// and ended via defer in the opening function. Each positive case leaks a
// span in a different way.
package tracecheckfix

import (
	"context"

	"tokenmagic/internal/obs/trace"
)

func work() {}

// badDiscarded throws the span away entirely.
func badDiscarded(ctx context.Context) {
	trace.StartSpan(ctx, "solve") // want "badDiscarded: span returned by trace.StartSpan is discarded"
	work()
}

// badBlank binds the span to the blank identifier — same leak, quieter.
func badBlank(ctx context.Context) {
	_, _ = trace.StartSpan(ctx, "solve") // want "badBlank: span returned by trace.StartSpan is discarded"
	work()
}

// badNoEnd binds the span but never ends it.
func badNoEnd(ctx context.Context) context.Context {
	ctx, sp := trace.StartSpan(ctx, "solve") // want "badNoEnd: span .sp. is not ended on every path"
	_ = sp
	return ctx
}

// badPlainEnd ends the span only on the fall-through path; the early return
// skips it.
func badPlainEnd(ctx context.Context, fail bool) {
	_, sp := trace.StartSpan(ctx, "solve") // want "badPlainEnd: span .sp. is not ended on every path"
	if fail {
		return
	}
	sp.End()
}

// badEndInNestedScope defers End inside a nested function literal that is
// not itself the deferred call — the literal may never run.
func badEndInNestedScope(ctx context.Context, f func(func())) {
	_, sp := trace.StartSpan(ctx, "solve") // want "badEndInNestedScope: span .sp. is not ended on every path"
	f(func() { sp.End() })
}

// badChildDiscarded leaks a leaf span: StartChild returns only the span, so
// a bare call discards it outright.
func badChildDiscarded(ctx context.Context) {
	trace.StartChild(ctx, "solve") // want "badChildDiscarded: span returned by trace.StartChild is discarded"
	work()
}

// badChildNoEnd binds the child span but only ends it on the happy path.
func badChildNoEnd(ctx context.Context, fail bool) {
	sp := trace.StartChild(ctx, "verify") // want "badChildNoEnd: span .sp. is not ended on every path"
	if fail {
		return
	}
	sp.End()
}
