package ctxpollfix

import "context"

// GoodHelperCtx polls through the module-local helper — the cross-function
// negative: the loop itself never mentions ctx.Err/Done.
func GoodHelperCtx(ctx context.Context, ring []int) int {
	total := 0
	for _, t := range ring {
		if cancelled(ctx) {
			return total
		}
		total += step(t)
	}
	return total
}

// GoodDirectCtx polls inline.
func GoodDirectCtx(ctx context.Context, ring []int) int {
	total := 0
	for _, t := range ring {
		if ctx.Err() != nil {
			return total
		}
		total += step(t)
	}
	return total
}

// TrivialCtx only does builtin arithmetic per iteration: bounded work,
// exempt from polling.
func TrivialCtx(ctx context.Context, ring []int) int {
	total := 0
	for _, t := range ring {
		total += t
	}
	return total
}

// plainSweep is not a *Ctx variant; it carries no polling obligation.
func plainSweep(ring []int) int {
	total := 0
	for _, t := range ring {
		total += step(t)
	}
	return total
}
