// Fixture for ctxpoll: loops in *Ctx solver variants that can do real
// per-iteration work must poll cancellation every iteration.
package ctxpollfix

import "context"

// cancelled mirrors selector's helper: a module-local function that polls,
// satisfying a loop's obligation transitively.
func cancelled(ctx context.Context) bool { return ctx.Err() != nil }

// step is real per-iteration work with no poll.
func step(x int) int { return x + 1 }

// SolveCtx never checks ctx inside its ring sweep.
func SolveCtx(ctx context.Context, ring []int) int {
	total := 0
	for _, t := range ring { // want "SolveCtx: loop body can run without checking ctx"
		total += step(t)
	}
	return total
}

// FrontierCtx has a nested loop (a BFS frontier shape) and no poll.
func FrontierCtx(ctx context.Context, frontiers [][]int) int {
	n := 0
	for _, f := range frontiers { // want "FrontierCtx: loop body can run without checking ctx"
		for _, t := range f {
			n += t
		}
	}
	return n
}
