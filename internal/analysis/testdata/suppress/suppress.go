// Package goldenfix is the suppression fixture, loaded under a cryptorand
// in-scope path: every finding below is suppressed by a //lint:ignore
// directive except the one whose directive names the wrong analyzer.
package goldenfix

import mrand "math/rand"

// sampleSuppressedAbove carries the directive on the line above the call.
func sampleSuppressedAbove() int {
	//lint:ignore cryptorand fixture: documents why this draw is acceptable
	return mrand.Intn(10)
}

// sampleSuppressedTrailing carries the directive on the finding's own line.
func sampleSuppressedTrailing() int {
	return mrand.Intn(10) //lint:ignore cryptorand fixture: trailing form
}

// sampleWildcard is suppressed by the wildcard form.
func sampleWildcard() int {
	//lint:ignore * fixture: wildcard suppression
	return mrand.Intn(10)
}

// sampleWrongName is NOT suppressed: the directive names another analyzer.
func sampleWrongName() int {
	//lint:ignore determinism fixture: the wrong analyzer name must not suppress
	return mrand.Intn(10) // want "math/rand\.Intn in an anonymity-critical path"
}
