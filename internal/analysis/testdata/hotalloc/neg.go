package hotallocfix

// hotSum does only builtin arithmetic and same-target growth: clean.
//
//tmlint:hotpath
func hotSum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// hotValueLit: value struct literals live on the stack and are allowed.
type probe struct{ a, b int }

//tmlint:hotpath
func hotValueLit(a, b int) probe {
	return probe{a: a, b: b}
}

// hotSuppressed carries a reasoned suppression on its warm-up allocation,
// mirroring the diversity scratch-growth idiom.
//
//tmlint:hotpath
func hotSuppressed(n int) []int {
	//lint:ignore hotalloc scratch warm-up grows to high-water mark, amortized to zero
	buf := make([]int, n)
	return buf
}

// helperSuppressed is not hotpath; its allocation is declassified with a
// reason, so hotCallsSuppressedHelper must stay clean — the suppression
// must hold across the function boundary.
func helperSuppressed() []int {
	//lint:ignore hotalloc one-time initialization, not on the per-candidate path
	return make([]int, 8)
}

//tmlint:hotpath
func hotCallsSuppressedHelper() []int {
	return helperSuppressed()
}

// coldAllocates has no hotpath mark: allocating is fine.
func coldAllocates() []string {
	return []string{"a", "b"}
}
