// Fixture for hotalloc: //tmlint:hotpath functions must not allocate;
// helpers they call are checked one level deep.
package hotallocfix

// hotMake allocates scratch on every call.
//
//tmlint:hotpath
func hotMake(n int) []int {
	xs := make([]int, n) // want "hotpath function hotMake allocates: make"
	return xs
}

// hotGrow: same-target append is the sanctioned amortized-growth idiom;
// appending into a different variable escapes.
//
//tmlint:hotpath
func hotGrow(xs []int, v int) []int {
	xs = append(xs, v)
	ys := append(xs, v) // want "hotpath function hotGrow allocates: append result escapes"
	_ = ys
	return xs
}

// helperAllocates is not hotpath itself, so its literal is only a finding
// when a hotpath function calls it.
func helperAllocates() map[string]int {
	return map[string]int{}
}

// hotCaller is the cross-function case: the allocation lives in the
// callee, the finding lands at the call site.
//
//tmlint:hotpath
func hotCaller() int {
	m := helperAllocates() // want "hotpath function hotCaller calls helperAllocates, which allocates"
	return len(m)
}

//tmlint:hotpath
func hotClosure() func() int {
	total := 0
	f := func() int { // want "hotpath function hotClosure allocates: closure capturing outer variables"
		total++
		return total
	}
	return f
}

func sinkIface(v interface{}) { _ = v }

// hotBox passes a concrete int to an interface parameter: boxed.
//
//tmlint:hotpath
func hotBox(x int) {
	sinkIface(x) // want "hotpath function hotBox allocates: interface conversion"
}
