// Package goldenfix is the errdrop golden fixture. The analyzer has no scope
// restriction, so the tests load it under its natural testdata import path.
package goldenfix

import (
	"fmt"
	"io"
)

func flaky() error { return nil }

// dropsPlainCall discards flaky's error by using it as a statement.
func dropsPlainCall() {
	flaky() // want "flaky returns an error that is discarded"
}

// dropsFprintf writes to an arbitrary writer: unlike the stdout/stderr
// convenience case, the error here is a real short-write signal.
func dropsFprintf(w io.Writer) {
	fmt.Fprintf(w, "partial response\n") // want "fmt\.Fprintf returns an error that is discarded"
}
