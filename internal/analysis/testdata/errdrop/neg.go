package goldenfix

import (
	"fmt"
	"os"
	"strings"
)

// handled shows every sanctioned shape: checking, explicit discard, the
// stdout printers, never-failing builders, and go/defer statements.
func handled() error {
	if err := flaky(); err != nil {
		return err
	}
	_ = flaky()
	fmt.Println("report")
	fmt.Fprintln(os.Stderr, "report")
	var b strings.Builder
	b.WriteString("x")
	go flaky()
	defer flaky()
	return nil
}
