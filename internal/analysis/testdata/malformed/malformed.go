// Package malformedfix exercises the malformed-directive report: a
// //lint:ignore with no reason is itself a finding and suppresses nothing.
// TestMalformedIgnoreDirective asserts on this file directly (the directive
// line cannot also carry a want comment).
package malformedfix

import mrand "math/rand"

func sample() int {
	//lint:ignore cryptorand
	return mrand.Intn(10)
}
