package goldenfix

import "sync/atomic"

// cleanCounter uses the atomic.Int64 value type, safe by construction.
type cleanCounter struct {
	n atomic.Int64
}

func (c *cleanCounter) inc() int64 { return c.n.Add(1) }

func (c *cleanCounter) read() int64 { return c.n.Load() }

// total is accessed atomically everywhere; the sanctioned &total arguments
// below must not count as plain accesses.
var total int64

func addTotal(d int64) { atomic.AddInt64(&total, d) }

func readTotal() int64 { return atomic.LoadInt64(&total) }
