// Package goldenfix is the atomiccheck golden fixture: the counter field is
// written through sync/atomic in one method and read plainly in another.
package goldenfix

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

// racyRead loses the happens-before edge the atomic writer established.
func (c *counter) racyRead() int64 {
	return c.n // want "n is accessed atomically at pos\.go:\d+ but plainly here"
}
