// Package goldenfix is the cryptorand golden fixture. The tests load it
// twice: under an in-scope import path (tokenmagic/internal/ringsig/...)
// where every math/rand call below must be flagged, and under an out-of-scope
// path where none may be.
package goldenfix

import (
	mrand "math/rand"
)

// leakyNonce draws a signing nonce from math/rand's global source.
func leakyNonce() int {
	return mrand.Intn(1 << 16) // want "math/rand\.Intn in an anonymity-critical path"
}

// leakyGenerator constructs a generator locally; inside the scope even the
// explicit-seed constructors are findings, because the construction site is
// where seed quality is decided.
func leakyGenerator(seed int64) *mrand.Rand {
	src := mrand.NewSource(seed) // want "math/rand\.NewSource in an anonymity-critical path"
	return mrand.New(src)        // want "math/rand\.New in an anonymity-critical path"
}
