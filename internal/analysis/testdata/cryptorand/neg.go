package goldenfix

import (
	crand "crypto/rand"
	mrand "math/rand"
)

// sampleInjected uses an injected generator: method calls on a *rand.Rand
// handed in by the caller are the sanctioned pattern — tokenmagic.New decides
// the seed quality at the construction site.
func sampleInjected(rng *mrand.Rand, n int) int {
	return rng.Intn(n)
}

// cryptoNonce reads from crypto/rand, which is always allowed.
func cryptoNonce() ([]byte, error) {
	b := make([]byte, 32)
	_, err := crand.Read(b)
	return b, err
}
