package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("tokenmagic/internal/selector").
	Path string
	// Dir is the absolute directory the files came from.
	Dir string
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the module's packages without any
// go/packages dependency: module-internal imports are resolved by loading
// the corresponding directory first (topological order, cycle-checked), and
// everything else (the standard library) is type-checked from source via
// go/importer's "source" compiler.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	RootDir    string

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
}

// NewLoader builds a loader rooted at the module directory containing
// go.mod. Cgo is disabled for the whole process so the source importer
// resolves pure-Go variants of cgo-capable stdlib packages (net, os/user).
func NewLoader(rootDir string) (*Loader, error) {
	abs, err := filepath.Abs(rootDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		RootDir:    abs,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: cannot read %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// RelPath returns filename relative to the module root (slash-separated),
// or the input unchanged when it lies outside the root.
func (l *Loader) RelPath(filename string) string {
	rel, err := filepath.Rel(l.RootDir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// Packages returns every module-local package loaded so far (explicitly or
// as a dependency of an explicit load), sorted by import path. The cache
// driver uses this to hand whole-program analyzers the dependency closure
// of the stale set.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// LoadAll loads every package under the module root, skipping testdata,
// hidden directories and directories without non-test Go files. Returned
// packages are sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.RootDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.RootDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir under its natural module import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.RootDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, l.RootDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadDirAs(abs, path)
}

// LoadDirAs loads the package in dir under an explicit import path. The
// golden-file tests use this to place fixture packages inside (or outside)
// an analyzer's scope.
func (l *Loader) LoadDirAs(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, err := parseDir(l.Fset, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &loaderImporter{l: l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", importPath, typeErrs[0])
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		// Respect //go:build constraints and GOOS/GOARCH file suffixes, or
		// platform-gated pairs (lock_unix.go / lock_stub.go) both land in the
		// same package and redeclare each other.
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil || !ok {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s mixes packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter resolves module-internal imports through the loader and
// delegates everything else to the standard-library source importer.
type loaderImporter struct{ l *Loader }

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	l := im.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := l.RootDir
		if rel != "" {
			dir = filepath.Join(l.RootDir, filepath.FromSlash(rel))
		}
		pkg, err := l.LoadDirAs(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
