package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Policy is the per-path allow/deny configuration, loaded from the
// .tmlint.json file at the module root (see README "Static analysis").
//
// Rule semantics, applied to a diagnostic's file path relative to the
// module root:
//
//   - action "allow": the path is allowed to do what the analyzer forbids —
//     matching findings are suppressed. Used for sanctioned exceptions that
//     are policy (whole files or trees) rather than one-line //lint:ignore
//     cases.
//   - action "deny": the path is denied the behaviour even though it lies
//     outside the analyzer's default scope — scoped analyzers (cryptorand,
//     determinism) also run on files under the path.
//
// The most specific matching rule (longest path prefix) wins; an "allow"
// and "deny" of equal length resolve to "allow".
type Policy struct {
	Rules []Rule `json:"rules"`
}

// Rule is one policy entry. Path matches itself and everything below it
// (path-component prefix). Analyzer may be "*".
type Rule struct {
	Analyzer string `json:"analyzer"`
	Path     string `json:"path"`
	Action   string `json:"action"` // "allow" or "deny"
	Reason   string `json:"reason,omitempty"`
}

// LoadPolicy reads a policy file. A missing file yields an empty policy.
func LoadPolicy(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Policy{}, nil
	}
	if err != nil {
		return nil, err
	}
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("analysis: bad policy %s: %w", path, err)
	}
	for i, r := range p.Rules {
		if r.Action != "allow" && r.Action != "deny" {
			return nil, fmt.Errorf("analysis: policy rule %d: action must be allow or deny, got %q", i, r.Action)
		}
		if r.Analyzer == "" || r.Path == "" {
			return nil, fmt.Errorf("analysis: policy rule %d: analyzer and path are required", i)
		}
	}
	return &p, nil
}

// pathMatches reports whether rel (slash-separated, module-root-relative)
// is the rule path or lies below it.
func pathMatches(rulePath, rel string) bool {
	rulePath = strings.TrimSuffix(rulePath, "/")
	return rel == rulePath || strings.HasPrefix(rel, rulePath+"/")
}

// match returns the winning action ("allow", "deny" or "") for an
// analyzer/path pair.
func (p *Policy) match(analyzer, rel string) string {
	best, bestLen := "", -1
	for _, r := range p.Rules {
		if r.Analyzer != "*" && r.Analyzer != analyzer {
			continue
		}
		if !pathMatches(r.Path, rel) {
			continue
		}
		n := len(r.Path)
		if n > bestLen || (n == bestLen && r.Action == "allow") {
			best, bestLen = r.Action, n
		}
	}
	return best
}

// Allows reports whether findings of analyzer in file rel are suppressed.
func (p *Policy) Allows(analyzer, rel string) bool {
	return p.match(analyzer, rel) == "allow"
}

// Denies reports whether analyzer is force-enabled for file rel even
// outside its default scope.
func (p *Policy) Denies(analyzer, rel string) bool {
	return p.match(analyzer, rel) == "deny"
}
