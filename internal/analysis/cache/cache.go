// Package cache is tmlint's incremental fact cache: per-package diagnostics
// persisted under .tmlint-cache/, keyed by a content hash so a warm run on
// an unchanged tree re-analyzes zero packages and never even constructs the
// type-checker.
//
// # Keying
//
// A package's cache key is the SHA-256 of, in order:
//
//   - the analyzer version string (bumped whenever analyzer behaviour
//     changes — the key namespace, not a heuristic);
//   - the raw bytes of the active policy file (.tmlint.json), so editing an
//     allow/deny rule invalidates everything;
//   - the package's own source: every non-test .go file name and content, in
//     sorted order. //lint:ignore edits therefore change the key, which is
//     what makes suppression honest under caching;
//   - the cache keys of its module-local imports, recursively, so a change
//     in a dependency re-analyzes every dependent (whole-program analyzers
//     read callee bodies across package boundaries);
//   - for packages inside a coupled scope: the source hashes of every other
//     package in that scope. Lock-order cycles are a whole-program property
//     that does NOT follow the import graph (package A can form a cycle with
//     a package that never imports it), so the lockorder scope is declared
//     mutually invalidating.
//
// # Soundness caveats
//
// The key covers module-local sources, the policy and the analyzer version.
// It does not cover the Go toolchain or standard library: a toolchain bump
// that changes type-checking results needs a manual cache wipe (CI keys the
// persisted cache on go.mod and the analyzer sources, which subsumes this).
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tokenmagic/internal/analysis"
)

// Config parameterizes a cached run.
type Config struct {
	// Root is the module root (directory containing go.mod).
	Root string
	// Dir is the cache directory; empty means Root/.tmlint-cache.
	Dir string
	// Version namespaces keys; bump it when analyzer behaviour changes.
	Version string
	// PolicyData is the raw policy file content (nil when absent).
	PolicyData []byte
	// Policy is the parsed form applied to fresh analysis.
	Policy *analysis.Policy
	// CoupledScopes lists import-path prefixes whose packages invalidate
	// each other beyond the import graph (see the package comment).
	CoupledScopes []string
	// Parallelism bounds concurrent package analysis (0 = GOMAXPROCS).
	Parallelism int
	// Disable bypasses lookup and store (cold behaviour, for -cache=false
	// and for measuring).
	Disable bool
}

// Result is one cached run's outcome plus its analysis counters.
type Result struct {
	Diagnostics []analysis.Diagnostic
	// Analyzed counts packages type-checked and analyzed this run; a warm
	// run on an unchanged tree has Analyzed == 0.
	Analyzed int
	// Cached counts packages served from the cache.
	Cached int
	// AnalyzedPaths lists the re-analyzed import paths, sorted.
	AnalyzedPaths []string
}

// storedDiag is the serialized form of one diagnostic. token.Pos is not
// meaningful across processes, so only the resolved position is kept.
type storedDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative, slash-separated
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// entry is one package's cache file.
type entry struct {
	Key     string       `json:"key"`
	Package string       `json:"package"`
	Diags   []storedDiag `json:"diags,omitempty"`
}

// pkgState is the scanner's view of one package directory.
type pkgState struct {
	path        string // import path
	dir         string // absolute directory
	contentHash string
	imports     []string // module-local import paths
	key         string   // full cache key, computed after the dep graph
}

// Run analyzes the whole module with caching: fresh results for packages
// whose key misses, replayed diagnostics for the rest.
func Run(cfg Config, analyzers []*analysis.Analyzer) (*Result, error) {
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, err
	}
	cacheDir := cfg.Dir
	if cacheDir == "" {
		cacheDir = filepath.Join(root, ".tmlint-cache")
	}
	modPath, err := moduleName(root)
	if err != nil {
		return nil, err
	}

	states, err := scan(root, modPath)
	if err != nil {
		return nil, err
	}
	computeKeys(cfg, states)

	res := &Result{}
	var stale []*pkgState
	for _, st := range states {
		if cfg.Disable {
			stale = append(stale, st)
			continue
		}
		ent, ok := load(cacheDir, st.path)
		if !ok || ent.Key != st.key {
			stale = append(stale, st)
			continue
		}
		res.Cached++
		for _, d := range ent.Diags {
			res.Diagnostics = append(res.Diagnostics, analysis.Diagnostic{
				Analyzer: d.Analyzer,
				Position: token.Position{
					Filename: filepath.Join(root, filepath.FromSlash(d.File)),
					Line:     d.Line,
					Column:   d.Column,
				},
				Message: d.Message,
			})
		}
	}

	if len(stale) > 0 {
		fresh, err := analyzeStale(root, stale, analyzers, cfg)
		if err != nil {
			return nil, err
		}
		if !cfg.Disable {
			if err := store(cacheDir, root, stale, fresh); err != nil {
				return nil, err
			}
		}
		for _, diags := range fresh {
			res.Diagnostics = append(res.Diagnostics, diags...)
		}
		res.Analyzed = len(stale)
		for _, st := range stale {
			res.AnalyzedPaths = append(res.AnalyzedPaths, st.path)
		}
		sort.Strings(res.AnalyzedPaths)
	}

	analysis.SortDiagnostics(res.Diagnostics)
	return res, nil
}

// analyzeStale loads the stale packages (module-local dependencies load
// transitively through the importer) and runs the analyzers over them, with
// the full loaded closure as the whole-program package set. The returned map
// groups diagnostics by the directory of the file they point at, which is
// the reported package's directory — whole-program analyzers attribute every
// finding to the package owning the position.
func analyzeStale(root string, stale []*pkgState, analyzers []*analysis.Analyzer, cfg Config) (map[string][]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*analysis.Package
	for _, st := range stale {
		pkg, err := loader.LoadDir(st.dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.RunWithOptions(pkgs, analyzers, cfg.Policy, loader.RelPath, analysis.RunOptions{
		Parallelism: cfg.Parallelism,
		AllPackages: loader.Packages(),
	})
	if err != nil {
		return nil, err
	}
	byDir := make(map[string][]analysis.Diagnostic, len(stale))
	for _, st := range stale {
		byDir[st.dir] = nil // a clean package stores an empty entry
	}
	for _, d := range diags {
		dir := filepath.Dir(d.Position.Filename)
		byDir[dir] = append(byDir[dir], d)
	}
	return byDir, nil
}

// scan walks the module and fingerprints every package directory without
// type-checking: file contents for the hash, import clauses for the
// dependency graph.
func scan(root, modPath string) ([]*pkgState, error) {
	var states []*pkgState
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		st, err := fingerprint(root, modPath, path)
		if err != nil {
			return err
		}
		if st != nil {
			states = append(states, st)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(states, func(i, j int) bool { return states[i].path < states[j].path })
	return states, nil
}

// fingerprint hashes one directory's non-test Go sources and collects its
// module-local imports; nil when the directory holds no Go files.
func fingerprint(root, modPath, dir string) (*pkgState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	h := sha256.New()
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, name := range names {
		full := filepath.Join(dir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
		h.Write(data)
		f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
		if err != nil {
			// Unparseable files still hash; the real loader will surface the
			// error when the package is analyzed.
			continue
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == modPath || strings.HasPrefix(p, modPath+"/") {
				importSet[p] = true
			}
		}
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	return &pkgState{
		path:        path,
		dir:         dir,
		contentHash: hex.EncodeToString(h.Sum(nil)),
		imports:     imports,
	}, nil
}

// computeKeys fills every state's full key: version + policy + own content +
// recursive dependency keys + coupled-scope content hashes.
func computeKeys(cfg Config, states []*pkgState) {
	byPath := make(map[string]*pkgState, len(states))
	for _, st := range states {
		byPath[st.path] = st
	}

	// The coupling component is shared by every package inside a coupled
	// scope: the sorted content hashes of all of them.
	var coupled []string
	for _, st := range states {
		if inScopes(st.path, cfg.CoupledScopes) {
			coupled = append(coupled, st.contentHash)
		}
	}
	sort.Strings(coupled)
	couplingHash := hashStrings(coupled)

	visiting := make(map[string]bool)
	var keyOf func(st *pkgState) string
	keyOf = func(st *pkgState) string {
		if st.key != "" {
			return st.key
		}
		if visiting[st.path] {
			return "cycle:" + st.path // impossible for valid Go; terminate anyway
		}
		visiting[st.path] = true
		h := sha256.New()
		fmt.Fprintf(h, "v:%s\x00", cfg.Version)
		fmt.Fprintf(h, "p:%d\x00", len(cfg.PolicyData))
		h.Write(cfg.PolicyData)
		fmt.Fprintf(h, "\x00c:%s\x00", st.contentHash)
		for _, imp := range st.imports {
			dep := byPath[imp]
			if dep == nil {
				continue
			}
			fmt.Fprintf(h, "d:%s=%s\x00", imp, keyOf(dep))
		}
		if inScopes(st.path, cfg.CoupledScopes) {
			fmt.Fprintf(h, "g:%s\x00", couplingHash)
		}
		delete(visiting, st.path)
		st.key = hex.EncodeToString(h.Sum(nil))
		return st.key
	}
	for _, st := range states {
		keyOf(st)
	}
}

func inScopes(path string, scopes []string) bool {
	for _, s := range scopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func hashStrings(ss []string) string {
	h := sha256.New()
	for _, s := range ss {
		fmt.Fprintf(h, "%s\x00", s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entryFile names a package's cache file by hashing its import path, so
// arbitrary paths map to flat safe names.
func entryFile(cacheDir, pkgPath string) string {
	sum := sha256.Sum256([]byte(pkgPath))
	return filepath.Join(cacheDir, hex.EncodeToString(sum[:12])+".json")
}

func load(cacheDir, pkgPath string) (*entry, bool) {
	data, err := os.ReadFile(entryFile(cacheDir, pkgPath))
	if err != nil {
		return nil, false
	}
	var ent entry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil, false
	}
	return &ent, true
}

// store writes one entry per analyzed package — including clean ones, whose
// empty entries are what make warm runs skip them.
func store(cacheDir, root string, stale []*pkgState, byDir map[string][]analysis.Diagnostic) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	for _, st := range stale {
		ent := entry{Key: st.key, Package: st.path}
		for _, d := range byDir[st.dir] {
			rel, err := filepath.Rel(root, d.Position.Filename)
			if err != nil {
				rel = d.Position.Filename
			}
			ent.Diags = append(ent.Diags, storedDiag{
				Analyzer: d.Analyzer,
				File:     filepath.ToSlash(rel),
				Line:     d.Position.Line,
				Column:   d.Position.Column,
				Message:  d.Message,
			})
		}
		data, err := json.MarshalIndent(&ent, "", "\t")
		if err != nil {
			return err
		}
		if err := os.WriteFile(entryFile(cacheDir, st.path), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// moduleName reads the module path out of root/go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("cache: no module directive in %s", filepath.Join(root, "go.mod"))
}
