package cache_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tokenmagic/internal/analysis"
	"tokenmagic/internal/analysis/cache"
)

// badfunc is a deliberately trivial analyzer: the cache tests assert on the
// driver's counters and invalidation behaviour, not on analyzer depth.
var badfunc = &analysis.Analyzer{
	Name: "badfunc",
	Doc:  "reports functions named bad",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "bad" {
					pass.Reportf(fd.Pos(), "function named bad")
				}
			}
		}
		return nil
	},
}

// writeModule lays out a two-package module: a imports b (so editing b must
// re-analyze a), and b pulls in strconv so cold runs pay a realistic
// type-checking cost.
func writeModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"cachetest/b\"\n\n// Render forwards to b.\nfunc Render(n int) string { return b.Text(n) }\n",
		"b/b.go": "package b\n\nimport \"strconv\"\n\n// Text formats n.\nfunc Text(n int) string { return strconv.Itoa(n) }\n",
	}
	for name, content := range files {
		full := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runCache(t *testing.T, cfg cache.Config) *cache.Result {
	t.Helper()
	res, err := cache.Run(cfg, []*analysis.Analyzer{badfunc})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func messages(res *cache.Result) []string {
	var out []string
	for _, d := range res.Diagnostics {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

// TestCacheLifecycle drives the cache through its whole contract: cold run,
// warm run with zero re-analysis and a ≥5× speedup, dependency-aware
// invalidation, replay of cached findings, suppression edits, version bumps
// and policy changes.
func TestCacheLifecycle(t *testing.T) {
	root := writeModule(t)
	cfg := cache.Config{Root: root, Version: "test1"}

	start := time.Now()
	cold := runCache(t, cfg)
	coldDur := time.Since(start)
	if cold.Analyzed != 2 || cold.Cached != 0 {
		t.Fatalf("cold run: analyzed=%d cached=%d, want 2/0", cold.Analyzed, cold.Cached)
	}
	if len(cold.Diagnostics) != 0 {
		t.Fatalf("cold run on clean module reported %v", messages(cold))
	}

	start = time.Now()
	warm := runCache(t, cfg)
	warmDur := time.Since(start)
	if warm.Analyzed != 0 || warm.Cached != 2 {
		t.Fatalf("warm run: analyzed=%d cached=%d, want 0/2", warm.Analyzed, warm.Cached)
	}
	if warmDur*5 > coldDur {
		t.Errorf("warm run not ≥5× faster: cold=%v warm=%v", coldDur, warmDur)
	}

	// Editing b must re-analyze b AND its dependent a (the key folds in
	// recursive dependency keys), and the new finding must surface.
	bFile := filepath.Join(root, "b", "b.go")
	base, err := os.ReadFile(bFile)
	if err != nil {
		t.Fatal(err)
	}
	withBad := string(base) + "\nfunc bad() {}\n"
	if err := os.WriteFile(bFile, []byte(withBad), 0o644); err != nil {
		t.Fatal(err)
	}
	edited := runCache(t, cfg)
	if edited.Analyzed != 2 {
		t.Fatalf("after editing b: analyzed=%d (%v), want 2 (b plus dependent a)", edited.Analyzed, edited.AnalyzedPaths)
	}
	if len(edited.Diagnostics) != 1 || !strings.Contains(edited.Diagnostics[0].Message, "function named bad") {
		t.Fatalf("after editing b: diagnostics %v, want the badfunc finding", messages(edited))
	}

	// A warm run must replay the cached finding without re-analysis.
	replayed := runCache(t, cfg)
	if replayed.Analyzed != 0 {
		t.Fatalf("replay run re-analyzed %v", replayed.AnalyzedPaths)
	}
	if len(replayed.Diagnostics) != 1 || !strings.HasSuffix(replayed.Diagnostics[0].Position.Filename, filepath.FromSlash("b/b.go")) {
		t.Fatalf("replay run diagnostics %v, want the cached badfunc finding", messages(replayed))
	}

	// Suppression × cache: adding a //lint:ignore is a source edit, so the
	// key changes and the re-analysis honours the directive...
	suppressed := strings.Replace(withBad, "\nfunc bad() {}\n",
		"\n//lint:ignore badfunc fixture exercises suppression under caching\nfunc bad() {}\n", 1)
	if err := os.WriteFile(bFile, []byte(suppressed), 0o644); err != nil {
		t.Fatal(err)
	}
	ignored := runCache(t, cfg)
	if ignored.Analyzed == 0 {
		t.Fatal("editing an ignore directive did not invalidate the cached package")
	}
	if len(ignored.Diagnostics) != 0 {
		t.Fatalf("suppressed finding still reported: %v", messages(ignored))
	}
	// ...and deleting the directive brings the finding back.
	if err := os.WriteFile(bFile, []byte(withBad), 0o644); err != nil {
		t.Fatal(err)
	}
	restored := runCache(t, cfg)
	if restored.Analyzed == 0 || len(restored.Diagnostics) != 1 {
		t.Fatalf("removing the ignore: analyzed=%d diagnostics=%v, want re-analysis and the finding back",
			restored.Analyzed, messages(restored))
	}

	// Bumping the analyzer version invalidates everything.
	bumped := runCache(t, cache.Config{Root: root, Version: "test2"})
	if bumped.Analyzed != 2 {
		t.Fatalf("version bump: analyzed=%d, want 2", bumped.Analyzed)
	}

	// Changing the policy bytes invalidates everything, and the parsed
	// policy applies: an allow rule for b suppresses the finding.
	policyJSON := []byte(`{"rules":[{"analyzer":"badfunc","path":"b","action":"allow","reason":"test"}]}`)
	allowed := runCache(t, cache.Config{
		Root: root, Version: "test2",
		PolicyData: policyJSON,
		Policy: &analysis.Policy{Rules: []analysis.Rule{
			{Analyzer: "badfunc", Path: "b", Action: "allow", Reason: "test"},
		}},
	})
	if allowed.Analyzed != 2 {
		t.Fatalf("policy change: analyzed=%d, want 2", allowed.Analyzed)
	}
	if len(allowed.Diagnostics) != 0 {
		t.Fatalf("policy-allowed finding still reported: %v", messages(allowed))
	}
}

// TestCacheCoupledScopes checks the extra invalidation channel for
// whole-program analyzers whose findings do not follow the import graph:
// packages inside a coupled scope invalidate each other even without any
// import edge between them.
func TestCacheCoupledScopes(t *testing.T) {
	root := writeModule(t)
	cFile := filepath.Join(root, "c", "c.go")
	if err := os.MkdirAll(filepath.Dir(cFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cFile, []byte("package c\n\nfunc N() int { return 3 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := cache.Config{
		Root: root, Version: "test1",
		CoupledScopes: []string{"cachetest/a", "cachetest/c"},
	}
	cold := runCache(t, cfg)
	if cold.Analyzed != 3 {
		t.Fatalf("cold: analyzed=%d, want 3", cold.Analyzed)
	}

	// Edit c: a is coupled to c without importing it, so both go stale;
	// b is untouched.
	if err := os.WriteFile(cFile, []byte("package c\n\nfunc N() int { return 4 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res := runCache(t, cfg)
	want := []string{"cachetest/a", "cachetest/c"}
	if len(res.AnalyzedPaths) != 2 || res.AnalyzedPaths[0] != want[0] || res.AnalyzedPaths[1] != want[1] {
		t.Fatalf("after editing c: re-analyzed %v, want %v", res.AnalyzedPaths, want)
	}
	if res.Cached != 1 {
		t.Fatalf("after editing c: cached=%d, want 1 (b untouched)", res.Cached)
	}
}
