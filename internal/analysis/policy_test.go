package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPolicyLongestPrefixWins(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Analyzer: "errdrop", Path: "internal/bench", Action: "allow"},
		{Analyzer: "errdrop", Path: "internal/bench/hot", Action: "deny"},
		{Analyzer: "cryptorand", Path: "internal/chain", Action: "deny"},
	}}

	if !p.Allows("errdrop", "internal/bench/print.go") {
		t.Error("allow rule should cover files directly below its path")
	}
	if !p.Denies("errdrop", "internal/bench/hot/loop.go") {
		t.Error("the longer deny prefix should beat the shorter allow")
	}
	if p.Allows("errdrop", "internal/benchmark/print.go") {
		t.Error("prefix matching must respect path component boundaries")
	}
	if p.Allows("lockcheck", "internal/bench/print.go") {
		t.Error("rules must only apply to their named analyzer")
	}
	if !p.Denies("cryptorand", "internal/chain/tokenset.go") {
		t.Error("deny rules should extend scoped analyzers to new paths")
	}
	if p.Denies("cryptorand", "internal/chain") != true {
		t.Error("a rule path matches itself")
	}
}

func TestPolicyTieResolvesToAllow(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Analyzer: "*", Path: "internal/sim", Action: "deny"},
		{Analyzer: "determinism", Path: "internal/sim", Action: "allow"},
	}}
	if !p.Allows("determinism", "internal/sim/sim.go") {
		t.Error("equal-length allow and deny should resolve to allow")
	}
	if !p.Denies("errdrop", "internal/sim/sim.go") {
		t.Error("the wildcard deny should still apply to other analyzers")
	}
}

// TestPolicyTieEdgeCases pins down the resolution order when several rules
// match at the same specificity: allow wins regardless of rule order, a
// trailing slash does not change a rule's effective length, and a longer
// deny still beats the allow.
func TestPolicyTieEdgeCases(t *testing.T) {
	denyFirst := &Policy{Rules: []Rule{
		{Analyzer: "determinism", Path: "internal/sim", Action: "deny"},
		{Analyzer: "determinism", Path: "internal/sim", Action: "allow"},
	}}
	allowFirst := &Policy{Rules: []Rule{
		{Analyzer: "determinism", Path: "internal/sim", Action: "allow"},
		{Analyzer: "determinism", Path: "internal/sim", Action: "deny"},
	}}
	for name, p := range map[string]*Policy{"deny-first": denyFirst, "allow-first": allowFirst} {
		if !p.Allows("determinism", "internal/sim/sim.go") {
			t.Errorf("%s: equal-length tie must resolve to allow independent of rule order", name)
		}
	}

	slashed := &Policy{Rules: []Rule{
		{Analyzer: "determinism", Path: "internal/sim/", Action: "allow"},
		{Analyzer: "determinism", Path: "internal/sim", Action: "deny"},
	}}
	if !slashed.Allows("determinism", "internal/sim/sim.go") {
		t.Error("a trailing slash must not demote an allow below the tie")
	}

	escalated := &Policy{Rules: []Rule{
		{Analyzer: "determinism", Path: "internal/sim", Action: "allow"},
		{Analyzer: "determinism", Path: "internal/sim/hot", Action: "deny"},
	}}
	if !escalated.Denies("determinism", "internal/sim/hot/loop.go") {
		t.Error("a strictly longer deny must beat the shorter allow")
	}
	if !escalated.Allows("determinism", "internal/sim/cold/loop.go") {
		t.Error("the shorter allow must still cover paths outside the deny subtree")
	}
}

func TestLoadPolicy(t *testing.T) {
	dir := t.TempDir()

	if p, err := LoadPolicy(filepath.Join(dir, "absent.json")); err != nil || len(p.Rules) != 0 {
		t.Errorf("missing file should load as the empty policy, got %v, %v", p, err)
	}

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"rules":[{"analyzer":"errdrop","path":"a/b","action":"allow","reason":"r"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPolicy(good)
	if err != nil || len(p.Rules) != 1 {
		t.Fatalf("good policy failed to load: %v, %v", p, err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"rules":[{"analyzer":"errdrop","path":"a","action":"maybe"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPolicy(bad); err == nil {
		t.Error("invalid action should be rejected at load time")
	}
}
