package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPolicyLongestPrefixWins(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Analyzer: "errdrop", Path: "internal/bench", Action: "allow"},
		{Analyzer: "errdrop", Path: "internal/bench/hot", Action: "deny"},
		{Analyzer: "cryptorand", Path: "internal/chain", Action: "deny"},
	}}

	if !p.Allows("errdrop", "internal/bench/print.go") {
		t.Error("allow rule should cover files directly below its path")
	}
	if !p.Denies("errdrop", "internal/bench/hot/loop.go") {
		t.Error("the longer deny prefix should beat the shorter allow")
	}
	if p.Allows("errdrop", "internal/benchmark/print.go") {
		t.Error("prefix matching must respect path component boundaries")
	}
	if p.Allows("lockcheck", "internal/bench/print.go") {
		t.Error("rules must only apply to their named analyzer")
	}
	if !p.Denies("cryptorand", "internal/chain/tokenset.go") {
		t.Error("deny rules should extend scoped analyzers to new paths")
	}
	if p.Denies("cryptorand", "internal/chain") != true {
		t.Error("a rule path matches itself")
	}
}

func TestPolicyTieResolvesToAllow(t *testing.T) {
	p := &Policy{Rules: []Rule{
		{Analyzer: "*", Path: "internal/sim", Action: "deny"},
		{Analyzer: "determinism", Path: "internal/sim", Action: "allow"},
	}}
	if !p.Allows("determinism", "internal/sim/sim.go") {
		t.Error("equal-length allow and deny should resolve to allow")
	}
	if !p.Denies("errdrop", "internal/sim/sim.go") {
		t.Error("the wildcard deny should still apply to other analyzers")
	}
}

func TestLoadPolicy(t *testing.T) {
	dir := t.TempDir()

	if p, err := LoadPolicy(filepath.Join(dir, "absent.json")); err != nil || len(p.Rules) != 0 {
		t.Errorf("missing file should load as the empty policy, got %v, %v", p, err)
	}

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"rules":[{"analyzer":"errdrop","path":"a/b","action":"allow","reason":"r"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPolicy(good)
	if err != nil || len(p.Rules) != 1 {
		t.Fatalf("good policy failed to load: %v, %v", p, err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"rules":[{"analyzer":"errdrop","path":"a","action":"maybe"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPolicy(bad); err == nil {
		t.Error("invalid action should be rejected at load time")
	}
}
