package diversity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tokenmagic/internal/chain"
)

func TestEntropyKnownValues(t *testing.T) {
	h := NewHistogram()
	if h.Entropy() != 0 || h.EffectiveClasses() != 0 {
		t.Fatal("empty histogram: entropy and effective classes must be 0")
	}
	h.AddN(1, 4)
	if h.Entropy() != 0 {
		t.Fatalf("single class entropy = %v", h.Entropy())
	}
	// Uniform over 4 classes: entropy = 2 bits, effective classes = 4.
	u := NewHistogram()
	for i := chain.TxID(0); i < 4; i++ {
		u.AddN(i, 3)
	}
	if math.Abs(u.Entropy()-2) > 1e-9 {
		t.Fatalf("uniform-4 entropy = %v", u.Entropy())
	}
	if math.Abs(u.EffectiveClasses()-4) > 1e-9 {
		t.Fatalf("effective classes = %v", u.EffectiveClasses())
	}
}

func TestSatisfiesEntropy(t *testing.T) {
	u := NewHistogram()
	for i := chain.TxID(0); i < 4; i++ {
		u.Add(i)
	}
	if !u.SatisfiesEntropy(4) {
		t.Fatal("uniform-4 must be entropy 4-diverse")
	}
	if u.SatisfiesEntropy(5) {
		t.Fatal("uniform-4 cannot be entropy 5-diverse")
	}
	// Skew: 4 classes but dominated by one.
	s := NewHistogram()
	s.AddN(0, 9)
	s.AddN(1, 1)
	s.AddN(2, 1)
	s.AddN(3, 1)
	if s.SatisfiesEntropy(4) {
		t.Fatal("skewed distribution must fail entropy 4-diversity")
	}
	// Vacuous cases.
	if !NewHistogram().SatisfiesEntropy(10) {
		t.Fatal("empty histogram vacuously satisfies")
	}
	if !s.SatisfiesEntropy(1) {
		t.Fatal("ℓ=1 is always satisfied")
	}
}

// Property: entropy ℓ-diversity implies at least ℓ distinct classes
// (entropy ≤ log2(θ)), i.e. it is at least as demanding as "distinct
// ℓ-diversity".
func TestEntropyImpliesDistinct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < 1+rng.Intn(30); i++ {
			h.Add(chain.TxID(rng.Intn(8)))
		}
		l := 2 + rng.Intn(5)
		if h.SatisfiesEntropy(l) {
			return h.Classes() >= l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: effective classes never exceed actual classes.
func TestEffectiveClassesBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < 1+rng.Intn(30); i++ {
			h.Add(chain.TxID(rng.Intn(6)))
		}
		return h.EffectiveClasses() <= float64(h.Classes())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
