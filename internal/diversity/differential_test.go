package diversity

// Differential tests: drive random Add/Remove/AddN/RemoveN sequences and
// assert the incremental count-of-counts index always agrees with a
// from-scratch sorted recomputation over an independently maintained model.

import (
	"math/rand"
	"sort"
	"testing"

	"tokenmagic/internal/chain"
)

// model is the reference implementation: a plain count map, recomputed from
// scratch (collect → sort descending → fold) on every query.
type model map[chain.TxID]int

func (m model) freqsDesc() []int {
	qs := make([]int, 0, len(m))
	for _, c := range m {
		qs = append(qs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(qs)))
	return qs
}

func (m model) total() int {
	t := 0
	for _, c := range m {
		t += c
	}
	return t
}

func (m model) slack(req Requirement) float64 {
	if m.total() == 0 {
		return -1
	}
	qs := m.freqsDesc()
	tail := 0.0
	for i := req.L - 1; i < len(qs); i++ {
		tail += float64(qs[i])
	}
	return float64(qs[0]) - req.C*tail
}

func (m model) maxCount() int {
	best := 0
	for _, c := range m {
		if c > best {
			best = c
		}
	}
	return best
}

func (m model) minCount() int {
	best := 0
	for _, c := range m {
		if best == 0 || c < best {
			best = c
		}
	}
	return best
}

var diffReqs = []Requirement{
	{C: 0.5, L: 1}, {C: 0.6, L: 2}, {C: 1, L: 3}, {C: 2, L: 4}, {C: 0.3, L: 7},
}

func checkAgainstModel(t *testing.T, step int, h *Histogram, m model) {
	t.Helper()
	if h.Total() != m.total() {
		t.Fatalf("step %d: Total = %d, model %d", step, h.Total(), m.total())
	}
	if h.Classes() != len(m) {
		t.Fatalf("step %d: Classes = %d, model %d", step, h.Classes(), len(m))
	}
	if h.MaxCount() != m.maxCount() {
		t.Fatalf("step %d: MaxCount = %d, model %d", step, h.MaxCount(), m.maxCount())
	}
	if h.MinCount() != m.minCount() {
		t.Fatalf("step %d: MinCount = %d, model %d", step, h.MinCount(), m.minCount())
	}
	got, want := h.Frequencies(), m.freqsDesc()
	if len(got) != len(want) {
		t.Fatalf("step %d: Frequencies len %d, model %d", step, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("step %d: Frequencies[%d] = %d, model %d (%v vs %v)", step, i, got[i], want[i], got, want)
		}
	}
	for _, req := range diffReqs {
		if hs, ms := h.Slack(req), m.slack(req); hs != ms {
			t.Fatalf("step %d: Slack(%v) = %v, model %v (freqs %v)", step, req, hs, ms, want)
		}
		if h.Satisfies(req) != (m.slack(req) < 0) {
			t.Fatalf("step %d: Satisfies(%v) disagrees with model", step, req)
		}
	}
}

func TestHistogramDifferentialRandomOps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		m := model{}
		const classes = 12
		for step := 0; step < 2000; step++ {
			tx := chain.TxID(rng.Intn(classes))
			switch rng.Intn(5) {
			case 0, 1:
				h.Add(tx)
				m[tx]++
			case 2:
				n := 1 + rng.Intn(6)
				h.AddN(tx, n)
				m[tx] += n
			case 3:
				h.Remove(tx)
				if m[tx] > 0 {
					m[tx]--
					if m[tx] == 0 {
						delete(m, tx)
					}
				}
			case 4:
				n := 1 + rng.Intn(6)
				h.RemoveN(tx, n)
				if c := m[tx]; c > 0 {
					if n > c {
						n = c
					}
					if m[tx] = c - n; m[tx] == 0 {
						delete(m, tx)
					}
				}
			}
			if step%7 == 0 || step > 1900 {
				checkAgainstModel(t, step, h, m)
			}
		}
		checkAgainstModel(t, -1, h, m)
	}
}

// TestHistogramProbesMatchScratch checks the delta probes (SlackIfAdded,
// SlackWithout) against a from-scratch recomputation and asserts they leave
// the index unmodified.
func TestHistogramProbesMatchScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := NewHistogram()
	m := model{}
	const classes = 10
	for i := 0; i < 300; i++ {
		tx := chain.TxID(rng.Intn(classes))
		n := 1 + rng.Intn(4)
		h.AddN(tx, n)
		m[tx] += n

		// SlackIfAdded probe with a random delta.
		delta := make([]chain.TxID, rng.Intn(6))
		for j := range delta {
			delta[j] = chain.TxID(rng.Intn(classes + 3))
		}
		m2 := model{}
		for tx, c := range m {
			m2[tx] = c
		}
		for _, tx := range delta {
			m2[tx]++
		}
		for _, req := range diffReqs {
			if got, want := h.SlackIfAdded(req, delta), m2.slack(req); got != want {
				t.Fatalf("SlackIfAdded(%v, %v) = %v, scratch %v", req, delta, got, want)
			}
		}
		checkAgainstModel(t, i, h, m) // probe must not leave residue

		// SlackWithout probe for every present class and one absent one.
		for probe := 0; probe < classes+1; probe++ {
			tx := chain.TxID(probe)
			m3 := model{}
			for k, c := range m {
				if k != tx {
					m3[k] = c
				}
			}
			for _, req := range diffReqs {
				if got, want := h.SlackWithout(req, tx), m3.slack(req); got != want {
					t.Fatalf("SlackWithout(%v, %v) = %v, scratch %v (model %v)", req, tx, got, want, m)
				}
			}
		}
		checkAgainstModel(t, i, h, m)
	}
}

func TestHistogramResetReuse(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		h.Reset()
		m := model{}
		for i := 0; i < 50; i++ {
			tx := chain.TxID(rng.Intn(6))
			h.Add(tx)
			m[tx]++
		}
		checkAgainstModel(t, round, h, m)
	}
	h.Reset()
	if h.Total() != 0 || h.Classes() != 0 || h.MaxCount() != 0 || h.Slack(Requirement{C: 1, L: 2}) != -1 {
		t.Fatal("Reset did not empty the histogram")
	}
}

func FuzzHistogramDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 4, 5})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		h := NewHistogram()
		m := model{}
		for i := 0; i+1 < len(ops); i += 2 {
			tx := chain.TxID(ops[i] % 9)
			if ops[i+1] < 128 {
				n := int(ops[i+1]%5) + 1
				h.AddN(tx, n)
				m[tx] += n
			} else {
				n := int(ops[i+1]%5) + 1
				h.RemoveN(tx, n)
				if c := m[tx]; c > 0 {
					if n > c {
						n = c
					}
					if m[tx] = c - n; m[tx] == 0 {
						delete(m, tx)
					}
				}
			}
		}
		checkAgainstModel(t, -1, h, m)
	})
}
