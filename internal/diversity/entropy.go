package diversity

import "math"

// Entropy ℓ-diversity is the sibling of the recursive variant in
// Machanavajjhala et al.'s taxonomy: a multiset is entropy ℓ-diverse when
// the Shannon entropy of its class distribution is at least log(ℓ). The
// paper adopts the recursive variant for DA-MS; the entropy variant is
// provided as an audit metric and an alternative acceptance test —
// it is strictly stronger at equal ℓ for skewed distributions and is what
// several deanonymisation papers report, so the harness exposes both.

// Entropy returns the Shannon entropy (in bits) of the histogram's HT
// distribution; 0 for empty or single-class histograms.
func (h *Histogram) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	e := 0.0
	for _, c := range h.counts {
		p := float64(c) / float64(h.total)
		e -= p * math.Log2(p)
	}
	return e
}

// EffectiveClasses returns 2^entropy — the "effective number" of equally
// likely HTs the distribution is worth. A ring whose tokens are spread over
// 10 HTs but dominated by one of them may have an effective class count
// barely above 1.
func (h *Histogram) EffectiveClasses() float64 {
	if h.total == 0 {
		return 0
	}
	return math.Exp2(h.Entropy())
}

// SatisfiesEntropy reports entropy ℓ-diversity: entropy ≥ log2(ℓ).
// ℓ ≤ 1 is vacuously satisfied by any non-empty histogram.
func (h *Histogram) SatisfiesEntropy(l int) bool {
	if h.total == 0 {
		return true
	}
	if l <= 1 {
		return true
	}
	return h.Entropy() >= math.Log2(float64(l))-1e-12
}
