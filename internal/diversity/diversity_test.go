package diversity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokenmagic/internal/chain"
)

func originFromSlice(hts []chain.TxID) func(chain.TokenID) chain.TxID {
	return func(t chain.TokenID) chain.TxID {
		if t < 0 || int(t) >= len(hts) {
			return chain.NoTx
		}
		return hts[t]
	}
}

func TestRequirementValidate(t *testing.T) {
	cases := []struct {
		req Requirement
		ok  bool
	}{
		{Requirement{C: 0.5, L: 2}, true},
		{Requirement{C: 1, L: 1}, true},
		{Requirement{C: 0, L: 2}, false},
		{Requirement{C: -1, L: 2}, false},
		{Requirement{C: 0.5, L: 0}, false},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) err = %v, want ok=%v", c.req, err, c.ok)
		}
	}
}

func TestWithHeadroom(t *testing.T) {
	r := Requirement{C: 0.6, L: 3}
	h := r.WithHeadroom()
	if h.C != 0.6 || h.L != 4 {
		t.Fatalf("WithHeadroom = %v", h)
	}
}

// Paper Section 2.5 worked example: r3 = {t1, t3, t4} with t1,t3 from h1 and
// t4 from h2 gives frequencies [2,1]. (2,1)-diversity holds (2 < 2·(2+1));
// (3,2)-diversity holds for the RS itself (2 < 3·1).
func TestPaperSection25Example(t *testing.T) {
	hts := []chain.TxID{0, 1, 0, 1} // unused baseline
	_ = hts
	h := NewHistogram()
	h.AddN(1, 2) // h1 appears twice
	h.AddN(2, 1) // h2 once

	if !h.Satisfies(Requirement{C: 2, L: 1}) {
		t.Error("(2,1) should be satisfied: 2 < 2*(2+1)")
	}
	if !h.Satisfies(Requirement{C: 3, L: 2}) {
		t.Error("(3,2) should be satisfied for the RS itself: 2 < 3*1")
	}
	// DTRS histogram {h1:2} violates (3,2): 2 >= 3*0.
	d := NewHistogram()
	d.AddN(1, 2)
	if d.Satisfies(Requirement{C: 3, L: 2}) {
		t.Error("(3,2) should fail on single-class histogram")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Classes() != 0 || h.MaxCount() != 0 || h.MinCount() != 0 {
		t.Fatal("empty histogram should be all-zero")
	}
	h.Add(5)
	h.Add(5)
	h.Add(7)
	if h.Total() != 3 || h.Classes() != 2 {
		t.Fatalf("Total=%d Classes=%d", h.Total(), h.Classes())
	}
	if h.Count(5) != 2 || h.Count(7) != 1 || h.Count(9) != 0 {
		t.Fatal("bad counts")
	}
	if h.MaxCount() != 2 || h.MinCount() != 1 {
		t.Fatalf("Max=%d Min=%d", h.MaxCount(), h.MinCount())
	}
	qs := h.Frequencies()
	if len(qs) != 2 || qs[0] != 2 || qs[1] != 1 {
		t.Fatalf("Frequencies = %v", qs)
	}

	h.Remove(5)
	if h.Count(5) != 1 || h.Total() != 2 {
		t.Fatal("Remove failed")
	}
	h.Remove(5)
	if h.Count(5) != 0 || h.Classes() != 1 {
		t.Fatal("Remove to zero should delete class")
	}
	h.Remove(5) // no-op
	if h.Total() != 1 {
		t.Fatal("Remove on absent class must be a no-op")
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 3)
	c := h.Clone()
	c.Add(2)
	if h.Total() != 3 || c.Total() != 4 {
		t.Fatal("Clone must be independent")
	}
}

func TestHistogramOf(t *testing.T) {
	origin := originFromSlice([]chain.TxID{0, 0, 1, 2, 2, 2})
	h := HistogramOf(chain.NewTokenSet(0, 1, 2, 3, 4, 5), origin)
	if h.Total() != 6 || h.Classes() != 3 {
		t.Fatalf("Total=%d Classes=%d", h.Total(), h.Classes())
	}
	qs := h.Frequencies()
	if qs[0] != 3 || qs[1] != 2 || qs[2] != 1 {
		t.Fatalf("Frequencies = %v", qs)
	}
}

func TestSatisfiesEdgeCases(t *testing.T) {
	// Empty histogram: vacuously satisfied.
	if !NewHistogram().Satisfies(Requirement{C: 0.1, L: 10}) {
		t.Error("empty histogram should satisfy vacuously")
	}
	// θ < ℓ: non-empty can never satisfy.
	h := NewHistogram()
	h.AddN(1, 1)
	h.AddN(2, 1)
	if h.Satisfies(Requirement{C: 100, L: 3}) {
		t.Error("θ=2 < ℓ=3 must fail regardless of c")
	}
	// Boundary: strict inequality. q1=1, c=1, ℓ=1: 1 < 1*(1) is false.
	one := NewHistogram()
	one.Add(1)
	if one.Satisfies(Requirement{C: 1, L: 1}) {
		t.Error("q1 = c*tail must fail (strict inequality)")
	}
	if !one.Satisfies(Requirement{C: 1.5, L: 1}) {
		t.Error("1 < 1.5*1 should pass")
	}
}

func TestSlackSignMatchesSatisfies(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < r.Intn(20); i++ {
			h.Add(chain.TxID(r.Intn(6)))
		}
		req := Requirement{C: 0.1 + r.Float64()*2, L: 1 + r.Intn(5)}
		return h.Satisfies(req) == (h.Slack(req) < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (monotonicity in c): if (c, ℓ) holds then (c', ℓ) holds for c' ≥ c.
func TestMonotoneInC(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < 1+r.Intn(25); i++ {
			h.Add(chain.TxID(r.Intn(8)))
		}
		c := 0.1 + r.Float64()
		l := 1 + r.Intn(4)
		if h.Satisfies(Requirement{C: c, L: l}) {
			return h.Satisfies(Requirement{C: c + 0.5, L: l})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (monotonicity in ℓ): if (c, ℓ+1) holds then (c, ℓ) holds, because
// the tail sum only grows when ℓ shrinks. This is the headroom direction used
// by the second practical configuration.
func TestMonotoneInL(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < 1+r.Intn(25); i++ {
			h.Add(chain.TxID(r.Intn(8)))
		}
		c := 0.1 + r.Float64()
		l := 1 + r.Intn(4)
		if h.Satisfies(Requirement{C: c, L: l + 1}) {
			return h.Satisfies(Requirement{C: c, L: l})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctHTsNeeded(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(2)
	if got := h.DistinctHTsNeeded(Requirement{C: 1, L: 5}); got != 3 {
		t.Fatalf("needed = %d, want 3", got)
	}
	if got := h.DistinctHTsNeeded(Requirement{C: 1, L: 2}); got != 0 {
		t.Fatalf("needed = %d, want 0", got)
	}
}

func TestSatisfiesTokens(t *testing.T) {
	origin := originFromSlice([]chain.TxID{0, 1, 2, 3})
	if !SatisfiesTokens(chain.NewTokenSet(0, 1, 2, 3), origin, Requirement{C: 0.5, L: 2}) {
		t.Error("uniform 4-class multiset should satisfy (0.5, 2): 1 < 0.5*3")
	}
	if SatisfiesTokens(chain.NewTokenSet(0, 1), origin, Requirement{C: 0.5, L: 2}) {
		t.Error("1 < 0.5*1 is false")
	}
}
