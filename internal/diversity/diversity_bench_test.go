package diversity

import (
	"testing"

	"tokenmagic/internal/chain"
)

// benchHist builds a histogram shaped like a mid-solve selection: ~40 HT
// classes with skewed counts.
func benchHist() *Histogram {
	h := NewHistogram()
	for c := 0; c < 40; c++ {
		h.AddN(chain.TxID(c), 1+c%5)
	}
	return h
}

func BenchmarkHistogramAddRemove(b *testing.B) {
	h := benchHist()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := chain.TxID(i % 40)
		h.Add(tx)
		h.Remove(tx)
	}
}

func BenchmarkHistogramSlack(b *testing.B) {
	h := benchHist()
	req := Requirement{C: 0.6, L: 41}
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s = h.Slack(req)
	}
	_ = s
}

func BenchmarkHistogramSlackIfAdded(b *testing.B) {
	h := benchHist()
	req := Requirement{C: 0.6, L: 41}
	delta := []chain.TxID{1, 3, 3, 7, 41, 42}
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s = h.SlackIfAdded(req, delta)
	}
	_ = s
}

func BenchmarkHistogramSlackWithout(b *testing.B) {
	h := benchHist()
	req := Requirement{C: 0.6, L: 5}
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s = h.SlackWithout(req, chain.TxID(i%40))
	}
	_ = s
}
