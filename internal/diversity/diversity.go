// Package diversity implements the recursive (c, ℓ)-diversity predicate the
// paper borrows from Machanavajjhala et al. and applies to the multiset of
// historical transactions (HTs) behind a ring signature's tokens.
//
// A frequency vector q₁ ≥ q₂ ≥ … ≥ q_θ (qᵢ = number of tokens whose HT is
// the i-th most frequent) satisfies recursive (c, ℓ)-diversity iff
//
//	q₁ < c · (q_ℓ + q_{ℓ+1} + … + q_θ).
//
// A ring signature is a recursive (c, ℓ)-diversity RS when both its own HT
// multiset and the HT multiset of each of its DTRSs satisfy the predicate
// (Definition 4). This package only provides the predicate and histogram
// machinery; DTRS enumeration lives in internal/dtrs.
//
// Histogram is an incremental count-of-counts index: alongside the per-HT
// counts it maintains freq[c] (the number of HT classes with exactly c
// tokens), the running q₁ and the token total, so Add/Remove/AddN/RemoveN
// are O(1) and Slack/Satisfies/MaxCount/Classes read without allocating or
// sorting. DESIGN.md ("Incremental diversity-slack engine") documents the
// invariants.
package diversity

import (
	"errors"
	"fmt"

	"tokenmagic/internal/chain"
)

// Requirement is a user-declared recursive (c, ℓ)-diversity requirement.
type Requirement struct {
	C float64
	L int
}

// Validate reports whether the requirement parameters are well formed.
// c must be positive (the paper varies it in (0, 1]); ℓ must be ≥ 1.
func (r Requirement) Validate() error {
	if r.C <= 0 {
		return fmt.Errorf("%w: c = %v", ErrBadRequirement, r.C)
	}
	if r.L < 1 {
		return fmt.Errorf("%w: ℓ = %d", ErrBadRequirement, r.L)
	}
	return nil
}

// WithHeadroom returns the requirement tightened to (c, ℓ+1). Theorem 6.4:
// if a ring's HT multiset satisfies (c, ℓ+1)-diversity then every DTRS of the
// ring satisfies (c, ℓ)-diversity, which is how the second practical
// configuration guarantees immutability.
func (r Requirement) WithHeadroom() Requirement { return Requirement{C: r.C, L: r.L + 1} }

func (r Requirement) String() string { return fmt.Sprintf("(%g,%d)-diversity", r.C, r.L) }

// ErrBadRequirement reports malformed (c, ℓ) parameters.
var ErrBadRequirement = errors.New("diversity: invalid requirement")

// Histogram is a multiset of HTs represented as per-HT counts plus a
// count-of-counts index. The zero value is an empty histogram ready to use.
//
// Invariants (see DESIGN.md):
//
//	freq[c]  = |{h : counts[h] == c}| for 1 ≤ c ≤ max
//	max      = q₁ = max count (0 when empty)
//	total    = Σ_c c·freq[c] = Σ_h counts[h]
//	Classes  = θ = Σ_c freq[c] = len(counts)
type Histogram struct {
	counts map[chain.TxID]int
	freq   []int // freq[c] = classes with exactly c tokens; index 0 unused
	max    int   // running q₁
	total  int

	// Probe scratch (SlackIfAdded): reused across calls so delta probes
	// allocate nothing after warm-up.
	probeTx  []chain.TxID
	probeOld []int
	probeNew []int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[chain.TxID]int)}
}

// HistogramOf builds the HT histogram for a token set under the given
// token→HT mapping. Tokens mapping to chain.NoTx are counted under NoTx —
// they still occupy a histogram class, mirroring the paper's treatment of
// every token having exactly one HT.
func HistogramOf(tokens chain.TokenSet, origin func(chain.TokenID) chain.TxID) *Histogram {
	h := NewHistogram()
	for _, t := range tokens {
		h.Add(origin(t))
	}
	return h
}

// bump moves one class from count old to count new in the freq index and
// maintains the running maximum. old or new may be 0 (class appears or
// disappears).
func (h *Histogram) bump(old, new int) {
	if old > 0 {
		h.freq[old]--
	}
	if new > 0 {
		for len(h.freq) <= new {
			h.freq = append(h.freq, 0)
		}
		h.freq[new]++
		if new > h.max {
			h.max = new
		}
	}
	// Walking max down is amortised O(1): each level crossed was paid for by
	// the additions that raised max past it.
	for h.max > 0 && h.freq[h.max] == 0 {
		h.max--
	}
}

// Add records one token from HT tx.
func (h *Histogram) Add(tx chain.TxID) { h.AddN(tx, 1) }

// AddN records n tokens from HT tx.
func (h *Histogram) AddN(tx chain.TxID, n int) {
	if n <= 0 {
		return
	}
	if h.counts == nil {
		//lint:ignore hotalloc lazy one-time init of the backing map; every later AddN reuses it, so steady-state stays allocation-free
		h.counts = make(map[chain.TxID]int)
	}
	old := h.counts[tx]
	h.counts[tx] = old + n
	h.total += n
	h.bump(old, old+n)
}

// Remove deletes one token of HT tx; it is a no-op if none is recorded.
func (h *Histogram) Remove(tx chain.TxID) { h.RemoveN(tx, 1) }

// RemoveN deletes up to n tokens of HT tx (all of them if fewer than n are
// recorded).
func (h *Histogram) RemoveN(tx chain.TxID, n int) {
	if n <= 0 || h.counts == nil {
		return
	}
	old := h.counts[tx]
	if old == 0 {
		return
	}
	if n > old {
		n = old
	}
	new := old - n
	if new == 0 {
		delete(h.counts, tx)
	} else {
		h.counts[tx] = new
	}
	h.total -= n
	h.bump(old, new)
}

// Reset empties the histogram, retaining its allocations for reuse.
func (h *Histogram) Reset() {
	clear(h.counts)
	for i := range h.freq {
		h.freq[i] = 0
	}
	h.max, h.total = 0, 0
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{
		counts: make(map[chain.TxID]int, len(h.counts)),
		freq:   make([]int, len(h.freq)),
		max:    h.max,
		total:  h.total,
	}
	for k, v := range h.counts {
		out.counts[k] = v
	}
	copy(out.freq, h.freq)
	return out
}

// Total returns the number of tokens recorded.
func (h *Histogram) Total() int { return h.total }

// Classes returns θ, the number of distinct HTs recorded.
func (h *Histogram) Classes() int { return len(h.counts) }

// Count returns the number of tokens recorded for one HT.
func (h *Histogram) Count(tx chain.TxID) int { return h.counts[tx] }

// Each calls f for every (HT, count) class until f returns false. Iteration
// order is unspecified. f must not mutate the histogram.
func (h *Histogram) Each(f func(tx chain.TxID, n int) bool) {
	for tx, n := range h.counts {
		if !f(tx, n) {
			return
		}
	}
}

// Frequencies returns the counts sorted in non-increasing order
// (q₁ ≥ q₂ ≥ … ≥ q_θ), materialised from the count-of-counts index without
// sorting.
func (h *Histogram) Frequencies() []int {
	qs := make([]int, 0, len(h.counts))
	for c := h.max; c >= 1; c-- {
		for i := 0; i < h.freq[c]; i++ {
			qs = append(qs, c)
		}
	}
	return qs
}

// MaxCount returns q₁ (0 for an empty histogram). This is the q_M of
// Theorems 6.2/6.5/6.7. O(1): the maximum is maintained incrementally.
func (h *Histogram) MaxCount() int { return h.max }

// MinCount returns q_θ (0 for an empty histogram); the paper's q_min.
func (h *Histogram) MinCount() int {
	for c := 1; c <= h.max; c++ {
		if h.freq[c] > 0 {
			return c
		}
	}
	return 0
}

// Satisfies reports whether the histogram satisfies recursive
// (c, ℓ)-diversity: q₁ < c·(q_ℓ + … + q_θ). When θ < ℓ the tail sum is
// empty, so a non-empty histogram always fails (q₁ ≥ 1 > 0 = c·0); an empty
// histogram vacuously satisfies every requirement.
//
//tmlint:hotpath
func (h *Histogram) Satisfies(req Requirement) bool {
	return h.Slack(req) < 0
}

// Slack returns δ = q₁ − c·(q_ℓ + … + q_θ). Negative slack means the
// requirement is met; the Progressive algorithm greedily drives δ below 0
// (Section 6.2), so exposing it directly avoids recomputation.
//
// The ℓ-tail q_ℓ+…+q_θ is total − (q₁+…+q_{ℓ−1}); the head sum is read off
// the count-of-counts index by walking at most q₁ levels from the running
// maximum, with zero allocation. ℓ is a per-call parameter, so one index
// serves every requirement (see DESIGN.md on why the head walk, not a
// pinned-ℓ running tail, is the right trade).
//
//tmlint:hotpath
func (h *Histogram) Slack(req Requirement) float64 {
	if h.total == 0 {
		return -1 // vacuous satisfaction for empty multisets
	}
	head := 0
	k := req.L - 1 // classes still wanted in the head
	for c := h.max; c >= 1 && k > 0; c-- {
		n := h.freq[c]
		if n == 0 {
			continue
		}
		if n > k {
			n = k
		}
		head += n * c
		k -= n
	}
	return float64(h.max) - req.C*float64(h.total-head)
}

// SlackIfAdded returns the slack the histogram would have after adding one
// token from each HT in hts (duplicates add multiplicity). The probe is
// read-only: it overlays the delta on the count-of-counts walk without
// touching the underlying map, so it neither clones nor allocates (beyond
// warm-up of a reusable scratch buffer).
//
//tmlint:readonly hts
//tmlint:hotpath
func (h *Histogram) SlackIfAdded(req Requirement, hts []chain.TxID) float64 {
	h.probeTx = h.probeTx[:0]
	h.probeNew = h.probeNew[:0]
	for _, tx := range hts {
		found := false
		for j, x := range h.probeTx {
			if x == tx {
				h.probeNew[j]++
				found = true
				break
			}
		}
		if !found {
			h.probeTx = append(h.probeTx, tx)
			h.probeNew = append(h.probeNew, 1)
		}
	}
	return h.SlackIfAddedN(req, h.probeTx, h.probeNew)
}

// SlackIfAddedN returns the slack the histogram would have after adding
// ns[i] tokens of class txs[i] for each i. txs must be distinct and ns
// positive — exactly the footprint shape internal/selector precomputes per
// module. Read-only: only map lookups, no mutation, no allocation.
//
//tmlint:readonly txs ns
//tmlint:hotpath
func (h *Histogram) SlackIfAddedN(req Requirement, txs []chain.TxID, ns []int) float64 {
	f := len(txs)
	if cap(h.probeOld) < f {
		//lint:ignore hotalloc amortized scratch warm-up: grows monotonically to the widest footprint, then every probe reuses it (the benchmarks assert 0 allocs/op steady-state)
		h.probeOld = make([]int, f)
	}
	old := h.probeOld[:f]
	newTotal := h.total
	newMax := h.max
	for i, tx := range txs {
		c := h.counts[tx]
		old[i] = c
		newTotal += ns[i]
		if c+ns[i] > newMax {
			newMax = c + ns[i]
		}
	}
	if newTotal == 0 {
		return -1
	}
	head := 0
	k := req.L - 1
	for c := newMax; c >= 1 && k > 0; c-- {
		n := 0
		if c <= h.max {
			n = h.freq[c]
		}
		// Overlay the delta: each probed class leaves level old[i] and
		// lands on level old[i]+ns[i].
		for i := 0; i < f; i++ {
			if old[i] == c {
				n--
			}
			if old[i]+ns[i] == c {
				n++
			}
		}
		if n <= 0 {
			continue
		}
		if n > k {
			n = k
		}
		head += n * c
		k -= n
	}
	return float64(newMax) - req.C*float64(newTotal-head)
}

// SlackWithout returns the slack the histogram would have if the whole class
// tx were removed, without mutating the index. This is exactly the DTRS
// check of Theorem 6.1: ψ(i,j) = ring \ T̃(h_j) drops one full HT class.
//
//tmlint:hotpath
func (h *Histogram) SlackWithout(req Requirement, tx chain.TxID) float64 {
	drop := h.counts[tx]
	if drop == 0 {
		return h.Slack(req)
	}
	total := h.total - drop
	if total == 0 {
		return -1
	}
	q1 := 0
	head := 0
	k := req.L - 1
	for c := h.max; c >= 1; c-- {
		n := h.freq[c]
		if c == drop {
			n--
		}
		if n == 0 {
			continue
		}
		if q1 == 0 {
			q1 = c
		}
		if k <= 0 {
			break
		}
		if n > k {
			n = k
		}
		head += n * c
		k -= n
	}
	return float64(q1) - req.C*float64(total-head)
}

// DistinctHTsNeeded is a quick lower bound helper: a multiset can only
// satisfy (c, ℓ) when it spans at least ℓ distinct HTs. (With θ ≥ ℓ the tail
// is non-empty; with θ < ℓ it can never pass.)
func (h *Histogram) DistinctHTsNeeded(req Requirement) int {
	if missing := req.L - h.Classes(); missing > 0 {
		return missing
	}
	return 0
}

// SatisfiesTokens is a convenience wrapper: it builds the histogram of the
// token set and evaluates the predicate.
//
//tmlint:readonly tokens
func SatisfiesTokens(tokens chain.TokenSet, origin func(chain.TokenID) chain.TxID, req Requirement) bool {
	return HistogramOf(tokens, origin).Satisfies(req)
}
