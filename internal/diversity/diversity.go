// Package diversity implements the recursive (c, ℓ)-diversity predicate the
// paper borrows from Machanavajjhala et al. and applies to the multiset of
// historical transactions (HTs) behind a ring signature's tokens.
//
// A frequency vector q₁ ≥ q₂ ≥ … ≥ q_θ (qᵢ = number of tokens whose HT is
// the i-th most frequent) satisfies recursive (c, ℓ)-diversity iff
//
//	q₁ < c · (q_ℓ + q_{ℓ+1} + … + q_θ).
//
// A ring signature is a recursive (c, ℓ)-diversity RS when both its own HT
// multiset and the HT multiset of each of its DTRSs satisfy the predicate
// (Definition 4). This package only provides the predicate and histogram
// machinery; DTRS enumeration lives in internal/dtrs.
package diversity

import (
	"errors"
	"fmt"
	"sort"

	"tokenmagic/internal/chain"
)

// Requirement is a user-declared recursive (c, ℓ)-diversity requirement.
type Requirement struct {
	C float64
	L int
}

// Validate reports whether the requirement parameters are well formed.
// c must be positive (the paper varies it in (0, 1]); ℓ must be ≥ 1.
func (r Requirement) Validate() error {
	if r.C <= 0 {
		return fmt.Errorf("%w: c = %v", ErrBadRequirement, r.C)
	}
	if r.L < 1 {
		return fmt.Errorf("%w: ℓ = %d", ErrBadRequirement, r.L)
	}
	return nil
}

// WithHeadroom returns the requirement tightened to (c, ℓ+1). Theorem 6.4:
// if a ring's HT multiset satisfies (c, ℓ+1)-diversity then every DTRS of the
// ring satisfies (c, ℓ)-diversity, which is how the second practical
// configuration guarantees immutability.
func (r Requirement) WithHeadroom() Requirement { return Requirement{C: r.C, L: r.L + 1} }

func (r Requirement) String() string { return fmt.Sprintf("(%g,%d)-diversity", r.C, r.L) }

// ErrBadRequirement reports malformed (c, ℓ) parameters.
var ErrBadRequirement = errors.New("diversity: invalid requirement")

// Histogram is a multiset of HTs represented as per-HT counts. The zero value
// is an empty histogram ready to use.
type Histogram struct {
	counts map[chain.TxID]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[chain.TxID]int)}
}

// HistogramOf builds the HT histogram for a token set under the given
// token→HT mapping. Tokens mapping to chain.NoTx are counted under NoTx —
// they still occupy a histogram class, mirroring the paper's treatment of
// every token having exactly one HT.
func HistogramOf(tokens chain.TokenSet, origin func(chain.TokenID) chain.TxID) *Histogram {
	h := NewHistogram()
	for _, t := range tokens {
		h.Add(origin(t))
	}
	return h
}

// Add records one token from HT h.
func (h *Histogram) Add(tx chain.TxID) {
	if h.counts == nil {
		h.counts = make(map[chain.TxID]int)
	}
	h.counts[tx]++
	h.total++
}

// AddN records n tokens from HT h.
func (h *Histogram) AddN(tx chain.TxID, n int) {
	if n <= 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[chain.TxID]int)
	}
	h.counts[tx] += n
	h.total += n
}

// Remove deletes one token of HT h; it is a no-op if none is recorded.
func (h *Histogram) Remove(tx chain.TxID) {
	if h.counts == nil {
		return
	}
	if c := h.counts[tx]; c > 0 {
		if c == 1 {
			delete(h.counts, tx)
		} else {
			h.counts[tx] = c - 1
		}
		h.total--
	}
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{counts: make(map[chain.TxID]int, len(h.counts)), total: h.total}
	for k, v := range h.counts {
		out.counts[k] = v
	}
	return out
}

// Total returns the number of tokens recorded.
func (h *Histogram) Total() int { return h.total }

// Classes returns θ, the number of distinct HTs recorded.
func (h *Histogram) Classes() int { return len(h.counts) }

// Count returns the number of tokens recorded for one HT.
func (h *Histogram) Count(tx chain.TxID) int { return h.counts[tx] }

// Frequencies returns the counts sorted in non-increasing order
// (q₁ ≥ q₂ ≥ … ≥ q_θ).
func (h *Histogram) Frequencies() []int {
	qs := make([]int, 0, len(h.counts))
	for _, c := range h.counts {
		qs = append(qs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(qs)))
	return qs
}

// MaxCount returns q₁ (0 for an empty histogram). This is the q_M of
// Theorems 6.2/6.5/6.7.
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// MinCount returns q_θ (0 for an empty histogram); the paper's q_min.
func (h *Histogram) MinCount() int {
	m := 0
	first := true
	for _, c := range h.counts {
		if first || c < m {
			m = c
			first = false
		}
	}
	return m
}

// Satisfies reports whether the histogram satisfies recursive
// (c, ℓ)-diversity: q₁ < c·(q_ℓ + … + q_θ). When θ < ℓ the tail sum is
// empty, so a non-empty histogram always fails (q₁ ≥ 1 > 0 = c·0); an empty
// histogram vacuously satisfies every requirement.
func (h *Histogram) Satisfies(req Requirement) bool {
	return h.Slack(req) < 0
}

// Slack returns δ = q₁ − c·(q_ℓ + … + q_θ). Negative slack means the
// requirement is met; the Progressive algorithm greedily drives δ below 0
// (Section 6.2), so exposing it directly avoids recomputation.
func (h *Histogram) Slack(req Requirement) float64 {
	if h.total == 0 {
		return -1 // vacuous satisfaction for empty multisets
	}
	qs := h.Frequencies()
	q1 := float64(qs[0])
	tail := 0.0
	for i := req.L - 1; i < len(qs); i++ {
		tail += float64(qs[i])
	}
	return q1 - req.C*tail
}

// DistinctHTsNeeded is a quick lower bound helper: a multiset can only
// satisfy (c, ℓ) when it spans at least ℓ distinct HTs. (With θ ≥ ℓ the tail
// is non-empty; with θ < ℓ it can never pass.)
func (h *Histogram) DistinctHTsNeeded(req Requirement) int {
	if missing := req.L - h.Classes(); missing > 0 {
		return missing
	}
	return 0
}

// SatisfiesTokens is a convenience wrapper: it builds the histogram of the
// token set and evaluates the predicate.
func SatisfiesTokens(tokens chain.TokenSet, origin func(chain.TokenID) chain.TxID, req Requirement) bool {
	return HistogramOf(tokens, origin).Satisfies(req)
}
