package sim

import (
	"errors"
	"testing"

	"tokenmagic/internal/diversity"
	itm "tokenmagic/internal/tokenmagic"
)

func TestRunDefaultMix(t *testing.T) {
	res, err := Run(Config{
		Tokens:        60,
		Sigma:         8,
		Strategies:    DefaultMix(),
		Spends:        40,
		SnapshotEvery: 10,
		Eta:           0,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) < 4 {
		t.Fatalf("snapshots = %d", len(res.Snapshots))
	}
	totalAttempts := 0
	for _, seg := range res.Segments {
		totalAttempts += seg.Attempts
		if seg.Committed+seg.Rejected != seg.Attempts {
			t.Fatalf("segment accounting broken: %+v", seg)
		}
	}
	if totalAttempts != 40 {
		t.Fatalf("attempts = %d", totalAttempts)
	}
	// Snapshots are cumulative: rings on chain never decrease.
	for i := 1; i < len(res.Snapshots); i++ {
		if res.Snapshots[i].RingsOnChain < res.Snapshots[i-1].RingsOnChain {
			t.Fatalf("ring count regressed: %+v", res.Snapshots)
		}
	}
	// The zero-mixin fraction guarantees traced rings appear eventually.
	last := res.Snapshots[len(res.Snapshots)-1]
	if last.Traced == 0 {
		t.Fatalf("zero-mixin segment must produce traced rings: %+v", last)
	}
}

func TestRunCleanPopulationStaysUntraced(t *testing.T) {
	res, err := Run(Config{
		Tokens: 50,
		Sigma:  8,
		Strategies: []Strategy{{
			Name: "clean", Algorithm: itm.Progressive,
			Req: diversity.Requirement{C: 1, L: 3}, Weight: 1,
		}},
		Spends:        30,
		SnapshotEvery: 10,
		Eta:           0.1,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range res.Snapshots {
		if snap.Traced != 0 {
			t.Fatalf("clean population must stay untraced: %+v", snap)
		}
	}
	if res.Segments[0].Committed == 0 {
		t.Fatal("nothing committed")
	}
	if res.Segments[0].AvgSize < 3 {
		t.Fatalf("avg ring size %v below ℓ", res.Segments[0].AvgSize)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{Tokens: 1, Spends: 5, Strategies: DefaultMix()},
		{Tokens: 20, Spends: 0, Strategies: DefaultMix()},
		{Tokens: 20, Spends: 5},
		{Tokens: 20, Spends: 5, Strategies: []Strategy{{Name: "x", Weight: 0}}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := Config{
		Tokens: 40, Sigma: 8, Strategies: DefaultMix(),
		Spends: 25, SnapshotEvery: 5, Seed: 9,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Snapshots) != len(b.Snapshots) {
		t.Fatal("snapshot counts differ")
	}
	for i := range a.Snapshots {
		if a.Snapshots[i] != b.Snapshots[i] {
			t.Fatalf("snapshot %d differs: %+v vs %+v", i, a.Snapshots[i], b.Snapshots[i])
		}
	}
}
