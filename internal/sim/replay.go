package sim

// Parallel request replay: run a fixed list of generation requests against
// one framework across a worker pool and merge outcomes back in request
// order. Each request i derives its seed from the batch seed
// (itm.DeriveSeed(seed, itm.ReplayStreamBase+i)), so the outcome list is a
// pure function of (framework state, requests, seed) — scheduling, worker
// count and completion order cannot leak in. Replay only generates (no
// commits), which is what makes the requests independent; interleaving
// commits would re-couple them through the ledger.

import (
	"context"
	"sync"
	"sync/atomic"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	itm "tokenmagic/internal/tokenmagic"
)

// Request is one replayed generation: consume Target under Req.
type Request struct {
	Target chain.TokenID
	Req    diversity.Requirement
}

// Outcome is the result of one replayed request, at the same index as its
// Request.
type Outcome struct {
	Target chain.TokenID
	Tokens chain.TokenSet
	Err    error
}

// Replay runs every request against f and returns outcomes position-aligned
// with reqs. workers bounds the pool (≤ 1 runs sequentially); the framework's
// own Config.Parallelism still applies inside each GenerateRSSeeded call, so
// total concurrency is the product. If ctx dies, unstarted requests report
// its error.
func Replay(ctx context.Context, f *itm.Framework, reqs []Request, seed int64, workers int) []Outcome {
	out := make([]Outcome, len(reqs))
	run := func(i int) {
		r := reqs[i]
		reqSeed := itm.DeriveSeed(seed, itm.ReplayStreamBase+uint64(i))
		res, err := f.GenerateRSSeeded(ctx, r.Target, r.Req, reqSeed)
		out[i] = Outcome{Target: r.Target, Tokens: res.Tokens, Err: err}
	}
	if workers <= 1 || len(reqs) <= 1 {
		for i := range reqs {
			run(i)
		}
		return out
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return out
}
