// Package sim runs multi-user simulations of a batch's whole lifecycle: a
// population of users with heterogeneous privacy requirements and selection
// strategies spends tokens over simulated time while an adversary snapshots
// the ledger periodically. It answers the questions the paper's single-shot
// experiments cannot: how does anonymity evolve as a batch drains, when do
// liveness rejections start, and how do strategy mixes interact on one
// chain.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/adversary/graphattack"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs"
	itm "tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/workload"
)

// Strategy describes one user population segment.
type Strategy struct {
	// Name labels the segment in reports.
	Name string
	// Algorithm is the TokenMagic solver this segment uses; ignored when
	// ZeroMixin is set.
	Algorithm itm.Algorithm
	// Req is the segment's diversity requirement.
	Req diversity.Requirement
	// ZeroMixin marks fee minimisers who submit bare singleton rings,
	// bypassing selection entirely (the pre-RingCT behaviour).
	ZeroMixin bool
	// Weight is the segment's share of spend attempts (relative).
	Weight int
}

// Config drives one simulation.
type Config struct {
	// Tokens in the simulated batch (all fresh at t=0).
	Tokens int
	// Sigma shapes the HT distribution of the batch (workload.Synthetic).
	Sigma float64
	// Strategies is the population mix; at least one, weights ≥ 1.
	Strategies []Strategy
	// Spends is the number of spend attempts over the run.
	Spends int
	// SnapshotEvery takes an adversary snapshot every k attempts (≥ 1).
	SnapshotEvery int
	// Eta configures the liveness guard of the shared framework.
	Eta float64
	// Parallelism is handed to each framework's candidate-sampling executor
	// (0 = one worker per CPU, 1 = sequential). The simulated outcome is
	// identical at every setting — per-request seeds make the executor
	// replayable — only wall-clock changes.
	Parallelism int
	// Seed fixes all randomness.
	Seed int64
	// Persist, when non-nil, is handed the freshly generated dataset ledger
	// before any spend lands and returns the ledger the run should actually
	// use — the wiring point for durable storage (cmd/tokenmagic seeds an
	// empty store from the generated history, or resumes from a recovered
	// ledger mid-state after a crash). The returned ledger must hold the
	// same token population as the generated one (same Tokens and Seed);
	// rings already on it are simply part of the chain the run extends.
	Persist func(*chain.Ledger) (*chain.Ledger, error)
}

// Snapshot is the adversary's view at one point of simulated time.
type Snapshot struct {
	Attempt          int
	RingsOnChain     int
	Traced           int
	HTRevealed       int
	AvgAnonymity     float64
	MinAnonymity     int
	ProvablyConsumed int
}

// SegmentStats aggregates outcomes per strategy segment.
type SegmentStats struct {
	Name      string
	Attempts  int
	Committed int
	Rejected  int
	AvgSize   float64
}

// Result is a completed simulation.
type Result struct {
	Snapshots []Snapshot
	Segments  []SegmentStats
	// Stranded counts tokens whose spend attempt failed terminally.
	Stranded int
	// Framework aggregates the telemetry counters of every framework the
	// run used (one per algorithm): solver dispatches, decomposition-cache
	// hit rate, and Step-3 admit/reject classification.
	Framework itm.Stats
	// SolveLatencyUS holds each algorithm's solve-latency histogram
	// ("TM_P" → snapshot), recorded in a registry private to this run, so
	// p50/p99 reflect exactly these spends and not the process lifetime.
	SolveLatencyUS map[string]obs.HistogramSnapshot
	// Final is the DM-derived effective-anonymity summary of the finished
	// ledger (the graphattack suite's exact closure): the headline
	// mean/min effective anonymity-set size the sim prints.
	Final adversary.Metrics
}

// Errors from configuration validation.
var ErrBadConfig = errors.New("sim: invalid configuration")

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Tokens < 2 || cfg.Spends < 1 || len(cfg.Strategies) == 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	if cfg.SnapshotEvery < 1 {
		cfg.SnapshotEvery = cfg.Spends / 10
		if cfg.SnapshotEvery < 1 {
			cfg.SnapshotEvery = 1
		}
	}
	if cfg.Sigma <= 0 {
		cfg.Sigma = 8
	}
	totalWeight := 0
	for _, s := range cfg.Strategies {
		if s.Weight < 1 {
			return nil, fmt.Errorf("%w: segment %q needs weight ≥ 1", ErrBadConfig, s.Name)
		}
		totalWeight += s.Weight
	}

	d, err := workload.Synthetic(workload.SyntheticParams{
		NumSupers:    0,
		SuperSizeMin: 1,
		SuperSizeMax: 1,
		NumFresh:     cfg.Tokens,
		Sigma:        cfg.Sigma,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	led := d.Ledger
	if cfg.Persist != nil {
		if led, err = cfg.Persist(d.Ledger); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	origin := led.OriginFunc()

	// One shared framework per algorithm keeps the η bookkeeping common. All
	// frameworks report into one run-private registry so the latency
	// snapshots below cover exactly this run.
	reg := obs.NewRegistry()
	frameworks := make(map[itm.Algorithm]*itm.Framework)
	fwFor := func(a itm.Algorithm) (*itm.Framework, error) {
		if f, ok := frameworks[a]; ok {
			return f, nil
		}
		f, err := itm.New(led, itm.Config{
			Lambda:      led.NumTokens(),
			Eta:         cfg.Eta,
			Headroom:    true,
			Algorithm:   a,
			Parallelism: cfg.Parallelism,
			Metrics:     reg,
		}, rng)
		if err != nil {
			return nil, err
		}
		frameworks[a] = f
		return f, nil
	}

	res := &Result{Segments: make([]SegmentStats, len(cfg.Strategies))}
	sizeSums := make([]int, len(cfg.Strategies))
	for i, s := range cfg.Strategies {
		res.Segments[i].Name = s.Name
	}
	spent := make(map[chain.TokenID]bool)

	pickSegment := func() int {
		w := rng.Intn(totalWeight)
		for i, s := range cfg.Strategies {
			if w < s.Weight {
				return i
			}
			w -= s.Weight
		}
		return len(cfg.Strategies) - 1
	}
	pickToken := func() (chain.TokenID, bool) {
		// Uniform over unspent tokens; gives up after a bounded scan.
		for tries := 0; tries < 4*len(d.Universe); tries++ {
			t := d.Universe[rng.Intn(len(d.Universe))]
			if !spent[t] {
				return t, true
			}
		}
		return chain.NoToken, false
	}

	for attempt := 1; attempt <= cfg.Spends; attempt++ {
		si := pickSegment()
		seg := &res.Segments[si]
		seg.Attempts++
		strat := cfg.Strategies[si]

		target, ok := pickToken()
		if !ok {
			res.Stranded++
			seg.Rejected++
			continue
		}

		if strat.ZeroMixin {
			// Bare singleton straight onto the ledger (no verification —
			// modelling a permissive chain or a pre-upgrade era).
			if _, err := led.AppendRS(chain.NewTokenSet(target), strat.Req.C, strat.Req.L); err != nil {
				return nil, err
			}
			spent[target] = true
			seg.Committed++
			sizeSums[si]++
		} else {
			f, err := fwFor(strat.Algorithm)
			if err != nil {
				return nil, err
			}
			_, sel, err := f.GenerateAndCommit(target, strat.Req)
			if err != nil {
				seg.Rejected++
			} else {
				spent[target] = true
				seg.Committed++
				sizeSums[si] += sel.Size()
			}
		}

		if attempt%cfg.SnapshotEvery == 0 || attempt == cfg.Spends {
			a := adversary.ChainReaction(led.Rings(), nil, origin)
			m := adversary.Summarise(a)
			res.Snapshots = append(res.Snapshots, Snapshot{
				Attempt:          attempt,
				RingsOnChain:     m.Rings,
				Traced:           m.Traced,
				HTRevealed:       m.HTRevealed,
				AvgAnonymity:     m.AvgAnonymity,
				MinAnonymity:     m.MinAnonymity,
				ProvablyConsumed: m.ConsumedTokens,
			})
		}
	}
	for i := range res.Segments {
		if res.Segments[i].Committed > 0 {
			res.Segments[i].AvgSize = float64(sizeSums[i]) / float64(res.Segments[i].Committed)
		}
	}
	res.Final = graphattack.DM(led.Rings(), nil, origin).Metrics
	for _, f := range frameworks {
		res.Framework = res.Framework.Add(f.Stats())
	}
	res.SolveLatencyUS = make(map[string]obs.HistogramSnapshot, len(frameworks))
	snap := reg.Snapshot()
	for a := range frameworks {
		if h, ok := snap.Histograms["framework.solve."+a.String()+".latency_us"]; ok && h.Count > 0 {
			res.SolveLatencyUS[a.String()] = h
		}
	}
	return res, nil
}

// DefaultMix returns a realistic population: most users on TM_P, a
// fee-sensitive TM_G tail, and a small selfish zero-mixin fraction.
func DefaultMix() []Strategy {
	return []Strategy{
		{Name: "TM_P users", Algorithm: itm.Progressive, Req: diversity.Requirement{C: 1, L: 3}, Weight: 6},
		{Name: "TM_G users", Algorithm: itm.Game, Req: diversity.Requirement{C: 1, L: 3}, Weight: 3},
		{Name: "zero-mixin", ZeroMixin: true, Req: diversity.Requirement{C: 10, L: 1}, Weight: 1},
	}
}
