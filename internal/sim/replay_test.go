package sim

import (
	"context"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	itm "tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/workload"
)

func replayFixture(t *testing.T, parallelism int) (*itm.Framework, []Request) {
	t.Helper()
	d, err := workload.Synthetic(workload.SyntheticParams{
		NumSupers: 0, SuperSizeMin: 1, SuperSizeMax: 1,
		NumFresh: 30, Sigma: 6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := itm.New(d.Ledger, itm.Config{
		Lambda:      d.Ledger.NumTokens(),
		Headroom:    true,
		Algorithm:   itm.Progressive,
		Randomize:   true,
		Parallelism: parallelism,
	}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 3}
	var reqs []Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, Request{Target: chain.TokenID(i * 3), Req: req})
	}
	return f, reqs
}

// Replay must be a pure function of (framework state, requests, seed): the
// outcome list is identical at every worker count, position-aligned with
// the requests.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	const seed = 17
	f1, reqs := replayFixture(t, 1)
	base := Replay(context.Background(), f1, reqs, seed, 1)
	if len(base) != len(reqs) {
		t.Fatalf("got %d outcomes for %d requests", len(base), len(reqs))
	}
	succeeded := 0
	for i, o := range base {
		if o.Target != reqs[i].Target {
			t.Fatalf("outcome %d misaligned: target %v for request %v", i, o.Target, reqs[i].Target)
		}
		if o.Err == nil {
			succeeded++
			if !o.Tokens.Contains(o.Target) {
				t.Fatalf("outcome %d: ring %v misses target %v", i, o.Tokens, o.Target)
			}
		}
	}
	if succeeded == 0 {
		t.Fatal("vacuous: no replayed request produced a ring")
	}
	for _, workers := range []int{2, 4, 8} {
		fw, _ := replayFixture(t, 2) // inner executor parallel too
		got := Replay(context.Background(), fw, reqs, seed, workers)
		for i := range base {
			if (base[i].Err == nil) != (got[i].Err == nil) {
				t.Fatalf("w=%d outcome %d error divergence: %v vs %v", workers, i, base[i].Err, got[i].Err)
			}
			if base[i].Err == nil && !base[i].Tokens.Equal(got[i].Tokens) {
				t.Fatalf("w=%d outcome %d ring divergence: %v vs %v", workers, i, base[i].Tokens, got[i].Tokens)
			}
		}
	}
}

// A dead context surfaces per-outcome errors instead of hanging or
// panicking.
func TestReplayCancelled(t *testing.T) {
	f, reqs := replayFixture(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, o := range Replay(ctx, f, reqs, 5, 4) {
		if o.Err == nil {
			t.Fatalf("outcome %d succeeded under a cancelled context", i)
		}
	}
}
