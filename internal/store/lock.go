package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrLocked reports a data directory already held open by another process.
var ErrLocked = errors.New("store: data dir locked by another process")

// acquireLock takes an exclusive advisory lock on dir/LOCK. Two live
// processes over one data dir is the one corruption mode recovery cannot
// repair — open-time repair truncates segments the other process is still
// appending to — so Open refuses it outright. The lock is tied to the file
// descriptor: the kernel releases it when the process exits, however it
// exits, so a kill -9 never leaves a stale lock behind.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock file: %w", err)
	}
	if err := flockExcl(f.Fd()); err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, fmt.Errorf("%w: %s (and close failed: %v)", ErrLocked, dir, cerr)
		}
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return f, nil
}
