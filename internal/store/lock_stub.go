//go:build !unix

package store

// flockExcl is a no-op where flock is unavailable: single-process discipline
// is then the operator's responsibility, as it was before locking existed.
func flockExcl(uintptr) error { return nil }
