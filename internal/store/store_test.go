package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/obs"
)

// opFunc is one scripted ledger mutation; the same script can drive several
// ledgers so tests compare persistent against in-memory behaviour.
type opFunc func(l *chain.Ledger) error

// randomOps builds a deterministic script of n mutations. Closures capture
// fixed values, so replaying the script is referentially transparent.
func randomOps(rng *rand.Rand, n int) []opFunc {
	var ops []opFunc
	tokens, blocks := 0, 0
	for len(ops) < n {
		switch r := rng.Intn(10); {
		case r < 3 || blocks == 0:
			ops = append(ops, func(l *chain.Ledger) error {
				_, err := l.BeginBlockErr()
				return err
			})
			blocks++
		case r < 8:
			b := chain.BlockID(rng.Intn(blocks))
			amounts := make([]uint64, 1+rng.Intn(3))
			for i := range amounts {
				amounts[i] = uint64(1 + rng.Intn(50))
			}
			ops = append(ops, func(l *chain.Ledger) error {
				_, err := l.AddTxAmounts(b, amounts)
				return err
			})
			tokens += len(amounts)
		default:
			if tokens == 0 {
				continue
			}
			k := 1 + rng.Intn(min(4, tokens))
			seen := make(map[int]bool, k)
			var toks []chain.TokenID
			for len(toks) < k {
				t := rng.Intn(tokens)
				if !seen[t] {
					seen[t] = true
					toks = append(toks, chain.TokenID(t))
				}
			}
			c, l := 0.5+rng.Float64(), 1+rng.Intn(3)
			set := chain.NewTokenSet(toks...)
			ops = append(ops, func(led *chain.Ledger) error {
				_, err := led.AppendRS(set, c, l)
				return err
			})
		}
	}
	return ops
}

func applyScript(t *testing.T, l *chain.Ledger, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, op := range randomOps(rng, n) {
		if err := op(l); err != nil {
			t.Fatal(err)
		}
	}
}

func testOpts(o Options) Options {
	o.Metrics = obs.NewRegistry()
	return o
}

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func digestLedger(t *testing.T, l *chain.Ledger) string {
	t.Helper()
	d, err := Digest(l.View())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// teeJournal forwards to the real log while keeping the historical op
// sequence — the oracle the crash tests replay prefixes of. (View.Ops()
// would not do: it returns the canonical rebuild order, not history order.)
type teeJournal struct {
	inner chain.Journal
	ops   *[]chain.Op
}

func (j teeJournal) Append(op chain.Op) error {
	if err := j.inner.Append(op); err != nil {
		return err
	}
	*j.ops = append(*j.ops, op)
	return nil
}

func (j teeJournal) Committed(v *chain.View) { j.inner.Committed(v) }

// buildStore opens dir, applies a deterministic op script, closes the store,
// and returns the journaled op sequence in history order.
func buildStore(t *testing.T, dir string, opts Options, n int) []chain.Op {
	t.Helper()
	st := openT(t, dir, opts)
	var ops []chain.Op
	st.Ledger.SetJournal(teeJournal{inner: st.Log, ops: &ops})
	applyScript(t, st.Ledger, n, 42)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return ops
}

// prefixDigest is the digest of the ledger rebuilt from ops[:k] — the oracle
// the crash tests compare recovered state against.
func prefixDigest(t *testing.T, ops []chain.Op, k int) string {
	t.Helper()
	l := chain.NewLedger()
	for _, op := range ops[:k] {
		if err := l.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	return digestLedger(t, l)
}

func TestOpenAppendReopen(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(Options{Shards: 3, Lambda: 4})
	ops := buildStore(t, dir, opts, 80)
	want := prefixDigest(t, ops, len(ops))

	st := openT(t, dir, testOpts(Options{Shards: 3, Lambda: 4}))
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st.Info.Epoch != uint64(len(ops)) {
		t.Fatalf("recovered epoch %d, want %d", st.Info.Epoch, len(ops))
	}
	if st.Info.Replayed != len(ops) || st.Info.Duplicates != 0 || st.Info.DroppedTail != 0 || st.Info.TornBytes != 0 {
		t.Fatalf("unexpected recovery info: %+v", st.Info)
	}
	if got := digestLedger(t, st.Ledger); got != want {
		t.Fatalf("digest mismatch after reopen: %s != %s", got, want)
	}
	// The reopened store keeps journaling: append more, reopen again.
	applyScript(t, st.Ledger, 20, 7)
	want2 := digestLedger(t, st.Ledger)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, testOpts(Options{Shards: 3, Lambda: 4}))
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := digestLedger(t, st2.Ledger); got != want2 {
		t.Fatalf("second reopen digest mismatch")
	}
}

func TestShardingSpreadsRecords(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, testOpts(Options{Shards: 3, Lambda: 2}), 120)
	for i := 0; i < 3; i++ {
		sd := filepath.Join(dir, shardDirName(i))
		ids, err := listSegments(sd)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, id := range ids {
			recs, tail, err := readSegment(filepath.Join(sd, segName(id)), id)
			if err != nil || tail != 0 {
				t.Fatalf("shard %d segment %d: err=%v tail=%d", i, id, err, tail)
			}
			total += len(recs)
		}
		if total == 0 {
			t.Fatalf("shard %d received no records", i)
		}
	}
}

func TestRingOpsShardByBatch(t *testing.T) {
	dir := t.TempDir()
	const lambda, shards = 4, 3
	st := openT(t, dir, testOpts(Options{Shards: shards, Lambda: lambda}))
	b := st.Ledger.BeginBlock()
	if _, err := st.Ledger.AddTx(b, 24); err != nil {
		t.Fatal(err)
	}
	for tok := 0; tok < 24; tok++ {
		if _, err := st.Ledger.AppendRS(chain.NewTokenSet(chain.TokenID(tok)), 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Every ring op over token t must live in shard (t/λ) mod shards.
	for i := 0; i < shards; i++ {
		sd := filepath.Join(dir, shardDirName(i))
		ids, err := listSegments(sd)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			recs, _, err := readSegment(filepath.Join(sd, segName(id)), id)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if r.op.Kind != chain.OpRS {
					continue
				}
				if want := (int(r.op.Tokens[0]) / lambda) % shards; want != i {
					t.Fatalf("ring over token %v in shard %d, want %d", r.op.Tokens[0], i, want)
				}
			}
		}
	}
}

func TestSnapshotCompactionBoundsSegments(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	opts := Options{Shards: 2, SegmentBytes: 512, SnapshotEvery: 25, Metrics: reg}
	st := openT(t, dir, opts)
	applyScript(t, st.Ledger, 150, 42)
	want := digestLedger(t, st.Ledger)
	epoch := st.Ledger.Epoch()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("store.snapshots").Value(); n == 0 {
		t.Fatal("no snapshots taken")
	}
	if g := reg.Gauge("store.segments").Value(); g > 8 {
		t.Fatalf("compaction did not bound segments: %d live", g)
	}
	st2 := openT(t, dir, testOpts(opts))
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st2.Info.SnapshotSeq == 0 {
		t.Fatal("recovery ignored the snapshot")
	}
	if st2.Info.Replayed != int(epoch-st2.Info.SnapshotSeq) {
		t.Fatalf("replayed %d ops on top of snapshot at %d, epoch %d", st2.Info.Replayed, st2.Info.SnapshotSeq, epoch)
	}
	if got := digestLedger(t, st2.Ledger); got != want {
		t.Fatal("digest mismatch after snapshot recovery")
	}
}

func TestSeedJournalsFullHistory(t *testing.T) {
	src := chain.NewLedger()
	applyScript(t, src, 60, 11)
	want := digestLedger(t, src)

	dir := t.TempDir()
	st := openT(t, dir, testOpts(Options{Shards: 2}))
	if err := Seed(st.Ledger, src.View()); err != nil {
		t.Fatal(err)
	}
	if err := Seed(st.Ledger, src.View()); err == nil {
		t.Fatal("seeding a non-empty ledger must fail")
	}
	if got := digestLedger(t, st.Ledger); got != want {
		t.Fatal("seeded ledger differs from source")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, testOpts(Options{Shards: 2}))
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := digestLedger(t, st2.Ledger); got != want {
		t.Fatal("seeded history did not survive reopen")
	}
}

func TestExplicitSnapshotFromPinnedView(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, testOpts(Options{Shards: 1}))
	applyScript(t, st.Ledger, 40, 3)
	v := st.Ledger.View() // pin, then keep mutating
	applyScript(t, st.Ledger, 20, 4)
	if err := st.Log.Snapshot(v); err != nil {
		t.Fatal(err)
	}
	if got := st.Log.SnapshotSeq(); got != v.Epoch() {
		t.Fatalf("snapshot seq %d, want %d", got, v.Epoch())
	}
	// An older view must be skipped silently.
	if err := st.Log.Snapshot(v); err != nil {
		t.Fatal(err)
	}
	want := digestLedger(t, st.Ledger)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, testOpts(Options{Shards: 1}))
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st2.Info.SnapshotSeq != v.Epoch() {
		t.Fatalf("recovered from snapshot %d, want %d", st2.Info.SnapshotSeq, v.Epoch())
	}
	if got := digestLedger(t, st2.Ledger); got != want {
		t.Fatal("digest mismatch")
	}
}

func TestOpenRejectsShardCountShrink(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, testOpts(Options{Shards: 3}), 30)
	if _, err := Open(dir, testOpts(Options{Shards: 2})); err == nil {
		t.Fatal("opening a 3-shard store with 2 shards must fail, not drop records")
	}
	// The refused open must not have repaired/truncated anything: the full
	// shard count still recovers everything.
	st := openT(t, dir, testOpts(Options{Shards: 3}))
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st.Info.DroppedTail != 0 || st.Info.Epoch != 30 {
		t.Fatalf("state damaged by refused open: %+v", st.Info)
	}
}

func TestOpenRefusesSecondLiveOpen(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, testOpts(Options{Shards: 2}))
	// A second open while the first is live must be refused: its open-time
	// repair would truncate segments the live writer is appending to.
	if _, err := Open(dir, testOpts(Options{Shards: 2})); !errors.Is(err, ErrLocked) {
		t.Fatalf("second live open: got %v, want ErrLocked", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Close released the lock; a fresh open succeeds.
	st2 := openT(t, dir, testOpts(Options{Shards: 2}))
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsStrayFiles(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, testOpts(Options{Shards: 1}), 10)
	if err := os.WriteFile(filepath.Join(dir, shardDirName(0), "junk.seg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts(Options{Shards: 1})); err == nil {
		t.Fatal("stray segment file must fail recovery")
	}
}
