package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tokenmagic/internal/chain"
)

// RecoveryInfo reports what Open found and did. The fault-injection tests
// assert on these counters; the recover subcommand prints them.
type RecoveryInfo struct {
	// Epoch the ledger recovered to: the longest contiguous committed
	// prefix of ops.
	Epoch uint64 `json:"epoch"`
	// SnapshotSeq is the epoch of the snapshot recovery started from
	// (0 = replayed from genesis).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Replayed ops applied from segment logs on top of the snapshot.
	Replayed int `json:"replayed"`
	// Duplicates skipped: records whose seq the snapshot (or an earlier
	// record) already covered.
	Duplicates int `json:"duplicates"`
	// DroppedTail records discarded past a sequence gap — ops whose
	// predecessors were lost in the crash, physically truncated away.
	DroppedTail int `json:"dropped_tail"`
	// TornBytes truncated from segment tails that did not decode.
	TornBytes int64 `json:"torn_bytes"`
	// SnapshotsSkipped counts corrupt or unreadable snapshot files that
	// recovery passed over for an older one.
	SnapshotsSkipped int `json:"snapshots_skipped"`
}

// Store couples a recovered ledger with the journal that keeps it durable.
type Store struct {
	Ledger *chain.Ledger
	Log    *Log
	Info   RecoveryInfo
}

// Close closes the underlying log.
func (s *Store) Close() error { return s.Log.Close() }

// Open recovers the persistent ledger under dir (creating it when absent)
// and wires the returned ledger to keep journaling there. Recovery loads the
// newest intact snapshot, replays the sharded segment logs in global
// sequence order on top of it, tolerates torn tails and duplicate records,
// repairs the files to the recovered state, and fails loudly (ErrCorrupt) on
// any damage that is not a trailing crash artifact.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			// Every error path below must drop the lock; closing the fd
			// releases the flock.
			_ = lock.Close()
		}
	}()
	// A shard dir beyond opts.Shards means the store was written with a
	// larger shard count: scanning a subset would misread its records as a
	// sequence gap and truncate them away. Refuse before touching anything.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read data dir: %w", err)
	}
	for _, e := range entries {
		var idx int
		if _, serr := fmt.Sscanf(e.Name(), "shard-%02d", &idx); serr == nil && idx >= opts.Shards {
			return nil, fmt.Errorf("store: %s exists but store opened with %d shards", e.Name(), opts.Shards)
		}
	}
	shardDirs := make([]string, opts.Shards)
	for i := range shardDirs {
		shardDirs[i] = filepath.Join(dir, shardDirName(i))
		if err := os.MkdirAll(shardDirs[i], 0o755); err != nil {
			return nil, fmt.Errorf("store: create shard dir: %w", err)
		}
	}

	var info RecoveryInfo
	led, snapSeq, skipped, err := loadNewestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	info.SnapshotSeq = snapSeq
	info.SnapshotsSkipped = skipped

	// Scan every shard, truncating torn tails as they are found.
	type shardScan struct {
		ids  []int
		recs []segRecord
	}
	scans := make([]shardScan, opts.Shards)
	var merged []segRecord
	for i, sd := range shardDirs {
		ids, lerr := listSegments(sd)
		if lerr != nil {
			return nil, lerr
		}
		var prevSeq uint64
		havePrev := false
		for k := 0; k < len(ids); k++ {
			id := ids[k]
			path := filepath.Join(sd, segName(id))
			recs, tail, rerr := readSegment(path, id)
			if rerr != nil {
				return nil, rerr
			}
			if tail > 0 {
				if k != len(ids)-1 {
					return nil, fmt.Errorf("%w: shard %d: segment %d truncated mid-log", ErrCorrupt, i, id)
				}
				info.TornBytes += tail
				fi, serr := os.Stat(path)
				if serr != nil {
					return nil, fmt.Errorf("store: stat segment: %w", serr)
				}
				newSize := fi.Size() - tail
				if newSize < int64(len(segMagic)) {
					// The torn write was the segment's very first bytes;
					// nothing in it survives.
					if remErr := os.Remove(path); remErr != nil {
						return nil, fmt.Errorf("store: drop torn segment: %w", remErr)
					}
					ids = ids[:k]
					break
				}
				if tErr := os.Truncate(path, newSize); tErr != nil {
					return nil, fmt.Errorf("store: truncate torn tail: %w", tErr)
				}
			}
			for _, r := range recs {
				if havePrev && r.op.Seq <= prevSeq {
					return nil, fmt.Errorf("%w: shard %d: seq %d not above %d", ErrCorrupt, i, r.op.Seq, prevSeq)
				}
				prevSeq, havePrev = r.op.Seq, true
			}
			scans[i].recs = append(scans[i].recs, recs...)
			merged = append(merged, recs...)
		}
		scans[i].ids = ids
	}

	// Replay in global sequence order. Sequences the snapshot already covers
	// are duplicates; the first gap ends the recoverable prefix — everything
	// past it lost a predecessor in the crash and is dropped.
	sort.SliceStable(merged, func(a, b int) bool { return merged[a].op.Seq < merged[b].op.Seq })
	// The log must reach back to the recovery start point. Compaction only
	// deletes records a durable snapshot covers, so an oldest surviving
	// record beyond led.Epoch() means the snapshot covering the missing
	// range exists but no longer loads (or was removed) — treating the whole
	// log as a droppable tail here would silently roll the store back, then
	// finishShard would destroy the evidence. Gaps strictly inside the
	// replayed range stay tolerated: they are crash artifacts (one shard
	// lost its unsynced tail while another kept later ops).
	if len(merged) > 0 && merged[0].op.Seq > led.Epoch() {
		return nil, fmt.Errorf("%w: oldest log record has seq %d but recovery starts at epoch %d; ops [%d,%d) are missing — the snapshot covering them did not load",
			ErrCorrupt, merged[0].op.Seq, led.Epoch(), led.Epoch(), merged[0].op.Seq)
	}
	for _, m := range merged {
		switch {
		case m.op.Seq < led.Epoch():
			info.Duplicates++
		case m.op.Seq == led.Epoch():
			if aerr := led.Apply(m.op); aerr != nil {
				return nil, fmt.Errorf("%w: replay seq %d: %v", ErrCorrupt, m.op.Seq, aerr)
			}
			info.Replayed++
		default:
			info.DroppedTail++
		}
	}
	info.Epoch = led.Epoch()

	// Repair each shard to exactly the recovered prefix and derive the
	// writer state for reopening.
	log := &Log{dir: dir, opts: opts, nextSeq: led.Epoch()}
	log.snapSeq.Store(snapSeq)
	log.initMetrics()
	for i := range scans {
		st, ferr := finishShard(shardDirs[i], scans[i].ids, scans[i].recs, led.Epoch())
		if ferr != nil {
			return nil, ferr
		}
		sh, oerr := openShard(shardDirs[i], st.lastID, st.lastSize, st.lastMax, st.lastCount, st.closed)
		if oerr != nil {
			return nil, oerr
		}
		log.shards = append(log.shards, sh)
	}
	log.mSegments.Set(log.segmentCountLocked())
	log.mEpoch.Set(int64(led.Epoch()))
	r := opts.Metrics
	r.Counter("store.recover.replayed").Add(int64(info.Replayed))
	r.Counter("store.recover.duplicates").Add(int64(info.Duplicates))
	r.Counter("store.recover.dropped_tail").Add(int64(info.DroppedTail))
	r.Counter("store.recover.torn_bytes").Add(info.TornBytes)

	led.SetJournal(log)
	log.lock = lock
	opened = true
	return &Store{Ledger: led, Log: log, Info: info}, nil
}

// shardState is the writer-side inventory of a shard after repair.
type shardState struct {
	lastID    int
	lastSize  int64
	lastMax   uint64
	lastCount int
	closed    []closedSeg
}

// finishShard physically removes records past the recovered epoch (they form
// a suffix of the shard, since sequences increase within it) and returns the
// surviving segment inventory.
func finishShard(dir string, ids []int, recs []segRecord, keep uint64) (shardState, error) {
	var st shardState
	firstDrop := len(recs)
	for idx, r := range recs {
		if r.op.Seq >= keep {
			firstDrop = idx
			break
		}
	}
	kept := recs[:firstDrop]
	if len(ids) == 0 {
		return st, nil // openShard will create the first segment
	}
	if firstDrop < len(recs) {
		cutID := ids[0]
		cutOff := int64(len(segMagic))
		if len(kept) > 0 {
			cutID = kept[len(kept)-1].segID
			cutOff = kept[len(kept)-1].end
		}
		trimmed := ids[:0]
		for _, id := range ids {
			if id > cutID {
				if err := os.Remove(filepath.Join(dir, segName(id))); err != nil {
					return st, fmt.Errorf("store: drop dead segment: %w", err)
				}
				continue
			}
			trimmed = append(trimmed, id)
		}
		ids = trimmed
		if err := os.Truncate(filepath.Join(dir, segName(cutID)), cutOff); err != nil {
			return st, fmt.Errorf("store: truncate dead records: %w", err)
		}
	}
	perCount := make(map[int]int)
	perMax := make(map[int]uint64)
	perEnd := make(map[int]int64)
	for _, r := range kept {
		perCount[r.segID]++
		perMax[r.segID] = r.op.Seq
		perEnd[r.segID] = r.end
	}
	last := ids[len(ids)-1]
	for _, id := range ids[:len(ids)-1] {
		st.closed = append(st.closed, closedSeg{id: id, maxSeq: perMax[id]})
	}
	st.lastID = last
	st.lastCount = perCount[last]
	st.lastMax = perMax[last]
	st.lastSize = int64(len(segMagic))
	if e, ok := perEnd[last]; ok {
		st.lastSize = e
	}
	return st, nil
}

// loadNewestSnapshot tries snapshots newest-first and returns the first one
// that validates end to end, or a fresh ledger when none does.
func loadNewestSnapshot(dir string) (*chain.Ledger, uint64, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("store: read data dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if _, serr := fmt.Sscanf(e.Name(), "snap-%016d.snap", &seq); serr == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] > seqs[b] })
	skipped := 0
	for _, seq := range seqs {
		led, lerr := loadSnapshot(filepath.Join(dir, snapName(seq)), seq)
		if lerr != nil {
			skipped++
			continue
		}
		return led, seq, skipped, nil
	}
	return chain.NewLedger(), 0, skipped, nil
}

// loadSnapshot validates one snapshot file completely: magic, record
// framing, meta consistency, state digest, and that the rebuilt ledger lands
// on the advertised epoch.
func loadSnapshot(path string, wantSeq uint64) (*chain.Ledger, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(buf) < len(snapMagic) || string(buf[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot %s: bad magic", ErrCorrupt, path)
	}
	// Snapshot records are bounded by the file itself, not maxRecordBytes: a
	// ledger whose serialized state exceeds the per-op cap must still load
	// back (Log.Snapshot writes it as one record).
	off := len(snapMagic)
	metaPayload, n, err := readRecord(buf[off:], len(buf))
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot %s: meta record: %v", ErrCorrupt, path, err)
	}
	var meta snapMeta
	if err := json.Unmarshal(metaPayload, &meta); err != nil {
		return nil, fmt.Errorf("%w: snapshot %s: meta: %v", ErrCorrupt, path, err)
	}
	if meta.Version != snapVersion || meta.Seq != wantSeq {
		return nil, fmt.Errorf("%w: snapshot %s: meta mismatch (version %d, seq %d)", ErrCorrupt, path, meta.Version, meta.Seq)
	}
	off += n
	state, n2, err := readRecord(buf[off:], len(buf))
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot %s: state record: %v", ErrCorrupt, path, err)
	}
	if off+n2 != len(buf) {
		return nil, fmt.Errorf("%w: snapshot %s: trailing garbage", ErrCorrupt, path)
	}
	sum := sha256.Sum256(state)
	if hex.EncodeToString(sum[:]) != meta.Digest {
		return nil, fmt.Errorf("%w: snapshot %s: state digest mismatch", ErrCorrupt, path)
	}
	led, err := chain.ReadLedger(bytes.NewReader(state))
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot %s: %v", ErrCorrupt, path, err)
	}
	if led.Epoch() != meta.Seq {
		return nil, fmt.Errorf("%w: snapshot %s: rebuilt epoch %d, meta says %d", ErrCorrupt, path, led.Epoch(), meta.Seq)
	}
	return led, nil
}

// Seed replays another view's full history into an empty persistent ledger,
// journaling every op — how the sim and tests move a pre-built in-memory
// dataset into a store.
func Seed(led *chain.Ledger, v *chain.View) error {
	if led.Epoch() != 0 {
		return fmt.Errorf("store: seed target not empty (epoch %d)", led.Epoch())
	}
	for _, op := range v.Ops() {
		if err := led.Apply(op); err != nil {
			return fmt.Errorf("store: seed: %w", err)
		}
	}
	return nil
}
