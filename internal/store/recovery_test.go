package store

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyTree clones a data directory so each fault scenario mutates a private
// copy of the same committed state.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		rel, rerr := filepath.Rel(src, path)
		if rerr != nil {
			return rerr
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, rdErr := os.ReadFile(path)
		if rdErr != nil {
			return rdErr
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// finalSegment returns the newest segment of a shard with its decoded
// records.
func finalSegment(t *testing.T, dir string, shard int) (path string, id int, recs []segRecord) {
	t.Helper()
	sd := filepath.Join(dir, shardDirName(shard))
	ids, err := listSegments(sd)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatalf("shard %d has no segments", shard)
	}
	id = ids[len(ids)-1]
	path = filepath.Join(sd, segName(id))
	recs, tail, err := readSegment(path, id)
	if err != nil || tail != 0 {
		t.Fatalf("read %s: err=%v tail=%d", path, err, tail)
	}
	return path, id, recs
}

// TestTornFinalRecord sweeps every possible crash point inside the final
// record — each truncation length and a checksum-breaking bit flip — and
// asserts recovery lands byte-identically on the previous committed epoch.
func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	ops := buildStore(t, dir, testOpts(Options{Shards: 1}), 30)
	e := len(ops)
	want := prefixDigest(t, ops, e-1)
	path, _, recs := finalSegment(t, dir, 0)
	last := recs[len(recs)-1]
	start := int64(len(segMagic))
	if len(recs) > 1 {
		start = recs[len(recs)-2].end
	}
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(work string, wantTorn bool) {
		t.Helper()
		st := openT(t, work, testOpts(Options{Shards: 1}))
		defer func() {
			if cerr := st.Close(); cerr != nil {
				t.Fatal(cerr)
			}
		}()
		if st.Info.Epoch != uint64(e-1) {
			t.Fatalf("recovered epoch %d, want %d (info %+v)", st.Info.Epoch, e-1, st.Info)
		}
		if wantTorn && st.Info.TornBytes == 0 {
			t.Fatalf("expected torn bytes, info %+v", st.Info)
		}
		if got := digestLedger(t, st.Ledger); got != want {
			t.Fatal("recovered state differs from pre-crash committed prefix")
		}
	}

	for cut := start + 1; cut < last.end; cut++ {
		work := copyTree(t, dir)
		if err := os.Truncate(filepath.Join(work, rel), cut); err != nil {
			t.Fatal(err)
		}
		check(work, true)
	}
	// A torn write that flushed the full extent but garbled the payload:
	// checksum fails on the physically last record — still a crash artifact.
	work := copyTree(t, dir)
	wpath := filepath.Join(work, rel)
	data, err := os.ReadFile(wpath)
	if err != nil {
		t.Fatal(err)
	}
	data[last.end-1] ^= 0xFF
	if err := os.WriteFile(wpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	check(work, true)
	// Clean cut exactly at the previous record boundary: no torn bytes, the
	// final op simply never hit the disk.
	work = copyTree(t, dir)
	if err := os.Truncate(filepath.Join(work, rel), start); err != nil {
		t.Fatal(err)
	}
	check(work, false)
}

// TestTruncatedFinalSegment cuts the log mid-segment, losing several
// records, and asserts recovery to the exact surviving prefix.
func TestTruncatedFinalSegment(t *testing.T) {
	dir := t.TempDir()
	ops := buildStore(t, dir, testOpts(Options{Shards: 1}), 30)
	path, _, recs := finalSegment(t, dir, 0)
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 7, 15, 22} {
		// Cut 3 bytes into the record after the k-th: k ops survive intact.
		work := copyTree(t, dir)
		if err := os.Truncate(filepath.Join(work, rel), recs[k-1].end+3); err != nil {
			t.Fatal(err)
		}
		st := openT(t, work, testOpts(Options{Shards: 1}))
		if st.Info.Epoch != uint64(k) || st.Info.TornBytes == 0 {
			t.Fatalf("cut after %d ops: info %+v", k, st.Info)
		}
		if got := digestLedger(t, st.Ledger); got != prefixDigest(t, ops, k) {
			t.Fatalf("cut after %d ops: recovered state diverges", k)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMidLogCorruptionFailsLoudly: damage that is not a trailing crash
// artifact — a flipped byte or truncation in a non-final segment — must
// refuse recovery with ErrCorrupt, never silently skip records.
func TestMidLogCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, testOpts(Options{Shards: 1, SegmentBytes: 512}), 60)
	sd := filepath.Join(dir, shardDirName(0))
	ids, err := listSegments(sd)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 2 {
		t.Fatalf("need multiple segments, got %d", len(ids))
	}
	work := copyTree(t, dir)
	wpath := filepath.Join(work, shardDirName(0), segName(ids[0]))
	data, err := os.ReadFile(wpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+recordHeaderLen] ^= 0x01 // first payload byte of record 0
	if err := os.WriteFile(wpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, oerr := Open(work, testOpts(Options{Shards: 1, SegmentBytes: 512})); !errors.Is(oerr, ErrCorrupt) {
		t.Fatalf("flipped mid-log byte: got %v, want ErrCorrupt", oerr)
	}

	work = copyTree(t, dir)
	wpath = filepath.Join(work, shardDirName(0), segName(ids[0]))
	fi, err := os.Stat(wpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wpath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	if _, oerr := Open(work, testOpts(Options{Shards: 1, SegmentBytes: 512})); !errors.Is(oerr, ErrCorrupt) {
		t.Fatalf("truncated mid-log segment: got %v, want ErrCorrupt", oerr)
	}
}

// TestMissingSnapshotFallsBackToFullReplay deletes every snapshot; with the
// segments intact (compaction off) recovery must replay from genesis to the
// same state.
func TestMissingSnapshotFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, SnapshotEvery: 10, NoCompact: true}
	ops := buildStore(t, dir, testOpts(opts), 50)
	removeMatching(t, dir, snapSuffix)

	st := openT(t, dir, testOpts(opts))
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st.Info.SnapshotSeq != 0 || st.Info.Replayed != len(ops) {
		t.Fatalf("expected full replay, info %+v", st.Info)
	}
	if got := digestLedger(t, st.Ledger); got != prefixDigest(t, ops, len(ops)) {
		t.Fatal("full replay diverges from committed state")
	}
}

// TestCorruptSnapshotFallsBackToOlder flips a byte in the newest snapshot;
// recovery must detect the damage via the digest chain and recover from the
// previous snapshot plus replay.
func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, SnapshotEvery: 10, NoCompact: true}
	ops := buildStore(t, dir, testOpts(opts), 50)

	newest := ""
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), snapSuffix) && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no snapshots on disk")
	}
	data, err := os.ReadFile(filepath.Join(dir, newest))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(filepath.Join(dir, newest), data, 0o644); err != nil {
		t.Fatal(err)
	}

	st := openT(t, dir, testOpts(opts))
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st.Info.SnapshotsSkipped != 1 {
		t.Fatalf("skipped %d snapshots, want 1 (info %+v)", st.Info.SnapshotsSkipped, st.Info)
	}
	if st.Info.SnapshotSeq == 0 || st.Info.SnapshotSeq >= 50 {
		t.Fatalf("expected an older snapshot, info %+v", st.Info)
	}
	if got := digestLedger(t, st.Ledger); got != prefixDigest(t, ops, len(ops)) {
		t.Fatal("fallback recovery diverges from committed state")
	}
}

// TestDuplicateReplayIsIdempotent duplicates the entire op history into a
// second shard (an operator restoring the same backup twice); every op must
// apply exactly once.
func TestDuplicateReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	ops := buildStore(t, dir, testOpts(Options{Shards: 1}), 40)
	src := filepath.Join(dir, shardDirName(0))
	dst := filepath.Join(dir, shardDirName(1))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ids, err := listSegments(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		data, rerr := os.ReadFile(filepath.Join(src, segName(id)))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if werr := os.WriteFile(filepath.Join(dst, segName(id)), data, 0o644); werr != nil {
			t.Fatal(werr)
		}
	}

	st := openT(t, dir, testOpts(Options{Shards: 2}))
	defer func() {
		if cerr := st.Close(); cerr != nil {
			t.Fatal(cerr)
		}
	}()
	if st.Info.Replayed != len(ops) || st.Info.Duplicates != len(ops) {
		t.Fatalf("replayed=%d duplicates=%d, want %d each", st.Info.Replayed, st.Info.Duplicates, len(ops))
	}
	if got := digestLedger(t, st.Ledger); got != prefixDigest(t, ops, len(ops)) {
		t.Fatal("duplicate replay corrupted state")
	}
}

// TestCrossShardGapRepair is the nastiest crash window: one shard loses its
// tail while another shard holds later ops. The later ops lost a predecessor
// and must be dropped — and physically removed, so that new writes reusing
// those sequence numbers can never collide with stale records.
func TestCrossShardGapRepair(t *testing.T) {
	dir := t.TempDir()
	ops := buildStore(t, dir, testOpts(Options{Shards: 2}), 40)
	e := len(ops)

	// With seq-routed ops, shard 0 holds even seqs and shard 1 odd; the
	// globally last op (seq e-1) lives in one shard — tear the OTHER shard's
	// final record so a gap opens before the end of the log.
	lastShard := (e - 1) % 2
	victim := 1 - lastShard
	path, _, recs := finalSegment(t, dir, victim)
	last := recs[len(recs)-1]
	s := int(last.op.Seq)
	start := int64(len(segMagic))
	if len(recs) > 1 {
		start = recs[len(recs)-2].end
	}
	if err := os.Truncate(path, start); err != nil {
		t.Fatal(err)
	}

	st := openT(t, dir, testOpts(Options{Shards: 2}))
	if st.Info.Epoch != uint64(s) || st.Info.DroppedTail != e-1-s {
		t.Fatalf("gap at seq %d: info %+v", s, st.Info)
	}
	if got := digestLedger(t, st.Ledger); got != prefixDigest(t, ops, s) {
		t.Fatal("recovered state diverges from pre-gap prefix")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second open: the repair must have removed the dead records, so
	// recovery is now clean and idempotent.
	st2 := openT(t, dir, testOpts(Options{Shards: 2}))
	if st2.Info.Epoch != uint64(s) || st2.Info.DroppedTail != 0 || st2.Info.Duplicates != 0 {
		t.Fatalf("second open not clean: info %+v", st2.Info)
	}
	// New writes reuse the dropped sequence numbers; a later recovery must
	// see exactly one record per seq.
	applyScript(t, st2.Ledger, 10, 99)
	want := digestLedger(t, st2.Ledger)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3 := openT(t, dir, testOpts(Options{Shards: 2}))
	defer func() {
		if err := st3.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st3.Info.Duplicates != 0 || st3.Info.DroppedTail != 0 {
		t.Fatalf("stale records resurfaced: info %+v", st3.Info)
	}
	if got := digestLedger(t, st3.Ledger); got != want {
		t.Fatal("post-repair writes did not survive reopen")
	}
}

// TestSnapshotLossAfterCompactionFailsLoudly is the total-data-loss
// scenario: compaction has deleted the segments a snapshot covers, and then
// that snapshot turns out corrupt (or missing) at recovery. The surviving
// log no longer reaches back to any loadable recovery point; treating it as
// a droppable tail would silently hand back an empty ledger AND destroy the
// remaining evidence. Recovery must refuse with ErrCorrupt instead.
func TestSnapshotLossAfterCompactionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, SegmentBytes: 256, SnapshotEvery: 10} // compaction on
	buildStore(t, dir, testOpts(opts), 50)

	// Sanity: compaction must actually have eaten the early log, so the
	// oldest surviving record sits well past genesis.
	sd := filepath.Join(dir, shardDirName(0))
	ids, err := listSegments(sd)
	if err != nil {
		t.Fatal(err)
	}
	first, tail, err := readSegment(filepath.Join(sd, segName(ids[0])), ids[0])
	if err != nil || tail != 0 {
		t.Fatalf("read first segment: err=%v tail=%d", err, tail)
	}
	if len(first) == 0 || first[0].op.Seq == 0 {
		t.Fatalf("compaction kept the full log (%d segs); scenario not armed", len(ids))
	}

	newest := ""
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), snapSuffix) && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no snapshot on disk")
	}

	// One corrupt byte in the only snapshot covering the compacted range.
	work := copyTree(t, dir)
	data, err := os.ReadFile(filepath.Join(work, newest))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(filepath.Join(work, newest), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, oerr := Open(work, testOpts(opts)); !errors.Is(oerr, ErrCorrupt) {
		t.Fatalf("corrupt snapshot over compacted log: got %v, want ErrCorrupt", oerr)
	}
	// The refused open must not have truncated anything: repairing the
	// snapshot byte back makes the store fully recoverable again.
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(filepath.Join(work, newest), data, 0o644); err != nil {
		t.Fatal(err)
	}
	st := openT(t, work, testOpts(opts))
	if st.Info.Epoch != 50 {
		t.Fatalf("store damaged by refused open: %+v", st.Info)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Same with the snapshot deleted outright.
	work = copyTree(t, dir)
	removeMatching(t, work, snapSuffix)
	if _, oerr := Open(work, testOpts(opts)); !errors.Is(oerr, ErrCorrupt) {
		t.Fatalf("missing snapshot over compacted log: got %v, want ErrCorrupt", oerr)
	}
}

// TestOversizedSnapshotRoundTrip: a ledger whose serialized state exceeds
// the per-op record cap must still snapshot and recover — the snapshot
// state record is bounded by file size, not maxRecordBytes. Before that
// exemption, every snapshot of a big ledger was unreadable on reopen, which
// combined with compaction into guaranteed data loss.
func TestOversizedSnapshotRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >16MiB ledger state")
	}
	dir := t.TempDir()
	opts := Options{Shards: 1, SegmentBytes: 1 << 20}
	st := openT(t, dir, testOpts(opts))
	b := st.Ledger.BeginBlock()
	amounts := make([]uint64, 4096)
	for i := range amounts {
		amounts[i] = uint64(i + 1)
	}
	stateSize := func() int64 {
		var cw countingWriter
		if _, err := st.Ledger.View().WriteTo(&cw); err != nil {
			t.Fatal(err)
		}
		return int64(cw)
	}
	for stateSize() <= maxRecordBytes {
		for i := 0; i < 32; i++ {
			if _, err := st.Ledger.AddTxAmounts(b, amounts); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := digestLedger(t, st.Ledger)
	epoch := st.Ledger.Epoch()
	if err := st.Log.Snapshot(st.Ledger.View()); err != nil {
		t.Fatalf("snapshot of oversized state: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, testOpts(opts))
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st2.Info.SnapshotSeq != epoch {
		t.Fatalf("recovery did not load the oversized snapshot: %+v", st2.Info)
	}
	if got := digestLedger(t, st2.Ledger); got != want {
		t.Fatal("oversized snapshot round trip diverged")
	}
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// TestFailedAppendPoisonsShard: after an append fails partway, the shard
// must refuse further appends — writing past the partial bytes would bury a
// torn tail mid-segment, which recovery treats as ErrCorrupt rather than a
// repairable crash artifact.
func TestFailedAppendPoisonsShard(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, testOpts(Options{Shards: 1}))
	applyScript(t, st.Ledger, 10, 42)
	want := digestLedger(t, st.Ledger)

	// Force the next write to fail by closing the active segment file
	// behind the shard's back.
	if err := st.Log.shards[0].active.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ledger.AddTxAmounts(0, []uint64{1}); err == nil {
		t.Fatal("append over a closed file must fail")
	}
	if _, err := st.Ledger.AddTxAmounts(0, []uint64{2}); !errors.Is(err, errShardFailed) {
		t.Fatalf("append after failed append: got %v, want errShardFailed", err)
	}
	_ = st.Log.Close() // active fd already closed; only the flock matters

	// Reopen repairs whatever the failed write left and resumes cleanly.
	st2 := openT(t, dir, testOpts(Options{Shards: 1}))
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st2.Info.Epoch != 10 {
		t.Fatalf("recovered epoch %d, want 10 (info %+v)", st2.Info.Epoch, st2.Info)
	}
	if got := digestLedger(t, st2.Ledger); got != want {
		t.Fatal("recovered state diverges from pre-failure commits")
	}
	applyScript(t, st2.Ledger, 5, 7)
}

func removeMatching(t *testing.T, dir, suffix string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			if rerr := os.Remove(filepath.Join(dir, e.Name())); rerr != nil {
				t.Fatal(rerr)
			}
		}
	}
}
