package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/obs"
)

// Options configure a persistent log.
type Options struct {
	// Shards is the number of shard directories ops are spread across.
	// Default 1.
	Shards int
	// Lambda is the batch-size parameter λ. Ring ops are routed to shard
	// (firstToken/λ) mod Shards — tokens of the same batch land in the same
	// shard, since batches are ≈λ-token contiguous runs. Zero routes ring
	// ops by sequence number like everything else.
	Lambda int
	// SegmentBytes rotates the active segment once it reaches this size.
	// Default 4 MiB.
	SegmentBytes int64
	// SnapshotEvery takes a snapshot each time the epoch reaches a multiple
	// of this value. Zero disables automatic snapshots (Snapshot can still
	// be called explicitly).
	SnapshotEvery uint64
	// NoCompact keeps segments that a snapshot already covers. Compaction is
	// on by default; the fault-injection tests disable it to exercise full
	// replay.
	NoCompact bool
	// Sync fsyncs after every append. Off by default: the tests exercise
	// logical crash windows (torn/truncated files), and the sim tolerates
	// losing the OS write-back tail.
	Sync bool
	// Metrics receives store telemetry; nil uses obs.Default().
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default()
	}
	return o
}

// Log is the persistent journal: it implements chain.Journal, appending each
// op to its shard's active segment before the ledger applies it, and writes
// periodic snapshots keyed by epoch. One Log owns one data directory.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex // guards shards, nextSeq, closed
	shards  []*shardLog
	nextSeq uint64
	closed  bool
	lock    *os.File // dir/LOCK flock; released on Close (or process exit)

	snapMu  sync.Mutex    // serialises snapshot writes (committer vs snapshotter)
	snapSeq atomic.Uint64 // epoch of the newest durable snapshot

	mAppends   *obs.Counter
	mBytes     *obs.Counter
	mSegments  *obs.Gauge
	mEpoch     *obs.Gauge
	mSnaps     *obs.Counter
	mSnapErrs  *obs.Counter
	mSnapLat   *obs.Histogram
	mSnapBytes *obs.Counter
}

func (s *Log) initMetrics() {
	r := s.opts.Metrics
	s.mAppends = r.Counter("store.appends")
	s.mBytes = r.Counter("store.append_bytes")
	s.mSegments = r.Gauge("store.segments")
	s.mEpoch = r.Gauge("store.epoch")
	s.mSnaps = r.Counter("store.snapshots")
	s.mSnapErrs = r.Counter("store.snapshot.errors")
	s.mSnapLat = r.Histogram("store.snapshot.latency_us", obs.LatencyBucketsUS)
	s.mSnapBytes = r.Counter("store.snapshot.bytes")
}

// shardFor routes an op to a shard. Ring ops go by batch id (first token
// over λ) so one batch's mixin history stays together; block and tx ops
// round-robin by sequence.
func (s *Log) shardFor(op chain.Op) int {
	n := len(s.shards)
	if op.Kind == chain.OpRS && s.opts.Lambda > 0 && len(op.Tokens) > 0 {
		return (int(op.Tokens[0]) / s.opts.Lambda) % n
	}
	return int(op.Seq % uint64(n))
}

// Append implements chain.Journal: it makes the op durable before the ledger
// applies it. The ledger calls this under its mutation lock, write-ahead.
func (s *Log) Append(op chain.Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if op.Seq != s.nextSeq {
		return fmt.Errorf("store: append seq %d, log expects %d", op.Seq, s.nextSeq)
	}
	payload, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("store: encode op: %w", err)
	}
	if len(payload) > maxRecordBytes {
		// The segment reader rejects records over maxRecordBytes as
		// ErrCorrupt; writing one would journal an op that can never be
		// replayed. Refuse it here, before the ledger applies it.
		return fmt.Errorf("store: op seq %d encodes to %d bytes, over the %d-byte record limit", op.Seq, len(payload), maxRecordBytes)
	}
	n, err := s.shards[s.shardFor(op)].append(payload, op.Seq, s.opts.SegmentBytes, s.opts.Sync)
	if err != nil {
		return err
	}
	s.nextSeq++
	s.mAppends.Inc()
	s.mBytes.Add(int64(n))
	s.mSegments.Set(s.segmentCountLocked())
	return nil
}

// Committed implements chain.Journal: epoch telemetry plus automatic
// snapshots on the configured cadence. It runs under the ledger's mutation
// lock, so an automatic snapshot briefly blocks writers (readers keep their
// pinned views); deployments that care run a snapshotter goroutine calling
// Snapshot instead.
func (s *Log) Committed(v *chain.View) {
	s.mEpoch.Set(int64(v.Epoch()))
	if s.opts.SnapshotEvery > 0 && v.Epoch()%s.opts.SnapshotEvery == 0 {
		if err := s.Snapshot(v); err != nil {
			s.mSnapErrs.Inc()
		}
	}
}

// Epoch of the newest durable snapshot (0 when none has been taken).
func (s *Log) SnapshotSeq() uint64 { return s.snapSeq.Load() }

// snapMeta is the first record of a snapshot file.
type snapMeta struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	Digest  string `json:"digest"` // sha256 of the state record's payload
}

const (
	snapMagic   = "TMSNAP\x01\x00"
	snapVersion = 1
	snapSuffix  = ".snap"
)

func snapName(seq uint64) string { return fmt.Sprintf("snap-%016d%s", seq, snapSuffix) }

// Snapshot persists the view's full state as snap-<epoch>, fsyncs it,
// renames it into place and fsyncs the directory, then compacts segments the
// snapshot covers. The directory fsync orders the rename before the
// compaction unlinks: without it a crash could durably delete the segments
// while the snapshot rename is still volatile, losing both. It is safe to
// call from a goroutine concurrent with appends: the view is immutable, and
// snapshot writes serialise among themselves. Snapshots at or behind the
// newest durable one are skipped.
func (s *Log) Snapshot(v *chain.View) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if v.Epoch() <= s.snapSeq.Load() && v.Epoch() != 0 {
		return nil
	}
	start := time.Now()
	var state bytes.Buffer
	if _, err := v.WriteTo(&state); err != nil {
		return fmt.Errorf("store: serialise snapshot: %w", err)
	}
	if int64(state.Len()) > math.MaxUint32 {
		// The record header's length field is a u32; framing anything
		// larger would silently truncate the length and write an
		// unreadable snapshot.
		return fmt.Errorf("store: snapshot state %d bytes overflows the u32 record length", state.Len())
	}
	sum := sha256.Sum256(state.Bytes())
	meta, err := json.Marshal(snapMeta{Version: snapVersion, Seq: v.Epoch(), Digest: hex.EncodeToString(sum[:])})
	if err != nil {
		return fmt.Errorf("store: encode snapshot meta: %w", err)
	}
	buf := append([]byte(snapMagic), appendRecord(nil, meta)...)
	buf = appendRecord(buf, state.Bytes())

	final := filepath.Join(s.dir, snapName(v.Epoch()))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.snapSeq.Store(v.Epoch())
	s.mSnaps.Inc()
	s.mSnapBytes.Add(int64(len(buf)))
	s.mSnapLat.ObserveSince(start)
	if !s.opts.NoCompact {
		return s.Compact(v.Epoch())
	}
	return nil
}

// Compact deletes sealed segments whose every record is covered by a durable
// snapshot at snapSeq, plus snapshot files older than it.
func (s *Log) Compact(snapSeq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, sh := range s.shards {
		if err := sh.compact(snapSeq); err != nil {
			return err
		}
	}
	s.mSegments.Set(s.segmentCountLocked())
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: compact snapshots: %w", err)
	}
	for _, e := range entries {
		var seq uint64
		if _, serr := fmt.Sscanf(e.Name(), "snap-%016d.snap", &seq); serr != nil {
			continue
		}
		if seq < snapSeq {
			if rerr := os.Remove(filepath.Join(s.dir, e.Name())); rerr != nil {
				return fmt.Errorf("store: compact snapshots: %w", rerr)
			}
		}
	}
	return nil
}

func (s *Log) segmentCountLocked() int64 {
	var n int64
	for _, sh := range s.shards {
		n += int64(sh.segments())
	}
	return n
}

// Close flushes and closes all active segments. The Log must not be used as
// a journal afterwards.
func (s *Log) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, sh := range s.shards {
		if err := sh.close(); err != nil && first == nil {
			first = err
		}
	}
	if s.lock != nil {
		if err := s.lock.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		cerr := f.Close()
		_ = cerr
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		cerr := f.Close()
		_ = cerr
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory, making a preceding rename durable before the
// caller deletes the files the renamed one supersedes.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}

// Digest returns the hex sha256 of the view's canonical serialisation — the
// equality check the recovery tests and the restart smoke use.
func Digest(v *chain.View) (string, error) {
	h := sha256.New()
	if _, err := v.WriteTo(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
