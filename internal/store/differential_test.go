package store

import (
	"math/rand"
	"reflect"
	"testing"

	"tokenmagic/internal/chain"
)

// TestDifferentialPersistentVsMemory drives identical random op streams
// into an in-memory ledger and a persistent one and asserts every
// observable — serialisation, tokens, txs, rings, batch partitions — is
// identical, both live and after a close/reopen cycle. This is the
// equivalence half of the proof battery: persistence must be semantically
// invisible.
func TestDifferentialPersistentVsMemory(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mem := chain.NewLedger()
		dir := t.TempDir()
		opts := testOpts(Options{
			Shards:        1 + int(seed%3),
			Lambda:        2 + int(seed%4),
			SegmentBytes:  256 << (seed % 4),
			SnapshotEvery: uint64(10 * (seed % 3)), // 0, 10 or 20
			NoCompact:     seed%2 == 0,
		})
		st := openT(t, dir, opts)

		for _, op := range randomOps(rng, 120) {
			if merr := op(mem); merr != nil {
				t.Fatalf("seed %d: mem: %v", seed, merr)
			}
			if perr := op(st.Ledger); perr != nil {
				t.Fatalf("seed %d: persistent: %v", seed, perr)
			}
		}
		compareLedgers(t, mem, st.Ledger, rng)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		st2 := openT(t, dir, opts)
		compareLedgers(t, mem, st2.Ledger, rng)
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func compareLedgers(t *testing.T, mem, per *chain.Ledger, rng *rand.Rand) {
	t.Helper()
	if a, b := digestLedger(t, mem), digestLedger(t, per); a != b {
		t.Fatalf("serialisation differs: %s != %s", a, b)
	}
	if mem.Epoch() != per.Epoch() {
		t.Fatalf("epoch %d != %d", mem.Epoch(), per.Epoch())
	}
	if mem.NumTokens() != per.NumTokens() || mem.NumTxs() != per.NumTxs() ||
		mem.NumBlocks() != per.NumBlocks() || mem.NumRS() != per.NumRS() {
		t.Fatal("cardinality mismatch")
	}
	for i := 0; i < mem.NumTokens(); i++ {
		ta, ea := mem.Token(chain.TokenID(i))
		tb, eb := per.Token(chain.TokenID(i))
		if ea != nil || eb != nil || ta != tb {
			t.Fatalf("token %d differs: %+v vs %+v", i, ta, tb)
		}
	}
	if !reflect.DeepEqual(mem.Rings(), per.Rings()) {
		t.Fatal("RS registry differs")
	}
	// Batch partitions must agree for several λ.
	for trial := 0; trial < 3; trial++ {
		lambda := 1 + rng.Intn(8)
		ba, ea := chain.BuildBatches(mem, lambda)
		bb, eb := chain.BuildBatches(per, lambda)
		if ea != nil || eb != nil {
			t.Fatalf("λ=%d: %v / %v", lambda, ea, eb)
		}
		if ba.Len() != bb.Len() {
			t.Fatalf("λ=%d: %d batches vs %d", lambda, ba.Len(), bb.Len())
		}
		for i := 0; i < ba.Len(); i++ {
			x, _ := ba.Batch(i)
			y, _ := bb.Batch(i)
			if !reflect.DeepEqual(x, y) {
				t.Fatalf("λ=%d batch %d differs", lambda, i)
			}
		}
	}
}
