package store

import (
	"bytes"
	"errors"
	"testing"

	"tokenmagic/internal/chain"
)

// TestReadRecordLimit: the declared-length cap is a parameter, not a global —
// segment readers bound records at maxRecordBytes while snapshot readers
// bound them at file size, and anything over the caller's limit is ErrCorrupt.
func TestReadRecordLimit(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 100)
	buf := appendRecord(nil, payload)
	got, n, err := readRecord(buf, len(payload))
	if err != nil || n != len(buf) || !bytes.Equal(got, payload) {
		t.Fatalf("record within limit rejected: payload %d bytes, n=%d, err=%v", len(got), n, err)
	}
	if _, _, err := readRecord(buf, len(payload)-1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("record over limit: got %v, want ErrCorrupt", err)
	}
}

// TestAppendRefusesOversizedOp: an op whose encoding exceeds maxRecordBytes
// must be refused before it hits the segment file — the reader would reject
// it as ErrCorrupt on replay, so writing it would journal an op that can
// never be recovered.
func TestAppendRefusesOversizedOp(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, testOpts(Options{Shards: 1}))
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	toks := make([]chain.TokenID, 2_600_000)
	for i := range toks {
		toks[i] = chain.TokenID(i)
	}
	op := chain.Op{Seq: 0, Kind: chain.OpRS, Tokens: chain.NewTokenSet(toks...), C: 1, L: 1}
	if err := st.Log.Append(op); err == nil {
		t.Fatal("oversized op must be refused, not journaled unreadably")
	}
	// The refusal must leave the log clean: seq 0 is still free and a
	// normal op lands on it.
	if _, err := st.Ledger.BeginBlockErr(); err != nil {
		t.Fatal(err)
	}
	if st.Ledger.Epoch() != 1 {
		t.Fatalf("epoch %d after refused append + one block, want 1", st.Ledger.Epoch())
	}
}
