package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tokenmagic/internal/chain"
)

// validSegmentBytes builds a well-formed segment file image for the fuzz
// corpus.
func validSegmentBytes(tb testing.TB) []byte {
	buf := []byte(segMagic)
	ops := []chain.Op{
		{Seq: 0, Kind: chain.OpBlock},
		{Seq: 1, Kind: chain.OpTx, Block: 0, Amounts: []uint64{1, 7, 3}},
		{Seq: 2, Kind: chain.OpRS, Tokens: chain.NewTokenSet(0, 2), C: 0.5, L: 2},
		{Seq: 3, Kind: chain.OpTx, Block: 0, Amounts: []uint64{9}},
	}
	for _, op := range ops {
		payload, err := json.Marshal(op)
		if err != nil {
			tb.Fatal(err)
		}
		buf = appendRecord(buf, payload)
	}
	return buf
}

// FuzzSegmentRoundTrip feeds arbitrary bytes to the segment reader. The
// contract under any mutation: never panic, decode only checksum-valid ops
// with known kinds (a valid prefix), classify everything else as either a
// torn tail or ErrCorrupt, and behave identically on a second read.
func FuzzSegmentRoundTrip(f *testing.F) {
	valid := validSegmentBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := bytes.Clone(valid)
	flipped[len(segMagic)+recordHeaderLen] ^= 0xFF
	f.Add(flipped) // checksum break mid-log
	huge := bytes.Clone(valid)
	huge[len(segMagic)] = 0xFF
	huge[len(segMagic)+3] = 0xFF
	f.Add(huge) // absurd length field

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, tail, err := readSegment(path, 1)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error outside the ErrCorrupt class: %v", err)
			}
			return
		}
		// Accepted records must be a structurally valid prefix: contiguous
		// from the magic, checksum-verified, known op kinds.
		off := int64(len(segMagic))
		for i, r := range recs {
			if r.op.Kind != chain.OpBlock && r.op.Kind != chain.OpTx && r.op.Kind != chain.OpRS {
				t.Fatalf("record %d: accepted unknown kind %q", i, r.op.Kind)
			}
			payload, n, rerr := readRecord(data[off:], maxRecordBytes)
			if rerr != nil {
				t.Fatalf("record %d: accepted but unreadable at offset %d: %v", i, off, rerr)
			}
			var op chain.Op
			if uerr := json.Unmarshal(payload, &op); uerr != nil {
				t.Fatalf("record %d: accepted undecodable payload", i)
			}
			if op.Seq != r.op.Seq || op.Kind != r.op.Kind {
				t.Fatalf("record %d: decode not stable", i)
			}
			off += int64(n)
			if off != r.end {
				t.Fatalf("record %d: offset drift %d != %d", i, off, r.end)
			}
		}
		if tail != int64(len(data))-off && !(len(data) < len(segMagic) && tail == int64(len(data))) {
			t.Fatalf("tail %d does not cover the undecoded suffix (%d bytes)", tail, int64(len(data))-off)
		}
		// Reading the same bytes twice must classify them identically.
		recs2, tail2, err2 := readSegment(path, 1)
		if err2 != nil || len(recs2) != len(recs) || tail2 != tail {
			t.Fatalf("second read diverged: err=%v recs %d→%d tail %d→%d", err2, len(recs), len(recs2), tail, tail2)
		}
	})
}

// FuzzSnapshotLoad: a mutated snapshot must never be accepted unless it
// validates end to end; in particular the state digest pins the content.
func FuzzSnapshotLoad(f *testing.F) {
	dir := f.TempDir()
	st, err := Open(dir, testOpts(Options{Shards: 1}))
	if err != nil {
		f.Fatal(err)
	}
	b := st.Ledger.BeginBlock()
	if _, err := st.Ledger.AddTx(b, 4); err != nil {
		f.Fatal(err)
	}
	if _, err := st.Ledger.AppendRS(chain.NewTokenSet(1, 3), 0.9, 2); err != nil {
		f.Fatal(err)
	}
	v := st.Ledger.View()
	if err := st.Log.Snapshot(v); err != nil {
		f.Fatal(err)
	}
	if err := st.Close(); err != nil {
		f.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(dir, snapName(v.Epoch())))
	if err != nil {
		f.Fatal(err)
	}
	wantDigest, err := Digest(v)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapBytes)
	f.Add(snapBytes[:len(snapBytes)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), snapName(v.Epoch()))
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		led, lerr := loadSnapshot(path, v.Epoch())
		if lerr != nil {
			return // rejected cleanly
		}
		got, derr := Digest(led.View())
		if derr != nil {
			t.Fatal(derr)
		}
		if got != wantDigest {
			t.Fatalf("accepted snapshot with divergent state (digest %s)", got)
		}
	})
}
