//go:build unix

package store

import "syscall"

// flockExcl takes a non-blocking exclusive flock. Per-open-file-description
// semantics mean a second Open in the same process conflicts too, which is
// exactly what the tests exercise.
func flockExcl(fd uintptr) error {
	return syscall.Flock(int(fd), syscall.LOCK_EX|syscall.LOCK_NB)
}
