package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tokenmagic/internal/chain"
)

// Segment files live under <dir>/shard-NN/ and are named by a monotonically
// increasing id: 00000001.seg, 00000002.seg, … Compaction deletes a prefix of
// ids once a snapshot covers them, so the first surviving id is usually > 1.
// Each file starts with an 8-byte magic and then holds framed records, each
// one JSON-encoded chain.Op. Within a shard, op sequence numbers are strictly
// increasing file-to-file and record-to-record.
const segMagic = "TMSEG\x01\x00\x00"

const segSuffix = ".seg"

func segName(id int) string { return fmt.Sprintf("%08d%s", id, segSuffix) }

func shardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// closedSeg is a sealed (no longer written) segment, remembered for
// compaction: the segment is deletable once a snapshot covers maxSeq.
type closedSeg struct {
	id     int
	maxSeq uint64
}

// shardLog is one shard's write state: the active segment plus the sealed
// ones. It is guarded by the owning Log's mutex.
type shardLog struct {
	dir         string
	active      *os.File
	activeID    int
	activeSize  int64
	activeMax   uint64
	activeCount int
	closed      []closedSeg
	// failed is set when an append did not complete (ENOSPC, I/O error):
	// the active segment may end in partial bytes, so the shard refuses
	// further appends until a reopen repairs the file.
	failed bool
}

// openShard positions the shard for appending: it reuses the newest existing
// segment (recovery has already truncated it to a clean record boundary) or
// creates the first one.
func openShard(dir string, lastID int, lastSize int64, lastMax uint64, lastCount int, closed []closedSeg) (*shardLog, error) {
	sh := &shardLog{dir: dir, closed: closed}
	if lastID == 0 {
		if err := sh.rotate(1); err != nil {
			return nil, err
		}
		return sh, nil
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(lastID)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: reopen segment: %w", err)
	}
	sh.active = f
	sh.activeID = lastID
	sh.activeSize = lastSize
	sh.activeMax = lastMax
	sh.activeCount = lastCount
	return sh, nil
}

// rotate seals the active segment (if any) and starts segment id next.
func (sh *shardLog) rotate(next int) error {
	if sh.active != nil {
		if sh.activeCount > 0 {
			sh.closed = append(sh.closed, closedSeg{id: sh.activeID, maxSeq: sh.activeMax})
		}
		if err := sh.active.Close(); err != nil {
			return fmt.Errorf("store: close segment: %w", err)
		}
	}
	f, err := os.OpenFile(filepath.Join(sh.dir, segName(next)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		closeErr := f.Close()
		_ = closeErr
		return fmt.Errorf("store: write segment magic: %w", err)
	}
	sh.active = f
	sh.activeID = next
	sh.activeSize = int64(len(segMagic))
	sh.activeMax = 0
	sh.activeCount = 0
	return nil
}

// append frames payload into the active segment, rotating first when the
// active segment is full. seq is the op's global sequence number.
func (sh *shardLog) append(payload []byte, seq uint64, segmentBytes int64, sync bool) (int, error) {
	if sh.failed {
		return 0, errShardFailed
	}
	if sh.activeCount > 0 && sh.activeSize >= segmentBytes {
		if err := sh.rotate(sh.activeID + 1); err != nil {
			return 0, err
		}
	}
	buf := appendRecord(nil, payload)
	if _, err := sh.active.Write(buf); err != nil {
		// The write may have landed partially; a later successful append
		// would bury the torn bytes mid-segment, turning a recoverable
		// tail into ErrCorrupt. Seal the shard and try to cut the file
		// back to the last good record boundary.
		sh.failed = true
		_ = sh.active.Truncate(sh.activeSize)
		return 0, fmt.Errorf("store: append record: %w", err)
	}
	if sync {
		if err := sh.active.Sync(); err != nil {
			// After a failed fsync the kernel may drop the dirty pages, so
			// the record's durability is unknown; seal the shard rather
			// than append after a possibly-lost record.
			sh.failed = true
			return 0, fmt.Errorf("store: sync segment: %w", err)
		}
	}
	sh.activeSize += int64(len(buf))
	sh.activeMax = seq
	sh.activeCount++
	return len(buf), nil
}

// segments returns how many segment files the shard currently owns.
func (sh *shardLog) segments() int { return len(sh.closed) + 1 }

// compact deletes sealed segments whose every record is covered by a
// snapshot at snapSeq (a snapshot at epoch S contains ops with seq < S).
func (sh *shardLog) compact(snapSeq uint64) error {
	keep := sh.closed[:0]
	for _, cs := range sh.closed {
		if cs.maxSeq < snapSeq {
			if err := os.Remove(filepath.Join(sh.dir, segName(cs.id))); err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
			continue
		}
		keep = append(keep, cs)
	}
	sh.closed = keep
	return nil
}

func (sh *shardLog) close() error {
	if sh.active == nil {
		return nil
	}
	err := sh.active.Close()
	sh.active = nil
	if err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	return nil
}

// segRecord is one decoded record with its physical position, kept during
// recovery so the repair pass can truncate at exact byte offsets.
type segRecord struct {
	op    chain.Op
	segID int
	// end is the byte offset just past this record in its segment file.
	end int64
}

// listSegments returns the shard's segment ids in ascending order.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read shard dir: %w", err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(name, segSuffix))
		if err != nil || id <= 0 {
			return nil, fmt.Errorf("%w: stray segment file %q", ErrCorrupt, name)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// readSegment decodes one segment file. tail is the number of undecodable
// bytes at the physical end (0 when the file parses completely); the caller
// decides whether that is a tolerated torn write (final segment of the
// shard) or corruption. Damage that is provably not a torn tail — a bad
// checksum with more data after it, an impossible length, JSON that cannot
// be an op despite a valid checksum — is returned as ErrCorrupt.
func readSegment(path string, id int) (recs []segRecord, tail int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: read segment: %w", err)
	}
	if len(buf) < len(segMagic) {
		// Shorter than the magic: only plausible as a torn first write.
		if string(buf) == segMagic[:len(buf)] {
			return nil, int64(len(buf)), nil
		}
		return nil, 0, fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, path)
	}
	if string(buf[:len(segMagic)]) != segMagic {
		return nil, 0, fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, path)
	}
	off := len(segMagic)
	for off < len(buf) {
		payload, n, rerr := readRecord(buf[off:], maxRecordBytes)
		switch {
		case rerr == nil:
		case errors.Is(rerr, errTorn):
			return recs, int64(len(buf) - off), nil
		case errors.Is(rerr, errBadCRC):
			if off+n == len(buf) {
				// Checksum failure on the physically last record: a torn
				// write that flushed the header before the payload.
				return recs, int64(len(buf) - off), nil
			}
			return nil, 0, fmt.Errorf("%w: segment %s: checksum mismatch at offset %d", ErrCorrupt, path, off)
		default:
			return nil, 0, fmt.Errorf("segment %s: offset %d: %w", path, off, rerr)
		}
		var op chain.Op
		if uerr := json.Unmarshal(payload, &op); uerr != nil {
			return nil, 0, fmt.Errorf("%w: segment %s: offset %d: undecodable op: %v", ErrCorrupt, path, off, uerr)
		}
		if op.Kind != chain.OpBlock && op.Kind != chain.OpTx && op.Kind != chain.OpRS {
			return nil, 0, fmt.Errorf("%w: segment %s: offset %d: unknown op kind %q", ErrCorrupt, path, off, op.Kind)
		}
		off += n
		recs = append(recs, segRecord{op: op, segID: id, end: int64(off)})
	}
	return recs, 0, nil
}
