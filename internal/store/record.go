// Package store is the stdlib-only persistent storage layer: an append-only
// segment log of journaled chain ops, sharded across N directories by batch
// id, plus periodic snapshots of the full ledger state. It plugs into
// chain.Ledger through the Journal interface — the ledger journals every op
// write-ahead, the store makes it durable, and Open replays log + snapshot
// back into the exact committed state after a crash.
//
// Durability contract (what the fault-injection tests in recovery_test.go
// prove): after any crash, Open recovers the ledger to the longest contiguous
// committed prefix of ops. A torn write at the physical tail of a shard's
// final segment is a crash artifact and is truncated away; corruption
// anywhere else is an error, never silently skipped. Replay is idempotent —
// records already covered by the snapshot (or duplicated across segments) are
// skipped by sequence number.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing, following the length-then-payload convention of
// chain/encode.go but binary: u32 LE payload length, u32 LE CRC-32C of the
// payload, then the payload (one JSON-encoded chain.Op).
const (
	recordHeaderLen = 8
	// maxRecordBytes bounds a single op record so a corrupt length field
	// cannot drive a huge allocation. It applies to the segment log only:
	// Log.Append refuses to write an op over the limit, so the reader can
	// reject anything larger as corruption. Snapshot files hold the whole
	// ledger state as one record and are bounded by file size instead — a
	// large ledger must still snapshot and load back (see loadSnapshot).
	maxRecordBytes = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors surfaced by the store. ErrCorrupt marks damage that recovery must
// not paper over (mid-log truncation, checksum failures away from the tail,
// non-monotonic sequences); errTorn and errBadCRC are internal classifiers
// the segment reader turns into either a tolerated torn tail or ErrCorrupt
// depending on where the damage sits.
var (
	ErrCorrupt = errors.New("store: corrupt log")
	ErrClosed  = errors.New("store: log is closed")

	errTorn   = errors.New("store: record extends past end of data")
	errBadCRC = errors.New("store: record checksum mismatch")
	// errShardFailed seals a shard after a failed append: the active segment
	// may end in a partial record, and appending past it would bury a torn
	// tail mid-log — damage recovery refuses to repair. Reopening the store
	// truncates the file back to the last good boundary and clears the
	// condition.
	errShardFailed = errors.New("store: shard disabled by earlier failed append")
)

// appendRecord frames payload onto dst and returns the extended slice.
func appendRecord(dst, payload []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readRecord decodes the record at the start of buf, returning the payload
// and the total bytes the record occupies. limit bounds the declared payload
// length: segment readers pass maxRecordBytes (the same cap Log.Append
// enforces on writes), snapshot readers pass the file size, since a
// snapshot's state record is one arbitrarily large blob. Errors classify the
// damage:
//
//   - errTorn: buf ends before the record does (short header or short
//     payload). n is 0.
//   - errBadCRC: the record is fully present but its checksum fails. n is
//     the record's full extent so the caller can tell whether it sits at the
//     physical end of the data (torn write) or mid-log (corruption).
//   - ErrCorrupt: the length field is impossible; nothing here can be a
//     record.
func readRecord(buf []byte, limit int) (payload []byte, n int, err error) {
	if len(buf) < recordHeaderLen {
		return nil, 0, errTorn
	}
	size := binary.LittleEndian.Uint32(buf[0:4])
	if int64(size) > int64(limit) {
		return nil, 0, fmt.Errorf("%w: record length %d exceeds %d-byte limit", ErrCorrupt, size, limit)
	}
	end := recordHeaderLen + int(size)
	if len(buf) < end {
		return nil, 0, errTorn
	}
	payload = buf[recordHeaderLen:end]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, end, errBadCRC
	}
	return payload, end, nil
}
