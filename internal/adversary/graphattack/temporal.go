package graphattack

import (
	"sort"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/rsgraph"
)

// TemporalOptions configures the temporal side-information adversary.
type TemporalOptions struct {
	// Window applies the guess-newest behavioural prior: the consumed token
	// is assumed to lie among the Window newest members of each ring by
	// creation order. 0 disables the prior. The prior is side information
	// about user behaviour — NOT a sound graph fact — so it is intersected
	// with the DM admissible set and reverts to it when the intersection is
	// empty: the adversary's prior can narrow the graph but never
	// contradict it.
	Window int
	// Birth maps a token to its creation rank. Nil uses the dense TokenID
	// order, which IS creation order on this chain (the i-th token ever
	// created has TokenID(i)).
	Birth func(chain.TokenID) int
	// SpendTime maps a ring to its spend position on the same clock as
	// Birth. When set, candidates born after the spend are pruned as hard
	// facts BEFORE the decomposition — a token cannot be consumed before it
	// exists. Nil disables future-pruning; on ledgers whose append rule
	// already enforces token existence (this chain's does) the pruning is
	// vacuous, but imported or cross-batch views carry no such guarantee.
	SpendTime func(chain.RSID) int
}

func (o TemporalOptions) birth(t chain.TokenID) int {
	if o.Birth != nil {
		return o.Birth(t)
	}
	return int(t)
}

// Temporal runs the temporal side-information attack: sound future-pruning
// (tokens created after the spend cannot be its consumed token), the DM
// decomposition over the pruned graph, then the guess-newest window prior
// layered on the admissible sets. Layered on the SideInfo machinery: pins
// apply before every stage.
func Temporal(rings []chain.RingRecord, si adversary.SideInfo, origin func(chain.TokenID) chain.TxID, opts TemporalOptions) Report {
	pr := pinned(rings, si)
	rep := Report{Attack: "temporal"}

	// Stage 1 — sound pruning: drop candidates born after the spend. A ring
	// whose every candidate postdates its own spend is a contradictory view
	// (broken clock side information); revert it rather than invent facts.
	work := make([]rsgraph.Ring, len(pr))
	copy(work, pr)
	if opts.SpendTime != nil {
		for i, r := range work {
			spend := opts.SpendTime(r.ID)
			kept := make(chain.TokenSet, 0, len(r.Tokens))
			for _, t := range r.Tokens {
				if opts.birth(t) <= spend {
					kept = append(kept, t)
				}
			}
			if len(kept) == 0 {
				rep.Reverted++
				continue
			}
			rep.Pruned += len(r.Tokens) - len(kept)
			work[i].Tokens = kept
		}
	}

	// Stage 2 — DM over the pruned graph. If pruning (or the side info)
	// left no token-RS combination, fall back to the unpruned pinned graph:
	// the temporal facts were inconsistent with the ledger, so only the
	// graph itself can be trusted.
	d := rsgraph.NewInstance(work).Decompose()
	if !d.Saturated {
		rep.Degenerate = true
		rep.Pruned, rep.Reverted = 0, len(rings)
		d = rsgraph.NewInstance(pr).Decompose()
	}
	rep.SquareBlocks = d.SquareBlocks
	rep.UnderRings = d.UnderRings()

	// Stage 3 — guess-newest prior over the PUBLISHED ring (the members an
	// outside observer sees), intersected with the admissible set; an empty
	// intersection means the graph already ruled out every "new" candidate,
	// the prior is wrong for this ring, and the attack reverts to the
	// admissible set.
	sets := make([]chain.TokenSet, len(rings))
	copy(sets, d.Feasible())
	if opts.Window > 0 {
		for i := range sets {
			ringToks := pr[i].Tokens
			if len(ringToks) <= opts.Window {
				continue // window covers the whole ring: prior prunes nothing
			}
			newest := newestWindow(ringToks, opts.Window, opts.birth)
			inter := sets[i].Intersect(newest)
			switch {
			case len(inter) == 0:
				rep.Reverted++
			case len(inter) < len(sets[i]):
				rep.Pruned += len(sets[i]) - len(inter)
				sets[i] = inter
			}
		}
	}

	rep.Observations = observations(rings, sets, origin)
	// Only stage-1/2 facts are sound; the window prior narrows suspicion
	// but proves no consumption, so the consumed set is the DM closure of
	// the pruned graph.
	if !rep.Degenerate {
		rep.Consumed = d.ProvablyConsumed()
	}
	rep.Metrics = summarise(rep.Observations, rep.Consumed)
	return rep
}

// newestWindow returns the w newest tokens of set by birth rank (ties
// broken by TokenID, so the result is deterministic), as a TokenSet.
func newestWindow(set chain.TokenSet, w int, birth func(chain.TokenID) int) chain.TokenSet {
	byAge := set.Clone()
	sort.Slice(byAge, func(i, j int) bool {
		bi, bj := birth(byAge[i]), birth(byAge[j])
		if bi != bj {
			return bi > bj
		}
		return byAge[i] > byAge[j]
	})
	return chain.NewTokenSet(byAge[:w]...)
}
