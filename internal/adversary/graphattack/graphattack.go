// Package graphattack is a static graph-analysis attack suite over the
// persisted RS-token bipartite graph, following the related work that
// attacks ring-signature ledgers with strictly stronger analyses than the
// paper's Theorem-4.1 cascade:
//
//   - DM: Dulmage–Mendelsohn decomposition (Egger et al., "On Defeating
//     Graph Analysis of Anonymous Transactions") splits the graph into
//     over-/under-/perfectly-constrained regions, deriving each ring's
//     effective anonymity-set size — the number of admissible consumed
//     tokens, CoinMagic's measure — and the provably-traced tokens. By the
//     admissible-edge theorem this equals the exact ChainReaction closure
//     at a fraction of the cost (differential- and fuzz-tested).
//   - ForcedClosure: a partition/closure attack that iterates DM with
//     forced assignments. The ledger is split into its connected
//     components; within each, every feasible (ring, token) pin is forced
//     in turn and the decomposition re-run, measuring how far one bought or
//     coerced revealed pair cascades — the worst-case residual anonymity
//     when the adversary of Definition 3 obtains a single true pair.
//   - Temporal: a side-information adversary that knows token creation
//     order, prunes candidates newer than the spend (sound, and vacuous on
//     ledgers whose append rule enforces token existence), and optionally
//     applies the guess-newest behavioural prior (the consumed token lies
//     among the Window newest ring members), intersected with the DM
//     admissible sets so the prior can never contradict the graph.
//
// Every attack is a pure function of the ring set plus explicit options —
// no wall clock, no global randomness — so audits replay bit-identically
// from a seed (enforced by the tmlint determinism analyzer via
// .tmlint.json). Attacks accept side information (revealed token-RS pairs)
// and never invent facts from contradictory views: infeasible instances
// report untouched token sets, exactly like adversary.ChainReaction.
package graphattack

import (
	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/rsgraph"
)

// Report is the outcome of one static attack over a ledger's ring set.
type Report struct {
	// Attack is the registry name: "cascade", "dm", "forced_closure" or
	// "temporal".
	Attack string
	// Observations hold each ring's surviving plausible-token set under the
	// attack, in ring order.
	Observations []adversary.Observation
	// Metrics summarises the observations (traced count, HT reveals,
	// mean/min effective anonymity-set size, provably consumed tokens).
	Metrics adversary.Metrics
	// Consumed is the set of tokens the attack proves consumed. Only sound
	// facts land here: behavioural priors and forced hypotheses narrow
	// suspicion but prove nothing.
	Consumed chain.TokenSet
	// Degenerate marks an instance with no token-RS combination at all
	// (contradictory side information or a broken ledger): the attack
	// reported untouched sets and proved nothing.
	Degenerate bool

	// SquareBlocks and UnderRings describe the DM structure backing the
	// attack: fine blocks of the perfectly-constrained region, and rings in
	// the underconstrained region (where nothing is provably consumed).
	SquareBlocks int
	UnderRings   int
	// Components is the number of connected components the forced-closure
	// attack partitioned the graph into (0 for other attacks).
	Components int

	// Pins counts forced-assignment hypotheses evaluated; WorstPin is the
	// single revealed pair that newly traced the most rings. Capped is set
	// when MaxPins truncated the hypothesis sweep.
	Pins     int
	WorstPin *Pin
	Capped   bool

	// Pruned counts candidate tokens removed by the temporal adversary;
	// Reverted counts rings whose temporal prior contradicted the graph
	// and fell back to the DM set.
	Pruned   int
	Reverted int
}

// Pin is one forced token-RS assignment hypothesis and its fallout.
type Pin struct {
	Ring  chain.RSID
	Token chain.TokenID
	// NewlyTraced is how many OTHER rings the single pin collapses to one
	// plausible token (beyond those DM already traced unconditionally).
	NewlyTraced int
}

// pinned applies side information: rings with a revealed pair collapse to a
// single plausible token (pairs naming tokens outside the ring are
// ignored), mirroring the adversary package's Definition-3 handling.
func pinned(rings []chain.RingRecord, si adversary.SideInfo) []rsgraph.Ring {
	out := make([]rsgraph.Ring, len(rings))
	for i, r := range rings {
		toks := r.Tokens
		if tok, ok := si[r.ID]; ok && r.Tokens.Contains(tok) {
			toks = chain.NewTokenSet(tok)
		}
		out[i] = rsgraph.Ring{ID: r.ID, Tokens: toks}
	}
	return out
}

// observations derives per-ring observations from survivor sets.
func observations(rings []chain.RingRecord, sets []chain.TokenSet, origin func(chain.TokenID) chain.TxID) []adversary.Observation {
	out := make([]adversary.Observation, len(rings))
	for i, r := range rings {
		out[i] = adversary.Observe(r.ID, sets[i], origin)
	}
	return out
}

// DM runs the Dulmage–Mendelsohn decomposition attack: the exact
// chain-reaction closure derived structurally from one maximum matching.
func DM(rings []chain.RingRecord, si adversary.SideInfo, origin func(chain.TokenID) chain.TxID) Report {
	in := rsgraph.NewInstance(pinned(rings, si))
	d := in.Decompose()
	rep := Report{
		Attack:       "dm",
		Observations: observations(rings, d.Feasible(), origin),
		Degenerate:   !d.Saturated,
		SquareBlocks: d.SquareBlocks,
		UnderRings:   d.UnderRings(),
		Consumed:     d.ProvablyConsumed(),
	}
	rep.Metrics = summarise(rep.Observations, rep.Consumed)
	return rep
}

// Cascade wraps the paper-faithful Theorem-4.1 greedy cascade as a Report,
// so sweeps can put the heuristic baseline in the same solver × attack
// matrix as the stronger analyses. Its traced set is a subset of DM's
// (differential- and fuzz-tested).
func Cascade(rings []chain.RingRecord, si adversary.SideInfo, origin func(chain.TokenID) chain.TxID) Report {
	a := adversary.Cascade(rings, si, origin)
	return Report{
		Attack:       "cascade",
		Observations: a.Observations,
		Metrics:      adversary.Summarise(a),
		Consumed:     a.Consumed,
	}
}

// summarise folds observations plus a consumed set into Metrics.
func summarise(obs []adversary.Observation, consumed chain.TokenSet) adversary.Metrics {
	m := adversary.Summarise(adversary.Analysis{Observations: obs, Consumed: consumed})
	return m
}

// components partitions ring indices into connected components of the
// token-sharing graph (union-find over tokens, deterministic: components
// are emitted in first-ring order).
func components(rings []rsgraph.Ring) [][]int {
	parent := make(map[chain.TokenID]chain.TokenID)
	var find func(t chain.TokenID) chain.TokenID
	find = func(t chain.TokenID) chain.TokenID {
		p, ok := parent[t]
		if !ok || p == t {
			parent[t] = t
			return t
		}
		root := find(p)
		parent[t] = root
		return root
	}
	for _, r := range rings {
		if len(r.Tokens) == 0 {
			continue
		}
		first := find(r.Tokens[0])
		for _, t := range r.Tokens[1:] {
			parent[find(t)] = first
			first = find(first)
		}
	}
	order := make(map[chain.TokenID]int) // component root -> emit order
	var groups [][]int
	for i, r := range rings {
		if len(r.Tokens) == 0 {
			groups = append(groups, []int{i}) // degenerate empty ring: own component
			continue
		}
		root := find(r.Tokens[0])
		gi, ok := order[root]
		if !ok {
			gi = len(groups)
			order[root] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// Options configures an Audit run.
type Options struct {
	// SideInfo seeds every attack with revealed token-RS pairs.
	SideInfo adversary.SideInfo
	// Temporal configures the temporal adversary.
	Temporal TemporalOptions
	// Forced configures the forced-closure sweep.
	Forced ForcedOptions
	// Attacks selects which attacks run, in registry order; nil runs all.
	Attacks []string
}

// AttackNames lists the implemented attacks in registry order.
func AttackNames() []string { return []string{"cascade", "dm", "forced_closure", "temporal"} }

// Audit runs the selected attacks over one ring set and returns their
// reports in registry order. Unknown attack names are ignored.
func Audit(rings []chain.RingRecord, origin func(chain.TokenID) chain.TxID, opts Options) []Report {
	want := make(map[string]bool, len(opts.Attacks))
	for _, a := range opts.Attacks {
		want[a] = true
	}
	selected := func(name string) bool { return len(opts.Attacks) == 0 || want[name] }

	var out []Report
	if selected("cascade") {
		out = append(out, Cascade(rings, opts.SideInfo, origin))
	}
	if selected("dm") {
		out = append(out, DM(rings, opts.SideInfo, origin))
	}
	if selected("forced_closure") {
		out = append(out, ForcedClosure(rings, opts.SideInfo, origin, opts.Forced))
	}
	if selected("temporal") {
		out = append(out, Temporal(rings, opts.SideInfo, origin, opts.Temporal))
	}
	return out
}
