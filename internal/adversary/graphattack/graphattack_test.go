package graphattack

import (
	"math/rand"
	"reflect"
	"testing"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
)

// origin assigns two tokens per historical transaction — enough structure
// for homogeneity checks without building a full ledger.
func origin(t chain.TokenID) chain.TxID { return chain.TxID(int(t) / 2) }

// randomRecords builds a random ring set over nTokens tokens.
func randomRecords(rng *rand.Rand, nRings, nTokens, maxSize int) []chain.RingRecord {
	out := make([]chain.RingRecord, nRings)
	for i := range out {
		size := 1 + rng.Intn(maxSize)
		ids := make([]chain.TokenID, size)
		for j := range ids {
			ids[j] = chain.TokenID(rng.Intn(nTokens))
		}
		out[i] = chain.RingRecord{ID: chain.RSID(i), Tokens: chain.NewTokenSet(ids...), Pos: i}
	}
	return out
}

// TestDMDifferential is the satellite property test: for random ledgers the
// DM-derived traced set must be a superset of the Cascade traced set and
// identical to the exact ChainReaction closure — observation for
// observation, token for token.
func TestDMDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		rings := randomRecords(rng, 1+rng.Intn(10), 1+rng.Intn(14), 4)

		var si adversary.SideInfo
		if trial%3 == 0 && len(rings) > 1 {
			si = adversary.SideInfo{rings[0].ID: rings[0].Tokens[0]}
		}

		dm := DM(rings, si, origin)
		exact := adversary.ChainReaction(rings, si, origin)
		cascade := adversary.Cascade(rings, si, origin)

		// DM ≡ exact ChainReaction, per ring and on the consumed closure.
		for i := range rings {
			if !dm.Observations[i].Remaining.Equal(exact.Observations[i].Remaining) {
				t.Fatalf("trial %d ring %d: DM %v != ChainReaction %v",
					trial, i, dm.Observations[i].Remaining, exact.Observations[i].Remaining)
			}
		}
		if !reflect.DeepEqual(dm.Metrics, adversary.Summarise(exact)) {
			t.Fatalf("trial %d: DM metrics %+v != exact %+v",
				trial, dm.Metrics, adversary.Summarise(exact))
		}
		if !dm.Consumed.Equal(exact.Consumed) {
			t.Fatalf("trial %d: DM consumed %v != exact %v", trial, dm.Consumed, exact.Consumed)
		}

		// Cascade never eliminates more than DM: per-ring cascade sets are
		// supersets, so cascade traced ⊆ DM traced and cascade consumed ⊆
		// DM consumed. Only meaningful on feasible instances — on degenerate
		// ones DM reports untouched sets by contract while the greedy cascade
		// keeps eliminating from its contradictory view.
		if dm.Degenerate {
			continue
		}
		for i := range rings {
			if !dm.Observations[i].Remaining.SubsetOf(cascade.Observations[i].Remaining) {
				t.Fatalf("trial %d ring %d: cascade %v eliminated more than DM %v",
					trial, i, cascade.Observations[i].Remaining, dm.Observations[i].Remaining)
			}
			if cascade.Observations[i].Traced && !dm.Observations[i].Traced {
				t.Fatalf("trial %d ring %d: cascade traced but DM did not", trial, i)
			}
		}
		if !cascade.Consumed.SubsetOf(dm.Consumed) {
			t.Fatalf("trial %d: cascade consumed %v ⊄ DM consumed %v",
				trial, cascade.Consumed, dm.Consumed)
		}
	}
}

func TestForcedClosureCascadesThroughCycle(t *testing.T) {
	// Two rings over the same two tokens: unconditionally ambiguous, but a
	// single revealed pair traces the other ring. The forced-closure attack
	// must surface exactly that worst case.
	rings := []chain.RingRecord{
		{ID: 0, Tokens: chain.NewTokenSet(0, 1), Pos: 0},
		{ID: 1, Tokens: chain.NewTokenSet(0, 1), Pos: 1},
	}
	base := DM(rings, nil, origin)
	if base.Metrics.Traced != 0 || base.Metrics.MinAnonymity != 2 {
		t.Fatalf("DM base: %+v", base.Metrics)
	}
	rep := ForcedClosure(rings, nil, origin, ForcedOptions{})
	if rep.Metrics.MinAnonymity != 1 {
		t.Fatalf("one revealed pair must collapse the cycle: %+v", rep.Metrics)
	}
	if rep.WorstPin == nil || rep.WorstPin.NewlyTraced != 1 {
		t.Fatalf("worst pin = %+v, want NewlyTraced 1", rep.WorstPin)
	}
	if rep.Pins != 4 { // 2 rings × 2 admissible tokens
		t.Fatalf("pins = %d, want 4", rep.Pins)
	}
	if rep.Components != 1 {
		t.Fatalf("components = %d, want 1", rep.Components)
	}
}

func TestForcedClosureNeverGrowsSets(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		rings := randomRecords(rng, 2+rng.Intn(8), 2+rng.Intn(12), 4)
		dm := DM(rings, nil, origin)
		fc := ForcedClosure(rings, nil, origin, ForcedOptions{})
		if fc.Degenerate != dm.Degenerate {
			t.Fatalf("trial %d: degeneracy disagrees", trial)
		}
		for i := range rings {
			if !fc.Observations[i].Remaining.SubsetOf(dm.Observations[i].Remaining) {
				t.Fatalf("trial %d ring %d: forced %v ⊄ dm %v",
					trial, i, fc.Observations[i].Remaining, dm.Observations[i].Remaining)
			}
		}
		if fc.Metrics.MinAnonymity > dm.Metrics.MinAnonymity && !fc.Degenerate {
			t.Fatalf("trial %d: forced min %d > dm min %d",
				trial, fc.Metrics.MinAnonymity, dm.Metrics.MinAnonymity)
		}
	}
}

func TestForcedClosurePinCap(t *testing.T) {
	rings := []chain.RingRecord{
		{ID: 0, Tokens: chain.NewTokenSet(0, 1)},
		{ID: 1, Tokens: chain.NewTokenSet(0, 1)},
		{ID: 2, Tokens: chain.NewTokenSet(2, 3)},
		{ID: 3, Tokens: chain.NewTokenSet(2, 3)},
	}
	rep := ForcedClosure(rings, nil, origin, ForcedOptions{MaxPins: 2})
	if !rep.Capped || rep.Pins != 2 {
		t.Fatalf("capped=%v pins=%d, want capped after 2", rep.Capped, rep.Pins)
	}
	if rep.Components != 2 {
		t.Fatalf("components = %d, want 2", rep.Components)
	}
}

func TestTemporalFuturePruning(t *testing.T) {
	// Ring 0 claims token 5, born after its spend on the adversary's clock:
	// sound pruning traces the ring. Ring 1 is unaffected.
	rings := []chain.RingRecord{
		{ID: 0, Tokens: chain.NewTokenSet(0, 5), Pos: 0},
		{ID: 1, Tokens: chain.NewTokenSet(1, 2), Pos: 1},
	}
	rep := Temporal(rings, nil, origin, TemporalOptions{
		SpendTime: func(id chain.RSID) int { return 3 },
	})
	if !rep.Observations[0].Remaining.Equal(chain.NewTokenSet(0)) {
		t.Fatalf("ring 0 = %v, want traced to {0}", rep.Observations[0].Remaining)
	}
	if rep.Pruned != 1 {
		t.Fatalf("pruned = %d, want 1", rep.Pruned)
	}
	if len(rep.Observations[1].Remaining) != 2 {
		t.Fatalf("ring 1 must stay ambiguous: %v", rep.Observations[1].Remaining)
	}
}

func TestTemporalContradictoryClockReverts(t *testing.T) {
	// Every candidate of ring 0 postdates its spend: a broken clock. The
	// attack must revert the ring rather than empty it.
	rings := []chain.RingRecord{
		{ID: 0, Tokens: chain.NewTokenSet(4, 5), Pos: 0},
	}
	rep := Temporal(rings, nil, origin, TemporalOptions{
		SpendTime: func(id chain.RSID) int { return 1 },
	})
	if rep.Reverted != 1 {
		t.Fatalf("reverted = %d, want 1", rep.Reverted)
	}
	if len(rep.Observations[0].Remaining) != 2 {
		t.Fatalf("ring 0 = %v, want untouched", rep.Observations[0].Remaining)
	}
}

func TestTemporalWindowPrior(t *testing.T) {
	// One ring over four free-floating tokens: DM keeps all four, the
	// window-2 prior narrows suspicion to the two newest.
	rings := []chain.RingRecord{
		{ID: 0, Tokens: chain.NewTokenSet(0, 1, 2, 3), Pos: 0},
	}
	rep := Temporal(rings, nil, origin, TemporalOptions{Window: 2})
	if !rep.Observations[0].Remaining.Equal(chain.NewTokenSet(2, 3)) {
		t.Fatalf("window prior = %v, want {2, 3}", rep.Observations[0].Remaining)
	}
	if rep.Pruned != 2 {
		t.Fatalf("pruned = %d, want 2", rep.Pruned)
	}
	// The prior proves nothing: no consumption facts.
	if rep.Metrics.ConsumedTokens != 0 {
		t.Fatalf("window prior must not prove consumption: %+v", rep.Metrics)
	}
}

func TestTemporalWindowRevertsWhenGraphDisagrees(t *testing.T) {
	// Ring 1's two newest members are both provably consumed by the traced
	// singletons, so the window prior contradicts the graph and reverts.
	rings := []chain.RingRecord{
		{ID: 0, Tokens: chain.NewTokenSet(2)},
		{ID: 1, Tokens: chain.NewTokenSet(3)},
		{ID: 2, Tokens: chain.NewTokenSet(0, 1, 2, 3)},
	}
	rep := Temporal(rings, nil, origin, TemporalOptions{Window: 2})
	if rep.Reverted != 1 {
		t.Fatalf("reverted = %d, want 1 (prior names only consumed tokens)", rep.Reverted)
	}
	if !rep.Observations[2].Remaining.Equal(chain.NewTokenSet(0, 1)) {
		t.Fatalf("ring 2 = %v, want DM set {0, 1}", rep.Observations[2].Remaining)
	}
}

func TestAuditRunsAllAttacksDeterministically(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rings := randomRecords(rng, 10, 14, 4)
	opts := Options{Temporal: TemporalOptions{Window: 2}}
	a := Audit(rings, origin, opts)
	b := Audit(rings, origin, opts)
	if len(a) != len(AttackNames()) {
		t.Fatalf("reports = %d, want %d", len(a), len(AttackNames()))
	}
	for i, name := range AttackNames() {
		if a[i].Attack != name {
			t.Fatalf("report %d = %q, want %q", i, a[i].Attack, name)
		}
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Audit is not deterministic")
	}
}

func TestAuditAttackSelection(t *testing.T) {
	rings := []chain.RingRecord{{ID: 0, Tokens: chain.NewTokenSet(0, 1)}}
	reps := Audit(rings, origin, Options{Attacks: []string{"dm", "temporal"}})
	if len(reps) != 2 || reps[0].Attack != "dm" || reps[1].Attack != "temporal" {
		t.Fatalf("selection failed: %+v", reps)
	}
}

func TestDegenerateLedgerProvesNothing(t *testing.T) {
	// Two singleton rings fighting over one token: no combination exists.
	rings := []chain.RingRecord{
		{ID: 0, Tokens: chain.NewTokenSet(0)},
		{ID: 1, Tokens: chain.NewTokenSet(0)},
	}
	for _, rep := range Audit(rings, origin, Options{Temporal: TemporalOptions{Window: 1}}) {
		if rep.Attack == "cascade" {
			continue // the cascade has its own contradictory-view contract
		}
		if !rep.Degenerate {
			t.Fatalf("%s: degenerate instance not flagged", rep.Attack)
		}
		if rep.Metrics.ConsumedTokens != 0 {
			t.Fatalf("%s proved consumption on a degenerate ledger", rep.Attack)
		}
	}
}
