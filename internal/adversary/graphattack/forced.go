package graphattack

import (
	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/rsgraph"
)

// ForcedOptions bounds the forced-closure hypothesis sweep.
type ForcedOptions struct {
	// MaxPins caps the number of forced-assignment hypotheses evaluated
	// across the whole ledger (0 = DefaultMaxPins). When the cap trips, the
	// report carries Capped=true and the remaining hypotheses are skipped —
	// the reported anonymity is then an over-estimate, never an
	// under-estimate, so a CI gate reading it stays sound in the safe
	// direction (it can only fail spuriously, not pass wrongly).
	MaxPins int
}

// DefaultMaxPins bounds the hypothesis sweep: one DM decomposition per pin,
// each linear-ish, so the default allows ledgers well past bench scale.
const DefaultMaxPins = 1 << 14

func (o ForcedOptions) maxPins() int {
	if o.MaxPins > 0 {
		return o.MaxPins
	}
	return DefaultMaxPins
}

// ForcedClosure runs the partition/closure attack: split the ledger graph
// into connected components, then within each component force every
// DM-admissible (ring, token) assignment in turn — modelling the
// Definition-3 adversary buying exactly one true revealed pair — and re-run
// the decomposition under that hypothesis. Each ring's reported plausible
// set is its worst case over every hypothesis pinning ANOTHER ring (the
// pinned ring itself is trivially traced by the purchase, which measures
// nothing about the graph). The headline numbers are therefore the
// residual anonymity guaranteed even against a one-pair oracle, and
// WorstPin names the single most damaging purchase.
//
// Connected components make the sweep tractable and are themselves the
// partition attack: a pin only cascades inside its component, so each
// hypothesis re-decomposes one component, not the ledger.
func ForcedClosure(rings []chain.RingRecord, si adversary.SideInfo, origin func(chain.TokenID) chain.TxID, opts ForcedOptions) Report {
	pr := pinned(rings, si)
	base := rsgraph.NewInstance(pr).Decompose()
	rep := Report{
		Attack:       "forced_closure",
		Degenerate:   !base.Saturated,
		SquareBlocks: base.SquareBlocks,
		UnderRings:   base.UnderRings(),
	}
	if !base.Saturated {
		// No combination at all: untouched sets, nothing proven, no
		// hypotheses to force.
		rep.Observations = observations(rings, base.Feasible(), origin)
		rep.Metrics = summarise(rep.Observations, nil)
		return rep
	}

	// Worst-case sets start at the unconditional DM closure and only ever
	// shrink as hypotheses land.
	minSets := make([]chain.TokenSet, len(rings))
	copy(minSets, base.Feasible())

	groups := components(pr)
	rep.Components = len(groups)
	budget := opts.maxPins()

sweep:
	for _, group := range groups {
		if len(group) == 1 && len(base.Feasible()[group[0]]) < 2 {
			continue // singleton component already traced: no hypotheses
		}
		// Component sub-instance; hypotheses re-decompose only this slice.
		sub := make([]rsgraph.Ring, len(group))
		for k, ri := range group {
			sub[k] = pr[ri]
		}
		for k, ri := range group {
			feas := base.Feasible()[ri]
			if len(feas) < 2 {
				continue // already traced unconditionally; pinning it adds nothing
			}
			for _, tok := range feas {
				if rep.Pins >= budget {
					rep.Capped = true
					break sweep
				}
				rep.Pins++
				saved := sub[k].Tokens
				sub[k].Tokens = chain.NewTokenSet(tok)
				d := rsgraph.NewInstance(sub).Decompose()
				sub[k].Tokens = saved
				if !d.Saturated {
					// Cannot happen for a DM-admissible pin; skip defensively
					// rather than derive facts from a contradiction.
					continue
				}
				newly := 0
				for j, rj := range group {
					if rj == ri {
						continue
					}
					f := d.Feasible()[j]
					if len(f) < len(minSets[rj]) {
						minSets[rj] = f
					}
					if len(f) == 1 && len(base.Feasible()[rj]) > 1 {
						newly++
					}
				}
				if rep.WorstPin == nil || newly > rep.WorstPin.NewlyTraced {
					rep.WorstPin = &Pin{Ring: rings[ri].ID, Token: tok, NewlyTraced: newly}
				}
			}
		}
	}

	rep.Observations = observations(rings, minSets, origin)
	// Consumption facts stay unconditional: only the side-information-free
	// closure is proven; hypothesis-conditional consumption is not.
	rep.Consumed = base.ProvablyConsumed()
	rep.Metrics = summarise(rep.Observations, rep.Consumed)
	return rep
}
