package graphattack

import (
	"testing"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
)

// FuzzDMEquivalence is the fuzz form of the differential property: on any
// ring set the DM decomposition must agree with the exact ChainReaction
// closure ring-for-ring, and on feasible instances the greedy cascade must
// never eliminate more than DM. The byte stream encodes small instances
// (≤10 rings, ≤14 tokens, ring size ≤4) plus an optional revealed pair.
func FuzzDMEquivalence(f *testing.F) {
	f.Add([]byte{2, 0x03, 0x03, 0xff})          // two rings over {0,1}: a square cycle
	f.Add([]byte{3, 0x01, 0x01, 0x06, 0xff})    // duplicate singletons: degenerate
	f.Add([]byte{4, 0x0f, 0x30, 0x21, 0x0c, 0}) // mixed, pin ring 0
	f.Fuzz(func(t *testing.T, data []byte) {
		rings, si := decodeInstance(data)
		if len(rings) == 0 {
			return
		}

		dm := DM(rings, si, origin)
		exact := adversary.ChainReaction(rings, si, origin)
		cascade := adversary.Cascade(rings, si, origin)

		for i := range rings {
			if !dm.Observations[i].Remaining.Equal(exact.Observations[i].Remaining) {
				t.Fatalf("ring %d: DM %v != ChainReaction %v",
					i, dm.Observations[i].Remaining, exact.Observations[i].Remaining)
			}
		}
		if !dm.Consumed.Equal(exact.Consumed) {
			t.Fatalf("DM consumed %v != exact %v", dm.Consumed, exact.Consumed)
		}
		if dm.Degenerate {
			return // cascade ⊆ DM only holds on feasible instances
		}
		for i := range rings {
			if !dm.Observations[i].Remaining.SubsetOf(cascade.Observations[i].Remaining) {
				t.Fatalf("ring %d: cascade %v eliminated more than DM %v",
					i, cascade.Observations[i].Remaining, dm.Observations[i].Remaining)
			}
		}
		if !cascade.Consumed.SubsetOf(dm.Consumed) {
			t.Fatalf("cascade consumed %v ⊄ DM consumed %v", cascade.Consumed, dm.Consumed)
		}
	})
}

// decodeInstance maps a fuzz byte stream to a small ring set: byte 0 picks
// the ring count, each following byte is a 14-bit-truncated token bitmask
// capped at 4 members, and a final byte below the ring count pins that
// ring's first token as side information.
func decodeInstance(data []byte) ([]chain.RingRecord, adversary.SideInfo) {
	if len(data) < 2 {
		return nil, nil
	}
	n := 1 + int(data[0])%10
	if n > len(data)-1 {
		n = len(data) - 1
	}
	rings := make([]chain.RingRecord, 0, n)
	for i := 0; i < n; i++ {
		mask := (uint16(data[1+i]) | uint16(data[1+i])<<7) & 0x3fff
		var ids []chain.TokenID
		for b := 0; b < 14 && len(ids) < 4; b++ {
			if mask&(1<<b) != 0 {
				ids = append(ids, chain.TokenID(b))
			}
		}
		if len(ids) == 0 {
			continue
		}
		rings = append(rings, chain.RingRecord{
			ID: chain.RSID(len(rings)), Tokens: chain.NewTokenSet(ids...), Pos: len(rings),
		})
	}
	var si adversary.SideInfo
	if extra := len(data) - 1 - n; extra > 0 {
		if pick := int(data[1+n]); pick < len(rings) {
			si = adversary.SideInfo{rings[pick].ID: rings[pick].Tokens[0]}
		}
	}
	return rings, si
}
