package adversary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/rsgraph"
)

func TestCascadeMatchesExactOnSimpleChains(t *testing.T) {
	rings := []chain.RingRecord{
		rec(0, 1, 2),
		rec(1, 1, 2),
		rec(2, 2, 3),
	}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 10, 2: 20, 3: 30})
	c := Cascade(rings, nil, origin)
	e := ChainReaction(rings, nil, origin)
	if !c.Consumed.Equal(e.Consumed) {
		t.Fatalf("cascade consumed %v, exact %v", c.Consumed, e.Consumed)
	}
	if !c.Observations[2].Traced || c.Observations[2].Remaining[0] != 3 {
		t.Fatalf("cascade should trace r2 to t3: %+v", c.Observations[2])
	}
}

func TestCascadeNestedChain(t *testing.T) {
	rings := []chain.RingRecord{rec(0, 1), rec(1, 1, 2), rec(2, 1, 2, 3)}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2, 3: 3})
	a := Cascade(rings, nil, origin)
	for i, want := range []chain.TokenID{1, 2, 3} {
		o := a.Observations[i]
		if !o.Traced || o.Remaining[0] != want {
			t.Fatalf("ring %d should trace to %v: %+v", i, want, o)
		}
	}
}

func TestCascadeSideInfo(t *testing.T) {
	rings := []chain.RingRecord{rec(0, 1, 2), rec(1, 2, 3)}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2, 3: 3})
	a := Cascade(rings, SideInfo{0: 2}, origin)
	if o := a.Observations[1]; !o.Traced || o.Remaining[0] != 3 {
		t.Fatalf("r1 should cascade to t3: %+v", o)
	}
}

// Exact analysis dominates the cascade: the cascade never eliminates more
// than matching feasibility allows, so each exact Remaining ⊆ each cascade
// Remaining and cascade Consumed ⊆ exact Consumed.
func TestExactDominatesCascade(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nTok := 3 + r.Intn(5)
		nRing := 1 + r.Intn(4)
		var rings []chain.RingRecord
		for i := 0; i < nRing; i++ {
			var toks []chain.TokenID
			for len(toks) == 0 {
				for tk := 0; tk < nTok; tk++ {
					if r.Intn(2) == 0 {
						toks = append(toks, chain.TokenID(tk))
					}
				}
			}
			rings = append(rings, rec(i, toks...))
		}
		if !rsgraph.FromRecords(rings).HasAssignment() {
			return true // degenerate: both report originals
		}
		origin := func(t chain.TokenID) chain.TxID { return chain.TxID(t % 3) }
		c := Cascade(rings, nil, origin)
		e := ChainReaction(rings, nil, origin)
		if !c.Consumed.SubsetOf(e.Consumed) {
			return false
		}
		for i := range rings {
			if !e.Observations[i].Remaining.SubsetOf(c.Observations[i].Remaining) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestProvablyConsumedExact(t *testing.T) {
	// K3,3-ish saturated instance: 3 rings over {1,2,3} → all consumed.
	in := rsgraph.NewInstance([]rsgraph.Ring{
		{ID: 0, Tokens: chain.NewTokenSet(1, 2, 3)},
		{ID: 1, Tokens: chain.NewTokenSet(1, 2, 3)},
		{ID: 2, Tokens: chain.NewTokenSet(1, 2, 3)},
	})
	if got := in.ProvablyConsumed(); !got.Equal(chain.NewTokenSet(1, 2, 3)) {
		t.Fatalf("ProvablyConsumed = %v", got)
	}
	// Two rings over three tokens: nothing individually provable? r0={1,2},
	// r1={2,3}: banning 1 → r0 takes 2, r1 takes 3: feasible. Banning 2 →
	// r0 takes 1, r1 takes 3: feasible. Banning 3 → r1 takes 2, r0 takes 1:
	// feasible. Nothing provable.
	in = rsgraph.NewInstance([]rsgraph.Ring{
		{ID: 0, Tokens: chain.NewTokenSet(1, 2)},
		{ID: 1, Tokens: chain.NewTokenSet(2, 3)},
	})
	if got := in.ProvablyConsumed(); len(got) != 0 {
		t.Fatalf("ProvablyConsumed = %v, want empty", got)
	}
	// Infeasible instance proves nothing.
	in = rsgraph.NewInstance([]rsgraph.Ring{
		{ID: 0, Tokens: chain.NewTokenSet(1)},
		{ID: 1, Tokens: chain.NewTokenSet(1)},
	})
	if got := in.ProvablyConsumed(); got != nil {
		t.Fatalf("infeasible instance should prove nothing, got %v", got)
	}
}

func TestChainReactionInfeasibleReportsOriginals(t *testing.T) {
	rings := []chain.RingRecord{rec(0, 1), rec(1, 1)}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1})
	a := ChainReaction(rings, nil, origin)
	for i := range rings {
		if !a.Observations[i].Remaining.Equal(rings[i].Tokens) {
			t.Fatalf("obs %d = %+v, want original tokens", i, a.Observations[i])
		}
	}
	if len(a.Consumed) != 0 {
		t.Fatalf("Consumed = %v, want empty", a.Consumed)
	}
}
