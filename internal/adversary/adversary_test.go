package adversary

import (
	"testing"

	"tokenmagic/internal/chain"
)

func rec(id int, toks ...chain.TokenID) chain.RingRecord {
	return chain.RingRecord{ID: chain.RSID(id), Tokens: chain.NewTokenSet(toks...), Pos: id}
}

func originOf(hts map[chain.TokenID]chain.TxID) func(chain.TokenID) chain.TxID {
	return func(t chain.TokenID) chain.TxID {
		if h, ok := hts[t]; ok {
			return h
		}
		return chain.NoTx
	}
}

// Paper Example 1 second solution: r1 = r2 = {t1,t2}, r3 = {t2,t3}.
// The two identical rings consume both t1 and t2 (Theorem 4.1), so the
// consumed token of r3 must be t3.
func TestChainReactionEliminates(t *testing.T) {
	rings := []chain.RingRecord{
		rec(0, 1, 2),
		rec(1, 1, 2),
		rec(2, 2, 3),
	}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 10, 2: 20, 3: 30})
	a := ChainReaction(rings, nil, origin)

	if !a.Consumed.Contains(1) || !a.Consumed.Contains(2) || !a.Consumed.Contains(3) {
		t.Fatalf("consumed = %v, want {1,2,3}", a.Consumed)
	}
	r3 := a.Observations[2]
	if !r3.Traced || !r3.Remaining.Equal(chain.NewTokenSet(3)) {
		t.Fatalf("r3 should be traced to t3, got %+v", r3)
	}
	if !r3.HTKnown || r3.HT != 30 {
		t.Fatalf("r3 HT should be revealed as 30, got %+v", r3)
	}
	// r1 and r2 stay ambiguous between t1 and t2.
	if a.Observations[0].Traced || a.Observations[1].Traced {
		t.Fatal("identical rings must stay untraced")
	}
}

// The "good" Example 1 solution resists: r1 = r2 = {t1,t2}, r3 = {t3,t4}.
func TestChainReactionResisted(t *testing.T) {
	rings := []chain.RingRecord{
		rec(0, 1, 2),
		rec(1, 1, 2),
		rec(2, 3, 4),
	}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 10, 2: 20, 3: 30, 4: 40})
	a := ChainReaction(rings, nil, origin)
	if a.Observations[2].Traced {
		t.Fatal("disjoint ring must not be traced")
	}
	if a.Observations[2].HTKnown {
		t.Fatal("heterogeneous ring must not reveal HT")
	}
	// Theorem 4.1 still proves t1, t2 consumed.
	if !a.Consumed.Contains(1) || !a.Consumed.Contains(2) {
		t.Fatalf("consumed = %v, want ⊇ {1,2}", a.Consumed)
	}
	if a.Consumed.Contains(3) || a.Consumed.Contains(4) {
		t.Fatalf("tokens of the fresh ring wrongly consumed: %v", a.Consumed)
	}
}

// Homogeneity attack: all candidates from one HT reveal the HT even without
// tracing the token.
func TestHomogeneityAttack(t *testing.T) {
	rings := []chain.RingRecord{rec(0, 1, 2)}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 7, 2: 7})
	a := ChainReaction(rings, nil, origin)
	o := a.Observations[0]
	if o.Traced {
		t.Fatal("two candidates: not traced")
	}
	if !o.HTKnown || o.HT != 7 {
		t.Fatalf("homogeneous ring should reveal HT 7, got %+v", o)
	}
}

// Side information pins rings and cascades.
func TestChainReactionSideInfo(t *testing.T) {
	// Example 2: revealing <t2, r1> forces r4 = t4, then r5 ∈ {t5, t6}.
	rings := []chain.RingRecord{
		rec(1, 1, 2, 5),
		rec(2, 1, 3),
		rec(3, 1, 3),
		rec(4, 2, 4),
		rec(5, 4, 5, 6),
	}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 10, 2: 20, 3: 30, 4: 40, 5: 1, 6: 1})
	a := ChainReaction(rings, SideInfo{1: 2}, origin)

	if o := a.Observations[0]; !o.Traced || o.Remaining[0] != 2 {
		t.Fatalf("r1 should be pinned to t2: %+v", o)
	}
	if o := a.Observations[3]; !o.Traced || o.Remaining[0] != 4 {
		t.Fatalf("r4 should cascade to t4: %+v", o)
	}
	o := a.Observations[4]
	if o.Traced {
		t.Fatalf("r5 stays ambiguous between t5/t6: %+v", o)
	}
	if !o.HTKnown || o.HT != 1 {
		t.Fatalf("r5's HT should be revealed as h1 (homogeneity): %+v", o)
	}
}

func TestSideInfoIgnoresForeignToken(t *testing.T) {
	rings := []chain.RingRecord{rec(0, 1, 2)}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2})
	// Side info claims r0 consumed t9, which r0 does not contain: ignored.
	a := ChainReaction(rings, SideInfo{0: 9}, origin)
	if a.Observations[0].Traced {
		t.Fatal("invalid side info must be ignored")
	}
}

func TestChainReactionEmpty(t *testing.T) {
	a := ChainReaction(nil, nil, func(chain.TokenID) chain.TxID { return chain.NoTx })
	if len(a.Observations) != 0 || len(a.Consumed) != 0 {
		t.Fatalf("empty analysis should be empty, got %+v", a)
	}
}

// Nested chain: r0={1}, r1={1,2}, r2={1,2,3}: each link traces in turn.
func TestChainReactionNestedCascade(t *testing.T) {
	rings := []chain.RingRecord{rec(0, 1), rec(1, 1, 2), rec(2, 1, 2, 3)}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2, 3: 3})
	a := ChainReaction(rings, nil, origin)
	for i, want := range []chain.TokenID{1, 2, 3} {
		o := a.Observations[i]
		if !o.Traced || o.Remaining[0] != want {
			t.Fatalf("ring %d should trace to %v: %+v", i, want, o)
		}
	}
	if len(a.Consumed) != 3 {
		t.Fatalf("consumed = %v", a.Consumed)
	}
}

func TestSummarise(t *testing.T) {
	rings := []chain.RingRecord{
		rec(0, 1, 2),
		rec(1, 1, 2),
		rec(2, 2, 3),
	}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 10, 2: 20, 3: 30})
	m := Summarise(ChainReaction(rings, nil, origin))
	if m.Rings != 3 {
		t.Fatalf("Rings = %d", m.Rings)
	}
	if m.Traced != 1 {
		t.Fatalf("Traced = %d, want 1 (r3 only)", m.Traced)
	}
	if m.HTRevealed != 1 {
		t.Fatalf("HTRevealed = %d, want 1", m.HTRevealed)
	}
	// Remaining sizes: 2, 2, 1 → avg 5/3.
	if want := 5.0 / 3.0; m.AvgAnonymity < want-1e-9 || m.AvgAnonymity > want+1e-9 {
		t.Fatalf("AvgAnonymity = %v, want %v", m.AvgAnonymity, want)
	}
	if m.ConsumedTokens != 3 {
		t.Fatalf("ConsumedTokens = %d", m.ConsumedTokens)
	}
}

func TestNeighborSets(t *testing.T) {
	ns := NewNeighborSets()
	if ns.RingCount() != 0 || ns.ConsumedCount() != 0 {
		t.Fatal("fresh NeighborSets should be empty")
	}
	ns.Append(rec(0, 1, 2))
	if ns.ConsumedCount() != 0 {
		t.Fatalf("one 2-ring proves nothing, μ = %d", ns.ConsumedCount())
	}
	// Appending the twin closes the set {1,2}: μ = 2.
	if got := ns.WouldConsume(rec(1, 1, 2)); got != 2 {
		t.Fatalf("WouldConsume = %d, want 2", got)
	}
	if ns.ConsumedCount() != 0 {
		t.Fatal("WouldConsume must not mutate")
	}
	ns.Append(rec(1, 1, 2))
	if ns.ConsumedCount() != 2 || ns.RingCount() != 2 {
		t.Fatalf("μ = %d rings = %d", ns.ConsumedCount(), ns.RingCount())
	}
	if !ns.Consumed().Equal(chain.NewTokenSet(1, 2)) {
		t.Fatalf("Consumed = %v", ns.Consumed())
	}
}

// Theorem 4.1 statement: n rings over exactly n distinct tokens → all
// consumed.
func TestTheorem41(t *testing.T) {
	rings := []chain.RingRecord{
		rec(0, 1, 2, 3),
		rec(1, 1, 2, 3),
		rec(2, 1, 2, 3),
	}
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2, 3: 3})
	a := ChainReaction(rings, nil, origin)
	if len(a.Consumed) != 3 {
		t.Fatalf("Theorem 4.1: consumed = %v, want all 3", a.Consumed)
	}
	// And yet no single ring is traced.
	for _, o := range a.Observations {
		if o.Traced {
			t.Fatalf("no individual tracing expected: %+v", o)
		}
	}
}
