// Package adversary implements the attacks the paper defends against, so
// defences can be evaluated empirically:
//
//   - Chain-reaction analysis: exploiting the fact that each token is
//     consumed in exactly one ring signature to eliminate mixins. The exact
//     analysis (ChainReaction) uses bipartite-matching feasibility: token t
//     is eliminated from ring r iff no complete token-RS combination lets r
//     consume t, and t is provably consumed iff banning t everywhere makes
//     the ledger infeasible — the exact closure that the paper's
//     Theorem-4.1 cascade approximates. The cascade itself is also provided
//     (Cascade) as the cheap heuristic real attackers run.
//   - Homogeneity attack: even when the consumed token is ambiguous, if a
//     ring's surviving candidates all come from one historical transaction,
//     the ring's HT is revealed.
//   - Side information: an adversary seeded with revealed token-RS pairs
//     (Definition 3) runs the same analyses with rings pinned.
//
// The package also provides the per-token neighbour-set bookkeeping the
// TokenMagic framework uses for its η liveness guard, and anonymity metrics
// for the experiment harness.
package adversary

import (
	"tokenmagic/internal/chain"
	"tokenmagic/internal/rsgraph"
)

// Observation is the adversary's view of one ring: which of its tokens are
// still plausible consumed tokens after analysis.
type Observation struct {
	Ring      chain.RSID
	Remaining chain.TokenSet // plausible consumed tokens (⊆ original ring)
	Traced    bool           // exactly one plausible token remains
	HTKnown   bool           // all plausible tokens share one HT
	HT        chain.TxID     // the revealed HT when HTKnown
}

// SideInfo is a set of revealed token-RS pairs (SI^# of Definition 3).
type SideInfo map[chain.RSID]chain.TokenID

// Analysis is the result of running chain-reaction analysis on a set of
// rings.
type Analysis struct {
	Observations []Observation
	// Consumed is the set of tokens proven consumed.
	Consumed chain.TokenSet
	// Exact records whether the matching-based exact analysis ran (true)
	// or the greedy cascade (false).
	Exact bool
}

// pin applies side information: rings with a revealed pair collapse to a
// single plausible token. Pairs naming tokens outside the ring are ignored.
func pin(rings []chain.RingRecord, si SideInfo) []rsgraph.Ring {
	out := make([]rsgraph.Ring, len(rings))
	for i, r := range rings {
		toks := r.Tokens
		if tok, ok := si[r.ID]; ok && r.Tokens.Contains(tok) {
			toks = chain.NewTokenSet(tok)
		}
		out[i] = rsgraph.Ring{ID: r.ID, Tokens: toks}
	}
	return out
}

// ChainReaction runs the exact, matching-based chain-reaction analysis:
// polynomial time, strictly stronger than the greedy cascade. If the pinned
// instance is infeasible (inconsistent side information or a degenerate
// ledger), the original token sets are reported untouched — an adversary
// cannot derive sound facts from a contradictory view.
func ChainReaction(rings []chain.RingRecord, si SideInfo, origin func(chain.TokenID) chain.TxID) Analysis {
	in := rsgraph.NewInstance(pin(rings, si))
	out := Analysis{Observations: make([]Observation, len(rings)), Exact: true}

	if !in.HasAssignment() {
		for i, r := range rings {
			out.Observations[i] = observe(r.ID, in.Rings[i].Tokens, origin)
		}
		return out
	}
	feas := in.FeasibleSpent()
	for i, r := range rings {
		out.Observations[i] = observe(r.ID, feas[i], origin)
	}
	out.Consumed = in.ProvablyConsumed()
	return out
}

// Cascade runs the paper-faithful greedy Theorem-4.1 cascade: repeatedly
// find collections of rings whose plausible-token union has the same
// cardinality as the collection, mark that union consumed, and remove those
// tokens from every ring outside the collection. Weaker than ChainReaction
// but linear-ish; used for the heuristic-vs-exact ablation.
func Cascade(rings []chain.RingRecord, si SideInfo, origin func(chain.TokenID) chain.TxID) Analysis {
	pinned := pin(rings, si)
	remaining := make([]chain.TokenSet, len(pinned))
	for i, r := range pinned {
		remaining[i] = r.Tokens.Clone()
	}
	var consumed chain.TokenSet

	for changed := true; changed; {
		changed = false
		for seed := range remaining {
			if len(remaining[seed]) == 0 {
				continue
			}
			members, union := closure(remaining, seed)
			if countMembers(members) != len(union) {
				continue
			}
			// Closed set: union is consumed by exactly these rings.
			if grew := consumed.Union(union); len(grew) != len(consumed) {
				consumed = grew
				changed = true
			}
			for j := range remaining {
				if members[j] || len(remaining[j]) == 0 {
					continue
				}
				filtered := remaining[j].Minus(union)
				if len(filtered) == 0 {
					continue // contradictory view; do not invent facts
				}
				if len(filtered) != len(remaining[j]) {
					remaining[j] = filtered
					changed = true
				}
			}
		}
	}

	out := Analysis{Observations: make([]Observation, len(rings)), Consumed: consumed}
	for i, r := range rings {
		out.Observations[i] = observe(r.ID, remaining[i], origin)
	}
	return out
}

// closure grows a candidate closed set from seed: absorb any ring fully
// contained in the running union; when stuck and still short of closure,
// absorb the overlapping ring adding the fewest new tokens. Returns the
// membership mask and the union.
func closure(remaining []chain.TokenSet, seed int) ([]bool, chain.TokenSet) {
	members := make([]bool, len(remaining))
	members[seed] = true
	union := remaining[seed].Clone()
	count := 1
	for {
		added := false
		for j := range remaining {
			if members[j] || len(remaining[j]) == 0 {
				continue
			}
			if remaining[j].SubsetOf(union) {
				members[j] = true
				count++
				added = true
			}
		}
		if count == len(union) {
			return members, union
		}
		if added {
			continue
		}
		best, bestNew := -1, -1
		for j := range remaining {
			if members[j] || len(remaining[j]) == 0 || remaining[j].Disjoint(union) {
				continue
			}
			if n := len(remaining[j].Minus(union)); best == -1 || n < bestNew {
				best, bestNew = j, n
			}
		}
		if best == -1 {
			return members, union // no closed set reachable from seed
		}
		members[best] = true
		count++
		union = union.Union(remaining[best])
	}
}

func countMembers(members []bool) int {
	n := 0
	for _, m := range members {
		if m {
			n++
		}
	}
	return n
}

func observe(id chain.RSID, remaining chain.TokenSet, origin func(chain.TokenID) chain.TxID) Observation {
	return Observe(id, remaining, origin)
}

// Observe derives one ring's Observation from its surviving plausible-token
// set: traced iff a single token remains, HT revealed iff all survivors
// share one historical transaction. Exported for the graph-analysis attack
// suite (graphattack), which derives survivor sets by other means.
func Observe(id chain.RSID, remaining chain.TokenSet, origin func(chain.TokenID) chain.TxID) Observation {
	obs := Observation{Ring: id, Remaining: remaining}
	obs.Traced = len(remaining) == 1
	if len(remaining) > 0 {
		ht := origin(remaining[0])
		same := true
		for _, tok := range remaining[1:] {
			if origin(tok) != ht {
				same = false
				break
			}
		}
		if same {
			obs.HTKnown, obs.HT = true, ht
		}
	}
	return obs
}

// SideInfoThreshold returns the Theorem-6.2 bound for a ring: an adversary
// whose side information holds fewer than |r| − q_M revealed token-RS pairs
// cannot confirm the historical transaction of the ring's consumed token,
// where q_M is the multiplicity of the ring's most frequent HT. Users can
// raise the threshold, at fixed ring size, by flattening the HT histogram —
// exactly what recursive (c, ℓ)-diversity enforces.
func SideInfoThreshold(ring chain.TokenSet, origin func(chain.TokenID) chain.TxID) int {
	counts := make(map[chain.TxID]int)
	qM := 0
	for _, t := range ring {
		counts[origin(t)]++
		if counts[origin(t)] > qM {
			qM = counts[origin(t)]
		}
	}
	return len(ring) - qM
}

// Metrics summarises an analysis for the experiment harness.
type Metrics struct {
	Rings          int
	Traced         int     // rings with exactly one plausible token
	HTRevealed     int     // rings whose HT is determined (homogeneity)
	AvgAnonymity   float64 // mean plausible-set size
	MinAnonymity   int     // smallest plausible-set size over all rings (0 when no rings)
	ConsumedTokens int
}

// Summarise computes metrics over an analysis.
func Summarise(a Analysis) Metrics {
	m := Metrics{Rings: len(a.Observations), ConsumedTokens: len(a.Consumed)}
	total := 0
	for _, o := range a.Observations {
		if o.Traced {
			m.Traced++
		}
		if o.HTKnown {
			m.HTRevealed++
		}
		total += len(o.Remaining)
		if m.MinAnonymity == 0 || len(o.Remaining) < m.MinAnonymity {
			m.MinAnonymity = len(o.Remaining)
		}
	}
	if m.Rings > 0 {
		m.AvgAnonymity = float64(total) / float64(m.Rings)
	}
	return m
}

// NeighborSets maintains the per-batch ring history and exposes the number
// of provably-consumed tokens μ used by the η liveness guard (Section 4).
// Feed it rings in proposal order.
type NeighborSets struct {
	rings    []chain.RingRecord
	consumed chain.TokenSet
}

// NewNeighborSets returns empty bookkeeping.
func NewNeighborSets() *NeighborSets { return &NeighborSets{} }

// Append records one more ring and refreshes the consumed-token closure.
func (ns *NeighborSets) Append(r chain.RingRecord) {
	ns.rings = append(ns.rings, r)
	ns.consumed = provablyConsumed(ns.rings)
}

// Clone returns a copy that can be Appended to without disturbing the
// receiver: the ring slice is re-capped so the clone's first append
// reallocates instead of scribbling into the shared backing array, and the
// consumed set is replaced wholesale by Append, never mutated. tokenmagic
// uses this to publish copy-on-write guard state per epoch.
func (ns *NeighborSets) Clone() *NeighborSets {
	return &NeighborSets{
		rings:    ns.rings[:len(ns.rings):len(ns.rings)],
		consumed: ns.consumed,
	}
}

// WouldConsume reports how many tokens would be provably consumed if r were
// appended, without mutating state. The η guard calls this before admitting
// a candidate ring.
func (ns *NeighborSets) WouldConsume(r chain.RingRecord) int {
	tmp := append(append([]chain.RingRecord{}, ns.rings...), r)
	return len(provablyConsumed(tmp))
}

func provablyConsumed(rings []chain.RingRecord) chain.TokenSet {
	return rsgraph.FromRecords(rings).ProvablyConsumed()
}

// ConsumedCount returns μ, the number of tokens provably consumed so far.
func (ns *NeighborSets) ConsumedCount() int { return len(ns.consumed) }

// RingCount returns i, the number of rings recorded.
func (ns *NeighborSets) RingCount() int { return len(ns.rings) }

// Consumed returns the provably-consumed token set (shared; do not mutate).
func (ns *NeighborSets) Consumed() chain.TokenSet { return ns.consumed }
