package adversary

import (
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/rsgraph"
)

func TestSideInfoThreshold(t *testing.T) {
	origin := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 1, 3: 2, 4: 3})
	// Ring {1,2,3,4}: q_M = 2 (h1 twice), |r| = 4 → threshold 2.
	if got := SideInfoThreshold(chain.NewTokenSet(1, 2, 3, 4), origin); got != 2 {
		t.Fatalf("threshold = %d, want 2", got)
	}
	// Fully uniform ring: threshold |r| − 1.
	uni := originOf(map[chain.TokenID]chain.TxID{1: 1, 2: 2, 3: 3})
	if got := SideInfoThreshold(chain.NewTokenSet(1, 2, 3), uni); got != 2 {
		t.Fatalf("uniform threshold = %d, want 2", got)
	}
	// Homogeneous ring: threshold 0 — any adversary already knows the HT.
	homo := originOf(map[chain.TokenID]chain.TxID{1: 7, 2: 7})
	if got := SideInfoThreshold(chain.NewTokenSet(1, 2), homo); got != 0 {
		t.Fatalf("homogeneous threshold = %d, want 0", got)
	}
}

// Theorem 6.2, empirically: reveal fewer than |r|−q_M pairs of OTHER rings
// and the target ring's HT must stay ambiguous under exact analysis.
// Construct instances where every other ring shares one token with the
// target (the strongest revelation pattern) and check the bound holds.
func TestTheorem62Empirical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		// Target ring of size 4-6 with ≥2 distinct HTs.
		size := 4 + rng.Intn(3)
		nHT := 2 + rng.Intn(size-1)
		hts := make(map[chain.TokenID]chain.TxID)
		var target chain.TokenSet
		for i := 0; i < size; i++ {
			tok := chain.TokenID(i)
			hts[tok] = chain.TxID(i % nHT)
			target = target.Add(tok)
		}
		origin := originOf(hts)
		threshold := SideInfoThreshold(target, origin)
		if threshold == 0 {
			continue
		}

		// Other rings: ring i pairs target token i with a private token, so
		// revealing <token_i, ring_i> eliminates token i from the target.
		rings := []chain.RingRecord{{ID: 0, Tokens: target, Pos: 0}}
		for i := 0; i < size; i++ {
			priv := chain.TokenID(100 + i)
			hts[priv] = chain.TxID(50 + i)
			rings = append(rings, chain.RingRecord{
				ID:     chain.RSID(i + 1),
				Tokens: chain.NewTokenSet(chain.TokenID(i), priv),
				Pos:    i + 1,
			})
		}

		// Reveal threshold−1 pairs: strictly fewer than the bound.
		si := SideInfo{}
		for i := 0; i < threshold-1; i++ {
			si[chain.RSID(i+1)] = chain.TokenID(i)
		}
		a := ChainReaction(rings, si, origin)
		if a.Observations[0].HTKnown {
			t.Fatalf("trial %d: HT revealed with %d < %d side-info pairs (ring %v)",
				trial, len(si), threshold, target)
		}
	}
}

// Theorem 6.3, empirically: publishing a new ring that is disjoint from an
// existing ring r', or a superset of it, never lets the adversary newly
// confirm r”s consumed token.
func TestTheorem63Empirical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		// Base instance: a few disjoint rings (configuration-compliant).
		var rings []chain.RingRecord
		next := chain.TokenID(0)
		hts := make(map[chain.TokenID]chain.TxID)
		for i := 0; i < 2+rng.Intn(3); i++ {
			var toks []chain.TokenID
			for k := 0; k < 2+rng.Intn(3); k++ {
				hts[next] = chain.TxID(rng.Intn(5))
				toks = append(toks, next)
				next++
			}
			rings = append(rings, chain.RingRecord{ID: chain.RSID(i), Tokens: chain.NewTokenSet(toks...), Pos: i})
		}
		origin := originOf(hts)
		before := ChainReaction(rings, nil, origin)

		// New ring: superset of ring 0 plus fresh tokens, or fully fresh.
		var newTokens chain.TokenSet
		if rng.Intn(2) == 0 {
			newTokens = rings[0].Tokens
		}
		for k := 0; k < 2+rng.Intn(3); k++ {
			hts[next] = chain.TxID(rng.Intn(5))
			newTokens = newTokens.Add(next)
			next++
		}
		after := ChainReaction(append(append([]chain.RingRecord{}, rings...),
			chain.RingRecord{ID: chain.RSID(len(rings)), Tokens: newTokens, Pos: len(rings)}), nil, origin)

		for i := range rings {
			wasTraced := before.Observations[i].Traced
			nowTraced := after.Observations[i].Traced
			if !wasTraced && nowTraced {
				t.Fatalf("trial %d: ring %d newly traced after config-compliant publication", trial, i)
			}
		}
	}
}

// The exact chain-reaction analysis over configuration-compliant ledgers
// (disjoint or nested rings only) matches the greedy cascade — the expensive
// machinery is only needed off the happy path.
func TestCascadeMatchesExactUnderConfiguration(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		var rings []chain.RingRecord
		next := chain.TokenID(0)
		hts := make(map[chain.TokenID]chain.TxID)
		var regions []chain.TokenSet
		for i := 0; i < 1+rng.Intn(3); i++ {
			var toks []chain.TokenID
			for k := 0; k < 2+rng.Intn(3); k++ {
				hts[next] = chain.TxID(rng.Intn(4))
				toks = append(toks, next)
				next++
			}
			regions = append(regions, chain.NewTokenSet(toks...))
		}
		id := 0
		for _, reg := range regions {
			rings = append(rings, chain.RingRecord{ID: chain.RSID(id), Tokens: reg, Pos: id})
			id++
			// Possibly a superset ring of the region.
			if rng.Intn(2) == 0 {
				grown := reg
				hts[next] = chain.TxID(rng.Intn(4))
				grown = grown.Add(next)
				next++
				rings = append(rings, chain.RingRecord{ID: chain.RSID(id), Tokens: grown, Pos: id})
				id++
			}
		}
		origin := originOf(hts)
		if !rsgraph.FromRecords(rings).HasAssignment() {
			continue
		}
		exact := ChainReaction(rings, nil, origin)
		casc := Cascade(rings, nil, origin)
		if !exact.Consumed.Equal(casc.Consumed) {
			t.Fatalf("trial %d: consumed differ: exact %v cascade %v", trial, exact.Consumed, casc.Consumed)
		}
		for i := range rings {
			if !exact.Observations[i].Remaining.Equal(casc.Observations[i].Remaining) {
				t.Fatalf("trial %d ring %d: exact %v cascade %v", trial, i,
					exact.Observations[i].Remaining, casc.Observations[i].Remaining)
			}
		}
	}
}
