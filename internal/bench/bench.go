// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 7) as printable series, and adds
// the ablations DESIGN.md calls out. Each figure function is deterministic
// given Options.Seed and returns the same rows/series the paper plots;
// EXPERIMENTS.md records paper-vs-measured shapes.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/selector"
	"tokenmagic/internal/stats"
	"tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/workload"
)

// Approaches compared throughout Section 7, in the paper's plotting order.
var Approaches = []tokenmagic.Algorithm{
	tokenmagic.Smallest,    // TM_S
	tokenmagic.RandomPick,  // TM_R
	tokenmagic.Progressive, // TM_P
	tokenmagic.Game,        // TM_G
}

// Options tunes a sweep.
type Options struct {
	// Instances is the number of problem instances sampled per point.
	// The paper uses 1000; CI-friendly defaults are smaller.
	Instances int
	// Seed makes runs reproducible.
	Seed int64
	// Headroom applies the second practical configuration, as the deployed
	// framework does. The paper's ℓ axis is the user requirement; headroom
	// solves for ℓ+1 internally.
	Headroom bool
}

// DefaultOptions returns a CI-scale configuration.
func DefaultOptions() Options { return Options{Instances: 50, Seed: 1, Headroom: true} }

// Cell is one measured approach at one sweep point. Means reproduce the
// paper's panels; the P95 tails are a strict extension of the harness (the
// paper reports means only).
type Cell struct {
	AvgSize  float64       // mean ring cardinality over successful instances
	P95Size  float64       // 95th-percentile ring cardinality
	AvgTime  time.Duration // mean solve wall time
	P95Time  time.Duration // 95th-percentile solve wall time
	Failures int           // instances with no eligible ring
}

// Point is one x-value of a sweep with one cell per approach.
type Point struct {
	X     float64
	Cells map[string]Cell // keyed by Algorithm.String()
}

// Series is a full figure: a labelled sweep.
type Series struct {
	Name   string
	XLabel string
	Points []Point
}

// instanceSet is a prepared data set plus everything a solver run needs.
type instanceSet struct {
	universe chain.TokenSet
	rings    []chain.RingRecord
	origin   func(chain.TokenID) chain.TxID
	supers   []selector.Super
	fresh    chain.TokenSet
}

func prepare(d *workload.Dataset) *instanceSet {
	s := &instanceSet{
		universe: d.Universe,
		rings:    d.Rings(),
		origin:   d.Origin(),
	}
	s.supers, s.fresh = selector.Decompose(s.rings, s.universe)
	return s
}

// measurePoint runs all approaches over opts.Instances random targets and
// aggregates sizes/times per approach.
func measurePoint(is *instanceSet, req diversity.Requirement, opts Options) map[string]Cell {
	eff := req
	if opts.Headroom {
		eff = req.WithHeadroom()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	cells := make(map[string]Cell, len(Approaches))
	type agg struct {
		sizes stats.Sample
		times stats.Sample
		fails int
	}
	aggs := make(map[string]*agg, len(Approaches))
	for _, a := range Approaches {
		aggs[a.String()] = &agg{}
	}

	for n := 0; n < opts.Instances; n++ {
		target := is.universe[rng.Intn(len(is.universe))]
		p, err := selector.NewProblem(target, is.supers, is.fresh, is.origin, eff)
		if err != nil {
			continue
		}
		for _, a := range Approaches {
			g := aggs[a.String()]
			start := time.Now()
			var res selector.Result
			var solveErr error
			switch a {
			case tokenmagic.Progressive:
				res, solveErr = selector.Progressive(p)
			case tokenmagic.Game:
				res, solveErr = selector.Game(p)
			case tokenmagic.Smallest:
				res, solveErr = selector.Smallest(p)
			case tokenmagic.RandomPick:
				res, solveErr = selector.Random(p, rng)
			}
			elapsed := time.Since(start)
			if solveErr != nil {
				g.fails++
				continue
			}
			g.sizes.Add(float64(res.Size()))
			g.times.AddDuration(elapsed)
		}
	}
	for name, g := range aggs {
		c := Cell{Failures: g.fails}
		if g.sizes.N() > 0 {
			c.AvgSize = g.sizes.Mean()
			c.P95Size = g.sizes.P95()
			c.AvgTime = time.Duration(g.times.Mean() * float64(time.Second))
			c.P95Time = time.Duration(g.times.P95() * float64(time.Second))
		}
		cells[name] = c
	}
	return cells
}

// RealSettings is Table 2: the real-data parameter grid; defaults in bold in
// the paper are marked by Default.
type Setting struct {
	Name    string
	Values  []float64
	Default float64
}

// Table2 returns the real-data experiment settings (Table 2).
func Table2() []Setting {
	return []Setting{
		{Name: "c_tau", Values: []float64{0.2, 0.4, 0.6, 0.8, 1}, Default: 0.6},
		{Name: "l_tau", Values: []float64{20, 30, 40, 50, 60}, Default: 40},
	}
}

// Table3 returns the synthetic experiment settings (Table 3). Super-size
// ranges are encoded by their lower bound; the span is always 10... except
// the first range [1,10] which spans 9 — SuperSizeRanges has the full pairs.
func Table3() []Setting {
	return []Setting{
		{Name: "super_size_lo", Values: []float64{1, 5, 10, 15, 20}, Default: 10},
		{Name: "num_supers", Values: []float64{10, 30, 50, 70, 90}, Default: 50},
		{Name: "num_fresh", Values: []float64{0, 5, 10, 15, 20}, Default: 10},
		{Name: "sigma", Values: []float64{8, 10, 12, 14, 16}, Default: 12},
	}
}

// SuperSizeRanges are Table 3's [s⁻, s⁺] sweep values.
var SuperSizeRanges = [][2]int{{1, 10}, {5, 15}, {10, 20}, {15, 25}, {20, 30}}

// realReq returns Table 2's default requirement with one field overridden.
func realReq(c float64, l int) diversity.Requirement {
	return diversity.Requirement{C: c, L: l}
}

// syntheticReq is the requirement used for Table-3 sweeps. The paper keeps
// the real-data defaults (c=0.6) but the synthetic universes are an order of
// magnitude smaller (≈ 760 tokens over ≈ 60 HT classes at σ=12), so ℓ is
// scaled to stay satisfiable across the whole grid.
func syntheticReq() diversity.Requirement {
	return diversity.Requirement{C: 0.6, L: 10}
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
