package bench

import (
	"fmt"
	"sort"
	"time"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/rsgraph"
	"tokenmagic/internal/selector"
	"tokenmagic/internal/workload"
)

// Figure3 reproduces the real data set's output-count distribution: how many
// transactions emitted k tokens, as (k, count) pairs sorted by k.
func Figure3(seed int64) ([][2]int, error) {
	d, err := workload.RealMonero(seed)
	if err != nil {
		return nil, err
	}
	h := d.OutputHistogram()
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][2]int, len(keys))
	for i, k := range keys {
		out[i] = [2]int{k, h[k]}
	}
	return out, nil
}

// Figure4Point is the running time of generating the i-th ring with the
// exact TM_B solver on the small-scale set.
type Figure4Point struct {
	I       int
	Elapsed time.Duration
	Size    int
	// Capped reports that the exact search hit its work cap before
	// completing — the paper's "2 hours for the 8th RS" regime.
	Capped bool
}

// Figure4 runs TM_B on the Figure-4 micro data set: 20 tokens, each ring
// requiring recursive (5,3)-diversity, generating rings one after another
// and timing each. maxRings bounds the run (the paper shows 8; exact search
// grows exponentially, so callers choose how far to push).
func Figure4(seed int64, maxRings int) ([]Figure4Point, error) {
	d, err := workload.SmallScale(workload.SmallScaleParams{Tokens: 20, HTs: 8, Seed: seed})
	if err != nil {
		return nil, err
	}
	origin := d.Origin()
	req := diversity.Requirement{C: 5, L: 3}
	consumed := chain.TokenSet{}
	var points []Figure4Point

	for i := 1; i <= maxRings; i++ {
		// Consume the lowest unconsumed token, as a user queue would.
		var target chain.TokenID = chain.NoToken
		for _, t := range d.Universe {
			if !consumed.Contains(t) {
				target = t
				break
			}
		}
		if target == chain.NoToken {
			break
		}
		p := &selector.ExactProblem{
			Target:   target,
			Universe: d.Universe,
			Rings:    d.Ledger.Rings(),
			Origin:   origin,
			Req:      req,
			// Tight caps: the paper reports ~2 hours for the 8th ring; a
			// capped attempt here surfaces as Capped within seconds instead
			// of stalling the whole harness.
			Enum: rsgraph.EnumOptions{MaxSteps: 1 << 21, MaxCombinations: 1 << 17},
		}
		start := time.Now()
		res, err := selector.BFS(p)
		elapsed := time.Since(start)
		pt := Figure4Point{I: i, Elapsed: elapsed}
		if err != nil {
			pt.Capped = true
			points = append(points, pt)
			break
		}
		pt.Size = res.Size()
		points = append(points, pt)
		if _, err := d.Ledger.AppendRS(res.Tokens, req.C, req.L); err != nil {
			return points, err
		}
		consumed = consumed.Add(target)
	}
	return points, nil
}

// Figure5 sweeps c_τ over the real data set (ℓ_τ = 40): Figure 5(a) is
// AvgSize per approach, 5(b) AvgTime.
func Figure5(opts Options) (Series, error) {
	d, err := workload.RealMonero(opts.Seed)
	if err != nil {
		return Series{}, err
	}
	is := prepare(d)
	s := Series{Name: "Figure 5: effect of c_tau (real)", XLabel: "c_tau"}
	for _, c := range Table2()[0].Values {
		cells := measurePoint(is, realReq(c, 40), opts)
		s.Points = append(s.Points, Point{X: c, Cells: cells})
	}
	return s, nil
}

// Figure6 sweeps ℓ_τ over the real data set (c_τ = 0.6).
func Figure6(opts Options) (Series, error) {
	d, err := workload.RealMonero(opts.Seed)
	if err != nil {
		return Series{}, err
	}
	is := prepare(d)
	s := Series{Name: "Figure 6: effect of l_tau (real)", XLabel: "l_tau"}
	for _, l := range Table2()[1].Values {
		cells := measurePoint(is, realReq(0.6, int(l)), opts)
		s.Points = append(s.Points, Point{X: l, Cells: cells})
	}
	return s, nil
}

// Figure7 sweeps the HT-distribution σ over synthetic data (other params at
// Table-3 defaults).
func Figure7(opts Options) (Series, error) {
	s := Series{Name: "Figure 7: effect of sigma (synthetic)", XLabel: "sigma"}
	for _, sigma := range Table3()[3].Values {
		p := workload.DefaultSynthetic()
		p.Sigma = sigma
		p.Seed = opts.Seed
		d, err := workload.Synthetic(p)
		if err != nil {
			return Series{}, err
		}
		cells := measurePoint(prepare(d), syntheticReq(), opts)
		s.Points = append(s.Points, Point{X: sigma, Cells: cells})
	}
	return s, nil
}

// Figure8 sweeps the number of super rings |S| over synthetic data.
func Figure8(opts Options) (Series, error) {
	s := Series{Name: "Figure 8: effect of |S| (synthetic)", XLabel: "|S|"}
	for _, ns := range Table3()[1].Values {
		p := workload.DefaultSynthetic()
		p.NumSupers = int(ns)
		p.Seed = opts.Seed
		d, err := workload.Synthetic(p)
		if err != nil {
			return Series{}, err
		}
		cells := measurePoint(prepare(d), syntheticReq(), opts)
		s.Points = append(s.Points, Point{X: ns, Cells: cells})
	}
	return s, nil
}

// Figure9 sweeps the super-ring size range [s⁻, s⁺] over synthetic data.
// Points are keyed by the range's lower bound.
func Figure9(opts Options) (Series, error) {
	s := Series{Name: "Figure 9: effect of |s_i| (synthetic)", XLabel: "s_lo"}
	for _, r := range SuperSizeRanges {
		p := workload.DefaultSynthetic()
		p.SuperSizeMin, p.SuperSizeMax = r[0], r[1]
		p.Seed = opts.Seed
		d, err := workload.Synthetic(p)
		if err != nil {
			return Series{}, err
		}
		cells := measurePoint(prepare(d), syntheticReq(), opts)
		s.Points = append(s.Points, Point{X: float64(r[0]), Cells: cells})
	}
	return s, nil
}

// Figure10 sweeps the number of fresh tokens |F| over synthetic data.
func Figure10(opts Options) (Series, error) {
	s := Series{Name: "Figure 10: effect of |F| (synthetic)", XLabel: "|F|"}
	for _, nf := range Table3()[2].Values {
		p := workload.DefaultSynthetic()
		p.NumFresh = int(nf)
		p.Seed = opts.Seed
		d, err := workload.Synthetic(p)
		if err != nil {
			return Series{}, err
		}
		cells := measurePoint(prepare(d), syntheticReq(), opts)
		s.Points = append(s.Points, Point{X: nf, Cells: cells})
	}
	return s, nil
}

// AllFigures runs every sweep figure (5–10) with the given options.
func AllFigures(opts Options) ([]Series, error) {
	runs := []func(Options) (Series, error){Figure5, Figure6, Figure7, Figure8, Figure9, Figure10}
	out := make([]Series, 0, len(runs))
	for _, run := range runs {
		s, err := run(opts)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", s.Name, err)
		}
		out = append(out, s)
	}
	return out, nil
}
