package bench

// go test -bench entries for the solver hot-path arms, so the CI bench smoke
// job keeps them compiling and running.

import (
	"testing"

	"tokenmagic/internal/tokenmagic"
)

func BenchmarkSlackEvalReference(b *testing.B)   { BenchSlackReference(b) }
func BenchmarkSlackEvalIncremental(b *testing.B) { BenchSlackIncremental(b) }

func BenchmarkSolveProgressive(b *testing.B) { BenchSolve(b, tokenmagic.Progressive) }
func BenchmarkSolveGame(b *testing.B)        { BenchSolve(b, tokenmagic.Game) }
func BenchmarkSolveSmallest(b *testing.B)    { BenchSolve(b, tokenmagic.Smallest) }

func BenchmarkGenerateRSLambda100(b *testing.B) { BenchGenerateRS(b, 100, nil) }
func BenchmarkGenerateRSLambda800(b *testing.B) { BenchGenerateRS(b, 800, nil) }

// TestSolverBaselineShape guards the committed baseline table: names must
// match the arms SolverBenchmarks emits so before/after stay comparable.
func TestSolverBaselineShape(t *testing.T) {
	want := map[string]bool{
		"slack_eval":               true,
		"solve/TM_P":               true,
		"solve/TM_G":               true,
		"generate/TM_P/lambda=100": true,
		"generate/TM_P/lambda=800": true,
	}
	for _, r := range SolverBaseline {
		if !want[r.Name] {
			t.Fatalf("unexpected baseline arm %q", r.Name)
		}
		if r.NsPerOp <= 0 {
			t.Fatalf("baseline arm %q has no timing", r.Name)
		}
	}
}
