package bench

// `go test -bench` entries for the parallel-executor sweep, mirroring the
// arms ParallelBenchmarks feeds into BENCH_parallel.json.

import (
	"fmt"
	"testing"
)

func BenchmarkGenerateRSParallel(b *testing.B) {
	for _, lambda := range parallelBenchLambdas {
		for _, workers := range parallelBenchWorkers {
			b.Run(fmt.Sprintf("lambda=%d/workers=%d", lambda, workers), func(b *testing.B) {
				BenchGenerateRSParallel(b, lambda, workers)
			})
		}
	}
}

// The benchmark arms must rest on a proven contract: identical rings per
// seed at every worker count on the benchmark workload itself.
func TestParallelBenchEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("RealMonero workload in -short mode")
	}
	if err := checkParallelEquivalence(200); err != nil {
		t.Fatal(err)
	}
}
