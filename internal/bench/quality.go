package bench

import (
	"errors"
	"math/rand"

	"tokenmagic/internal/diversity"
	"tokenmagic/internal/selector"
	"tokenmagic/internal/stats"
	"tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/workload"
)

// QualityPoint is one solver's measured optimality gap distribution over
// small instances where the exact modular optimum is computable.
type QualityPoint struct {
	Approach  string
	Instances int
	// MeanGap and P95Gap are ratios size/OPT (1.0 = optimal).
	MeanGap float64
	P95Gap  float64
	// OptimalRate is the fraction of instances solved exactly.
	OptimalRate float64
}

// Quality measures how close each approximation algorithm gets to the exact
// modular optimum on small synthetic instances (≤ maxModules candidate
// modules so brute force is tractable). This quantifies the practical gap
// behind the loose Theorem 6.5 / 6.7 bounds.
func Quality(instances int, seed int64) ([]QualityPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	type agg struct {
		gaps    stats.Sample
		optimal int
		n       int
	}
	aggs := map[string]*agg{}
	for _, a := range Approaches {
		aggs[a.String()] = &agg{}
	}

	const maxModules = 14
	made := 0
	for attempt := 0; attempt < instances*20 && made < instances; attempt++ {
		p := workload.SyntheticParams{
			NumSupers:    3 + rng.Intn(5),
			SuperSizeMin: 2,
			SuperSizeMax: 5,
			NumFresh:     rng.Intn(6),
			Sigma:        4 + rng.Float64()*8,
			Seed:         seed + int64(attempt),
		}
		d, err := workload.Synthetic(p)
		if err != nil {
			return nil, err
		}
		is := prepare(d)
		target := is.universe[rng.Intn(len(is.universe))]
		req := diversity.Requirement{C: 0.8 + rng.Float64(), L: 2 + rng.Intn(3)}
		prob, err := selector.NewProblem(target, is.supers, is.fresh, is.origin, req)
		if err != nil {
			continue
		}
		if len(prob.Candidates) > maxModules {
			continue
		}
		opt, err := selector.ExactModular(prob, maxModules)
		if errors.Is(err, selector.ErrNoEligible) {
			continue
		}
		if err != nil {
			return nil, err
		}
		made++

		for _, a := range Approaches {
			var res selector.Result
			var solveErr error
			switch a {
			case tokenmagic.Progressive:
				res, solveErr = selector.Progressive(prob)
			case tokenmagic.Game:
				res, solveErr = selector.Game(prob)
			case tokenmagic.Smallest:
				res, solveErr = selector.Smallest(prob)
			case tokenmagic.RandomPick:
				res, solveErr = selector.Random(prob, rng)
			}
			if solveErr != nil {
				continue // heuristic failed on a feasible instance; skip
			}
			g := aggs[a.String()]
			ratio := float64(res.Size()) / float64(opt.Size())
			g.gaps.Add(ratio)
			if res.Size() == opt.Size() {
				g.optimal++
			}
			g.n++
		}
	}

	var out []QualityPoint
	for _, a := range Approaches {
		g := aggs[a.String()]
		qp := QualityPoint{Approach: a.String(), Instances: g.n}
		if g.n > 0 {
			qp.MeanGap = g.gaps.Mean()
			qp.P95Gap = g.gaps.P95()
			qp.OptimalRate = float64(g.optimal) / float64(g.n)
		}
		out = append(out, qp)
	}
	return out, nil
}
