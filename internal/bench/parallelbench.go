package bench

// Parallel-executor benchmarks behind BENCH_parallel.json: end-to-end
// GenerateRS throughput (Algorithm 1 with candidate randomisation, real
// Monero workload) as a sequential-vs-parallel sweep over
// λ ∈ {200, 800} × workers ∈ {1, 2, 4, 8}. Before timing anything the
// harness proves the equivalence contract on the same workload — identical
// rings per seed at every worker count — so a speedup can never come from
// quietly computing something different. cmd/benchfigures -bench-parallel
// writes the JSON artefact; CI regenerates it on every push (multi-core
// runners) and uploads it as a workflow artifact.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs"
	"tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/workload"
)

// ParallelBenchPoint is one (λ, workers) arm of the sweep.
type ParallelBenchPoint struct {
	Lambda           int     `json:"lambda"`
	Workers          int     `json:"workers"`
	NsPerOp          float64 `json:"ns_per_op"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	SpeedupVs1Worker float64 `json:"speedup_vs_1_worker"`
}

// ParallelBenchReport is the BENCH_parallel.json payload. GOMAXPROCS and
// NumCPU record how much hardware parallelism the measuring machine actually
// had: speedups are bounded by min(workers, NumCPU), so a 1-core container
// legitimately reports ≈1× at every worker count.
type ParallelBenchReport struct {
	GeneratedBy        string               `json:"generated_by"`
	GOOS               string               `json:"goos"`
	GOARCH             string               `json:"goarch"`
	GOMAXPROCS         int                  `json:"gomaxprocs"`
	NumCPU             int                  `json:"num_cpu"`
	Note               string               `json:"note"`
	EquivalenceChecked bool                 `json:"equivalence_checked"`
	Points             []ParallelBenchPoint `json:"points"`
}

// parallelBenchLambdas and parallelBenchWorkers define the sweep grid.
var (
	parallelBenchLambdas = []int{200, 800}
	parallelBenchWorkers = []int{1, 2, 4, 8}
)

// parallelBenchFramework builds the benchmark framework: real Monero
// workload, Table-2 default requirement, TM_P with candidate randomisation.
func parallelBenchFramework(lambda, workers int, reg *obs.Registry) (*tokenmagic.Framework, *workload.Dataset, error) {
	d, err := workload.RealMonero(1)
	if err != nil {
		return nil, nil, err
	}
	fw, err := tokenmagic.New(d.Ledger, tokenmagic.Config{
		Lambda:      lambda,
		Headroom:    true,
		Algorithm:   tokenmagic.Progressive,
		Randomize:   true,
		Parallelism: workers,
		Metrics:     reg,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, nil, err
	}
	return fw, d, nil
}

// BenchGenerateRSParallel measures end-to-end GenerateRS with the candidate
// sampling executor bounded at the given worker count.
func BenchGenerateRSParallel(b *testing.B, lambda, workers int) {
	reg := obs.NewRegistry()
	fw, d, err := parallelBenchFramework(lambda, workers, reg)
	if err != nil {
		b.Fatal(err)
	}
	req := diversity.Requirement{C: 0.6, L: 40}
	target := d.Universe[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.GenerateRS(target, req); err != nil {
			b.Fatal(err)
		}
	}
}

// checkParallelEquivalence proves the contract the speedup numbers rest on:
// on the benchmark workload itself, every worker count returns the
// sequential executor's exact ring for the same seed.
func checkParallelEquivalence(lambda int) error {
	req := diversity.Requirement{C: 0.6, L: 40}
	seqFW, d, err := parallelBenchFramework(lambda, 1, obs.NewRegistry())
	if err != nil {
		return err
	}
	target := d.Universe[0]
	for _, workers := range parallelBenchWorkers[1:] {
		parFW, _, err := parallelBenchFramework(lambda, workers, obs.NewRegistry())
		if err != nil {
			return err
		}
		for seed := int64(0); seed < 3; seed++ {
			seqRes, seqErr := seqFW.GenerateRSSeeded(context.Background(), target, req, seed)
			parRes, parErr := parFW.GenerateRSSeeded(context.Background(), target, req, seed)
			if (seqErr == nil) != (parErr == nil) {
				return fmt.Errorf("bench: equivalence broken at λ=%d w=%d seed=%d: %v vs %v",
					lambda, workers, seed, seqErr, parErr)
			}
			if seqErr == nil && !seqRes.Tokens.Equal(parRes.Tokens) {
				return fmt.Errorf("bench: ring divergence at λ=%d w=%d seed=%d", lambda, workers, seed)
			}
		}
	}
	return nil
}

// ParallelBenchmarks runs the equivalence check and the full sweep, and
// returns the BENCH_parallel.json report.
func ParallelBenchmarks() (*ParallelBenchReport, error) {
	rep := &ParallelBenchReport{
		GeneratedBy: "cmd/benchfigures -bench-parallel",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Note: "speedup_vs_1_worker is bounded by min(workers, num_cpu); " +
			"regenerate on a multi-core machine (CI does) for meaningful parallel numbers",
	}
	for _, lambda := range parallelBenchLambdas {
		if err := checkParallelEquivalence(lambda); err != nil {
			return nil, err
		}
	}
	rep.EquivalenceChecked = true
	for _, lambda := range parallelBenchLambdas {
		var base float64
		for _, workers := range parallelBenchWorkers {
			lambda, workers := lambda, workers
			r := testing.Benchmark(func(b *testing.B) { BenchGenerateRSParallel(b, lambda, workers) })
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if workers == 1 {
				base = ns
			}
			pt := ParallelBenchPoint{
				Lambda:    lambda,
				Workers:   workers,
				NsPerOp:   ns,
				OpsPerSec: 1e9 / ns,
			}
			if base > 0 {
				pt.SpeedupVs1Worker = base / ns
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}
