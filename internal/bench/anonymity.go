package bench

import (
	"fmt"
	"math/rand"

	"tokenmagic/internal/adversary/graphattack"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/workload"
)

// AnonymityRow is one (solver, attack) cell of the anonymity-under-attack
// matrix: the metrics of one static attack run over a ledger built by one
// solver.
type AnonymityRow struct {
	Solver        string  `json:"solver"`
	Attack        string  `json:"attack"`
	Rings         int     `json:"rings"`
	Traced        int     `json:"traced"`
	TracedFrac    float64 `json:"traced_frac"`
	HTRevealed    int     `json:"ht_revealed"`
	HTFrac        float64 `json:"ht_frac"`
	MeanAnonymity float64 `json:"mean_anonymity"`
	MinAnonymity  int     `json:"min_anonymity"`
	Consumed      int     `json:"consumed"`
}

// AnonymityReport is the tracked BENCH_anonymity.json artefact: the full
// solver × attack sweep plus the parameters that reproduce it. The CI gate
// (cmd/anonaudit -assert) reads the committed copy as the regression
// baseline and fails the build when any cell's min_anonymity drops below
// it.
type AnonymityReport struct {
	GeneratedBy string         `json:"generated_by"`
	Seed        int64          `json:"seed"`
	Spends      int            `json:"spends"`
	BFSSpends   int            `json:"bfs_spends"`
	Window      int            `json:"window"`
	Rows        []AnonymityRow `json:"rows"`
}

// sweepSolvers lists the audited solvers in run order: the paper's two
// contributions, its two baselines, and the exact search.
var sweepSolvers = []tokenmagic.Algorithm{
	tokenmagic.Progressive,
	tokenmagic.Game,
	tokenmagic.Smallest,
	tokenmagic.RandomPick,
	tokenmagic.BFS,
}

// BuildSolverLedger drives the traceability workload shape (a virgin
// synthetic batch, spending tokens in order) through the framework with the
// given solver and returns the resulting data set plus the number of rings
// committed. Shared by the anonymity sweep and cmd/anonaudit's sim mode so
// the CI gate audits exactly what the tracked artefact measured.
func BuildSolverLedger(algo tokenmagic.Algorithm, spends int, seed int64) (*workload.Dataset, int, error) {
	poolSize := spends + spends/4 + 4
	d, err := workload.Synthetic(workload.SyntheticParams{
		NumSupers:    0, // virgin batch: all tokens fresh
		SuperSizeMin: 1,
		SuperSizeMax: 1,
		NumFresh:     poolSize,
		Sigma:        6,
		Seed:         seed,
	})
	if err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := tokenmagic.Config{
		Lambda:    d.Ledger.NumTokens(),
		Eta:       0.1,
		Headroom:  true,
		Algorithm: algo,
	}
	f, err := tokenmagic.New(d.Ledger, cfg, rng)
	if err != nil {
		return nil, 0, err
	}
	req := diversity.Requirement{C: 1, L: 3}
	committed := 0
	for i := 0; i < spends && i < len(d.Universe); i++ {
		if _, _, err := f.GenerateAndCommit(d.Universe[i], req); err != nil {
			continue
		}
		committed++
	}
	return d, committed, nil
}

// AuditRows runs the full graphattack suite over one ring set and flattens
// each attack's report into a labelled matrix row.
func AuditRows(solver string, rings []chain.RingRecord, origin func(chain.TokenID) chain.TxID, opts graphattack.Options) []AnonymityRow {
	var out []AnonymityRow
	for _, rep := range graphattack.Audit(rings, origin, opts) {
		m := rep.Metrics
		row := AnonymityRow{
			Solver:        solver,
			Attack:        rep.Attack,
			Rings:         m.Rings,
			Traced:        m.Traced,
			HTRevealed:    m.HTRevealed,
			MeanAnonymity: m.AvgAnonymity,
			MinAnonymity:  m.MinAnonymity,
			Consumed:      m.ConsumedTokens,
		}
		if m.Rings > 0 {
			row.TracedFrac = float64(m.Traced) / float64(m.Rings)
			row.HTFrac = float64(m.HTRevealed) / float64(m.Rings)
		}
		out = append(out, row)
	}
	return out
}

// SolverNames returns the sweep's solver labels in run order.
func SolverNames() []string {
	out := make([]string, len(sweepSolvers))
	for i, a := range sweepSolvers {
		out[i] = a.String()
	}
	return out
}

// AnonymitySweep builds one ledger per solver and runs every attack over
// each, producing the solver × attack matrix. The exact TM_B solver runs on
// a smaller instance (bfsSpends) — its search is exponential in ring count —
// so its rows are comparable in kind, not in scale, with the others. window
// configures the temporal adversary's guess-newest prior.
func AnonymitySweep(spends, bfsSpends int, seed int64, window int) (*AnonymityReport, error) {
	return AnonymitySweepSubset(nil, nil, spends, bfsSpends, seed, window)
}

// AnonymitySweepSubset is AnonymitySweep restricted to the named solvers and
// attacks (nil = all). cmd/anonaudit uses it so an operator can gate on a
// slice of the matrix without paying for the rest. Unknown solver names are
// an error — a gate that silently audits nothing would always pass.
func AnonymitySweepSubset(solvers, attacks []string, spends, bfsSpends int, seed int64, window int) (*AnonymityReport, error) {
	want := make(map[string]bool, len(solvers))
	for _, s := range solvers {
		want[s] = true
	}
	rep := &AnonymityReport{
		GeneratedBy: "cmd/benchfigures -bench-anonymity (or cmd/anonaudit -out)",
		Seed:        seed,
		Spends:      spends,
		BFSSpends:   bfsSpends,
		Window:      window,
	}
	opts := graphattack.Options{
		Temporal: graphattack.TemporalOptions{Window: window},
		Attacks:  attacks,
	}
	matched := 0
	for _, algo := range sweepSolvers {
		if len(solvers) > 0 && !want[algo.String()] {
			continue
		}
		matched++
		n := spends
		if algo == tokenmagic.BFS {
			n = bfsSpends
		}
		d, _, err := BuildSolverLedger(algo, n, seed)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, AuditRows(algo.String(), d.Ledger.Rings(), d.Origin(), opts)...)
	}
	if len(solvers) > 0 && matched != len(want) {
		return nil, fmt.Errorf("bench: unknown solver in %v (have %v)", solvers, SolverNames())
	}
	return rep, nil
}
