package bench

import (
	"fmt"
	"io"
	"time"
)

// WriteSeries prints a series as two aligned tables — (a) average ring size
// and (b) average running time — matching the paper's (a)/(b) sub-figure
// layout.
func WriteSeries(w io.Writer, s Series) {
	fmt.Fprintf(w, "%s\n", s.Name)
	fmt.Fprintf(w, "(a) average ring size\n")
	writeHeader(w, s.XLabel)
	for _, p := range s.Points {
		fmt.Fprintf(w, "%10.2f", p.X)
		for _, a := range Approaches {
			c := p.Cells[a.String()]
			if c.AvgSize == 0 && c.Failures > 0 {
				fmt.Fprintf(w, " %11s", "-")
			} else {
				fmt.Fprintf(w, " %11.1f", c.AvgSize)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(b) average running time\n")
	writeHeader(w, s.XLabel)
	for _, p := range s.Points {
		fmt.Fprintf(w, "%10.2f", p.X)
		for _, a := range Approaches {
			c := p.Cells[a.String()]
			fmt.Fprintf(w, " %11s", fmtDuration(c.AvgTime))
		}
		fmt.Fprintln(w)
	}
	failures := 0
	for _, p := range s.Points {
		for _, a := range Approaches {
			failures += p.Cells[a.String()].Failures
		}
	}
	if failures > 0 {
		fmt.Fprintf(w, "(ineligible instances across all points/approaches: %d)\n", failures)
	}
	fmt.Fprintln(w)
}

func writeHeader(w io.Writer, xLabel string) {
	fmt.Fprintf(w, "%10s", xLabel)
	for _, a := range Approaches {
		fmt.Fprintf(w, " %11s", a.String())
	}
	fmt.Fprintln(w)
}

// WriteFigure3 prints the output-count histogram.
func WriteFigure3(w io.Writer, rows [][2]int) {
	fmt.Fprintln(w, "Figure 3: distribution of #output tokens per transaction (real)")
	fmt.Fprintf(w, "%10s %12s\n", "#outputs", "#txs")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %12d\n", r[0], r[1])
	}
	fmt.Fprintln(w)
}

// WriteFigure4 prints per-ring exact-solver timings.
func WriteFigure4(w io.Writer, pts []Figure4Point) {
	fmt.Fprintln(w, "Figure 4: running time of the i-th RS under TM_B (20 tokens, recursive (5,3)-diversity)")
	fmt.Fprintf(w, "%6s %14s %8s %8s\n", "i", "time", "size", "capped")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %14s %8d %8v\n", p.I, fmtDuration(p.Elapsed), p.Size, p.Capped)
	}
	fmt.Fprintln(w)
}

// WriteTables prints Tables 2 and 3 (experiment settings, defaults marked).
func WriteTables(w io.Writer) {
	fmt.Fprintln(w, "Table 2: experimental settings (real)")
	for _, s := range Table2() {
		writeSetting(w, s)
	}
	fmt.Fprintln(w, "Table 3: experimental settings (synthetic)")
	for _, s := range Table3() {
		writeSetting(w, s)
	}
	fmt.Fprintf(w, "  super size ranges: %v (default [10,20])\n\n", SuperSizeRanges)
}

func writeSetting(w io.Writer, s Setting) {
	fmt.Fprintf(w, "  %-14s", s.Name)
	for _, v := range s.Values {
		if v == s.Default {
			fmt.Fprintf(w, " [%g]", v)
		} else {
			fmt.Fprintf(w, " %g", v)
		}
	}
	fmt.Fprintln(w)
}

// Timer measures one operation for ad-hoc harness use.
func Timer(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
