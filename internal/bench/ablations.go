package bench

import (
	"math/rand"
	"time"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/dtrs"
	"tokenmagic/internal/rsgraph"
	"tokenmagic/internal/selector"
	"tokenmagic/internal/tokenmagic"
)

// DTRSAblation compares the cost of the exact Algorithm-3 DTRS diversity
// check against the Theorem-6.1 closed form on the same small instances.
// This is ablation A1: it quantifies why the practical configuration exists.
type DTRSAblation struct {
	Instances  int
	ExactTime  time.Duration // total across instances
	ClosedTime time.Duration
	// Agreements counts instances where both checks give the same verdict.
	// (The closed form assumes the practical configuration, so agreement is
	// expected on configuration-compliant instances.)
	Agreements int
}

// AblationDTRS measures A1 on n small configuration-compliant instances:
// v identical rings over one super ring's token set.
func AblationDTRS(n int, seed int64) (DTRSAblation, error) {
	rng := rand.New(rand.NewSource(seed))
	out := DTRSAblation{Instances: n}
	req := diversity.Requirement{C: 2, L: 2}
	for i := 0; i < n; i++ {
		// A super ring of 4–6 tokens over 2–4 HTs, duplicated v times.
		size := 4 + rng.Intn(3)
		hts := 2 + rng.Intn(3)
		origin := func(t chain.TokenID) chain.TxID { return chain.TxID(int(t) % hts) }
		toks := make([]chain.TokenID, size)
		for k := range toks {
			toks[k] = chain.TokenID(k)
		}
		ringTokens := chain.NewTokenSet(toks...)
		v := 1 + rng.Intn(size)
		rings := make([]rsgraph.Ring, v)
		for k := range rings {
			rings[k] = rsgraph.Ring{ID: chain.RSID(k), Tokens: ringTokens}
		}
		in := rsgraph.NewInstance(rings)

		var exactOK bool
		out.ExactTime += Timer(func() {
			ok, err := dtrs.AllSatisfyExact(in, 0, origin, req, rsgraph.EnumOptions{})
			exactOK = ok && err == nil
		})
		var closedOK bool
		out.ClosedTime += Timer(func() {
			closedOK = dtrs.AllSatisfyClosedForm(ringTokens, v, origin, req)
		})
		if exactOK == closedOK {
			out.Agreements++
		}
	}
	return out, nil
}

// EtaAblation is A2: the η guard versus selfish fee-minimising users. Each
// user first tries the cheapest possible ring — a bare (10,1) requirement
// that a mixin-free singleton satisfies — and, if the system rejects it,
// falls back to a diverse (2,2) ring. Without the guard the chain fills
// with traced singletons; with it, selfish users are forced to buy
// anonymity and the exact adversary ends up tracing nothing.
type EtaAblation struct {
	RingsCommitted   int
	CheapCommitted   int // rings committed under the selfish requirement
	ForcedDiverse    int // rings committed only after the guard pushed back
	Stranded         int // tokens whose spend failed even after fallback
	TracedRings      int // rings the exact chain-reaction analysis traces
	ProvablyConsumed int
	TokensTotal      int
}

// AblationEta drives the selfish-user sequence over a 12-token batch (one
// token per historical transaction) for the given η.
func AblationEta(eta float64, seed int64) (EtaAblation, error) {
	l := chain.NewLedger()
	block := l.BeginBlock()
	const tokens = 12
	for i := 0; i < tokens; i++ {
		if _, err := l.AddTx(block, 1); err != nil {
			return EtaAblation{}, err
		}
	}
	cfg := tokenmagic.Config{
		Lambda:    tokens,
		Eta:       eta,
		Headroom:  false, // selfish users claim the weakest thing they can
		Algorithm: tokenmagic.Smallest,
	}
	rng := rand.New(rand.NewSource(seed))
	f, err := tokenmagic.New(l, cfg, rng)
	if err != nil {
		return EtaAblation{}, err
	}
	out := EtaAblation{TokensTotal: tokens}
	cheap := diversity.Requirement{C: 10, L: 1}   // a singleton passes this
	fallback := diversity.Requirement{C: 2, L: 2} // forces ≥ 2 source txs
	universe := l.TokensInBlocks(block, block)
	for _, target := range universe {
		if _, _, err := f.GenerateAndCommit(target, cheap); err == nil {
			out.RingsCommitted++
			out.CheapCommitted++
			continue
		}
		if _, _, err := f.GenerateAndCommit(target, fallback); err == nil {
			out.RingsCommitted++
			out.ForcedDiverse++
			continue
		}
		out.Stranded++
	}
	a := adversary.ChainReaction(l.Rings(), nil, l.OriginFunc())
	m := adversary.Summarise(a)
	out.TracedRings = m.Traced
	out.ProvablyConsumed = len(rsgraph.FromRecords(l.Rings()).ProvablyConsumed())
	return out, nil
}

// HeadroomAblation is A3: with headroom off, how often do committed rings
// end up with DTRSs violating the user's requirement; with headroom on the
// count must be zero (Theorem 6.4).
type HeadroomAblation struct {
	Committed  int
	Violations int
}

// AblationHeadroom works in the regime the second configuration exists for:
// a universe of fresh singleton tokens (one per historical transaction), so
// the solver's rings are exactly minimal — ℓ+1 singleton classes under
// c = 1 — and the users of one region spend their tokens one after another,
// so subset counts climb and Theorem-6.1 DTRSs become realisable. Without
// headroom a minimal ring's ψ sets drop to ℓ classes and fail the declared
// (c, ℓ); with headroom (solve at ℓ+1) every ψ retains ℓ+1 classes and
// passes (Theorem 6.4).
func AblationHeadroom(headroom bool, n int, seed int64) (HeadroomAblation, error) {
	l := chain.NewLedger()
	block := l.BeginBlock()
	const tokens = 16
	for i := 0; i < tokens; i++ {
		if _, err := l.AddTx(block, 1); err != nil {
			return HeadroomAblation{}, err
		}
	}
	universe := l.TokensInBlocks(block, block)
	origin := l.OriginFunc()
	req := diversity.Requirement{C: 1, L: 4}
	out := HeadroomAblation{}
	// The first spend creates a ring; subsequent users spend the other
	// tokens of that same ring region, producing supersets/twins whose
	// subset count v grows each time.
	var region chain.TokenSet
	for i := 0; i < n; i++ {
		var target chain.TokenID
		if len(region) == 0 {
			target = universe[int(seed)%len(universe)]
		} else {
			target = region[i%len(region)]
		}
		supers, fresh := selector.Decompose(l.Rings(), universe)
		eff := req
		if headroom {
			eff = req.WithHeadroom()
		}
		p, err := selector.NewProblem(target, supers, fresh, origin, eff)
		if err != nil {
			continue
		}
		res, err := selector.Progressive(p)
		if err != nil {
			continue
		}
		if _, err := l.AppendRS(res.Tokens, req.C, req.L); err != nil {
			return out, err
		}
		out.Committed++
		if len(region) == 0 {
			region = res.Tokens
		}
	}
	// Audit every committed ring's realisable DTRSs against the user's
	// declared requirement.
	rings := l.Rings()
	for i := range rings {
		v := 0
		for _, rj := range rings {
			if rj.Tokens.SubsetOf(rings[i].Tokens) {
				v++
			}
		}
		if !dtrs.AllSatisfyClosedForm(rings[i].Tokens, v, origin, req) {
			out.Violations++
		}
	}
	return out, nil
}
