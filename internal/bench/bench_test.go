package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tokenmagic/internal/tokenmagic"
)

func tinyOpts() Options { return Options{Instances: 5, Seed: 1, Headroom: true} }

func TestFigure3(t *testing.T) {
	rows, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	totalTx, totalTok := 0, 0
	mode, modeCount := 0, 0
	for _, r := range rows {
		totalTx += r[1]
		totalTok += r[0] * r[1]
		if r[1] > modeCount {
			mode, modeCount = r[0], r[1]
		}
	}
	if totalTx != 285 || totalTok != 633 {
		t.Fatalf("txs=%d tokens=%d, want 285/633", totalTx, totalTok)
	}
	if mode != 2 {
		t.Fatalf("mode = %d, want 2", mode)
	}
}

func TestFigure4TimesGrow(t *testing.T) {
	pts, err := Figure4(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for i, p := range pts {
		if p.I != i+1 {
			t.Fatalf("point %d has I=%d", i, p.I)
		}
		if !p.Capped && p.Size < 3 {
			t.Fatalf("ring %d size %d below ℓ=3", p.I, p.Size)
		}
	}
}

func TestFigure5ShapeAndOrdering(t *testing.T) {
	s, err := Figure5(Options{Instances: 15, Seed: 1, Headroom: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 5 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Core paper claims, checked on sweep aggregates (the paper itself notes
	// per-point differences on the real data are "not obvious" because the
	// HT distribution is nearly uniform):
	//   (1) ring sizes shrink as c grows,
	//   (2) TM_G ≤ TM_P ≤ TM_R on average.
	sum := func(name string) float64 {
		total := 0.0
		for _, p := range s.Points {
			total += p.Cells[name].AvgSize
		}
		return total
	}
	tmp := sum(tokenmagic.Progressive.String())
	tmg := sum(tokenmagic.Game.String())
	tmr := sum(tokenmagic.RandomPick.String())
	if tmg > tmp+1e-9 {
		t.Errorf("aggregate TM_G %.1f > TM_P %.1f", tmg, tmp)
	}
	if tmp > tmr+1e-9 {
		t.Errorf("aggregate TM_P %.1f > TM_R %.1f", tmp, tmr)
	}
	first := s.Points[0].Cells[tokenmagic.Game.String()].AvgSize
	last := s.Points[len(s.Points)-1].Cells[tokenmagic.Game.String()].AvgSize
	if last >= first {
		t.Errorf("TM_G size should shrink as c grows: c=0.2 → %.1f, c=1 → %.1f", first, last)
	}
}

func TestFigure6SizesGrowWithL(t *testing.T) {
	s, err := Figure6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ring sizes grow (≈linearly) with ℓ for every approach. Verify
	// monotone trend endpoint-to-endpoint for TM_P.
	first := s.Points[0].Cells[tokenmagic.Progressive.String()].AvgSize
	last := s.Points[len(s.Points)-1].Cells[tokenmagic.Progressive.String()].AvgSize
	if first == 0 || last == 0 {
		t.Skip("insufficient successes to compare")
	}
	if last <= first {
		t.Fatalf("TM_P size should grow with ℓ: first=%.1f last=%.1f", first, last)
	}
}

func TestFigure7Through10Run(t *testing.T) {
	for name, run := range map[string]func(Options) (Series, error){
		"Figure7": Figure7, "Figure8": Figure8, "Figure9": Figure9, "Figure10": Figure10,
	} {
		s, err := run(tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Points) != 5 {
			t.Fatalf("%s: %d points", name, len(s.Points))
		}
		for _, p := range s.Points {
			if len(p.Cells) != len(Approaches) {
				t.Fatalf("%s: point %v has %d cells", name, p.X, len(p.Cells))
			}
		}
	}
}

func TestWriteSeriesAndTables(t *testing.T) {
	s, err := Figure5(Options{Instances: 2, Seed: 1, Headroom: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteSeries(&buf, s)
	out := buf.String()
	for _, want := range []string{"Figure 5", "TM_P", "TM_G", "TM_S", "TM_R", "(a)", "(b)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	WriteTables(&buf)
	if !strings.Contains(buf.String(), "Table 2") || !strings.Contains(buf.String(), "Table 3") {
		t.Fatalf("tables output:\n%s", buf.String())
	}
	rows, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteFigure3(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("figure 3 output missing header")
	}
	pts, err := Figure4(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteFigure4(&buf, pts)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("figure 4 output missing header")
	}
}

func TestAblationDTRS(t *testing.T) {
	a, err := AblationDTRS(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Instances != 10 {
		t.Fatalf("instances = %d", a.Instances)
	}
	if a.Agreements != 10 {
		t.Fatalf("closed form disagreed with exact on %d/10 compliant instances", 10-a.Agreements)
	}
	if a.ClosedTime >= a.ExactTime {
		t.Logf("note: closed %v vs exact %v (tiny instances; inversion possible)", a.ClosedTime, a.ExactTime)
	}
}

func TestAblationEta(t *testing.T) {
	withGuard, err := AblationEta(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	without, err := AblationEta(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Without the guard, selfish singleton rings flood the chain and every
	// one of them is traced by the exact adversary.
	if without.CheapCommitted == 0 {
		t.Fatalf("η=0 must admit cheap singleton rings: %+v", without)
	}
	if without.TracedRings == 0 {
		t.Fatalf("η=0 singletons must be traceable: %+v", without)
	}
	// With the guard, cheap rings are pushed back and users are forced into
	// diverse rings; tracing should collapse.
	if withGuard.ForcedDiverse == 0 {
		t.Fatalf("η=0.5 should force diverse fallbacks: %+v", withGuard)
	}
	if withGuard.TracedRings >= without.TracedRings {
		t.Fatalf("guard must reduce traced rings: %+v vs %+v", withGuard, without)
	}
	if withGuard.ProvablyConsumed > without.ProvablyConsumed {
		t.Fatalf("guard increased provable consumption: %+v vs %+v", withGuard, without)
	}
}

func TestAblationHeadroom(t *testing.T) {
	on, err := AblationHeadroom(true, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if on.Violations != 0 {
		t.Fatalf("headroom on must yield zero DTRS violations, got %d/%d", on.Violations, on.Committed)
	}
	off, err := AblationHeadroom(false, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if off.Violations == 0 {
		t.Fatalf("headroom off must expose DTRS violations in the minimal-ring regime: %+v", off)
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second:         "2.00s",
		1500 * time.Microsecond: "1.50ms",
		42 * time.Microsecond:   "42µs",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}
