package bench

// Solver hot-path microbenchmarks behind BENCH_solver.json: slack evaluation
// (legacy clone+sort reference vs the incremental count-of-counts index),
// full DA-MS solves, and end-to-end GenerateRS with Algorithm-1 candidate
// randomisation at λ ∈ {100, 800}. cmd/benchfigures -bench-solver runs them
// via testing.Benchmark and writes the JSON artefact so later PRs can track
// the trajectory; internal/bench's *_test.go exposes the same functions as
// ordinary `go test -bench` entries.

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs"
	"tokenmagic/internal/selector"
	"tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/workload"
)

// BenchResult is one measured benchmark arm.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// LatencyQuantiles summarises one framework.solve.* latency histogram.
type LatencyQuantiles struct {
	Metric  string  `json:"metric"`
	Count   uint64  `json:"count"`
	P50US   float64 `json:"p50_us"`
	P99US   float64 `json:"p99_us"`
	MeanUS  float64 `json:"mean_us"`
	Context string  `json:"context"`
}

// SolverBenchReport is the BENCH_solver.json payload.
type SolverBenchReport struct {
	GeneratedBy    string             `json:"generated_by"`
	GOOS           string             `json:"goos"`
	GOARCH         string             `json:"goarch"`
	BaselineCommit string             `json:"baseline_commit"`
	BaselineNote   string             `json:"baseline_note"`
	Baseline       []BenchResult      `json:"baseline"`
	Current        []BenchResult      `json:"current"`
	SolveLatency   []LatencyQuantiles `json:"solve_latency"`
}

// SolverBaseline are the pre-engine numbers, measured on the commit before
// the incremental diversity-slack engine landed (312d4af, Intel Xeon
// @2.10GHz, go1.22 linux/amd64) with the same workloads and arms as
// SolverBenchmarks. Kept as the fixed "before" column of BENCH_solver.json.
var SolverBaseline = []BenchResult{
	{Name: "slack_eval", NsPerOp: 1986, BytesPerOp: 1152, AllocsPerOp: 8},
	{Name: "solve/TM_P", NsPerOp: 267381, BytesPerOp: 94545, AllocsPerOp: 1499},
	{Name: "solve/TM_G", NsPerOp: 910000, BytesPerOp: 293100, AllocsPerOp: 3111},
	{Name: "generate/TM_P/lambda=100", NsPerOp: 160026285, BytesPerOp: 60863701, AllocsPerOp: 929957},
	{Name: "generate/TM_P/lambda=800", NsPerOp: 160514558, BytesPerOp: 60863685, AllocsPerOp: 929956},
}

// solverBenchEnv is the shared fixture: the real Monero data set decomposed
// once, plus the Table-2 default requirement with headroom.
type solverBenchEnv struct {
	is  *instanceSet
	req diversity.Requirement
	p   *selector.Problem
}

func newSolverBenchEnv() (*solverBenchEnv, error) {
	d, err := workload.RealMonero(1)
	if err != nil {
		return nil, err
	}
	is := prepare(d)
	req := diversity.Requirement{C: 0.6, L: 40}.WithHeadroom()
	p, err := selector.NewProblem(is.universe[0], is.supers, is.fresh, is.origin, req)
	if err != nil {
		return nil, err
	}
	return &solverBenchEnv{is: is, req: req, p: p}, nil
}

// BenchSlackReference measures the pre-engine slack evaluation strategy:
// clone the count map, call Origin per module token, sort the frequency
// slice, fold the tail. Kept as the in-tree reference arm so the speedup
// stays measurable after the legacy path is gone.
func BenchSlackReference(b *testing.B) {
	env, err := newSolverBenchEnv()
	if err != nil {
		b.Fatal(err)
	}
	base := map[chain.TxID]int{}
	total := 0
	for _, t := range env.p.Mandatory.Tokens {
		base[env.is.origin(t)]++
		total++
	}
	mod := env.p.Candidates[0]
	req := env.req
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make(map[chain.TxID]int, len(base))
		for k, v := range base {
			counts[k] = v
		}
		n := total
		for _, t := range mod.Tokens {
			counts[env.is.origin(t)]++
			n++
		}
		qs := make([]int, 0, len(counts))
		for _, c := range counts {
			qs = append(qs, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(qs)))
		tail := 0.0
		for j := req.L - 1; j < len(qs); j++ {
			tail += float64(qs[j])
		}
		sink = float64(qs[0]) - req.C*tail
	}
}

// BenchSlackIncremental measures the same evaluation as a delta probe
// against the incremental count-of-counts index.
func BenchSlackIncremental(b *testing.B) {
	env, err := newSolverBenchEnv()
	if err != nil {
		b.Fatal(err)
	}
	hist := diversity.HistogramOf(env.p.Mandatory.Tokens, env.is.origin)
	mod := env.p.Candidates[0]
	hts := make([]chain.TxID, len(mod.Tokens))
	for i, t := range mod.Tokens {
		hts[i] = env.is.origin(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = hist.SlackIfAdded(env.req, hts)
	}
}

// sink defeats dead-code elimination in the benchmark loops.
var sink float64

// BenchSolve measures one full DA-MS solve on the real data set.
func BenchSolve(b *testing.B, algo tokenmagic.Algorithm) {
	env, err := newSolverBenchEnv()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var solveErr error
		switch algo {
		case tokenmagic.Progressive:
			_, solveErr = selector.Progressive(env.p)
		case tokenmagic.Game:
			_, solveErr = selector.Game(env.p)
		case tokenmagic.Smallest:
			_, solveErr = selector.Smallest(env.p)
		case tokenmagic.RandomPick:
			_, solveErr = selector.Random(env.p, rng)
		}
		if solveErr != nil {
			b.Fatal(solveErr)
		}
	}
}

// BenchGenerateRS measures end-to-end Algorithm 1 with candidate
// randomisation: one solve per batch token, then a uniform pick. reg
// receives the framework's telemetry (pass nil for the process default).
func BenchGenerateRS(b *testing.B, lambda int, reg *obs.Registry) {
	d, err := workload.RealMonero(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := tokenmagic.Config{
		Lambda: lambda, Headroom: true,
		Algorithm: tokenmagic.Progressive, Randomize: true, Metrics: reg,
	}
	fw, err := tokenmagic.New(d.Ledger, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	req := diversity.Requirement{C: 0.6, L: 40}
	target := d.Universe[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.GenerateRS(target, req); err != nil {
			b.Fatal(err)
		}
	}
}

func toResult(name string, r testing.BenchmarkResult) BenchResult {
	return BenchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// SolverBenchmarks runs every arm via testing.Benchmark and returns the
// BENCH_solver.json report, including p50/p99 of the framework.solve.*
// latency histogram populated by the λ=800 GenerateRS run.
func SolverBenchmarks() (*SolverBenchReport, error) {
	if _, err := newSolverBenchEnv(); err != nil {
		return nil, err
	}
	rep := &SolverBenchReport{
		GeneratedBy:    "cmd/benchfigures -bench-solver",
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		BaselineCommit: "312d4af",
		BaselineNote:   "pre-engine numbers measured at the listed commit with identical workloads and arms",
		Baseline:       SolverBaseline,
	}
	rep.Current = append(rep.Current,
		toResult("slack_eval/clone_sort_reference", testing.Benchmark(BenchSlackReference)))
	rep.Current = append(rep.Current,
		toResult("slack_eval/incremental", testing.Benchmark(BenchSlackIncremental)))
	rep.Current = append(rep.Current, toResult("solve/TM_P",
		testing.Benchmark(func(b *testing.B) { BenchSolve(b, tokenmagic.Progressive) })))
	rep.Current = append(rep.Current, toResult("solve/TM_G",
		testing.Benchmark(func(b *testing.B) { BenchSolve(b, tokenmagic.Game) })))

	reg := obs.NewRegistry()
	rep.Current = append(rep.Current, toResult("generate/TM_P/lambda=100",
		testing.Benchmark(func(b *testing.B) { BenchGenerateRS(b, 100, reg) })))
	reg800 := obs.NewRegistry()
	rep.Current = append(rep.Current, toResult("generate/TM_P/lambda=800",
		testing.Benchmark(func(b *testing.B) { BenchGenerateRS(b, 800, reg800) })))

	snap := reg800.Histogram("framework.solve.TM_P.latency_us", obs.LatencyBucketsUS).Snapshot()
	rep.SolveLatency = append(rep.SolveLatency, LatencyQuantiles{
		Metric:  "framework.solve.TM_P.latency_us",
		Count:   snap.Count,
		P50US:   snap.Quantile(0.5),
		P99US:   snap.Quantile(0.99),
		MeanUS:  snap.Mean(),
		Context: "GenerateRS benchmark, RealMonero, λ=800, Randomize, (0.6,40)+headroom",
	})
	return rep, nil
}
