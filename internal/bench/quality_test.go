package bench

import (
	"testing"

	"tokenmagic/internal/tokenmagic"
)

func TestQualityExperiment(t *testing.T) {
	pts, err := Quality(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Approaches) {
		t.Fatalf("points = %d", len(pts))
	}
	byName := map[string]QualityPoint{}
	for _, p := range pts {
		byName[p.Approach] = p
		if p.Instances == 0 {
			t.Fatalf("%s measured no instances", p.Approach)
		}
		// A gap below 1 would mean a heuristic beat the exact optimum.
		if p.MeanGap < 1-1e-9 {
			t.Fatalf("%s mean gap %v < 1", p.Approach, p.MeanGap)
		}
		if p.P95Gap < p.MeanGap-1e-9 && p.Instances > 3 {
			t.Fatalf("%s P95 %v below mean %v", p.Approach, p.P95Gap, p.MeanGap)
		}
	}
	// The paper's algorithms should be nearer the optimum than random picks
	// on average.
	tmg := byName[tokenmagic.Game.String()]
	tmr := byName[tokenmagic.RandomPick.String()]
	if tmg.MeanGap > tmr.MeanGap+0.25 {
		t.Fatalf("TM_G mean gap %v much worse than TM_R %v", tmg.MeanGap, tmr.MeanGap)
	}
}
