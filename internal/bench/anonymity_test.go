package bench

import (
	"reflect"
	"testing"

	"tokenmagic/internal/adversary/graphattack"
)

// TestAnonymitySweepShape runs a miniature sweep and checks the matrix is
// complete, deterministic, and never reports an attack beating DM's
// anonymity from below the wrong side (forced/temporal may shrink sets, so
// their min can only be ≤ DM's).
func TestAnonymitySweepShape(t *testing.T) {
	rep, err := AnonymitySweep(10, 4, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	attacks := graphattack.AttackNames()
	if len(rep.Rows) != len(sweepSolvers)*len(attacks) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(sweepSolvers)*len(attacks))
	}
	byKey := map[[2]string]AnonymityRow{}
	for _, r := range rep.Rows {
		byKey[[2]string{r.Solver, r.Attack}] = r
	}
	for _, algo := range sweepSolvers {
		dm := byKey[[2]string{algo.String(), "dm"}]
		if dm.Rings == 0 {
			t.Fatalf("%s committed no rings", algo)
		}
		for _, atk := range []string{"forced_closure", "temporal"} {
			if row := byKey[[2]string{algo.String(), atk}]; row.MinAnonymity > dm.MinAnonymity {
				t.Fatalf("%s/%s min %d > dm min %d", algo, atk, row.MinAnonymity, dm.MinAnonymity)
			}
		}
	}

	again, err := AnonymitySweep(10, 4, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Fatal("AnonymitySweep is not deterministic")
	}
}
