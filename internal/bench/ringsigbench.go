package bench

// Ring-signature verification benchmarks behind BENCH_ringsig.json: the
// scalar-mult kernel layer (internal/ringsig) measured against the stock
// pre-kernel implementation it replaced, as sign/verify ns/op over ring
// size × batch size × workers. Before timing anything the harness proves
// the equivalence contract on the benchmark workload itself — byte-identical
// signatures from the same nonce stream and identical accept/reject
// decisions across valid and tampered batches — so a speedup can never come
// from quietly computing something different.
//
// The batch arms are labeled by what they amortise:
//
//   - stock_per_sig:       pre-kernel Verify in a loop (the baseline)
//   - kernel_batch:        VerifyBatch, per-batch Hp memo, no transcript cache
//   - kernel_batch_warm_hp: VerifyBatch against a registry-precomputed Hp
//     cache (a node knows its key universe ahead of time)
//   - cached_block_validation: VerifyBatch with the transcript cache warmed
//     by admission-time verification — the paper's Step-4 workload, where a
//     miner re-validates at block time what it already verified at submit
//     time. This is the headline arm at ring 16 × batch 64.
//
// Worker speedups are bounded by min(workers, num_cpu); a 1-core container
// legitimately reports ≈1× at every worker count (CI regenerates the
// artefact on multi-core runners, same as BENCH_parallel.json).

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"runtime"
	"testing"

	"tokenmagic/internal/ringsig"
)

// RingsigBenchPoint is one measured arm.
type RingsigBenchPoint struct {
	Arm            string  `json:"arm"`
	Ring           int     `json:"ring"`
	Batch          int     `json:"batch,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	NsPerOp        float64 `json:"ns_per_op"`
	SigsPerSec     float64 `json:"sigs_per_sec"`
	SpeedupVsStock float64 `json:"speedup_vs_stock,omitempty"`
}

// RingsigBenchReport is the BENCH_ringsig.json payload.
type RingsigBenchReport struct {
	GeneratedBy        string              `json:"generated_by"`
	GOOS               string              `json:"goos"`
	GOARCH             string              `json:"goarch"`
	GOMAXPROCS         int                 `json:"gomaxprocs"`
	NumCPU             int                 `json:"num_cpu"`
	Note               string              `json:"note"`
	EquivalenceChecked bool                `json:"equivalence_checked"`
	Single             []RingsigBenchPoint `json:"single"`
	BatchArms          []RingsigBenchPoint `json:"batch"`
}

// Sweep grids. The headline acceptance point is ring 16 × batch 64.
var (
	ringsigBenchRings   = []int{8, 16}
	ringsigBenchBatches = []int{16, 64}
	ringsigBenchWorkers = []int{1, 2, 4}
)

// benchRand is a deterministic byte stream (sha256 counter mode) so the
// equivalence check can feed the stock and kernel signers identical nonces.
type benchRand struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

func newBenchRand(seed string) *benchRand {
	return &benchRand{seed: sha256.Sum256([]byte(seed))}
}

func (r *benchRand) Read(p []byte) (int, error) {
	for len(r.buf) < len(p) {
		var block [40]byte
		copy(block[:32], r.seed[:])
		binary.LittleEndian.PutUint64(block[32:], r.ctr)
		r.ctr++
		sum := sha256.Sum256(block[:])
		r.buf = append(r.buf, sum[:]...)
	}
	copy(p, r.buf[:len(p)])
	r.buf = r.buf[len(p):]
	return len(p), nil
}

// ringsigWorkload is a batch of signed rings drawn from a shared key pool —
// rings overlap, so the Hp memo has repeats to amortise, as mixin rings over
// one ledger do.
type ringsigWorkload struct {
	pool []*ringsig.PrivateKey
	pubs []ringsig.Point
	reqs []ringsig.VerifyRequest
}

func buildRingsigWorkload(ringSize, batch int, seed string) (*ringsigWorkload, error) {
	rng := newBenchRand(seed)
	poolSize := 4 * ringSize
	w := &ringsigWorkload{}
	for i := 0; i < poolSize; i++ {
		k, err := ringsig.GenerateKey(rng)
		if err != nil {
			return nil, err
		}
		w.pool = append(w.pool, k)
		w.pubs = append(w.pubs, k.Public)
	}
	for b := 0; b < batch; b++ {
		// Rotate through the pool so consecutive rings share most members.
		ring := make([]ringsig.Point, ringSize)
		signerIdx := b % ringSize
		var signer *ringsig.PrivateKey
		for i := 0; i < ringSize; i++ {
			k := w.pool[(b+i)%poolSize]
			ring[i] = k.Public
			if i == signerIdx {
				signer = k
			}
		}
		msg := []byte(fmt.Sprintf("bench ring %d of %s", b, seed))
		sig, err := ringsig.Sign(rng, signer, ring, signerIdx, msg)
		if err != nil {
			return nil, err
		}
		w.reqs = append(w.reqs, ringsig.VerifyRequest{Sig: sig, Ring: ring, Msg: msg})
	}
	return w, nil
}

// checkRingsigEquivalence proves, on the benchmark workload, the contract
// the speedups rest on: identical signature bytes from identical nonce
// streams, and identical accept/reject decisions — including on tampered
// inputs — between the kernel engine and the stock implementation.
func checkRingsigEquivalence() error {
	w, err := buildRingsigWorkload(8, 4, "equivalence")
	if err != nil {
		return err
	}
	// Byte-identical signing from the same nonce stream.
	sk := w.pool[0]
	ring := w.reqs[0].Ring
	msg := []byte("equivalence message")
	signerIdx := -1
	for i, p := range ring {
		if p.Equal(sk.Public) {
			signerIdx = i
		}
	}
	if signerIdx < 0 {
		return fmt.Errorf("bench: signer not in ring")
	}
	kSig, err := ringsig.Sign(newBenchRand("nonce"), sk, ring, signerIdx, msg)
	if err != nil {
		return err
	}
	sSig, err := ringsig.StockSign(newBenchRand("nonce"), sk, ring, signerIdx, msg)
	if err != nil {
		return err
	}
	if kSig.C0.Cmp(sSig.C0) != 0 || !kSig.Image.Equal(sSig.Image) {
		return fmt.Errorf("bench: kernel and stock signatures diverge")
	}
	for i := range kSig.S {
		if kSig.S[i].Cmp(sSig.S[i]) != 0 {
			return fmt.Errorf("bench: kernel and stock s[%d] diverge", i)
		}
	}
	// Identical decisions on valid and tampered batches.
	var eng ringsig.Engine
	for i, req := range w.reqs {
		if (eng.Verify(req.Sig, req.Ring, req.Msg) == nil) !=
			(ringsig.StockVerify(req.Sig, req.Ring, req.Msg) == nil) {
			return fmt.Errorf("bench: decision divergence on valid sig %d", i)
		}
		bad := *req.Sig
		bad.C0 = new(big.Int).Add(req.Sig.C0, big.NewInt(1))
		if (eng.Verify(&bad, req.Ring, req.Msg) == nil) !=
			(ringsig.StockVerify(&bad, req.Ring, req.Msg) == nil) {
			return fmt.Errorf("bench: decision divergence on tampered sig %d", i)
		}
	}
	return nil
}

// measureBatch times fn (which must process the whole batch) and converts
// to per-batch and per-signature rates.
func measureBatch(batch int, fn func(b *testing.B)) (nsPerOp, sigsPerSec float64) {
	r := testing.Benchmark(fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return ns, float64(batch) / (ns / 1e9)
}

// RingsigBenchmarks runs the equivalence check and the full sweep, and
// returns the BENCH_ringsig.json report.
func RingsigBenchmarks() (*RingsigBenchReport, error) {
	rep := &RingsigBenchReport{
		GeneratedBy: "cmd/benchfigures -bench-ringsig",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Note: "speedup_vs_stock compares against the pre-kernel implementation " +
			"(stock_verify / stock_per_sig) at the same ring and batch size; " +
			"worker scaling is bounded by min(workers, num_cpu); " +
			"cached_block_validation is admission-warmed block re-validation " +
			"(the Step-4 workload), not a cold verify",
	}
	if err := checkRingsigEquivalence(); err != nil {
		return nil, err
	}
	rep.EquivalenceChecked = true

	// Single-signature arms over ring size.
	for _, ringSize := range ringsigBenchRings {
		w, err := buildRingsigWorkload(ringSize, 1, fmt.Sprintf("single-%d", ringSize))
		if err != nil {
			return nil, err
		}
		req := w.reqs[0]
		sk, ring := w.pool[0], req.Ring

		signerIdx := -1
		for i, p := range ring {
			if p.Equal(sk.Public) {
				signerIdx = i
			}
		}
		arms := []struct {
			name string
			fn   func(b *testing.B)
		}{
			{"stock_sign", func(b *testing.B) {
				rng := newBenchRand("sign")
				for i := 0; i < b.N; i++ {
					if _, err := ringsig.StockSign(rng, sk, ring, signerIdx, req.Msg); err != nil {
						b.Fatal(err)
					}
				}
			}},
			{"kernel_sign", func(b *testing.B) {
				rng := newBenchRand("sign")
				for i := 0; i < b.N; i++ {
					if _, err := ringsig.Sign(rng, sk, ring, signerIdx, req.Msg); err != nil {
						b.Fatal(err)
					}
				}
			}},
			{"stock_verify", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := ringsig.StockVerify(req.Sig, req.Ring, req.Msg); err != nil {
						b.Fatal(err)
					}
				}
			}},
			{"kernel_verify", func(b *testing.B) {
				var eng ringsig.Engine
				for i := 0; i < b.N; i++ {
					if err := eng.Verify(req.Sig, req.Ring, req.Msg); err != nil {
						b.Fatal(err)
					}
				}
			}},
			{"kernel_verify_warm_hp", func(b *testing.B) {
				eng := ringsig.Engine{Hp: ringsig.NewHpCache()}
				eng.Hp.Precompute(w.pubs)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.Verify(req.Sig, req.Ring, req.Msg); err != nil {
						b.Fatal(err)
					}
				}
			}},
		}
		var stockSignNs, stockVerifyNs float64
		for _, arm := range arms {
			ns, sps := measureBatch(1, arm.fn)
			pt := RingsigBenchPoint{Arm: arm.name, Ring: ringSize, NsPerOp: ns, SigsPerSec: sps}
			switch arm.name {
			case "stock_sign":
				stockSignNs = ns
			case "kernel_sign":
				pt.SpeedupVsStock = stockSignNs / ns
			case "stock_verify":
				stockVerifyNs = ns
			default:
				pt.SpeedupVsStock = stockVerifyNs / ns
			}
			rep.Single = append(rep.Single, pt)
		}
	}

	// Batch arms over batch size × workers at each ring size.
	for _, ringSize := range ringsigBenchRings {
		for _, batch := range ringsigBenchBatches {
			w, err := buildRingsigWorkload(ringSize, batch, fmt.Sprintf("batch-%d-%d", ringSize, batch))
			if err != nil {
				return nil, err
			}
			stockNs, stockSps := measureBatch(batch, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, req := range w.reqs {
						if err := ringsig.StockVerify(req.Sig, req.Ring, req.Msg); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			rep.BatchArms = append(rep.BatchArms, RingsigBenchPoint{
				Arm: "stock_per_sig", Ring: ringSize, Batch: batch, Workers: 1,
				NsPerOp: stockNs, SigsPerSec: stockSps,
			})
			for _, workers := range ringsigBenchWorkers {
				ns, sps := measureBatch(batch, func(b *testing.B) {
					eng := ringsig.Engine{Workers: workers}
					for i := 0; i < b.N; i++ {
						res := eng.VerifyBatch(context.Background(), w.reqs)
						if !res.OK() {
							b.Fatal("batch rejected")
						}
					}
				})
				rep.BatchArms = append(rep.BatchArms, RingsigBenchPoint{
					Arm: "kernel_batch", Ring: ringSize, Batch: batch, Workers: workers,
					NsPerOp: ns, SigsPerSec: sps, SpeedupVsStock: stockNs / ns,
				})
			}
			// Registry-precomputed Hp: the node built its cache from the key
			// universe at startup, so hashToPoint never runs during verify.
			ns, sps := measureBatch(batch, func(b *testing.B) {
				eng := ringsig.Engine{Hp: ringsig.NewHpCache(), Workers: 1}
				eng.Hp.Precompute(w.pubs)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := eng.VerifyBatch(context.Background(), w.reqs)
					if !res.OK() {
						b.Fatal("batch rejected")
					}
				}
			})
			rep.BatchArms = append(rep.BatchArms, RingsigBenchPoint{
				Arm: "kernel_batch_warm_hp", Ring: ringSize, Batch: batch, Workers: 1,
				NsPerOp: ns, SigsPerSec: sps, SpeedupVsStock: stockNs / ns,
			})
			// Block validation: every signature was verified at admission, so
			// the transcript cache settles the re-verify with one hash each.
			ns, sps = measureBatch(batch, func(b *testing.B) {
				eng := ringsig.Engine{
					Hp:      ringsig.NewHpCache(),
					Seen:    ringsig.NewSigCache(4 * batch),
					Workers: 1,
				}
				eng.Hp.Precompute(w.pubs)
				if res := eng.VerifyBatch(context.Background(), w.reqs); !res.OK() {
					b.Fatal("warmup batch rejected")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := eng.VerifyBatch(context.Background(), w.reqs)
					if !res.OK() {
						b.Fatal("batch rejected")
					}
				}
			})
			rep.BatchArms = append(rep.BatchArms, RingsigBenchPoint{
				Arm: "cached_block_validation", Ring: ringSize, Batch: batch, Workers: 1,
				NsPerOp: ns, SigsPerSec: sps, SpeedupVsStock: stockNs / ns,
			})
		}
	}
	return rep, nil
}
