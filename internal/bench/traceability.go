package bench

import (
	"fmt"
	"math/rand"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/selector"
	"tokenmagic/internal/tokenmagic"
	"tokenmagic/internal/workload"
)

// TraceabilityPoint is one measured strategy in the traceability
// experiment. The exact (matching-based) adversary provides the headline
// numbers; the greedy Theorem-4.1 cascade runs alongside it as a soundness
// check — the cascade may trace fewer rings but never more.
type TraceabilityPoint struct {
	Strategy         string
	RingsCommitted   int
	Traced           int
	HTRevealed       int
	AvgAnonymity     float64
	MinAnonymity     int
	ProvablyConsumed int
	// CascadeTraced and CascadeConsumed are the greedy cascade's weaker
	// counterparts of Traced and ProvablyConsumed (⊆ the exact closure).
	CascadeTraced   int
	CascadeConsumed int
}

// Traceability is the motivation experiment behind the whole paper: drive
// the same consumption workload (a sequence of spends over one batch) with
// (a) the Monero-style SM sampler with ring size ζ, and (b) TokenMagic with
// TM_P, then run the exact chain-reaction adversary over each resulting
// ledger. The SM sampler's small overlapping rings become traceable as
// consumption progresses; TokenMagic's configuration-compliant rings do
// not.
func Traceability(spends, zeta int, seed int64) ([]TraceabilityPoint, error) {
	var out []TraceabilityPoint

	// Shared workload shape: a fresh synthetic batch per strategy (same
	// seed → identical tokens and HTs), spending the first `spends` tokens.
	// The pool is sized so the spend sequence consumes most of it — the
	// regime in which real Monero outputs became traceable (Möser et al.):
	// as the unspent fraction shrinks, small random rings increasingly
	// contain only already-spent decoys.
	poolSize := spends + spends/4 + zeta
	makeDataset := func() (*workload.Dataset, error) {
		p := workload.SyntheticParams{
			NumSupers:    0, // virgin batch: all tokens fresh
			SuperSizeMin: 1,
			SuperSizeMax: 1,
			NumFresh:     poolSize,
			Sigma:        6,
			Seed:         seed,
		}
		return workload.Synthetic(p)
	}

	// Strategy (a): Monero-style SM, with the historical wart that made the
	// chain-reaction attack devastating in practice (Möser et al.): a
	// fraction of users minimise fees with zero-mixin (ring size 1)
	// spends, and those exposed tokens poison every ring that later picks
	// them as decoys.
	{
		d, err := makeDataset()
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		half := len(d.Universe) / 2
		params := selector.MoneroParams{
			Zeta:   zeta,
			Recent: d.Universe[half:].Clone(),
			Older:  d.Universe[:half].Clone(),
		}
		committed := 0
		for i := 0; i < spends && i < len(d.Universe); i++ {
			target := d.Universe[i]
			var ring chain.TokenSet
			if i%5 < 2 { // 40% fee minimisers: zero mixins
				ring = chain.NewTokenSet(target)
			} else {
				res, err := selector.MoneroSample(target, params, rng)
				if err != nil {
					continue
				}
				ring = res.Tokens
			}
			if _, err := d.Ledger.AppendRS(ring, 1, 1); err != nil {
				return nil, err
			}
			committed++
		}
		pt, err := summarisePoint("Monero_SM", committed, d)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}

	// Strategy (b): TokenMagic TM_P.
	{
		d, err := makeDataset()
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		cfg := tokenmagic.Config{
			Lambda:    d.Ledger.NumTokens(),
			Eta:       0.1,
			Headroom:  true,
			Algorithm: tokenmagic.Progressive,
		}
		f, err := tokenmagic.New(d.Ledger, cfg, rng)
		if err != nil {
			return nil, err
		}
		req := diversity.Requirement{C: 1, L: 3}
		committed := 0
		for i := 0; i < spends && i < len(d.Universe); i++ {
			if _, _, err := f.GenerateAndCommit(d.Universe[i], req); err != nil {
				continue
			}
			committed++
		}
		pt, err := summarisePoint("TokenMagic_TM_P", committed, d)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// summarisePoint runs BOTH adversaries over the committed ledger: the exact
// matching-based closure for the headline numbers, and the greedy
// Theorem-4.1 cascade as a differential check. These instances are small
// enough for the exact analysis, so a cascade that eliminates a token the
// exact analysis keeps — or proves consumption the exact closure does not —
// is a soundness bug, reported as an error rather than folded into the
// figures.
func summarisePoint(name string, committed int, d *workload.Dataset) (TraceabilityPoint, error) {
	rings := d.Ledger.Rings()
	exact := adversary.ChainReaction(rings, nil, d.Origin())
	cascade := adversary.Cascade(rings, nil, d.Origin())
	for i := range rings {
		if !exact.Observations[i].Remaining.SubsetOf(cascade.Observations[i].Remaining) {
			return TraceabilityPoint{}, fmt.Errorf(
				"bench: cascade unsound on %s ring %d: eliminated %v beyond exact %v",
				name, i, cascade.Observations[i].Remaining, exact.Observations[i].Remaining)
		}
	}
	if !cascade.Consumed.SubsetOf(exact.Consumed) {
		return TraceabilityPoint{}, fmt.Errorf(
			"bench: cascade unsound on %s: consumed %v ⊄ exact %v",
			name, cascade.Consumed, exact.Consumed)
	}
	m := adversary.Summarise(exact)
	cm := adversary.Summarise(cascade)
	return TraceabilityPoint{
		Strategy:         name,
		RingsCommitted:   committed,
		Traced:           m.Traced,
		HTRevealed:       m.HTRevealed,
		AvgAnonymity:     m.AvgAnonymity,
		MinAnonymity:     m.MinAnonymity,
		ProvablyConsumed: m.ConsumedTokens,
		CascadeTraced:    cm.Traced,
		CascadeConsumed:  cm.ConsumedTokens,
	}, nil
}

// SideInfoResilience measures Theorem 6.2 empirically over committed rings:
// for each ring, the number of revealed pairs an adversary needs before the
// exact analysis pins the ring's HT, compared with the theorem's bound
// |r| − q_M. Rings the adversary never pins (even after revealing a pair of
// every other ring) are counted in measured but do not lower minObserved —
// they are maximally resilient. minObserved is −1 when no ring was ever
// pinned.
func SideInfoResilience(rings []chain.RingRecord, origin func(chain.TokenID) chain.TxID) (minObserved, minBound, measured int) {
	minObserved, minBound = -1, -1
	for _, r := range rings {
		bound := adversary.SideInfoThreshold(r.Tokens, origin)
		if minBound == -1 || bound < minBound {
			minBound = bound
		}
		measured++
		// Observed: reveal other rings' pairs one at a time (greedy, in id
		// order) until the target ring's HT becomes known.
		si := adversary.SideInfo{}
		observed := 0
		pinned := false
		for {
			a := adversary.ChainReaction(rings, si, origin)
			for _, o := range a.Observations {
				if o.Ring == r.ID && o.HTKnown {
					pinned = true
					break
				}
			}
			if pinned {
				break
			}
			// Reveal one more pair, if any ring remains unrevealed.
			revealed := false
			for _, other := range rings {
				if other.ID == r.ID {
					continue
				}
				if _, done := si[other.ID]; done {
					continue
				}
				si[other.ID] = other.Tokens[0]
				observed++
				revealed = true
				break
			}
			if !revealed {
				break // adversary exhausted: ring is resilient
			}
		}
		if pinned && (minObserved == -1 || observed < minObserved) {
			minObserved = observed
		}
	}
	return minObserved, minBound, measured
}
