package bench

import (
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/workload"
)

func TestTraceabilityExperiment(t *testing.T) {
	pts, err := Traceability(25, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	var monero, tm TraceabilityPoint
	for _, p := range pts {
		switch p.Strategy {
		case "Monero_SM":
			monero = p
		case "TokenMagic_TM_P":
			tm = p
		default:
			t.Fatalf("unexpected strategy %q", p.Strategy)
		}
	}
	if monero.RingsCommitted == 0 || tm.RingsCommitted == 0 {
		t.Fatalf("both strategies must commit rings: %+v / %+v", monero, tm)
	}
	// The paper's motivation: TokenMagic rings stay untraceable while the
	// SM-era ledger (with its fee-minimising zero-mixin fraction) leaks
	// heavily under exact analysis.
	if tm.Traced != 0 {
		t.Fatalf("TokenMagic rings traced: %+v", tm)
	}
	if monero.Traced == 0 {
		t.Fatalf("SM-era ledger must show traced rings: %+v", monero)
	}
	if tm.AvgAnonymity <= monero.AvgAnonymity {
		t.Fatalf("TokenMagic anonymity %v must beat SM %v", tm.AvgAnonymity, monero.AvgAnonymity)
	}
}

func TestSideInfoResilience(t *testing.T) {
	// Three disjoint, diverse rings: thresholds should be positive and the
	// observed count should not be below the theorem bound.
	l := chain.NewLedger()
	b := l.BeginBlock()
	for i := 0; i < 9; i++ {
		if _, err := l.AddTx(b, 1); err != nil {
			t.Fatal(err)
		}
	}
	rings := []chain.RingRecord{
		{ID: 0, Tokens: chain.NewTokenSet(0, 1, 2), Pos: 0},
		{ID: 1, Tokens: chain.NewTokenSet(3, 4, 5), Pos: 1},
		{ID: 2, Tokens: chain.NewTokenSet(6, 7, 8), Pos: 2},
	}
	origin := l.OriginFunc()
	observed, bound, measured := SideInfoResilience(rings, origin)
	if measured != 3 {
		t.Fatalf("measured = %d", measured)
	}
	if bound != 2 {
		t.Fatalf("theorem bound = %d, want |r|−q_M = 3−1 = 2", bound)
	}
	// Disjoint uniform rings are never pinned by foreign pairs.
	if observed != -1 {
		t.Fatalf("disjoint rings must be resilient, pinned after %d", observed)
	}
}

func TestSideInfoResilienceOnGeneratedLedger(t *testing.T) {
	d, err := workload.RealMonero(6)
	if err != nil {
		t.Fatal(err)
	}
	rings := d.Rings()[:5]
	observed, bound, measured := SideInfoResilience(rings, d.Origin())
	if measured != 5 {
		t.Fatalf("measured = %d", measured)
	}
	if observed != -1 && observed < bound {
		t.Fatalf("Theorem 6.2 violated empirically: observed %d < bound %d", observed, bound)
	}
	if bound < 1 {
		t.Fatalf("real-data rings should have positive thresholds, bound = %d", bound)
	}
}
