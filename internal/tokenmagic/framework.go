// Package tokenmagic implements the paper's TokenMagic framework
// (Section 4, Algorithm 1): the layer that turns the raw DA-MS solvers into
// a deployable mixin-selection pipeline.
//
//   - Batching: the chain is partitioned into disjoint, sequential batches
//     of ≈λ tokens; a token's mixin universe is its own batch, which bounds
//     every related RS set by the batch size.
//   - Candidate randomisation: to stop adversaries inverting the selection
//     algorithm, Algorithm 1 generates a candidate ring for every token in
//     the batch and returns a uniformly random one among those containing
//     the consuming token.
//   - Liveness (η guard): a new ring is admitted only if, with i+1 rings
//     over the batch, the number of provably-consumed tokens μ stays within
//     i+1 − η·(|T| − i − 1), so later users can still find eligible rings.
//   - Step-3 verification: miners re-check the practical configurations
//     (superset-or-disjoint, headroom diversity, closed-form DTRS
//     diversity) before accepting a ring.
package tokenmagic

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/dtrs"
	"tokenmagic/internal/obs"
	"tokenmagic/internal/obs/trace"
	"tokenmagic/internal/selector"
)

// Algorithm selects which DA-MS solver the framework runs.
type Algorithm int

// The available solvers. TM_P and TM_G are the paper's contributions; TM_S
// and TM_R its baselines; TM_B the exact search for small batches.
const (
	Progressive Algorithm = iota // TM_P
	Game                         // TM_G
	Smallest                     // TM_S
	RandomPick                   // TM_R
	BFS                          // TM_B
)

func (a Algorithm) String() string {
	switch a {
	case Progressive:
		return "TM_P"
	case Game:
		return "TM_G"
	case Smallest:
		return "TM_S"
	case RandomPick:
		return "TM_R"
	case BFS:
		return "TM_B"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config tunes the framework.
type Config struct {
	// Lambda is the batch size parameter λ (tokens per batch).
	Lambda int
	// Eta is the liveness parameter η ∈ [0, 1]; 0 disables the guard.
	Eta float64
	// Headroom applies the second practical configuration: solve for
	// (c, ℓ+1) so every DTRS keeps (c, ℓ) and immutability holds for free.
	Headroom bool
	// Algorithm picks the solver.
	Algorithm Algorithm
	// Randomize enables Algorithm 1's per-token candidate sampling. When
	// false, GenerateRS runs exactly one solve for the consuming token —
	// what the paper's timing figures measure.
	Randomize bool
	// Parallelism bounds the candidate-sampling worker pool: 0 uses one
	// worker per available CPU (GOMAXPROCS), 1 forces the sequential
	// executor, n > 1 caps the pool at n goroutines. The output is
	// byte-identical per seed at every setting (see executor.go).
	Parallelism int
	// StopAfter, when positive, stops candidate sampling once the first
	// StopAfter satisfying candidates — in batch-token order — are decided,
	// cancelling in-flight sibling solves. The pick then ranges over that
	// deterministic prefix, so results still replay per seed, but the
	// anonymity set of the pick shrinks from "every satisfying candidate"
	// to "the first StopAfter": a latency/anonymity trade-off. 0 (the
	// default) runs full Algorithm 1.
	StopAfter int
	// Metrics receives the framework's runtime telemetry; nil reports to
	// the process-wide obs.Default() registry.
	Metrics *obs.Registry
}

// DefaultConfig mirrors the paper's deployment defaults: Monero-scale
// batches, headroom on, Progressive solver.
func DefaultConfig() Config {
	return Config{Lambda: 800, Eta: 0.1, Headroom: true, Algorithm: Progressive}
}

// Framework wires a ledger, its batch list and the per-batch liveness
// bookkeeping together.
//
// Concurrency: a Framework is safe for concurrent use, and readers never
// contend with writers. Every mutation (Commit, RefreshBatches,
// UpdateLedger) serialises on writeMu and publishes a fresh immutable
// fwEpoch — ledger view, batch partition, copy-on-write guard state — via
// one atomic store. Read paths (GenerateRS, VerifyRS, Batches) pin the
// current epoch with one atomic load and run entirely against that
// snapshot: the candidate-sampling worker pool, the Step-3 checks and the
// decomposition cache all see a single consistent generation even while
// commits land concurrently.
type Framework struct {
	cfg Config

	// writeMu serialises the mutators. Readers never take it.
	writeMu sync.Mutex
	ledger  *chain.Ledger
	epoch   atomic.Pointer[fwEpoch]

	// rng only ever serves one purpose now: drawing the per-request seed
	// that DeriveSeed splits into candidate streams. rngMu serialises those
	// draws; no solver touches rng directly.
	rngMu sync.Mutex
	rng   *rand.Rand

	metrics fwMetrics
	stats   fwStats
}

// fwEpoch is one immutable generation of the framework's derived state.
// seq increases by one per publish; readers pin a whole generation with a
// single atomic load, so a pinned epoch keeps working — against its own
// ledger view, batches and guards — no matter how many writes land after.
type fwEpoch struct {
	seq     uint64
	view    *chain.View
	batches *chain.BatchList
	origin  func(chain.TokenID) chain.TxID
	// guards is copy-on-write: Commit clones the map and the one mutated
	// entry, so a published epoch's guard state never changes.
	guards map[int]*adversary.NeighborSets
	// decomp is shared across Commit-successive epochs (entries
	// self-invalidate on ring count) and replaced wholesale when batch
	// boundaries move (RefreshBatches, UpdateLedger).
	decomp *decompTable
}

// guard returns the batch's liveness guard. The map is pre-populated for
// every batch index when the epoch is built; the fallback only covers an
// index the batch list does not know (defensive — BatchOf would have failed
// first) and does not write the map, so epochs stay immutable.
func (e *fwEpoch) guard(batch int) *adversary.NeighborSets {
	if g := e.guards[batch]; g != nil {
		return g
	}
	return adversary.NewNeighborSets()
}

// decompTable holds the per-batch decomposition cache of one batch-boundary
// generation. The mutex guards only the map of entries; hits read an
// entry's atomic snapshot, and a stale entry refreshes under its own mutex
// (single-flight per batch), so concurrent sampleCandidates workers never
// serialise globally on a recompute.
type decompTable struct {
	mu sync.RWMutex
	m  map[int]*decompCache
}

func newDecompTable() *decompTable {
	return &decompTable{m: make(map[int]*decompCache)}
}

// fwMetrics holds the registry handles the framework reports to.
type fwMetrics struct {
	solveCount   *obs.Counter
	solveLatency *obs.Histogram
	ringSize     *obs.Histogram
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	admits       *obs.Counter
	rejLiveness  *obs.Counter
	rejConfig    *obs.Counter
	rejDiversity *obs.Counter
	rejOther     *obs.Counter
	epochGauge   *obs.Gauge
	epochAdvance *obs.Histogram
}

func newFWMetrics(reg *obs.Registry, algo Algorithm) fwMetrics {
	solve := "framework.solve." + algo.String()
	return fwMetrics{
		solveCount:   reg.Counter(solve + ".count"),
		solveLatency: reg.Histogram(solve+".latency_us", obs.LatencyBucketsUS),
		ringSize:     reg.Histogram("framework.ring_size", obs.SizeBuckets),
		cacheHits:    reg.Counter("framework.decomp.cache_hits"),
		cacheMisses:  reg.Counter("framework.decomp.cache_misses"),
		admits:       reg.Counter("framework.verify.admits"),
		rejLiveness:  reg.Counter("framework.verify.reject.liveness"),
		rejConfig:    reg.Counter("framework.verify.reject.config"),
		rejDiversity: reg.Counter("framework.verify.reject.diversity"),
		rejOther:     reg.Counter("framework.verify.reject.other"),
		epochGauge:   reg.Gauge("framework.epoch"),
		epochAdvance: reg.Histogram("framework.epoch.advance_us", obs.LatencyBucketsUS),
	}
}

// fwStats are the per-instance counters behind Stats.
type fwStats struct {
	solves, solveFailures                          atomic.Int64
	cacheHits, cacheMisses                         atomic.Int64
	admits                                         atomic.Int64
	rejLiveness, rejConfig, rejDiversity, rejOther atomic.Int64
}

// Stats is a point-in-time snapshot of one framework's telemetry counters.
// Unlike the obs registry — which aggregates across every framework in the
// process — Stats is scoped to the instance it was read from.
type Stats struct {
	// Solves counts solver dispatches; SolveFailures those that returned an
	// error (ErrNoEligible included).
	Solves, SolveFailures int64
	// CacheHits/CacheMisses cover the per-batch decomposition cache.
	CacheHits, CacheMisses int64
	// VerifyAdmits counts rings that passed the Step-3 checks; the Reject*
	// fields classify the failures (η guard, practical configuration,
	// diversity, everything else).
	VerifyAdmits                                               int64
	RejectLiveness, RejectConfig, RejectDiversity, RejectOther int64
}

// Rejects is the total number of Step-3 rejections.
func (s Stats) Rejects() int64 {
	return s.RejectLiveness + s.RejectConfig + s.RejectDiversity + s.RejectOther
}

// CacheHitRate returns the decomposition-cache hit fraction in [0, 1]
// (0 when the cache was never consulted).
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Add returns the field-wise sum of two snapshots (for aggregating over
// several frameworks, e.g. one per algorithm in a simulation).
func (s Stats) Add(o Stats) Stats {
	s.Solves += o.Solves
	s.SolveFailures += o.SolveFailures
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.VerifyAdmits += o.VerifyAdmits
	s.RejectLiveness += o.RejectLiveness
	s.RejectConfig += o.RejectConfig
	s.RejectDiversity += o.RejectDiversity
	s.RejectOther += o.RejectOther
	return s
}

// Stats reads the framework's per-instance counters. Safe to call
// concurrently with spends.
//
// Each counter is loaded exactly once, sub-counters before the totals they
// roll up into. The write side bumps the total first (solve increments
// Solves, then SolveFailures on error), so loading SolveFailures before
// Solves keeps the snapshot's SolveFailures ≤ Solves invariant even when
// spends land mid-read; loading fields directly into the struct literal
// used to tear that invariant.
func (f *Framework) Stats() Stats {
	solveFailures := f.stats.solveFailures.Load()
	solves := f.stats.solves.Load()
	cacheHits := f.stats.cacheHits.Load()
	cacheMisses := f.stats.cacheMisses.Load()
	rejLiveness := f.stats.rejLiveness.Load()
	rejConfig := f.stats.rejConfig.Load()
	rejDiversity := f.stats.rejDiversity.Load()
	rejOther := f.stats.rejOther.Load()
	admits := f.stats.admits.Load()
	return Stats{
		Solves:          solves,
		SolveFailures:   solveFailures,
		CacheHits:       cacheHits,
		CacheMisses:     cacheMisses,
		VerifyAdmits:    admits,
		RejectLiveness:  rejLiveness,
		RejectConfig:    rejConfig,
		RejectDiversity: rejDiversity,
		RejectOther:     rejOther,
	}
}

// decompCache is one batch's cache slot: an immutable snapshot swapped
// atomically, plus a refresh mutex that single-flights recomputation.
type decompCache struct {
	refreshMu sync.Mutex
	snap      atomic.Pointer[decompSnapshot]
}

// decompSnapshot is an immutable decomposition of one batch at one ledger
// version. Readers share it without locking.
type decompSnapshot struct {
	ringCount int // ledger.NumRS() when filled
	rings     []chain.RingRecord
	supers    []selector.Super
	fresh     chain.TokenSet
}

// Errors surfaced by the framework.
var (
	ErrLiveness   = errors.New("tokenmagic: admitting this ring would starve future users (η guard)")
	ErrConfig     = errors.New("tokenmagic: ring violates the practical configuration")
	ErrDiversity  = errors.New("tokenmagic: ring violates its declared diversity requirement")
	ErrSpentBatch = errors.New("tokenmagic: no candidate ring available for this token")
)

// cryptoSeed draws a 64-bit seed from crypto/rand. Candidate sampling is
// anonymity-critical (a predictable pick order lets an adversary invert
// Algorithm 1), so an unreadable entropy source is fatal, not a warning.
func cryptoSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic("tokenmagic: crypto/rand unavailable: " + err.Error())
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// NewSamplingRand returns the framework's default candidate-sampling
// generator: math/rand sequenced for speed, seeded from crypto/rand so no
// two processes share a pick order. Pass a fixed-seed *rand.Rand to New
// instead when a run must replay (sim, tests, benchmarks) — that split is
// the repo's randomness policy (see DESIGN.md).
func NewSamplingRand() *rand.Rand {
	//lint:ignore cryptorand the one sanctioned construction site: the seed comes from crypto/rand
	return rand.New(rand.NewSource(cryptoSeed()))
}

// New builds a framework over the ledger. rng drives candidate sampling
// (cfg.Randomize) and the TM_R baseline; nil selects a crypto-seeded
// generator (NewSamplingRand) when the configuration needs one, so
// deterministic sequences only ever come from an explicit caller choice.
func New(ledger *chain.Ledger, cfg Config, rng *rand.Rand) (*Framework, error) {
	if cfg.Eta < 0 || cfg.Eta > 1 {
		return nil, fmt.Errorf("tokenmagic: η must be in [0,1], got %v", cfg.Eta)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	if rng == nil && (cfg.Randomize || cfg.Algorithm == RandomPick) {
		rng = NewSamplingRand()
	}
	f := &Framework{
		cfg:     cfg,
		ledger:  ledger,
		rng:     rng,
		metrics: newFWMetrics(reg, cfg.Algorithm),
	}
	if err := f.rebuildEpoch(); err != nil {
		return nil, err
	}
	return f, nil
}

// rebuildEpoch derives batches, origin and guard state from the ledger's
// current view and publishes them as a fresh epoch. Callers hold writeMu
// (or own the framework exclusively, as New does).
func (f *Framework) rebuildEpoch() error {
	v := f.ledger.View()
	batches, err := chain.BuildBatchesView(v, f.cfg.Lambda)
	if err != nil {
		return err
	}
	guards := make(map[int]*adversary.NeighborSets, batches.Len())
	for i := 0; i < batches.Len(); i++ {
		guards[i] = adversary.NewNeighborSets()
	}
	for _, r := range v.Rings() {
		if b, berr := batches.BatchOf(r.Tokens[0]); berr == nil {
			guards[b.Index].Append(r)
		}
	}
	f.publishEpoch(&fwEpoch{
		view:    v,
		batches: batches,
		origin:  v.OriginFunc(),
		guards:  guards,
		// Batch boundaries may have moved; the ring-count keyed
		// decomposition cache cannot tell, so start a fresh table.
		decomp: newDecompTable(),
	})
	return nil
}

// publishEpoch stamps the next sequence number onto e and makes it the
// current generation. Callers hold writeMu.
func (f *Framework) publishEpoch(e *fwEpoch) {
	if old := f.epoch.Load(); old != nil {
		e.seq = old.seq + 1
	}
	f.epoch.Store(e)
	f.metrics.epochGauge.Set(int64(e.seq))
}

// Epoch returns the sequence number of the framework's current published
// generation; it advances by one on every Commit, RefreshBatches and
// UpdateLedger. The node's spend pipeline compares epochs to tell a
// genuinely invalid ring from one that verified against stale state.
func (f *Framework) Epoch() uint64 { return f.epoch.Load().seq }

// currentEpoch pins the published epoch for a reader, first catching up if
// the underlying ledger moved past it — which only happens when something
// else appends to the shared ledger directly (another framework over the
// same chain, a miner, a test). Generating or verifying against a
// known-stale view would produce rings doomed to fail admission, so
// staleness is worth a writeMu round trip; in the common single-writer
// deployment the view is always current and this is one atomic load.
func (f *Framework) currentEpoch() (*fwEpoch, error) {
	e := f.epoch.Load()
	if e.view.Epoch() == f.ledger.Epoch() {
		return e, nil
	}
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	if e = f.epoch.Load(); e.view.Epoch() == f.ledger.Epoch() {
		return e, nil // another reader already caught up
	}
	if err := f.rebuildEpoch(); err != nil {
		return nil, err
	}
	return f.epoch.Load(), nil
}

// RefreshBatches rebuilds the batch partition and guard state from the
// current ledger, picking up tokens appended since the framework was built
// (mirrors batchsvc.Server.RefreshBatches). On error the framework is left
// unchanged. In-flight readers keep their pinned epoch and are unaffected.
func (f *Framework) RefreshBatches() error {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	start := time.Now()
	if err := f.rebuildEpoch(); err != nil {
		return err
	}
	f.metrics.epochAdvance.ObserveSince(start)
	return nil
}

// UpdateLedger runs fn with exclusive write access to the ledger (e.g.
// token growth) and then publishes a fresh epoch over the mutated state.
// Concurrent spends keep reading their pinned pre-mutation epoch; they
// never observe the mutation half-applied. If fn errors the epoch is not
// advanced and the error returned; fn must leave the ledger consistent on
// error.
func (f *Framework) UpdateLedger(fn func(*chain.Ledger) error) error {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	start := time.Now()
	if err := fn(f.ledger); err != nil {
		return err
	}
	if err := f.rebuildEpoch(); err != nil {
		return err
	}
	f.metrics.epochAdvance.ObserveSince(start)
	return nil
}

// Batches exposes the current epoch's batch list. The returned list is an
// immutable snapshot; writers publish a new one rather than mutating.
func (f *Framework) Batches() *chain.BatchList {
	return f.epoch.Load().batches
}

// effectiveReq applies the headroom configuration.
func (f *Framework) effectiveReq(req diversity.Requirement) diversity.Requirement {
	if f.cfg.Headroom {
		return req.WithHeadroom()
	}
	return req
}

// problemFor assembles the modular problem for one consuming token against
// one pinned epoch, using the cached per-batch decomposition when the
// epoch's view matches the ring count it was computed at.
func (f *Framework) problemFor(e *fwEpoch, target chain.TokenID, req diversity.Requirement) (*selector.Problem, chain.TokenSet, error) {
	b, err := e.batches.BatchOf(target)
	if err != nil {
		return nil, nil, err
	}
	dc := f.decompFor(e, b)
	p, err := selector.NewProblem(target, dc.supers, dc.fresh, e.origin, f.effectiveReq(req))
	if err != nil {
		return nil, nil, err
	}
	return p, b.Tokens, nil
}

// decompFor returns the batch's decomposition at the pinned epoch,
// refreshing the cache entry if it was computed at a different ring count.
// Cache hits take only the table's read lock plus an atomic load; a miss
// recomputes under the batch's own refresh mutex, so concurrent workers on
// the same stale batch wait for one recompute (single-flight) while other
// batches proceed. The table is shared across Commit-successive epochs —
// safe because the ring list is append-only, so equal ring counts imply
// identical rings.
func (f *Framework) decompFor(e *fwEpoch, b chain.Batch) *decompSnapshot {
	t := e.decomp
	t.mu.RLock()
	dc := t.m[b.Index]
	t.mu.RUnlock()
	if dc == nil {
		t.mu.Lock()
		if dc = t.m[b.Index]; dc == nil {
			dc = &decompCache{}
			t.m[b.Index] = dc
		}
		t.mu.Unlock()
	}
	cur := e.view.NumRS()
	if s := dc.snap.Load(); s != nil && s.ringCount == cur {
		f.stats.cacheHits.Add(1)
		f.metrics.cacheHits.Inc()
		return s
	}
	dc.refreshMu.Lock()
	defer dc.refreshMu.Unlock()
	// Re-check: another worker may have refreshed to this epoch's version
	// while we waited.
	if s := dc.snap.Load(); s != nil && s.ringCount == cur {
		f.stats.cacheHits.Add(1)
		f.metrics.cacheHits.Inc()
		return s
	}
	f.stats.cacheMisses.Add(1)
	f.metrics.cacheMisses.Inc()
	rings := e.view.RingsOver(b.Tokens)
	supers, fresh := selector.Decompose(rings, b.Tokens)
	s := &decompSnapshot{ringCount: cur, rings: rings, supers: supers, fresh: fresh}
	dc.snap.Store(s)
	return s
}

// solve dispatches to the configured solver, recording per-algorithm count
// and latency (candidate sampling makes this the hot path: one call per
// batch token per spend). Counter order matters to Stats: the total is
// bumped before the failure sub-counter so snapshots never see
// SolveFailures > Solves. rng is the solve's private derived stream; only
// TM_R consumes it.
func (f *Framework) solve(ctx context.Context, e *fwEpoch, p *selector.Problem, universe chain.TokenSet, target chain.TokenID, req diversity.Requirement, rng *rand.Rand) (selector.Result, error) {
	start := time.Now()
	res, err := f.dispatch(ctx, e, p, universe, target, req, rng)
	f.metrics.solveCount.Inc()
	f.metrics.solveLatency.ObserveSince(start)
	f.stats.solves.Add(1)
	if err != nil {
		f.stats.solveFailures.Add(1)
	}
	return res, err
}

func (f *Framework) dispatch(ctx context.Context, e *fwEpoch, p *selector.Problem, universe chain.TokenSet, target chain.TokenID, req diversity.Requirement, rng *rand.Rand) (selector.Result, error) {
	switch f.cfg.Algorithm {
	case Progressive:
		return selector.ProgressiveCtx(ctx, p)
	case Game:
		return selector.GameCtx(ctx, p)
	case Smallest:
		return selector.SmallestCtx(ctx, p)
	case RandomPick:
		if rng == nil {
			return selector.Result{}, errors.New("tokenmagic: TM_R requires an rng")
		}
		return selector.RandomCtx(ctx, p, rng)
	case BFS:
		return selector.BFSCtx(ctx, &selector.ExactProblem{
			Target:   target,
			Universe: universe,
			Rings:    e.view.RingsOver(universe),
			Origin:   e.origin,
			// The exact solver enforces DTRS diversity itself, so it must
			// see the same headroom-adjusted requirement the Step-3 check
			// verifies — the heuristic solvers get it via problemFor.
			Req: f.effectiveReq(req),
		})
	default:
		return selector.Result{}, fmt.Errorf("tokenmagic: unknown algorithm %v", f.cfg.Algorithm)
	}
}

// drawSeed pulls the next request seed off the framework's sampling rng.
// This is the rng's only consumer: one draw per GenerateRS, serialised by
// rngMu, so the seed sequence is a pure function of the rng's own seed no
// matter how many goroutines spend concurrently.
func (f *Framework) drawSeed() int64 {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return f.rng.Int63()
}

// GenerateRS produces an eligible ring for consuming target under req
// (Algorithm 1). With cfg.Randomize set, it generates a candidate per batch
// token and picks uniformly among those containing target; otherwise it runs
// a single solve.
func (f *Framework) GenerateRS(target chain.TokenID, req diversity.Requirement) (selector.Result, error) {
	return f.GenerateRSContext(context.Background(), target, req)
}

// GenerateRSContext is GenerateRS with cooperative cancellation: when ctx
// dies, in-flight candidate solves are abandoned and the context's error is
// returned. Safe for concurrent use.
func (f *Framework) GenerateRSContext(ctx context.Context, target chain.TokenID, req diversity.Requirement) (selector.Result, error) {
	needRand := f.cfg.Randomize || f.cfg.Algorithm == RandomPick
	if needRand && f.rng == nil {
		return selector.Result{}, errors.New("tokenmagic: candidate sampling requires an rng")
	}
	var seed int64
	if f.rng != nil {
		seed = f.drawSeed()
	}
	return f.GenerateRSSeeded(ctx, target, req, seed)
}

// GenerateRSSeeded is the replayable core of GenerateRS: the whole request —
// every candidate solve's rng stream and the final uniform pick — is derived
// from seed via DeriveSeed, so the same (ledger, config, seed) triple yields
// the same ring at any Parallelism setting. GenerateRSContext draws seeds
// from the framework rng; simulation replay (internal/sim) and the
// equivalence test suites supply their own.
func (f *Framework) GenerateRSSeeded(ctx context.Context, target chain.TokenID, req diversity.Requirement, seed int64) (selector.Result, error) {
	e, err := f.currentEpoch()
	if err != nil {
		return selector.Result{}, err
	}
	res, err := f.generateRSSeeded(ctx, e, target, req, seed)
	if err == nil {
		f.metrics.ringSize.Observe(int64(res.Size()))
	}
	return res, err
}

// generateRSSeeded runs lock-free against the pinned epoch; the sampling
// worker pool is joined before it returns, and every solver access reads
// the epoch's immutable view, so concurrent commits can never expose a
// half-applied mutation to the request.
func (f *Framework) generateRSSeeded(ctx context.Context, e *fwEpoch, target chain.TokenID, req diversity.Requirement, seed int64) (selector.Result, error) {
	if err := req.Validate(); err != nil {
		return selector.Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return selector.Result{}, err
	}
	if !f.cfg.Randomize {
		p, universe, err := f.problemFor(e, target, req)
		if err != nil {
			return selector.Result{}, err
		}
		var rng *rand.Rand
		if f.cfg.Algorithm == RandomPick {
			rng = streamRand(seed, soloStream)
		}
		return f.solve(ctx, e, p, universe, target, req, rng)
	}
	universe, err := e.batches.Universe(target)
	if err != nil {
		return selector.Result{}, err
	}
	candidates, err := f.sampleCandidatesTraced(ctx, e, universe, target, req, seed)
	if err != nil {
		return selector.Result{}, err
	}
	if len(candidates) == 0 {
		return selector.Result{}, ErrSpentBatch
	}
	// Algorithm 1 line 7: uniform pick, on its own derived stream so the
	// pick is independent of how many candidates each solver drew.
	return candidates[streamRand(seed, pickStream).Intn(len(candidates))], nil
}

// Commit validates a generated ring and appends it to the ledger, updating
// the batch's liveness state. It returns the new RSID. Verification and
// append happen under one exclusive hold, so two racing Commits cannot both
// verify against the old ledger and then both land (check-then-act).
func (f *Framework) Commit(tokens chain.TokenSet, req diversity.Requirement) (chain.RSID, error) {
	return f.CommitCtx(context.Background(), tokens, req)
}

// CommitCtx is Commit with the request's trace threaded through: the whole
// exclusive section lands in a "commit" span, with the embedded Step-3 check
// as a child "verify" span. ctx carries only the trace — commit itself never
// aborts on cancellation (a half-applied append would corrupt the guard
// state).
func (f *Framework) CommitCtx(ctx context.Context, tokens chain.TokenSet, req diversity.Requirement) (chain.RSID, error) {
	ctx, sp := trace.StartSpan(ctx, "commit")
	defer sp.End()
	sp.AnnotateInt("ring_size", int64(len(tokens)))
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	start := time.Now()
	e := f.epoch.Load() // writers serialise, so this IS the latest state
	if e.view.Epoch() != f.ledger.Epoch() {
		// The ledger moved outside the framework (another writer appended
		// to it directly). Resync so the commit verifies against the live
		// chain, not the stale pinned view.
		if err := f.rebuildEpoch(); err != nil {
			return -1, err
		}
		e = f.epoch.Load()
	}
	if err := f.verifyAndCount(ctx, e, tokens, req); err != nil {
		return -1, err
	}
	id, err := f.ledger.AppendRS(tokens, req.C, req.L)
	if err != nil {
		return -1, err
	}
	nv := f.ledger.View()
	rec, _ := nv.RS(id)
	// Copy-on-write: clone the guard map and the one entry this ring lands
	// in, leaving the previous epoch's guard state untouched for its
	// pinned readers.
	guards := e.guards
	if b, berr := e.batches.BatchOf(tokens[0]); berr == nil {
		guards = make(map[int]*adversary.NeighborSets, len(e.guards))
		for k, v := range e.guards {
			guards[k] = v
		}
		g := adversary.NewNeighborSets()
		if old := e.guards[b.Index]; old != nil {
			g = old.Clone()
		}
		g.Append(rec)
		guards[b.Index] = g
	}
	f.publishEpoch(&fwEpoch{
		view:    nv,
		batches: e.batches, // a commit appends a ring; boundaries are unchanged
		origin:  e.origin,  // and so is the token population
		guards:  guards,
		decomp:  e.decomp, // entries self-invalidate on ring count
	})
	f.metrics.epochAdvance.ObserveSince(start)
	return id, nil
}

// VerifyRS performs the Step-3 miner checks on a proposed ring: the
// practical configuration (superset-or-disjoint with every existing ring,
// all tokens in one batch), the declared diversity with headroom, the
// closed-form DTRS diversity, and the η liveness guard. Safe for concurrent
// use; it shares mu's read side with GenerateRS.
func (f *Framework) VerifyRS(tokens chain.TokenSet, req diversity.Requirement) error {
	return f.VerifyRSCtx(context.Background(), tokens, req)
}

// VerifyRSCtx is VerifyRS with the request's trace threaded through; the
// check lands in a "verify" span annotated with the verdict.
func (f *Framework) VerifyRSCtx(ctx context.Context, tokens chain.TokenSet, req diversity.Requirement) error {
	e, err := f.currentEpoch()
	if err != nil {
		return err
	}
	return f.verifyAndCount(ctx, e, tokens, req)
}

// verifyAndCount classifies verifyRS's outcome into the admit/reject
// counters and a "verify" span of the request's trace (verdict "admit", or
// the reject class — "liveness" is the η guard). The check runs entirely
// against the pinned epoch e.
func (f *Framework) verifyAndCount(ctx context.Context, e *fwEpoch, tokens chain.TokenSet, req diversity.Requirement) error {
	sp := trace.StartChild(ctx, "verify")
	defer sp.End()
	err := f.verifyRS(e, tokens, req)
	switch {
	case err == nil:
		sp.Annotate("verdict", "admit")
		f.stats.admits.Add(1)
		f.metrics.admits.Inc()
	case errors.Is(err, ErrLiveness):
		sp.Annotate("verdict", "liveness")
		f.stats.rejLiveness.Add(1)
		f.metrics.rejLiveness.Inc()
	case errors.Is(err, ErrConfig):
		sp.Annotate("verdict", "config")
		f.stats.rejConfig.Add(1)
		f.metrics.rejConfig.Inc()
	case errors.Is(err, ErrDiversity):
		sp.Annotate("verdict", "diversity")
		f.stats.rejDiversity.Add(1)
		f.metrics.rejDiversity.Inc()
	default:
		sp.Annotate("verdict", "other")
		f.stats.rejOther.Add(1)
		f.metrics.rejOther.Inc()
	}
	return err
}

func (f *Framework) verifyRS(e *fwEpoch, tokens chain.TokenSet, req diversity.Requirement) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if len(tokens) == 0 {
		return chain.ErrEmptyRing
	}
	b, err := e.batches.BatchOf(tokens[0])
	if err != nil {
		return err
	}
	if !tokens.SubsetOf(b.Tokens) {
		return fmt.Errorf("%w: ring spans multiple batches", ErrConfig)
	}

	rings := e.view.RingsOver(b.Tokens)
	subsetCount := 1 // the new ring itself
	for _, r := range rings {
		switch {
		case r.Tokens.SubsetOf(tokens):
			subsetCount++
		case r.Tokens.Disjoint(tokens):
		default:
			return fmt.Errorf("%w: ring neither contains nor avoids %v", ErrConfig, r.ID)
		}
	}

	eff := f.effectiveReq(req)
	if !diversity.SatisfiesTokens(tokens, e.origin, eff) {
		return fmt.Errorf("%w: HT multiset fails %v", ErrDiversity, eff)
	}
	// Closed-form DTRS check (Theorem 6.1): with headroom this is implied
	// (Theorem 6.4) but cheap enough that miners verify it regardless.
	if !dtrs.AllSatisfyClosedForm(tokens, subsetCount, e.origin, req) {
		return fmt.Errorf("%w: a DTRS fails %v", ErrDiversity, req)
	}

	if f.cfg.Eta > 0 {
		g := e.guard(b.Index)
		effSize := len(b.Tokens)
		if effSize < f.cfg.Lambda {
			// Trailing under-full batch: the paper scores |T| as λ+λ'−1
			// because more tokens will land in the batch before it closes.
			effSize = f.cfg.Lambda + effSize - 1
		}
		i := g.RingCount() + 1
		mu := g.WouldConsume(chain.RingRecord{ID: chain.RSID(e.view.NumRS()), Tokens: tokens})
		// Section 4: the number of inferable consumed tokens must not
		// exceed i − η·(|T| − i). The bound is clamped at zero so early
		// rings that prove nothing (μ = 0) are always admissible.
		bound := float64(i) - f.cfg.Eta*float64(effSize-i)
		if bound < 0 {
			bound = 0
		}
		if float64(mu) > bound {
			return fmt.Errorf("%w: i=%d μ=%d |T|=%d η=%v", ErrLiveness, i, mu, effSize, f.cfg.Eta)
		}
	}
	return nil
}

// RelaxationPolicy controls GenerateRSRelaxed's retry ladder. Section 4:
// when no eligible ring exists, "users can relax the diversity requirement
// by increasing c or decreasing ℓ" and retry.
type RelaxationPolicy struct {
	// CStep is added to c on each relaxation step (0 disables c steps).
	CStep float64
	// LStep is subtracted from ℓ on each relaxation step (0 disables).
	LStep int
	// MaxSteps bounds the ladder; 0 means 8.
	MaxSteps int
	// MinL is the floor for ℓ (default 1).
	MinL int
}

func (p RelaxationPolicy) withDefaults() RelaxationPolicy {
	if p.MaxSteps == 0 {
		p.MaxSteps = 8
	}
	if p.MinL < 1 {
		p.MinL = 1
	}
	return p
}

// GenerateRSRelaxed tries the requested requirement and, on ErrNoEligible,
// walks the relaxation ladder until a ring exists or the ladder is
// exhausted. It returns the result together with the requirement that was
// actually achieved, which the caller should declare when committing.
func (f *Framework) GenerateRSRelaxed(target chain.TokenID, req diversity.Requirement, policy RelaxationPolicy) (selector.Result, diversity.Requirement, error) {
	policy = policy.withDefaults()
	cur := req
	var lastErr error
	for step := 0; step <= policy.MaxSteps; step++ {
		res, err := f.GenerateRS(target, cur)
		if err == nil {
			return res, cur, nil
		}
		if !errors.Is(err, selector.ErrNoEligible) {
			return selector.Result{}, cur, err
		}
		lastErr = err
		next := cur
		next.C += policy.CStep
		if next.L-policy.LStep >= policy.MinL {
			next.L -= policy.LStep
		}
		if next == cur {
			break // policy cannot relax further
		}
		cur = next
	}
	return selector.Result{}, cur, fmt.Errorf("tokenmagic: relaxation ladder exhausted: %w", lastErr)
}

// GenerateAndCommit is the common happy path: generate, then commit.
func (f *Framework) GenerateAndCommit(target chain.TokenID, req diversity.Requirement) (chain.RSID, selector.Result, error) {
	res, err := f.GenerateRS(target, req)
	if err != nil {
		return -1, selector.Result{}, err
	}
	id, err := f.Commit(res.Tokens, req)
	if err != nil {
		return -1, res, err
	}
	return id, res, nil
}
