package tokenmagic

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

// DeriveSeed must behave as a pure, collision-averse stream splitter: stable
// across calls, and distinct over candidate indices, the reserved tags and
// the replay range for one request seed.
func TestDeriveSeedStreams(t *testing.T) {
	const seed = int64(0x5eed)
	if DeriveSeed(seed, 7) != DeriveSeed(seed, 7) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	seen := map[int64]uint64{}
	streams := []uint64{pickStream, soloStream, ReplayStreamBase, ReplayStreamBase + 1}
	for i := uint64(0); i < 1000; i++ {
		streams = append(streams, i)
	}
	for _, s := range streams {
		d := DeriveSeed(seed, s)
		if prev, dup := seen[d]; dup {
			t.Fatalf("streams %d and %d collide on %d", prev, s, d)
		}
		seen[d] = s
	}
	if DeriveSeed(seed, 0) == DeriveSeed(seed+1, 0) {
		t.Fatal("different request seeds derive the same stream seed")
	}
}

// A pre-cancelled context must stop generation before any solve runs and
// surface context.Canceled.
func TestGenerateRSContextPreCancelled(t *testing.T) {
	l := samplingLedger(t, 10)
	f, err := New(l, Config{Lambda: 100, Headroom: true, Algorithm: Progressive, Randomize: true}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.GenerateRSContext(ctx, 3, diversity.Requirement{C: 1, L: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s := f.Stats(); s.Solves != 0 {
		t.Fatalf("cancelled request still dispatched %d solves", s.Solves)
	}
}

// StopAfter must pick from the deterministic prefix: the sequential and
// parallel executors agree, and the prefix semantics match an explicit
// sequential scan (first satisfying candidate in batch-token order when
// StopAfter=1).
func TestStopAfterDeterministicPrefix(t *testing.T) {
	l := samplingLedger(t, 14)
	req := diversity.Requirement{C: 1, L: 3}
	mk := func(workers, stopAfter int) *Framework {
		f, err := New(l, Config{
			Lambda: 100, Headroom: true, Algorithm: Progressive,
			Randomize: true, Parallelism: workers, StopAfter: stopAfter,
		}, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	const seed = 77
	seq, err := mk(1, 1).GenerateRSSeeded(context.Background(), 5, req, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := mk(workers, 1).GenerateRSSeeded(context.Background(), 5, req, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Tokens.Equal(par.Tokens) {
			t.Fatalf("StopAfter=1 w=%d diverged: %v vs %v", workers, seq.Tokens, par.Tokens)
		}
	}
	// With a single satisfying prefix candidate the pick is forced, so the
	// full run's candidate list must start with the StopAfter=1 ring.
	full := mk(1, 0)
	universe, err := full.Batches().Universe(5)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := full.sampleCandidates(context.Background(), full.epoch.Load(), universe, 5, req, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || !cands[0].Tokens.Equal(seq.Tokens) {
		t.Fatalf("StopAfter=1 ring %v is not the first full-run candidate", seq.Tokens)
	}
}

// UpdateLedger must atomically grow the chain and the batch partition:
// tokens minted through it become spendable without rebuilding the
// framework.
func TestUpdateLedgerExtendsSpendableRange(t *testing.T) {
	l := samplingLedger(t, 6) // 12 tokens
	f, err := New(l, Config{Lambda: 12, Headroom: true, Algorithm: Progressive, Randomize: true}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	newTok := chain.TokenID(l.NumTokens())
	req := diversity.Requirement{C: 1, L: 3}
	if _, err := f.GenerateRS(newTok, req); err == nil {
		t.Fatal("unminted token unexpectedly spendable")
	}
	err = f.UpdateLedger(func(l *chain.Ledger) error {
		b := l.BeginBlock()
		for i := 0; i < 6; i++ {
			if _, err := l.AddTx(b, 2); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.GenerateRS(newTok, req)
	if err != nil {
		t.Fatalf("token minted via UpdateLedger not spendable: %v", err)
	}
	if !res.Tokens.Contains(newTok) {
		t.Fatalf("ring %v misses new token %d", res.Tokens, newTok)
	}
}

// Parallelism=0 must resolve to the machine's GOMAXPROCS and still produce
// the sequential executor's ring (default-config determinism).
func TestDefaultParallelismMatchesSequential(t *testing.T) {
	l := samplingLedger(t, 12)
	req := diversity.Requirement{C: 1, L: 3}
	mk := func(workers int) *Framework {
		f, err := New(l, Config{Lambda: 100, Headroom: true, Algorithm: Game, Randomize: true, Parallelism: workers},
			rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	const seed = 41
	a, errA := mk(1).GenerateRSSeeded(context.Background(), 2, req, seed)
	b, errB := mk(0).GenerateRSSeeded(context.Background(), 2, req, seed)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("err mismatch: %v vs %v", errA, errB)
	}
	if errA == nil && !a.Tokens.Equal(b.Tokens) {
		t.Fatalf("default parallelism diverged: %v vs %v", a.Tokens, b.Tokens)
	}
}
