package tokenmagic

import (
	"errors"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

// buildLedger creates a ledger with nTx transactions of outsPerTx outputs
// each, all in one block, so one batch covers everything under a large λ.
func buildLedger(t *testing.T, nTx, outsPerTx int) *chain.Ledger {
	t.Helper()
	l := chain.NewLedger()
	b := l.BeginBlock()
	for i := 0; i < nTx; i++ {
		if _, err := l.AddTx(b, outsPerTx); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestFrameworkGenerateCommitRoundTrip(t *testing.T) {
	l := buildLedger(t, 10, 2) // 20 tokens over 10 HTs
	cfg := Config{Lambda: 100, Eta: 0.1, Headroom: true, Algorithm: Progressive}
	f, err := New(l, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 3}
	id, res, err := f.GenerateAndCommit(0, req)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("RSID = %v", id)
	}
	if !res.Tokens.Contains(0) {
		t.Fatalf("ring %v must contain the consuming token", res.Tokens)
	}
	// Headroom: the committed ring satisfies (c, ℓ+1) on its own histogram.
	if !diversity.SatisfiesTokens(res.Tokens, l.OriginFunc(), req.WithHeadroom()) {
		t.Fatal("committed ring must satisfy the headroom requirement")
	}
	if l.NumRS() != 1 {
		t.Fatal("ring must be on the ledger")
	}
}

func TestFrameworkAllAlgorithms(t *testing.T) {
	req := diversity.Requirement{C: 1, L: 2}
	for _, algo := range []Algorithm{Progressive, Game, Smallest, RandomPick, BFS} {
		l := buildLedger(t, 6, 2)
		cfg := Config{Lambda: 100, Eta: 0, Headroom: algo != BFS, Algorithm: algo}
		f, err := New(l, cfg, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		res, err := f.GenerateRS(3, req)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !res.Tokens.Contains(3) {
			t.Fatalf("%v: ring %v missing target", algo, res.Tokens)
		}
		if !diversity.SatisfiesTokens(res.Tokens, l.OriginFunc(), req) {
			t.Fatalf("%v: ring %v fails requirement", algo, res.Tokens)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		Progressive: "TM_P", Game: "TM_G", Smallest: "TM_S",
		RandomPick: "TM_R", BFS: "TM_B", Algorithm(99): "Algorithm(99)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestVerifyRSConfigViolations(t *testing.T) {
	l := buildLedger(t, 8, 2)
	f, err := New(l, Config{Lambda: 100, Headroom: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 2, L: 2}

	// Commit a first ring {0, 2, 4}.
	first := chain.NewTokenSet(0, 2, 4)
	if _, err := f.Commit(first, req); err != nil {
		t.Fatal(err)
	}

	// Partial overlap with the existing ring: configuration violation.
	overlap := chain.NewTokenSet(0, 6, 8)
	if err := f.VerifyRS(overlap, req); !errors.Is(err, ErrConfig) {
		t.Fatalf("overlap err = %v, want ErrConfig", err)
	}

	// Superset is allowed.
	super := chain.NewTokenSet(0, 2, 4, 6, 8)
	if err := f.VerifyRS(super, req); err != nil {
		t.Fatalf("superset err = %v", err)
	}

	// Disjoint is allowed.
	disjoint := chain.NewTokenSet(6, 8, 10)
	if err := f.VerifyRS(disjoint, req); err != nil {
		t.Fatalf("disjoint err = %v", err)
	}

	// Empty ring.
	if err := f.VerifyRS(nil, req); err == nil {
		t.Fatal("empty ring must fail")
	}
	// Invalid requirement.
	if err := f.VerifyRS(disjoint, diversity.Requirement{C: -1, L: 1}); err == nil {
		t.Fatal("invalid requirement must fail")
	}
}

func TestVerifyRSDiversityViolation(t *testing.T) {
	// Two HTs with 3 outputs each: ring {0,1,2} is homogeneous (all h0).
	l := buildLedger(t, 2, 3)
	f, err := New(l, Config{Lambda: 100, Headroom: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 2}
	if err := f.VerifyRS(chain.NewTokenSet(0, 1, 2), req); !errors.Is(err, ErrDiversity) {
		t.Fatalf("homogeneous ring err = %v, want ErrDiversity", err)
	}
}

func TestVerifyRSBatchSpanViolation(t *testing.T) {
	l := chain.NewLedger()
	b0 := l.BeginBlock()
	if _, err := l.AddTx(b0, 3); err != nil {
		t.Fatal(err)
	}
	b1 := l.BeginBlock()
	if _, err := l.AddTx(b1, 3); err != nil {
		t.Fatal(err)
	}
	f, err := New(l, Config{Lambda: 3, Headroom: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Batches().Len() < 2 {
		t.Fatal("test requires ≥ 2 batches")
	}
	// Tokens 0 (batch 0) and 3 (batch 1).
	err = f.VerifyRS(chain.NewTokenSet(0, 3), diversity.Requirement{C: 2, L: 2})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("cross-batch ring err = %v, want ErrConfig", err)
	}
}

func TestEtaGuardBlocksStarvation(t *testing.T) {
	// 6 tokens, 6 distinct HTs, η=0.5, λ=6. Build the superset chain
	// A={0,1}, B={0,1,2}, then propose C={0,1,2}: three rings over three
	// tokens prove all of {0,1,2} consumed (μ=3), exceeding
	// max(0, 3 − 0.5·(6−3)) = 1.5 — while C passes every diversity and
	// DTRS check (its ψ sets span two distinct HTs under (2,2)).
	l := buildLedger(t, 6, 1)
	f, err := New(l, Config{Lambda: 6, Eta: 0.5, Headroom: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 2, L: 2}
	if _, err := f.Commit(chain.NewTokenSet(0, 1), req); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Commit(chain.NewTokenSet(0, 1, 2), req); err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyRS(chain.NewTokenSet(0, 1, 2), req); !errors.Is(err, ErrLiveness) {
		t.Fatalf("err = %v, want ErrLiveness", err)
	}
	// A disjoint fresh ring is fine: i=3, μ=0 ≤ max(0, 3−0.5·3)=1.5.
	if err := f.VerifyRS(chain.NewTokenSet(3, 4), req); err != nil {
		t.Fatalf("fresh ring err = %v", err)
	}
	// η=0 disables the guard: the same starving ring is admitted.
	l2 := buildLedger(t, 6, 1)
	f2, err := New(l2, Config{Lambda: 6, Eta: 0, Headroom: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Commit(chain.NewTokenSet(0, 1), req); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Commit(chain.NewTokenSet(0, 1, 2), req); err != nil {
		t.Fatal(err)
	}
	if err := f2.VerifyRS(chain.NewTokenSet(0, 1, 2), req); err != nil {
		t.Fatalf("η=0 should admit: %v", err)
	}
}

func TestRandomizedCandidateSampling(t *testing.T) {
	l := buildLedger(t, 8, 2)
	cfg := Config{Lambda: 100, Headroom: true, Algorithm: Progressive, Randomize: true}
	f, err := New(l, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 2}
	res, err := f.GenerateRS(5, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tokens.Contains(5) {
		t.Fatalf("sampled ring %v missing target", res.Tokens)
	}
	// Without an rng, New installs a crypto-seeded default and sampling
	// still works (the seed is just no longer reproducible).
	f2, err := New(l, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := f2.GenerateRS(5, req)
	if err != nil {
		t.Fatalf("sampling with the default crypto-seeded rng: %v", err)
	}
	if !res2.Tokens.Contains(5) {
		t.Fatalf("sampled ring %v missing target", res2.Tokens)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	l := buildLedger(t, 2, 1)
	if _, err := New(l, Config{Lambda: 0}, nil); err == nil {
		t.Fatal("λ=0 must error")
	}
	if _, err := New(l, Config{Lambda: 5, Eta: 2}, nil); err == nil {
		t.Fatal("η>1 must error")
	}
}

func TestFrameworkReplaysExistingRings(t *testing.T) {
	l := buildLedger(t, 6, 1)
	if _, err := l.AppendRS(chain.NewTokenSet(0, 1), 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRS(chain.NewTokenSet(0, 1), 2, 2); err != nil {
		t.Fatal(err)
	}
	f, err := New(l, Config{Lambda: 6, Eta: 0.5, Headroom: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The twin rings were replayed into the guard: μ=2 already, i=2.
	// Next ring {2,3}: i=3, μ=2 → 1 ≥ 0.5·(6−3) = 1.5? No → reject.
	err = f.VerifyRS(chain.NewTokenSet(2, 3), diversity.Requirement{C: 2, L: 2})
	if !errors.Is(err, ErrLiveness) {
		t.Fatalf("err = %v, want ErrLiveness (replayed guard state)", err)
	}
}
