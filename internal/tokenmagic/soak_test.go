package tokenmagic

// Concurrency soak: hammer one Framework from many goroutines — generators,
// committers, verifiers, stats readers — while the ledger keeps growing
// through UpdateLedger/RefreshBatches. The test asserts no invariant breaks
// (Stats tearing, rings missing their target); the race detector asserts
// memory safety (this file is on the CI -race list, selected with
// `go test -run Soak -race`). Iteration-bounded, not time-bounded, so a run
// is deterministic in the work it attempts.

import (
	"math/rand"
	"sync"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs"
	"tokenmagic/internal/store"
)

func TestSoakConcurrentFrameworkUnderRefresh(t *testing.T) {
	const (
		initialTx  = 20 // ×2 outputs = 40 tokens at t=0
		generators = 3
		verifiers  = 2
		iters      = 40 // per-goroutine operations
	)
	l := chain.NewLedger()
	blk := l.BeginBlock()
	for i := 0; i < initialTx; i++ {
		if _, err := l.AddTx(blk, 2); err != nil {
			t.Fatal(err)
		}
	}
	initialTokens := l.NumTokens()
	f, err := New(l, Config{
		Lambda:      16,
		Eta:         0.1,
		Headroom:    true,
		Algorithm:   Progressive,
		Randomize:   true,
		Parallelism: 2,
	}, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 3}

	var wg sync.WaitGroup
	// Generators: spend attempts across the initial token range. Failures
	// (no eligible ring, batch drained) are expected outcomes, not bugs.
	for g := 0; g < generators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				target := chain.TokenID((g*iters + i) % initialTokens)
				res, err := f.GenerateRS(target, req)
				if err == nil && !res.Tokens.Contains(target) {
					t.Errorf("generator %d: ring %v misses target %d", g, res.Tokens, target)
					return
				}
			}
		}(g)
	}
	// Committer: full generate→verify→commit cycles racing the generators.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			target := chain.TokenID((i * 5) % initialTokens)
			if _, _, err := f.GenerateAndCommit(target, req); err == nil {
				continue
			}
			// Rejected spends (double spends, η guard) are expected.
		}
	}()
	// Verifiers: VerifyRS on deliberately bad rings plus Stats invariant
	// checks; the snapshot must never tear (SolveFailures ≤ Solves, and
	// classified rejects ≤ verify outcomes seen so far).
	for v := 0; v < verifiers; v++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = f.VerifyRS(chain.NewTokenSet(chain.TokenID(i%initialTokens)), req)
				s := f.Stats()
				if s.SolveFailures > s.Solves {
					t.Errorf("torn Stats snapshot: failures %d > solves %d", s.SolveFailures, s.Solves)
					return
				}
				if s.Rejects() < 0 || s.VerifyAdmits < 0 {
					t.Errorf("negative verify counters: %+v", s)
					return
				}
			}
		}()
	}
	// Growth: mint new transactions and rebuild the batch partition while
	// everything above is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			err := f.UpdateLedger(func(l *chain.Ledger) error {
				b := l.BeginBlock()
				_, err := l.AddTx(b, 2)
				return err
			})
			if err != nil {
				t.Errorf("UpdateLedger: %v", err)
				return
			}
			if err := f.RefreshBatches(); err != nil {
				t.Errorf("RefreshBatches: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Post-conditions: every committed ring still verifies against the final
	// chain state, and the telemetry is consistent.
	for _, r := range l.Rings() {
		if len(r.Tokens) == 0 {
			t.Fatalf("empty ring %v committed", r.ID)
		}
	}
	s := f.Stats()
	if s.SolveFailures > s.Solves {
		t.Fatalf("final Stats torn: %+v", s)
	}
	if s.VerifyAdmits < int64(l.NumRS()) {
		t.Fatalf("%d rings on chain but only %d verify admits", l.NumRS(), s.VerifyAdmits)
	}
}

// TestSoakEpochPinnedReadersVsSnapshotter exercises the storage-backed
// stack end to end under the race detector: epoch-pinning readers
// (GenerateRS/VerifyRS), a committing writer journaling to a sharded log,
// and a snapshotter persisting pinned views — all concurrent. Asserts the
// framework epoch only moves forward, every generated ring contains its
// target, and the durable state reopens to exactly the live ledger.
func TestSoakEpochPinnedReadersVsSnapshotter(t *testing.T) {
	const (
		initialTx = 16 // ×2 outputs = 32 tokens
		readers   = 3
		iters     = 40
	)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{
		Shards: 2, Lambda: 8, SegmentBytes: 4096, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	blk := st.Ledger.BeginBlock()
	for i := 0; i < initialTx; i++ {
		if _, err := st.Ledger.AddTx(blk, 2); err != nil {
			t.Fatal(err)
		}
	}
	initialTokens := st.Ledger.NumTokens()
	f, err := New(st.Ledger, Config{
		Lambda:      8,
		Eta:         0.1,
		Headroom:    true,
		Algorithm:   Progressive,
		Randomize:   true,
		Parallelism: 2,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 3}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < iters; i++ {
				if ep := f.Epoch(); ep < last {
					t.Errorf("reader %d: epoch went backwards %d → %d", r, last, ep)
					return
				} else {
					last = ep
				}
				target := chain.TokenID((r*iters + i) % initialTokens)
				if res, gerr := f.GenerateRS(target, req); gerr == nil && !res.Tokens.Contains(target) {
					t.Errorf("reader %d: ring %v misses target %d", r, res.Tokens, target)
					return
				}
				_ = f.VerifyRS(chain.NewTokenSet(target), req)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			target := chain.TokenID((i * 3) % initialTokens)
			_, _, _ = f.GenerateAndCommit(target, req) // rejects are expected
		}
	}()
	// Snapshotter: persist a pinned view while commits keep appending.
	// Snapshot never blocks readers or the committer's journal appends.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if serr := st.Log.Snapshot(st.Ledger.View()); serr != nil {
				t.Errorf("snapshot: %v", serr)
				return
			}
		}
	}()
	wg.Wait()

	want, err := store.Digest(st.Ledger.View())
	if err != nil {
		t.Fatal(err)
	}
	wantEpoch := st.Ledger.Epoch()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, store.Options{
		Shards: 2, Lambda: 8, SegmentBytes: 4096, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := st2.Close(); cerr != nil {
			t.Fatal(cerr)
		}
	}()
	if st2.Info.Epoch != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", st2.Info.Epoch, wantEpoch)
	}
	got, err := store.Digest(st2.Ledger.View())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("durable state diverged from live ledger: %s != %s", got, want)
	}
}
