package tokenmagic

// Framework-level differential battery: the same seeded request stream —
// spends (generate→commit), batch refreshes, ledger growth — driven into a
// framework over an in-memory ledger and one over a store-backed ledger
// must produce identical observations at every step: the same rings, the
// same commit outcomes, the same batch partition, the same serialised
// chain. Then the persistent side is crashed (closed) and recovered, a new
// framework is built over the recovered ledger, and the comparison repeats.
// Persistence must be semantically invisible to the TokenMagic layer.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs"
	"tokenmagic/internal/store"
)

func diffConfig() Config {
	return Config{
		Lambda:      8,
		Eta:         0.1,
		Headroom:    true,
		Algorithm:   Progressive,
		Randomize:   true,
		Parallelism: 2,
		Metrics:     obs.NewRegistry(),
	}
}

func seedTokens(t *testing.T, l *chain.Ledger, txs int) {
	t.Helper()
	b := l.BeginBlock()
	for i := 0; i < txs; i++ {
		if _, err := l.AddTx(b, 2); err != nil {
			t.Fatal(err)
		}
	}
}

// compareFrameworks checks every observation surface the node layer reads.
func compareFrameworks(t *testing.T, mem, per *Framework, memLed, perLed *chain.Ledger) {
	t.Helper()
	dm, err := store.Digest(memLed.View())
	if err != nil {
		t.Fatal(err)
	}
	dp, err := store.Digest(perLed.View())
	if err != nil {
		t.Fatal(err)
	}
	if dm != dp {
		t.Fatalf("chain serialisation diverged: %s != %s", dm, dp)
	}
	if !reflect.DeepEqual(memLed.Rings(), perLed.Rings()) {
		t.Fatal("RS registry diverged")
	}
	bm, bp := mem.Batches(), per.Batches()
	if bm.Len() != bp.Len() {
		t.Fatalf("batch count diverged: %d != %d", bm.Len(), bp.Len())
	}
	for i := 0; i < bm.Len(); i++ {
		x, _ := bm.Batch(i)
		y, _ := bp.Batch(i)
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("batch %d diverged", i)
		}
	}
}

func TestDifferentialFrameworkPersistentVsMemory(t *testing.T) {
	req := diversity.Requirement{C: 1, L: 3}
	ctx := context.Background()
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))

		memLed := chain.NewLedger()
		seedTokens(t, memLed, 12)
		dir := t.TempDir()
		opts := store.Options{
			Shards: 1 + int(seed%3), Lambda: 8,
			SegmentBytes: 2048, SnapshotEvery: 16,
			Metrics: obs.NewRegistry(),
		}
		st, err := store.Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		seedTokens(t, st.Ledger, 12)

		mem, err := New(memLed, diffConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		per, err := New(st.Ledger, diffConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}

		for i := 0; i < 60; i++ {
			switch r := rng.Intn(10); {
			case r < 6:
				target := chain.TokenID(rng.Intn(memLed.NumTokens()))
				reqSeed := rng.Int63()
				rm, em := mem.GenerateRSSeeded(ctx, target, req, reqSeed)
				rp, ep := per.GenerateRSSeeded(ctx, target, req, reqSeed)
				if (em == nil) != (ep == nil) {
					t.Fatalf("seed %d op %d: generate outcome diverged: %v vs %v", seed, i, em, ep)
				}
				if em != nil {
					if em.Error() != ep.Error() {
						t.Fatalf("seed %d op %d: generate errors diverged: %v vs %v", seed, i, em, ep)
					}
					continue
				}
				if !rm.Tokens.Equal(rp.Tokens) {
					t.Fatalf("seed %d op %d: rings diverged: %v vs %v", seed, i, rm.Tokens, rp.Tokens)
				}
				im, cm := mem.Commit(rm.Tokens, req)
				ip, cp := per.Commit(rp.Tokens, req)
				if (cm == nil) != (cp == nil) || im != ip {
					t.Fatalf("seed %d op %d: commit diverged: (%v,%v) vs (%v,%v)", seed, i, im, cm, ip, cp)
				}
			case r < 8:
				grow := func(l *chain.Ledger) error {
					b := l.BeginBlock()
					_, gerr := l.AddTx(b, 2)
					return gerr
				}
				if uerr := mem.UpdateLedger(grow); uerr != nil {
					t.Fatal(uerr)
				}
				if uerr := per.UpdateLedger(grow); uerr != nil {
					t.Fatal(uerr)
				}
			default:
				if rerr := mem.RefreshBatches(); rerr != nil {
					t.Fatal(rerr)
				}
				if rerr := per.RefreshBatches(); rerr != nil {
					t.Fatal(rerr)
				}
			}
		}
		compareFrameworks(t, mem, per, memLed, st.Ledger)

		// Crash-and-recover the persistent side; a fresh framework over the
		// recovered ledger must be indistinguishable from the in-memory one.
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		opts.Metrics = obs.NewRegistry()
		st2, err := store.Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		per2, err := New(st2.Ledger, diffConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		compareFrameworks(t, mem, per2, memLed, st2.Ledger)

		// Spot-check the verifier surface on the recovered state: the same
		// proposals must classify identically.
		for trial := 0; trial < 10; trial++ {
			k := 1 + rng.Intn(3)
			var toks []chain.TokenID
			for len(toks) < k {
				toks = append(toks, chain.TokenID(rng.Intn(memLed.NumTokens())))
			}
			prop := chain.NewTokenSet(toks...)
			vm := mem.VerifyRS(prop, req)
			vp := per2.VerifyRS(prop, req)
			if (vm == nil) != (vp == nil) {
				t.Fatalf("seed %d: verify diverged on %v: %v vs %v", seed, prop, vm, vp)
			}
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
