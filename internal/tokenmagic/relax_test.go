package tokenmagic

import (
	"errors"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

func TestGenerateRSRelaxed(t *testing.T) {
	// 6 tokens from only 3 HTs: ℓ=6 impossible, ℓ=3 fine.
	l := chain.NewLedger()
	b := l.BeginBlock()
	for i := 0; i < 3; i++ {
		if _, err := l.AddTx(b, 2); err != nil {
			t.Fatal(err)
		}
	}
	f, err := New(l, Config{Lambda: 10, Headroom: false, Algorithm: Progressive}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Strict requirement fails outright.
	strict := diversity.Requirement{C: 1, L: 6}
	if _, err := f.GenerateRS(0, strict); err == nil {
		t.Fatal("ℓ=6 should be infeasible")
	}

	// Relaxation ladder (decrement ℓ) reaches a feasible requirement.
	res, achieved, err := f.GenerateRSRelaxed(0, strict, RelaxationPolicy{LStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if achieved.L >= strict.L {
		t.Fatalf("achieved %v should be weaker than requested %v", achieved, strict)
	}
	if !diversity.SatisfiesTokens(res.Tokens, l.OriginFunc(), achieved) {
		t.Fatal("result must satisfy the achieved requirement")
	}
	if !res.Tokens.Contains(0) {
		t.Fatal("target missing")
	}
}

func TestGenerateRSRelaxedExhausted(t *testing.T) {
	// Single-HT universe: nothing helps.
	l := chain.NewLedger()
	b := l.BeginBlock()
	if _, err := l.AddTx(b, 4); err != nil {
		t.Fatal(err)
	}
	f, err := New(l, Config{Lambda: 10, Headroom: false, Algorithm: Progressive}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = f.GenerateRSRelaxed(0, diversity.Requirement{C: 1, L: 4}, RelaxationPolicy{LStep: 1, MinL: 2, MaxSteps: 5})
	if err == nil {
		t.Fatal("ladder must exhaust on a single-HT universe")
	}
}

func TestGenerateRSRelaxedNoPolicy(t *testing.T) {
	// A policy that cannot change the requirement stops immediately.
	l := chain.NewLedger()
	b := l.BeginBlock()
	if _, err := l.AddTx(b, 4); err != nil {
		t.Fatal(err)
	}
	f, err := New(l, Config{Lambda: 10, Headroom: false, Algorithm: Progressive}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = f.GenerateRSRelaxed(0, diversity.Requirement{C: 1, L: 4}, RelaxationPolicy{})
	if err == nil {
		t.Fatal("empty policy must fail on infeasible input")
	}
}

func TestGenerateRSRelaxedImmediateSuccess(t *testing.T) {
	l := chain.NewLedger()
	b := l.BeginBlock()
	for i := 0; i < 5; i++ {
		if _, err := l.AddTx(b, 1); err != nil {
			t.Fatal(err)
		}
	}
	f, err := New(l, Config{Lambda: 10, Headroom: false, Algorithm: Progressive}, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 2, L: 2}
	res, achieved, err := f.GenerateRSRelaxed(0, req, RelaxationPolicy{LStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if achieved != req {
		t.Fatalf("achieved %v, want the original %v", achieved, req)
	}
	if res.Size() < 2 {
		t.Fatalf("size = %d", res.Size())
	}
}

func TestGenerateRSRelaxedPropagatesHardErrors(t *testing.T) {
	l := chain.NewLedger()
	b := l.BeginBlock()
	if _, err := l.AddTx(b, 2); err != nil {
		t.Fatal(err)
	}
	f, err := New(l, Config{Lambda: 10, Headroom: false, Algorithm: Progressive}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown target is a hard error, not a relaxation case.
	_, _, err = f.GenerateRSRelaxed(999, diversity.Requirement{C: 1, L: 2}, RelaxationPolicy{LStep: 1})
	if err == nil || errors.Is(err, ErrLiveness) {
		t.Fatalf("err = %v, want a hard lookup error", err)
	}
}
