package tokenmagic

// Property-based tests over random seeded ledgers and requirements. Three
// guarantees of the framework are checked on arbitrary instances rather
// than hand-built examples:
//
//  1. every generated ring satisfies its recursive (c, ℓ)-diversity
//     requirement (with headroom, Theorem 6.4's sufficient condition);
//  2. a chain grown through GenerateAndCommit resists the adversary's
//     chain-reaction analysis — no ring is traced, no HT revealed — the
//     operational form of the non-eliminated constraint;
//  3. sequential and parallel executors return byte-identical rings for the
//     same seed, at every worker count, StopAfter setting and algorithm.
//
// Everything is driven by per-trial *rand.Rand streams with fixed seeds, so
// a failure reproduces by trial number.

import (
	"context"
	"math/rand"
	"testing"

	"tokenmagic/internal/adversary"
	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/dtrs"
)

// propLedger builds a random single-block ledger: 4–13 transactions with
// 1–3 outputs each, so batches have mixed HT multiplicities.
func propLedger(tb testing.TB, rng *rand.Rand) *chain.Ledger {
	tb.Helper()
	l := chain.NewLedger()
	b := l.BeginBlock()
	nTx := 4 + rng.Intn(10)
	for i := 0; i < nTx; i++ {
		if _, err := l.AddTx(b, 1+rng.Intn(3)); err != nil {
			tb.Fatal(err)
		}
	}
	return l
}

// propReq draws a requirement from the range the paper's experiments use:
// c ∈ {0.5, 1, 1.5, 2}, ℓ ∈ {2, 3}.
func propReq(rng *rand.Rand) diversity.Requirement {
	return diversity.Requirement{
		C: 0.5 + 0.5*float64(rng.Intn(4)),
		L: 2 + rng.Intn(2),
	}
}

var propAlgorithms = []Algorithm{Progressive, Game, Smallest, RandomPick}

// Property 1: whatever the instance, an accepted GenerateRS result contains
// its target and satisfies both the declared diversity requirement and the
// closed-form DTRS condition.
func TestPropGeneratedRingsSatisfyDiversity(t *testing.T) {
	const trials = 30
	generated := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		l := propLedger(t, rng)
		req := propReq(rng)
		cfg := Config{
			Lambda:    l.NumTokens(),
			Headroom:  true,
			Algorithm: propAlgorithms[rng.Intn(len(propAlgorithms))],
			Randomize: rng.Intn(2) == 0,
		}
		f, err := New(l, cfg, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		target := chain.TokenID(rng.Intn(l.NumTokens()))
		res, err := f.GenerateRS(target, req)
		if err != nil {
			continue // infeasible instance: nothing to assert
		}
		generated++
		if !res.Tokens.Contains(target) {
			t.Fatalf("trial %d (%v): ring %v misses target %d", trial, cfg.Algorithm, res.Tokens, target)
		}
		origin := l.OriginFunc()
		if !diversity.SatisfiesTokens(res.Tokens, origin, req) {
			t.Fatalf("trial %d (%v): ring %v fails %v", trial, cfg.Algorithm, res.Tokens, req)
		}
		if !diversity.SatisfiesTokens(res.Tokens, origin, req.WithHeadroom()) {
			t.Fatalf("trial %d (%v): headroom solve returned ring failing %v", trial, cfg.Algorithm, req.WithHeadroom())
		}
		if !dtrs.AllSatisfyClosedForm(res.Tokens, 1, origin, req) {
			t.Fatalf("trial %d (%v): a DTRS of %v fails %v", trial, cfg.Algorithm, res.Tokens, req)
		}
	}
	if generated < trials/3 {
		t.Fatalf("property vacuous: only %d/%d trials produced a ring", generated, trials)
	}
}

// Property 2: a chain grown through the full generate→verify→commit path
// resists chain-reaction analysis. Every declared ℓ is ≥ 2, so no committed
// ring may be traced to a single token, no HT may be revealed, and at most
// one token per ring may be proven consumed.
func TestPropCommittedChainResistsChainReaction(t *testing.T) {
	const trials = 12
	committedTotal := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		l := propLedger(t, rng)
		req := propReq(rng)
		cfg := Config{
			Lambda:    l.NumTokens(),
			Eta:       0.1,
			Headroom:  true,
			Algorithm: Progressive,
			Randomize: true,
		}
		f, err := New(l, cfg, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		spent := map[chain.TokenID]bool{}
		attempts := 2 + rng.Intn(4)
		for a := 0; a < attempts; a++ {
			target := chain.TokenID(rng.Intn(l.NumTokens()))
			if spent[target] {
				continue
			}
			if _, _, err := f.GenerateAndCommit(target, req); err == nil {
				spent[target] = true
				committedTotal++
			}
		}
		origin := l.OriginFunc()
		analysis := adversary.ChainReaction(l.Rings(), nil, origin)
		if len(analysis.Consumed) > len(l.Rings()) {
			t.Fatalf("trial %d: %d tokens proven consumed by %d rings", trial, len(analysis.Consumed), len(l.Rings()))
		}
		for _, o := range analysis.Observations {
			if o.Traced {
				t.Fatalf("trial %d: ring %v traced to a single token", trial, o.Ring)
			}
			if o.HTKnown {
				t.Fatalf("trial %d: ring %v leaks its historical transaction", trial, o.Ring)
			}
			if len(o.Remaining) < req.L {
				t.Fatalf("trial %d: ring %v anonymity set %d < ℓ=%d", trial, o.Ring, len(o.Remaining), req.L)
			}
		}
	}
	if committedTotal == 0 {
		t.Fatal("property vacuous: no trial committed a ring")
	}
}

// Property 3: the parallel executor is an implementation detail — for any
// seed, instance, algorithm and StopAfter budget, every worker count yields
// the identical ring (or the identical failure).
func TestPropParallelSequentialEquivalence(t *testing.T) {
	const trials = 15
	matchedRings := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		l := propLedger(t, rng)
		req := propReq(rng)
		algo := propAlgorithms[rng.Intn(len(propAlgorithms))]
		stopAfter := rng.Intn(3) // 0 = full Algorithm 1
		target := chain.TokenID(rng.Intn(l.NumTokens()))
		seed := rng.Int63()

		mk := func(workers int) *Framework {
			f, err := New(l, Config{
				Lambda:      l.NumTokens(),
				Headroom:    true,
				Algorithm:   algo,
				Randomize:   true,
				Parallelism: workers,
				StopAfter:   stopAfter,
			}, rand.New(rand.NewSource(int64(trial))))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return f
		}
		seqRes, seqErr := mk(1).GenerateRSSeeded(context.Background(), target, req, seed)
		for _, workers := range []int{2, 4, 8} {
			parRes, parErr := mk(workers).GenerateRSSeeded(context.Background(), target, req, seed)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("trial %d (%v, stop=%d, w=%d): seq err %v vs par err %v",
					trial, algo, stopAfter, workers, seqErr, parErr)
			}
			if seqErr != nil {
				continue
			}
			if !seqRes.Tokens.Equal(parRes.Tokens) {
				t.Fatalf("trial %d (%v, stop=%d, w=%d): seq ring %v != par ring %v",
					trial, algo, stopAfter, workers, seqRes.Tokens, parRes.Tokens)
			}
			matchedRings++
		}
	}
	if matchedRings == 0 {
		t.Fatal("property vacuous: no trial generated a ring")
	}
}
