package tokenmagic

// The parallel solve executor behind Algorithm 1's candidate sampling.
//
// GenerateRS sweeps one DA-MS solve per batch token; the solves are
// independent, so they fan out over a bounded worker pool
// (Config.Parallelism). Three properties make the fan-out safe to rely on:
//
//  1. Determinism. Every request owns a 64-bit seed; the rng stream each
//     candidate solve consumes (only TM_R draws) and the stream behind the
//     final uniform pick are derived from that seed with a SplitMix64-style
//     split, keyed by candidate index. No stream is shared across
//     goroutines, so the scheduler cannot influence any draw and a request
//     replays byte-identically at every worker count — the contract the
//     property and fuzz suites (prop_test.go, fuzz_test.go) enforce.
//  2. Ordered merge. Results are gathered by candidate index, so the merged
//     candidate list — and therefore the uniform pick — is identical to the
//     sequential executor's.
//  3. Cancellation. Workers solve under a context; when Config.StopAfter
//     satisfying candidates are decided (in index order), or when the
//     caller's context dies, in-flight sibling solves are cancelled and
//     abandon at their next loop boundary.

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs/trace"
	"tokenmagic/internal/selector"
)

// Reserved stream tags for DeriveSeed. Candidate solves use their index as
// the stream, so the reserved tags sit at the top of the uint64 space where
// no batch can reach them.
const (
	// pickStream derives the rng behind Algorithm 1's final uniform pick.
	pickStream = ^uint64(0)
	// soloStream derives the rng for the single-solve (Randomize off) path.
	soloStream = ^uint64(1)
	// ReplayStreamBase is where callers replaying whole request batches
	// (internal/sim) start their per-request streams: request i uses
	// DeriveSeed(batchSeed, ReplayStreamBase+i), far away from both the
	// candidate-index streams and the reserved tags.
	ReplayStreamBase = uint64(1) << 32
)

// DeriveSeed splits one request seed into the seed of an independent,
// deterministic sub-stream. The mix is the SplitMix64 finaliser over the
// seed offset by the stream's multiple of the golden-ratio increment: the
// standard recipe for statistically independent fixed-seed streams, and a
// pure function, so replaying a request re-derives the identical streams no
// matter how many workers race over the candidates.
//
//tmlint:hotpath
func DeriveSeed(seed int64, stream uint64) int64 {
	z := uint64(seed) + (stream+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// streamRand materialises a derived sub-stream as a *rand.Rand. This is the
// only construction site for the per-candidate generators; seed quality is
// decided where the request seed comes from (the injected rng, crypto-seeded
// by default via NewSamplingRand).
func streamRand(seed int64, stream uint64) *rand.Rand {
	//lint:ignore cryptorand derived per-candidate stream: the request seed is drawn from the injected rng, whose construction site (NewSamplingRand / caller) decides seed quality
	return rand.New(rand.NewSource(DeriveSeed(seed, stream)))
}

// parallelism resolves Config.Parallelism: 0 means one worker per available
// CPU, 1 forces the sequential executor, anything else is taken as given.
func (f *Framework) parallelism() int {
	if f.cfg.Parallelism > 0 {
		return f.cfg.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Candidate slot states. A slot is decided once its solve finished (or was
// skipped); the prefix pointer below only advances over decided slots, which
// is what makes StopAfter deterministic under arbitrary completion order.
const (
	candPending uint8 = iota
	candUnsat         // solve failed, was cancelled, or ring misses the target
	candSat           // eligible candidate containing the target
)

// solveCandidate runs Algorithm 1 lines 3–5 for one batch token: build the
// modular problem, solve it (TM_R gets its derived stream), and keep the
// result only when it contains the consuming token.
func (f *Framework) solveCandidate(ctx context.Context, e *fwEpoch, tok, target chain.TokenID, req diversity.Requirement, seed int64, idx int) (selector.Result, bool) {
	p, u, err := f.problemFor(e, tok, req)
	if err != nil {
		return selector.Result{}, false
	}
	var rng *rand.Rand
	if f.cfg.Algorithm == RandomPick {
		rng = streamRand(seed, uint64(idx))
	}
	res, err := f.solve(ctx, e, p, u, tok, req, rng)
	if err != nil || !res.Tokens.Contains(target) {
		return selector.Result{}, false
	}
	return res, true
}

// solveCandidateSpan wraps one candidate solve in a "candidate" span of the
// request's trace, recording which worker ran it and the ring size it found.
// The executor stays trace-agnostic below this point: with no trace in ctx
// the span is a no-op and the only cost is one context lookup.
func (f *Framework) solveCandidateSpan(ctx context.Context, e *fwEpoch, worker int, tok, target chain.TokenID, req diversity.Requirement, seed int64, idx int) (selector.Result, bool) {
	ctx, sp := trace.StartSpan(ctx, "candidate")
	defer sp.End()
	sp.AnnotateInt("worker", int64(worker))
	res, ok := f.solveCandidate(ctx, e, tok, target, req, seed, idx)
	if ok {
		sp.AnnotateInt("ring_size", int64(res.Size()))
	}
	return res, ok
}

// sampleCandidatesTraced wraps the candidate sweep in a "sample" span carrying
// the request seed and the universe/candidate counts — the per-request view of
// Algorithm 1 lines 2–6.
func (f *Framework) sampleCandidatesTraced(ctx context.Context, e *fwEpoch, universe chain.TokenSet, target chain.TokenID, req diversity.Requirement, seed int64) ([]selector.Result, error) {
	ctx, sp := trace.StartSpan(ctx, "sample")
	defer sp.End()
	// The seed is per-request context, kept at trace level so the span's
	// fixed annotation slots stay within budget.
	trace.FromContext(ctx).AnnotateInt("seed", seed)
	sp.AnnotateInt("universe", int64(len(universe)))
	candidates, err := f.sampleCandidates(ctx, e, universe, target, req, seed)
	sp.AnnotateInt("candidates", int64(len(candidates)))
	return candidates, err
}

// sampleCandidates runs Algorithm 1 lines 2–6: one solve per batch token,
// keeping the candidates that contain the consuming token, merged in batch
// token order. With one worker it runs in-place; otherwise the solves fan
// out over the pool. Both paths return byte-identical slices for the same
// seed. A non-nil error is only ever the caller's context failing.
func (f *Framework) sampleCandidates(ctx context.Context, e *fwEpoch, universe chain.TokenSet, target chain.TokenID, req diversity.Requirement, seed int64) ([]selector.Result, error) {
	n := len(universe)
	if n == 0 {
		return nil, ctx.Err()
	}
	workers := f.parallelism()
	if workers > n {
		workers = n
	}
	results := make([]selector.Result, n)
	states := make([]uint8, n)

	if workers <= 1 {
		sat := 0
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if res, ok := f.solveCandidateSpan(ctx, e, 0, universe[i], target, req, seed, i); ok {
				results[i], states[i] = res, candSat
				sat++
				if f.cfg.StopAfter > 0 && sat >= f.cfg.StopAfter {
					break
				}
			} else {
				states[i] = candUnsat
			}
		}
		return gatherCandidates(results, states, f.cfg.StopAfter), nil
	}

	// Parallel path. cancel() fires either when the caller's context dies or
	// when the decided prefix proves the first StopAfter satisfying
	// candidates are in hand; cancelled workers leave their slot pending,
	// which is fine — a pending slot can only sit beyond the prefix that
	// triggered the stop, and the gather below never reads past it.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu      sync.Mutex
		decided int // slots [0, decided) are all non-pending
		sat     int // satisfying slots within [0, decided)
	)
	finish := func(i int, res selector.Result, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if ok {
			results[i], states[i] = res, candSat
		} else {
			states[i] = candUnsat
		}
		for decided < n && states[decided] != candPending {
			if states[decided] == candSat {
				sat++
				if f.cfg.StopAfter > 0 && sat >= f.cfg.StopAfter {
					decided++
					cancel() // first StopAfter candidates decided: stop siblings
					return
				}
			}
			decided++
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				res, ok := f.solveCandidateSpan(cctx, e, w, universe[i], target, req, seed, i)
				finish(i, res, ok)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err // the caller's context died, not a StopAfter stop
	}
	return gatherCandidates(results, states, f.cfg.StopAfter), nil
}

// gatherCandidates merges the decided slots in candidate order, truncating
// at the StopAfter budget so sequential and parallel executors agree even
// when a fast sibling decided extra slots before cancellation landed.
func gatherCandidates(results []selector.Result, states []uint8, stopAfter int) []selector.Result {
	var out []selector.Result
	for i, s := range states {
		if s != candSat {
			continue
		}
		out = append(out, results[i])
		if stopAfter > 0 && len(out) >= stopAfter {
			break
		}
	}
	return out
}
