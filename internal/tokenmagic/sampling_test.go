package tokenmagic

import (
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

func samplingLedger(tb testing.TB, nTx int) *chain.Ledger {
	tb.Helper()
	l := chain.NewLedger()
	b := l.BeginBlock()
	for i := 0; i < nTx; i++ {
		if _, err := l.AddTx(b, 2); err != nil {
			tb.Fatal(err)
		}
	}
	return l
}

// Parallel candidate sampling must stay deterministic per seed: the worker
// pool only fills independent slots; the random pick consumes the rng in a
// fixed order.
func TestRandomizedSamplingDeterministic(t *testing.T) {
	run := func() chain.TokenSet {
		l := samplingLedger(t, 12)
		cfg := Config{Lambda: 100, Headroom: true, Algorithm: Progressive, Randomize: true}
		f, err := New(l, cfg, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.GenerateRS(4, diversity.Requirement{C: 1, L: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Tokens
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatalf("parallel sampling nondeterministic: %v vs %v", a, b)
	}
}

// TM_R's solver consumes randomness, which used to force sampling onto the
// sequential path; with per-candidate derived streams it parallelises like
// every other algorithm and must still produce a target-bearing ring.
func TestRandomizedSamplingWithRandomPick(t *testing.T) {
	l := samplingLedger(t, 10)
	cfg := Config{Lambda: 100, Headroom: true, Algorithm: RandomPick, Randomize: true}
	f, err := New(l, cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.GenerateRS(3, diversity.Requirement{C: 1, L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tokens.Contains(3) {
		t.Fatalf("ring %v missing target", res.Tokens)
	}
}

// The decomposition cache must refresh after every commit: a committed ring
// becomes a super module the very next solve.
func TestDecompositionCacheInvalidation(t *testing.T) {
	l := samplingLedger(t, 10)
	f, err := New(l, Config{Lambda: 100, Headroom: true, Algorithm: Progressive}, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 3}
	first, err := f.GenerateRS(0, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Commit(first.Tokens, req); err != nil {
		t.Fatal(err)
	}
	// Spending a token inside the committed ring must now produce a
	// superset of it (the configuration's superset-or-disjoint rule): the
	// committed ring is the target's mandatory module.
	inner := first.Tokens[1]
	second, err := f.GenerateRS(inner, req)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Tokens.SubsetOf(second.Tokens) {
		t.Fatalf("stale decomposition: new ring %v does not contain committed super %v",
			second.Tokens, first.Tokens)
	}
}

func BenchmarkCandidateSampling(b *testing.B) {
	l := samplingLedger(b, 40)
	cfg := Config{Lambda: 200, Headroom: true, Algorithm: Progressive, Randomize: true}
	f, err := New(l, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.GenerateRS(0, req); err != nil {
			b.Fatal(err)
		}
	}
}
