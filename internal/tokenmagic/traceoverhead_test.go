package tokenmagic

import (
	"context"
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"

	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs/trace"
)

// traceBenchFramework builds the λ=200 randomized GenerateRS workload the
// overhead measurements run against — the serving path's hottest shape (one
// candidate plus one solve span per batch token).
func traceBenchFramework(tb testing.TB) (*Framework, diversity.Requirement) {
	tb.Helper()
	l := samplingLedger(tb, 40)
	cfg := Config{Lambda: 200, Headroom: true, Algorithm: Progressive, Randomize: true}
	f, err := New(l, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		tb.Fatal(err)
	}
	return f, diversity.Requirement{C: 1, L: 3}
}

// benchGenerateRSTraced measures GenerateRSContext with the default trace
// collector forced to the given state and the request carrying a live trace
// (the serving path: InstrumentHTTP roots one per request). Run the pair
//
//	go test ./internal/tokenmagic -bench TraceOverhead -benchtime 2s
//
// to compare: with the collector disabled every StartSpan returns the
// zero-value no-op span, so "Disabled" must sit within noise of a build
// without any instrumentation, and "Enabled" is the full recording cost.
//
// Caveat: on a shared machine the two benchmarks run minutes apart and
// drift between them easily exceeds the signal. TestTraceOverheadPaired
// below is the measurement of record — it interleaves the two states in
// order-balanced rounds so drift cancels in the median.
func benchGenerateRSTraced(b *testing.B, enabled bool) {
	b.Helper()
	col := trace.Default()
	prev := col.Enabled()
	col.SetEnabled(enabled)
	defer col.SetEnabled(prev)

	f, req := traceBenchFramework(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, tr := trace.New(context.Background(), col, "bench.generate")
		if _, err := f.GenerateRSContext(ctx, 0, req); err != nil {
			b.Fatal(err)
		}
		tr.Finish("ok")
	}
}

func BenchmarkGenerateRSTraceOverheadDisabled(b *testing.B) {
	benchGenerateRSTraced(b, false)
}

func BenchmarkGenerateRSTraceOverheadEnabled(b *testing.B) {
	benchGenerateRSTraced(b, true)
}

// TestTraceOverheadPaired is the enabled-tracing overhead acceptance check:
// the median enabled/disabled ratio over order-balanced paired rounds must
// stay ≤1.05. Each round times K requests in both collector states,
// alternating which state goes first, so monotonic machine drift (shared
// runners slow down on the minute scale by more than the signal) biases
// alternate rounds in opposite directions and cancels in the median.
//
// The run takes several seconds, so it is opt-in: TM_PERF=1 go test
// ./internal/tokenmagic -run TraceOverheadPaired -v
func TestTraceOverheadPaired(t *testing.T) {
	if os.Getenv("TM_PERF") == "" {
		t.Skip("perf measurement; set TM_PERF=1 to run")
	}
	col := trace.Default()
	prev := col.Enabled()
	defer col.SetEnabled(prev)

	f, req := traceBenchFramework(t)
	measure := func(enabled bool, ops int) time.Duration {
		col.SetEnabled(enabled)
		start := time.Now()
		for i := 0; i < ops; i++ {
			ctx, tr := trace.New(context.Background(), col, "bench.generate")
			if _, err := f.GenerateRSContext(ctx, 0, req); err != nil {
				t.Fatal(err)
			}
			tr.Finish("ok")
		}
		return time.Since(start)
	}
	measure(true, 50) // warm both paths
	measure(false, 50)

	const K, R = 100, 12
	ratios := make([]float64, 0, R)
	for r := 0; r < R; r++ {
		var d, e time.Duration
		if r%2 == 0 {
			d = measure(false, K)
			e = measure(true, K)
		} else {
			e = measure(true, K)
			d = measure(false, K)
		}
		ratios = append(ratios, float64(e)/float64(d))
	}
	sort.Float64s(ratios)
	median := (ratios[R/2-1] + ratios[R/2]) / 2
	t.Logf("enabled/disabled ratios (sorted): %.3v", ratios)
	t.Logf("median overhead: %+.2f%%", (median-1)*100)
	if median > 1.05 {
		t.Errorf("enabled tracing overhead %+.2f%% exceeds the 5%% budget", (median-1)*100)
	}
}
