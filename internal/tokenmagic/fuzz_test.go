package tokenmagic

// Native fuzzing over the parallel executor's equivalence contract: for any
// (seed, ledger shape, requirement, worker count, StopAfter budget) the
// parallel executor must return exactly the sequential executor's result.
// The corpus seeds cover each algorithm; the mutator then explores instance
// space. CI runs this as a -fuzztime smoke on every push.

import (
	"context"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
)

func FuzzParallelEquivalence(f *testing.F) {
	// seed, nTx, outs, cTenths, l, workers, stopAfter, algo, targetSel
	f.Add(int64(1), uint8(6), uint8(2), uint8(10), uint8(3), uint8(4), uint8(0), uint8(0), uint8(3))
	f.Add(int64(-7), uint8(9), uint8(1), uint8(5), uint8(2), uint8(8), uint8(1), uint8(1), uint8(0))
	f.Add(int64(42), uint8(4), uint8(3), uint8(20), uint8(2), uint8(2), uint8(2), uint8(2), uint8(7))
	f.Add(int64(1<<40), uint8(12), uint8(2), uint8(15), uint8(3), uint8(6), uint8(0), uint8(3), uint8(11))

	f.Fuzz(func(t *testing.T, seed int64, nTx, outs, cTenths, lreq, workers, stopAfter, algo, targetSel uint8) {
		// Normalise the raw bytes into a small, always-valid instance so
		// every execution exercises the executor rather than input
		// validation.
		ledger := chain.NewLedger()
		blk := ledger.BeginBlock()
		txs := 3 + int(nTx%8)
		for i := 0; i < txs; i++ {
			if _, err := ledger.AddTx(blk, 1+int(outs%3)); err != nil {
				t.Fatal(err)
			}
		}
		req := diversity.Requirement{
			C: 0.5 + float64(cTenths%21)/10, // 0.5 … 2.5
			L: 2 + int(lreq%3),              // 2 … 4
		}
		algorithm := []Algorithm{Progressive, Game, Smallest, RandomPick}[algo%4]
		target := chain.TokenID(int(targetSel) % ledger.NumTokens())
		par := 2 + int(workers%7) // 2 … 8

		mk := func(p int) *Framework {
			fw, err := New(ledger, Config{
				Lambda:      ledger.NumTokens(),
				Headroom:    true,
				Algorithm:   algorithm,
				Randomize:   true,
				Parallelism: p,
				StopAfter:   int(stopAfter % 4),
			}, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			return fw
		}
		seqRes, seqErr := mk(1).GenerateRSSeeded(context.Background(), target, req, seed)
		parRes, parErr := mk(par).GenerateRSSeeded(context.Background(), target, req, seed)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("error divergence at %d workers: seq %v vs par %v", par, seqErr, parErr)
		}
		if seqErr != nil {
			return
		}
		if !seqRes.Tokens.Equal(parRes.Tokens) {
			t.Fatalf("ring divergence at %d workers: seq %v vs par %v", par, seqRes.Tokens, parRes.Tokens)
		}
		if !seqRes.Tokens.Contains(target) {
			t.Fatalf("ring %v misses target %d", seqRes.Tokens, target)
		}
	})
}
