package tokenmagic

import (
	"errors"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs"
)

// catchupLedger builds a one-block chain of n 2-output txs.
func catchupLedger(t *testing.T, txs int) *chain.Ledger {
	t.Helper()
	l := chain.NewLedger()
	b := l.BeginBlock()
	for i := 0; i < txs; i++ {
		if _, err := l.AddTx(b, 2); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// TestReadersCatchUpWithExternalAppends pins the semantics that make one
// ledger shareable between a framework and other writers (a second
// framework, a miner, a recovered store): when the ledger moves outside the
// framework, the next read-side call resyncs instead of answering from the
// stale pinned epoch. A stale VerifyRS would admit rings that partially
// overlap the foreign ring; a stale GenerateRS would produce them.
func TestReadersCatchUpWithExternalAppends(t *testing.T) {
	led := catchupLedger(t, 8)
	f, err := New(led, Config{
		Lambda: led.NumTokens(), Eta: 0, Headroom: true,
		Algorithm: Progressive, Metrics: obs.NewRegistry(),
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}

	// Foreign append: a ring the framework did not commit.
	foreign := chain.NewTokenSet(0, 1, 2, 3)
	if _, err := led.AppendRS(foreign, 1, 3); err != nil {
		t.Fatal(err)
	}

	// A ring that contains part of the foreign ring but not all of it
	// violates the practical configuration; only a caught-up verifier can
	// see that.
	overlap := chain.NewTokenSet(0, 4, 5, 6)
	if err := f.VerifyRS(overlap, diversity.Requirement{C: 1, L: 3}); !errors.Is(err, ErrConfig) {
		t.Fatalf("VerifyRS after external append: got %v, want ErrConfig", err)
	}

	// Generation must select against the live chain too: any ring it emits
	// has to contain-or-avoid the foreign ring, so committing it straight
	// away succeeds.
	res, err := f.GenerateRS(chain.TokenID(5), diversity.Requirement{C: 1, L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !foreign.SubsetOf(res.Tokens) && !foreign.Disjoint(res.Tokens) {
		t.Fatalf("generated ring %v partially overlaps foreign ring %v", res.Tokens, foreign)
	}
	if _, err := f.Commit(res.Tokens, diversity.Requirement{C: 1, L: 3}); err != nil {
		t.Fatalf("committing a freshly generated ring failed: %v", err)
	}
}

// TestGuardsCountForeignRings pins the liveness accounting side of the same
// contract: η bookkeeping is rebuilt from the chain, so rings appended
// outside the framework weigh into the μ ≤ i − η(|T|−i) bound exactly as a
// Step-3 miner would count them. (The pre-epoch framework tracked only its
// own commits, so a permissive chain's zero-mixin singletons were invisible
// to the guard and it admitted rings past the paper's bound.)
func TestGuardsCountForeignRings(t *testing.T) {
	led := catchupLedger(t, 8)
	f, err := New(led, Config{
		Lambda: led.NumTokens(), Eta: 0.5, Headroom: true,
		Algorithm: Progressive, Metrics: obs.NewRegistry(),
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// A zero-mixin singleton lands directly on the chain: token 0 is now
	// provably consumed, so the batch's μ is already 1.
	if _, err := led.AppendRS(chain.NewTokenSet(0), 10, 1); err != nil {
		t.Fatal(err)
	}
	// A diverse ring containing the consumed token keeps μ = 1 with i = 2:
	// bound = 2 − 0.5·(16−2) = −5 → clamped 0 < μ. An honest miner rejects;
	// a guard blind to the singleton would admit (it would see i = 1, μ = 0).
	ring := chain.NewTokenSet(0, 2, 4, 6, 8)
	err = f.VerifyRS(ring, diversity.Requirement{C: 1, L: 3})
	if !errors.Is(err, ErrLiveness) {
		t.Fatalf("VerifyRS over a chain with a foreign singleton: got %v, want ErrLiveness", err)
	}
}
