// Package rsgraph models the bipartite structure between ring signatures and
// tokens that chain-reaction analysis exploits. An "assignment" in this
// package is what the paper calls a token-RS combination (Definition 6): one
// consumed token per ring signature with no token consumed twice — a system
// of distinct representatives, equivalently a matching that saturates every
// ring. The paper's #P-hardness proof reduces counting such combinations to
// counting perfect matchings, so exact routines here are exponential by
// nature; they carry explicit work caps and fail loudly when exceeded.
package rsgraph

import (
	"errors"
	"fmt"
	"sort"

	"tokenmagic/internal/chain"
)

// Ring is a ring signature viewed purely as its token set plus identity.
type Ring struct {
	ID     chain.RSID
	Tokens chain.TokenSet
}

// Instance is a fixed collection of rings to analyse together, usually the
// related RS set of a candidate ring plus the candidate itself.
type Instance struct {
	Rings []Ring
}

// NewInstance copies the given rings into an Instance.
func NewInstance(rings []Ring) *Instance {
	out := &Instance{Rings: make([]Ring, len(rings))}
	copy(out.Rings, rings)
	return out
}

// FromRecords adapts ledger records into an Instance.
func FromRecords(records []chain.RingRecord) *Instance {
	inst := &Instance{Rings: make([]Ring, len(records))}
	for i, r := range records {
		inst.Rings[i] = Ring{ID: r.ID, Tokens: r.Tokens}
	}
	return inst
}

// Assignment maps ring index (position in Instance.Rings) to the token it
// consumes in one token-RS combination.
type Assignment []chain.TokenID

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// Errors from exact enumeration.
var (
	ErrWorkCapExceeded = errors.New("rsgraph: combination enumeration exceeded work cap")
	ErrNoAssignment    = errors.New("rsgraph: no valid token-RS combination exists")
)

// EnumOptions bounds exact enumeration so callers cannot hang on #P-sized
// inputs by accident.
type EnumOptions struct {
	// MaxCombinations caps how many complete combinations are produced.
	// 0 means DefaultMaxCombinations.
	MaxCombinations int
	// MaxSteps caps backtracking node expansions. 0 means DefaultMaxSteps.
	MaxSteps int
}

// Enumeration caps. Exact analysis is meant for the small-scale experiments
// (Figure 4 uses ~20 tokens); production selection uses the closed-form
// Theorem 6.1 path instead.
const (
	DefaultMaxCombinations = 1 << 20
	DefaultMaxSteps        = 1 << 24
)

func (o EnumOptions) maxCombinations() int {
	if o.MaxCombinations > 0 {
		return o.MaxCombinations
	}
	return DefaultMaxCombinations
}

func (o EnumOptions) maxSteps() int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return DefaultMaxSteps
}

// Combinations enumerates every token-RS combination of the instance,
// invoking yield for each. yield may return false to stop early (not an
// error). Rings are assigned in ascending order of ring size, which prunes
// dramatically on the paper's workloads; the emitted Assignment is always
// indexed by the original ring order.
func (in *Instance) Combinations(opts EnumOptions, yield func(Assignment) bool) error {
	n := len(in.Rings)
	if n == 0 {
		yield(Assignment{})
		return nil
	}
	// Order rings by increasing degree for fail-first search.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(in.Rings[order[a]].Tokens) < len(in.Rings[order[b]].Tokens)
	})

	used := make(map[chain.TokenID]bool)
	assign := make(Assignment, n)
	for i := range assign {
		assign[i] = chain.NoToken
	}
	steps := 0
	emitted := 0
	stopped := false

	var rec func(depth int) error
	rec = func(depth int) error {
		if stopped {
			return nil
		}
		steps++
		if steps > opts.maxSteps() {
			return fmt.Errorf("%w: steps > %d", ErrWorkCapExceeded, opts.maxSteps())
		}
		if depth == n {
			emitted++
			if emitted > opts.maxCombinations() {
				return fmt.Errorf("%w: combinations > %d", ErrWorkCapExceeded, opts.maxCombinations())
			}
			if !yield(assign.Clone()) {
				stopped = true
			}
			return nil
		}
		ri := order[depth]
		for _, t := range in.Rings[ri].Tokens {
			if used[t] {
				continue
			}
			used[t] = true
			assign[ri] = t
			if err := rec(depth + 1); err != nil {
				return err
			}
			used[t] = false
			assign[ri] = chain.NoToken
			if stopped {
				return nil
			}
		}
		return nil
	}
	return rec(0)
}

// AllCombinations collects every combination into a slice. Prefer
// Combinations when streaming suffices.
func (in *Instance) AllCombinations(opts EnumOptions) ([]Assignment, error) {
	var out []Assignment
	err := in.Combinations(opts, func(a Assignment) bool {
		out = append(out, a)
		return true
	})
	return out, err
}

// HasAssignment reports whether at least one token-RS combination exists,
// i.e. the rings admit a system of distinct representatives. Unlike full
// enumeration this is polynomial: it is a bipartite matching feasibility
// check via augmenting paths (Hall's condition made constructive).
func (in *Instance) HasAssignment() bool {
	m, ok := in.maximumMatching()
	_ = m
	return ok
}

// maximumMatching runs Kuhn's augmenting path algorithm; returns the
// matching (ring index → token) and whether it saturates all rings.
func (in *Instance) maximumMatching() (map[int]chain.TokenID, bool) {
	matchTok := make(map[chain.TokenID]int) // token -> ring index
	matched := 0
	var try func(ri int, seen map[chain.TokenID]bool) bool
	try = func(ri int, seen map[chain.TokenID]bool) bool {
		for _, t := range in.Rings[ri].Tokens {
			if seen[t] {
				continue
			}
			seen[t] = true
			if prev, ok := matchTok[t]; !ok || try(prev, seen) {
				matchTok[t] = ri
				return true
			}
		}
		return false
	}
	for ri := range in.Rings {
		if try(ri, make(map[chain.TokenID]bool)) {
			matched++
		}
	}
	out := make(map[int]chain.TokenID, matched)
	for t, ri := range matchTok {
		out[ri] = t
	}
	return out, matched == len(in.Rings)
}

// FeasibleSpent returns, for every ring, the set of tokens that can be its
// consumed token in at least one combination. The paper's non-eliminated
// constraint (Definition 5) holds iff FeasibleSpent(i) equals ring i's full
// token set for every i.
//
// Implementation: for each (ring, token) pair, force the pair and test
// matching feasibility of the rest — polynomial, unlike full enumeration.
func (in *Instance) FeasibleSpent() []chain.TokenSet {
	out := make([]chain.TokenSet, len(in.Rings))
	for i, r := range in.Rings {
		var feas chain.TokenSet
		for _, t := range r.Tokens {
			if in.feasibleWithForced(i, t) {
				feas = append(feas, t)
			}
		}
		out[i] = feas // tokens iterated in sorted order, so feas is sorted
	}
	return out
}

// feasibleWithForced checks whether a combination exists in which ring
// `forcedRing` consumes token `forcedTok`.
func (in *Instance) feasibleWithForced(forcedRing int, forcedTok chain.TokenID) bool {
	matchTok := map[chain.TokenID]int{forcedTok: forcedRing}
	var try func(ri int, seen map[chain.TokenID]bool) bool
	try = func(ri int, seen map[chain.TokenID]bool) bool {
		if ri == forcedRing {
			return false // forced ring cannot be reassigned
		}
		for _, t := range in.Rings[ri].Tokens {
			if t == forcedTok || seen[t] {
				continue
			}
			seen[t] = true
			if prev, ok := matchTok[t]; !ok || try(prev, seen) {
				matchTok[t] = ri
				return true
			}
		}
		return false
	}
	for ri := range in.Rings {
		if ri == forcedRing {
			continue
		}
		if !try(ri, make(map[chain.TokenID]bool)) {
			return false
		}
	}
	return true
}

// feasibleWithBanned checks whether a complete combination exists in which
// no ring consumes banned.
func (in *Instance) feasibleWithBanned(banned chain.TokenID) bool {
	matchTok := make(map[chain.TokenID]int)
	var try func(ri int, seen map[chain.TokenID]bool) bool
	try = func(ri int, seen map[chain.TokenID]bool) bool {
		for _, t := range in.Rings[ri].Tokens {
			if t == banned || seen[t] {
				continue
			}
			seen[t] = true
			if prev, ok := matchTok[t]; !ok || try(prev, seen) {
				matchTok[t] = ri
				return true
			}
		}
		return false
	}
	for ri := range in.Rings {
		if !try(ri, make(map[chain.TokenID]bool)) {
			return false
		}
	}
	return true
}

// ProvablyConsumed returns the tokens that are consumed in every token-RS
// combination of the instance — the exact closure that Theorem 4.1
// approximates. A token t is provably consumed iff no combination avoids it,
// i.e. matching with t banned is infeasible. Returns nil when the instance
// itself has no combination (degenerate ledgers prove nothing).
func (in *Instance) ProvablyConsumed() chain.TokenSet {
	if !in.HasAssignment() {
		return nil
	}
	var out chain.TokenSet
	for _, t := range in.UnionTokens() {
		if !in.feasibleWithBanned(t) {
			out = append(out, t) // UnionTokens is sorted → out stays sorted
		}
	}
	return out
}

// NonEliminated reports whether the instance satisfies the paper's
// non-eliminated constraint: no token of any ring can be ruled out as that
// ring's consumed token by chain-reaction analysis.
func (in *Instance) NonEliminated() bool {
	for i, r := range in.Rings {
		for _, t := range r.Tokens {
			if !in.feasibleWithForced(i, t) {
				return false
			}
		}
	}
	return true
}

// RelatedSet computes the related RS set of a candidate token set
// (Definition 1): the transitive closure, over token sharing, of the rings
// touching the candidate. The candidate itself is not included. Records must
// be in proposal order; all are considered "before π".
func RelatedSet(records []chain.RingRecord, candidate chain.TokenSet) []chain.RingRecord {
	inSet := make([]bool, len(records))
	frontier := candidate
	changed := true
	for changed {
		changed = false
		var grow chain.TokenSet
		for i, r := range records {
			if inSet[i] {
				continue
			}
			if !r.Tokens.Disjoint(frontier) {
				inSet[i] = true
				grow = grow.Union(r.Tokens)
				changed = true
			}
		}
		frontier = frontier.Union(grow)
	}
	var out []chain.RingRecord
	for i, r := range records {
		if inSet[i] {
			out = append(out, r)
		}
	}
	return out
}

// UnionTokens returns the union of all ring token sets in the instance.
func (in *Instance) UnionTokens() chain.TokenSet {
	var u chain.TokenSet
	for _, r := range in.Rings {
		u = u.Union(r.Tokens)
	}
	return u
}
