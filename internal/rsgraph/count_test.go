package rsgraph

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
)

func TestCountCombinationsKnownValues(t *testing.T) {
	// K3,3: 3 rings over the same 3 tokens → 3! = 6.
	k33 := NewInstance([]Ring{ring(0, 1, 2, 3), ring(1, 1, 2, 3), ring(2, 1, 2, 3)})
	got, err := k33.CountCombinations(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("K3,3 count = %v, want 6", got)
	}
	// Infeasible: 2 rings over 1 token → 0.
	bad := NewInstance([]Ring{ring(0, 1), ring(1, 1)})
	got, err = bad.CountCombinations(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("infeasible count = %v, want 0", got)
	}
	// Empty instance → 1 (the empty assignment).
	got, err = NewInstance(nil).CountCombinations(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty count = %v, want 1", got)
	}
}

func TestCountCombinationsMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 80; trial++ {
		nTok := 2 + rng.Intn(6)
		nRing := 1 + rng.Intn(4)
		rings := make([]Ring, nRing)
		for i := range rings {
			var toks []chain.TokenID
			for len(toks) == 0 {
				for tk := 0; tk < nTok; tk++ {
					if rng.Intn(2) == 0 {
						toks = append(toks, chain.TokenID(tk))
					}
				}
			}
			rings[i] = Ring{ID: chain.RSID(i), Tokens: chain.NewTokenSet(toks...)}
		}
		in := NewInstance(rings)
		want, err := in.AllCombinations(EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := in.CountCombinations(0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(int64(len(want)))) != 0 {
			t.Fatalf("trial %d: count %v, enumeration %d", trial, got, len(want))
		}
	}
}

func TestCountCombinationsCaps(t *testing.T) {
	in := NewInstance([]Ring{ring(0, 1, 2), ring(1, 1, 2)})
	if _, err := in.CountCombinations(1); err == nil {
		t.Fatal("maxRings cap must trigger")
	}
}

func TestAnonymityEntropy(t *testing.T) {
	// Single ring of 4 uniform candidates: entropy = log2(4) = 2 bits.
	in := NewInstance([]Ring{ring(0, 1, 2, 3, 4)})
	h, err := in.AnonymityEntropy(0, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-2) > 1e-9 {
		t.Fatalf("entropy = %v, want 2", h)
	}
	// Fully determined ring: entropy 0.
	in = NewInstance([]Ring{ring(0, 1), ring(1, 1, 2)})
	h, err = in.AnonymityEntropy(0, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("determined ring entropy = %v, want 0", h)
	}
	// Infeasible instance errors.
	in = NewInstance([]Ring{ring(0, 1), ring(1, 1)})
	if _, err := in.AnonymityEntropy(0, EnumOptions{}); err == nil {
		t.Fatal("infeasible instance must error")
	}
}

// Entropy of a ring can only drop when more rings are published over the
// same tokens (information monotonicity).
func TestEntropyMonotoneUnderNewRings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		base := []Ring{ring(0, 1, 2, 3, 4, 5)}
		in := NewInstance(base)
		h0, err := in.AnonymityEntropy(0, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Add a ring over a random subset including some base tokens.
		var toks []chain.TokenID
		for tk := 1; tk <= 6; tk++ {
			if rng.Intn(2) == 0 {
				toks = append(toks, chain.TokenID(tk))
			}
		}
		if len(toks) == 0 {
			continue
		}
		in2 := NewInstance(append(base, Ring{ID: 1, Tokens: chain.NewTokenSet(toks...)}))
		if !in2.HasAssignment() {
			continue
		}
		h1, err := in2.AnonymityEntropy(0, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if h1 > h0+1e-9 {
			t.Fatalf("trial %d: entropy rose from %v to %v", trial, h0, h1)
		}
	}
}
