package rsgraph

import (
	"tokenmagic/internal/chain"
)

// Dulmage–Mendelsohn decomposition of the ring-token bipartite graph.
//
// Chain-reaction analysis asks, for every (ring, token) edge, whether the
// edge survives in at least one token-RS combination (Definition 6). The
// exact routines in this package answer that with one matching-feasibility
// probe per edge (FeasibleSpent), which is polynomial but quadratic-ish in
// practice. The DM decomposition answers the same question structurally,
// from ONE maximum matching plus two linear passes, by classifying the
// graph into:
//
//   - the underconstrained (horizontal) region: vertices reachable from an
//     unconsumed token by an alternating path. Tokens here can be freed by
//     some combination — none of them is provably consumed — and every
//     ring-token edge pointing at such a token is admissible.
//   - the overconstrained (vertical) region: vertices reachable from an
//     unmatched ring. Non-empty iff the instance has no token-RS
//     combination at all (a degenerate ledger).
//   - the square (perfectly constrained) region: the rest. Every token here
//     is consumed in EVERY combination — these are the provably-consumed
//     tokens of the exact closure. The square region decomposes further
//     into strongly connected blocks of the matching digraph; an edge
//     (r, t) inside the square region is admissible iff r and t fall in the
//     same block, and a block containing exactly one ring pins that ring to
//     its matched token — the ring is traced.
//
// The equivalences with the probe-based exact routines (FeasibleSpent,
// ProvablyConsumed) are asserted by differential and fuzz tests; the
// adversary package's Theorem-4.1 cascade is a strict under-approximation
// of both.
type DM struct {
	in *Instance

	// Saturated reports whether a token-RS combination exists (every ring
	// matched). When false the decomposition still classifies regions, but
	// no sound elimination facts follow and Feasible returns the untouched
	// token sets — an adversary cannot derive facts from a contradictory
	// view (same contract as adversary.ChainReaction).
	Saturated bool

	// MatchedToken holds one maximum matching: the token ring i consumes in
	// it, or chain.NoToken when ring i is unmatched.
	MatchedToken []chain.TokenID

	// RingRegion[i] classifies ring i; TokenRegion classifies every token
	// of UnionTokens() (keyed densely via tokIndex).
	RingRegion []Region

	// Block[i] is the fine-decomposition block id of ring i: square rings
	// get their SCC id in the matching digraph, rings in the
	// under/overconstrained regions get -1.
	Block []int

	// SquareBlocks is the number of strongly connected blocks the square
	// region splits into.
	SquareBlocks int

	tokens    chain.TokenSet // sorted union of all ring tokens
	tokIndex  map[chain.TokenID]int
	tokRegion []Region
	matchRing []int // token index -> matched ring, -1 if free
	feasible  []chain.TokenSet
	consumed  chain.TokenSet
}

// Region labels one side of the coarse DM decomposition.
type Region int8

// Coarse DM regions.
const (
	Square Region = iota // perfectly constrained
	Under                // underconstrained (horizontal)
	Over                 // overconstrained (vertical; only on infeasible instances)
)

func (r Region) String() string {
	switch r {
	case Square:
		return "square"
	case Under:
		return "under"
	case Over:
		return "over"
	}
	return "invalid"
}

// Decompose computes the Dulmage–Mendelsohn decomposition of the instance.
// Cost: one maximum matching (Kuhn) plus O(V+E) classification — no
// per-edge feasibility probes. All iteration is over index order, so the
// result is deterministic for a given instance.
func (in *Instance) Decompose() *DM {
	d := &DM{in: in}
	d.tokens = in.UnionTokens()
	d.tokIndex = make(map[chain.TokenID]int, len(d.tokens))
	for i, t := range d.tokens {
		d.tokIndex[t] = i
	}

	// Token -> adjacent rings, in ring order.
	adj := make([][]int, len(d.tokens))
	for ri, r := range in.Rings {
		for _, t := range r.Tokens {
			ti := d.tokIndex[t]
			adj[ti] = append(adj[ti], ri)
		}
	}

	// One maximum matching, Kuhn's algorithm over index order.
	matchOfRing := make([]int, len(in.Rings)) // ring -> token index
	for i := range matchOfRing {
		matchOfRing[i] = -1
	}
	d.matchRing = make([]int, len(d.tokens)) // token index -> ring
	for i := range d.matchRing {
		d.matchRing[i] = -1
	}
	seen := make([]int, len(d.tokens)) // visited stamp per augmenting pass
	for i := range seen {
		seen[i] = -1
	}
	var try func(ri, stamp int) bool
	try = func(ri, stamp int) bool {
		for _, t := range in.Rings[ri].Tokens {
			ti := d.tokIndex[t]
			if seen[ti] == stamp {
				continue
			}
			seen[ti] = stamp
			if prev := d.matchRing[ti]; prev == -1 || try(prev, stamp) {
				d.matchRing[ti] = ri
				matchOfRing[ri] = ti
				return true
			}
		}
		return false
	}
	matched := 0
	for ri := range in.Rings {
		if try(ri, ri) {
			matched++
		}
	}
	d.Saturated = matched == len(in.Rings)
	d.MatchedToken = make([]chain.TokenID, len(in.Rings))
	for ri, ti := range matchOfRing {
		if ti == -1 {
			d.MatchedToken[ri] = chain.NoToken
		} else {
			d.MatchedToken[ri] = d.tokens[ti]
		}
	}

	// Coarse regions. Underconstrained: alternating BFS from free tokens
	// (unmatched edge token→ring, matched edge ring→token). Tokens in this
	// region are exactly the tokens some combination leaves unconsumed.
	d.tokRegion = make([]Region, len(d.tokens))
	d.RingRegion = make([]Region, len(in.Rings))
	var queue []int
	for ti := range d.tokens {
		if d.matchRing[ti] == -1 {
			d.tokRegion[ti] = Under
			queue = append(queue, ti)
		}
	}
	for len(queue) > 0 {
		ti := queue[0]
		queue = queue[1:]
		for _, ri := range adj[ti] {
			if matchOfRing[ri] == ti || d.RingRegion[ri] == Under {
				continue
			}
			d.RingRegion[ri] = Under
			if mt := matchOfRing[ri]; mt != -1 && d.tokRegion[mt] != Under {
				d.tokRegion[mt] = Under
				queue = append(queue, mt)
			}
		}
	}
	// Overconstrained: alternating BFS from unmatched rings (any edge
	// ring→token, matched edge token→ring). Empty when Saturated.
	var rqueue []int
	for ri := range in.Rings {
		if matchOfRing[ri] == -1 {
			d.RingRegion[ri] = Over
			rqueue = append(rqueue, ri)
		}
	}
	for len(rqueue) > 0 {
		ri := rqueue[0]
		rqueue = rqueue[1:]
		for _, t := range in.Rings[ri].Tokens {
			ti := d.tokIndex[t]
			if d.tokRegion[ti] == Over {
				continue
			}
			d.tokRegion[ti] = Over
			if mr := d.matchRing[ti]; mr != -1 && d.RingRegion[mr] != Over {
				d.RingRegion[mr] = Over
				rqueue = append(rqueue, mr)
			}
		}
	}

	d.fineBlocks(matchOfRing, adj)
	d.deriveFeasible(matchOfRing)
	return d
}

// fineBlocks splits the square region into strongly connected blocks of the
// matching digraph. Each square token is contracted into the ring that
// consumes it, leaving a digraph on rings alone: r → r' iff ring r' could
// also consume r's matched token. A directed cycle in that digraph is an
// alternating cycle of the bipartite graph — the exchange that realises an
// alternative combination — so edges inside one block are admissible and
// edges crossing blocks are not. Iterative Tarjan, index order, so block
// ids are deterministic.
func (d *DM) fineBlocks(matchOfRing []int, adj [][]int) {
	n := len(d.in.Rings)
	d.Block = make([]int, n)
	for i := range d.Block {
		d.Block[i] = -1
	}
	succ := func(ri int) []int {
		// Successors of square ring ri: square rings adjacent to its
		// matched token, excluding itself.
		ti := matchOfRing[ri]
		if ti == -1 {
			return nil
		}
		var out []int
		for _, rj := range adj[ti] {
			if rj != ri && d.RingRegion[rj] == Square {
				out = append(out, rj)
			}
		}
		return out
	}

	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	type frame struct {
		ri   int
		succ []int
		pos  int
	}
	for start := range d.in.Rings {
		if d.RingRegion[start] != Square || index[start] != -1 {
			continue
		}
		var frames []frame
		push := func(ri int) {
			index[ri] = next
			low[ri] = next
			next++
			stack = append(stack, ri)
			onStack[ri] = true
			frames = append(frames, frame{ri: ri, succ: succ(ri)})
		}
		push(start)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.pos < len(f.succ) {
				w := f.succ[f.pos]
				f.pos++
				if index[w] == -1 {
					push(w)
				} else if onStack[w] && index[w] < low[f.ri] {
					low[f.ri] = index[w]
				}
				continue
			}
			// f exhausted: close SCC if root, propagate lowlink.
			if low[f.ri] == index[f.ri] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					d.Block[w] = d.SquareBlocks
					if w == f.ri {
						break
					}
				}
				d.SquareBlocks++
			}
			done := *f
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done.ri] < low[parent.ri] {
					low[parent.ri] = low[done.ri]
				}
			}
		}
	}
}

// deriveFeasible materialises the per-ring admissible-token sets and the
// provably-consumed closure from the decomposition. Edge (r, t) with
// t ≠ matched(r) is admissible iff t lies in the underconstrained region
// (an alternating path from an unconsumed token reaches t, so the exchange
// rematching r to t ends at a token nobody needs) or r and t's consuming
// ring share a square block (the exchange is an alternating cycle).
func (d *DM) deriveFeasible(matchOfRing []int) {
	n := len(d.in.Rings)
	d.feasible = make([]chain.TokenSet, n)
	if !d.Saturated {
		// No combination exists: report the untouched sets, prove nothing.
		for i, r := range d.in.Rings {
			d.feasible[i] = r.Tokens
		}
		d.consumed = nil
		return
	}
	for ri, r := range d.in.Rings {
		feas := make(chain.TokenSet, 0, len(r.Tokens))
		for _, t := range r.Tokens { // sorted, so feas stays sorted
			ti := d.tokIndex[t]
			switch {
			case matchOfRing[ri] == ti:
				feas = append(feas, t)
			case d.tokRegion[ti] == Under:
				feas = append(feas, t)
			case d.tokRegion[ti] == Square &&
				d.RingRegion[ri] == Square &&
				d.Block[ri] == d.Block[d.matchRing[ti]]:
				feas = append(feas, t)
			}
		}
		d.feasible[ri] = feas
	}
	for ti, t := range d.tokens { // sorted → consumed stays sorted
		if d.matchRing[ti] != -1 && d.tokRegion[ti] == Square {
			d.consumed = append(d.consumed, t)
		}
	}
}

// Feasible returns, for every ring, the tokens that can be its consumed
// token in at least one token-RS combination — equal, by the DM admissible-
// edge theorem, to Instance.FeasibleSpent, at a fraction of the cost. The
// returned slices are shared; do not mutate.
func (d *DM) Feasible() []chain.TokenSet { return d.feasible }

// ProvablyConsumed returns the tokens consumed in every token-RS
// combination: the matched square-region tokens. Equal to
// Instance.ProvablyConsumed.
func (d *DM) ProvablyConsumed() chain.TokenSet { return d.consumed }

// TracedRings returns the indices of rings whose admissible set is a single
// token — the rings the decomposition fully de-anonymises.
func (d *DM) TracedRings() []int {
	var out []int
	for i, f := range d.feasible {
		if len(f) == 1 {
			out = append(out, i)
		}
	}
	return out
}

// EffectiveSize returns the effective anonymity-set size of ring i: the
// number of admissible consumed tokens that survive the decomposition
// (CoinMagic's measure, instead of the binary traced/untraced verdict).
func (d *DM) EffectiveSize(i int) int { return len(d.feasible[i]) }

// UnderRings counts rings in the underconstrained region.
func (d *DM) UnderRings() int {
	n := 0
	for _, reg := range d.RingRegion {
		if reg == Under {
			n++
		}
	}
	return n
}
