package rsgraph

import (
	"math/rand"
	"testing"

	"tokenmagic/internal/chain"
)

func TestRelatedIndexBasics(t *testing.T) {
	ix := NewRelatedIndex()
	ix.AddRing(0, chain.NewTokenSet(1, 2, 5))
	ix.AddRing(1, chain.NewTokenSet(1, 3))
	ix.AddRing(2, chain.NewTokenSet(8, 9))

	got := ix.Related(chain.NewTokenSet(2))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Related(t2) = %v, want [0 1]", got)
	}
	got = ix.Related(chain.NewTokenSet(9))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Related(t9) = %v, want [2]", got)
	}
	if got := ix.Related(chain.NewTokenSet(77)); got != nil {
		t.Fatalf("Related(unknown) = %v, want nil", got)
	}
	if n := ix.Components(); n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if n := ix.ComponentSize(1); n != 4 { // {1,2,3,5}
		t.Fatalf("ComponentSize(t1) = %d, want 4", n)
	}
	if n := ix.ComponentSize(99); n != 0 {
		t.Fatalf("ComponentSize(unknown) = %d, want 0", n)
	}
}

func TestRelatedIndexEmptyRingIgnored(t *testing.T) {
	ix := NewRelatedIndex()
	ix.AddRing(0, nil)
	if got := ix.Related(chain.NewTokenSet(1)); got != nil {
		t.Fatalf("got %v", got)
	}
}

// The incremental index agrees with the one-shot RelatedSet closure on
// random ledgers.
func TestRelatedIndexMatchesRelatedSet(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 80; trial++ {
		nTok := 5 + rng.Intn(15)
		nRing := 1 + rng.Intn(8)
		var records []chain.RingRecord
		ix := NewRelatedIndex()
		for i := 0; i < nRing; i++ {
			var toks []chain.TokenID
			for len(toks) == 0 {
				for tk := 0; tk < nTok; tk++ {
					if rng.Intn(4) == 0 {
						toks = append(toks, chain.TokenID(tk))
					}
				}
			}
			rec := chain.RingRecord{ID: chain.RSID(i), Tokens: chain.NewTokenSet(toks...), Pos: i}
			records = append(records, rec)
			ix.AddRing(rec.ID, rec.Tokens)
		}
		var candidate chain.TokenSet
		for len(candidate) == 0 {
			for tk := 0; tk < nTok; tk++ {
				if rng.Intn(5) == 0 {
					candidate = append(candidate, chain.TokenID(tk))
				}
			}
		}

		want := RelatedSet(records, candidate)
		got := ix.Related(candidate)
		if len(want) != len(got) {
			t.Fatalf("trial %d: index %v vs closure %v (candidate %v)", trial, got, idsOf(want), candidate)
		}
		for i, r := range want {
			if got[i] != r.ID {
				t.Fatalf("trial %d: index %v vs closure %v", trial, got, idsOf(want))
			}
		}
	}
}

func idsOf(rs []chain.RingRecord) []chain.RSID {
	out := make([]chain.RSID, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func BenchmarkRelatedSetClosure(b *testing.B) {
	records, candidate := relatedBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RelatedSet(records, candidate)
	}
}

func BenchmarkRelatedIndex(b *testing.B) {
	records, candidate := relatedBenchData()
	ix := NewRelatedIndex()
	for _, r := range records {
		ix.AddRing(r.ID, r.Tokens)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Related(candidate)
	}
}

func relatedBenchData() ([]chain.RingRecord, chain.TokenSet) {
	rng := rand.New(rand.NewSource(99))
	var records []chain.RingRecord
	for i := 0; i < 400; i++ {
		var toks []chain.TokenID
		base := rng.Intn(4000)
		for k := 0; k < 11; k++ {
			toks = append(toks, chain.TokenID((base+k*7)%4000))
		}
		records = append(records, chain.RingRecord{ID: chain.RSID(i), Tokens: chain.NewTokenSet(toks...), Pos: i})
	}
	return records, chain.NewTokenSet(1, 100, 2000)
}
