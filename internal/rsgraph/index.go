package rsgraph

import (
	"sort"

	"tokenmagic/internal/chain"
)

// RelatedIndex maintains the token-sharing connectivity of a growing set of
// rings incrementally, so related-RS-set queries (Definition 1) cost near
// O(α) amortised instead of the O(rings²) fixpoint scan RelatedSet performs.
// It is a union-find over tokens: two tokens are in the same component iff
// some chain of rings connects them; a ring's related set is then every ring
// whose component matches.
//
// Use RelatedSet for one-shot queries over a slice; use RelatedIndex inside
// long-lived services (the TokenMagic framework, the batch service) where
// rings arrive one at a time.
type RelatedIndex struct {
	parent map[chain.TokenID]chain.TokenID
	rank   map[chain.TokenID]int
	// ringsByRoot accumulates ring ids per component root; roots are
	// re-canonicalised lazily on query.
	rings []indexedRing
}

type indexedRing struct {
	id     chain.RSID
	tokens chain.TokenSet
}

// NewRelatedIndex returns an empty index.
func NewRelatedIndex() *RelatedIndex {
	return &RelatedIndex{
		parent: make(map[chain.TokenID]chain.TokenID),
		rank:   make(map[chain.TokenID]int),
	}
}

func (ix *RelatedIndex) find(t chain.TokenID) chain.TokenID {
	p, ok := ix.parent[t]
	if !ok {
		ix.parent[t] = t
		return t
	}
	if p == t {
		return t
	}
	root := ix.find(p)
	ix.parent[t] = root // path compression
	return root
}

func (ix *RelatedIndex) union(a, b chain.TokenID) {
	ra, rb := ix.find(a), ix.find(b)
	if ra == rb {
		return
	}
	if ix.rank[ra] < ix.rank[rb] {
		ra, rb = rb, ra
	}
	ix.parent[rb] = ra
	if ix.rank[ra] == ix.rank[rb] {
		ix.rank[ra]++
	}
}

// AddRing records a ring: all its tokens join one component.
func (ix *RelatedIndex) AddRing(id chain.RSID, tokens chain.TokenSet) {
	if len(tokens) == 0 {
		return
	}
	first := tokens[0]
	ix.find(first)
	for _, t := range tokens[1:] {
		ix.union(first, t)
	}
	ix.rings = append(ix.rings, indexedRing{id: id, tokens: tokens})
}

// Related returns the ids of all recorded rings connected (transitively,
// through shared tokens) to any token of the candidate set, sorted. Rings
// sharing no chain with the candidate are excluded; the candidate itself is
// not a recorded ring and is never returned.
func (ix *RelatedIndex) Related(candidate chain.TokenSet) []chain.RSID {
	roots := make(map[chain.TokenID]bool, len(candidate))
	for _, t := range candidate {
		if _, seen := ix.parent[t]; seen {
			roots[ix.find(t)] = true
		}
	}
	if len(roots) == 0 {
		return nil
	}
	var out []chain.RSID
	for _, r := range ix.rings {
		if roots[ix.find(r.tokens[0])] {
			out = append(out, r.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ComponentSize returns the number of tokens in the component containing t
// (0 if t was never seen). Useful as a cheap upper bound on how large a
// related set can get before computing it.
func (ix *RelatedIndex) ComponentSize(t chain.TokenID) int {
	if _, seen := ix.parent[t]; !seen {
		return 0
	}
	root := ix.find(t)
	n := 0
	for tok := range ix.parent {
		if ix.find(tok) == root {
			n++
		}
	}
	return n
}

// Components returns the number of distinct connected components among all
// recorded tokens.
func (ix *RelatedIndex) Components() int {
	roots := make(map[chain.TokenID]bool)
	for t := range ix.parent {
		roots[ix.find(t)] = true
	}
	return len(roots)
}
