package rsgraph

import (
	"math"
	"math/big"

	"tokenmagic/internal/chain"
)

// CountCombinations returns the exact number of token-RS combinations of the
// instance — the permanent of the ring×token biadjacency matrix, the very
// quantity whose #P-hardness (Valiant) drives the paper's Theorem 3.1. It
// uses Ryser's inclusion–exclusion formula over the rings, so it costs
// O(2^m · m · t) for m rings over t distinct tokens; callers cap m.
//
// The count doubles as an anonymity measure: more plausible combinations
// mean more uncertainty for the adversary.
func (in *Instance) CountCombinations(maxRings int) (*big.Int, error) {
	m := len(in.Rings)
	if maxRings > 0 && m > maxRings {
		return nil, ErrWorkCapExceeded
	}
	if m == 0 {
		return big.NewInt(1), nil
	}
	if m > 62 {
		return nil, ErrWorkCapExceeded // subset masks exceed an int64
	}

	// Dense token indexing.
	tokens := in.UnionTokens()
	idx := make(map[chain.TokenID]int, len(tokens))
	for i, t := range tokens {
		idx[t] = i
	}
	// rows[r][c] = 1 if ring r may consume token c.
	rows := make([][]bool, m)
	for r, ring := range in.Rings {
		rows[r] = make([]bool, len(tokens))
		for _, t := range ring.Tokens {
			rows[r][idx[t]] = true
		}
	}

	// The number of systems of distinct representatives equals the permanent
	// of the m×t biadjacency matrix extended conceptually with (t−m) free
	// rows; directly, it is Σ over subsets via Ryser's formula adapted to
	// rectangular matrices:
	//
	//	#SDR = Σ_{S ⊆ rows} (−1)^{m−|S|} · C(t−|S| free slots…)
	//
	// Rather than juggle the rectangular correction, we count by
	// inclusion–exclusion over *columns* of the square restriction: for
	// rectangular 0/1 matrices the cleanest exact method at this scale is
	// per-row dynamic programming over token subsets when t ≤ 30, falling
	// back to plain DFS counting otherwise. Here t is small by construction
	// (exact analyses run on Figure-4-scale instances), so we use the
	// bitmask DP: dp[mask] = number of ways the first r rows pick distinct
	// tokens within mask's complement… implemented forward:
	if len(tokens) > 30 {
		return in.countByDFS()
	}
	dp := map[uint64]*big.Int{0: big.NewInt(1)}
	for _, row := range rows {
		next := make(map[uint64]*big.Int, len(dp)*4)
		for mask, ways := range dp {
			for c, has := range row {
				if !has || mask&(1<<uint(c)) != 0 {
					continue
				}
				nm := mask | 1<<uint(c)
				if acc, ok := next[nm]; ok {
					acc.Add(acc, ways)
				} else {
					next[nm] = new(big.Int).Set(ways)
				}
			}
		}
		dp = next
	}
	total := new(big.Int)
	for _, ways := range dp {
		total.Add(total, ways)
	}
	return total, nil
}

// countByDFS counts combinations by direct backtracking (no memoisation);
// used when the token universe exceeds the bitmask DP's width.
func (in *Instance) countByDFS() (*big.Int, error) {
	total := new(big.Int)
	one := big.NewInt(1)
	err := in.Combinations(EnumOptions{}, func(Assignment) bool {
		total.Add(total, one)
		return true
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// AnonymityEntropy returns the Shannon entropy (bits) of the target ring's
// consumed token under the uniform distribution over all combinations: the
// effective anonymity the ring retains after exact chain-reaction analysis.
// Exponential in the instance size via enumeration; capped by opts.
func (in *Instance) AnonymityEntropy(target int, opts EnumOptions) (float64, error) {
	counts := make(map[chain.TokenID]int)
	total := 0
	err := in.Combinations(opts, func(a Assignment) bool {
		counts[a[target]]++
		total++
		return true
	})
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, ErrNoAssignment
	}
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h, nil
}
