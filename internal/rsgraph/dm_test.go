package rsgraph

import (
	"math/rand"
	"reflect"
	"testing"

	"tokenmagic/internal/chain"
)

// randomInstance builds a random bipartite instance: nRings rings of size
// 1..maxSize over a universe of nTokens tokens.
func randomInstance(rng *rand.Rand, nRings, nTokens, maxSize int) *Instance {
	rings := make([]Ring, nRings)
	for i := range rings {
		size := 1 + rng.Intn(maxSize)
		ids := make([]chain.TokenID, size)
		for j := range ids {
			ids[j] = chain.TokenID(rng.Intn(nTokens))
		}
		rings[i] = Ring{ID: chain.RSID(i), Tokens: chain.NewTokenSet(ids...)}
	}
	return NewInstance(rings)
}

// TestDMEquivalentToExactProbes is the load-bearing differential test: over
// random instances, the DM-derived admissible sets must equal the exact
// per-edge matching probes, and the DM square-region tokens must equal the
// exact provably-consumed closure.
func TestDMEquivalentToExactProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 400; trial++ {
		nRings := 1 + rng.Intn(10)
		nTokens := 1 + rng.Intn(14)
		in := randomInstance(rng, nRings, nTokens, 4)
		d := in.Decompose()

		if d.Saturated != in.HasAssignment() {
			t.Fatalf("trial %d: Saturated=%v, HasAssignment=%v\n%+v",
				trial, d.Saturated, in.HasAssignment(), in.Rings)
		}
		if !d.Saturated {
			// Contract: untouched sets, nothing proven.
			for i, r := range in.Rings {
				if !d.Feasible()[i].Equal(r.Tokens) {
					t.Fatalf("trial %d: unsaturated instance must report untouched sets", trial)
				}
			}
			if len(d.ProvablyConsumed()) != 0 {
				t.Fatalf("trial %d: unsaturated instance proved consumption", trial)
			}
			continue
		}

		exact := in.FeasibleSpent()
		for i := range in.Rings {
			if !d.Feasible()[i].Equal(exact[i]) {
				t.Fatalf("trial %d ring %d: DM feasible %v != exact %v\nrings: %+v",
					trial, i, d.Feasible()[i], exact[i], in.Rings)
			}
		}
		if got, want := d.ProvablyConsumed(), in.ProvablyConsumed(); !got.Equal(want) {
			t.Fatalf("trial %d: DM consumed %v != exact %v\nrings: %+v",
				trial, got, want, in.Rings)
		}
	}
}

func TestDMTracedSingleton(t *testing.T) {
	// Ring 0 is a singleton: traced, its token provably consumed, and the
	// token must vanish from ring 1's admissible set.
	in := NewInstance([]Ring{
		{ID: 0, Tokens: chain.NewTokenSet(0)},
		{ID: 1, Tokens: chain.NewTokenSet(0, 1, 2)},
	})
	d := in.Decompose()
	if !d.Saturated {
		t.Fatal("instance is feasible")
	}
	if got := d.TracedRings(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("traced = %v, want [0]", got)
	}
	if !d.ProvablyConsumed().Equal(chain.NewTokenSet(0)) {
		t.Fatalf("consumed = %v", d.ProvablyConsumed())
	}
	if !d.Feasible()[1].Equal(chain.NewTokenSet(1, 2)) {
		t.Fatalf("ring 1 feasible = %v", d.Feasible()[1])
	}
	if d.EffectiveSize(0) != 1 || d.EffectiveSize(1) != 2 {
		t.Fatalf("effective sizes = %d, %d", d.EffectiveSize(0), d.EffectiveSize(1))
	}
}

func TestDMSquareCycleStaysAmbiguous(t *testing.T) {
	// Two rings over the same two tokens: a perfect alternating cycle. Both
	// tokens are provably consumed (square region), but neither ring is
	// traced — both edges are admissible inside one block.
	in := NewInstance([]Ring{
		{ID: 0, Tokens: chain.NewTokenSet(0, 1)},
		{ID: 1, Tokens: chain.NewTokenSet(0, 1)},
	})
	d := in.Decompose()
	if !d.ProvablyConsumed().Equal(chain.NewTokenSet(0, 1)) {
		t.Fatalf("consumed = %v", d.ProvablyConsumed())
	}
	if len(d.TracedRings()) != 0 {
		t.Fatalf("traced = %v, want none", d.TracedRings())
	}
	if d.SquareBlocks != 1 {
		t.Fatalf("square blocks = %d, want 1", d.SquareBlocks)
	}
	for i := range in.Rings {
		if d.EffectiveSize(i) != 2 {
			t.Fatalf("ring %d effective size = %d", i, d.EffectiveSize(i))
		}
	}
}

func TestDMUnderRegionProvesNothing(t *testing.T) {
	// One ring over two tokens with a spare third: everything ambiguous,
	// nothing consumed, ring in the underconstrained region.
	in := NewInstance([]Ring{
		{ID: 0, Tokens: chain.NewTokenSet(0, 1)},
	})
	d := in.Decompose()
	if len(d.ProvablyConsumed()) != 0 {
		t.Fatalf("consumed = %v, want none", d.ProvablyConsumed())
	}
	if d.UnderRings() != 1 {
		t.Fatalf("under rings = %d", d.UnderRings())
	}
	if d.RingRegion[0] != Under {
		t.Fatalf("ring region = %v", d.RingRegion[0])
	}
}

func TestDMOverconstrained(t *testing.T) {
	// Two rings forced onto one token: no combination exists.
	in := NewInstance([]Ring{
		{ID: 0, Tokens: chain.NewTokenSet(0)},
		{ID: 1, Tokens: chain.NewTokenSet(0)},
	})
	d := in.Decompose()
	if d.Saturated {
		t.Fatal("instance must be unsaturated")
	}
	over := 0
	for _, reg := range d.RingRegion {
		if reg == Over {
			over++
		}
	}
	if over == 0 {
		t.Fatalf("no ring classified overconstrained: %v", d.RingRegion)
	}
}

func TestDMDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomInstance(rng, 12, 16, 4)
	a, b := in.Decompose(), in.Decompose()
	if !reflect.DeepEqual(a.Feasible(), b.Feasible()) ||
		!reflect.DeepEqual(a.Block, b.Block) ||
		!reflect.DeepEqual(a.RingRegion, b.RingRegion) {
		t.Fatal("Decompose is not deterministic")
	}
}

func TestDMRegionString(t *testing.T) {
	for reg, want := range map[Region]string{Square: "square", Under: "under", Over: "over", Region(9): "invalid"} {
		if reg.String() != want {
			t.Fatalf("Region(%d).String() = %q, want %q", reg, reg.String(), want)
		}
	}
}

func BenchmarkDMDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(rng, 200, 400, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Decompose()
	}
}

func BenchmarkExactFeasibleSpent(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(rng, 200, 400, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.FeasibleSpent()
	}
}
