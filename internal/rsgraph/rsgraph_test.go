package rsgraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"tokenmagic/internal/chain"
)

func ring(id int, toks ...chain.TokenID) Ring {
	return Ring{ID: chain.RSID(id), Tokens: chain.NewTokenSet(toks...)}
}

func TestCombinationsEmpty(t *testing.T) {
	in := NewInstance(nil)
	got, err := in.AllCombinations(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty instance should yield one empty assignment, got %v", got)
	}
}

// Paper Example 1: r1 = r2 = {t1, t2}. Only combinations pair t1/t2 to r1/r2
// in the two possible orders.
func TestCombinationsPaperExample1(t *testing.T) {
	in := NewInstance([]Ring{ring(1, 1, 2), ring(2, 1, 2)})
	got, err := in.AllCombinations(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 combinations, got %d: %v", len(got), got)
	}
	for _, a := range got {
		if a[0] == a[1] {
			t.Fatalf("same token consumed twice: %v", a)
		}
	}
}

func TestCombinationsNoAssignment(t *testing.T) {
	// Three rings over two tokens: pigeonhole makes SDR impossible.
	in := NewInstance([]Ring{ring(0, 1, 2), ring(1, 1, 2), ring(2, 1, 2)})
	got, err := in.AllCombinations(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want 0 combinations, got %v", got)
	}
	if in.HasAssignment() {
		t.Fatal("HasAssignment should be false")
	}
}

func TestCombinationsCountMatchesPermanent(t *testing.T) {
	// Complete bipartite K3,3: number of SDRs = 3! = 6.
	in := NewInstance([]Ring{ring(0, 1, 2, 3), ring(1, 1, 2, 3), ring(2, 1, 2, 3)})
	got, err := in.AllCombinations(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("K3,3 should have 6 combinations, got %d", len(got))
	}
}

func TestCombinationsWorkCap(t *testing.T) {
	// 8 rings over 8 shared tokens: 8! = 40320 combinations, capped at 10.
	var rings []Ring
	toks := make([]chain.TokenID, 8)
	for i := range toks {
		toks[i] = chain.TokenID(i)
	}
	for i := 0; i < 8; i++ {
		rings = append(rings, Ring{ID: chain.RSID(i), Tokens: chain.NewTokenSet(toks...)})
	}
	in := NewInstance(rings)
	_, err := in.AllCombinations(EnumOptions{MaxCombinations: 10})
	if !errors.Is(err, ErrWorkCapExceeded) {
		t.Fatalf("want ErrWorkCapExceeded, got %v", err)
	}
	_, err = in.AllCombinations(EnumOptions{MaxSteps: 5})
	if !errors.Is(err, ErrWorkCapExceeded) {
		t.Fatalf("want ErrWorkCapExceeded (steps), got %v", err)
	}
}

func TestCombinationsEarlyStop(t *testing.T) {
	in := NewInstance([]Ring{ring(0, 1, 2, 3), ring(1, 1, 2, 3)})
	n := 0
	err := in.Combinations(EnumOptions{}, func(a Assignment) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("early stop after 2, got %d", n)
	}
}

func TestHasAssignment(t *testing.T) {
	if !NewInstance([]Ring{ring(0, 1), ring(1, 2)}).HasAssignment() {
		t.Fatal("disjoint singletons must be assignable")
	}
	if NewInstance([]Ring{ring(0, 1), ring(1, 1)}).HasAssignment() {
		t.Fatal("two rings over one token must not be assignable")
	}
}

// Paper Example 2: r1={t1,t2,t5}, r2={t1,t3}, r3={t1,t3}, r4={t2,t4},
// r5={t4,t5,t6}. t2 consumed in r1 forces t4 in r4, so r5 ∈ {t5, t6}... the
// instance is feasible and no token is eliminated.
func paperExample2() *Instance {
	return NewInstance([]Ring{
		ring(1, 1, 2, 5),
		ring(2, 1, 3),
		ring(3, 1, 3),
		ring(4, 2, 4),
		ring(5, 4, 5, 6),
	})
}

func TestFeasibleSpentPaperExample2(t *testing.T) {
	in := paperExample2()
	feas := in.FeasibleSpent()
	// r2 and r3 jointly own {t1, t3}; both tokens must be consumed there, so
	// r1 can only consume t2 or t5 — t1 is eliminated from r1.
	if feas[0].Contains(1) {
		t.Fatalf("t1 should be eliminated from r1, feasible = %v", feas[0])
	}
	if !feas[0].Equal(chain.NewTokenSet(2, 5)) {
		t.Fatalf("r1 feasible = %v, want {2,5}", feas[0])
	}
	// r2, r3 keep both options.
	if !feas[1].Equal(chain.NewTokenSet(1, 3)) || !feas[2].Equal(chain.NewTokenSet(1, 3)) {
		t.Fatalf("r2/r3 feasible = %v / %v", feas[1], feas[2])
	}
	// With t1 eliminated from r1 but t2/t5 contested, r4 and r5 keep all.
	if !feas[3].Equal(chain.NewTokenSet(2, 4)) {
		t.Fatalf("r4 feasible = %v", feas[3])
	}
	if !feas[4].Equal(chain.NewTokenSet(4, 5, 6)) {
		t.Fatalf("r5 feasible = %v", feas[4])
	}
	if in.NonEliminated() {
		t.Fatal("instance has an eliminated token (t1 in r1)")
	}
}

func TestNonEliminatedPositive(t *testing.T) {
	// Example 1's "good" final state: r1={t1,t2}, r2={t1,t2}, r3={t3,t4}.
	in := NewInstance([]Ring{ring(1, 1, 2), ring(2, 1, 2), ring(3, 3, 4)})
	if !in.NonEliminated() {
		t.Fatal("want non-eliminated")
	}
}

// Cross-check FeasibleSpent against brute-force enumeration on random small
// instances.
func TestFeasibleSpentMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nTok := 3 + r.Intn(5)
		nRing := 1 + r.Intn(4)
		rings := make([]Ring, nRing)
		for i := range rings {
			var toks []chain.TokenID
			for {
				toks = toks[:0]
				for tk := 0; tk < nTok; tk++ {
					if r.Intn(2) == 0 {
						toks = append(toks, chain.TokenID(tk))
					}
				}
				if len(toks) > 0 {
					break
				}
			}
			rings[i] = Ring{ID: chain.RSID(i), Tokens: chain.NewTokenSet(toks...)}
		}
		in := NewInstance(rings)

		// Brute force via full enumeration.
		want := make([]map[chain.TokenID]bool, nRing)
		for i := range want {
			want[i] = make(map[chain.TokenID]bool)
		}
		err := in.Combinations(EnumOptions{}, func(a Assignment) bool {
			for i, tok := range a {
				want[i][tok] = true
			}
			return true
		})
		if err != nil {
			return false
		}
		got := in.FeasibleSpent()
		for i := range rings {
			if len(got[i]) != len(want[i]) {
				return false
			}
			for _, tok := range got[i] {
				if !want[i][tok] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRelatedSet(t *testing.T) {
	// Paper Example 2 structure: related set of r4={t2,t4} is all others.
	origin := func(toks ...chain.TokenID) chain.TokenSet { return chain.NewTokenSet(toks...) }
	records := []chain.RingRecord{
		{ID: 0, Tokens: origin(1, 2, 5)},
		{ID: 1, Tokens: origin(1, 3)},
		{ID: 2, Tokens: origin(1, 3)},
		{ID: 3, Tokens: origin(4, 5, 6)},
		{ID: 4, Tokens: origin(8, 9)}, // unrelated island
	}
	got := RelatedSet(records, chain.NewTokenSet(2, 4))
	if len(got) != 4 {
		t.Fatalf("related set size = %d, want 4 (island excluded): %v", len(got), got)
	}
	for _, r := range got {
		if r.ID == 4 {
			t.Fatal("island ring must not be in the related set")
		}
	}
	// Direct layer: rings sharing tokens with the candidate.
	got = RelatedSet(records, chain.NewTokenSet(8))
	if len(got) != 1 || got[0].ID != 4 {
		t.Fatalf("related set = %v", got)
	}
	if got := RelatedSet(records, chain.NewTokenSet(77)); len(got) != 0 {
		t.Fatalf("unrelated candidate should have empty related set, got %v", got)
	}
}

func TestUnionTokens(t *testing.T) {
	in := NewInstance([]Ring{ring(0, 1, 2), ring(1, 2, 3)})
	if got := in.UnionTokens(); !got.Equal(chain.NewTokenSet(1, 2, 3)) {
		t.Fatalf("UnionTokens = %v", got)
	}
}

func TestFromRecords(t *testing.T) {
	records := []chain.RingRecord{
		{ID: 7, Tokens: chain.NewTokenSet(1, 2)},
	}
	in := FromRecords(records)
	if len(in.Rings) != 1 || in.Rings[0].ID != 7 {
		t.Fatalf("FromRecords = %+v", in.Rings)
	}
}
