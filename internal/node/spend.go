package node

import (
	"context"
	crand "crypto/rand"
	"errors"
	"fmt"
	"io"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/ringsig"
	itm "tokenmagic/internal/tokenmagic"
)

// ErrNoSpendKeys reports a Spend on a node configured without Config.Keys.
var ErrNoSpendKeys = errors.New("node: spend requires Config.Keys")

// SpendResult describes one completed server-side spend.
type SpendResult struct {
	Ring   chain.TokenSet
	RSID   chain.RSID
	Signed bool
}

// spendReason buckets a Spend error for the node.spend.reject.* counters.
func spendReason(err error) string {
	switch {
	case errors.Is(err, ErrKeyImageUsed):
		return "double_spend"
	case errors.Is(err, itm.ErrSpentBatch):
		return "no_candidate"
	case errors.Is(err, itm.ErrLiveness):
		return "liveness"
	case errors.Is(err, itm.ErrConfig):
		return "config"
	case errors.Is(err, itm.ErrDiversity):
		return "diversity"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "other"
	}
}

// Spend runs the paper's full client+miner pipeline inside the node: select a
// ring for target (Algorithm 1), sign it with the target's key, verify the
// signature, and commit under the Step-3 checks. Every stage lands in the
// trace carried by ctx (sample, solve, sign, verify-sig, verify, commit), so
// this is the end-to-end path the load generator drives.
//
// Ring selection runs outside the node mutex — concurrent Spends solve in
// parallel and only serialise for the image check and commit. The key-image
// double-spend check and the commit happen under one hold, so two racing
// spends of the same token cannot both land.
func (n *Node) Spend(ctx context.Context, target chain.TokenID, req diversity.Requirement) (SpendResult, error) {
	res, err := n.spend(ctx, target, req)
	if err != nil {
		n.metrics.Counter("node.spend.reject." + spendReason(err)).Inc()
	} else {
		n.metrics.Counter("node.spend.accepted").Inc()
	}
	return res, err
}

// maxStaleRetries bounds the regenerate-and-retry loop below. Each retry
// re-selects against the then-current epoch, so one pass per concurrently
// landed commit suffices; eight absorbs heavy contention while keeping a
// genuinely unspendable token's failure latency bounded.
const maxStaleRetries = 8

// staleRetryable reports whether a commit failure may be an artefact of the
// chain moving between ring selection and commit — the Step-3 classes that
// depend on the ring population — rather than a verdict about the token
// itself. Double spends and signature failures are terminal.
func staleRetryable(err error) bool {
	return errors.Is(err, itm.ErrConfig) ||
		errors.Is(err, itm.ErrDiversity) ||
		errors.Is(err, itm.ErrLiveness)
}

// spend runs spendOnce and, when the commit lost a race — the framework
// epoch advanced past the one the ring was selected against and the failure
// is selection-dependent — re-selects against the new epoch and retries.
// Without this, concurrent spends of distinct tokens could surface spurious
// rejections (HTTP 422 through nodesvc) purely from commit ordering.
func (n *Node) spend(ctx context.Context, target chain.TokenID, req diversity.Requirement) (SpendResult, error) {
	if n.verifySigs && n.keys == nil {
		return SpendResult{}, ErrNoSpendKeys
	}
	for attempt := 0; ; attempt++ {
		epoch := n.fw.Epoch()
		res, err := n.spendOnce(ctx, target, req)
		if err == nil {
			return res, nil
		}
		if attempt >= maxStaleRetries || !staleRetryable(err) || n.fw.Epoch() == epoch {
			return SpendResult{}, err
		}
		n.metrics.Counter("node.spend.retry.stale_epoch").Inc()
	}
}

func (n *Node) spendOnce(ctx context.Context, target chain.TokenID, req diversity.Requirement) (SpendResult, error) {
	sel, err := n.fw.GenerateRSContext(ctx, target, req)
	if err != nil {
		return SpendResult{}, err
	}
	msg := Message(sel.Tokens)

	var sig *ringsig.Signature
	if n.keys != nil {
		sk := n.keys[target]
		if sk == nil {
			return SpendResult{}, fmt.Errorf("%w: no key for token %v", ErrNoSpendKeys, target)
		}
		ring := make([]ringsig.Point, len(sel.Tokens))
		signerIdx := -1
		for i, tok := range sel.Tokens {
			k := n.keys[tok]
			if k == nil {
				return SpendResult{}, fmt.Errorf("%w: no key for ring member %v", ErrNoSpendKeys, tok)
			}
			ring[i] = k.Public
			if tok == target {
				signerIdx = i
			}
		}
		sig, err = ringsig.SignCtx(ctx, crand.Reader, sk, ring, signerIdx, msg)
		if err != nil {
			return SpendResult{}, err
		}
		if err := n.engine.VerifyCtx(ctx, sig, ring, msg); err != nil {
			return SpendResult{}, fmt.Errorf("%w: %v", ErrBadSignature, err)
		}
	}

	if n.testHookAfterSelect != nil {
		n.testHookAfterSelect()
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	var img string
	if sig != nil {
		img = string(sig.Image.Bytes())
		if prior, used := n.images[img]; used {
			return SpendResult{}, fmt.Errorf("%w (by %v)", ErrKeyImageUsed, prior)
		}
	}
	id, err := n.fw.CommitCtx(ctx, sel.Tokens, req)
	if err != nil {
		return SpendResult{}, err
	}
	if sig != nil {
		n.images[img] = id
	}
	return SpendResult{Ring: sel.Tokens, RSID: id, Signed: sig != nil}, nil
}

// GenerateKeys creates one keypair per ledger token from rng (nil uses
// crypto/rand), suitable for Config.Keys on experiment and load-test nodes.
func GenerateKeys(rng io.Reader, ledger *chain.Ledger) (map[chain.TokenID]*ringsig.PrivateKey, error) {
	if rng == nil {
		rng = crand.Reader
	}
	keys := make(map[chain.TokenID]*ringsig.PrivateKey, ledger.NumTokens())
	for i := 0; i < ledger.NumTokens(); i++ {
		sk, err := ringsig.GenerateKey(rng)
		if err != nil {
			return nil, err
		}
		keys[chain.TokenID(i)] = sk
	}
	return keys, nil
}
