package node

// Regression for the concurrent-spend commit race: ring selection runs
// outside the node mutex, so a spend can select against epoch E while a
// sibling's commit publishes E+1; the first commit then sees rings it never
// selected around and fails the practical-configuration check. Before the
// stale-epoch retry in spend(), this surfaced as spurious rejections (HTTP
// 422 through nodesvc) for perfectly spendable tokens. The retry re-selects
// against the advanced epoch, so concurrent spends of distinct tokens must
// all land.

import (
	"context"
	"sync"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs"
	itm "tokenmagic/internal/tokenmagic"
)

// TestSpendRetriesAfterSiblingCommit reproduces the race deterministically:
// the test hook lands a conflicting ring in the window between this spend's
// ring selection and its commit. The first commit attempt must fail (its
// ring partially overlaps the sibling's), and the retry — re-selecting
// against the advanced epoch — must land. Without the retry this spend
// surfaced the sibling's commit as a spurious rejection.
func TestSpendRetriesAfterSiblingCommit(t *testing.T) {
	l := chain.NewLedger()
	b := l.BeginBlock()
	for i := 0; i < 16; i++ {
		if _, err := l.AddTx(b, 2); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	n, err := New(l, Config{
		Framework: itm.Config{
			Lambda: 32, Eta: 0, Headroom: true,
			Algorithm: itm.Progressive, Metrics: reg,
		},
		AllowUnsigned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 2}
	const target = chain.TokenID(5)

	// The sibling's ring is every batch token except the target: it cannot
	// contain any ring that includes the target, and any ring with the
	// target plus ≥1 mixin overlaps it — so whatever ring this spend
	// selected against the pre-sibling epoch is guaranteed to conflict.
	var sibling []chain.TokenID
	for i := 0; i < l.NumTokens(); i++ {
		if chain.TokenID(i) != target {
			sibling = append(sibling, chain.TokenID(i))
		}
	}
	fired := false
	n.testHookAfterSelect = func() {
		if fired {
			return
		}
		fired = true
		if _, cerr := n.fw.Commit(chain.NewTokenSet(sibling...), req); cerr != nil {
			t.Errorf("sibling commit: %v", cerr)
		}
	}

	res, err := n.Spend(context.Background(), target, req)
	if err != nil {
		t.Fatalf("spend spuriously rejected after sibling commit: %v", err)
	}
	if !res.Ring.Contains(target) {
		t.Fatalf("ring %v misses target", res.Ring)
	}
	if got := reg.Counter("node.spend.retry.stale_epoch").Value(); got == 0 {
		t.Fatal("retry counter did not fire: the race was not exercised")
	}
	if got := reg.Counter("node.spend.reject.config").Value(); got != 0 {
		t.Fatalf("spurious config rejections: %d", got)
	}
}

func TestConcurrentSpendsOfDistinctTokensNeverSpuriouslyReject(t *testing.T) {
	const (
		nTx      = 16 // ×2 outputs = 32 tokens
		spenders = 8
	)
	l := chain.NewLedger()
	b := l.BeginBlock()
	for i := 0; i < nTx; i++ {
		if _, err := l.AddTx(b, 2); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	n, err := New(l, Config{
		Framework: itm.Config{
			// η off: this test isolates the epoch race; the liveness guard
			// legitimately rejects late spends in a drained batch.
			Lambda: 16, Eta: 0, Headroom: true,
			Algorithm: itm.Progressive, Randomize: true,
			Metrics: reg,
		},
		AllowUnsigned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 2}

	// All spenders target distinct tokens spread across both batches and
	// fire together, maximising generate/commit interleavings.
	var wg sync.WaitGroup
	errs := make([]error, spenders)
	start := make(chan struct{})
	for i := 0; i < spenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			target := chain.TokenID(i * 4)
			_, errs[i] = n.Spend(context.Background(), target, req)
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Errorf("spend of token %d spuriously rejected: %v", i*4, err)
		}
	}
	if n.ChainRings() != spenders {
		t.Fatalf("%d rings on chain, want %d", n.ChainRings(), spenders)
	}
	// The retry path is exercised opportunistically (the race may not fire
	// on a given run); what must hold is that retries never exceed the
	// bound and rejects stayed at zero.
	if v := reg.Counter("node.spend.retry.stale_epoch").Value(); v > spenders*maxStaleRetries {
		t.Fatalf("retry counter implausible: %d", v)
	}
	for _, reason := range []string{"config", "diversity", "liveness"} {
		if v := reg.Counter("node.spend.reject." + reason).Value(); v != 0 {
			t.Fatalf("spurious %s rejections: %d", reason, v)
		}
	}
}
