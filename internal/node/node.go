// Package node implements the miner side of the paper's RS scheme
// (Section 2.1, Step 3): a validating node that accepts signed ring-spend
// submissions, checks them exactly as the paper's verifiers do —
//
//  1. the ring signature verifies against the ring members' keys,
//  2. the key image is fresh (no double spend),
//  3. the ring respects the TokenMagic configurations (one batch,
//     superset-or-disjoint, declared diversity with headroom, closed-form
//     DTRS diversity, η liveness) —
//
// holds valid submissions in a mempool, and periodically "mines" them: the
// accepted rings are appended to the ledger in fee order, exactly like a
// fee-market block template. Only Step 3 runs here; mixin selection and
// signing (Steps 1–2) happen client-side, which is why TokenMagic's
// selection cost never touches chain throughput.
package node

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/obs"
	"tokenmagic/internal/ringsig"
	itm "tokenmagic/internal/tokenmagic"
)

// Submission is a client's signed spend: the ring (token set), the declared
// diversity requirement, the ring members' public keys in token order, and
// the signature. Fee is the offered fee (the examples use ring size ×
// fee-per-token, the paper's model).
type Submission struct {
	Tokens    chain.TokenSet
	Req       diversity.Requirement
	Keys      []ringsig.Point
	Signature *ringsig.Signature
	Fee       uint64
}

// Message returns the canonical signing payload for a ring. Clients must
// sign exactly this; verifiers recompute it.
func Message(tokens chain.TokenSet) []byte {
	return []byte(fmt.Sprintf("spend ring over %v", tokens))
}

// Status classifies a mempool entry.
type Status int

// Mempool entry states.
const (
	StatusPending Status = iota
	StatusMined
)

// Node is a validating miner. Safe for concurrent use.
type Node struct {
	mu      sync.Mutex
	ledger  *chain.Ledger
	fw      *itm.Framework
	images  map[string]chain.RSID
	mempool []pendingEntry
	// VerifySignatures can be disabled for pure selection experiments.
	verifySigs bool
	keys       map[chain.TokenID]*ringsig.PrivateKey
	// engine amortises signature verification across the node's lifetime:
	// its hash-to-point memo is pre-warmed from the key registry and its
	// transcript cache lets block validation skip chains the admission
	// check already walked.
	engine  *ringsig.Engine
	metrics *obs.Registry
	// testHookAfterSelect, when non-nil, runs between ring selection and
	// commit in spendOnce — a test seam for deterministically interleaving a
	// sibling commit into the selection/commit window.
	testHookAfterSelect func()
}

type pendingEntry struct {
	sub Submission
	id  int // submission id for receipts
}

// Receipt identifies an accepted submission.
type Receipt struct {
	SubmissionID int
}

// Errors surfaced by submission validation.
var (
	ErrBadSignature   = errors.New("node: ring signature invalid")
	ErrKeyImageUsed   = errors.New("node: key image already spent")
	ErrKeysMismatch   = errors.New("node: one public key required per ring token")
	ErrUnsignedDenied = errors.New("node: unsigned submissions not accepted")
)

// Config configures a node.
type Config struct {
	// Framework carries the TokenMagic Step-3 checks (λ, η, headroom).
	Framework itm.Config
	// AllowUnsigned admits submissions without signatures (selection-only
	// experiments); key-image double-spend checking is skipped for them.
	AllowUnsigned bool
	// Keys, when set, holds the private key of each spendable token and
	// enables the server-side Spend path: the node selects the ring, signs
	// with the target's key and commits in one call. Production nodes never
	// hold client keys — this exists for load generation and experiments,
	// where it exercises the full sample→solve→sign→verify→commit pipeline
	// in-process.
	Keys map[chain.TokenID]*ringsig.PrivateKey
}

// New creates a node over a ledger.
func New(ledger *chain.Ledger, cfg Config) (*Node, error) {
	fw, err := itm.New(ledger, cfg.Framework, nil)
	if err != nil {
		return nil, err
	}
	reg := cfg.Framework.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	engine := &ringsig.Engine{Hp: ringsig.NewHpCache(), Seen: ringsig.NewSigCache(sigCacheEntries)}
	if cfg.Keys != nil {
		// The spendable key population is known up front: resolve every
		// hash-to-point once now so no verification ever pays for it.
		pubs := make([]ringsig.Point, 0, len(cfg.Keys))
		for _, sk := range cfg.Keys {
			pubs = append(pubs, sk.Public)
		}
		engine.Hp.Precompute(pubs)
	}
	return &Node{
		ledger:     ledger,
		fw:         fw,
		images:     make(map[string]chain.RSID),
		verifySigs: !cfg.AllowUnsigned,
		keys:       cfg.Keys,
		engine:     engine,
		metrics:    reg,
	}, nil
}

// sigCacheEntries bounds the node's verified-transcript cache. A mempool
// re-validated at mine time needs at most one entry per pending submission;
// 4096 covers two full generations of the largest block templates the
// simulations mine while keeping worst-case memory at a few hundred KiB.
const sigCacheEntries = 4096

// rejectReason buckets a Submit error for the node.submit.reject.* counters.
func rejectReason(err error) string {
	switch {
	case errors.Is(err, ErrBadSignature):
		return "bad_signature"
	case errors.Is(err, ErrKeyImageUsed):
		return "double_spend"
	case errors.Is(err, ErrKeysMismatch), errors.Is(err, ErrUnsignedDenied):
		return "malformed"
	case errors.Is(err, itm.ErrLiveness):
		return "liveness"
	case errors.Is(err, itm.ErrConfig):
		return "config"
	case errors.Is(err, itm.ErrDiversity):
		return "diversity"
	default:
		return "other"
	}
}

// Submit validates a spend and, if acceptable, queues it for mining.
func (n *Node) Submit(sub Submission) (Receipt, error) {
	return n.SubmitCtx(context.Background(), sub)
}

// SubmitCtx is Submit with the request's trace threaded through: signature
// verification lands in a "verify-sig" span and the Step-3 check in a
// "verify" span. ctx carries only the trace; validation itself never blocks.
func (n *Node) SubmitCtx(ctx context.Context, sub Submission) (Receipt, error) {
	rcpt, err := n.submit(ctx, sub)
	if err != nil {
		n.metrics.Counter("node.submit.reject." + rejectReason(err)).Inc()
	} else {
		n.metrics.Counter("node.submit.accepted").Inc()
	}
	return rcpt, err
}

func (n *Node) submit(ctx context.Context, sub Submission) (Receipt, error) {
	n.mu.Lock()
	defer n.mu.Unlock()

	if n.verifySigs {
		if sub.Signature == nil {
			return Receipt{}, ErrUnsignedDenied
		}
		if len(sub.Keys) != len(sub.Tokens) {
			return Receipt{}, ErrKeysMismatch
		}
		if err := n.engine.VerifyCtx(ctx, sub.Signature, sub.Keys, Message(sub.Tokens)); err != nil {
			return Receipt{}, fmt.Errorf("%w: %v", ErrBadSignature, err)
		}
		img := string(sub.Signature.Image.Bytes())
		if prior, used := n.images[img]; used {
			return Receipt{}, fmt.Errorf("%w (by %v)", ErrKeyImageUsed, prior)
		}
		// Also scan the mempool for an in-flight duplicate image.
		for _, e := range n.mempool {
			if e.sub.Signature != nil && ringsig.Linked(e.sub.Signature, sub.Signature) {
				return Receipt{}, fmt.Errorf("%w (pending)", ErrKeyImageUsed)
			}
		}
	}
	// TokenMagic Step-3 checks against the current chain + mempool rings.
	if err := n.fw.VerifyRSCtx(ctx, sub.Tokens, sub.Req); err != nil {
		return Receipt{}, err
	}
	// Mempool conflicts: the practical configuration must also hold among
	// pending rings, or mining order could invalidate later entries.
	for _, e := range n.mempool {
		if !sub.Tokens.Disjoint(e.sub.Tokens) &&
			!e.sub.Tokens.SubsetOf(sub.Tokens) && !sub.Tokens.SubsetOf(e.sub.Tokens) {
			return Receipt{}, fmt.Errorf("%w: conflicts with pending ring", itm.ErrConfig)
		}
	}
	id := len(n.mempool)
	n.mempool = append(n.mempool, pendingEntry{sub: sub, id: id})
	n.metrics.Gauge("node.mempool.pending").Set(int64(len(n.mempool)))
	return Receipt{SubmissionID: id}, nil
}

// PendingCount returns the mempool depth.
func (n *Node) PendingCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.mempool)
}

// MinedRing pairs a submission with the ring it became.
type MinedRing struct {
	SubmissionID int
	Ring         chain.RSID
	Fee          uint64
}

// Mine drains up to maxRings mempool entries into the ledger, highest fee
// first (fee-per-byte ≈ fee here since verification cost scales with ring
// size, which the fee already prices). Subset relations are mined before
// their supersets so the configuration stays valid at every prefix.
func (n *Node) Mine(maxRings int) ([]MinedRing, error) {
	return n.MineCtx(context.Background(), maxRings)
}

// MineCtx is Mine with the request's trace threaded through; each committed
// ring lands in a "commit" span.
//
// Before anything is committed, the block template's signatures are
// re-validated as one VerifyBatch — the paper's Step-4 "every block
// validation re-verifies many" workload. Entries admitted through Submit
// hit the engine's transcript cache and cost a hash each; a signature that
// fails (possible only if the mempool was corrupted, since admission
// already verified it) is dropped rather than mined.
func (n *Node) MineCtx(ctx context.Context, maxRings int) ([]MinedRing, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if maxRings <= 0 || len(n.mempool) == 0 {
		return nil, nil
	}
	// Order: subsets first, then fee descending.
	entries := append([]pendingEntry{}, n.mempool...)
	sort.SliceStable(entries, func(a, b int) bool {
		ta, tb := entries[a].sub.Tokens, entries[b].sub.Tokens
		if ta.SubsetOf(tb) && !tb.SubsetOf(ta) {
			return true
		}
		if tb.SubsetOf(ta) && !ta.SubsetOf(tb) {
			return false
		}
		return entries[a].sub.Fee > entries[b].sub.Fee
	})

	// Block validation: batch re-verify the signed entries up front.
	badSig := make(map[int]bool)
	if n.verifySigs {
		reqs := make([]ringsig.VerifyRequest, 0, len(entries))
		idxs := make([]int, 0, len(entries))
		for i, e := range entries {
			if e.sub.Signature != nil {
				reqs = append(reqs, ringsig.VerifyRequest{
					Sig:  e.sub.Signature,
					Ring: e.sub.Keys,
					Msg:  Message(e.sub.Tokens),
				})
				idxs = append(idxs, i)
			}
		}
		res := n.engine.VerifyBatchCtx(ctx, reqs)
		for k, err := range res.Errs {
			if err != nil {
				badSig[idxs[k]] = true
			}
		}
	}

	var mined []MinedRing
	var leftover []pendingEntry
	dropped, invalidSig := 0, 0
	for i, e := range entries {
		if badSig[i] {
			invalidSig++
			continue
		}
		if len(mined) >= maxRings {
			leftover = append(leftover, e)
			continue
		}
		id, err := n.fw.CommitCtx(ctx, e.sub.Tokens, e.sub.Req)
		if err != nil {
			// The chain moved under this entry (e.g. a mined superset made
			// it overlap-invalid): drop it; the client resubmits.
			dropped++
			continue
		}
		if e.sub.Signature != nil {
			n.images[string(e.sub.Signature.Image.Bytes())] = id
		}
		mined = append(mined, MinedRing{SubmissionID: e.id, Ring: id, Fee: e.sub.Fee})
	}
	n.mempool = leftover
	n.metrics.Counter("node.mine.blocks").Inc()
	n.metrics.Counter("node.mine.rings").Add(int64(len(mined)))
	n.metrics.Counter("node.mine.dropped").Add(int64(dropped))
	n.metrics.Counter("node.mine.invalid_sig").Add(int64(invalidSig))
	n.metrics.Gauge("node.mempool.pending").Set(int64(len(n.mempool)))
	return mined, nil
}

// VerifyBatchCtx checks the ring signatures of a batch of submissions
// without admitting them — the verification half of block validation,
// exposed for peers auditing a block template (nodesvc's /v1/verify).
// Malformed entries (missing signature, key/token count mismatch) fail with
// the same errors Submit would return; well-formed ones fan out across the
// engine's worker pool.
func (n *Node) VerifyBatchCtx(ctx context.Context, subs []Submission) ringsig.BatchResult {
	out := ringsig.BatchResult{Errs: make([]error, len(subs)), FirstFailure: -1}
	reqs := make([]ringsig.VerifyRequest, 0, len(subs))
	idxs := make([]int, 0, len(subs))
	for i, sub := range subs {
		switch {
		case sub.Signature == nil:
			out.Errs[i] = ErrUnsignedDenied
		case len(sub.Keys) != len(sub.Tokens):
			out.Errs[i] = ErrKeysMismatch
		default:
			reqs = append(reqs, ringsig.VerifyRequest{
				Sig:  sub.Signature,
				Ring: sub.Keys,
				Msg:  Message(sub.Tokens),
			})
			idxs = append(idxs, i)
		}
	}
	res := n.engine.VerifyBatchCtx(ctx, reqs)
	for k, err := range res.Errs {
		if err != nil {
			out.Errs[idxs[k]] = fmt.Errorf("%w: %v", ErrBadSignature, err)
		}
	}
	out.CacheHits, out.Rechecked = res.CacheHits, res.Rechecked
	for i, err := range out.Errs {
		if err != nil {
			out.FirstFailure = i
			break
		}
	}
	return out
}

// ChainRings returns the number of rings on the ledger.
func (n *Node) ChainRings() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ledger.NumRS()
}
