package node

import (
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	itm "tokenmagic/internal/tokenmagic"
)

// unsignedNode builds a node that accepts unsigned submissions over a
// 12-token / 12-HT chain, for mempool-order tests that need hand-built
// rings.
func unsignedNode(t *testing.T) (*Node, *chain.Ledger) {
	t.Helper()
	l := chain.NewLedger()
	b := l.BeginBlock()
	for i := 0; i < 12; i++ {
		if _, err := l.AddTx(b, 1); err != nil {
			t.Fatal(err)
		}
	}
	n, err := New(l, Config{
		Framework:     itm.Config{Lambda: 100, Headroom: false, Algorithm: itm.Progressive},
		AllowUnsigned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, l
}

// A subset ring pending together with its superset must mine subset-first,
// regardless of fees, or the superset commit would make the subset an
// illegal partial overlap... (it would actually still be a subset — but the
// configuration requires the chain to grow subset-before-superset so the
// superset records the correct subset count).
func TestMineSubsetBeforeSuperset(t *testing.T) {
	n, _ := unsignedNode(t)
	req := diversity.Requirement{C: 2, L: 2}

	small := Submission{Tokens: chain.NewTokenSet(0, 1), Req: req, Fee: 1}
	big := Submission{Tokens: chain.NewTokenSet(0, 1, 2), Req: req, Fee: 99}
	rs, err := n.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := n.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	mined, err := n.Mine(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 2 {
		t.Fatalf("mined = %+v", mined)
	}
	if mined[0].SubmissionID != rs.SubmissionID || mined[1].SubmissionID != rb.SubmissionID {
		t.Fatalf("subset must mine before superset despite lower fee: %+v", mined)
	}
}

// Entries invalidated by earlier commits in the same block are dropped, not
// mined: two disjoint-pending rings where mining the first (superset of a
// third...) — construct directly: pending A and B where B becomes a partial
// overlap once A commits. Under the mempool admission rule B could only
// have been admitted before A; build that by submitting B first, then A as
// a superset of part of... admission forbids partial overlaps among pending
// entries, so the drop path triggers when the LEDGER moved between Submit
// and Mine. Simulate by committing directly to the ledger.
func TestMineDropsEntriesInvalidatedByChainMovement(t *testing.T) {
	n, l := unsignedNode(t)
	req := diversity.Requirement{C: 2, L: 2}

	pending := Submission{Tokens: chain.NewTokenSet(0, 1), Req: req, Fee: 1}
	if _, err := n.Submit(pending); err != nil {
		t.Fatal(err)
	}
	// The chain moves underneath: another node mines a partially
	// overlapping ring {1, 2}.
	if _, err := l.AppendRS(chain.NewTokenSet(1, 2), req.C, req.L); err != nil {
		t.Fatal(err)
	}
	mined, err := n.Mine(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 0 {
		t.Fatalf("invalidated entry must be dropped, got %+v", mined)
	}
	if n.PendingCount() != 0 {
		t.Fatalf("dropped entry must leave the mempool, pending = %d", n.PendingCount())
	}
}

func TestMineRespectsMaxRings(t *testing.T) {
	n, _ := unsignedNode(t)
	req := diversity.Requirement{C: 2, L: 2}
	for i := 0; i < 3; i++ {
		sub := Submission{Tokens: chain.NewTokenSet(chain.TokenID(i*4), chain.TokenID(i*4+1)), Req: req, Fee: uint64(i)}
		if _, err := n.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	mined, err := n.Mine(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 2 || n.PendingCount() != 1 {
		t.Fatalf("mined=%d pending=%d", len(mined), n.PendingCount())
	}
}
