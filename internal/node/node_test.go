package node

import (
	"context"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"tokenmagic/internal/chain"
	"tokenmagic/internal/diversity"
	"tokenmagic/internal/ringsig"
	"tokenmagic/internal/selector"
	itm "tokenmagic/internal/tokenmagic"
)

// testChain builds a ledger of nTx 2-output transactions plus a keypair per
// token.
func testChain(t *testing.T, nTx int) (*chain.Ledger, map[chain.TokenID]*ringsig.PrivateKey) {
	t.Helper()
	l := chain.NewLedger()
	b := l.BeginBlock()
	keys := make(map[chain.TokenID]*ringsig.PrivateKey)
	for i := 0; i < nTx; i++ {
		txid, err := l.AddTx(b, 2)
		if err != nil {
			t.Fatal(err)
		}
		tx, err := l.Tx(txid)
		if err != nil {
			t.Fatal(err)
		}
		for _, tok := range tx.Outputs {
			k, err := ringsig.GenerateKey(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			keys[tok] = k
		}
	}
	return l, keys
}

// makeSubmission selects mixins with TM_P, signs and packages the spend.
func makeSubmission(t *testing.T, l *chain.Ledger, keys map[chain.TokenID]*ringsig.PrivateKey, target chain.TokenID, req diversity.Requirement) Submission {
	t.Helper()
	universe := l.TokensInBlocks(0, chain.BlockID(l.NumBlocks()-1))
	supers, fresh := selector.Decompose(l.RingsOver(universe), universe)
	p, err := selector.NewProblem(target, supers, fresh, l.OriginFunc(), req.WithHeadroom())
	if err != nil {
		t.Fatal(err)
	}
	res, err := selector.Progressive(p)
	if err != nil {
		t.Fatal(err)
	}
	pubs := make([]ringsig.Point, len(res.Tokens))
	signer := -1
	for i, tok := range res.Tokens {
		pubs[i] = keys[tok].Public
		if tok == target {
			signer = i
		}
	}
	sig, err := ringsig.Sign(rand.Reader, keys[target], pubs, signer, Message(res.Tokens))
	if err != nil {
		t.Fatal(err)
	}
	return Submission{
		Tokens:    res.Tokens,
		Req:       req,
		Keys:      pubs,
		Signature: sig,
		Fee:       uint64(res.Size()),
	}
}

func defaultNode(t *testing.T, l *chain.Ledger) *Node {
	t.Helper()
	n, err := New(l, Config{Framework: itm.Config{
		Lambda: 1000, Eta: 0.1, Headroom: true, Algorithm: itm.Progressive,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSubmitAndMine(t *testing.T) {
	l, keys := testChain(t, 10)
	n := defaultNode(t, l)
	req := diversity.Requirement{C: 1, L: 3}

	sub := makeSubmission(t, l, keys, 0, req)
	rcpt, err := n.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if n.PendingCount() != 1 {
		t.Fatalf("pending = %d", n.PendingCount())
	}
	mined, err := n.Mine(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 1 || mined[0].SubmissionID != rcpt.SubmissionID {
		t.Fatalf("mined = %+v", mined)
	}
	if n.ChainRings() != 1 || n.PendingCount() != 0 {
		t.Fatalf("chain=%d pending=%d", n.ChainRings(), n.PendingCount())
	}
}

func TestSubmitRejectsBadSignature(t *testing.T) {
	l, keys := testChain(t, 10)
	n := defaultNode(t, l)
	req := diversity.Requirement{C: 1, L: 3}
	sub := makeSubmission(t, l, keys, 0, req)

	// Tamper with the message binding by changing a fee? Fee is not signed;
	// change the tokens instead.
	bad := sub
	bad.Tokens = sub.Tokens.Add(99)
	if _, err := n.Submit(bad); err == nil {
		t.Fatal("token-set tamper must fail")
	}

	bad = sub
	bad.Signature = nil
	if _, err := n.Submit(bad); !errors.Is(err, ErrUnsignedDenied) {
		t.Fatalf("nil signature err = %v", err)
	}

	bad = sub
	bad.Keys = sub.Keys[:len(sub.Keys)-1]
	if _, err := n.Submit(bad); !errors.Is(err, ErrKeysMismatch) {
		t.Fatalf("key count err = %v", err)
	}
}

func TestSubmitRejectsDoubleSpend(t *testing.T) {
	l, keys := testChain(t, 10)
	n := defaultNode(t, l)
	req := diversity.Requirement{C: 1, L: 3}

	sub1 := makeSubmission(t, l, keys, 0, req)
	if _, err := n.Submit(sub1); err != nil {
		t.Fatal(err)
	}
	// Same token signed again (fresh nonces, same key image): rejected
	// while the first is still pending…
	sub2 := makeSubmission(t, l, keys, 0, req)
	if _, err := n.Submit(sub2); !errors.Is(err, ErrKeyImageUsed) {
		t.Fatalf("pending double spend err = %v", err)
	}
	// …and after mining.
	if _, err := n.Mine(10); err != nil {
		t.Fatal(err)
	}
	sub3 := makeSubmission(t, l, keys, 0, req)
	if _, err := n.Submit(sub3); !errors.Is(err, ErrKeyImageUsed) {
		t.Fatalf("mined double spend err = %v", err)
	}
}

func TestSubmitRejectsConfigViolation(t *testing.T) {
	l, keys := testChain(t, 10)
	n := defaultNode(t, l)
	req := diversity.Requirement{C: 1, L: 3}

	sub := makeSubmission(t, l, keys, 0, req)
	if _, err := n.Submit(sub); err != nil {
		t.Fatal(err)
	}
	// A second spend whose ring partially overlaps the pending one violates
	// the configuration among pending rings. Build it by hand: two tokens
	// of the pending ring plus enough outside tokens from distinct HTs
	// that the diversity check passes and only the overlap check can fail.
	overlap := chain.NewTokenSet(sub.Tokens[0], sub.Tokens[1])
	for tok := chain.TokenID(0); tok < 20 && len(overlap) < 6; tok += 2 {
		if !sub.Tokens.Contains(tok) && !sub.Tokens.Contains(tok+1) {
			overlap = overlap.Add(tok)
		}
	}
	if sub.Tokens.SubsetOf(overlap) || overlap.SubsetOf(sub.Tokens) || len(overlap) < 5 {
		t.Skip("construction degenerated")
	}
	signTok := overlap.Minus(sub.Tokens)[0]
	manual := Submission{Tokens: overlap, Req: req, Fee: 3}
	// Sign it properly so only the config check fails.
	pubs := make([]ringsig.Point, len(overlap))
	signer := -1
	for i, tok := range overlap {
		pubs[i] = keys[tok].Public
		if tok == signTok {
			signer = i
		}
	}
	sig, err := ringsig.Sign(rand.Reader, keys[signTok], pubs, signer, Message(overlap))
	if err != nil {
		t.Fatal(err)
	}
	manual.Keys, manual.Signature = pubs, sig
	if _, err := n.Submit(manual); !errors.Is(err, itm.ErrConfig) {
		t.Fatalf("overlap err = %v", err)
	}
}

func TestMineFeeOrdering(t *testing.T) {
	l, keys := testChain(t, 12)
	n := defaultNode(t, l)
	req := diversity.Requirement{C: 1, L: 3}

	subA := makeSubmission(t, l, keys, 0, req)
	subA.Fee = 5
	subB := makeSubmission(t, l, keys, 10, req)
	subB.Fee = 50
	if subA.Tokens.Disjoint(subB.Tokens) {
		ra, err := n.Submit(subA)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := n.Submit(subB)
		if err != nil {
			t.Fatal(err)
		}
		mined, err := n.Mine(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(mined) != 1 || mined[0].SubmissionID != rb.SubmissionID {
			t.Fatalf("highest fee must mine first: %+v (a=%d b=%d)", mined, ra.SubmissionID, rb.SubmissionID)
		}
		if n.PendingCount() != 1 {
			t.Fatalf("pending = %d", n.PendingCount())
		}
		mined, err = n.Mine(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(mined) != 1 || mined[0].SubmissionID != ra.SubmissionID {
			t.Fatalf("second block = %+v", mined)
		}
	} else {
		t.Skip("rings overlapped; fee-order scenario needs disjoint rings")
	}
}

func TestUnsignedMode(t *testing.T) {
	l, _ := testChain(t, 8)
	n, err := New(l, Config{
		Framework:     itm.Config{Lambda: 1000, Headroom: true, Algorithm: itm.Progressive},
		AllowUnsigned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := diversity.Requirement{C: 1, L: 3}
	universe := l.TokensInBlocks(0, 0)
	supers, fresh := selector.Decompose(nil, universe)
	p, err := selector.NewProblem(0, supers, fresh, l.OriginFunc(), req.WithHeadroom())
	if err != nil {
		t.Fatal(err)
	}
	res, err := selector.Progressive(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Submit(Submission{Tokens: res.Tokens, Req: req, Fee: 1}); err != nil {
		t.Fatal(err)
	}
	mined, err := n.Mine(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 1 {
		t.Fatalf("mined = %+v", mined)
	}
}

func TestMineEmptyAndZero(t *testing.T) {
	l, _ := testChain(t, 4)
	n := defaultNode(t, l)
	if mined, err := n.Mine(5); err != nil || mined != nil {
		t.Fatalf("empty mine = %+v, %v", mined, err)
	}
	if mined, err := n.Mine(0); err != nil || mined != nil {
		t.Fatalf("zero mine = %+v, %v", mined, err)
	}
}

func TestMineDropsTamperedSignature(t *testing.T) {
	l, keys := testChain(t, 10)
	n := defaultNode(t, l)
	req := diversity.Requirement{C: 1, L: 3}

	sub := makeSubmission(t, l, keys, 0, req)
	if _, err := n.Submit(sub); err != nil {
		t.Fatal(err)
	}
	// The mempool holds the same *Signature the caller does: corrupt a
	// response after admission. Mine's batch re-verification (a cache miss,
	// since the transcript changed) must drop the entry instead of mining it.
	sub.Signature.S[1] = new(big.Int).Add(sub.Signature.S[1], big.NewInt(1))
	mined, err := n.Mine(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != 0 {
		t.Fatalf("tampered entry was mined: %+v", mined)
	}
	if n.ChainRings() != 0 || n.PendingCount() != 0 {
		t.Fatalf("chain=%d pending=%d; want 0, 0 (dropped, not retained)",
			n.ChainRings(), n.PendingCount())
	}
}

func TestVerifyBatchCtx(t *testing.T) {
	l, keys := testChain(t, 10)
	n := defaultNode(t, l)
	req := diversity.Requirement{C: 1, L: 3}

	good := makeSubmission(t, l, keys, 0, req)
	tampered := makeSubmission(t, l, keys, 1, req)
	tampered.Signature.S[0] = new(big.Int).Add(tampered.Signature.S[0], big.NewInt(1))
	unsigned := makeSubmission(t, l, keys, 2, req)
	unsigned.Signature = nil
	mismatched := makeSubmission(t, l, keys, 3, req)
	mismatched.Keys = mismatched.Keys[:len(mismatched.Keys)-1]

	res := n.VerifyBatchCtx(context.Background(), []Submission{good, tampered, unsigned, mismatched})
	if res.OK() {
		t.Fatal("batch with three bad entries reported OK")
	}
	if res.Errs[0] != nil {
		t.Fatalf("valid entry failed: %v", res.Errs[0])
	}
	if !errors.Is(res.Errs[1], ErrBadSignature) {
		t.Fatalf("tampered err = %v", res.Errs[1])
	}
	if !errors.Is(res.Errs[2], ErrUnsignedDenied) {
		t.Fatalf("unsigned err = %v", res.Errs[2])
	}
	if !errors.Is(res.Errs[3], ErrKeysMismatch) {
		t.Fatalf("mismatch err = %v", res.Errs[3])
	}
	if res.FirstFailure != 1 {
		t.Fatalf("FirstFailure = %d, want 1", res.FirstFailure)
	}

	// Re-verifying the same valid entry hits the engine's transcript cache.
	res = n.VerifyBatchCtx(context.Background(), []Submission{good})
	if !res.OK() || res.CacheHits != 1 {
		t.Fatalf("cached re-verify: ok=%v hits=%d", res.OK(), res.CacheHits)
	}
}
