package chain

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLedger hardens the snapshot decoder against corrupt or adversarial
// input: it must either return an error or produce a self-consistent ledger,
// and never panic.
func FuzzReadLedger(f *testing.F) {
	// Seed with a valid snapshot…
	l := NewLedger()
	b := l.BeginBlock()
	if _, err := l.AddTxAmounts(b, []uint64{1, 2}); err != nil {
		f.Fatal(err)
	}
	if _, err := l.AppendRS(NewTokenSet(0, 1), 1, 1); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	// …and hostile variants.
	f.Add(`{"version":1,"blocks":-1,"txs":0,"tokens":0,"rings":0}` + "\n")
	f.Add(`{"version":1,"blocks":1,"txs":1000000,"tokens":0,"rings":0}` + "\n")
	f.Add(`{"version":1`)
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadLedger(strings.NewReader(input))
		if err != nil {
			return
		}
		// A successfully decoded ledger must be internally consistent.
		for i := 0; i < got.NumTokens(); i++ {
			tok, err := got.Token(TokenID(i))
			if err != nil {
				t.Fatalf("token %d unreadable after decode: %v", i, err)
			}
			if int(tok.Origin) >= got.NumTxs() || tok.Origin < 0 {
				t.Fatalf("token %d has dangling origin %v", i, tok.Origin)
			}
		}
		for i := 0; i < got.NumRS(); i++ {
			r, err := got.RS(RSID(i))
			if err != nil {
				t.Fatalf("ring %d unreadable: %v", i, err)
			}
			if !r.Tokens.IsSorted() {
				t.Fatalf("ring %d tokens unsorted: %v", i, r.Tokens)
			}
			for _, tok := range r.Tokens {
				if int(tok) >= got.NumTokens() {
					t.Fatalf("ring %d references missing token %v", i, tok)
				}
			}
		}
		// Round trip must be stable.
		var buf bytes.Buffer
		if _, err := got.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadLedger(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzTokenSetOps checks the set algebra invariants on arbitrary inputs.
func FuzzTokenSetOps(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{255, 255, 0}, []byte{1})

	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte) {
		toSet := func(raw []byte) TokenSet {
			ids := make([]TokenID, len(raw))
			for i, v := range raw {
				ids[i] = TokenID(v)
			}
			return NewTokenSet(ids...)
		}
		a, b := toSet(aRaw), toSet(bRaw)
		u := a.Union(b)
		inter := a.Intersect(b)
		if !u.IsSorted() || !inter.IsSorted() {
			t.Fatal("sorted invariant broken")
		}
		if len(a)+len(b) != len(u)+len(inter) {
			t.Fatal("inclusion-exclusion broken")
		}
		if !a.Minus(b).Union(inter).Equal(a) {
			t.Fatalf("(a\\b) ∪ (a∩b) != a for %v, %v", a, b)
		}
		if a.Disjoint(b) != (len(inter) == 0) {
			t.Fatal("Disjoint disagrees with Intersect")
		}
		for _, id := range a {
			if !u.Contains(id) {
				t.Fatal("union lost a member")
			}
		}
	})
}
