// Package chain implements the UTXO blockchain substrate that the DA-MS
// algorithms operate on: tokens, historical transactions, blocks, an
// append-only ledger, and the TokenMagic batch partitioning.
//
// The packages above this one (diversity, rsgraph, selector, tokenmagic)
// never look at cryptographic key material; they only need the mapping
// from a token to the historical transaction (HT) that produced it, and
// the overlap structure between ring signatures. This package provides
// both with dense integer identifiers so hot paths can use slices rather
// than maps.
package chain

import "fmt"

// TokenID identifies a token (an unspent transaction output). IDs are dense
// within a Ledger: the i-th token ever created has TokenID(i).
type TokenID int32

// TxID identifies a historical transaction (HT), the transaction whose
// outputs include a given token. The paper's recursive diversity constraint
// is computed over the multiset of TxIDs behind a ring's tokens.
type TxID int32

// RSID identifies a ring signature recorded on the ledger, in proposal
// order: RS i was proposed before RS j iff i < j.
type RSID int32

// BlockID identifies a block by height.
type BlockID int32

// NoTx marks a token with an unknown or out-of-scope historical transaction.
const NoTx TxID = -1

// NoToken is the zero value guard for TokenID fields that may be unset.
const NoToken TokenID = -1

func (t TokenID) String() string { return fmt.Sprintf("t%d", int32(t)) }
func (h TxID) String() string    { return fmt.Sprintf("h%d", int32(h)) }
func (r RSID) String() string    { return fmt.Sprintf("r%d", int32(r)) }
func (b BlockID) String() string { return fmt.Sprintf("b%d", int32(b)) }
