package chain

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	l := NewLedger()
	b0 := l.BeginBlock()
	if _, err := l.AddTxAmounts(b0, []uint64{5, 10}); err != nil {
		t.Fatal(err)
	}
	b1 := l.BeginBlock()
	if _, err := l.AddTx(b1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRS(NewTokenSet(0, 2, 3), 0.6, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRS(NewTokenSet(1, 4), 1, 2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := l.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBlocks() != l.NumBlocks() || got.NumTxs() != l.NumTxs() ||
		got.NumTokens() != l.NumTokens() || got.NumRS() != l.NumRS() {
		t.Fatalf("shape mismatch: %d/%d/%d/%d vs %d/%d/%d/%d",
			got.NumBlocks(), got.NumTxs(), got.NumTokens(), got.NumRS(),
			l.NumBlocks(), l.NumTxs(), l.NumTokens(), l.NumRS())
	}
	for i := 0; i < l.NumTokens(); i++ {
		want, _ := l.Token(TokenID(i))
		have, _ := got.Token(TokenID(i))
		if want != have {
			t.Fatalf("token %d: %+v vs %+v", i, have, want)
		}
	}
	for i := 0; i < l.NumRS(); i++ {
		want, _ := l.RS(RSID(i))
		have, _ := got.RS(RSID(i))
		if !have.Tokens.Equal(want.Tokens) || have.C != want.C || have.L != want.L {
			t.Fatalf("ring %d: %+v vs %+v", i, have, want)
		}
	}
}

func TestSnapshotEmptyLedger(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewLedger().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTokens() != 0 || got.NumBlocks() != 0 {
		t.Fatal("empty round trip should stay empty")
	}
}

func TestReadLedgerErrors(t *testing.T) {
	if _, err := ReadLedger(strings.NewReader("")); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("empty input err = %v", err)
	}
	if _, err := ReadLedger(strings.NewReader(`{"version":99}` + "\n")); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("bad version err = %v", err)
	}
	// Header promises a tx but the stream ends.
	trunc := `{"version":1,"blocks":1,"txs":1,"tokens":2,"rings":0}` + "\n"
	if _, err := ReadLedger(strings.NewReader(trunc)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated err = %v", err)
	}
	// Ring referencing a token that does not exist.
	badRing := `{"version":1,"blocks":1,"txs":1,"tokens":1,"rings":1}` + "\n" +
		`{"block":0,"amounts":[1]}` + "\n" +
		`{"tokens":[99],"c":1,"l":1}` + "\n"
	if _, err := ReadLedger(strings.NewReader(badRing)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad ring err = %v", err)
	}
	// Token count mismatch between header and body.
	mismatch := `{"version":1,"blocks":1,"txs":1,"tokens":5,"rings":0}` + "\n" +
		`{"block":0,"amounts":[1]}` + "\n"
	if _, err := ReadLedger(strings.NewReader(mismatch)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("mismatch err = %v", err)
	}
}
