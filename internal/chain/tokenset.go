package chain

import "sort"

// TokenSet is a sorted, duplicate-free slice of TokenIDs. The solvers treat a
// ring signature as a TokenSet (its consumed token plus mixins), so set
// algebra here is on every hot path. All operations keep the sorted invariant
// and none mutate their receivers unless documented.
type TokenSet []TokenID

// NewTokenSet builds a TokenSet from arbitrary (possibly unsorted,
// possibly duplicated) ids.
func NewTokenSet(ids ...TokenID) TokenSet {
	s := make(TokenSet, len(ids))
	copy(s, ids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s.dedup()
}

func (s TokenSet) dedup() TokenSet {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, id := range s[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// Clone returns an independent copy of s.
func (s TokenSet) Clone() TokenSet {
	out := make(TokenSet, len(s))
	copy(out, s)
	return out
}

// Contains reports whether id is a member of s.
func (s TokenSet) Contains(id TokenID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == id
}

// Union returns s ∪ t as a new TokenSet.
func (s TokenSet) Union(t TokenSet) TokenSet {
	out := make(TokenSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t as a new TokenSet.
func (s TokenSet) Intersect(t TokenSet) TokenSet {
	var out TokenSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ t as a new TokenSet.
func (s TokenSet) Minus(t TokenSet) TokenSet {
	var out TokenSet
	i, j := 0, 0
	for i < len(s) {
		for j < len(t) && t[j] < s[i] {
			j++
		}
		if j >= len(t) || t[j] != s[i] {
			out = append(out, s[i])
		}
		i++
	}
	return out
}

// Remove returns s \ {id} as a new TokenSet.
func (s TokenSet) Remove(id TokenID) TokenSet {
	var out TokenSet
	for _, v := range s {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// Add returns s ∪ {id} as a new TokenSet.
func (s TokenSet) Add(id TokenID) TokenSet {
	if s.Contains(id) {
		return s.Clone()
	}
	out := make(TokenSet, 0, len(s)+1)
	inserted := false
	for _, v := range s {
		if !inserted && id < v {
			out = append(out, id)
			inserted = true
		}
		out = append(out, v)
	}
	if !inserted {
		out = append(out, id)
	}
	return out
}

// SubsetOf reports whether every member of s belongs to t.
func (s TokenSet) SubsetOf(t TokenSet) bool {
	i, j := 0, 0
	for i < len(s) {
		for j < len(t) && t[j] < s[i] {
			j++
		}
		if j >= len(t) || t[j] != s[i] {
			return false
		}
		i++
		j++
	}
	return true
}

// Disjoint reports whether s and t share no members.
func (s TokenSet) Disjoint(t TokenSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same members.
func (s TokenSet) Equal(t TokenSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// IsSorted reports whether the sorted/duplicate-free invariant holds; used by
// tests and debug assertions.
func (s TokenSet) IsSorted() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}
