package chain

import "testing"

// buildPrefixBase is a small chain with every op kind represented.
func buildPrefixBase(t *testing.T) *Ledger {
	t.Helper()
	l := NewLedger()
	b := l.BeginBlock()
	if _, err := l.AddTxAmounts(b, []uint64{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	b2 := l.BeginBlock()
	if _, err := l.AddTxAmounts(b2, []uint64{9}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRS(NewTokenSet(0, 2), 1.5, 2); err != nil {
		t.Fatal(err)
	}
	return l
}

// replay rebuilds a ledger from a view's canonical op sequence, exactly what
// store.Seed does when moving a generated dataset into a persistent store.
func replay(t *testing.T, v *View) *Ledger {
	t.Helper()
	l := NewLedger()
	for _, op := range v.Ops() {
		if err := l.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestCheckPrefix(t *testing.T) {
	base := buildPrefixBase(t)

	if err := base.View().CheckPrefix(base.View()); err != nil {
		t.Fatalf("view does not extend itself: %v", err)
	}

	// The canonical rebuild — the state a persistent store recovers after
	// being seeded from base — must check out against the original.
	re := replay(t, base.View())
	if err := re.View().CheckPrefix(base.View()); err != nil {
		t.Fatalf("canonical rebuild rejected: %v", err)
	}

	// A resumed store additionally holds ops committed after seeding.
	ext := replay(t, base.View())
	eb := ext.BeginBlock()
	if _, err := ext.AddTxAmounts(eb, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ext.AppendRS(NewTokenSet(1, 3), 1.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := ext.View().CheckPrefix(base.View()); err != nil {
		t.Fatalf("extension rejected: %v", err)
	}
	if err := base.View().CheckPrefix(ext.View()); err == nil {
		t.Fatal("a view behind the base must be rejected")
	}

	// Same shape, different population: one amount differs.
	diverged := NewLedger()
	db := diverged.BeginBlock()
	if _, err := diverged.AddTxAmounts(db, []uint64{5, 6, 8}); err != nil {
		t.Fatal(err)
	}
	db2 := diverged.BeginBlock()
	if _, err := diverged.AddTxAmounts(db2, []uint64{9}); err != nil {
		t.Fatal(err)
	}
	if _, err := diverged.AppendRS(NewTokenSet(0, 2), 1.5, 2); err != nil {
		t.Fatal(err)
	}
	if err := diverged.View().CheckPrefix(base.View()); err == nil {
		t.Fatal("divergent token population accepted as an extension")
	}

	// Same tokens, different ring.
	ringDiff := replay(t, base.View())
	rl := buildPrefixBase(t)
	if _, err := rl.AppendRS(NewTokenSet(1), 1.0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ringDiff.AppendRS(NewTokenSet(3), 1.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := ringDiff.View().CheckPrefix(rl.View()); err == nil {
		t.Fatal("divergent ring history accepted as an extension")
	}
}
